#!/usr/bin/env bash
# CI entry point: a Release build plus an ASan+UBSan Debug build with ctest
# on both, a TSan build running the threaded suites, and a bench smoke that
# diffs quick-run metrics against the committed baselines. Run from
# anywhere; build trees land in <repo>/build-ci-{release,asan,tsan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1"
  local filter="$2"
  shift 2
  local tree="$repo/build-ci-$name"
  echo "=== [$name] configure ==="
  cmake -B "$tree" -S "$repo" "$@"
  echo "=== [$name] build ==="
  cmake --build "$tree" -j "$jobs"
  echo "=== [$name] ctest ==="
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$tree" --output-on-failure -R "$filter"
  else
    ctest --test-dir "$tree" --output-on-failure
  fi
}

run_suite release "" -DCMAKE_BUILD_TYPE=Release

# Lockstep conformance gate: the full model-implementation grid (3
# topologies x batch sizes x 2 fault schedules) must report zero
# divergences. Runs on the Release tree right after its suite; a divergence
# prints the shrunk reproducer trace and fails CI.
echo "=== [release] lockstep conformance grid ==="
"$repo/build-ci-release/src/mc/zenith_lockstep" --quick

run_suite asan "" -DCMAKE_BUILD_TYPE=Debug -DZENITH_SANITIZE=address
# TSan is restricted to the suites that actually spawn threads (the
# ParallelRunner pool and the simulator slab it drives): everything else is
# single-threaded by design and already covered above. lockstep_test rides
# along because its oracle re-runs chaos campaigns end to end.
run_suite tsan 'parallel_test|sim_test|chaos_test|lockstep_test' \
  -DCMAKE_BUILD_TYPE=Debug -DZENITH_SANITIZE=thread

# Sharded hot-path tier (PR 8): the lock-free stage queues' threaded stress
# cases and the sharded NIB pipeline — including the commit-thread-pool
# byte-equivalence case and a chaos soak with a real executor — re-run
# under TSan with a bumped OP budget. This is where the SPSC/MPSC memory-
# order arguments and the parallel-commit disjointness are machine-checked.
echo "=== [sharded] queue stress + sharded soak under TSan (ZENITH_SOAK_OPS=20000) ==="
ZENITH_SOAK_OPS=20000 \
  ctest --test-dir "$repo/build-ci-tsan" --output-on-failure \
  -R 'queue_test|sharded_nib_test'

# Replication tier: the replicated control plane's own suites (unit protocol
# tests, the seeded kill-leader/partition chaos grid, exactly-once takeover)
# run in Release and again under TSan — leader handoff re-enqueues OPs
# across worker shards, which is exactly where a data race would hide.
echo "=== [replication] ctest -L replication (Release) ==="
ctest --test-dir "$repo/build-ci-release" --output-on-failure -L replication
echo "=== [replication] ctest -L replication (TSan) ==="
ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -L replication

# Model-checker tier (PR 9): the parallel exploration engine. The `mc`
# label runs the full checker suite — including the thread-count
# equivalence grids and counterexample replay — in Release, then again
# under TSan: the work-stealing frontier, the striped-lock seen-set and the
# first-violation claim are exactly the code where a memory-order mistake
# would corrupt a verification verdict silently. The TSan pass also covers
# the ShardedFingerprintSet concurrent-insert case in common_test.
echo "=== [mc] ctest -L mc (Release) ==="
ctest --test-dir "$repo/build-ci-release" --output-on-failure -L mc
echo "=== [mc] parallel checker suites (TSan) ==="
ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -L mc
GTEST_FILTER='ShardedFingerprintSet.*' \
  ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -R common_test

# Consistency tier (PR 10): the adaptive-consistency suite — NIB eventual-
# log units, the E1/E2 model-checker cells, the eventual chaos grid under
# the lockstep oracle, and the deliberate-defect (skipped-barrier) negative
# tests — runs in Release and again under TSan: eventual commits cross the
# CommitPump/monitoring threads in the sharded build, exactly where a torn
# log cursor would corrupt the staleness bound silently.
echo "=== [consistency] ctest -L consistency (Release) ==="
ctest --test-dir "$repo/build-ci-release" --output-on-failure -L consistency
echo "=== [consistency] ctest -L consistency (TSan) ==="
ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -L consistency

# Wire tier: the binary codec's adversarial suite re-runs under ASan+UBSan
# (where "rejects cleanly" means no overflow, no over-read, no giant
# allocation — not just a non-crash), then the real daemon pair runs the
# drain/undrain scenario end to end over a Unix socket: zenith_controllerd
# must exit 0 with its --self-check fingerprint matching the sim backend,
# and a SIGTERM to the lingering zenith_switchd must shut it down cleanly.
echo "=== [wire] ctest -L wire (ASan+UBSan) ==="
ctest --test-dir "$repo/build-ci-asan" --output-on-failure -L wire
wire_e2e() {
  local tree="$repo/build-ci-release"
  local sock
  sock="$(mktemp -u /tmp/zenith-ci-wire-XXXXXX.sock)"
  echo "=== [wire] daemon pair e2e over uds:$sock ==="
  "$tree/src/netd/zenith_switchd" --listen "uds:$sock" --linger &
  local switchd_pid=$!
  # set -e makes a non-zero controllerd exit fail the stage.
  "$tree/src/netd/zenith_controllerd" --connect "uds:$sock" \
    --target-ops 20000 --self-check --json
  echo "=== [wire] SIGTERM shutdown ==="
  kill -TERM "$switchd_pid"
  wait "$switchd_pid"  # non-zero exit fails the stage
  rm -f "$sock"
}
wire_e2e

# Stress tier (nightly-style): the `stress`-labeled suites re-run in Release
# with a six-figure OP budget (plain ctest above already ran them with the
# cheap default, keeping tier-1 flat), plus the batching-equivalence
# property sweep under TSan — the batched dispatch path is the newest code
# crossing the worker shards.
stress_tier() {
  echo "=== [stress] ctest -L stress (Release, ZENITH_SOAK_OPS=200000) ==="
  ZENITH_SOAK_OPS=200000 \
    ctest --test-dir "$repo/build-ci-release" --output-on-failure -L stress
  echo "=== [stress] batching property sweep under TSan ==="
  GTEST_FILTER='*BatchEquivalence*:*ChaosVerdictDeterminism*' \
    ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -R property_test
}
stress_tier

# Bench smoke: the benches are not part of ctest (full sweeps take minutes),
# but CI still proves each --quick path runs, emits machine-readable
# BENCH_*.json that parses, and compares the quick-run metrics against the
# committed baselines in bench/baselines/. Timing metrics are advisory
# (zenith_bench_diff warns on >25% drift — hosts differ), but the
# simulation-deterministic counters named per bench below are GATING:
# --gate makes any drift or absence a hard failure.
bench_smoke() {
  local tree="$repo/build-ci-release"
  local scratch
  scratch="$(mktemp -d)"
  echo "=== [bench] smoke (--quick --json) in $scratch ==="
  (cd "$scratch" && ZENITH_BENCH_THREADS="$jobs" \
    "$tree/bench/bench_chaos_coverage" --quick --json)
  (cd "$scratch" && "$tree/bench/bench_micro_primitives" --quick --json)
  (cd "$scratch" &&
    "$tree/bench/bench_fig10_trace_replay" --quick --json \
      --chrome-trace "$scratch/chrome_trace.json")
  (cd "$scratch" && "$tree/bench/bench_soak" --quick --json)
  (cd "$scratch" && "$tree/bench/bench_wire_loopback" --quick --json)
  (cd "$scratch" && "$tree/bench/bench_tab04_mc_optimizations" --quick --json)
  (cd "$scratch" && ZENITH_BENCH_THREADS="$jobs" \
    "$tree/bench/bench_consistency" --quick --json)
  "$tree/src/obs/zenith_json_check" "$scratch"/BENCH_*.json \
    "$scratch/chrome_trace.json"
  echo "=== [bench-gate] diff vs committed baselines (deterministic metrics GATE, timings advisory) ==="
  # Gated (deterministic) metric subsets; everything else stays advisory.
  # Only budget-independent counters qualify: the committed baselines come
  # from full runs while CI smokes --quick, so campaign/OP tallies differ by
  # design — but a correct build reports zero violations at any budget.
  local -A gates=(
    [chaos_coverage]="violations_correct_build"
    [soak]="invariant_violations,fingerprint_match"
    [wire_loopback]="fingerprint_mismatches"
    [micro_primitives]="arena.fresh_allocs_fixed_churn"
    # PR 9 parallel checker: thread-count agreement on states/diameter and
    # a clean headline run are exact at any budget; state counts and
    # states/sec stay advisory (quick explores a smaller instance).
    [tab04_mc]="scaling.states_agree,scaling.diameter_agree,repl_headline.violations"
    # PR 10 adaptive consistency: a correct build reports zero oracle
    # violations and zero verdict-digest re-run mismatches at any budget;
    # commit/lag tallies stay advisory (quick sweeps fewer cells and seeds).
    [consistency]="violations_correct_build,determinism_mismatches"
  )
  local name gate
  for name in micro_primitives chaos_coverage soak wire_loopback tab04_mc \
      consistency; do
    if [[ -f "$repo/bench/baselines/BENCH_$name.json" ]]; then
      gate="${gates[$name]:-}"
      if [[ -n "$gate" ]]; then
        "$tree/src/obs/zenith_bench_diff" \
          "$repo/bench/baselines/BENCH_$name.json" \
          "$scratch/BENCH_$name.json" --gate "$gate"
      else
        "$tree/src/obs/zenith_bench_diff" \
          "$repo/bench/baselines/BENCH_$name.json" \
          "$scratch/BENCH_$name.json" || true
      fi
    fi
  done
  rm -rf "$scratch"
}
bench_smoke

echo "=== CI green: release + asan + tsan + bench smoke ==="
