#!/usr/bin/env bash
# CI entry point: a Release build plus an ASan+UBSan Debug build, ctest on
# both. Run from anywhere; build trees land in <repo>/build-ci-{release,asan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1"
  shift
  local tree="$repo/build-ci-$name"
  echo "=== [$name] configure ==="
  cmake -B "$tree" -S "$repo" "$@"
  echo "=== [$name] build ==="
  cmake --build "$tree" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$tree" --output-on-failure
}

run_suite release -DCMAKE_BUILD_TYPE=Release
run_suite asan -DCMAKE_BUILD_TYPE=Debug -DZENITH_SANITIZE=ON

# Bench smoke: the benches are not part of ctest (full sweeps take minutes),
# but CI still proves each --quick path runs, emits machine-readable
# BENCH_*.json, and that the JSON actually parses.
bench_smoke() {
  local tree="$repo/build-ci-release"
  local scratch
  scratch="$(mktemp -d)"
  echo "=== [bench] smoke (--quick --json) in $scratch ==="
  (cd "$scratch" && "$tree/bench/bench_chaos_coverage" --quick --json)
  (cd "$scratch" &&
    "$tree/bench/bench_fig10_trace_replay" --quick --json \
      --chrome-trace "$scratch/chrome_trace.json")
  "$tree/src/obs/zenith_json_check" "$scratch"/BENCH_*.json \
    "$scratch/chrome_trace.json"
  rm -rf "$scratch"
}
bench_smoke

echo "=== CI green: release + asan + bench smoke ==="
