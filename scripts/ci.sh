#!/usr/bin/env bash
# CI entry point: a Release build plus an ASan+UBSan Debug build, ctest on
# both. Run from anywhere; build trees land in <repo>/build-ci-{release,asan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1"
  shift
  local tree="$repo/build-ci-$name"
  echo "=== [$name] configure ==="
  cmake -B "$tree" -S "$repo" "$@"
  echo "=== [$name] build ==="
  cmake --build "$tree" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$tree" --output-on-failure
}

run_suite release -DCMAKE_BUILD_TYPE=Release
run_suite asan -DCMAKE_BUILD_TYPE=Debug -DZENITH_SANITIZE=ON

echo "=== CI green: release + asan ==="
