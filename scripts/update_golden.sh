#!/usr/bin/env bash
# Regenerates the golden-fingerprint regression corpus
# (tests/golden/FINGERPRINTS.json) from the scenario set in
# tests/golden_scenarios.h. Run after an INTENDED behaviour change, then
# review the JSON diff like any other semantic change before committing.
#
# Usage: scripts/update_golden.sh [build-dir]   (default: <repo>/build)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
tree="${1:-$repo/build}"

if [[ ! -d "$tree" ]]; then
  cmake -B "$tree" -S "$repo"
fi
cmake --build "$tree" --target golden_gen -j "$(nproc 2>/dev/null || echo 4)"

out="$repo/tests/golden/FINGERPRINTS.json"
mkdir -p "$(dirname "$out")"
"$tree/tests/golden_gen" > "$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out"
git -C "$repo" diff --stat -- tests/golden/FINGERPRINTS.json || true
