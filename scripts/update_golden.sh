#!/usr/bin/env bash
# Regenerates the golden regression corpora:
#   tests/golden/FINGERPRINTS.json  (scenario set in tests/golden_scenarios.h)
#   tests/golden/WIRE_FRAMES.json   (wire-frame corpus in
#                                    tests/wire_frames_corpus.h)
#   tests/golden/MC_CELLS.json      (model-checking cells in
#                                    tests/mc_golden_cells.h)
# Run after an INTENDED behaviour or wire-format change, then review the
# JSON diff like any other semantic change before committing.
#
# Usage: scripts/update_golden.sh [build-dir]   (default: <repo>/build)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
tree="${1:-$repo/build}"

if [[ ! -d "$tree" ]]; then
  cmake -B "$tree" -S "$repo"
fi
cmake --build "$tree" --target golden_gen --target wire_golden_gen \
  --target mc_golden_gen -j "$(nproc 2>/dev/null || echo 4)"

out="$repo/tests/golden/FINGERPRINTS.json"
mkdir -p "$(dirname "$out")"
"$tree/tests/golden_gen" > "$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out"

wire_out="$repo/tests/golden/WIRE_FRAMES.json"
"$tree/tests/wire_golden_gen" > "$wire_out.tmp"
mv "$wire_out.tmp" "$wire_out"
echo "wrote $wire_out"

mc_out="$repo/tests/golden/MC_CELLS.json"
"$tree/tests/mc_golden_gen" > "$mc_out.tmp"
mv "$mc_out.tmp" "$mc_out"
echo "wrote $mc_out"
git -C "$repo" diff --stat -- tests/golden/ || true
