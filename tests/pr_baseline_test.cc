// The PR baseline: its reconciliation must eventually repair the
// inconsistencies its shortcuts create, and those repairs must be slower
// than ZENITH's by roughly a reconciliation period (the §6.1 comparison).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

ExperimentConfig pr_config(std::uint64_t seed, SimTime period = seconds(10)) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kPr;
  config.reconciliation_period = period;
  return config;
}

TEST(PrBaseline, FailureFreeInstallConverges) {
  Experiment exp(gen::kdl_like(30, 2), pr_config(7));
  exp.start();
  Workload workload(&exp, 3);
  Dag dag = workload.initial_dag(8);
  auto latency = exp.install_and_wait(std::move(dag), seconds(30));
  ASSERT_TRUE(latency.has_value());
  EXPECT_LT(*latency, seconds(5));
}

TEST(PrBaseline, TransientSwitchFailureNeedsReconciliation) {
  Experiment exp(gen::figure2_diamond(), pr_config(11));
  exp.start();
  Workload workload(&exp, 5);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(30)).has_value());

  // Complete transient failure wipes B's table; PR marks B UP again without
  // any cleanup, so the NIB claims rules that are not on the switch.
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
  exp.run_for(seconds(1));
  exp.fabric().inject_recovery(SwitchId(1));
  exp.run_for(millis(200));

  auto report = exp.checker().check(id);
  EXPECT_FALSE(report.view_consistent && report.dag_installed)
      << "PR should be inconsistent immediately after optimistic recovery";

  // Reconciliation eventually repairs it.
  auto fixed = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(40));
  ASSERT_TRUE(fixed.has_value());
  // The repair had to wait for a reconciliation cycle — it cannot have been
  // much faster than the period.
  EXPECT_GT(*fixed, seconds(1));
}

TEST(PrBaseline, ZenithBeatsPrOnTransientFailure) {
  auto run = [](ControllerKind kind) {
    ExperimentConfig config;
    config.seed = 31;
    config.kind = kind;
    config.reconciliation_period = seconds(10);
    Experiment exp(gen::figure2_diamond(), config);
    exp.start();
    Workload workload(&exp, 5);
    Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
    DagId id = dag.id();
    (void)exp.install_and_wait(std::move(dag), seconds(30));
    exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
    exp.run_for(seconds(1));
    exp.fabric().inject_recovery(SwitchId(1));
    SimTime start = exp.sim().now();
    auto fixed = exp.run_until(
        [&] { return exp.checker().converged(id); }, seconds(60));
    EXPECT_TRUE(fixed.has_value());
    (void)start;
    return fixed.value_or(seconds(60));
  };
  SimTime zenith = run(ControllerKind::kZenithNR);
  SimTime pr = run(ControllerKind::kPr);
  EXPECT_LT(zenith * 2, pr)
      << "Zenith should reconverge well before PR's reconciliation";
}

TEST(PrBaseline, PrUpReconcilesOnRecoveryFasterThanPr) {
  auto run = [](ControllerKind kind) {
    ExperimentConfig config;
    config.seed = 37;
    config.kind = kind;
    config.reconciliation_period = seconds(20);
    Experiment exp(gen::figure2_diamond(), config);
    exp.start();
    Workload workload(&exp, 5);
    Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
    DagId id = dag.id();
    (void)exp.install_and_wait(std::move(dag), seconds(30));
    exp.run_for(seconds(1));  // settle well inside the reconciliation period
    exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
    exp.run_for(seconds(1));
    exp.fabric().inject_recovery(SwitchId(1));
    auto fixed = exp.run_until(
        [&] { return exp.checker().converged(id); }, seconds(60));
    EXPECT_TRUE(fixed.has_value()) << to_string(kind);
    return fixed.value_or(seconds(60));
  };
  SimTime pr = run(ControllerKind::kPr);
  SimTime prup = run(ControllerKind::kPrUp);
  EXPECT_LT(prup, pr);
}

TEST(PrBaseline, DeadlockTimeoutResolvesLostEvents) {
  // Crash a worker exactly while its (buggy two-phase) local state holds a
  // dequeued OP: the event is gone for good. The deadlock timeout must
  // notice the stuck SCHEDULED status and re-issue the OP.
  ExperimentConfig config = pr_config(41);
  Experiment exp(gen::linear(5), config);
  exp.start();
  Workload workload(&exp, 43);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(4)}});
  DagId id = dag.id();
  exp.controller().submit_dag(std::move(dag));

  // Wait for any worker to enter the vulnerable window, then kill it.
  auto* controller = &exp.controller();
  auto vulnerable_worker = [&]() -> Component* {
    for (Component* c : controller->components()) {
      auto* worker = dynamic_cast<Worker*>(c);
      if (worker != nullptr && worker->holding_popped_op()) return worker;
    }
    return nullptr;
  };
  exp.config().poll_interval = micros(5);  // the window is ~one service step
  auto window = exp.run_until(
      [&] { return vulnerable_worker() != nullptr; }, seconds(10));
  ASSERT_TRUE(window.has_value()) << "two-phase window never observed";
  vulnerable_worker()->crash();
  exp.config().poll_interval = millis(5);

  auto converged =
      exp.run_until([&] { return exp.checker().converged(id); }, seconds(60));
  ASSERT_TRUE(converged.has_value());
  EXPECT_GT(exp.pr()->deadlock_resolutions(), 0u);
}

TEST(PrBaseline, ReconcilerRemovesHiddenEntries) {
  // Plant a hidden entry directly (rule on switch, absent from NIB view);
  // the reconciler must delete it within one cycle (the Figure 2 fix).
  Experiment exp(gen::figure2_diamond(), pr_config(47, seconds(5)));
  exp.start();
  SwitchRequest hidden;
  hidden.type = SwitchRequest::Type::kInstall;
  hidden.op.id = OpId(0x7fffffff);
  hidden.op.type = OpType::kInstallRule;
  hidden.op.sw = SwitchId(0);
  hidden.op.rule = FlowRule{FlowId(9), SwitchId(0), SwitchId(3), SwitchId(1), 9};
  exp.fabric().at(SwitchId(0)).in_queue().push(hidden);
  exp.run_for(millis(100));
  ASSERT_TRUE(exp.fabric().at(SwitchId(0)).has_entry(OpId(0x7fffffff)));
  auto removed = exp.run_until(
      [&] { return !exp.fabric().at(SwitchId(0)).has_entry(OpId(0x7fffffff)); },
      seconds(30));
  ASSERT_TRUE(removed.has_value());
  EXPECT_GT(exp.pr()->reconciler().cycles_completed(), 0u);
}

TEST(PrBaseline, NoReconcileVariantStaysBrokenAfterStateLoss) {
  Experiment exp(gen::figure2_diamond(), [&] {
    ExperimentConfig config;
    config.seed = 51;
    config.kind = ControllerKind::kPrNoReconcile;
    return config;
  }());
  exp.start();
  Workload workload(&exp, 53);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(30)).has_value());
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
  exp.run_for(seconds(1));
  exp.fabric().inject_recovery(SwitchId(1));
  // Without reconciliation (and without Zenith's recovery pipeline) the
  // wiped rules never come back.
  auto fixed = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(20));
  EXPECT_FALSE(fixed.has_value());
}

}  // namespace
}  // namespace zenith
