// Canonical wire-frame corpus: one representative, fully-populated frame
// per message type, with fixed distinguishable field values. Shared by
// wire_golden_gen (which writes tests/golden/WIRE_FRAMES.json) and
// net_codec_test (which compares live encodes against the committed hex) so
// the committed bytes and the checked bytes can never drift apart silently.
// Any change here or in src/net/codec.cc is a WIRE FORMAT CHANGE: regenerate
// with scripts/update_golden.sh and review the hex diff like a protocol RFC.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/codec.h"

namespace zenith::golden {

inline std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

inline std::vector<std::uint8_t> from_hex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

inline Op corpus_op(std::uint32_t id, OpType type) {
  Op op;
  op.id = OpId(id);
  op.type = type;
  op.sw = SwitchId(7);
  op.delete_target = OpId(type == OpType::kDeleteRule ? id - 1 : 0);
  op.rule.flow = FlowId(0x11223344u);
  op.rule.sw = SwitchId(7);
  op.rule.dst = SwitchId(12);
  op.rule.next_hop = SwitchId(9);
  op.rule.priority = 100;
  return op;
}

/// The corpus: (name, encoded frame bytes) in fixed order.
inline std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
wire_frame_corpus() {
  using Buf = std::vector<std::uint8_t>;
  std::vector<std::pair<std::string, Buf>> corpus;
  auto add = [&corpus](const char* name, Buf frame) {
    corpus.emplace_back(name, std::move(frame));
  };

  {
    net::Hello hello;
    hello.role = net::Hello::Role::kController;
    hello.proto = net::kWireVersion;
    hello.switch_count = 0;
    hello.seed = 0xDEADBEEFCAFEF00Dull;
    Buf out;
    net::encode_hello_frame(out, hello);
    add("hello_controller", std::move(out));
  }
  {
    net::Hello hello;
    hello.role = net::Hello::Role::kSwitchd;
    hello.proto = net::kWireVersion;
    hello.switch_count = 13;
    hello.seed = 42;
    Buf out;
    net::encode_hello_frame(out, hello);
    add("hello_switchd", std::move(out));
  }
  {
    SwitchRequest request;
    request.type = SwitchRequest::Type::kInstall;
    request.xid = 0x0102030405060708ull;
    request.op = corpus_op(1001, OpType::kInstallRule);
    Buf out;
    net::encode_request_frame(out, SwitchId(7), request);
    add("request_install", std::move(out));
  }
  {
    SwitchRequest request;
    request.type = SwitchRequest::Type::kDelete;
    request.xid = 0x1112131415161718ull;
    request.op = corpus_op(1002, OpType::kDeleteRule);
    Buf out;
    net::encode_request_frame(out, SwitchId(7), request);
    add("request_delete", std::move(out));
  }
  {
    SwitchRequest request;
    request.type = SwitchRequest::Type::kClearTcam;
    request.xid = 0x21222324252627ull;
    request.op = corpus_op(1003, OpType::kClearTcam);
    Buf out;
    net::encode_request_frame(out, SwitchId(7), request);
    add("request_clear_tcam", std::move(out));
  }
  {
    SwitchRequest request;
    request.type = SwitchRequest::Type::kDumpTable;
    request.xid = kReconciliationXidFlag | 0x31ull;
    request.op = corpus_op(1004, OpType::kDumpTable);
    Buf out;
    net::encode_request_frame(out, SwitchId(7), request);
    add("request_dump_table", std::move(out));
  }
  {
    SwitchRequest request;
    request.type = SwitchRequest::Type::kRoleChange;
    request.xid = 0x41ull;
    request.role = 2;
    Buf out;
    net::encode_request_frame(out, SwitchId(7), request);
    add("request_role_change", std::move(out));
  }
  {
    SwitchRequest request;
    request.type = SwitchRequest::Type::kBatch;
    request.xid = 0x51ull;
    request.batch = {corpus_op(1005, OpType::kInstallRule),
                     corpus_op(1006, OpType::kDeleteRule),
                     corpus_op(1007, OpType::kInstallRule)};
    Buf out;
    net::encode_request_frame(out, SwitchId(7), request);
    add("request_batch", std::move(out));
  }
  {
    SwitchReply reply;
    reply.type = SwitchReply::Type::kAck;
    reply.xid = 0x0102030405060708ull;
    reply.sw = SwitchId(7);
    reply.op = corpus_op(1001, OpType::kInstallRule);
    Buf out;
    net::encode_reply_frame(out, reply);
    add("reply_ack", std::move(out));
  }
  {
    SwitchReply reply;
    reply.type = SwitchReply::Type::kDumpReply;
    reply.xid = kReconciliationXidFlag | 0x31ull;
    reply.sw = SwitchId(7);
    reply.op = corpus_op(1004, OpType::kDumpTable);
    for (std::uint32_t i = 0; i < 3; ++i) {
      DumpedEntry entry;
      entry.installed_by = OpId(2000 + i);
      entry.rule = corpus_op(2000 + i, OpType::kInstallRule).rule;
      entry.rule.priority = static_cast<int>(i);
      reply.table.push_back(entry);
    }
    Buf out;
    net::encode_reply_frame(out, reply);
    add("reply_dump", std::move(out));
  }
  {
    SwitchReply reply;
    reply.type = SwitchReply::Type::kRoleAck;
    reply.xid = 0x41ull;
    reply.sw = SwitchId(7);
    reply.role = 2;
    Buf out;
    net::encode_reply_frame(out, reply);
    add("reply_role_ack", std::move(out));
  }
  {
    SwitchReply reply;
    reply.type = SwitchReply::Type::kBatchAck;
    reply.xid = 0x51ull;
    reply.sw = SwitchId(7);
    reply.batch = {corpus_op(1005, OpType::kInstallRule),
                   corpus_op(1006, OpType::kDeleteRule),
                   corpus_op(1007, OpType::kInstallRule)};
    Buf out;
    net::encode_reply_frame(out, reply);
    add("reply_batch_ack", std::move(out));
  }
  {
    SwitchHealthEvent event;
    event.type = SwitchHealthEvent::Type::kFailure;
    event.sw = SwitchId(4);
    event.state_lost = true;
    Buf out;
    net::encode_health_frame(out, event);
    add("health_failure_state_lost", std::move(out));
  }
  {
    SwitchHealthEvent event;
    event.type = SwitchHealthEvent::Type::kRecovery;
    event.sw = SwitchId(4);
    event.state_lost = false;
    Buf out;
    net::encode_health_frame(out, event);
    add("health_recovery", std::move(out));
  }
  {
    LinkHealthEvent event;
    event.link = LinkId(0x0A0B0C0Du);
    event.up = false;
    Buf out;
    net::encode_link_frame(out, event);
    add("link_down", std::move(out));
  }
  {
    LinkHealthEvent event;
    event.link = LinkId(0x0A0B0C0Du);
    event.up = true;
    Buf out;
    net::encode_link_frame(out, event);
    add("link_up", std::move(out));
  }
  {
    Buf out;
    net::encode_bye_frame(out);
    add("bye", std::move(out));
  }
  return corpus;
}

}  // namespace zenith::golden
