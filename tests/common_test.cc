#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"

namespace zenith {
namespace {

TEST(Ids, StrongIdsAreDistinctTypesWithValueSemantics) {
  SwitchId a(3);
  SwitchId b(3);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(SwitchId().valid());
  EXPECT_LT(SwitchId(1), SwitchId(2));
  static_assert(!std::is_convertible_v<SwitchId, OpId>);
  static_assert(!std::is_convertible_v<std::uint32_t, SwitchId>);
}

TEST(Ids, TimeConversions) {
  EXPECT_EQ(seconds(1.5), 1500000);
  EXPECT_EQ(millis(2), 2000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(30)), 30.0);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.fork();
  // Drawing from the child must not perturb the parent relative to a
  // reference that forked and never used the child.
  Rng parent2(42);
  (void)parent2.fork();
  for (int i = 0; i < 10; ++i) (void)child.next_u64();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent.next_u64(), parent2.next_u64());
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = 5;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> bad = Error::not_found("missing");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Error::Code::kNotFound);
  EXPECT_EQ(bad.value_or(9), 9);
  Status st = Status::success();
  EXPECT_TRUE(st.ok());
}

TEST(Stats, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.05);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Stats, CdfIsMonotone) {
  Summary s;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) s.add(rng.next_double());
  auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 500u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Stats, HistogramBinsAndOutOfRange) {
  Histogram h(0, 10, 5);
  h.add(-1);   // below range: counted as underflow, not binned
  h.add(0.5);
  h.add(9.9);
  h.add(25);   // at/above hi: counted as overflow, not binned
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_NE(h.to_string().find("1 below, 1 above"), std::string::npos);
}

TEST(Stats, TimeSeriesBuckets) {
  TimeSeries ts(seconds(1));
  ts.record(millis(100), 5.0);
  ts.record(millis(900), 7.0);  // same bucket: last write wins
  ts.accumulate(seconds(2.5), 1.0);
  ts.accumulate(seconds(2.6), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0), 7.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2), 3.0);
}

TEST(Hash, Fnv1aStable) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
}

TEST(Hash, HasherOrderSensitive) {
  Hasher a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Strings, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
  EXPECT_TRUE(starts_with("zenith-core", "zenith"));
  EXPECT_FALSE(starts_with("z", "zen"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
}

}  // namespace
}  // namespace zenith
