#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <set>
#include <thread>

#include "common/fingerprint_set.h"
#include "common/hash.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"

namespace zenith {
namespace {

TEST(Ids, StrongIdsAreDistinctTypesWithValueSemantics) {
  SwitchId a(3);
  SwitchId b(3);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(SwitchId().valid());
  EXPECT_LT(SwitchId(1), SwitchId(2));
  static_assert(!std::is_convertible_v<SwitchId, OpId>);
  static_assert(!std::is_convertible_v<std::uint32_t, SwitchId>);
}

TEST(Ids, TimeConversions) {
  EXPECT_EQ(seconds(1.5), 1500000);
  EXPECT_EQ(millis(2), 2000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(30)), 30.0);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.fork();
  // Drawing from the child must not perturb the parent relative to a
  // reference that forked and never used the child.
  Rng parent2(42);
  (void)parent2.fork();
  for (int i = 0; i < 10; ++i) (void)child.next_u64();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent.next_u64(), parent2.next_u64());
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = 5;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> bad = Error::not_found("missing");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Error::Code::kNotFound);
  EXPECT_EQ(bad.value_or(9), 9);
  Status st = Status::success();
  EXPECT_TRUE(st.ok());
}

TEST(Stats, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.05);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Stats, CdfIsMonotone) {
  Summary s;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) s.add(rng.next_double());
  auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 500u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Stats, HistogramBinsAndOutOfRange) {
  Histogram h(0, 10, 5);
  h.add(-1);   // below range: counted as underflow, not binned
  h.add(0.5);
  h.add(9.9);
  h.add(25);   // at/above hi: counted as overflow, not binned
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_NE(h.to_string().find("1 below, 1 above"), std::string::npos);
}

TEST(Stats, TimeSeriesBuckets) {
  TimeSeries ts(seconds(1));
  ts.record(millis(100), 5.0);
  ts.record(millis(900), 7.0);  // same bucket: last write wins
  ts.accumulate(seconds(2.5), 1.0);
  ts.accumulate(seconds(2.6), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0), 7.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2), 3.0);
}

TEST(Hash, Fnv1aStable) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
}

TEST(Hash, HasherOrderSensitive) {
  Hasher a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Strings, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
  EXPECT_TRUE(starts_with("zenith-core", "zenith"));
  EXPECT_FALSE(starts_with("z", "zen"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
}

// PR 9: the model checker's sharded seen-set.

TEST(ShardedFingerprintSet, InsertDeduplicatesAndGrows) {
  ShardedFingerprintSet::Options options;
  options.shards = 4;
  options.initial_capacity_per_shard = 64;  // force several growth rounds
  ShardedFingerprintSet set(options);
  std::mt19937_64 rng(42);
  std::vector<ShardedFingerprintSet::Fingerprint> fps;
  for (int i = 0; i < 5000; ++i) fps.push_back({rng(), rng()});
  for (const auto& fp : fps) EXPECT_TRUE(set.insert(fp));
  for (const auto& fp : fps) EXPECT_FALSE(set.insert(fp));
  EXPECT_EQ(set.size(), fps.size());
  EXPECT_EQ(set.shard_count(), 4u);
  EXPECT_FALSE(set.disk_backed());
}

TEST(ShardedFingerprintSet, ZeroFingerprintIsNotSilentlyDropped) {
  // (0,0) doubles as the empty-slot sentinel; the insert path must remap it
  // so the real state is stored exactly once.
  ShardedFingerprintSet set;
  EXPECT_TRUE(set.insert({0, 0}));
  EXPECT_FALSE(set.insert({0, 0}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ShardedFingerprintSet, ConcurrentInsertsCountEachValueOnce) {
  ShardedFingerprintSet::Options options;
  options.shards = 8;
  options.initial_capacity_per_shard = 64;
  ShardedFingerprintSet set(options);
  // 4 threads race over overlapping ranges; every value must win exactly
  // one insert across all threads.
  constexpr int kValues = 20'000;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&set, &wins] {
      int local = 0;
      for (int v = 0; v < kValues; ++v) {
        std::uint64_t x = static_cast<std::uint64_t>(v) * 0x2545f4914f6cdd1dull;
        if (set.insert({x, ~x})) ++local;
      }
      wins += local;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wins.load(), kValues);
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kValues));
}

TEST(ShardedFingerprintSet, DiskBackedStoreSpillsAndCleansUp) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "fpset_spill_test";
  std::filesystem::create_directories(dir);
  {
    ShardedFingerprintSet::Options options;
    options.shards = 2;
    options.initial_capacity_per_shard = 64;
    options.disk_store_path = dir.string();
    ShardedFingerprintSet set(options);
    EXPECT_TRUE(set.disk_backed());
    EXPECT_GT(set.disk_bytes_mapped(), 0u);
    std::mt19937_64 rng(7);
    for (int i = 0; i < 2000; ++i) EXPECT_TRUE(set.insert({rng(), rng()}));
    EXPECT_EQ(set.size(), 2000u);
    // Spill files are unlinked as soon as they are mapped/replaced — the
    // directory holds no bytes the set does not still use.
  }
  // After destruction nothing is left behind.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove(dir);
}

TEST(ShardedFingerprintSet, MissingSpillDirectoryThrows) {
  ShardedFingerprintSet::Options options;
  options.disk_store_path = "/nonexistent/zenith-fpset";
  EXPECT_THROW(ShardedFingerprintSet set(options), std::runtime_error);
}

}  // namespace
}  // namespace zenith
