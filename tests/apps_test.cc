// Application tests: drain/undrain (runtime + NADIR spec conformance), TE,
// planned failover, and AbstractApp.
#include <gtest/gtest.h>

#include "apps/abstract_app.h"
#include "apps/app_specs.h"
#include "apps/drain_app.h"
#include "apps/drain_spec.h"
#include "apps/failover_app.h"
#include "apps/generated_drain_app.h"
#include "apps/maintenance_app.h"
#include "apps/te_app.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "mc/abstraction.h"
#include "mc/nadir_explorer.h"
#include "nadir/interpreter.h"
#include "topo/generators.h"

namespace zenith::apps {
namespace {

ExperimentConfig zenith_config(std::uint64_t seed = 7) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kZenithNR;
  return config;
}

DrainRequest diamond_drain_request(Experiment& exp, Workload& workload) {
  DrainRequest request;
  request.topology = gen::figure2_diamond();
  for (const Demand& d : workload.demands()) {
    request.flows.push_back(d.flow);
  }
  request.ops = workload.all_flow_ops();
  // Current path: A -> B -> D.
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(3)}};
  request.node_to_drain = SwitchId(1);
  (void)exp;
  return request;
}

TEST(DrainAppTest, HitlessDrainMovesTrafficOffSwitch) {
  Experiment exp(gen::figure2_diamond(), zenith_config());
  exp.start();
  Workload workload(&exp, 3);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  DrainApp app(&exp.controller());
  app.submit(diamond_drain_request(exp, workload));
  auto drained = exp.run_until(
      [&] { return exp.fabric().at(SwitchId(1)).table_size() == 0; },
      seconds(20));
  ASSERT_TRUE(drained.has_value()) << "switch B still carries rules";
  EXPECT_EQ(app.drains_completed(), 1u);
  // Traffic flows via C now.
  EXPECT_TRUE(exp.fabric().at(SwitchId(2)).lookup(SwitchId(3)).has_value());
  EXPECT_TRUE(exp.order_checker().ok());
}

TEST(DrainAppTest, RefusesDisconnectingDrain) {
  // Draining the only transit node of a chain would disconnect endpoints.
  Experiment exp(gen::linear(3), zenith_config(11));
  exp.start();
  Workload workload(&exp, 5);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(2)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  DrainApp app(&exp.controller());
  DrainRequest request;
  request.topology = gen::linear(3);
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(2)}};
  request.flows = {FlowId(1)};
  request.ops = workload.all_flow_ops();
  request.node_to_drain = SwitchId(1);
  app.submit(std::move(request));
  exp.run_for(seconds(1));
  EXPECT_EQ(app.drains_completed(), 0u);
  EXPECT_EQ(app.drains_rejected(), 1u);
  // The network is untouched.
  EXPECT_GT(exp.fabric().at(SwitchId(1)).table_size(), 0u);
}

TEST(DrainAppTest, CapacityFractionInvariant) {
  // compute_drain_dag refuses when too much capacity is already drained.
  DrainRequest request;
  request.topology = gen::fat_tree(4);
  request.node_to_drain = SwitchId(0);
  OpIdAllocator ids;
  auto result = compute_drain_dag(request, DagId(1), ids,
                                  /*max_capacity_fraction=*/0.25,
                                  /*switches_drained_so_far=*/5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Error::Code::kFailedPrecondition);
}

TEST(DrainAppTest, UndrainRestoresShortestPaths) {
  Experiment exp(gen::figure2_diamond(), zenith_config(13));
  exp.start();
  Workload workload(&exp, 3);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  DrainApp app(&exp.controller());
  app.submit(diamond_drain_request(exp, workload));
  ASSERT_TRUE(exp.run_until(
                     [&] { return app.drains_completed() == 1; }, seconds(10))
                  .has_value());
  exp.run_for(seconds(2));

  // Undrain: restore B to service; paths recompute over the full topology.
  DrainRequest undrain;
  undrain.topology = gen::figure2_diamond();
  undrain.paths = app.current_paths();
  undrain.flows = app.current_flows();
  undrain.ops = app.current_ops();
  undrain.node_to_drain = SwitchId(1);
  undrain.undrain = true;
  app.submit(std::move(undrain));
  auto restored = exp.run_until(
      [&] { return exp.fabric().at(SwitchId(1)).table_size() > 0; },
      seconds(20));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(app.drained().empty());
}

TEST(DrainSpecTest, SpecProducesSameDagShapeAsRuntimeApp) {
  // Conformance: interpret the NADIR drain spec to quiescence and compare
  // the produced DAG against the hand-written compute_drain_dag.
  DrainSpecScenario scenario;  // diamond, drain node 1, path 0-1-3
  nadir::Spec spec = build_drain_spec(scenario);
  auto env = spec.make_initial_env();
  ASSERT_TRUE(env.ok());
  nadir::Interpreter::run_to_quiescence(spec, env.value());
  ASSERT_TRUE(spec.check_types(env.value()).ok());
  EXPECT_TRUE(drain_submitted(env.value()));
  EXPECT_EQ(check_no_traffic_via_drained(env.value(), scenario.node_to_drain),
            "");

  // Runtime equivalent.
  DrainRequest request;
  request.topology = gen::figure2_diamond();
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(3)}};
  request.flows = {FlowId(1)};
  OpIdAllocator seed_ids;
  CompiledPath old_path = compile_single_path(
      {SwitchId(0), SwitchId(1), SwitchId(3)}, FlowId(1), 1, seed_ids);
  request.ops = old_path.ops;
  request.node_to_drain = SwitchId(1);
  OpIdAllocator ids;
  auto result = compute_drain_dag(request, DagId(1), ids);
  ASSERT_TRUE(result.ok());

  // Same structure: 2 new installs (0->2, 2->3) + 2 deletions.
  const nadir::Value& queue = env.value().globals.at("InstalledDags");
  EXPECT_EQ(queue.size(), 1u);
  std::size_t spec_installs = 0;
  const auto& drainer = env.value().procs.at("drainer");
  const nadir::Value& dag = drainer.locals.at("drainedDAG");
  ASSERT_FALSE(dag.is_nil());
  std::size_t spec_deletes = 0;
  for (const nadir::Value& op : dag.field("v").as_set()) {
    if (op.field("op").as_int() < 0) {
      ++spec_deletes;
    } else {
      ++spec_installs;
    }
  }
  EXPECT_EQ(spec_installs, result.value().new_ops.size());
  EXPECT_EQ(spec_deletes, request.ops.size());
}

TEST(DrainSpecTest, IndependentVerificationAgainstAbstractCore) {
  DrainSpecScenario scenario;
  nadir::Spec spec = build_drain_spec(scenario);
  mc::NadirCheckerOptions options;
  options.invariant = [&](const nadir::Env& env) {
    return check_no_traffic_via_drained(env, scenario.node_to_drain);
  };
  options.quiescence = [](const nadir::Env& env) {
    return drain_submitted(env) ? "" : "drainer never submitted a DAG";
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
  EXPECT_GT(result.distinct_states, 2u);
}

TEST(TeAppTest, RepairsAroundFailedSwitch) {
  Topology topo = gen::b4();
  Experiment exp(topo, zenith_config(17));
  exp.start();
  TrafficModel telemetry(&exp.fabric());
  TrafficEngineeringApp te(&exp.controller(), &exp.topology(), &telemetry);
  std::vector<Demand> demands{{FlowId(1), SwitchId(0), SwitchId(8), 5.0}};
  DagId initial = te.install_initial_paths(demands);
  ASSERT_TRUE(initial.valid());
  auto converged = exp.run_until(
      [&] { return exp.checker().converged(initial); }, seconds(20));
  ASSERT_TRUE(converged.has_value());

  // Fail a transit switch on the flow's path.
  Resolution before = telemetry.resolve(demands[0]);
  ASSERT_EQ(before.outcome, DeliveryOutcome::kDelivered);
  SwitchId victim = before.path[1];
  exp.fabric().inject_failure(victim, FailureMode::kCompletePermanent);
  auto repaired = exp.run_until(
      [&] {
        Resolution now = telemetry.resolve(demands[0]);
        return now.outcome == DeliveryOutcome::kDelivered;
      },
      seconds(30));
  ASSERT_TRUE(repaired.has_value());
  EXPECT_GE(te.repair_dags(), 1u);
}

TEST(GeneratedDrainAppTest, SpecDrivenDrainMatchesHandWrittenApp) {
  // The NADIR-generated app (interpreted verified spec) must produce the
  // same drained data plane as the hand-written DrainApp.
  Experiment exp(gen::figure2_diamond(), zenith_config(31));
  exp.start();
  Workload workload(&exp, 37);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  GeneratedDrainApp app(&exp.controller());
  DrainRequest request;
  request.topology = gen::figure2_diamond();
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(3)}};
  request.flows = {FlowId(1)};
  request.ops = workload.all_flow_ops();
  request.node_to_drain = SwitchId(1);
  app.submit(request);

  auto drained = exp.run_until(
      [&] {
        return app.dags_submitted() == 1 &&
               exp.fabric().at(SwitchId(1)).table_size() == 0 &&
               exp.fabric().at(SwitchId(2)).lookup(SwitchId(3)).has_value();
      },
      seconds(20));
  ASSERT_TRUE(drained.has_value()) << "generated app did not drain B";
  EXPECT_TRUE(exp.order_checker().ok());
  // Final forwarding state identical to the hand-written app's: A->C, C->D.
  auto a_entry = exp.fabric().at(SwitchId(0)).lookup(SwitchId(3));
  ASSERT_TRUE(a_entry.has_value());
  EXPECT_EQ(a_entry->rule.next_hop, SwitchId(2));
}

TEST(GeneratedDrainAppTest, SurvivesCrashMidComputation) {
  // The runtime spec uses the crash-safe queue discipline; crashing the
  // generated app mid-request must not lose the drain.
  Experiment exp(gen::figure2_diamond(), zenith_config(41));
  exp.start();
  Workload workload(&exp, 43);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());
  GeneratedDrainApp app(&exp.controller());
  DrainRequest request;
  request.topology = gen::figure2_diamond();
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(3)}};
  request.flows = {FlowId(1)};
  request.ops = workload.all_flow_ops();
  request.node_to_drain = SwitchId(1);
  app.submit(request);
  // Crash between the first interpreted steps, twice.
  exp.run_for(micros(200));
  app.crash();
  app.restart();
  exp.run_for(micros(350));
  app.crash();
  app.restart();
  auto drained = exp.run_until(
      [&] { return exp.fabric().at(SwitchId(1)).table_size() == 0; },
      seconds(20));
  EXPECT_TRUE(drained.has_value());
}

TEST(TeAppTest, ReroutesAroundFailedLink) {
  Experiment exp(gen::figure2_diamond(), zenith_config(29));
  exp.start();
  TrafficModel telemetry(&exp.fabric());
  TrafficEngineeringApp te(&exp.controller(), &exp.topology(), &telemetry);
  std::vector<Demand> demands{{FlowId(1), SwitchId(0), SwitchId(3), 5.0}};
  DagId initial = te.install_initial_paths(demands);
  ASSERT_TRUE(exp.run_until(
                     [&] { return exp.checker().converged_scoped(initial); },
                     seconds(20))
                  .has_value());
  // Kill the first link of the active path (A-B); both switches stay up.
  Resolution before = telemetry.resolve(demands[0]);
  ASSERT_EQ(before.outcome, DeliveryOutcome::kDelivered);
  auto link =
      exp.topology().link_between(before.path[0], before.path[1]);
  ASSERT_TRUE(link.ok());
  exp.fabric().inject_link_failure(link.value());
  auto repaired = exp.run_until(
      [&] {
        Resolution now = telemetry.resolve(demands[0]);
        return now.outcome == DeliveryOutcome::kDelivered;
      },
      seconds(30));
  ASSERT_TRUE(repaired.has_value()) << "TE never rerouted around the link";
  // The new path avoids the dead link (via C).
  Resolution after = telemetry.resolve(demands[0]);
  EXPECT_EQ(after.path[1], SwitchId(2));
  // The NIB's topology view learned the transition (T_c, Table 2).
  EXPECT_FALSE(exp.nib().link_up(link.value()));
}

TEST(FailoverAppTest, SequentialFailoversComplete) {
  Experiment exp(gen::linear(4), zenith_config(19));
  exp.start();
  FailoverApp app(&exp.controller());
  app.request_failover();
  app.request_failover();
  auto done = exp.run_until([&] { return app.completed() == 2; }, seconds(20));
  ASSERT_TRUE(done.has_value());
  for (auto [requested, completed] : app.completions()) {
    EXPECT_GT(completed, requested);
    EXPECT_LT(completed - requested, seconds(5));
  }
  // Final master role propagated.
  EXPECT_EQ(exp.fabric().at(SwitchId(0)).controller_role(), 2);
}

TEST(MaintenanceAppTest, WindowDrainsGatesAndRestores) {
  // The adaptive-consistency consumer end to end, in eventual mode: the
  // drain's reroute installs publish via the eventual log, the window gate
  // issues a strong barrier before opening, and the restore puts the
  // switch back in service.
  ExperimentConfig config = zenith_config(47);
  config.core.consistency.eventual_installs = true;
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  Workload workload(&exp, 3);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  MaintenanceApp app(&exp.controller(), &exp.topology());
  app.set_intent({{SwitchId(0), SwitchId(1), SwitchId(3)}},
                 {workload.demands().front().flow}, workload.all_flow_ops());
  app.request({SwitchId(1), millis(30)});

  // The gate opened: B carries no rules while in service.
  auto in_service = exp.run_until(
      [&] { return app.in_service().has_value(); }, seconds(20));
  ASSERT_TRUE(in_service.has_value()) << "window never opened";
  EXPECT_EQ(exp.fabric().at(SwitchId(1)).table_size(), 0u);
  EXPECT_GE(app.gate_barriers(), 1u);
  EXPECT_EQ(app.gate_aborts(), 0u);
  // The barrier published everything before the re-check (E2 discipline).
  EXPECT_EQ(exp.nib().eventual_pending(), 0u);

  auto done = exp.run_until(
      [&] { return app.windows_completed() == 1; }, seconds(20));
  ASSERT_TRUE(done.has_value()) << "restore never certified";
  // B is back in service and the intent reroutes through it again.
  auto restored = exp.run_until(
      [&] { return exp.fabric().at(SwitchId(1)).table_size() > 0; },
      seconds(20));
  EXPECT_TRUE(restored.has_value());
  EXPECT_EQ(exp.nib().strong_commits_with_pending(), 0u);
  EXPECT_TRUE(exp.order_checker().ok());
}

TEST(MaintenanceAppTest, SequentialWindowsOverEventualLog) {
  ExperimentConfig config = zenith_config(53);
  config.core.consistency.eventual_installs = true;
  config.core.consistency.staleness_bound = 4;
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  Workload workload(&exp, 9);
  Dag initial = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  MaintenanceApp app(&exp.controller(), &exp.topology());
  app.set_intent({{SwitchId(0), SwitchId(1), SwitchId(3)}},
                 {workload.demands().front().flow}, workload.all_flow_ops());
  // Two windows on alternating transit switches of the diamond.
  app.request({SwitchId(1), millis(20)});
  app.request({SwitchId(2), millis(20)});
  auto done = exp.run_until(
      [&] { return app.windows_completed() + app.windows_rejected() == 2; },
      seconds(40));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(app.windows_completed(), 2u);
  EXPECT_EQ(app.windows_rejected(), 0u);
  EXPECT_LE(exp.nib().eventual_max_lag(), 4u);
  EXPECT_EQ(exp.nib().strong_commits_with_pending(), 0u);
  EXPECT_TRUE(exp.order_checker().ok());
}

TEST(MaintenanceSpecTest, IndependentVerificationAgainstAbstractCore) {
  // Every interleaving of drain commits, eventual applies and the window
  // gate keeps E1/E2 and completes both windows.
  MaintenanceSpecScenario scenario;
  scenario.windows = 2;
  nadir::Spec spec = build_maintenance_spec(scenario);
  mc::NadirCheckerOptions options;
  options.invariant = [&](const nadir::Env& env) {
    return check_maintenance_gate(env, scenario);
  };
  options.quiescence = [&](const nadir::Env& env) {
    return maintenance_all_windows_done(env, scenario)
               ? ""
               : "maintenance windows never completed";
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
  EXPECT_GT(result.distinct_states, 10u);
}

TEST(MaintenanceSpecTest, SkippedGateBarrierYieldsE2Counterexample) {
  // The deliberate defect: the gate opens the window without draining the
  // eventual log. Some interleaving leaves entries pending at IN_SERVICE
  // and the checker must find it (the spec-level E2 negative test).
  MaintenanceSpecScenario scenario;
  scenario.bug_skip_barrier = true;
  nadir::Spec spec = build_maintenance_spec(scenario);
  mc::NadirCheckerOptions options;
  options.invariant = [&](const nadir::Env& env) {
    return check_maintenance_gate(env, scenario);
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("E2"), std::string::npos)
      << result.violation;
}

TEST(TeAppTest, ResplitSurvivesShardLeaderKillMidBatch) {
  // The satellite chaos cell: a TE re-split races an unplanned shard-leader
  // kill while its install batch is in flight, in eventual mode on a
  // replicated control plane. The run must converge and hold the pipeline
  // invariants plus E1/E2 at quiescence.
  Topology topo = gen::b4();
  ExperimentConfig config = zenith_config(59);
  config.core.repl.num_shards = 2;
  config.core.consistency.eventual_installs = true;
  Experiment exp(topo, config);
  exp.start();
  TrafficModel telemetry(&exp.fabric());
  TrafficEngineeringApp te(&exp.controller(), &exp.topology(), &telemetry);
  std::vector<Demand> demands{{FlowId(1), SwitchId(0), SwitchId(8), 5.0},
                              {FlowId(2), SwitchId(1), SwitchId(7), 5.0}};
  DagId initial = te.install_initial_paths(demands);
  ASSERT_TRUE(initial.valid());
  ASSERT_TRUE(exp.run_until([&] { return exp.checker().converged(initial); },
                            seconds(20))
                  .has_value());

  // Fail a transit switch to force the re-split, then kill a shard leader
  // while the replacement batch is mid-flight.
  Resolution before = telemetry.resolve(demands[0]);
  ASSERT_EQ(before.outcome, DeliveryOutcome::kDelivered);
  exp.fabric().inject_failure(before.path[1], FailureMode::kCompletePermanent);
  exp.run_for(millis(2));
  exp.controller().repl()->kill_shard_leader(0);
  exp.run_for(millis(40));
  exp.controller().repl()->revive_shard(0);

  auto repaired = exp.run_until(
      [&] {
        Resolution now = telemetry.resolve(demands[0]);
        return now.outcome == DeliveryOutcome::kDelivered &&
               exp.controller().repl()->settled();
      },
      seconds(40));
  ASSERT_TRUE(repaired.has_value()) << "TE never repaired under the kill";
  // Full quiescence before the oracle: every transitional status drained,
  // no un-acked SENT toward a healthy switch, eventual log published.
  auto quiesced = exp.run_until(
      [&] {
        if (!exp.controller().repl()->settled()) return false;
        if (exp.nib().eventual_pending() != 0) return false;
        if (!exp.nib().ops_with_status(OpStatus::kScheduled).empty()) {
          return false;
        }
        if (!exp.nib().ops_with_status(OpStatus::kInFlight).empty()) {
          return false;
        }
        for (OpId id : exp.nib().ops_with_status(OpStatus::kSent)) {
          const Op& op = exp.nib().op(id);
          if (exp.nib().switch_up(op.sw) && exp.fabric().alive(op.sw)) {
            return false;
          }
        }
        return true;
      },
      seconds(30));
  ASSERT_TRUE(quiesced.has_value()) << "pipeline never drained";

  // P1–P8 via the model-conformance oracle, plus the E1/E2 accounting.
  mc::FaultHistory history;
  history.assume_any = true;
  std::vector<std::string> violations =
      mc::check_quiescent(exp, initial, history);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << violations.front();
  EXPECT_GT(exp.nib().eventual_committed(), 0u);
  EXPECT_LE(exp.nib().eventual_max_lag(),
            config.core.consistency.staleness_bound);
  EXPECT_EQ(exp.nib().strong_commits_with_pending(), 0u);
  EXPECT_TRUE(exp.order_checker().ok());
}

TEST(AbstractAppTest, ReactsToFailureWithPredefinedDag) {
  Experiment exp(gen::figure2_diamond(), zenith_config(23));
  exp.start();
  AbstractApp app(&exp.controller());

  // Pre-defined DAGs (§3.6): healthy -> route via B; B down -> route via C.
  OpIdAllocator& ids = exp.op_ids();
  auto make_dag = [&](DagId id, const Path& path) {
    Dag dag(id);
    CompiledPath compiled = compile_single_path(path, FlowId(1), 1, ids);
    for (const Op& op : compiled.ops) EXPECT_TRUE(dag.add_op(op).ok());
    for (auto [a, b] : compiled.edges) EXPECT_TRUE(dag.add_edge(a, b).ok());
    return dag;
  };
  std::set<SwitchId> all{SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(3)};
  std::set<SwitchId> without_b{SwitchId(0), SwitchId(2), SwitchId(3)};
  app.add_dag_for(all, make_dag(DagId(501),
                                {SwitchId(0), SwitchId(1), SwitchId(3)}));
  app.add_dag_for(without_b, make_dag(DagId(502),
                                      {SwitchId(0), SwitchId(2), SwitchId(3)}));
  app.bootstrap();
  auto installed = exp.run_until(
      [&] { return exp.checker().converged(DagId(501)); }, seconds(20));
  ASSERT_TRUE(installed.has_value());

  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompletePermanent);
  auto reacted = exp.run_until(
      [&] { return exp.checker().converged(DagId(502)); }, seconds(30));
  ASSERT_TRUE(reacted.has_value());
  EXPECT_EQ(app.dags_installed(), 2u);
  // §3.6 guarantee: no routing state of the deleted DAG survives.
  EXPECT_FALSE(exp.fabric().at(SwitchId(0)).lookup(SwitchId(3))->rule.next_hop ==
               SwitchId(1));
}

}  // namespace
}  // namespace zenith::apps
