// Socket transport suite (label: wire): the ByteRing, the epoll Connection
// (short-write resume, watermark backpressure) over a socketpair, and the
// headline conformance case — the full controller pipeline driven through
// SocketTransport <-> SwitchBridge across a real kernel socket must reach
// exactly the NIB fingerprint the deterministic sim bus reaches on the same
// scenario and seed.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "topo/generators.h"

#include "net/connection.h"
#include "net/event_loop.h"
#include "net/ring_buffer.h"
#include "net/socket.h"
#include "net/socket_transport.h"
#include "net/switch_bridge.h"
#include "netd/wire_scenario.h"
#include "wire_frames_corpus.h"

namespace zenith {
namespace {

using net::ByteRing;
using net::Connection;
using net::EventLoop;
using net::WireMessage;

// ---- ByteRing -------------------------------------------------------------

TEST(ByteRing, PushPopWrapsAroundCleanly) {
  ByteRing ring(/*initial_capacity=*/16);
  EXPECT_EQ(ring.capacity(), 16u);
  std::uint8_t data[12];
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < sizeof(data); ++i) {
      data[i] = static_cast<std::uint8_t>(round * 16 + i);
    }
    ring.push(data, sizeof(data));
    ASSERT_EQ(ring.size(), sizeof(data));
    // Reading may take two spans when the content wraps the backing store.
    std::vector<std::uint8_t> got;
    while (!ring.empty()) {
      std::size_t span = ring.read_span();
      ASSERT_GT(span, 0u);
      got.insert(got.end(), ring.read_ptr(), ring.read_ptr() + span);
      ring.pop(span);
    }
    ASSERT_EQ(got.size(), sizeof(data));
    EXPECT_EQ(0, std::memcmp(got.data(), data, sizeof(data)));
  }
  EXPECT_EQ(ring.capacity(), 16u) << "no growth needed for wrapped reuse";
}

TEST(ByteRing, GrowthLinearizesWrappedContent) {
  ByteRing ring(/*initial_capacity=*/8);
  std::vector<std::uint8_t> expect;
  std::uint8_t b = 0;
  auto push_n = [&](std::size_t n) {
    std::vector<std::uint8_t> chunk(n);
    for (auto& c : chunk) c = b++;
    ring.push(chunk.data(), chunk.size());
    expect.insert(expect.end(), chunk.begin(), chunk.end());
  };
  push_n(6);
  ring.pop(4);
  expect.erase(expect.begin(), expect.begin() + 4);
  push_n(5);  // wraps within capacity 8
  push_n(40);  // forces growth while wrapped
  EXPECT_GE(ring.capacity(), 47u);
  EXPECT_EQ(ring.snapshot(), expect);
  // Post-growth content is linear: one span covers everything.
  EXPECT_EQ(ring.read_span(), ring.size());
}

TEST(ByteRing, SnapshotMatchesPopOrder) {
  ByteRing ring(16);
  std::uint8_t data[10] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  ring.push(data, 4);
  ring.pop(2);
  ring.push(data + 4, 6);
  std::vector<std::uint8_t> snap = ring.snapshot();
  std::vector<std::uint8_t> popped;
  while (!ring.empty()) {
    std::size_t span = ring.read_span();
    popped.insert(popped.end(), ring.read_ptr(), ring.read_ptr() + span);
    ring.pop(span);
  }
  EXPECT_EQ(snap, popped);
  EXPECT_TRUE(ring.empty());
}

// ---- Connection over a socketpair ----------------------------------------

struct PairedConnections {
  EventLoop loop;
  std::unique_ptr<Connection> a;
  std::unique_ptr<Connection> b;
  std::vector<WireMessage> a_received;
  std::vector<WireMessage> b_received;
  int a_drains = 0;
  std::string a_closed;
  std::string b_closed;

  // `sndbuf` shrinks the kernel send buffer so short writes are forced.
  explicit PairedConnections(int sndbuf = 0) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    if (sndbuf > 0) {
      ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
      ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &sndbuf, sizeof(sndbuf));
    }
    EXPECT_TRUE(net::set_nonblocking(fds[0]).ok());
    EXPECT_TRUE(net::set_nonblocking(fds[1]).ok());
    a = std::make_unique<Connection>(
        &loop, fds[0],
        Connection::Callbacks{
            [this](std::vector<WireMessage>& m) {
              a_received.insert(a_received.end(), m.begin(), m.end());
            },
            [this] { ++a_drains; },
            [this](const std::string& reason) { a_closed = reason; }});
    b = std::make_unique<Connection>(
        &loop, fds[1],
        Connection::Callbacks{
            [this](std::vector<WireMessage>& m) {
              b_received.insert(b_received.end(), m.begin(), m.end());
            },
            [] {},
            [this](const std::string& reason) { b_closed = reason; }});
  }

  void poll_until(const std::function<bool()>& done, int max_polls = 10000) {
    for (int i = 0; i < max_polls && !done(); ++i) {
      auto polled = loop.poll(1);
      ASSERT_TRUE(polled.ok());
    }
    EXPECT_TRUE(done()) << "condition not reached in " << max_polls
                        << " polls";
  }
};

TEST(WireConnection, DeliversWholeCorpusInOrder) {
  PairedConnections pair;
  auto corpus = golden::wire_frame_corpus();
  for (const auto& [name, frame] : corpus) {
    (void)name;
    pair.a->send_frame(frame);
  }
  pair.poll_until([&] { return pair.b_received.size() == corpus.size(); });
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    // Re-encoding the received message must reproduce the sent bytes.
    std::vector<std::uint8_t> again;
    const WireMessage& m = pair.b_received[i];
    switch (m.type) {
      case net::FrameType::kHello:
        net::encode_hello_frame(again, m.hello);
        break;
      case net::FrameType::kSwitchRequest:
        net::encode_request_frame(again, m.sw, m.request);
        break;
      case net::FrameType::kSwitchReply:
        net::encode_reply_frame(again, m.reply);
        break;
      case net::FrameType::kHealthEvent:
        net::encode_health_frame(again, m.health);
        break;
      case net::FrameType::kLinkEvent:
        net::encode_link_frame(again, m.link);
        break;
      case net::FrameType::kBye:
        net::encode_bye_frame(again);
        break;
    }
    EXPECT_EQ(again, corpus[i].second) << "frame " << corpus[i].first;
  }
  EXPECT_EQ(pair.a->stats().frames_sent, corpus.size());
  EXPECT_EQ(pair.b->stats().frames_received, corpus.size());
}

SwitchReply big_dump_reply(std::uint32_t entries) {
  SwitchReply reply;
  reply.type = SwitchReply::Type::kDumpReply;
  reply.xid = 1;
  reply.sw = SwitchId(0);
  for (std::uint32_t i = 0; i < entries; ++i) {
    DumpedEntry entry;
    entry.installed_by = OpId(i);
    entry.rule = golden::corpus_op(i, OpType::kInstallRule).rule;
    reply.table.push_back(entry);
  }
  return reply;
}

TEST(WireConnection, ShortWriteResumesAcrossPolls) {
  // A ~480 KiB frame against a minimal kernel buffer cannot leave in one
  // write(2): the ring must hold the remainder and EPOLLOUT must finish the
  // job across polls, reassembling to one intact message on the far side.
  PairedConnections pair(/*sndbuf=*/4096);
  std::vector<std::uint8_t> frame;
  net::encode_reply_frame(frame, big_dump_reply(20000));
  ASSERT_GT(frame.size(), 400u * 1024u);
  pair.a->send_frame(frame);
  EXPECT_GT(pair.a->pending_send_bytes(), 0u)
      << "frame implausibly fit the shrunken kernel buffer";
  pair.poll_until([&] { return pair.b_received.size() == 1; });
  EXPECT_GE(pair.a->stats().short_writes, 1u);
  EXPECT_EQ(pair.a->stats().bytes_sent, frame.size());
  ASSERT_EQ(pair.b_received[0].reply.table.size(), 20000u);
  EXPECT_TRUE(pair.a_closed.empty()) << pair.a_closed;
  EXPECT_TRUE(pair.b_closed.empty()) << pair.b_closed;
}

TEST(WireConnection, WatermarkStallsAndDrainCallbackResumes) {
  PairedConnections pair(/*sndbuf=*/4096);
  pair.a->set_watermarks(/*high=*/32 * 1024, /*low=*/4 * 1024);
  std::vector<std::uint8_t> frame;
  net::encode_reply_frame(frame, big_dump_reply(500));  // ~12 KiB
  ASSERT_TRUE(pair.a->writable());
  int sent = 0;
  // Without polling, the kernel buffer caps out and pending bytes climb
  // past the high watermark: the connection must latch unwritable.
  while (pair.a->writable() && sent < 1000) {
    pair.a->send_frame(frame);
    ++sent;
  }
  ASSERT_LT(sent, 1000) << "never stalled";
  EXPECT_FALSE(pair.a->writable());
  EXPECT_GE(pair.a->stats().stall_events, 1u);
  EXPECT_EQ(pair.a_drains, 0);

  // Polling lets the peer drain; the resume callback must fire exactly once
  // and writability return.
  pair.poll_until([&] {
    return pair.a->pending_send_bytes() == 0 &&
           pair.b_received.size() == static_cast<std::size_t>(sent);
  });
  EXPECT_TRUE(pair.a->writable());
  EXPECT_EQ(pair.a_drains, 1);
}

TEST(WireConnection, PeerCloseReportsAndClosesOnce) {
  PairedConnections pair;
  pair.b.reset();  // destructor closes the fd
  pair.poll_until([&] { return !pair.a->open(); });
  EXPECT_FALSE(pair.a_closed.empty());
}

// ---- transport <-> bridge conformance -------------------------------------

TEST(WireTransport, SocketBackendMatchesSimBusFingerprint) {
  // The acceptance gate in miniature (the daemons run the same scenario at
  // 100k OPs): B4 topology, install + churn + drain/undrain + volume waves
  // through a real socketpair must finish on exactly the NIB fingerprint the
  // in-process sim bus reaches.
  netd::WireScenarioConfig config;
  config.seed = 42;
  config.flows = 8;
  config.churn_updates = 6;
  config.target_ops = 500;
  config.drain_rounds = 1;

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(net::set_nonblocking(fds[0]).ok());
  ASSERT_TRUE(net::set_nonblocking(fds[1]).ok());

  EventLoop loop;
  Topology topo = netd::wire_topology(config);
  net::SwitchBridge bridge(topo, config.seed);
  bridge.attach(&loop, fds[1]);

  net::SocketTransport transport(&loop, fds[0]);
  ASSERT_TRUE(transport.handshake(config.seed, /*timeout_ms=*/5000).ok());
  ASSERT_EQ(transport.switch_count(), topo.switch_count());
  EXPECT_EQ(transport.peer_seed(), config.seed);

  Simulator sim;
  ZenithController controller(&sim, &transport);
  controller.start();
  auto pump = [&] {
    auto polled = loop.poll(0);
    ASSERT_TRUE(polled.ok());
    bridge.pump();
    sim.run_until(sim.now() + micros(200));
  };
  netd::WireScenarioReport report =
      netd::run_wire_scenario(config, controller, pump, nullptr);
  ASSERT_TRUE(report.converged) << report.error;
  EXPECT_GE(report.ops, config.target_ops);

  netd::WireScenarioReport reference = netd::run_wire_scenario_sim(config);
  ASSERT_TRUE(reference.converged) << reference.error;
  EXPECT_EQ(report.fingerprint, reference.fingerprint)
      << "wire backend diverged from the sim bus";

  // Wire-level sanity: every OP crossed the socket as a counted frame.
  EXPECT_GE(transport.stats().frames_sent, report.ops);
  EXPECT_GE(transport.stats().frames_received, report.ops);
  EXPECT_EQ(bridge.requests_received(), transport.stats().frames_sent - 1)
      << "bridge should see every sent frame except the Hello";

  // Clean shutdown: Bye both ways.
  transport.send_bye_and_flush(/*timeout_ms=*/1000);
  for (int i = 0; i < 1000 && !bridge.peer_said_bye(); ++i) {
    auto polled = loop.poll(1);
    ASSERT_TRUE(polled.ok());
    bridge.pump();
  }
  EXPECT_TRUE(bridge.peer_said_bye());
  bridge.send_bye_and_flush(/*timeout_ms=*/1000);
  for (int i = 0; i < 1000 && !transport.peer_said_bye(); ++i) {
    auto polled = loop.poll(1);
    ASSERT_TRUE(polled.ok());
  }
  EXPECT_TRUE(transport.peer_said_bye());
}

TEST(WireTransport, BackpressureStallsPipelineWithoutLoss) {
  // Tiny watermarks + a kernel buffer the size of a postcard: the transport
  // must report unwritable under load (the Sequencer/Worker would pause),
  // then resume and still deliver every frame exactly once.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &sndbuf, sizeof(sndbuf));
  ASSERT_TRUE(net::set_nonblocking(fds[0]).ok());
  ASSERT_TRUE(net::set_nonblocking(fds[1]).ok());

  EventLoop loop;
  Topology topo = gen::b4();
  net::SwitchBridge bridge(topo, /*seed=*/1);
  bridge.attach(&loop, fds[1]);
  net::SocketTransport transport(&loop, fds[0]);
  ASSERT_TRUE(transport.handshake(/*seed=*/1, /*timeout_ms=*/5000).ok());

  int resumes = 0;
  transport.set_resume_callback([&resumes] { ++resumes; });

  // Push requests while never polling: the transport must stall.
  SwitchRequest request;
  request.type = SwitchRequest::Type::kDumpTable;
  request.op = golden::corpus_op(1, OpType::kDumpTable);
  std::uint64_t pushed = 0;
  while (transport.writable() && pushed < 100000) {
    request.xid = ++pushed;
    transport.send(SwitchId(0), request);
  }
  ASSERT_LT(pushed, 100000u)
      << "transport never exerted backpressure";
  EXPECT_FALSE(transport.writable());

  // Drain: poll + pump until the bridge saw every request and replied.
  for (int i = 0; i < 200000 && bridge.requests_received() < pushed; ++i) {
    auto polled = loop.poll(0);
    ASSERT_TRUE(polled.ok());
    bridge.pump();
  }
  EXPECT_EQ(bridge.requests_received(), pushed) << "frames lost under stall";
  EXPECT_TRUE(transport.writable());
  EXPECT_GE(resumes, 1);
}

}  // namespace
}  // namespace zenith
