// Regenerates tests/golden/FINGERPRINTS.json (stdout). Run through
// scripts/update_golden.sh so the committed file and the build stay in sync.
#include <cinttypes>
#include <cstdio>

#include "golden_scenarios.h"

int main() {
  auto fingerprints = zenith::golden::compute_fingerprints();
  std::printf("{\n");
  std::size_t i = 0;
  for (const auto& [name, value] : fingerprints) {
    std::printf("  \"%s\": \"0x%016" PRIx64 "\"%s\n", name.c_str(), value,
                ++i < fingerprints.size() ? "," : "");
  }
  std::printf("}\n");
  return 0;
}
