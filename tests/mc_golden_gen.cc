// Regenerates tests/golden/MC_CELLS.json (stdout). Run through
// scripts/update_golden.sh so the committed file and the build stay in
// sync.
#include <cstdio>

#include "mc_golden_cells.h"

int main() {
  auto cells = zenith::golden::compute_mc_cells(/*threads=*/1);
  std::printf("{\n");
  std::size_t i = 0;
  for (const auto& [name, value] : cells) {
    std::printf("  \"%s\": \"%s\"%s\n", name.c_str(), value.c_str(),
                ++i < cells.size() ? "," : "");
  }
  std::printf("}\n");
  return 0;
}
