// Replicated control plane (src/repl) tests: protocol-level unit coverage
// of the quorum log (append/commit, election on lease expiry, snapshot
// catch-up, epoch monotonicity), the commit-before-quorum defect knob
// tripping R2, exactly-once OP delivery across an unplanned leader
// takeover, the seeded replicated chaos grid (3 topologies x 3 seeds,
// zero R1-R4/P-invariant violations), and the seeded takeover-delay
// randomization keeping equal-seed runs byte-identical.
#include <map>
#include <unordered_map>

#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "golden_scenarios.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "repl/repl.h"
#include "sim/simulator.h"
#include "topo/generators.h"

namespace zenith {
namespace {

using repl::ReplConfig;
using repl::ReplicatedControlPlane;

Op install_op(std::uint32_t id, std::uint32_t sw) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(sw);
  op.rule = FlowRule{FlowId(id), SwitchId(sw), SwitchId(sw + 1),
                     SwitchId(sw + 1), 1};
  return op;
}

ReplConfig one_shard_config() {
  ReplConfig config;
  config.num_shards = 1;
  return config;
}

TEST(ReplShard, AppendsCommitAtQuorumAndApplyInOrder) {
  Simulator sim;
  ReplicatedControlPlane rcp(&sim, one_shard_config());
  std::vector<std::uint64_t> applied_indexes;
  rcp.set_apply([&](std::size_t, const repl::LogEntry& entry) {
    applied_indexes.push_back(entry.index);
  });
  rcp.start();
  EXPECT_TRUE(rcp.submit_ack(SwitchId(0), {install_op(1, 0)}));
  EXPECT_TRUE(rcp.submit_ack(SwitchId(1), {install_op(2, 1)}));
  EXPECT_TRUE(rcp.submit_ack(SwitchId(2), {install_op(3, 2)}));
  // Nothing reaches the NIB before a follower round trip confirms quorum.
  EXPECT_TRUE(applied_indexes.empty());
  sim.run_until(millis(50));

  const repl::Shard& shard = rcp.shard(0);
  EXPECT_EQ(shard.counters().appends, 3u);
  EXPECT_EQ(shard.counters().commits, 3u);
  ASSERT_EQ(applied_indexes.size(), 3u);
  for (std::size_t i = 0; i < applied_indexes.size(); ++i) {
    EXPECT_EQ(applied_indexes[i], i + 1);
  }
  EXPECT_TRUE(rcp.settled());
  EXPECT_TRUE(rcp.check_invariants(/*at_quiescence=*/true).empty());
}

TEST(ReplShard, LeaderKillElectsUpToDateStandbyAtHigherEpoch) {
  Simulator sim;
  ReplicatedControlPlane rcp(&sim, one_shard_config());
  rcp.start();
  ASSERT_TRUE(rcp.submit_ack(SwitchId(0), {install_op(1, 0)}));
  sim.run_until(millis(30));
  ASSERT_EQ(rcp.shard(0).epoch(), 1u);
  const int old_leader = rcp.shard(0).leader();

  rcp.kill_shard_leader(0);
  // ACKs hitting the shard while leaderless are dropped, not wedged.
  EXPECT_FALSE(rcp.submit_ack(SwitchId(1), {install_op(2, 1)}));
  EXPECT_GE(rcp.shard(0).counters().acks_dropped_no_leader, 1u);
  // Election after the lease runs out; the survivors are still a quorum.
  sim.run_until(millis(200));
  const repl::Shard& shard = rcp.shard(0);
  EXPECT_GE(shard.epoch(), 2u);
  EXPECT_NE(shard.leader(), old_leader);
  EXPECT_GE(shard.counters().elections, 1u);
  // The new leader inherited the committed entry and keeps serving.
  EXPECT_TRUE(rcp.submit_ack(SwitchId(2), {install_op(3, 2)}));
  sim.run_until(sim.now() + millis(100));
  EXPECT_EQ(shard.applied_to_nib(), 2u);
  EXPECT_TRUE(rcp.settled());
  EXPECT_TRUE(rcp.check_invariants(/*at_quiescence=*/true).empty());
}

TEST(ReplShard, HealedPartitionedLeaderCatchesUpViaSnapshot) {
  Simulator sim;
  ReplicatedControlPlane rcp(&sim, one_shard_config());
  rcp.start();
  ASSERT_TRUE(rcp.submit_ack(SwitchId(0), {install_op(1, 0)}));
  sim.run_until(millis(30));

  // Isolate the epoch-1 leader; the un-partitioned pair elects epoch 2 and
  // keeps committing (2 of 3 is a quorum).
  rcp.partition_shard_leader(0);
  sim.run_until(millis(200));
  ASSERT_GE(rcp.shard(0).epoch(), 2u);
  const std::size_t lag = rcp.config().snapshot_lag_threshold + 4;
  for (std::uint32_t i = 0; i < lag; ++i) {
    ASSERT_TRUE(rcp.submit_ack(SwitchId(i % 3), {install_op(10 + i, i % 3)}));
  }
  sim.run_until(sim.now() + millis(100));
  ASSERT_EQ(rcp.shard(0).applied_to_nib(), 1 + lag);

  // The healed replica trails the committed prefix past the threshold, so
  // catch-up installs a snapshot instead of streaming entries.
  rcp.heal_shard(0);
  sim.run_until(sim.now() + millis(100));
  EXPECT_GE(rcp.shard(0).counters().snapshots_installed, 1u);
  EXPECT_TRUE(rcp.settled());
  EXPECT_TRUE(rcp.check_invariants(/*at_quiescence=*/true).empty());
}

TEST(ReplShard, LeaseStallTriggersFailoverAndEpochsStayMonotone) {
  Simulator sim;
  ReplicatedControlPlane rcp(&sim, one_shard_config());
  rcp.start();
  ASSERT_TRUE(rcp.submit_ack(SwitchId(0), {install_op(1, 0)}));
  sim.run_until(millis(30));

  // A wedged leader stops heartbeating without dying: followers elect a
  // replacement at lease expiry, and the stalled process (still live and
  // reachable) rejoins as a follower of the higher epoch.
  rcp.stall_heartbeats(0);
  sim.run_until(millis(300));
  EXPECT_GE(rcp.shard(0).epoch(), 2u);
  rcp.resume_heartbeats(0);  // guarded no-op: leadership already moved
  sim.run_until(sim.now() + millis(100));
  EXPECT_TRUE(rcp.settled());
  EXPECT_TRUE(rcp.check_invariants(/*at_quiescence=*/true).empty());

  const auto& history = rcp.shard(0).election_history();
  ASSERT_FALSE(history.empty());
  std::uint64_t previous = 1;
  for (const auto& [epoch, leader] : history) {
    EXPECT_GT(epoch, previous);
    previous = epoch;
  }
}

TEST(ReplShard, CommitBeforeQuorumDefectViolatesR2OnLeaderLoss) {
  // The acceptance defect knob, pinned at protocol level: with the bug the
  // leader applies the entry the instant it is appended; killing it before
  // the append hop delivers leaves the NIB holding an entry only the dead
  // replica's log contains — R2's exact violation.
  auto run = [](bool bug) {
    Simulator sim;
    ReplConfig config = one_shard_config();
    config.bug_commit_before_quorum = bug;
    ReplicatedControlPlane rcp(&sim, config);
    rcp.start();
    rcp.submit_ack(SwitchId(0), {install_op(1, 0)});
    rcp.kill_shard_leader(0);  // before the replication hop delivers
    sim.run_until(millis(300));
    return rcp.check_invariants(/*at_quiescence=*/false);
  };
  std::vector<std::string> buggy = run(true);
  ASSERT_FALSE(buggy.empty());
  bool r2 = false;
  for (const std::string& violation : buggy) {
    if (violation.find("R2") != std::string::npos) r2 = true;
  }
  EXPECT_TRUE(r2) << buggy.front();
  EXPECT_TRUE(run(false).empty())
      << "correct protocol must not apply before quorum";
}

TEST(ReplShard, UnitRunsAreDeterministic) {
  auto digest_of = [] {
    Simulator sim;
    ReplicatedControlPlane rcp(&sim, one_shard_config());
    rcp.start();
    rcp.submit_ack(SwitchId(0), {install_op(1, 0)});
    sim.run_until(millis(25));
    rcp.kill_shard_leader(0);
    sim.run_until(millis(200));
    rcp.revive_shard(0);
    sim.run_until(millis(400));
    return rcp.digest();
  };
  EXPECT_EQ(digest_of(), digest_of());
}

TEST(ReplPipeline, KillLeaderMidInstallDeliversOpsExactlyOnce) {
  // Unplanned failover during an active installation, no switch faults: the
  // takeover requeue must re-drive lost ACKs without ever re-processing a
  // committed one. Every OP reaches DONE exactly once — a second DONE (or a
  // DONE->SENT flap) is a double delivery. Offsets sweep the vulnerable
  // windows: ACK in flight toward the dying leader, entry appended but
  // uncommitted, entry committed with the ACK already consumed.
  for (SimTime kill_after :
       {millis(1), millis(2), millis(4), millis(6), millis(8)}) {
    ExperimentConfig config;
    config.seed = 83;
    config.kind = ControllerKind::kZenithNR;
    config.core.repl.num_shards = 1;
    Experiment exp(gen::linear(4), config);
    exp.start();
    ASSERT_NE(exp.controller().repl(), nullptr);

    std::unordered_map<std::uint32_t, std::size_t> done_count;
    NadirFifo<NibEvent> probe;
    probe.set_wake_callback([&] {
      while (!probe.empty()) {
        NibEvent event = probe.pop();
        if (event.type != NibEvent::Type::kOpStatusChanged ||
            event.op_status != OpStatus::kDone) {
          continue;
        }
        std::vector<OpId> covered =
            event.batch.empty() ? std::vector<OpId>{event.op} : event.batch;
        for (OpId id : covered) ++done_count[id.value()];
      }
    });
    exp.nib().subscribe(&probe);

    Workload workload(&exp, 89);
    Dag dag = workload.initial_dag_for_pairs(
        {{SwitchId(0), SwitchId(3)}, {SwitchId(3), SwitchId(0)}});
    DagId id = dag.id();
    exp.order_checker().register_dag(dag);
    exp.controller().submit_dag(std::move(dag));
    exp.run_for(kill_after);
    exp.controller().repl()->kill_shard_leader(0);

    auto converged =
        exp.run_until([&] { return exp.checker().converged(id); }, seconds(30));
    ASSERT_TRUE(converged.has_value())
        << "no convergence after leader kill at +" << kill_after << "us";
    EXPECT_GE(exp.controller().repl()->shard(0).counters().elections, 1u)
        << "kill at +" << kill_after << "us caused no takeover";
    for (const auto& [op, count] : done_count) {
      EXPECT_EQ(count, 1u) << "op " << op << " delivered " << count
                           << " times across the takeover (kill at +"
                           << kill_after << "us)";
    }
    EXPECT_TRUE(exp.order_checker().ok());
    // R4 is a quiescence invariant: give the replica set its settle (the
    // DAG converging only proves the leader side drained; followers trail
    // by a heartbeat).
    auto settled = exp.run_until(
        [&] { return exp.controller().repl()->settled(); }, seconds(5));
    ASSERT_TRUE(settled.has_value());
    EXPECT_TRUE(exp.controller()
                    .repl()
                    ->check_invariants(/*at_quiescence=*/true)
                    .empty());
  }
}

TEST(ReplChaosGrid, ThreeTopologiesThreeSeedsSurviveUnplannedFailover) {
  // The acceptance grid: N=3 replica sets, kill-leader / partition /
  // lease-stall faults mixed into the full chaos schedule on every
  // evaluation topology. Zero violations means the §3.3 P-invariants AND
  // the R1-R4 replication oracle held across every handoff.
  struct Cell {
    chaos::TopologyKind kind;
    std::size_t size;
  };
  const Cell cells[] = {
      {chaos::TopologyKind::kKdlLike, 16},
      {chaos::TopologyKind::kB4, 0},
      {chaos::TopologyKind::kFatTree, 4},
  };
  for (const Cell& cell : cells) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      chaos::CampaignConfig config =
          golden::repl_cell_config(cell.kind, cell.size, seed);
      ASSERT_EQ(config.core.repl.replicas_per_shard, 3u);
      chaos::ChaosCampaign campaign(config);
      chaos::CampaignResult result = campaign.run();
      EXPECT_TRUE(result.ok)
          << chaos::to_string(cell.kind) << " seed " << seed << ": "
          << result.summary();
      EXPECT_GT(result.stats.faults_injected, 0u);
    }
  }
}

TEST(ReplChaosGrid, ReplicatedCampaignsAreSeedDeterministic) {
  chaos::CampaignConfig config =
      golden::repl_cell_config(chaos::TopologyKind::kFatTree, 4, 2);
  chaos::CampaignResult first = chaos::ChaosCampaign(config).run();
  chaos::CampaignResult second = chaos::ChaosCampaign(config).run();
  EXPECT_EQ(first.schedule_fingerprint, second.schedule_fingerprint);
  EXPECT_EQ(first.verdict_digest(), second.verdict_digest());
  config.seed = 3;
  chaos::CampaignResult other = chaos::ChaosCampaign(config).run();
  EXPECT_NE(first.schedule_fingerprint, other.schedule_fingerprint);
}

TEST(ReplChaosGrid, RandomizedTakeoverDelayKeepsEqualSeedsByteIdentical) {
  // Satellite: chaos may draw failover_takeover_delay from the seed so the
  // grid explores takeover-timing races — but the draw is a pure function
  // of the seed, so the determinism contract (equal seeds, equal verdicts)
  // must survive it.
  chaos::CampaignConfig config =
      golden::repl_cell_config(chaos::TopologyKind::kKdlLike, 16, 4);
  config.randomize_takeover_delay = true;
  chaos::CampaignResult first = chaos::ChaosCampaign(config).run();
  chaos::CampaignResult second = chaos::ChaosCampaign(config).run();
  EXPECT_TRUE(first.ok) << first.summary();
  EXPECT_EQ(first.schedule_fingerprint, second.schedule_fingerprint);
  EXPECT_EQ(first.trace_fingerprint, second.trace_fingerprint);
  EXPECT_EQ(first.metrics_fingerprint, second.metrics_fingerprint);
  EXPECT_EQ(first.verdict_digest(), second.verdict_digest());
}

}  // namespace
}  // namespace zenith
