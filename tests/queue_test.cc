// The lock-free stage queues of the sharded hot path (PR 8): SpscRing (the
// per-shard NIB-event channel) and MpscQueue (the ACK-commit stage queue).
// Single-thread semantics pin the FIFO/wraparound/grow contracts; the
// threaded stress cases are the ones scripts/ci.sh re-runs under TSan — the
// memory-order arguments in the headers are validated there, not by review.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/spsc_ring.h"

namespace zenith {
namespace {

TEST(SpscRing, SingleThreadFifoWithWraparound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  // Push/pop interleaved far past the capacity so the cursors wrap.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(next_in++));
    EXPECT_TRUE(ring.try_push(next_in++));
    auto out = ring.try_pop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, next_out++);
    out = ring.try_pop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, next_out++);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, RejectsPushWhenFull) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));
  auto out = ring.try_pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed
}

TEST(SpscRing, GrowPreservesFifoOrderAcrossWrap) {
  SpscRing<int> ring(4);
  // Advance the cursors so the occupied window straddles the wrap point,
  // then fill completely and grow.
  ASSERT_TRUE(ring.try_push(-1));
  ASSERT_TRUE(ring.try_push(-2));
  ring.try_pop();
  ring.try_pop();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  ASSERT_FALSE(ring.try_push(4));
  ring.grow();
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 4u);
  ASSERT_TRUE(ring.try_push(4));
  for (int want = 0; want <= 4; ++want) {
    auto out = ring.try_pop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, want);
  }
  EXPECT_TRUE(ring.empty());
}

// The TSan-validated case: one real producer thread, one real consumer
// thread, strict order and no loss across many wraparounds of a tiny ring.
TEST(SpscRing, ConcurrentProducerConsumerKeepsOrder) {
  constexpr std::uint64_t kItems = 10'000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    auto out = ring.try_pop();
    if (!out.has_value()) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Regression for the size() torn snapshot (PR 10): the old implementation
// loaded tail_ first, then head_; a consumer pop landing between the two
// loads made the unsigned subtraction underflow to ~2^64. A third observer
// thread (the monitoring use case — neither producer nor consumer) hammers
// size() while the SPSC pair runs flat out: every snapshot must be a
// plausible occupancy, i.e. at most the ring's capacity. On the pre-fix
// code this fails within a few thousand iterations; TSan additionally
// certifies the acquire loads are race-free from the extra thread.
TEST(SpscRing, SizeFromObserverThreadNeverUnderflows) {
  constexpr std::uint64_t kItems = 10'000;
  SpscRing<std::uint64_t> ring(8);  // tiny: keeps head/tail racing closely
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bogus_sizes{0};
  std::thread observer([&ring, &done, &bogus_sizes] {
    while (!done.load(std::memory_order_acquire)) {
      if (ring.size() > ring.capacity()) {
        bogus_sizes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    auto out = ring.try_pop();
    if (!out.has_value()) {
      // Yield rather than spin: on a single-core host an empty-ring spin
      // burns its whole timeslice, starving the producer (and the test).
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*out, expected);
    ++expected;
  }
  producer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(bogus_sizes.load(), 0u)
      << "size() returned more than capacity: torn head/tail snapshot";
  EXPECT_TRUE(ring.empty());
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  for (int i = 0; i < 100; ++i) queue.push(i);
  EXPECT_FALSE(queue.empty());
  for (int want = 0; want < 100; ++want) {
    auto out = queue.try_pop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, want);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, ClearDrainsEverything) {
  MpscQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(i);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop().has_value());
  queue.push(42);  // still usable after clear
  auto out = queue.try_pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 42);
}

// Four producers race while the consumer drains concurrently: every item
// arrives exactly once, and each producer's own items stay in its push
// order (the MPSC guarantee — no cross-producer order is promised).
TEST(MpscQueue, ConcurrentProducersCompleteAndStayPerProducerFifo) {
  constexpr std::uint64_t kPerProducer = 50'000;
  constexpr std::uint64_t kProducers = 4;
  MpscQueue<std::uint64_t> queue;
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        queue.push((p << 32) | i);  // tag: producer id | sequence
      }
    });
  }
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t drained = 0;
  while (drained < kProducers * kPerProducer) {
    auto out = queue.try_pop();
    if (!out.has_value()) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = *out >> 32;
    const std::uint64_t seq = *out & 0xffffffffull;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
    ++drained;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace zenith
