// ZENITH-core under the failure matrix of Table 3: switch failures (all
// three modes), component crashes, complete microservice failures, and the
// §G ordering-bug regression.
#include <gtest/gtest.h>

#include "dag/compiler.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

ExperimentConfig zenith_config(std::uint64_t seed = 7,
                               ControllerKind kind = ControllerKind::kZenithNR) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = kind;
  return config;
}

// Installs a 1-flow DAG on a diamond and returns (experiment ready to go).
struct DiamondSetup {
  std::unique_ptr<Experiment> exp;
  std::unique_ptr<Workload> workload;
  DagId initial;
};

DiamondSetup diamond_with_flow(ControllerKind kind, std::uint64_t seed = 7) {
  DiamondSetup setup;
  setup.exp = std::make_unique<Experiment>(gen::figure2_diamond(),
                                           zenith_config(seed, kind));
  setup.exp->start();
  setup.workload = std::make_unique<Workload>(setup.exp.get(), seed + 1);
  Dag dag =
      setup.workload->initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  setup.initial = dag.id();
  EXPECT_TRUE(
      setup.exp->install_and_wait(std::move(dag), seconds(10)).has_value());
  return setup;
}

TEST(CoreSwitchFailure, CompleteTransientRecoversViaClearAndReinstall) {
  auto setup = diamond_with_flow(ControllerKind::kZenithNR);
  Experiment& exp = *setup.exp;

  // The flow's path goes through B (sw1, shortest). Kill B completely.
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
  exp.run_for(seconds(1));
  exp.fabric().inject_recovery(SwitchId(1));

  // Controller must converge back: clear B, reset its OPs, re-install.
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(setup.initial); }, seconds(30));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(exp.order_checker().ok());
  auto report = exp.checker().check(setup.initial);
  EXPECT_TRUE(report.view_consistent)
      << (report.diffs.empty() ? "" : report.diffs.front());
}

TEST(CoreSwitchFailure, PartialTransientKeepsTcamButStillReconverges) {
  auto setup = diamond_with_flow(ControllerKind::kZenithNR, 11);
  Experiment& exp = *setup.exp;
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kPartialTransient);
  exp.run_for(millis(300));
  exp.fabric().inject_recovery(SwitchId(1));
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(setup.initial); }, seconds(30));
  ASSERT_TRUE(recovered.has_value());
}

TEST(CoreSwitchFailure, DirectedReconciliationAdoptsSurvivingState) {
  // ZENITH-DR: a partial failure keeps the TCAM; DR should diff instead of
  // wiping, so surviving rules are adopted, not reinstalled.
  auto setup = diamond_with_flow(ControllerKind::kZenithDR, 13);
  Experiment& exp = *setup.exp;
  std::size_t table_before = exp.fabric().at(SwitchId(1)).table_size();
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kPartialTransient);
  exp.run_for(millis(300));
  exp.fabric().inject_recovery(SwitchId(1));
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(setup.initial); }, seconds(30));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(exp.fabric().at(SwitchId(1)).table_size(), table_before);
  // No duplicate install happened for the surviving entry.
  DuplicateInstallMonitor dup(&exp.order_checker());
  EXPECT_EQ(dup.duplicate_installs(), 0u);
}

TEST(CoreSwitchFailure, PermanentFailureThenAppRepairConverges) {
  auto setup = diamond_with_flow(ControllerKind::kZenithNR, 17);
  Experiment& exp = *setup.exp;
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompletePermanent);
  exp.run_for(seconds(1));
  // The app reroutes around the dead switch (Figure 5's third DAG).
  auto repair = setup.workload->repair_dag({SwitchId(1)});
  ASSERT_TRUE(repair.has_value());
  auto latency = exp.install_and_wait(std::move(*repair), seconds(30));
  ASSERT_TRUE(latency.has_value());
  // Traffic must flow via C (sw2).
  EXPECT_TRUE(exp.fabric().at(SwitchId(2)).lookup(SwitchId(3)).has_value());
}

TEST(CoreComponentFailure, EachComponentCrashIsSurvivable) {
  // Crash every component type mid-installation; the Watchdog restarts it
  // and the DAG still converges (Table 3 CP Partial).
  std::vector<std::string> names{"dag_scheduler", "sequencer0", "sequencer1",
                                 "nib_event_handler", "worker0",
                                 "monitoring", "topo_handler"};
  for (const std::string& name : names) {
    Experiment exp(gen::linear(6), zenith_config(23));
    exp.start();
    Workload workload(&exp, 29);
    Dag dag = workload.initial_dag_for_pairs(
        {{SwitchId(0), SwitchId(5)}, {SwitchId(5), SwitchId(0)}});
    DagId id = dag.id();
    exp.order_checker().register_dag(dag);
    exp.controller().submit_dag(std::move(dag));
    // Crash shortly after submission (mid-pipeline).
    exp.run_for(millis(2));
    exp.controller().crash_component(name);
    auto converged = exp.run_until(
        [&] { return exp.checker().converged(id); }, seconds(30));
    EXPECT_TRUE(converged.has_value()) << "crash of " << name << " deadlocked";
    EXPECT_TRUE(exp.order_checker().ok()) << "order violated after " << name;
  }
}

TEST(CoreComponentFailure, RepeatedWorkerCrashesDoNotLoseOps) {
  Experiment exp(gen::linear(8), zenith_config(31));
  exp.start();
  Workload workload(&exp, 37);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(7)}});
  DagId id = dag.id();
  exp.order_checker().register_dag(dag);
  exp.controller().submit_dag(std::move(dag));
  for (int i = 0; i < 5; ++i) {
    exp.run_for(millis(1));
    exp.controller().crash_component("worker" +
                                     std::to_string(i % 4));
  }
  auto converged =
      exp.run_until([&] { return exp.checker().converged(id); }, seconds(30));
  ASSERT_TRUE(converged.has_value());
}

TEST(CoreMicroserviceFailure, CompleteOfcFailureRecoversViaStandby) {
  auto setup = diamond_with_flow(ControllerKind::kZenithNR, 41);
  Experiment& exp = *setup.exp;
  // New DAG in flight when the whole OFC dies.
  auto reroute = setup.workload->reroute_dag();
  ASSERT_TRUE(reroute.has_value());
  DagId id = reroute->id();
  exp.order_checker().register_dag(*reroute);
  exp.controller().submit_dag(std::move(*reroute));
  exp.run_for(millis(3));
  exp.controller().crash_ofc();
  auto converged =
      exp.run_until([&] { return exp.checker().converged(id); }, seconds(30));
  ASSERT_TRUE(converged.has_value());
  EXPECT_TRUE(exp.order_checker().ok());
}

TEST(CoreMicroserviceFailure, CompleteDeFailureRecoversViaStandby) {
  auto setup = diamond_with_flow(ControllerKind::kZenithNR, 43);
  Experiment& exp = *setup.exp;
  auto reroute = setup.workload->reroute_dag();
  ASSERT_TRUE(reroute.has_value());
  DagId id = reroute->id();
  exp.controller().submit_dag(std::move(*reroute));
  exp.run_for(millis(1));
  exp.controller().crash_de();
  auto converged =
      exp.run_until([&] { return exp.checker().converged(id); }, seconds(30));
  ASSERT_TRUE(converged.has_value());
}

TEST(CorePlannedFailover, DrainedFailoverIsHitlessAndBounded) {
  auto setup = diamond_with_flow(ControllerKind::kZenithNR, 47);
  Experiment& exp = *setup.exp;
  SimTime done_at = kSimTimeNever;
  exp.controller().planned_ofc_failover(
      [&](SimTime t) { done_at = t; }, /*drain_first=*/true);
  auto finished =
      exp.run_until([&] { return done_at != kSimTimeNever; }, seconds(10));
  ASSERT_TRUE(finished.has_value());
  // All switches now follow the new master instance.
  for (SwitchId sw : exp.nib().switches()) {
    EXPECT_EQ(exp.fabric().at(sw).controller_role(), 1);
  }
  // Nothing is stuck in SENT (the drain guaranteed ACK processing).
  EXPECT_TRUE(exp.nib().ops_with_status(OpStatus::kSent).empty());
}

TEST(CorePlannedFailover, ConcurrentRequestIsALoggedNoOp) {
  // A second planned-failover request while one is in flight must not
  // restart the drain or re-target the role change: the collected ACK set
  // would be split across two targets and the handoff could complete
  // against neither. The guard drops it (with the caller's callback) and
  // the first handoff completes exactly once.
  auto setup = diamond_with_flow(ControllerKind::kZenithNR, 59);
  Experiment& exp = *setup.exp;
  SimTime first_done = kSimTimeNever;
  SimTime second_done = kSimTimeNever;
  std::size_t first_calls = 0;
  exp.controller().planned_ofc_failover(
      [&](SimTime t) {
        first_done = t;
        ++first_calls;
      },
      /*drain_first=*/true);
  // Re-entrant requests while the drain is in progress: one drained, one
  // PR-style immediate — both must be dropped without re-targeting.
  exp.controller().planned_ofc_failover([&](SimTime t) { second_done = t; },
                                        /*drain_first=*/true);
  exp.controller().planned_ofc_failover([&](SimTime t) { second_done = t; },
                                        /*drain_first=*/false);
  auto finished =
      exp.run_until([&] { return first_done != kSimTimeNever; }, seconds(10));
  ASSERT_TRUE(finished.has_value());
  exp.run_for(seconds(1));
  EXPECT_EQ(first_calls, 1u);
  EXPECT_EQ(second_done, kSimTimeNever)
      << "ignored request's callback fired anyway";
  // Exactly one instance advance: 0 -> 1, not 2.
  for (SwitchId sw : exp.nib().switches()) {
    EXPECT_EQ(exp.fabric().at(sw).controller_role(), 1);
  }
  // The failover manager is idle again: a fresh request is accepted.
  SimTime third_done = kSimTimeNever;
  exp.controller().planned_ofc_failover([&](SimTime t) { third_done = t; },
                                        /*drain_first=*/true);
  auto again =
      exp.run_until([&] { return third_done != kSimTimeNever; }, seconds(10));
  ASSERT_TRUE(again.has_value());
  for (SwitchId sw : exp.nib().switches()) {
    EXPECT_EQ(exp.fabric().at(sw).controller_role(), 2);
  }
}

TEST(CoreMicroserviceFailure, OfcCrashMidBatchRequeuesExactlyOnce) {
  // Regression for the batched-pipeline ghost-ACK race: OPs travel as a
  // kBatch (batch_size=4), the OFC dies while the batch-ACK is in flight,
  // and the standby requeues every SENT OP. If the crash does not also drop
  // the dead instance's in-flight socket traffic, the ghost ACK lands in
  // the *new* instance's reply queue, commits the requeued OPs to DONE, and
  // the still-queued requeue copies then get processed a second time — a
  // DONE->SENT status flap that no legitimate transition produces (resets
  // go DONE->NONE, takeovers SENT->SCHEDULED, dispatch SCHEDULED->SENT).
  // The flap is the exactly-once violation: one logical requeue, two
  // deliveries recorded. We sweep crash offsets because the vulnerable
  // window (ACK on the wire) moves with channel jitter.
  for (SimTime crash_after :
       {micros(600), micros(900), micros(1200), micros(1500), micros(1800)}) {
    ExperimentConfig config = zenith_config(61);
    config.core.batch_size = 4;
    Experiment exp(gen::linear(4), config);
    exp.start();

    // Watch the NIB event stream for the DONE->SENT signature.
    std::unordered_map<OpId, OpStatus> last_status;
    bool flap_seen = false;
    NadirFifo<NibEvent> probe;
    probe.set_wake_callback([&] {
      while (!probe.empty()) {
        NibEvent event = probe.pop();
        if (event.type != NibEvent::Type::kOpStatusChanged) continue;
        // A batch-ACK commit publishes one coalesced event for the whole
        // transaction; track every OP it covers.
        std::vector<OpId> covered =
            event.batch.empty() ? std::vector<OpId>{event.op} : event.batch;
        for (OpId id : covered) {
          auto it = last_status.find(id);
          if (it != last_status.end() && it->second == OpStatus::kDone &&
              event.op_status == OpStatus::kSent) {
            flap_seen = true;
          }
          last_status[id] = event.op_status;
        }
      }
    });
    exp.nib().subscribe(&probe);

    // Four flows over the same path: their same-switch OPs become ready in
    // one sequencer pass, so each hop carries a genuine 4-OP batch.
    Workload workload(&exp, 67);
    Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)},
                                              {SwitchId(0), SwitchId(3)},
                                              {SwitchId(0), SwitchId(3)},
                                              {SwitchId(0), SwitchId(3)}});
    DagId id = dag.id();
    exp.order_checker().register_dag(dag);
    exp.controller().submit_dag(std::move(dag));
    exp.run_for(crash_after);
    exp.controller().crash_ofc();

    auto converged =
        exp.run_until([&] { return exp.checker().converged(id); }, seconds(30));
    ASSERT_TRUE(converged.has_value())
        << "no convergence after crash at +" << crash_after << "us";
    EXPECT_FALSE(flap_seen)
        << "ghost ACK reprocessed a requeued OP (crash at +" << crash_after
        << "us): in-flight batched OPs were not re-enqueued exactly once";
    EXPECT_TRUE(exp.order_checker().ok());
  }
}

TEST(CoreComponentFailure, WorkerCrashMidBatchRedeliversWithoutLoss) {
  // A single worker dying between batch dispatch steps must not lose or
  // double-enqueue the batch: the queue entry survives (ack-pop never ran),
  // the Watchdog restarts the worker, and reprocessing re-sends the whole
  // batch (idempotent by OP id). The NIB's worker-slot assert catches any
  // double-processing structurally; here we check end-to-end convergence.
  for (int i = 0; i < 4; ++i) {
    ExperimentConfig config = zenith_config(71 + i);
    config.core.batch_size = 4;
    Experiment exp(gen::linear(4), config);
    exp.start();
    Workload workload(&exp, 73);
    Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)},
                                              {SwitchId(0), SwitchId(3)},
                                              {SwitchId(0), SwitchId(3)},
                                              {SwitchId(0), SwitchId(3)}});
    DagId id = dag.id();
    exp.order_checker().register_dag(dag);
    exp.controller().submit_dag(std::move(dag));
    exp.run_for(micros(200 + 300 * i));
    exp.controller().crash_component("worker" + std::to_string(i));
    auto converged =
        exp.run_until([&] { return exp.checker().converged(id); }, seconds(30));
    ASSERT_TRUE(converged.has_value()) << "worker" << i << " crash deadlocked";
    EXPECT_TRUE(exp.order_checker().ok());
  }
}

TEST(CoreRegression, MarkUpBeforeResetBugCausesHiddenEntry) {
  // §G / Figure A.8: switch fails and quickly recovers; the app installs a
  // new rule (OP1) on the recovered switch; with the buggy ordering, the
  // Topo Event Handler's (slow, deferred) OP reset then wipes OP1's DONE
  // record although OP1 is installed — the NIB has no record of an
  // installed rule. We detect the exact signature (installed rule whose OP
  // status is NONE on an UP switch) with fine-grained polling, since the
  // level-triggered sequencer eventually self-heals by re-installing.
  auto run_scenario = [](bool bug) {
    ExperimentConfig config = zenith_config(53);
    config.core.bugs.mark_up_before_reset = bug;
    Experiment exp(gen::figure2_diamond(), config);
    exp.start();
    Workload workload(&exp, 59);
    Dag initial =
        workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
    (void)exp.install_and_wait(std::move(initial), seconds(10));

    // Brief complete-transient failure of B (sw1).
    exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
    exp.run_for(millis(100));
    exp.fabric().inject_recovery(SwitchId(1));
    // Give the controller just enough time to mark the switch UP (buggy) or
    // finish reset-then-UP (fixed).
    exp.run_for(millis(40));

    // The app reacts to the recovery with a DAG installing OP1 on B.
    Dag dag(DagId(100));
    Op op1;
    op1.id = exp.op_ids().next();
    op1.type = OpType::kInstallRule;
    op1.sw = SwitchId(1);
    op1.rule = FlowRule{FlowId(50), SwitchId(1), SwitchId(3), SwitchId(3), 5};
    EXPECT_TRUE(dag.add_op(op1).ok());
    exp.controller().submit_dag(std::move(dag));

    // The inconsistency window can be microseconds wide (the sequencer
    // self-heals), so watch the NIB event stream: a DONE->NONE transition
    // while the rule is still installed on a healthy switch is the exact §G
    // signature.
    bool hidden_seen = false;
    NadirFifo<NibEvent> probe;
    probe.set_wake_callback([&] {
      while (!probe.empty()) {
        NibEvent event = probe.pop();
        if (event.type == NibEvent::Type::kOpStatusChanged &&
            event.op == op1.id && event.op_status == OpStatus::kNone &&
            exp.fabric().alive(event.sw) &&
            exp.fabric().at(event.sw).has_entry(event.op)) {
          hidden_seen = true;
        }
      }
    });
    exp.nib().subscribe(&probe);
    exp.run_for(seconds(2));
    return hidden_seen;
  };
  EXPECT_FALSE(run_scenario(false))
      << "fixed ordering must never leave hidden entries";
  EXPECT_TRUE(run_scenario(true))
      << "bug knob no longer reproduces the Figure A.8 inconsistency";
}

}  // namespace
}  // namespace zenith
