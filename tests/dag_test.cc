#include <gtest/gtest.h>

#include "dag/compiler.h"
#include "dag/dag.h"

namespace zenith {
namespace {

Op install_op(std::uint32_t id, std::uint32_t sw, int priority = 1) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(sw);
  op.rule = FlowRule{FlowId(1), SwitchId(sw), SwitchId(99), SwitchId(sw + 1),
                     priority};
  return op;
}

TEST(DagTest, AddOpsAndEdges) {
  Dag dag(DagId(1));
  ASSERT_TRUE(dag.add_op(install_op(1, 0)).ok());
  ASSERT_TRUE(dag.add_op(install_op(2, 1)).ok());
  ASSERT_TRUE(dag.add_edge(OpId(1), OpId(2)).ok());
  EXPECT_EQ(dag.size(), 2u);
  EXPECT_EQ(dag.edge_count(), 1u);
  EXPECT_EQ(dag.successors(OpId(1)).size(), 1u);
  EXPECT_EQ(dag.predecessors(OpId(2)).size(), 1u);
  EXPECT_EQ(dag.roots(), std::vector<OpId>{OpId(1)});
  EXPECT_EQ(dag.leaves(), std::vector<OpId>{OpId(2)});
}

TEST(DagTest, RejectsDuplicatesAndBadEdges) {
  Dag dag(DagId(1));
  ASSERT_TRUE(dag.add_op(install_op(1, 0)).ok());
  EXPECT_FALSE(dag.add_op(install_op(1, 2)).ok());           // dup id
  EXPECT_FALSE(dag.add_edge(OpId(1), OpId(1)).ok());         // self edge
  EXPECT_FALSE(dag.add_edge(OpId(1), OpId(7)).ok());         // unknown node
  ASSERT_TRUE(dag.add_op(install_op(2, 1)).ok());
  ASSERT_TRUE(dag.add_edge(OpId(1), OpId(2)).ok());
  EXPECT_FALSE(dag.add_edge(OpId(1), OpId(2)).ok());         // dup edge
}

TEST(DagTest, TopologicalOrderDetectsCycles) {
  Dag dag(DagId(1));
  for (std::uint32_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(dag.add_op(install_op(i, i)).ok());
  }
  ASSERT_TRUE(dag.add_edge(OpId(1), OpId(2)).ok());
  ASSERT_TRUE(dag.add_edge(OpId(2), OpId(3)).ok());
  auto order = dag.topological_order();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<OpId>{OpId(1), OpId(2), OpId(3)}));
  ASSERT_TRUE(dag.add_edge(OpId(3), OpId(1)).ok());  // closes a cycle
  EXPECT_FALSE(dag.topological_order().ok());
  EXPECT_FALSE(dag.is_acyclic());
}

TEST(DagTest, ExpandWithAttachesAfterAllLeaves) {
  Dag dag(DagId(1));
  ASSERT_TRUE(dag.add_op(install_op(1, 0)).ok());
  ASSERT_TRUE(dag.add_op(install_op(2, 1)).ok());  // two independent leaves
  Op tail = install_op(3, 2);
  ASSERT_TRUE(dag.expand_with(std::span<const Op>(&tail, 1)).ok());
  EXPECT_EQ(dag.predecessors(OpId(3)).size(), 2u);
  EXPECT_EQ(dag.leaves(), std::vector<OpId>{OpId(3)});
}

TEST(Compiler, HighestPriority) {
  std::vector<Op> ops{install_op(1, 0, 3), install_op(2, 1, 7)};
  EXPECT_EQ(highest_priority(ops), 7);
  EXPECT_EQ(highest_priority({}), 0);
}

TEST(Compiler, SinglePathDownstreamFirst) {
  OpIdAllocator ids;
  Path path{SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(3)};
  CompiledPath c = compile_single_path(path, FlowId(5), 4, ids);
  ASSERT_EQ(c.ops.size(), 3u);  // one per forwarding hop
  ASSERT_EQ(c.edges.size(), 2u);
  // Every op routes toward the path destination at the given priority.
  for (const Op& op : c.ops) {
    EXPECT_EQ(op.rule.dst, SwitchId(3));
    EXPECT_EQ(op.rule.priority, 4);
    EXPECT_EQ(op.rule.flow, FlowId(5));
  }
  // Edges run downstream -> upstream: last hop first.
  EXPECT_EQ(c.edges[0].first, c.ops[1].id);
  EXPECT_EQ(c.edges[0].second, c.ops[0].id);
  EXPECT_EQ(c.edges[1].first, c.ops[2].id);
  EXPECT_EQ(c.edges[1].second, c.ops[1].id);
}

TEST(Compiler, ReplacementDagDeletesOldOpsAfterInstalls) {
  OpIdAllocator ids;
  Path old_path{SwitchId(0), SwitchId(1), SwitchId(3)};
  CompiledPath old_compiled = compile_single_path(old_path, FlowId(1), 1, ids);

  Path new_path{SwitchId(0), SwitchId(2), SwitchId(3)};
  auto dag = compile_replacement_dag(DagId(2), {new_path}, {FlowId(1)},
                                     old_compiled.ops, ids);
  ASSERT_TRUE(dag.ok());
  const Dag& d = dag.value();
  // 2 installs + 2 deletes.
  EXPECT_EQ(d.size(), 4u);
  // New installs outrank the old priority 1.
  int installs = 0, deletes = 0;
  for (const Op* op : d.all_ops()) {
    if (op->type == OpType::kInstallRule) {
      ++installs;
      EXPECT_EQ(op->rule.priority, 2);
    } else {
      ++deletes;
      // Deletions are leaves-only descendants: they have predecessors.
      EXPECT_FALSE(d.predecessors(op->id).empty());
    }
  }
  EXPECT_EQ(installs, 2);
  EXPECT_EQ(deletes, 2);
  ASSERT_TRUE(d.topological_order().ok());
}

TEST(Compiler, RejectsDegeneratePaths) {
  OpIdAllocator ids;
  auto bad = compile_replacement_dag(DagId(1), {Path{SwitchId(0)}},
                                     {FlowId(1)}, {}, ids);
  EXPECT_FALSE(bad.ok());
  auto mismatch =
      compile_replacement_dag(DagId(1), {}, {FlowId(1)}, {}, ids);
  EXPECT_FALSE(mismatch.ok());
}

TEST(Compiler, DeletionOpsTargetInstallsOnly) {
  OpIdAllocator ids;
  Op install = install_op(100, 0);
  Op del;
  del.id = OpId(101);
  del.type = OpType::kDeleteRule;
  del.sw = SwitchId(0);
  del.delete_target = OpId(100);
  std::vector<Op> ops{install, del};
  auto deletions = deletion_ops(ops, ids);
  ASSERT_EQ(deletions.size(), 1u);  // the delete op itself is not deleted
  EXPECT_EQ(deletions[0].delete_target, OpId(100));
}

}  // namespace
}  // namespace zenith
