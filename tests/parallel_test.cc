// chaos::ParallelRunner tests: the serial-vs-parallel determinism contract
// (identical verdict_digest / trace / metrics fingerprints), pool mechanics
// (every index runs exactly once, results in submission order), and
// exception propagation. This suite is the TSan target in scripts/ci.sh —
// it exercises the codebase's only OS-level threads.
#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/parallel.h"

namespace zenith::chaos {
namespace {

CampaignConfig small_config(TopologyKind kind, std::size_t size,
                            std::uint64_t seed) {
  CampaignConfig config;
  config.topology = kind;
  config.topology_size = size;
  config.seed = seed;
  config.schedule.horizon = seconds(2);
  config.schedule.fault_count = 6;
  config.initial_flows = 3;
  return config;
}

std::vector<CampaignConfig> seed_matrix() {
  std::vector<CampaignConfig> configs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    configs.push_back(small_config(TopologyKind::kDiamond, 0, seed));
    configs.push_back(small_config(TopologyKind::kB4, 0, seed));
  }
  return configs;
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kJobs = 200;
  std::vector<std::atomic<int>> hits(kJobs);
  parallel_for(kJobs, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroJobsIsANoOp) {
  parallel_for(0, 8, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, FirstExceptionPropagatesAfterDrain) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(16, 4,
                   [&](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool drains: one throwing body does not strand the others.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelRunner, ResultsMatchSerialFingerprintsExactly) {
  std::vector<CampaignConfig> configs = seed_matrix();

  std::vector<CampaignResult> serial;
  for (const CampaignConfig& config : configs) {
    ChaosCampaign campaign(config);
    serial.push_back(campaign.run());
  }

  ParallelRunner runner(4);
  std::vector<CampaignResult> parallel = runner.run_campaigns(configs);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("campaign " + std::to_string(i));
    EXPECT_EQ(parallel[i].verdict_digest(), serial[i].verdict_digest());
    EXPECT_EQ(parallel[i].schedule_fingerprint,
              serial[i].schedule_fingerprint);
    EXPECT_EQ(parallel[i].trace_fingerprint, serial[i].trace_fingerprint);
    EXPECT_EQ(parallel[i].metrics_fingerprint,
              serial[i].metrics_fingerprint);
    EXPECT_EQ(parallel[i].ok, serial[i].ok);
    EXPECT_EQ(parallel[i].stats.sim_events_executed,
              serial[i].stats.sim_events_executed);
  }
}

TEST(ParallelRunner, ThreadCountDoesNotChangeResults) {
  std::vector<CampaignConfig> configs = seed_matrix();
  std::vector<CampaignResult> one = ParallelRunner(1).run_campaigns(configs);
  std::vector<CampaignResult> many = ParallelRunner(8).run_campaigns(configs);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].verdict_digest(), many[i].verdict_digest());
  }
}

TEST(ParallelRunner, DefaultThreadsIsPositiveAndClamped) {
  EXPECT_GE(default_bench_threads(), 1u);
  EXPECT_LE(default_bench_threads(), 64u);
  EXPECT_GE(ParallelRunner(0).threads(), 1u);  // 0 is clamped to serial
}

}  // namespace
}  // namespace zenith::chaos
