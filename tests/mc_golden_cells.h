// The golden model-checking cells (PR 9): ~8 small, fast instances whose
// exact state counts, transition counts and diameters are committed to
// tests/golden/MC_CELLS.json and diffed live by conformance_test. The
// parallel BFS engine promises these numbers are thread-count-invariant on
// clean runs — any drift here means state-space semantic drift (the class
// of bug a parallel rewrite most likely introduces), or an intended model
// change that must be regenerated via scripts/update_golden.sh and
// reviewed.
//
// Shared by mc_golden_gen (the regenerator) and conformance_test (the live
// diff) so the cell definitions cannot drift apart.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "mc/checker.h"
#include "mc/pipeline_model.h"
#include "mc/repl_model.h"

namespace zenith::golden {

/// Runs every golden MC cell at the given worker count and formats the
/// exact exploration statistics. `threads` must not change the output —
/// conformance_test exploits exactly that.
inline std::map<std::string, std::string> compute_mc_cells(
    std::size_t threads) {
  std::map<std::string, std::string> out;

  auto format_pipeline = [](const mc::CheckResult& result) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "states=%zu transitions=%zu quiescent=%zu diameter=%zu",
                  result.distinct_states, result.transitions,
                  result.quiescent_states, result.diameter);
    return std::string(buffer);
  };
  auto run_pipeline = [&](const std::string& name,
                          const mc::ModelConfig& config) {
    mc::CheckerOptions options;
    options.max_states = 2'000'000;
    options.time_limit_seconds = 120.0;
    options.threads = threads;
    mc::CheckResult result = mc::check(mc::PipelineModel(config), options);
    out[name] = result.ok && !result.capped
                    ? format_pipeline(result)
                    : "NOT-CLEAN: " + result.violation;
  };

  {
    mc::ModelConfig config = mc::ModelConfig::tiny_instance();
    run_pipeline("mc/tiny-fine", config);
    config.opt_por = true;
    run_pipeline("mc/tiny-por", config);
  }
  {
    mc::ModelConfig config = mc::ModelConfig::table4_instance();
    config.opt_symmetry = true;
    run_pipeline("mc/table4-sym", config);
    config.opt_compositional = true;
    config.opt_por = true;
    run_pipeline("mc/table4-sym-com-por", config);
  }
  // Adaptive consistency (PR 10): the tiny instance with eventual-class
  // installs. The strong cell must land on the exact numbers of
  // mc/tiny-fine above (eventual_installs=false adds no state bytes — the
  // default-is-byte-identical contract at the model layer); the eventual
  // cell pins the enlarged state space with the E1/E2 invariants checked.
  {
    mc::ModelConfig config = mc::ModelConfig::tiny_instance();
    config.eventual_installs = false;
    run_pipeline("mc/consistency-tiny-strong", config);
    config.eventual_installs = true;
    run_pipeline("mc/consistency-tiny-eventual", config);
  }
  {
    mc::ModelConfig config = mc::ModelConfig::transient_recovery_instance();
    config.opt_symmetry = true;
    config.opt_compositional = true;
    config.opt_por = true;
    run_pipeline("mc/transient-recovery-sym-com-por", config);
    config.batch_size = 4;
    run_pipeline("mc/transient-recovery-batch4-sym-com-por", config);
  }

  auto run_repl = [&](const std::string& name, mc::ReplModelConfig config) {
    config.threads = threads;
    mc::ReplModelResult result = mc::check_repl_model(config);
    if (result.violation_found || result.capped) {
      out[name] = "NOT-CLEAN: " + result.violation;
      return;
    }
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "states=%zu transitions=%zu diameter=%zu",
                  result.states_explored, result.transitions,
                  result.diameter);
    out[name] = buffer;
  };
  {
    mc::ReplModelConfig config;
    config.max_appends = 3;
    config.max_kills = 1;
    run_repl("mc/repl-r3-a3-k1", config);
  }
  // PR 10: the leaderless eventual stream riding next to the quorum log —
  // pins the cursor-delivery interleavings (the over-delivery bug knob's
  // clean twin).
  {
    mc::ReplModelConfig config;
    config.max_appends = 2;
    config.max_kills = 1;
    config.max_eventual_submits = 2;
    run_repl("mc/repl-r3-a2-k1-evt2", config);
  }
  {
    mc::ReplModelConfig config;
    config.replicas = 5;
    config.max_appends = 4;
    config.max_kills = 1;
    config.stepwise_replication = true;
    run_repl("mc/repl-r5-a4-k1-stepwise", config);
  }

  return out;
}

}  // namespace zenith::golden
