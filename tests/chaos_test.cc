// Chaos campaign engine tests: schedule determinism, the ≥50-campaign
// seeded sweep over the evaluation topologies, the invariant oracle
// catching a deliberately injected consistency bug, the shrinker reducing
// the violating schedule to a minimal reproducer trace, and the curated
// regression traces staying green on a clean build.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "chaos/parallel.h"
#include "chaos/shrink.h"
#include "to/library.h"

namespace zenith::chaos {
namespace {

CampaignConfig sweep_config(TopologyKind topology, std::size_t size,
                            std::uint64_t seed) {
  CampaignConfig config;
  config.topology = topology;
  config.topology_size = size;
  config.seed = seed;
  config.schedule.horizon = seconds(4);
  config.schedule.fault_count = 10;
  config.initial_flows = 4;
  return config;
}

/// The deliberately buggy build the acceptance criterion demands: §G's
/// mark-UP-before-reset knob plus a fast update cadence so installs race
/// the post-recovery OP reset window.
CampaignConfig buggy_config(std::uint64_t seed) {
  CampaignConfig config;
  config.topology = TopologyKind::kDiamond;
  config.seed = seed;
  config.schedule.horizon = seconds(6);
  config.schedule.fault_count = 14;
  config.initial_flows = 2;
  config.update_period = millis(30);
  config.core.bugs.mark_up_before_reset = true;
  return config;
}

TEST(ChaosSchedule, SameSeedSameSchedule) {
  CampaignConfig config = sweep_config(TopologyKind::kKdlLike, 16, 7);
  Topology topo = make_topology(config);
  ChaosSchedule a =
      generate_schedule(topo, config.core, config.schedule, config.seed);
  ChaosSchedule b =
      generate_schedule(topo, config.core, config.schedule, config.seed);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ChaosSchedule c =
      generate_schedule(topo, config.core, config.schedule, config.seed + 1);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(ChaosSchedule, EventsSortedAndRecoveriesPaired) {
  CampaignConfig config = sweep_config(TopologyKind::kB4, 0, 3);
  Topology topo = make_topology(config);
  ChaosSchedule schedule =
      generate_schedule(topo, config.core, config.schedule, config.seed);
  ASSERT_FALSE(schedule.events.empty());
  for (std::size_t i = 1; i < schedule.events.size(); ++i) {
    EXPECT_LE(schedule.events[i - 1].at, schedule.events[i].at);
  }
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const ChaosEvent& event = schedule.events[i];
    EXPECT_GT(event.at, 0);
    if (event.kind == FaultKind::kSwitchFail &&
        event.mode != FailureMode::kCompletePermanent) {
      bool paired = false;
      for (std::size_t j = i + 1; j < schedule.events.size(); ++j) {
        if (schedule.events[j].kind == FaultKind::kSwitchRecover &&
            schedule.events[j].sw == event.sw) {
          paired = true;
          break;
        }
      }
      EXPECT_TRUE(paired) << "unpaired transient fault: "
                          << event.to_string();
    }
  }
}

TEST(ChaosCampaign, SweepFiftyCampaignsAcrossTopologiesDeterministically) {
  struct Entry {
    TopologyKind kind;
    std::size_t size;
  };
  const Entry topologies[] = {
      {TopologyKind::kKdlLike, 16},
      {TopologyKind::kB4, 0},
      {TopologyKind::kFatTree, 4},
  };
  constexpr std::uint64_t kSeeds = 18;  // 18 x 3 topologies = 54 campaigns

  // The sweep runs on the ParallelRunner pool; every campaign is an
  // independent deterministic simulation, so parallel execution must not
  // perturb a single fingerprint (witness seeds are re-run serially below).
  std::vector<CampaignConfig> configs;
  for (const Entry& entry : topologies) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      configs.push_back(sweep_config(entry.kind, entry.size, seed));
    }
  }
  ParallelRunner runner;
  std::vector<CampaignResult> results = runner.run_campaigns(configs);
  ASSERT_EQ(results.size(), configs.size());

  std::size_t campaigns = 0;
  std::set<std::uint64_t> fingerprints;
  struct Witness {
    Entry entry;
    std::uint64_t fingerprint;
    std::uint64_t digest;
  };
  std::vector<Witness> witnesses;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CampaignResult& result = results[i];
    const CampaignConfig& config = configs[i];
    ++campaigns;
    EXPECT_TRUE(result.ok)
        << to_string(config.topology) << " seed " << config.seed << ": "
        << result.summary();
    EXPECT_GT(result.stats.faults_injected, 0u);
    fingerprints.insert(result.schedule_fingerprint);
    if (config.seed == 1) {
      witnesses.push_back({{config.topology, config.topology_size},
                           result.schedule_fingerprint,
                           result.verdict_digest()});
    }
  }
  EXPECT_GE(campaigns, 50u);
  // Seeds decorrelate: near-every schedule is distinct.
  EXPECT_GT(fingerprints.size(), campaigns - 3);
  // Re-running a witness seed *serially* reproduces schedule and verdict
  // exactly — the serial-vs-parallel determinism contract.
  for (const Witness& witness : witnesses) {
    ChaosCampaign campaign(
        sweep_config(witness.entry.kind, witness.entry.size, 1));
    CampaignResult result = campaign.run();
    EXPECT_EQ(result.schedule_fingerprint, witness.fingerprint);
    EXPECT_EQ(result.verdict_digest(), witness.digest);
  }
}

TEST(ChaosCampaign, InjectedBugCaughtAndShrunkToShortTrace) {
  // Find a violating seed on the buggy build (seed 1 suffices today; scan a
  // few in case knob tuning shifts the racing window).
  std::uint64_t violating_seed = 0;
  ChaosSchedule failing;
  CampaignConfig config;
  for (std::uint64_t seed = 1; seed <= 8 && violating_seed == 0; ++seed) {
    config = buggy_config(seed);
    ChaosCampaign campaign(config);
    CampaignResult result = campaign.run();
    if (!result.ok) {
      violating_seed = seed;
      failing = campaign.schedule();
    }
  }
  ASSERT_NE(violating_seed, 0u)
      << "oracle missed the deliberately injected bug on 8 seeds";

  ShrinkResult shrunk = shrink_schedule(config, failing);
  EXPECT_FALSE(shrunk.minimal_result.ok);
  EXPECT_LT(shrunk.minimal.size(), failing.size());
  EXPECT_LE(shrunk.trace.length(), 10u)
      << "minimal reproducer not minimal enough:\n"
      << shrunk.trace.to_string();
  EXPECT_FALSE(shrunk.trace.violation.empty());

  // The emitted trace is a faithful reproducer: replaying it under the
  // same campaign harness trips the oracle again...
  ChaosCampaign replayer(config);
  EXPECT_FALSE(replayer.replay(shrunk.trace).ok);
  // ...and a clean build replays it without violation.
  CampaignConfig clean = config;
  clean.core.bugs = SpecBugs{};
  ChaosCampaign clean_replayer(clean);
  CampaignResult clean_result = clean_replayer.replay(shrunk.trace);
  EXPECT_TRUE(clean_result.ok) << clean_result.summary();
}

TEST(ChaosCampaign, CuratedRegressionTraces) {
  std::vector<to::Trace> traces = to::chaos_regression_traces();
  ASSERT_FALSE(traces.empty());
  for (const to::Trace& trace : traces) {
    SCOPED_TRACE(trace.name);
    EXPECT_LE(trace.length(), 10u);

    // The workload stream is seed-derived; curated traces name the campaign
    // seed they reproduce under as a trailing /seedN component.
    std::size_t marker = trace.name.rfind("/seed");
    ASSERT_NE(marker, std::string::npos);
    std::uint64_t seed = std::stoull(trace.name.substr(marker + 5));
    CampaignConfig config = buggy_config(seed);
    ChaosCampaign buggy(config);
    EXPECT_FALSE(buggy.replay(trace).ok)
        << "curated reproducer no longer trips the oracle";

    CampaignConfig clean = config;
    clean.core.bugs = SpecBugs{};
    ChaosCampaign fixed(clean);
    CampaignResult result = fixed.replay(trace);
    EXPECT_TRUE(result.ok) << result.summary();
  }
}

TEST(ChaosCampaign, CommitBeforeQuorumCaughtAndShrunkToShortTrace) {
  // The replication acceptance defect: a leader that applies entries to the
  // NIB before any follower holds them loses committed state when it dies.
  // The schedule is curated — one kill-leader plus its revive, no other
  // faults — because the oracle needs the kill to land inside the one-hop
  // replication window behind an append; scanning kill offsets across the
  // initial-install burst finds it deterministically. (Generated multi-kill
  // schedules are avoided here: ddmin subsets of stacked kills can starve a
  // shard's quorum on the clean build and turn the green replay flaky.)
  CampaignConfig config;
  config.topology = TopologyKind::kKdlLike;
  config.topology_size = 12;
  config.seed = 6;
  config.schedule.horizon = seconds(3);
  config.initial_flows = 4;
  config.update_period = millis(40);
  config.core.repl.num_shards = 1;
  config.core.repl.bug_commit_before_quorum = true;

  ChaosSchedule failing;
  bool caught = false;
  for (SimTime kill_at = millis(4); kill_at <= millis(60) && !caught;
       kill_at += millis(4)) {
    ChaosSchedule schedule;
    schedule.seed = config.seed;
    ChaosEvent kill;
    kill.kind = FaultKind::kReplKillLeader;
    kill.at = kill_at;
    kill.shard = 0;
    schedule.events.push_back(kill);
    ChaosEvent revive;
    revive.kind = FaultKind::kReplRevive;
    revive.at = kill_at + millis(400);
    revive.shard = 0;
    schedule.events.push_back(revive);
    ChaosCampaign campaign(config);
    CampaignResult result = campaign.run(schedule);
    if (result.ok) continue;
    caught = true;
    failing = schedule;
    bool r2 = false;
    for (const std::string& violation : result.violations) {
      if (violation.find("R2") != std::string::npos) r2 = true;
    }
    EXPECT_TRUE(r2) << result.summary();
  }
  ASSERT_TRUE(caught)
      << "commit-before-quorum never violated R2 across the kill-offset scan";

  // ddmin cuts the reproducer to its essence (the revive is deletable: the
  // surviving pair is still a quorum and the violation is already durable).
  ShrinkResult shrunk = shrink_schedule(config, failing);
  EXPECT_FALSE(shrunk.minimal_result.ok);
  EXPECT_LE(shrunk.minimal.size(), 2u);
  EXPECT_LE(shrunk.trace.length(), 4u)
      << "minimal reproducer not minimal enough:\n"
      << shrunk.trace.to_string();
  EXPECT_FALSE(shrunk.trace.violation.empty());

  // Faithful reproducer: the buggy build trips again on replay, the fixed
  // build replays the same trace green.
  ChaosCampaign replayer(config);
  EXPECT_FALSE(replayer.replay(shrunk.trace).ok);
  CampaignConfig clean = config;
  clean.core.repl.bug_commit_before_quorum = false;
  ChaosCampaign clean_replayer(clean);
  CampaignResult clean_result = clean_replayer.replay(shrunk.trace);
  EXPECT_TRUE(clean_result.ok) << clean_result.summary();
}

TEST(ChaosSchedule, ReplFaultsRespectShardAdmissionAndPairing) {
  // Generated replicated schedules: every repl disruption carries its paired
  // recovery, and at most one disruption window is outstanding per shard at
  // a time (stacked kills would starve the quorum past the settle horizon
  // and test scheduler liveness instead of the protocol).
  CampaignConfig config = sweep_config(TopologyKind::kFatTree, 4, 9);
  config.core.repl.num_shards = 2;
  config.schedule.fault_count = 14;
  config.schedule.weights.repl_kill_leader = 0.3;
  config.schedule.weights.repl_partition_leader = 0.2;
  config.schedule.weights.repl_lease_stall = 0.1;
  Topology topo = make_topology(config);
  ChaosSchedule schedule =
      generate_schedule(topo, config.core, config.schedule, config.seed);

  auto is_disruption = [](FaultKind kind) {
    return kind == FaultKind::kReplKillLeader ||
           kind == FaultKind::kReplPartitionLeader ||
           kind == FaultKind::kReplLeaseStall;
  };
  auto is_recovery = [](FaultKind kind) {
    return kind == FaultKind::kReplRevive || kind == FaultKind::kReplHeal ||
           kind == FaultKind::kReplLeaseResume;
  };
  std::size_t repl_faults = 0;
  std::map<std::size_t, int> open_windows;
  for (const ChaosEvent& event : schedule.events) {
    if (is_disruption(event.kind)) {
      ++repl_faults;
      EXPECT_LT(event.shard, config.core.repl.num_shards);
      EXPECT_EQ(open_windows[event.shard], 0)
          << "overlapping repl disruptions on shard " << event.shard;
      ++open_windows[event.shard];
    } else if (is_recovery(event.kind)) {
      --open_windows[event.shard];
      EXPECT_GE(open_windows[event.shard], 0);
    }
  }
  EXPECT_GT(repl_faults, 0u) << "weights drew no repl faults at all";
  for (const auto& [shard, open] : open_windows) {
    EXPECT_EQ(open, 0) << "unpaired repl disruption on shard " << shard;
  }

  // An unreplicated core never draws them, and adding the (zero-weight)
  // repl table entries leaves the rng stream untouched: the schedule is
  // byte-identical to one generated with replication disabled.
  CampaignConfig plain = sweep_config(TopologyKind::kFatTree, 4, 9);
  plain.schedule.fault_count = 14;
  Topology plain_topo = make_topology(plain);
  ChaosSchedule unreplicated = generate_schedule(
      plain_topo, plain.core, plain.schedule, plain.seed);
  for (const ChaosEvent& event : unreplicated.events) {
    EXPECT_FALSE(is_disruption(event.kind) || is_recovery(event.kind));
  }
  CampaignConfig weightless = plain;
  weightless.schedule.weights.repl_kill_leader = 0.3;  // forced to 0: no shards
  ChaosSchedule gated = generate_schedule(
      plain_topo, weightless.core, weightless.schedule, weightless.seed);
  EXPECT_EQ(unreplicated.fingerprint(), gated.fingerprint());
}

TEST(ChaosCampaign, PermanentAmputationFallsBackToViewConsistency) {
  CampaignConfig config = sweep_config(TopologyKind::kKdlLike, 16, 11);
  ChaosSchedule schedule;
  schedule.seed = config.seed;
  ChaosEvent event;
  event.kind = FaultKind::kSwitchFail;
  event.at = millis(500);
  event.sw = SwitchId(2);
  event.mode = FailureMode::kCompletePermanent;
  schedule.events.push_back(event);
  ChaosCampaign campaign(config);
  CampaignResult result = campaign.run(schedule);
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(ChaosCampaign, ReplyBurstLossRecoversViaStandbyReissue) {
  CampaignConfig config = sweep_config(TopologyKind::kB4, 0, 5);
  ChaosSchedule schedule;
  schedule.seed = config.seed;
  ChaosEvent event;
  event.kind = FaultKind::kReplyBurstLoss;
  event.at = millis(300);
  schedule.events.push_back(event);
  ChaosCampaign campaign(config);
  CampaignResult result = campaign.run(schedule);
  EXPECT_TRUE(result.ok) << result.summary();
}

}  // namespace
}  // namespace zenith::chaos
