#include <gtest/gtest.h>

#include "nadir/interpreter.h"
#include "nadir/metrics.h"
#include "nadir/spec.h"
#include "nadir/type.h"
#include "nadir/value.h"

namespace zenith::nadir {
namespace {

TEST(Value, ScalarsAndEquality) {
  EXPECT_TRUE(Value::nil().is_nil());
  EXPECT_EQ(Value::integer(5).as_int(), 5);
  EXPECT_TRUE(Value::boolean(true).as_bool());
  EXPECT_EQ(Value::string("x").as_string(), "x");
  EXPECT_EQ(Value::integer(5), Value::integer(5));
  EXPECT_NE(Value::integer(5).hash(), Value::integer(6).hash());
}

TEST(Value, SetsAreCanonical) {
  Value a = Value::set({Value::integer(3), Value::integer(1),
                        Value::integer(3), Value::integer(2)});
  Value b = Value::set({Value::integer(1), Value::integer(2),
                        Value::integer(3)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.set_contains(Value::integer(2)));
  EXPECT_FALSE(a.set_contains(Value::integer(9)));
  EXPECT_EQ(a.set_erase(Value::integer(2)).size(), 2u);
  EXPECT_EQ(a.set_insert(Value::integer(2)), a);  // idempotent
}

TEST(Value, SequencesAndFifoOps) {
  Value q = Value::seq({});
  q = q.append(Value::integer(1)).append(Value::integer(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.head().as_int(), 1);
  EXPECT_EQ(q.tail().size(), 1u);
  EXPECT_EQ(q.tail().head().as_int(), 2);
}

TEST(Value, RecordsAndFunctionalUpdate) {
  Value r = Value::record({{"a", Value::integer(1)}, {"b", Value::nil()}});
  EXPECT_EQ(r.field("a").as_int(), 1);
  Value r2 = r.with_field("a", Value::integer(9));
  EXPECT_EQ(r.field("a").as_int(), 1);  // original untouched (immutability)
  EXPECT_EQ(r2.field("a").as_int(), 9);
}

TEST(Value, ChooseIsDeterministicLeastElement) {
  Value s = Value::set({Value::integer(7), Value::integer(3)});
  EXPECT_EQ(choose(s).as_int(), 3);
}

TEST(TypeCheck, ScalarAndCompositeAnnotations) {
  EXPECT_TRUE(Type::integer()->check(Value::integer(1)));
  EXPECT_FALSE(Type::integer()->check(Value::boolean(true)));
  auto status = Type::enumeration({"NONE", "DONE"});
  EXPECT_TRUE(status->check(Value::string("DONE")));
  EXPECT_FALSE(status->check(Value::string("BOGUS")));
  auto seq_int = Type::seq(Type::integer());
  EXPECT_TRUE(seq_int->check(Value::seq({Value::integer(1)})));
  EXPECT_FALSE(seq_int->check(Value::seq({Value::string("no")})));
  auto rec = Type::record({{"sw", Type::integer()}});
  EXPECT_TRUE(rec->check(Value::record({{"sw", Value::integer(0)}})));
  EXPECT_FALSE(rec->check(Value::record({{"sw", Value::integer(0)},
                                         {"extra", Value::nil()}})));
  auto nullable = Type::nullable(Type::integer());
  EXPECT_TRUE(nullable->check(Value::nil()));
  EXPECT_TRUE(nullable->check(Value::integer(2)));
}

Spec counter_spec() {
  Spec spec("counter");
  spec.global("Total", Type::integer(), Value::integer(0), true);
  spec.global("Queue", Type::seq(Type::integer()),
              Value::seq({Value::integer(2), Value::integer(3)}), true);
  Process consumer("consumer");
  consumer.local("item", Type::nullable(Type::integer()), Value::nil());
  consumer.step(Step{
      "Loop",
      {"Queue", "Total"},
      {"Queue", "Total"},
      [](StepContext& ctx) {
        Value item = ctx.fifo_get("Queue");
        if (ctx.blocked()) return;
        ctx.set_local("item", item);
        ctx.set_global("Total", Value::integer(ctx.global("Total").as_int() +
                                               item.as_int()));
        ctx.jump("Loop");
      }});
  spec.process(std::move(consumer));
  return spec;
}

TEST(Interpreter, RunsToQuiescence) {
  Spec spec = counter_spec();
  auto env = spec.make_initial_env();
  ASSERT_TRUE(env.ok());
  std::size_t executed =
      Interpreter::run_to_quiescence(spec, env.value());
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(env.value().globals.at("Total").as_int(), 5);
  EXPECT_TRUE(Interpreter::quiescent(spec, env.value()));
}

TEST(Interpreter, BlockedStepLeavesEnvUntouched) {
  Spec spec = counter_spec();
  auto env = spec.make_initial_env();
  ASSERT_TRUE(env.ok());
  Interpreter::run_to_quiescence(spec, env.value());
  Env before = env.value();
  EXPECT_EQ(Interpreter::try_step(spec, env.value(), "consumer"),
            StepOutcome::kBlocked);
  EXPECT_EQ(env.value(), before);
}

TEST(Interpreter, CrashResetsLocalsButKeepsGlobals) {
  Spec spec = counter_spec();
  auto env = spec.make_initial_env();
  ASSERT_TRUE(env.ok());
  Interpreter::run_to_quiescence(spec, env.value());
  EXPECT_FALSE(env.value().procs.at("consumer").locals.at("item").is_nil());
  Interpreter::crash_process(spec, env.value(), "consumer");
  // §5 semantics: locals lost, globals (NIB) survive.
  EXPECT_TRUE(env.value().procs.at("consumer").locals.at("item").is_nil());
  EXPECT_EQ(env.value().globals.at("Total").as_int(), 5);
}

TEST(Interpreter, TypeOkValidatedWhenRequested) {
  Spec spec("badtype");
  spec.global("X", Type::integer(), Value::integer(0), true);
  Process p("writer");
  p.step(Step{"W",
              {"X"},
              {"X"},
              [](StepContext& ctx) {
                ctx.set_global("X", Value::string("oops"));
                ctx.finish();
              }});
  spec.process(std::move(p));
  auto env = spec.make_initial_env();
  ASSERT_TRUE(env.ok());
  // try_step without checking succeeds; the explicit check catches it.
  Interpreter::try_step(spec, env.value(), "writer");
  EXPECT_FALSE(spec.check_types(env.value()).ok());
}

TEST(EnvTest, HashDistinguishesStates) {
  Spec spec = counter_spec();
  auto a = spec.make_initial_env();
  auto b = spec.make_initial_env();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().hash(), b.value().hash());
  Interpreter::try_step(spec, b.value(), "consumer");
  EXPECT_NE(a.value().hash(), b.value().hash());
}

TEST(Metrics, HenryKafuraReflectsInformationFlow) {
  Spec spec("flows");
  spec.global("A", Type::integer(), Value::integer(0), true);
  spec.global("B", Type::integer(), Value::integer(0), true);
  Process producer("producer");
  producer.step(Step{"P", {"A", "B"}, {"A"}, [](StepContext& ctx) {
                       ctx.set_global("A", Value::integer(1));
                       ctx.finish();
                     }});
  Process consumer("consumer");
  consumer.step(Step{"C1", {"A", "B"}, {"B"}, [](StepContext&) {}});
  consumer.step(Step{"C2", {"B"}, {"B"}, [](StepContext&) {}});
  spec.process(std::move(producer));
  spec.process(std::move(consumer));

  SpecMetrics m = measure(spec);
  EXPECT_EQ(m.process_count, 2u);
  EXPECT_EQ(m.step_count, 3u);
  const auto& cons = m.per_process.at("consumer");
  EXPECT_EQ(cons.length, 2u);
  EXPECT_GE(cons.fanin, 1u);   // reads A written by producer
  const auto& prod = m.per_process.at("producer");
  EXPECT_GE(prod.fanout, 1u);  // writes A read by consumer
  // Henry-Kafura: length * (fanin * fanout)^2; both components have
  // bidirectional flow here, so the total is positive.
  EXPECT_GT(m.total_henry_kafura, 0u);
}

}  // namespace
}  // namespace zenith::nadir
