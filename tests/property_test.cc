// Property-based sweeps: the §3.3 correctness conditions and the §F
// properties, checked across a grid of topologies, seeds, failure modes and
// controller variants (parameterized gtest).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct SweepCase {
  const char* topo_name;
  std::size_t topo_arg;
  std::uint64_t seed;
  FailureMode mode;

  Topology make_topology() const {
    std::string name = topo_name;
    if (name == "diamond") return gen::figure2_diamond();
    if (name == "linear") return gen::linear(topo_arg);
    if (name == "b4") return gen::b4();
    if (name == "kdl") return gen::kdl_like(topo_arg, 3);
    if (name == "fattree") return gen::fat_tree(topo_arg);
    return gen::ring(topo_arg);
  }
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string mode;
  switch (info.param.mode) {
    case FailureMode::kCompleteTransient: mode = "CompleteTransient"; break;
    case FailureMode::kCompletePermanent: mode = "CompletePermanent"; break;
    case FailureMode::kPartialTransient: mode = "PartialTransient"; break;
  }
  return std::string(info.param.topo_name) +
         std::to_string(info.param.topo_arg) + "_s" +
         std::to_string(info.param.seed) + "_" + mode;
}

class ZenithInvariantSweep : public ::testing::TestWithParam<SweepCase> {};

// Condition ①②③ + P8 after a full failure/recovery cycle on every switch
// of the installed paths, on every sweep point.
TEST_P(ZenithInvariantSweep, EventualConsistencyUnderFailureCycle) {
  const SweepCase& param = GetParam();
  ExperimentConfig config;
  config.seed = param.seed;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(param.make_topology(), config);
  exp.start();
  Workload workload(&exp, param.seed * 7 + 3);
  Dag dag = workload.initial_dag(6);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());

  // Fail a switch that actually carries state.
  SwitchId victim;
  for (SwitchId sw : exp.nib().switches()) {
    if (exp.fabric().at(sw).table_size() > 0) {
      victim = sw;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  exp.fabric().inject_failure(victim, param.mode);
  exp.run_for(millis(500));

  if (param.mode == FailureMode::kCompletePermanent) {
    // The app replaces the DAG (§F Remark); converge on the repair.
    auto repair = workload.repair_dag({victim});
    if (repair.has_value()) {
      id = repair->id();
      ASSERT_TRUE(
          exp.install_and_wait(std::move(*repair), seconds(60)).has_value());
    }
  } else {
    exp.fabric().inject_recovery(victim);
    auto recovered = exp.run_until(
        [&] { return exp.checker().converged(id); }, seconds(60));
    ASSERT_TRUE(recovered.has_value()) << "did not reconverge";
  }

  // ① No DAG-order violation anywhere in the run.
  EXPECT_TRUE(exp.order_checker().ok())
      << exp.order_checker().violations().front();
  // ③ View == data plane on healthy switches; no §G hidden entries.
  auto report = exp.checker().check(std::nullopt);
  EXPECT_TRUE(report.view_consistent)
      << (report.diffs.empty() ? "" : report.diffs.front());
  EXPECT_FALSE(exp.checker().hidden_entry_signature());
  // P8 is an *eventual* property: convergence of the DAG can precede the
  // health bookkeeping (the recovery pipeline may still be finalizing), so
  // let the controller settle first.
  auto settled = exp.run_until(
      [&] {
        for (SwitchId sw : exp.nib().switches()) {
          bool up = exp.fabric().alive(sw);
          if (up && exp.nib().switch_health(sw) != SwitchHealth::kUp) {
            return false;
          }
          if (!up && exp.nib().switch_health(sw) == SwitchHealth::kUp) {
            return false;
          }
        }
        return true;
      },
      seconds(10));
  EXPECT_TRUE(settled.has_value()) << "P8 never settled";
  for (SwitchId sw : exp.nib().switches()) {
    bool up = exp.fabric().alive(sw);
    if (up) {
      EXPECT_EQ(exp.nib().switch_health(sw), SwitchHealth::kUp)
          << "sw" << sw.value();
    } else {
      EXPECT_NE(exp.nib().switch_health(sw), SwitchHealth::kUp)
          << "sw" << sw.value();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZenithInvariantSweep,
    ::testing::Values(
        SweepCase{"diamond", 0, 1, FailureMode::kCompleteTransient},
        SweepCase{"diamond", 0, 2, FailureMode::kPartialTransient},
        SweepCase{"diamond", 0, 3, FailureMode::kCompletePermanent},
        SweepCase{"linear", 6, 4, FailureMode::kCompleteTransient},
        SweepCase{"linear", 6, 5, FailureMode::kPartialTransient},
        SweepCase{"b4", 0, 6, FailureMode::kCompleteTransient},
        SweepCase{"b4", 0, 7, FailureMode::kCompletePermanent},
        SweepCase{"kdl", 25, 8, FailureMode::kCompleteTransient},
        SweepCase{"kdl", 25, 9, FailureMode::kPartialTransient},
        SweepCase{"kdl", 40, 10, FailureMode::kCompleteTransient},
        SweepCase{"fattree", 4, 11, FailureMode::kCompleteTransient},
        SweepCase{"fattree", 4, 12, FailureMode::kPartialTransient},
        SweepCase{"ring", 8, 13, FailureMode::kCompleteTransient},
        SweepCase{"ring", 8, 14, FailureMode::kCompletePermanent}),
    case_name);

// The same sweep for ZENITH-DR: directed reconciliation must preserve all
// invariants (it is the same controller with a different recovery read).
class ZenithDrSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ZenithDrSweep, DirectedReconciliationConsistency) {
  const SweepCase& param = GetParam();
  ExperimentConfig config;
  config.seed = param.seed;
  config.kind = ControllerKind::kZenithDR;
  Experiment exp(param.make_topology(), config);
  exp.start();
  Workload workload(&exp, param.seed * 11 + 1);
  Dag dag = workload.initial_dag(5);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  SwitchId victim;
  for (SwitchId sw : exp.nib().switches()) {
    if (exp.fabric().at(sw).table_size() > 0) {
      victim = sw;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  exp.fabric().inject_failure(victim, param.mode);
  exp.run_for(millis(300));
  exp.fabric().inject_recovery(victim);
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(60));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(exp.order_checker().ok());
  EXPECT_TRUE(exp.checker().check(std::nullopt).view_consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZenithDrSweep,
    ::testing::Values(
        SweepCase{"diamond", 0, 21, FailureMode::kPartialTransient},
        SweepCase{"diamond", 0, 22, FailureMode::kCompleteTransient},
        SweepCase{"linear", 6, 23, FailureMode::kPartialTransient},
        SweepCase{"b4", 0, 24, FailureMode::kPartialTransient},
        SweepCase{"kdl", 25, 25, FailureMode::kCompleteTransient},
        SweepCase{"fattree", 4, 26, FailureMode::kPartialTransient}),
    case_name);

// PR liveness: with reconciliation enabled, PR also eventually converges on
// every sweep point (it is slow, not wrong — §1.2).
class PrEventualConsistencySweep : public ::testing::TestWithParam<SweepCase> {
};

TEST_P(PrEventualConsistencySweep, ReconciliationEventuallyRepairs) {
  const SweepCase& param = GetParam();
  ExperimentConfig config;
  config.seed = param.seed;
  config.kind = ControllerKind::kPr;
  config.reconciliation_period = seconds(8);
  Experiment exp(param.make_topology(), config);
  exp.start();
  Workload workload(&exp, param.seed * 13 + 5);
  Dag dag = workload.initial_dag(5);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  SwitchId victim;
  for (SwitchId sw : exp.nib().switches()) {
    if (exp.fabric().at(sw).table_size() > 0) {
      victim = sw;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  exp.fabric().inject_failure(victim, param.mode);
  exp.run_for(millis(400));
  exp.fabric().inject_recovery(victim);
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(90));
  EXPECT_TRUE(recovered.has_value())
      << "PR with reconciliation must eventually converge";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrEventualConsistencySweep,
    ::testing::Values(
        SweepCase{"diamond", 0, 31, FailureMode::kCompleteTransient},
        SweepCase{"linear", 6, 32, FailureMode::kCompleteTransient},
        SweepCase{"b4", 0, 33, FailureMode::kPartialTransient},
        SweepCase{"kdl", 25, 34, FailureMode::kCompleteTransient}),
    case_name);

// §B at-most-once: duplicate installs never happen without failures, on any
// topology/seed.
class NoFailureDuplicateSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NoFailureDuplicateSweep, AtMostOnceInstall) {
  auto [n, seed] = GetParam();
  ExperimentConfig config;
  config.seed = static_cast<std::uint64_t>(seed);
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::kdl_like(static_cast<std::size_t>(n), 3), config);
  exp.start();
  Workload workload(&exp, static_cast<std::uint64_t>(seed) * 3 + 1);
  Dag dag = workload.initial_dag(8);
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  for (int i = 0; i < 5; ++i) {
    auto update = workload.next_update_dag();
    if (!update.has_value()) break;
    ASSERT_TRUE(
        exp.install_and_wait(std::move(*update), seconds(60)).has_value());
  }
  DuplicateInstallMonitor dup(&exp.order_checker());
  EXPECT_EQ(dup.duplicate_installs(), 0u);
  EXPECT_TRUE(exp.order_checker().ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, NoFailureDuplicateSweep,
                         ::testing::Combine(::testing::Values(15, 30, 60),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace zenith
