// Property-based sweeps: the §3.3 correctness conditions and the §F
// properties, checked across a grid of topologies, seeds, failure modes and
// controller variants (parameterized gtest).
#include <gtest/gtest.h>

#include "golden_scenarios.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct SweepCase {
  const char* topo_name;
  std::size_t topo_arg;
  std::uint64_t seed;
  FailureMode mode;

  Topology make_topology() const {
    std::string name = topo_name;
    if (name == "diamond") return gen::figure2_diamond();
    if (name == "linear") return gen::linear(topo_arg);
    if (name == "b4") return gen::b4();
    if (name == "kdl") return gen::kdl_like(topo_arg, 3);
    if (name == "fattree") return gen::fat_tree(topo_arg);
    return gen::ring(topo_arg);
  }
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string mode;
  switch (info.param.mode) {
    case FailureMode::kCompleteTransient: mode = "CompleteTransient"; break;
    case FailureMode::kCompletePermanent: mode = "CompletePermanent"; break;
    case FailureMode::kPartialTransient: mode = "PartialTransient"; break;
  }
  return std::string(info.param.topo_name) +
         std::to_string(info.param.topo_arg) + "_s" +
         std::to_string(info.param.seed) + "_" + mode;
}

class ZenithInvariantSweep : public ::testing::TestWithParam<SweepCase> {};

// Condition ①②③ + P8 after a full failure/recovery cycle on every switch
// of the installed paths, on every sweep point.
TEST_P(ZenithInvariantSweep, EventualConsistencyUnderFailureCycle) {
  const SweepCase& param = GetParam();
  ExperimentConfig config;
  config.seed = param.seed;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(param.make_topology(), config);
  exp.start();
  Workload workload(&exp, param.seed * 7 + 3);
  Dag dag = workload.initial_dag(6);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());

  // Fail a switch that actually carries state.
  SwitchId victim;
  for (SwitchId sw : exp.nib().switches()) {
    if (exp.fabric().at(sw).table_size() > 0) {
      victim = sw;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  exp.fabric().inject_failure(victim, param.mode);
  exp.run_for(millis(500));

  if (param.mode == FailureMode::kCompletePermanent) {
    // The app replaces the DAG (§F Remark); converge on the repair.
    auto repair = workload.repair_dag({victim});
    if (repair.has_value()) {
      id = repair->id();
      ASSERT_TRUE(
          exp.install_and_wait(std::move(*repair), seconds(60)).has_value());
    }
  } else {
    exp.fabric().inject_recovery(victim);
    auto recovered = exp.run_until(
        [&] { return exp.checker().converged(id); }, seconds(60));
    ASSERT_TRUE(recovered.has_value()) << "did not reconverge";
  }

  // ① No DAG-order violation anywhere in the run.
  EXPECT_TRUE(exp.order_checker().ok())
      << exp.order_checker().violations().front();
  // ③ View == data plane on healthy switches; no §G hidden entries.
  auto report = exp.checker().check(std::nullopt);
  EXPECT_TRUE(report.view_consistent)
      << (report.diffs.empty() ? "" : report.diffs.front());
  EXPECT_FALSE(exp.checker().hidden_entry_signature());
  // P8 is an *eventual* property: convergence of the DAG can precede the
  // health bookkeeping (the recovery pipeline may still be finalizing), so
  // let the controller settle first.
  auto settled = exp.run_until(
      [&] {
        for (SwitchId sw : exp.nib().switches()) {
          bool up = exp.fabric().alive(sw);
          if (up && exp.nib().switch_health(sw) != SwitchHealth::kUp) {
            return false;
          }
          if (!up && exp.nib().switch_health(sw) == SwitchHealth::kUp) {
            return false;
          }
        }
        return true;
      },
      seconds(10));
  EXPECT_TRUE(settled.has_value()) << "P8 never settled";
  for (SwitchId sw : exp.nib().switches()) {
    bool up = exp.fabric().alive(sw);
    if (up) {
      EXPECT_EQ(exp.nib().switch_health(sw), SwitchHealth::kUp)
          << "sw" << sw.value();
    } else {
      EXPECT_NE(exp.nib().switch_health(sw), SwitchHealth::kUp)
          << "sw" << sw.value();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZenithInvariantSweep,
    ::testing::Values(
        SweepCase{"diamond", 0, 1, FailureMode::kCompleteTransient},
        SweepCase{"diamond", 0, 2, FailureMode::kPartialTransient},
        SweepCase{"diamond", 0, 3, FailureMode::kCompletePermanent},
        SweepCase{"linear", 6, 4, FailureMode::kCompleteTransient},
        SweepCase{"linear", 6, 5, FailureMode::kPartialTransient},
        SweepCase{"b4", 0, 6, FailureMode::kCompleteTransient},
        SweepCase{"b4", 0, 7, FailureMode::kCompletePermanent},
        SweepCase{"kdl", 25, 8, FailureMode::kCompleteTransient},
        SweepCase{"kdl", 25, 9, FailureMode::kPartialTransient},
        SweepCase{"kdl", 40, 10, FailureMode::kCompleteTransient},
        SweepCase{"fattree", 4, 11, FailureMode::kCompleteTransient},
        SweepCase{"fattree", 4, 12, FailureMode::kPartialTransient},
        SweepCase{"ring", 8, 13, FailureMode::kCompleteTransient},
        SweepCase{"ring", 8, 14, FailureMode::kCompletePermanent}),
    case_name);

// The same sweep for ZENITH-DR: directed reconciliation must preserve all
// invariants (it is the same controller with a different recovery read).
class ZenithDrSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ZenithDrSweep, DirectedReconciliationConsistency) {
  const SweepCase& param = GetParam();
  ExperimentConfig config;
  config.seed = param.seed;
  config.kind = ControllerKind::kZenithDR;
  Experiment exp(param.make_topology(), config);
  exp.start();
  Workload workload(&exp, param.seed * 11 + 1);
  Dag dag = workload.initial_dag(5);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  SwitchId victim;
  for (SwitchId sw : exp.nib().switches()) {
    if (exp.fabric().at(sw).table_size() > 0) {
      victim = sw;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  exp.fabric().inject_failure(victim, param.mode);
  exp.run_for(millis(300));
  exp.fabric().inject_recovery(victim);
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(60));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(exp.order_checker().ok());
  EXPECT_TRUE(exp.checker().check(std::nullopt).view_consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZenithDrSweep,
    ::testing::Values(
        SweepCase{"diamond", 0, 21, FailureMode::kPartialTransient},
        SweepCase{"diamond", 0, 22, FailureMode::kCompleteTransient},
        SweepCase{"linear", 6, 23, FailureMode::kPartialTransient},
        SweepCase{"b4", 0, 24, FailureMode::kPartialTransient},
        SweepCase{"kdl", 25, 25, FailureMode::kCompleteTransient},
        SweepCase{"fattree", 4, 26, FailureMode::kPartialTransient}),
    case_name);

// PR liveness: with reconciliation enabled, PR also eventually converges on
// every sweep point (it is slow, not wrong — §1.2).
class PrEventualConsistencySweep : public ::testing::TestWithParam<SweepCase> {
};

TEST_P(PrEventualConsistencySweep, ReconciliationEventuallyRepairs) {
  const SweepCase& param = GetParam();
  ExperimentConfig config;
  config.seed = param.seed;
  config.kind = ControllerKind::kPr;
  config.reconciliation_period = seconds(8);
  Experiment exp(param.make_topology(), config);
  exp.start();
  Workload workload(&exp, param.seed * 13 + 5);
  Dag dag = workload.initial_dag(5);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  SwitchId victim;
  for (SwitchId sw : exp.nib().switches()) {
    if (exp.fabric().at(sw).table_size() > 0) {
      victim = sw;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  exp.fabric().inject_failure(victim, param.mode);
  exp.run_for(millis(400));
  exp.fabric().inject_recovery(victim);
  auto recovered = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(90));
  EXPECT_TRUE(recovered.has_value())
      << "PR with reconciliation must eventually converge";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrEventualConsistencySweep,
    ::testing::Values(
        SweepCase{"diamond", 0, 31, FailureMode::kCompleteTransient},
        SweepCase{"linear", 6, 32, FailureMode::kCompleteTransient},
        SweepCase{"b4", 0, 33, FailureMode::kPartialTransient},
        SweepCase{"kdl", 25, 34, FailureMode::kCompleteTransient}),
    case_name);

// §B at-most-once: duplicate installs never happen without failures, on any
// topology/seed.
class NoFailureDuplicateSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NoFailureDuplicateSweep, AtMostOnceInstall) {
  auto [n, seed] = GetParam();
  ExperimentConfig config;
  config.seed = static_cast<std::uint64_t>(seed);
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::kdl_like(static_cast<std::size_t>(n), 3), config);
  exp.start();
  Workload workload(&exp, static_cast<std::uint64_t>(seed) * 3 + 1);
  Dag dag = workload.initial_dag(8);
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  for (int i = 0; i < 5; ++i) {
    auto update = workload.next_update_dag();
    if (!update.has_value()) break;
    ASSERT_TRUE(
        exp.install_and_wait(std::move(*update), seconds(60)).has_value());
  }
  DuplicateInstallMonitor dup(&exp.order_checker());
  EXPECT_EQ(dup.duplicate_installs(), 0u);
  EXPECT_TRUE(exp.order_checker().ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, NoFailureDuplicateSweep,
                         ::testing::Combine(::testing::Values(15, 30, 60),
                                            ::testing::Values(1, 2, 3)));

// ---- Batching equivalence (the CoreConfig::batch_size determinism
// contract). Two tiers of guarantee, each asserted where it actually holds:
//   (1) failure-free runs end in a byte-identical NIB regardless of batch
//       size — batching may change timing, never outcomes;
//   (2) per-switch delivery order is additionally byte-identical when every
//       same-switch wave becomes ready in one sequencer pass — which a
//       dependency-free wave (DAG of root OPs) guarantees by construction.
//       Multi-hop replacement rounds do NOT qualify, even for a single flow
//       group: at batch_size=1 each flow's downstream ACK lands at its own
//       jittered instant, spreading the upstream hops' readiness across
//       passes, so the interleaving on a shared switch legitimately differs
//       across batch sizes — the contract never promised order there.

class BatchEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatchEquivalenceSweep, NibFinalStateInvariantAcrossBatchSizes) {
  std::uint64_t seed = GetParam();
  SoakResult baseline = golden::run_soak_cell(1, nullptr, seed, 4, 8, 1200);
  ASSERT_EQ(baseline.invariant_violations, 0u);
  for (std::size_t bs : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    SoakResult result = golden::run_soak_cell(bs, nullptr, seed, 4, 8, 1200);
    EXPECT_EQ(result.invariant_violations, 0u) << "bs=" << bs;
    EXPECT_EQ(result.ops_completed, baseline.ops_completed) << "bs=" << bs;
    EXPECT_EQ(result.nib_fingerprint, baseline.nib_fingerprint)
        << "bs=" << bs << ": batched final NIB state diverged from bs=1";
  }
}

// One same-pass-ready run: `waves` DAGs of edge-local install OPs with NO
// edges, so every OP of a wave is ready the instant the DAG registers and
// the whole wave reaches the Sequencer in a single pass. Per-switch OP
// counts vary with the seed (2–8 per wave), so batches are ragged rather
// than one uniform shape.
struct SingleWaveRun {
  std::uint64_t nib_fingerprint = 0;
  std::size_t ops = 0;
};

SingleWaveRun run_single_wave_cell(std::size_t batch_size, std::uint64_t seed,
                                   DeliveryOrderRecorder* recorder) {
  ExperimentConfig config;
  config.seed = 16 + seed;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = batch_size;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;
  Experiment exp(gen::fat_tree(4), config);
  recorder->attach(exp.fabric());
  exp.start();

  // Each edge switch forwards toward its first uplink hop; the 2-hop path
  // compiles to exactly one install OP on the edge switch itself.
  Rng shape(seed * 977 + 5);
  const std::vector<std::size_t> op_counts = {2, 3, 5, 8};
  gen::FatTreeIndex index = gen::fat_tree_index(4);
  struct Emitter {
    Path hop;
    std::size_t ops;
  };
  std::vector<Emitter> emitters;
  for (std::size_t i = index.edge_begin; i < index.edge_end; ++i) {
    SwitchId sw(static_cast<std::uint32_t>(i));
    SwitchId peer(static_cast<std::uint32_t>(
        i + 1 < index.edge_end ? i + 1 : index.edge_begin));
    auto path = shortest_path(exp.topology(), sw, peer);
    if (!path.has_value() || path->size() < 2) {
      ADD_FAILURE() << "no uplink path from edge switch " << i;
      return {};
    }
    emitters.push_back({{(*path)[0], (*path)[1]}, shape.pick(op_counts)});
  }

  SingleWaveRun run;
  std::uint32_t next_flow = 1;
  for (int wave = 0; wave < 3; ++wave) {
    Dag dag(DagId(static_cast<std::uint32_t>(wave + 1)));
    for (const Emitter& emitter : emitters) {
      for (std::size_t f = 0; f < emitter.ops; ++f) {
        CompiledPath one = compile_single_path(
            emitter.hop, FlowId(next_flow++), wave + 1, exp.op_ids());
        for (const Op& op : one.ops) {
          EXPECT_TRUE(dag.add_op(op).ok());
          ++run.ops;
        }
      }
    }
    EXPECT_TRUE(
        exp.install_and_wait(std::move(dag), seconds(30)).has_value())
        << "wave " << wave << " did not converge";
  }
  run.nib_fingerprint = exp.nib().state_fingerprint();
  return run;
}

TEST_P(BatchEquivalenceSweep, SingleWaveDeliveryOrderInvariant) {
  std::uint64_t seed = GetParam();
  DeliveryOrderRecorder base_order;
  SingleWaveRun baseline = run_single_wave_cell(1, seed, &base_order);
  ASSERT_GT(baseline.ops, 0u);
  ASSERT_EQ(base_order.applied(), baseline.ops);
  for (std::size_t bs : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    DeliveryOrderRecorder order;
    SingleWaveRun result = run_single_wave_cell(bs, seed, &order);
    EXPECT_EQ(result.nib_fingerprint, baseline.nib_fingerprint)
        << "bs=" << bs;
    EXPECT_EQ(order.applied(), base_order.applied()) << "bs=" << bs;
    EXPECT_EQ(order.fingerprint(), base_order.fingerprint())
        << "bs=" << bs << ": per-switch delivery order diverged from bs=1";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchEquivalenceSweep,
                         ::testing::Values(9ull, 23ull, 57ull));

// The 12-cell chaos grid from PR 3 ({kdl16, b4, fattree4} x seeds 1..4):
// identical seeds must yield identical verdict digests on re-run — the
// trace/metrics/schedule fingerprints inside the digest are the
// byte-identical-trace contract the golden corpus pins (at batch_size=1;
// chaos digests are timing-sensitive, so other batch sizes are out of
// contract by design).
TEST(ChaosVerdictDeterminism, TwelveCellGridStableAcrossReruns) {
  struct Cell {
    chaos::TopologyKind kind;
    std::size_t size;
    const char* name;
  };
  const Cell cells[] = {
      {chaos::TopologyKind::kKdlLike, 16, "kdl16"},
      {chaos::TopologyKind::kB4, 0, "b4"},
      {chaos::TopologyKind::kFatTree, 4, "fattree4"},
  };
  for (const Cell& cell : cells) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      chaos::CampaignConfig config =
          golden::chaos_cell_config(cell.kind, cell.size, seed);
      std::uint64_t first = chaos::ChaosCampaign(config).run().verdict_digest();
      std::uint64_t second =
          chaos::ChaosCampaign(config).run().verdict_digest();
      EXPECT_EQ(first, second) << cell.name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace zenith
