#include <gtest/gtest.h>

#include "dataplane/fabric.h"
#include "harness/experiment.h"
#include "topo/generators.h"

namespace zenith {
namespace {

SwitchRequest install(std::uint32_t op_id, std::uint32_t sw,
                      std::uint32_t dst, std::uint32_t nh, int priority = 1) {
  SwitchRequest r;
  r.type = SwitchRequest::Type::kInstall;
  r.op.id = OpId(op_id);
  r.op.type = OpType::kInstallRule;
  r.op.sw = SwitchId(sw);
  r.op.rule = FlowRule{FlowId(1), SwitchId(sw), SwitchId(dst), SwitchId(nh),
                       priority};
  r.xid = op_id;
  return r;
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(&sim_, gen::linear(3), Rng(1)) {}

  Simulator sim_;
  Fabric fabric_;
};

TEST_F(FabricTest, InstallAckRoundTrip) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  sim_.run();
  EXPECT_TRUE(fabric_.at(SwitchId(0)).has_entry(OpId(1)));
  ASSERT_EQ(fabric_.replies().size(), 1u);
  SwitchReply reply = fabric_.replies().pop();
  EXPECT_EQ(reply.type, SwitchReply::Type::kAck);
  EXPECT_EQ(reply.sw, SwitchId(0));
  EXPECT_EQ(reply.op.id, OpId(1));
}

TEST_F(FabricTest, DeleteRemovesEntryAndAcks) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  SwitchRequest del;
  del.type = SwitchRequest::Type::kDelete;
  del.op.id = OpId(2);
  del.op.type = OpType::kDeleteRule;
  del.op.sw = SwitchId(0);
  del.op.delete_target = OpId(1);
  fabric_.send(SwitchId(0), del);
  sim_.run();
  EXPECT_FALSE(fabric_.at(SwitchId(0)).has_entry(OpId(1)));
  EXPECT_EQ(fabric_.replies().size(), 2u);
}

TEST_F(FabricTest, LookupPrefersHighPriority) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1, /*priority=*/1));
  fabric_.send(SwitchId(0), install(2, 0, 2, 2, /*priority=*/5));
  sim_.run();
  auto entry = fabric_.at(SwitchId(0)).lookup(SwitchId(2));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->installed_by, OpId(2));
  EXPECT_EQ(entry->rule.next_hop, SwitchId(2));
}

TEST_F(FabricTest, ClearTcamWipesTable) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  sim_.run();
  SwitchRequest clear;
  clear.type = SwitchRequest::Type::kClearTcam;
  clear.op.id = OpId(3);
  clear.op.type = OpType::kClearTcam;
  clear.op.sw = SwitchId(0);
  fabric_.send(SwitchId(0), clear);
  sim_.run();
  EXPECT_EQ(fabric_.at(SwitchId(0)).table_size(), 0u);
}

TEST_F(FabricTest, DumpReturnsFullTable) {
  fabric_.send(SwitchId(1), install(1, 1, 2, 2));
  fabric_.send(SwitchId(1), install(2, 1, 0, 0));
  SwitchRequest dump;
  dump.type = SwitchRequest::Type::kDumpTable;
  dump.xid = 77;
  fabric_.send(SwitchId(1), dump);
  sim_.run();
  // install acks + dump reply
  SwitchReply last;
  while (!fabric_.replies().empty()) last = fabric_.replies().pop();
  EXPECT_EQ(last.type, SwitchReply::Type::kDumpReply);
  EXPECT_EQ(last.xid, 77u);
  EXPECT_EQ(last.table.size(), 2u);
}

TEST_F(FabricTest, DumpCostGrowsWithTableSize) {
  SwitchTimings timings;
  // Figure 4a calibration: ~13ms at 512 entries, ~117ms at 4096 (9x for 8x).
  SimTime small = timings.dump_cost(512);
  SimTime large = timings.dump_cost(4096);
  EXPECT_NEAR(to_seconds(small), 0.013, 0.002);
  EXPECT_NEAR(to_seconds(large), 0.117, 0.010);
  double ratio = static_cast<double>(large) / static_cast<double>(small);
  EXPECT_GT(ratio, 8.0);  // superlinear
}

TEST_F(FabricTest, CompleteFailureLosesStateAndInFlight) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  sim_.run();
  fabric_.send(SwitchId(0), install(2, 0, 1, 1));  // will be in flight
  fabric_.inject_failure(SwitchId(0), FailureMode::kCompleteTransient);
  sim_.run();
  EXPECT_FALSE(fabric_.alive(SwitchId(0)));
  EXPECT_EQ(fabric_.at(SwitchId(0)).table_size(), 0u);
  // Health event delivered after the detection delay.
  ASSERT_GE(fabric_.health_events().size(), 1u);
  SwitchHealthEvent event = fabric_.health_events().pop();
  EXPECT_EQ(event.type, SwitchHealthEvent::Type::kFailure);
  EXPECT_TRUE(event.state_lost);
}

TEST_F(FabricTest, PartialFailureKeepsTcam) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  sim_.run();
  fabric_.inject_failure(SwitchId(0), FailureMode::kPartialTransient);
  sim_.run();
  EXPECT_EQ(fabric_.at(SwitchId(0)).table_size(), 1u);
  fabric_.inject_recovery(SwitchId(0));
  sim_.run();
  EXPECT_TRUE(fabric_.alive(SwitchId(0)));
  // Two health events: failure then recovery.
  EXPECT_EQ(fabric_.health_events().size(), 2u);
}

TEST_F(FabricTest, DeadSwitchProcessesNothing) {
  fabric_.inject_failure(SwitchId(0), FailureMode::kPartialTransient);
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  sim_.run();
  EXPECT_FALSE(fabric_.at(SwitchId(0)).has_entry(OpId(1)));
  // Message queued in the switch; processed on recovery.
  fabric_.inject_recovery(SwitchId(0));
  sim_.run();
  EXPECT_TRUE(fabric_.at(SwitchId(0)).has_entry(OpId(1)));
}

TEST_F(FabricTest, RepliesAreFifoPerSwitch) {
  for (std::uint32_t i = 1; i <= 20; ++i) {
    fabric_.send(SwitchId(0), install(i, 0, 2, 1));
  }
  sim_.run();
  std::uint32_t expected = 1;
  while (!fabric_.replies().empty()) {
    SwitchReply reply = fabric_.replies().pop();
    EXPECT_EQ(reply.op.id, OpId(expected++));
  }
  EXPECT_EQ(expected, 21u);
}

TEST_F(FabricTest, RoleChangeAcked) {
  SwitchRequest role;
  role.type = SwitchRequest::Type::kRoleChange;
  role.role = 2;
  fabric_.send(SwitchId(2), role);
  sim_.run();
  EXPECT_EQ(fabric_.at(SwitchId(2)).controller_role(), 2);
  ASSERT_EQ(fabric_.replies().size(), 1u);
  EXPECT_EQ(fabric_.replies().pop().type, SwitchReply::Type::kRoleAck);
}

TEST_F(FabricTest, RoleChangesNeverDemoteAndStaleAcksEchoCurrentRole) {
  // Roles only move forward: a delayed/retried role change from an earlier
  // handoff arriving after a later round's must not demote the switch, and
  // its ACK echoes the role actually in effect — the stale-epoch signature
  // the failover manager filters on.
  SwitchRequest newer;
  newer.type = SwitchRequest::Type::kRoleChange;
  newer.role = 2;
  fabric_.send(SwitchId(1), newer);
  sim_.run();
  ASSERT_EQ(fabric_.at(SwitchId(1)).controller_role(), 2);
  while (!fabric_.replies().empty()) fabric_.replies().pop();

  SwitchRequest stale;
  stale.type = SwitchRequest::Type::kRoleChange;
  stale.role = 1;  // superseded instance
  fabric_.send(SwitchId(1), stale);
  sim_.run();
  EXPECT_EQ(fabric_.at(SwitchId(1)).controller_role(), 2);
  ASSERT_EQ(fabric_.replies().size(), 1u);
  SwitchReply reply = fabric_.replies().pop();
  EXPECT_EQ(reply.type, SwitchReply::Type::kRoleAck);
  EXPECT_EQ(reply.role, 2);
}

TEST(RoleAckLoss, BurstReplyLossMidHandoffIsRepairedByRetry) {
  // Role ACKs ride the reply stream, so a burst reply drop mid-handoff
  // takes them with it. The failover manager must re-send the role change
  // to the stragglers (role_ack_retry) rather than wedge awaiting ACKs that
  // will never arrive — and the re-ACKs it then collects are for the
  // current target, not a stale epoch.
  ExperimentConfig config;
  config.seed = 97;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::linear(5), config);
  exp.start();
  exp.run_for(millis(50));

  SimTime done_at = kSimTimeNever;
  exp.controller().planned_ofc_failover([&](SimTime t) { done_at = t; },
                                        /*drain_first=*/false);
  // The no-drain path already dropped in-flight replies at switchover; let
  // the fresh role changes reach the switches and their ACKs take wing,
  // then shoot those down too.
  exp.run_for(millis(1));
  exp.fabric().drop_all_in_flight_replies();
  auto finished =
      exp.run_until([&] { return done_at != kSimTimeNever; }, seconds(10));
  ASSERT_TRUE(finished.has_value())
      << "handoff wedged: lost role ACKs were never re-solicited";
  for (SwitchId sw : exp.nib().switches()) {
    EXPECT_EQ(exp.fabric().at(sw).controller_role(), 1);
  }
}

TEST_F(FabricTest, LinkFailureKeepsSwitchesUp) {
  auto link = fabric_.topology().link_between(SwitchId(0), SwitchId(1));
  ASSERT_TRUE(link.ok());
  fabric_.inject_link_failure(link.value());
  sim_.run();
  EXPECT_FALSE(fabric_.link_alive(link.value()));
  EXPECT_TRUE(fabric_.alive(SwitchId(0)));
  EXPECT_TRUE(fabric_.alive(SwitchId(1)));
  // One link-down event delivered after the detection delay.
  ASSERT_EQ(fabric_.link_events().size(), 1u);
  LinkHealthEvent event = fabric_.link_events().pop();
  EXPECT_EQ(event.link, link.value());
  EXPECT_FALSE(event.up);
  fabric_.inject_link_recovery(link.value());
  sim_.run();
  EXPECT_TRUE(fabric_.link_alive(link.value()));
  EXPECT_EQ(fabric_.link_events().size(), 1u);
}

TEST_F(FabricTest, PermanentLinkFailureIgnoresRecovery) {
  // A permanently-failed link (cut fiber) must not resurrect when a
  // randomized fault schedule aims a recovery at it — mirror of the
  // permanently-failed-switch guard in inject_recovery.
  auto link = fabric_.topology().link_between(SwitchId(0), SwitchId(1));
  ASSERT_TRUE(link.ok());
  fabric_.inject_link_failure(link.value(), /*permanent=*/true);
  sim_.run();
  EXPECT_FALSE(fabric_.link_alive(link.value()));
  ASSERT_EQ(fabric_.link_events().size(), 1u);
  EXPECT_FALSE(fabric_.link_events().pop().up);
  fabric_.inject_link_recovery(link.value());
  sim_.run();
  // Guarded no-op: the link stays dead and no kLinkRecover event appears.
  EXPECT_FALSE(fabric_.link_alive(link.value()));
  EXPECT_TRUE(fabric_.link_events().empty());
  // A transient failure on another link still recovers normally.
  auto other = fabric_.topology().link_between(SwitchId(1), SwitchId(2));
  ASSERT_TRUE(other.ok());
  fabric_.inject_link_failure(other.value());
  fabric_.inject_link_recovery(other.value());
  sim_.run();
  EXPECT_TRUE(fabric_.link_alive(other.value()));
}

TEST_F(FabricTest, LinkRecoveryNeverOvertakesFailure) {
  // Asymmetric detection: keepalive resume is noticed much faster than
  // keepalive loss. The per-link monotone delivery clock must still deliver
  // down before up, else the controller ends believing a healthy link dead.
  Simulator sim;
  FabricConfig config;
  config.failure_detection_delay = millis(30);
  config.recovery_detection_delay = millis(1);
  Fabric fabric(&sim, gen::linear(3), Rng(1), config);
  auto link = fabric.topology().link_between(SwitchId(0), SwitchId(1));
  ASSERT_TRUE(link.ok());
  fabric.inject_link_failure(link.value());
  sim.run_until(millis(5));
  fabric.inject_link_recovery(link.value());
  sim.run();
  ASSERT_EQ(fabric.link_events().size(), 2u);
  LinkHealthEvent first = fabric.link_events().pop();
  LinkHealthEvent second = fabric.link_events().pop();
  EXPECT_FALSE(first.up);
  EXPECT_TRUE(second.up);
}

TEST_F(FabricTest, RapidLinkFlapsDeliverInInjectionOrder) {
  Simulator sim;
  FabricConfig config;
  config.failure_detection_delay = millis(20);
  config.recovery_detection_delay = millis(1);
  Fabric fabric(&sim, gen::linear(3), Rng(1), config);
  auto link = fabric.topology().link_between(SwitchId(1), SwitchId(2));
  ASSERT_TRUE(link.ok());
  // Three full flaps faster than the loss-detection delay.
  for (int i = 0; i < 3; ++i) {
    fabric.inject_link_failure(link.value());
    sim.run_until(sim.now() + millis(2));
    fabric.inject_link_recovery(link.value());
    sim.run_until(sim.now() + millis(2));
  }
  sim.run();
  ASSERT_EQ(fabric.link_events().size(), 6u);
  bool expected_up = false;
  while (!fabric.link_events().empty()) {
    EXPECT_EQ(fabric.link_events().pop().up, expected_up);
    expected_up = !expected_up;
  }
  EXPECT_TRUE(fabric.link_alive(link.value()));
}

TEST_F(FabricTest, RedundantLinkInjectionsAreNoOps) {
  auto link = fabric_.topology().link_between(SwitchId(0), SwitchId(1));
  ASSERT_TRUE(link.ok());
  fabric_.inject_link_recovery(link.value());  // already up
  fabric_.inject_link_failure(link.value());
  fabric_.inject_link_failure(link.value());   // already down
  sim_.run();
  EXPECT_EQ(fabric_.link_events().size(), 1u);
}

TEST_F(FabricTest, RecoveryOfPermanentlyFailedSwitchIsNoOp) {
  fabric_.inject_failure(SwitchId(1), FailureMode::kCompletePermanent);
  sim_.run();
  fabric_.inject_recovery(SwitchId(1));  // chaos schedules may aim one here
  sim_.run();
  EXPECT_FALSE(fabric_.alive(SwitchId(1)));
  // Exactly one health event: the failure. No phantom recovery.
  std::size_t recoveries = 0;
  while (!fabric_.health_events().empty()) {
    if (fabric_.health_events().pop().type ==
        SwitchHealthEvent::Type::kRecovery) {
      ++recoveries;
    }
  }
  EXPECT_EQ(recoveries, 0u);
}

TEST_F(FabricTest, ReinstallSameOpIsIdempotent) {
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  fabric_.send(SwitchId(0), install(1, 0, 2, 1));
  sim_.run();
  EXPECT_EQ(fabric_.at(SwitchId(0)).table_size(), 1u);
  EXPECT_EQ(fabric_.replies().size(), 2u);  // both ACKed (A3)
}

}  // namespace
}  // namespace zenith
