// Trace Orchestrator tests: trace generation from counterexamples, gated
// replay, and the §6.1 validation property — ZENITH converges on every
// library trace while PR needs reconciliation.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "to/library.h"
#include "to/orchestrator.h"
#include "topo/generators.h"

namespace zenith::to {
namespace {

TEST(TraceLibrary, GeneratesViolationTraces) {
  std::vector<Trace> library = build_trace_library(17);
  ASSERT_GE(library.size(), 5u) << "bug matrix found too few counterexamples";
  for (const Trace& trace : library) {
    EXPECT_FALSE(trace.violation.empty());
    EXPECT_GT(trace.length(), 2u);
    // Every trace injects at least one failure — a switch failure or a
    // component crash (§6: traces trigger inconsistencies between data and
    // control plane).
    bool has_injection = false;
    for (const TraceStep& step : trace.steps) {
      if (step.type == TraceStep::Type::kSwitchFail ||
          step.type == TraceStep::Type::kCrashComponent) {
        has_injection = true;
      }
    }
    EXPECT_TRUE(has_injection) << trace.name;
  }
}

TEST(TraceLibrary, FromCounterexampleMergesGrants) {
  mc::ModelConfig config = mc::ModelConfig::transient_recovery_instance();
  config.opt_por = true;
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.bugs.mark_up_before_reset = true;
  mc::CheckerOptions options;
  options.record_traces = true;
  mc::CheckResult result = mc::check(mc::PipelineModel(config), options);
  ASSERT_FALSE(result.ok);
  Trace trace = from_counterexample(result, config, "test");
  ASSERT_FALSE(trace.steps.empty());
  // Consecutive grants to the same component are merged.
  for (std::size_t i = 1; i < trace.steps.size(); ++i) {
    if (trace.steps[i].type == TraceStep::Type::kAllow &&
        trace.steps[i - 1].type == TraceStep::Type::kAllow) {
      EXPECT_NE(trace.steps[i].component, trace.steps[i - 1].component);
    }
  }
}

ExperimentConfig replay_config(ControllerKind kind) {
  ExperimentConfig config;
  config.seed = 99;
  config.kind = kind;
  config.reconciliation_period = seconds(10);
  // Match the model instance: 1 sequencer, 2 workers.
  config.core.num_sequencers = 1;
  config.core.num_workers = 2;
  return config;
}

TEST(Orchestrator, GatedComponentsOnlyRunWhenGranted) {
  Experiment exp(gen::linear(3), replay_config(ControllerKind::kZenithNR));
  exp.start();
  TraceOrchestrator to(&exp);
  Workload workload(&exp, 7);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(2)}});
  DagId id = dag.id();
  exp.controller().submit_dag(std::move(dag));

  // With zero grants nothing moves: run 1 second, DAG must not be admitted.
  Trace empty_trace;
  empty_trace.name = "no-grants";
  // (replay of an empty trace releases immediately, so instead run gated)
  exp.run_for(seconds(1));
  EXPECT_FALSE(exp.nib().current_dag().has_value())
      << "gated DAG scheduler ran without a grant";

  // Grant the scheduler one step: the DAG gets admitted, nothing installs.
  Trace admit;
  admit.steps.push_back(TraceStep{TraceStep::Type::kAllow, "dag_scheduler",
                                  1, SwitchId(), FailureMode::kCompleteTransient});
  to.replay(admit);  // release() at the end frees everything
  auto converged =
      exp.run_until([&] { return exp.checker().converged(id); }, seconds(20));
  EXPECT_TRUE(converged.has_value());
}

// Fig-10 replay protocol: install the DAG and converge, then engage the
// orchestrator and replay the failure schedule; measure re-convergence.
SimTime replay_and_measure(const Trace& trace, ControllerKind kind,
                           bool* converged_out = nullptr) {
  Experiment exp(gen::figure2_diamond(), replay_config(kind));
  exp.start();
  Workload workload(&exp, 13);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  DagId id = dag.id();
  exp.order_checker().register_dag(dag);
  EXPECT_TRUE(exp.install_and_wait(std::move(dag), seconds(30)).has_value());
  TraceOrchestrator to(&exp);
  to.replay(trace);
  auto converged = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(60));
  if (converged_out != nullptr) *converged_out = converged.has_value();
  EXPECT_TRUE(exp.order_checker().ok()) << trace.name;
  return converged.value_or(seconds(60));
}

TEST(Orchestrator, ZenithConvergesOnEveryLibraryTrace) {
  std::vector<Trace> library = build_trace_library(17);
  ASSERT_GE(library.size(), 5u);
  std::size_t checked = 0;
  for (const Trace& trace : library) {
    if (checked >= 6) break;  // keep unit-test runtime bounded; the bench
                              // replays the full library
    ++checked;
    bool converged = false;
    replay_and_measure(trace, ControllerKind::kZenithNR, &converged);
    EXPECT_TRUE(converged) << "Zenith did not converge on " << trace.name;
  }
}

TEST(Orchestrator, PrIsSlowerThanZenithOnInconsistencyTraces) {
  std::vector<Trace> library = build_trace_library(17);
  ASSERT_GE(library.size(), 3u);
  // Pick a trace demonstrating a routing-state inconsistency after a
  // complete transient failure (the classic PR killer).
  const Trace* chosen = nullptr;
  for (const Trace& trace : library) {
    bool complete_fail = false;
    for (const TraceStep& step : trace.steps) {
      complete_fail |= step.type == TraceStep::Type::kSwitchFail &&
                       step.mode == FailureMode::kCompleteTransient;
    }
    if (complete_fail &&
        trace.violation.find("CorrectRoutingState") != std::string::npos) {
      chosen = &trace;
      break;
    }
  }
  ASSERT_NE(chosen, nullptr);
  SimTime zenith = replay_and_measure(*chosen, ControllerKind::kZenithNR);
  SimTime pr = replay_and_measure(*chosen, ControllerKind::kPr);
  EXPECT_LT(zenith * 2, pr) << "trace: " << chosen->name;
}

}  // namespace
}  // namespace zenith::to
