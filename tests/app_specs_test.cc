// Verification tests for the TE and planned-failover NADIR specs (§4):
// both verify against their abstract environments, and deliberately broken
// variants are caught.
#include <gtest/gtest.h>

#include "apps/app_specs.h"
#include "mc/nadir_explorer.h"
#include "nadir/interpreter.h"
#include "nadir/metrics.h"

namespace zenith::apps {
namespace {

TEST(TeSpec, VerifiesOnDiamondSingleFailure) {
  TeSpecScenario scenario;
  nadir::Spec spec = build_te_spec(scenario);
  mc::NadirCheckerOptions options;
  options.invariant = [&](const nadir::Env& env) {
    return check_te_avoids_failed(env, scenario);
  };
  options.quiescence = [&](const nadir::Env& env) {
    return te_all_events_handled(env, scenario) ? "" : "event unhandled";
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
}

TEST(TeSpec, VerifiesWithMultipleFailures) {
  TeSpecScenario scenario;
  // Node 1 then node 2 fail: after both, 0 and 3 are disconnected, so the
  // final DAG is legitimately empty — the invariant still must hold.
  scenario.failure_events = {1, 2};
  nadir::Spec spec = build_te_spec(scenario);
  mc::NadirCheckerOptions options;
  options.invariant = [&](const nadir::Env& env) {
    return check_te_avoids_failed(env, scenario);
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(TeSpec, InterpreterRunProducesAvoidingDag) {
  TeSpecScenario scenario;
  nadir::Spec spec = build_te_spec(scenario);
  auto env = spec.make_initial_env();
  ASSERT_TRUE(env.ok());
  nadir::Interpreter::run_to_quiescence(spec, env.value());
  EXPECT_TRUE(te_all_events_handled(env.value(), scenario));
  EXPECT_EQ(check_te_avoids_failed(env.value(), scenario), "");
  // The replacement path avoids node 1: ops route via node 2.
  ASSERT_TRUE(spec.check_types(env.value()).ok());
}

TEST(FailoverSpec, VerifiesHitlessHandover) {
  FailoverSpecScenario scenario;
  nadir::Spec spec = build_failover_spec(scenario);
  mc::NadirCheckerOptions options;
  options.invariant = [](const nadir::Env& env) {
    return check_failover_drained(env);
  };
  options.quiescence = [&](const nadir::Env& env) {
    return failover_completed(env, scenario) ? "" : "failover incomplete";
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
  // Interleavings: the ack drainer and manager race; more than a handful of
  // states must have been explored.
  EXPECT_GT(result.distinct_states, 5u);
}

TEST(FailoverSpec, ScalesWithSwitchesAndInFlightOps) {
  for (int switches : {1, 3, 5}) {
    for (int ops : {0, 2, 4}) {
      FailoverSpecScenario scenario;
      scenario.switches = switches;
      scenario.in_flight_ops = ops;
      nadir::Spec spec = build_failover_spec(scenario);
      mc::NadirCheckerOptions options;
      options.invariant = [](const nadir::Env& env) {
        return check_failover_drained(env);
      };
      options.quiescence = [&](const nadir::Env& env) {
        return failover_completed(env, scenario) ? "" : "incomplete";
      };
      mc::NadirCheckResult result = mc::explore(spec, options);
      EXPECT_TRUE(result.ok)
          << "switches=" << switches << " ops=" << ops << ": "
          << result.violation;
    }
  }
}

TEST(FailoverSpec, BuggyNoDrainVariantIsCaught) {
  // Break the spec the way PR behaves: skip the drain await. The checker
  // must find the interleaving where the role moves with ACKs in flight.
  FailoverSpecScenario scenario;
  nadir::Spec spec = build_failover_spec(scenario);
  // Rebuild with the drain guard removed by monkey-patching the scenario:
  // simplest honest variant — zero drain means the invariant can only
  // trip if in-flight ops exist when ROLE_CHANGE begins; we simulate the
  // buggy controller by exploring with the drain step's await weakened via
  // a custom spec here.
  nadir::Spec buggy("PlannedFailoverApp-NoDrain");
  for (const auto& g : spec.globals()) {
    buggy.global(g.name, g.type, g.initial, g.persistent);
  }
  nadir::Process manager("FailoverManager");
  manager.step(nadir::Step{
      "AwaitRequest",
      {"FailoverRequests", "Phase", "Target"},
      {"FailoverRequests", "Phase", "Target"},
      [](nadir::StepContext& ctx) {
        nadir::Value request = ctx.fifo_get("FailoverRequests");
        if (ctx.blocked()) return;
        ctx.set_global("Target", request);
        // BUG: jump straight to ROLE_CHANGE without draining.
        ctx.set_global("Phase", nadir::Value::string("ROLE_CHANGE"));
      }});
  buggy.process(std::move(manager));
  for (const auto& p : spec.processes()) {
    if (p.name() == "AckDrainer") buggy.process(p);
  }
  mc::NadirCheckerOptions options;
  options.invariant = [](const nadir::Env& env) {
    return check_failover_drained(env);
  };
  mc::NadirCheckResult result = mc::explore(buggy, options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("not hitless"), std::string::npos);
}

TEST(AppSpecMetrics, AllThreeAppsReportSizes) {
  nadir::SpecMetrics te = nadir::measure(build_te_spec({}));
  nadir::SpecMetrics failover = nadir::measure(build_failover_spec({}));
  EXPECT_GE(te.process_count, 2u);
  EXPECT_GE(failover.process_count, 2u);
  EXPECT_GT(failover.step_count, te.step_count);  // failover has phases
}

}  // namespace
}  // namespace zenith::apps
