// Adaptive per-OP-class consistency (PR 10): the NIB's eventual apply log
// (bound enforcement, SENT-freshness, strong barriers, the E2 counter and
// its deliberate-defect knob), strong/eventual state-equivalence at
// quiescence, the E1/E2 model-checker cases on PipelineModel/ReplModel,
// the chaos grid with the lockstep oracle in eventual mode, and the
// campaign-level E2 oracle tripping on the buggy build.
#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "mc/checker.h"
#include "mc/lockstep.h"
#include "mc/pipeline_model.h"
#include "mc/repl_model.h"
#include "nib/nib.h"
#include "topo/generators.h"

namespace zenith {
namespace {

Op install_op(std::uint32_t id, std::uint32_t sw) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(sw);
  op.rule = FlowRule{FlowId(1), SwitchId(sw), SwitchId(9), SwitchId(sw + 1), 1};
  return op;
}

Op delete_op(std::uint32_t id, std::uint32_t sw, std::uint32_t target) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kDeleteRule;
  op.sw = SwitchId(sw);
  op.delete_target = OpId(target);
  return op;
}

/// A Nib with the eventual knob on and `count` SENT install OPs on sw0.
Nib eventual_nib(std::size_t count, ConsistencyConfig config) {
  Nib nib;
  nib.configure_consistency(config);
  for (std::uint32_t i = 1; i <= count; ++i) {
    nib.put_op(install_op(i, 0));
    nib.set_op_status(OpId(i), OpStatus::kScheduled);
    nib.set_op_status(OpId(i), OpStatus::kSent);
  }
  return nib;
}

TEST(NibEventualLog, BoundHoldsStructurallyAtEveryCommit) {
  ConsistencyConfig config;
  config.eventual_installs = true;
  config.staleness_bound = 3;
  Nib nib = eventual_nib(6, config);
  for (std::uint32_t i = 1; i <= 6; ++i) {
    nib.eventual_commit_batch(SwitchId(0), {install_op(i, 0)});
    // E1 structurally: the commit itself drains the oldest entry first.
    EXPECT_LE(nib.eventual_pending(), 3u);
  }
  EXPECT_EQ(nib.eventual_committed(), 6u);
  EXPECT_EQ(nib.eventual_applied(), 3u);
  EXPECT_EQ(nib.eventual_max_lag(), 3u);
  // The drained entries are already visible; the pending ones are not.
  EXPECT_EQ(nib.view_installed(SwitchId(0)).size(), 3u);
  nib.apply_eventual();
  EXPECT_EQ(nib.eventual_pending(), 0u);
  EXPECT_EQ(nib.view_installed(SwitchId(0)).size(), 6u);
  for (std::uint32_t i = 1; i <= 6; ++i) {
    EXPECT_EQ(nib.op_status(OpId(i)), OpStatus::kDone);
  }
}

TEST(NibEventualLog, ApplyHonorsSentFreshness) {
  // Between commit and apply a takeover requeue (SENT -> SCHEDULED) may
  // re-arm an op; the apply must skip it and let the pipeline re-drive.
  ConsistencyConfig config;
  config.eventual_installs = true;
  Nib nib = eventual_nib(2, config);
  nib.eventual_commit_batch(SwitchId(0), {install_op(1, 0), install_op(2, 0)});
  nib.set_op_status(OpId(2), OpStatus::kScheduled);  // requeued mid-window
  nib.apply_eventual();
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
  EXPECT_EQ(nib.op_status(OpId(2)), OpStatus::kScheduled);
  EXPECT_EQ(nib.view_installed(SwitchId(0)).count(OpId(1)), 1u);
  EXPECT_EQ(nib.view_installed(SwitchId(0)).count(OpId(2)), 0u);
}

TEST(NibEventualLog, StrongBarrierPublishesEverything) {
  ConsistencyConfig config;
  config.eventual_installs = true;
  Nib nib = eventual_nib(2, config);
  nib.eventual_commit_batch(SwitchId(0), {install_op(1, 0)});
  nib.eventual_commit_batch(SwitchId(0), {install_op(2, 0)});
  EXPECT_EQ(nib.eventual_pending(), 2u);
  EXPECT_EQ(nib.strong_barrier(), 2u);
  EXPECT_EQ(nib.eventual_pending(), 0u);
  EXPECT_EQ(nib.eventual_barrier_count(), 1u);
  EXPECT_EQ(nib.strong_commits_with_pending(), 0u);
  // Barrier on an empty log is free (doesn't even count).
  EXPECT_EQ(nib.strong_barrier(), 0u);
  EXPECT_EQ(nib.eventual_barrier_count(), 1u);
}

TEST(NibEventualLog, WakeFiresOnEmptyToNonEmptyTransition) {
  ConsistencyConfig config;
  config.eventual_installs = true;
  Nib nib = eventual_nib(3, config);
  std::size_t wakes = 0;
  nib.set_eventual_wake([&] { ++wakes; });
  nib.eventual_commit_batch(SwitchId(0), {install_op(1, 0)});
  nib.eventual_commit_batch(SwitchId(0), {install_op(2, 0)});
  EXPECT_EQ(wakes, 1u);  // second append found a non-empty log
  nib.strong_barrier();
  nib.eventual_commit_batch(SwitchId(0), {install_op(3, 0)});
  EXPECT_EQ(wakes, 2u);
}

TEST(NibEventualLog, BugSkipBarrierTripsTheE2Counter) {
  // The deliberate defect: strong_barrier() is a no-op, so a delete-bearing
  // (strong-class) commit executes with eventual entries pending — exactly
  // what the E2 counter records and every oracle asserts to be zero.
  ConsistencyConfig config;
  config.eventual_installs = true;
  config.bug_skip_barrier = true;
  Nib nib = eventual_nib(2, config);
  Op del = delete_op(10, 0, 2);
  nib.put_op(del);
  nib.set_op_status(del.id, OpStatus::kScheduled);
  nib.set_op_status(del.id, OpStatus::kSent);
  nib.eventual_commit_batch(SwitchId(0), {install_op(1, 0)});
  EXPECT_EQ(nib.strong_barrier(), 0u);  // no-op on the buggy build
  EXPECT_EQ(nib.eventual_pending(), 1u);
  nib.commit_ack_batch(SwitchId(0), {del});
  EXPECT_GE(nib.strong_commits_with_pending(), 1u);
}

TEST(Consistency, EventualModeConvergesToTheStrongFingerprint) {
  // Same topology, same workload, strong vs eventual: once the log drains
  // the NIB state must be identical — the knob changes visibility timing,
  // never the converged state.
  auto run = [](bool eventual) {
    ExperimentConfig config;
    config.seed = 21;
    config.kind = ControllerKind::kZenithNR;
    config.core.consistency.eventual_installs = eventual;
    Experiment exp(gen::figure2_diamond(), config);
    exp.start();
    Workload workload(&exp, 5);
    Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
    EXPECT_TRUE(exp.install_and_wait(std::move(dag), seconds(10)).has_value());
    exp.run_until([&] { return exp.nib().eventual_pending() == 0; },
                  seconds(5));
    return std::make_tuple(exp.nib().state_fingerprint(),
                           exp.nib().eventual_committed(),
                           exp.nib().strong_commits_with_pending());
  };
  auto [strong_fp, strong_committed, strong_e2] = run(false);
  auto [eventual_fp, eventual_committed, eventual_e2] = run(true);
  EXPECT_EQ(strong_fp, eventual_fp);
  // The strong run never touched the log; the eventual run lived off it.
  EXPECT_EQ(strong_committed, 0u);
  EXPECT_GT(eventual_committed, 0u);
  EXPECT_EQ(strong_e2, 0u);
  EXPECT_EQ(eventual_e2, 0u);
}

// ---- model-checker coverage (E1/E2 as reachability properties) ---------------

mc::CheckerOptions quick_options() {
  mc::CheckerOptions options;
  options.max_states = 2'000'000;
  options.time_limit_seconds = 60.0;
  return options;
}

TEST(McPipelineEventual, TinyInstanceVerifiesWithEventualInstalls) {
  mc::ModelConfig config = mc::ModelConfig::tiny_instance();
  config.eventual_installs = true;
  mc::CheckResult result = mc::check(mc::PipelineModel(config),
                                     quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
  // The eventual log adds interleavings over the classic instance.
  mc::CheckResult classic = mc::check(
      mc::PipelineModel(mc::ModelConfig::tiny_instance()), quick_options());
  EXPECT_GT(result.distinct_states, classic.distinct_states);
}

TEST(McPipelineEventual, Table4InstanceVerifiesWithEventualInstalls) {
  mc::ModelConfig config = mc::ModelConfig::table4_instance();
  config.eventual_installs = true;
  config.opt_por = true;
  mc::CheckResult result = mc::check(mc::PipelineModel(config),
                                     quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
}

TEST(McPipelineEventual, SkippedBarrierYieldsE2Counterexample) {
  // An install and an independent delete: with the barrier skipped there is
  // an interleaving where the delete's (strong-class) ACK commits while the
  // install's eventual entry is still pending — the checker must find it,
  // and must NOT find it on the correct build (previous tests).
  mc::ModelConfig config;
  config.num_switches = 1;
  config.num_workers = 1;
  config.max_switch_failures = 0;
  mc::ModelOp install{.sw = 0, .preds = {}, .dag = 0};
  mc::ModelOp del{.sw = 0, .preds = {}, .dag = 0};
  del.is_delete = true;
  config.ops = {install, del};
  config.eventual_installs = true;
  config.bug_skip_barrier = true;
  mc::CheckResult result = mc::check(mc::PipelineModel(config),
                                     quick_options());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("E2"), std::string::npos)
      << result.violation;

  // Same instance, barrier intact: exhaustively clean.
  config.bug_skip_barrier = false;
  mc::CheckResult clean = mc::check(mc::PipelineModel(config),
                                    quick_options());
  EXPECT_TRUE(clean.ok) << clean.violation;
}

TEST(McReplEventual, LeaderlessEventualStreamVerifies) {
  // The availability property as model coverage: eventual submits stay
  // enabled while the shard is leaderless (kill interleavings included) and
  // no reachable state puts a replica's cursor past the submitted prefix.
  mc::ReplModelConfig config;
  config.max_appends = 2;
  config.max_kills = 1;
  config.max_eventual_submits = 2;
  mc::ReplModelResult result = mc::check_repl_model(config);
  EXPECT_FALSE(result.violation_found)
      << result.violation << "\nvia: " << result.counterexample;
  EXPECT_GT(result.states_explored, 100u);
}

TEST(McReplEventual, OverDeliveryYieldsCursorCounterexample) {
  mc::ReplModelConfig config;
  config.max_appends = 0;
  config.max_kills = 0;
  config.max_eventual_submits = 1;
  config.bug_eventual_over_deliver = true;
  mc::ReplModelResult result = mc::check_repl_model(config);
  ASSERT_TRUE(result.violation_found);
  EXPECT_NE(result.violation.find("eventual cursor"), std::string::npos)
      << result.violation;
  EXPECT_FALSE(result.counterexample.empty());
}

// ---- repl eventual stream (runtime) ------------------------------------------

TEST(ReplEventualStream, DeliversWhileLeaderless) {
  // The availability win: eventual-class visibility keeps flowing to the
  // standbys while the strong commit path is blocked on an election.
  ExperimentConfig config;
  config.seed = 33;
  config.kind = ControllerKind::kZenithNR;
  config.core.repl.num_shards = 1;
  config.core.consistency.eventual_installs = true;
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  Workload workload(&exp, 7);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(10)).has_value());
  repl::ReplicatedControlPlane* repl = exp.controller().repl();
  ASSERT_NE(repl, nullptr);

  repl->kill_shard_leader(0);
  const std::uint64_t before = repl->shard(0).eventual_submitted();
  repl->note_eventual(SwitchId(0), 3);
  EXPECT_EQ(repl->shard(0).eventual_submitted(), before + 3);
  // One replication hop later every live replica's cursor has advanced —
  // no election required (the strong log would still be refusing appends).
  exp.run_for(config.core.repl.replication_hop * 4);
  const repl::Shard& shard = repl->shard(0);
  for (std::size_t i = 0; i < shard.replicas().size(); ++i) {
    if (!shard.replicas()[i].alive) continue;
    EXPECT_EQ(shard.eventual_seen(i), before + 3) << "replica " << i;
  }
  repl->revive_shard(0);
  auto settled = exp.run_until([&] { return repl->settled(); }, seconds(10));
  EXPECT_TRUE(settled.has_value());
}

// ---- chaos grid with the lockstep oracle -------------------------------------

using chaos::CampaignConfig;
using chaos::CampaignResult;
using chaos::ChaosCampaign;
using chaos::TopologyKind;

CampaignConfig grid_config(chaos::TopologyKind topology, std::size_t size,
                           std::uint64_t seed) {
  CampaignConfig config;
  config.topology = topology;
  config.topology_size = size;
  config.seed = seed;
  config.schedule.horizon = seconds(4);
  config.schedule.fault_count = 8;
  config.initial_flows = 4;
  config.core.consistency.eventual_installs = true;
  config.lockstep = true;
  return config;
}

TEST(ConsistencyChaos, EventualGridHoldsE1E2UnderLockstep) {
  mc::enable_campaign_lockstep_oracle();
  struct Cell {
    TopologyKind topology;
    std::size_t size;
    std::uint64_t seed;
  };
  const Cell cells[] = {
      {TopologyKind::kFatTree, 4, 101},
      {TopologyKind::kKdlLike, 14, 102},
      {TopologyKind::kRandomConnected, 12, 103},
      {TopologyKind::kRing, 8, 104},
  };
  std::size_t eventual_commits = 0;
  for (const Cell& cell : cells) {
    CampaignConfig config = grid_config(cell.topology, cell.size, cell.seed);
    ChaosCampaign campaign(config);
    CampaignResult result = campaign.run();
    EXPECT_TRUE(result.ok)
        << chaos::to_string(cell.topology) << " seed " << cell.seed << ": "
        << result.summary();
    eventual_commits += result.stats.eventual_commits;
    EXPECT_EQ(result.stats.strong_barriers,
              result.stats.strong_barriers);  // telemetry present
    // Determinism: the eventual path stays a pure function of the seed.
    ChaosCampaign rerun(config);
    EXPECT_EQ(rerun.run().verdict_digest(), result.verdict_digest());
  }
  EXPECT_GT(eventual_commits, 0u)
      << "the grid never exercised the eventual path";
}

TEST(ConsistencyChaos, ReplicatedEventualCellHoldsUnderLeaderFaults) {
  mc::enable_campaign_lockstep_oracle();
  CampaignConfig config = grid_config(TopologyKind::kFatTree, 4, 107);
  config.core.repl.num_shards = 2;
  config.schedule.weights.repl_kill_leader = 0.25;
  config.schedule.weights.repl_partition_leader = 0.15;
  config.schedule.weights.repl_lease_stall = 0.1;
  ChaosCampaign campaign(config);
  CampaignResult result = campaign.run();
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GT(result.stats.eventual_commits, 0u);
}

TEST(ConsistencyChaos, SkippedBarrierCampaignTripsTheE2Oracle) {
  // The buggy build under a cadence that keeps the eventual log populated
  // when delete-bearing (strong) batches commit: the campaign's E2 oracle
  // must flag it, and the same seed with the barrier intact must be green.
  CampaignConfig config = grid_config(TopologyKind::kDiamond, 0, 109);
  config.lockstep = false;  // the campaign's own oracle is under test here
  config.initial_flows = 6;
  config.update_period = millis(5);  // updates overlap each other's deletes
  config.core.consistency.staleness_bound = 16;
  config.core.eventual_apply_service = millis(2);  // slow pump: log lingers
  config.core.consistency.bug_skip_barrier = true;
  ChaosCampaign buggy(config);
  CampaignResult bad = buggy.run();
  ASSERT_FALSE(bad.ok) << "E2 oracle never tripped: " << bad.summary();
  bool found_e2 = false;
  for (const std::string& violation : bad.violations) {
    if (violation.find("E2") != std::string::npos) found_e2 = true;
  }
  EXPECT_TRUE(found_e2) << bad.summary();

  CampaignConfig fixed = config;
  fixed.core.consistency.bug_skip_barrier = false;
  ChaosCampaign clean(fixed);
  CampaignResult good = clean.run();
  EXPECT_TRUE(good.ok) << good.summary();
}

}  // namespace
}  // namespace zenith
