// Lockstep model–implementation conformance harness tests.
//
// The grid cases assert the headline property: the real pipeline, run over
// seeded chaos scenarios at every batching configuration, never reaches a
// quiescent state the formal-model substitute's invariants exclude. The
// deliberate-bug case asserts the harness has teeth — a known §3.9 defect
// (pop-before-process, which loses a worker's whole held batch on crash)
// must be caught AND shrink to a short reproducer. The campaign-hook cases
// cover the optional CampaignConfig::lockstep oracle wiring.
#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "mc/lockstep.h"

namespace zenith {
namespace {

using chaos::TopologyKind;
using mc::LockstepChecker;
using mc::LockstepConfig;
using mc::LockstepReport;

LockstepConfig small_cell(TopologyKind topology, std::size_t size,
                          std::size_t batch_size, std::uint64_t seed) {
  LockstepConfig config;
  config.campaign.topology = topology;
  config.campaign.topology_size = size;
  config.campaign.seed = seed;
  config.campaign.core.batch_size = batch_size;
  config.campaign.schedule.horizon = seconds(3);
  config.campaign.schedule.fault_count = 8;
  config.campaign.initial_flows = 4;
  config.phases = 3;
  config.check_model = false;
  return config;
}

/// Fault mix that exercises crash recovery hard: mostly component crashes
/// (the Watchdog path), some OFC failovers.
void make_crash_heavy(LockstepConfig& config) {
  chaos::FaultWeights& w = config.campaign.schedule.weights;
  w.switch_complete_transient = 0.0;
  w.switch_partial_transient = 0.0;
  w.link_flap = 0.0;
  w.component_crash = 0.8;
  w.ofc_crash = 0.2;
  w.de_crash = 0.0;
  w.reply_burst_loss = 0.0;
}

TEST(LockstepGrid, ConformsAcrossTopologiesBatchSizesAndSchedules) {
  struct Topo {
    TopologyKind kind;
    std::size_t size;
  };
  const Topo topologies[] = {
      {TopologyKind::kKdlLike, 16},
      {TopologyKind::kB4, 0},
      {TopologyKind::kFatTree, 4},
  };
  for (const Topo& topo : topologies) {
    for (std::size_t batch_size : {1, 4, 16}) {
      for (std::uint64_t seed : {1, 2}) {
        for (bool crash_heavy : {false, true}) {
          LockstepConfig config =
              small_cell(topo.kind, topo.size, batch_size, seed);
          if (crash_heavy) make_crash_heavy(config);
          LockstepChecker checker(config);
          LockstepReport report = checker.run();
          EXPECT_FALSE(report.diverged)
              << chaos::to_string(topo.kind) << " bs=" << batch_size
              << " seed=" << seed << " crash_heavy=" << crash_heavy << " :: "
              << report.summary();
          EXPECT_EQ(report.phases.size(), config.phases);
          // The schedule actually exercised the cell: faults were injected
          // across the phases (8 primaries plus their recoveries).
          std::size_t injected = 0;
          for (const auto& phase : report.phases) {
            injected += phase.events_injected;
          }
          EXPECT_GE(injected, config.campaign.schedule.fault_count);
        }
      }
    }
  }
}

TEST(LockstepGrid, ReplicatedCellsConformAcrossLeaderFailovers) {
  // The replicated control plane under the same lockstep microscope: phase
  // quiescence waits for the replica sets to settle (ReplicatedControlPlane
  // ::settled), then check_quiescent folds the abstract replica set — epoch,
  // committed prefix, per-replica applied index — into the comparison. Any
  // state an unplanned takeover leaves behind that the model's invariants
  // exclude is a divergence.
  struct Topo {
    TopologyKind kind;
    std::size_t size;
  };
  const Topo topologies[] = {
      {TopologyKind::kKdlLike, 16},
      {TopologyKind::kFatTree, 4},
  };
  for (const Topo& topo : topologies) {
    for (std::uint64_t seed : {1, 2}) {
      LockstepConfig config = small_cell(topo.kind, topo.size, 4, seed);
      config.campaign.core.repl.num_shards = 2;
      chaos::FaultWeights& w = config.campaign.schedule.weights;
      w.repl_kill_leader = 0.25;
      w.repl_partition_leader = 0.15;
      w.repl_lease_stall = 0.10;
      LockstepChecker checker(config);
      LockstepReport report = checker.run();
      EXPECT_FALSE(report.diverged)
          << chaos::to_string(topo.kind) << " seed=" << seed << " :: "
          << report.summary();
      EXPECT_EQ(report.phases.size(), config.phases);
    }
  }
}

TEST(LockstepDeliberateBug, CommitBeforeQuorumDivergesAndShrinks) {
  // The replication defect through the lockstep lens: the abstract replica
  // set exposes a committed prefix no quorum holds, which check_quiescent's
  // replication invariant rejects. A curated kill-leader schedule pins the
  // fault inside the append window (generated multi-kill ddmin subsets can
  // legally starve a quorum on the clean build, muddying the shrink).
  //
  // Unlike the campaign variant, lockstep converges the initial DAG before
  // phase 0, so the only unreplicated appends come from the phase-0 update
  // DAG submitted at the window start — its ACK-driven appends land within
  // the first few milliseconds. The scan therefore sweeps that early window
  // at sub-hop granularity (replication_hop is 1ms).
  bool caught = false;
  for (SimTime kill_at = micros(500); kill_at <= millis(16) && !caught;
       kill_at += micros(500)) {
    LockstepConfig config = small_cell(TopologyKind::kKdlLike, 12, 1, 5);
    config.campaign.core.repl.num_shards = 1;
    config.campaign.core.repl.bug_commit_before_quorum = true;
    config.campaign.update_period = millis(40);
    chaos::ChaosSchedule schedule;
    schedule.seed = config.campaign.seed;
    chaos::ChaosEvent kill;
    kill.kind = chaos::FaultKind::kReplKillLeader;
    kill.at = kill_at;
    kill.shard = 0;
    schedule.events.push_back(kill);
    chaos::ChaosEvent revive;
    revive.kind = chaos::FaultKind::kReplRevive;
    revive.at = kill_at + millis(400);
    revive.shard = 0;
    schedule.events.push_back(revive);

    LockstepChecker checker(config);
    LockstepReport report = checker.run(schedule);
    if (!report.diverged) continue;
    caught = true;
    ASSERT_FALSE(report.divergences.empty());
    bool replication_divergence = false;
    for (const std::string& divergence : report.divergences) {
      if (divergence.find("replication") != std::string::npos ||
          divergence.find("R2") != std::string::npos) {
        replication_divergence = true;
      }
    }
    EXPECT_TRUE(replication_divergence) << report.summary();

    LockstepChecker::DivergenceShrink shrunk = checker.shrink(schedule);
    EXPECT_TRUE(shrunk.minimal_report.diverged);
    EXPECT_LE(shrunk.minimal.size(), 2u)
        << "reproducer did not shrink: " << shrunk.trace.to_string();
    EXPECT_FALSE(shrunk.trace.violation.empty());
  }
  EXPECT_TRUE(caught)
      << "commit-before-quorum never diverged across the kill-offset scan — "
         "the replicated lockstep harness has no teeth";
}

TEST(LockstepReportDigest, DeterministicAcrossReruns) {
  LockstepConfig config = small_cell(TopologyKind::kB4, 0, 16, 3);
  LockstepReport first = LockstepChecker(config).run();
  LockstepReport second = LockstepChecker(config).run();
  ASSERT_EQ(first.phases.size(), second.phases.size());
  for (std::size_t i = 0; i < first.phases.size(); ++i) {
    EXPECT_EQ(first.phases[i].digest, second.phases[i].digest) << "phase " << i;
    EXPECT_EQ(first.phases[i].at, second.phases[i].at) << "phase " << i;
  }
  EXPECT_EQ(first.report_digest(), second.report_digest());
}

TEST(LockstepModel, AttachesTheSmallScopeModelVerdict) {
  // With the bug knobs off the downscaled PipelineModel instance (same
  // batch_size, crash budget armed by the crash-heavy schedule) verifies
  // clean, and its statistics ride along on the report.
  LockstepConfig config = small_cell(TopologyKind::kKdlLike, 16, 4, 1);
  make_crash_heavy(config);
  config.check_model = true;
  LockstepReport report = LockstepChecker(config).run();
  EXPECT_FALSE(report.diverged) << report.summary();
  EXPECT_TRUE(report.model_result.ok) << report.model_result.violation;
  EXPECT_FALSE(report.model_result.capped);
  EXPECT_GT(report.model_result.distinct_states, 0u);
}

TEST(LockstepDeliberateBug, PopBeforeProcessIsCaughtAndShrinks) {
  // pop-before-process takes the OP (at batch_size=4: the whole held batch)
  // off the queue before recording it; a worker crash then loses the work
  // forever. The model excludes every such state, so the harness must flag
  // a divergence, and ddmin must cut the schedule to a handful of events.
  // The loss window is one worker service step, so the cell stretches
  // worker_service (as the mark_up_before_reset hunts stretch the deferred
  // reset) to give randomly-timed crashes a realistic chance of landing in
  // it; a crash-heavy schedule supplies plenty of attempts.
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 8 && !caught; ++seed) {
    LockstepConfig config = small_cell(TopologyKind::kKdlLike, 16, 4, seed);
    make_crash_heavy(config);
    config.campaign.core.bugs.pop_before_process = true;
    config.campaign.core.worker_service = millis(10);
    config.campaign.schedule.fault_count = 20;
    config.settle_timeout = seconds(5);
    LockstepChecker checker(config);
    LockstepReport report = checker.run();
    if (!report.diverged) continue;
    caught = true;
    ASSERT_FALSE(report.divergences.empty());
    // The causal tail travels with the report.
    EXPECT_FALSE(report.flight_recorder_dump.empty());

    LockstepChecker::DivergenceShrink shrunk =
        checker.shrink(checker.schedule());
    EXPECT_TRUE(shrunk.minimal_report.diverged);
    EXPECT_LE(shrunk.minimal.size(), 15u)
        << "reproducer did not shrink: " << shrunk.trace.to_string();
    EXPECT_LE(shrunk.minimal.size(), checker.schedule().size());
    EXPECT_FALSE(shrunk.trace.violation.empty());
    EXPECT_GE(shrunk.oracle_runs, 1u);
  }
  EXPECT_TRUE(caught)
      << "pop_before_process never diverged across 8 seeds — the harness "
         "has no teeth";
}

TEST(LockstepCampaignHook, RequestedWithoutOracleFailsLoudly) {
  chaos::set_campaign_lockstep_oracle(nullptr);
  chaos::CampaignConfig config;
  config.topology = TopologyKind::kKdlLike;
  config.topology_size = 12;
  config.seed = 2;
  config.schedule.horizon = seconds(2);
  config.schedule.fault_count = 4;
  config.initial_flows = 3;
  config.lockstep = true;
  chaos::CampaignResult result = chaos::ChaosCampaign(config).run();
  ASSERT_FALSE(result.ok);
  bool mentioned = false;
  for (const std::string& violation : result.violations) {
    if (violation.find("not installed") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned) << result.summary();
}

TEST(LockstepCampaignHook, InstalledOracleKeepsCleanCampaignsOk) {
  mc::enable_campaign_lockstep_oracle();
  ASSERT_TRUE(chaos::campaign_lockstep_oracle_installed());
  chaos::CampaignConfig config;
  config.topology = TopologyKind::kKdlLike;
  config.topology_size = 12;
  config.seed = 2;
  config.schedule.horizon = seconds(2);
  config.schedule.fault_count = 4;
  config.initial_flows = 3;
  config.lockstep = true;
  chaos::CampaignResult result = chaos::ChaosCampaign(config).run();
  EXPECT_TRUE(result.ok) << result.summary();
  // Same cell at batch_size=16: the oracle must hold across the batched
  // dispatch path too.
  config.core.batch_size = 16;
  chaos::CampaignResult batched = chaos::ChaosCampaign(config).run();
  EXPECT_TRUE(batched.ok) << batched.summary();
  chaos::set_campaign_lockstep_oracle(nullptr);
  EXPECT_FALSE(chaos::campaign_lockstep_oracle_installed());
}

}  // namespace
}  // namespace zenith
