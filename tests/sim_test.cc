#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/fifo.h"
#include "sim/simulator.h"

namespace zenith {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(micros(30), [&] { order.push_back(3); });
  sim.schedule(micros(10), [&] { order.push_back(1); });
  sim.schedule(micros(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), micros(30));
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(micros(10), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(micros(10), [&] { fired = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule(micros(10), [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 1);
  handle.cancel();  // the event already executed; must not corrupt anything
  sim.schedule(micros(5), [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 2);
}

TEST(Simulator, DoubleCancelIsIdempotent) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(micros(10), [&] { fired = true; });
  handle.cancel();
  handle.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromWithinCallback) {
  // An event cancelling a later one from inside its own callback — the
  // pattern timeouts use (the response's arrival cancels the timer).
  Simulator sim;
  bool timer_fired = false;
  Simulator::EventHandle timer =
      sim.schedule(micros(20), [&] { timer_fired = true; });
  sim.schedule(micros(10), [&] { timer.cancel(); });
  sim.run();
  EXPECT_FALSE(timer_fired);
  EXPECT_EQ(sim.now(), micros(20));  // the cancelled slot still advances time
}

TEST(Simulator, CancelRaceAtSameTimestamp) {
  // Two events at the same instant, the first cancelling the second: FIFO
  // order among simultaneous events makes the cancellation win.
  Simulator sim;
  bool second_fired = false;
  Simulator::EventHandle second;
  sim.schedule(micros(10), [&] { second.cancel(); });
  second = sim.schedule(micros(10), [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, SelfCancelInsideOwnCallbackIsHarmless) {
  Simulator sim;
  int fires = 0;
  Simulator::EventHandle handle;
  handle = sim.schedule(micros(10), [&] {
    ++fires;
    handle.cancel();  // cancelling the very event being executed
  });
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(Simulator, DefaultHandleIsInvalidAndCancelSafe) {
  Simulator::EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // no-op, no crash
}

TEST(Simulator, SlabReusesSlotsInsteadOfGrowing) {
  // Sequential schedule/run cycles recycle the same pooled record: the slab
  // high-water mark tracks peak concurrency, not total event volume.
  Simulator sim;
  int fires = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(micros(1), [&] { ++fires; });
    sim.run();
  }
  EXPECT_EQ(fires, 1000);
  EXPECT_EQ(sim.slab_size(), 1u);

  // Peak concurrency grows the slab once; further churn reuses it.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule(micros(i), [&] { ++fires; });
    }
    sim.run();
  }
  EXPECT_EQ(fires, 1000 + 5 * 64);
  EXPECT_EQ(sim.slab_size(), 64u);
}

TEST(Simulator, StaleHandleCancelAfterSlotReuseIsNoOp) {
  // A fired event's slot is recycled by the next schedule; the old handle's
  // generation no longer matches, so cancelling it must not touch the new
  // event (the cancel-after-generation-bump contract).
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;
  auto first = sim.schedule(micros(10), [&] { first_fired = true; });
  sim.run();
  EXPECT_TRUE(first_fired);
  auto second = sim.schedule(micros(10), [&] { second_fired = true; });
  first.cancel();  // stale: slot was re-acquired by `second`
  sim.run();
  EXPECT_TRUE(second_fired);
  EXPECT_TRUE(second.valid());
}

TEST(Simulator, CancelledSlotIsRecycledImmediately) {
  // cancel() releases the pooled record right away (not at pop time), so a
  // cancel-heavy workload cannot grow the slab.
  Simulator sim;
  for (int i = 0; i < 100; ++i) {
    auto handle = sim.schedule(micros(10), [] {});
    handle.cancel();
  }
  EXPECT_EQ(sim.slab_size(), 1u);
  EXPECT_EQ(sim.run(), 0u);  // all stale queue entries skipped
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.now(), micros(10));  // stale entries still advance the clock
}

TEST(Simulator, SeededRunsFingerprintIdentically) {
  // The slab kernel preserves the determinism contract: two simulators fed
  // the same seeded event pattern (including cancellations) execute the
  // same events in the same order at the same timestamps.
  auto trace_of = [](std::uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    std::vector<std::pair<SimTime, int>> trace;
    std::vector<Simulator::EventHandle> handles;
    for (int i = 0; i < 500; ++i) {
      SimTime when = micros(static_cast<std::int64_t>(rng.next_below(1000)));
      handles.push_back(sim.schedule(when, [&trace, &sim, i] {
        trace.emplace_back(sim.now(), i);
      }));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (rng.next_below(3) == 0) handles[i].cancel();
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(trace_of(42), trace_of(42));
  EXPECT_NE(trace_of(42), trace_of(43));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule(micros(10), [&] { ++count; });
  sim.schedule(micros(100), [&] { ++count; });
  sim.run_until(micros(50));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), micros(50));
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(micros(10), [&] {
    times.push_back(sim.now());
    sim.schedule(micros(5), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(NadirFifoTest, WakeFiresOnEmptyToNonEmptyOnly) {
  NadirFifo<int> fifo;
  int wakes = 0;
  fifo.set_wake_callback([&] { ++wakes; });
  fifo.push(1);
  fifo.push(2);
  EXPECT_EQ(wakes, 1);
  (void)fifo.pop();
  (void)fifo.pop();
  fifo.push(3);
  EXPECT_EQ(wakes, 2);
}

TEST(NadirFifoTest, PeekAckPopDiscipline) {
  NadirFifo<int> fifo;
  fifo.push(1);
  fifo.push(2);
  EXPECT_EQ(fifo.peek(), 1);
  EXPECT_EQ(fifo.peek(), 1);  // peek does not consume
  fifo.ack_pop();
  EXPECT_EQ(fifo.peek(), 2);
  EXPECT_EQ(fifo.size(), 1u);
}

TEST(DelayedChannelTest, DeliversAfterDelay) {
  Simulator sim;
  DelayedChannel<int> channel(&sim, Rng(1), DelayModel{millis(1), 0});
  channel.send(42);
  EXPECT_TRUE(channel.sink().empty());
  sim.run();
  ASSERT_EQ(channel.sink().size(), 1u);
  EXPECT_EQ(sim.now(), millis(1));
}

TEST(DelayedChannelTest, PreservesFifoDespiteJitter) {
  Simulator sim;
  DelayedChannel<int> channel(&sim, Rng(7), DelayModel{millis(1), millis(5)});
  for (int i = 0; i < 50; ++i) channel.send(i);
  sim.run();
  int expected = 0;
  while (!channel.sink().empty()) {
    EXPECT_EQ(channel.sink().pop(), expected++);
  }
  EXPECT_EQ(expected, 50);
}

TEST(DelayedChannelTest, DropInFlightLosesUndelivered) {
  Simulator sim;
  DelayedChannel<int> channel(&sim, Rng(3), DelayModel{millis(10), 0});
  channel.send(1);
  sim.run_until(millis(5));
  channel.drop_in_flight();
  channel.send(2);  // post-drop traffic still flows
  sim.run();
  ASSERT_EQ(channel.sink().size(), 1u);
  EXPECT_EQ(channel.sink().pop(), 2);
}

}  // namespace
}  // namespace zenith
