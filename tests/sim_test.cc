#include <gtest/gtest.h>

#include "sim/fifo.h"
#include "sim/simulator.h"

namespace zenith {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(micros(30), [&] { order.push_back(3); });
  sim.schedule(micros(10), [&] { order.push_back(1); });
  sim.schedule(micros(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), micros(30));
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(micros(10), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(micros(10), [&] { fired = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule(micros(10), [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 1);
  handle.cancel();  // the event already executed; must not corrupt anything
  sim.schedule(micros(5), [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 2);
}

TEST(Simulator, DoubleCancelIsIdempotent) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(micros(10), [&] { fired = true; });
  handle.cancel();
  handle.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromWithinCallback) {
  // An event cancelling a later one from inside its own callback — the
  // pattern timeouts use (the response's arrival cancels the timer).
  Simulator sim;
  bool timer_fired = false;
  Simulator::EventHandle timer =
      sim.schedule(micros(20), [&] { timer_fired = true; });
  sim.schedule(micros(10), [&] { timer.cancel(); });
  sim.run();
  EXPECT_FALSE(timer_fired);
  EXPECT_EQ(sim.now(), micros(20));  // the cancelled slot still advances time
}

TEST(Simulator, CancelRaceAtSameTimestamp) {
  // Two events at the same instant, the first cancelling the second: FIFO
  // order among simultaneous events makes the cancellation win.
  Simulator sim;
  bool second_fired = false;
  Simulator::EventHandle second;
  sim.schedule(micros(10), [&] { second.cancel(); });
  second = sim.schedule(micros(10), [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, SelfCancelInsideOwnCallbackIsHarmless) {
  Simulator sim;
  int fires = 0;
  Simulator::EventHandle handle;
  handle = sim.schedule(micros(10), [&] {
    ++fires;
    handle.cancel();  // cancelling the very event being executed
  });
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(Simulator, DefaultHandleIsInvalidAndCancelSafe) {
  Simulator::EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // no-op, no crash
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule(micros(10), [&] { ++count; });
  sim.schedule(micros(100), [&] { ++count; });
  sim.run_until(micros(50));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), micros(50));
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(micros(10), [&] {
    times.push_back(sim.now());
    sim.schedule(micros(5), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(NadirFifoTest, WakeFiresOnEmptyToNonEmptyOnly) {
  NadirFifo<int> fifo;
  int wakes = 0;
  fifo.set_wake_callback([&] { ++wakes; });
  fifo.push(1);
  fifo.push(2);
  EXPECT_EQ(wakes, 1);
  (void)fifo.pop();
  (void)fifo.pop();
  fifo.push(3);
  EXPECT_EQ(wakes, 2);
}

TEST(NadirFifoTest, PeekAckPopDiscipline) {
  NadirFifo<int> fifo;
  fifo.push(1);
  fifo.push(2);
  EXPECT_EQ(fifo.peek(), 1);
  EXPECT_EQ(fifo.peek(), 1);  // peek does not consume
  fifo.ack_pop();
  EXPECT_EQ(fifo.peek(), 2);
  EXPECT_EQ(fifo.size(), 1u);
}

TEST(DelayedChannelTest, DeliversAfterDelay) {
  Simulator sim;
  DelayedChannel<int> channel(&sim, Rng(1), DelayModel{millis(1), 0});
  channel.send(42);
  EXPECT_TRUE(channel.sink().empty());
  sim.run();
  ASSERT_EQ(channel.sink().size(), 1u);
  EXPECT_EQ(sim.now(), millis(1));
}

TEST(DelayedChannelTest, PreservesFifoDespiteJitter) {
  Simulator sim;
  DelayedChannel<int> channel(&sim, Rng(7), DelayModel{millis(1), millis(5)});
  for (int i = 0; i < 50; ++i) channel.send(i);
  sim.run();
  int expected = 0;
  while (!channel.sink().empty()) {
    EXPECT_EQ(channel.sink().pop(), expected++);
  }
  EXPECT_EQ(expected, 50);
}

TEST(DelayedChannelTest, DropInFlightLosesUndelivered) {
  Simulator sim;
  DelayedChannel<int> channel(&sim, Rng(3), DelayModel{millis(10), 0});
  channel.send(1);
  sim.run_until(millis(5));
  channel.drop_in_flight();
  channel.send(2);  // post-drop traffic still flows
  sim.run();
  ASSERT_EQ(channel.sink().size(), 1u);
  EXPECT_EQ(channel.sink().pop(), 2);
}

}  // namespace
}  // namespace zenith
