// The golden-fingerprint regression corpus: one place that defines WHICH
// runs are pinned, shared by the generator binary (golden_gen) and the
// conformance diff test, so the two can never drift apart.
//
// Everything here is a timing-inclusive digest of a fully deterministic
// run, pinned at batch_size=1 unless the name says otherwise (the
// determinism contract in CoreConfig::batch_size: timing-sensitive
// artifacts are golden only at the batch size they were recorded at).
// Regenerate with scripts/update_golden.sh after any INTENDED behaviour
// change; an unintended diff is a regression in pipeline determinism or
// semantics and should be treated like a failing invariant.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "chaos/campaign.h"
#include "harness/soak.h"
#include "mc/lockstep.h"
#include "topo/generators.h"

namespace zenith::golden {

/// Small failure-free soak cell on fat_tree(4). Deterministic in
/// (seed, batch_size); the golden corpus pins the 4-group x 8-flow shape,
/// the batch-equivalence property sweep reuses it with its own shapes.
inline SoakResult run_soak_cell(std::size_t batch_size,
                                DeliveryOrderRecorder* recorder,
                                std::uint64_t seed = 9,
                                std::size_t groups = 4,
                                std::size_t flows_per_group = 8,
                                std::size_t target_ops = 2000) {
  ExperimentConfig config;
  config.seed = 16 + seed;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = batch_size;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;
  Experiment exp(gen::fat_tree(4), config);
  if (recorder != nullptr) recorder->attach(exp.fabric());
  exp.start();

  SoakConfig soak_config;
  soak_config.seed = seed;
  soak_config.groups = groups;
  soak_config.flows_per_group = flows_per_group;
  soak_config.target_ops = target_ops;
  soak_config.chaos = false;
  gen::FatTreeIndex index = gen::fat_tree_index(4);
  for (std::size_t i = index.edge_begin; i < index.edge_end; ++i) {
    soak_config.endpoints.push_back(SwitchId(static_cast<std::uint32_t>(i)));
  }
  SoakWorkload workload(&exp, soak_config);
  return workload.run();
}

/// The PR-3 chaos determinism grid: {kdl_like(16), b4, fat_tree(4)} x
/// seeds 1..4, default (batch_size=1) core.
inline chaos::CampaignConfig chaos_cell_config(chaos::TopologyKind topology,
                                               std::size_t size,
                                               std::uint64_t seed) {
  chaos::CampaignConfig config;
  config.topology = topology;
  config.topology_size = size;
  config.seed = seed;
  config.schedule.horizon = seconds(4);
  config.schedule.fault_count = 10;
  config.initial_flows = 4;
  return config;
}

/// Replicated-control-plane chaos cell: the chaos grid shape with two
/// shards of three replicas each and the replication fault classes
/// (kill-leader, partition-leader, lease-stall) mixed into the schedule.
/// The pinned verdict digest covers the R1-R4 oracle sweep and the
/// schedule/trace/metrics fingerprints across unplanned leader failovers.
inline chaos::CampaignConfig repl_cell_config(chaos::TopologyKind topology,
                                              std::size_t size,
                                              std::uint64_t seed) {
  chaos::CampaignConfig config = chaos_cell_config(topology, size, seed);
  config.core.repl.num_shards = 2;
  config.schedule.fault_count = 12;
  config.schedule.weights.repl_kill_leader = 0.18;
  config.schedule.weights.repl_partition_leader = 0.12;
  config.schedule.weights.repl_lease_stall = 0.08;
  return config;
}

/// Adaptive-consistency cells (PR 10): the chaos_fattree4 shape with the
/// consistency knob set explicitly. The strong cell must reproduce
/// chaos_fattree4_s1.verdict exactly — eventual_installs=false is the
/// default and adds no log, no pump steps and no rng draws (the
/// default-is-byte-identical contract, pinned as its own named entry so a
/// drift names the subsystem). The eventual cell pins the bounded-staleness
/// publication order under the same faults.
inline chaos::CampaignConfig consistency_cell_config(bool eventual,
                                                     std::uint64_t seed) {
  chaos::CampaignConfig config =
      chaos_cell_config(chaos::TopologyKind::kFatTree, 4, seed);
  config.core.consistency.eventual_installs = eventual;
  if (eventual) {
    // Slow the apply pump below the commit cadence so the pinned run
    // actually exercises lag > 1 (the strong cell never constructs a pump).
    config.core.eventual_apply_service = millis(1);
  }
  return config;
}

/// The lockstep conformance grid cell (mirrors the zenith_lockstep runner's
/// defaults): a 3-second, 8-fault schedule sliced into 3 quiescence phases.
/// The golden corpus pins the per-phase abstraction digests via
/// LockstepReport::report_digest().
inline mc::LockstepConfig lockstep_cell_config(chaos::TopologyKind topology,
                                               std::size_t size,
                                               std::size_t batch_size,
                                               std::uint64_t seed) {
  mc::LockstepConfig config;
  config.campaign.topology = topology;
  config.campaign.topology_size = size;
  config.campaign.seed = seed;
  config.campaign.core.batch_size = batch_size;
  config.campaign.schedule.horizon = seconds(3);
  config.campaign.schedule.fault_count = 8;
  config.campaign.initial_flows = 4;
  config.phases = 3;
  config.check_model = false;  // the model verdict is not a run digest
  return config;
}

inline std::map<std::string, std::uint64_t> compute_fingerprints() {
  std::map<std::string, std::uint64_t> out;

  for (std::size_t bs : {std::size_t{1}, std::size_t{16}}) {
    DeliveryOrderRecorder recorder;
    SoakResult result = run_soak_cell(bs, &recorder);
    std::string prefix = "soak_fattree4_bs" + std::to_string(bs);
    out[prefix + ".nib"] = result.nib_fingerprint;
    out[prefix + ".delivery"] = recorder.fingerprint();
  }

  struct Cell {
    chaos::TopologyKind kind;
    std::size_t size;
    const char* name;
  };
  const Cell cells[] = {
      {chaos::TopologyKind::kKdlLike, 16, "kdl16"},
      {chaos::TopologyKind::kB4, 0, "b4"},
      {chaos::TopologyKind::kFatTree, 4, "fattree4"},
  };
  for (const Cell& cell : cells) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      chaos::ChaosCampaign campaign(
          chaos_cell_config(cell.kind, cell.size, seed));
      out["chaos_" + std::string(cell.name) + "_s" + std::to_string(seed) +
          ".verdict"] = campaign.run().verdict_digest();
    }
  }

  // Replicated control plane: the same chaos grid with 2 shards x 3
  // replicas and replication faults in the mix, pinned for two seeds per
  // topology (the full 3x3 grid runs in repl_test; the corpus pins a
  // representative slice).
  for (const Cell& cell : cells) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      chaos::ChaosCampaign campaign(
          repl_cell_config(cell.kind, cell.size, seed));
      out["repl_" + std::string(cell.name) + "_s" + std::to_string(seed) +
          ".verdict"] = campaign.run().verdict_digest();
    }
  }

  // Adaptive consistency: all-strong (must equal chaos_fattree4_s1) and
  // eventual-class installs, same faults, same seed.
  for (bool eventual : {false, true}) {
    chaos::ChaosCampaign campaign(consistency_cell_config(eventual, 1));
    out[std::string("consistency_fattree4_s1_") +
        (eventual ? "eventual" : "strong") + ".verdict"] =
        campaign.run().verdict_digest();
  }

  // Lockstep conformance grid: per-phase abstraction digests pinned at the
  // batching extremes (bs=1 classic, bs=16 coalescing).
  for (const Cell& cell : cells) {
    for (std::size_t bs : {std::size_t{1}, std::size_t{16}}) {
      mc::LockstepChecker checker(
          lockstep_cell_config(cell.kind, cell.size, bs, /*seed=*/1));
      out["lockstep_" + std::string(cell.name) + "_bs" + std::to_string(bs) +
          ".report"] = checker.run().report_digest();
    }
  }
  return out;
}

}  // namespace zenith::golden
