#include <gtest/gtest.h>

#include "topo/generators.h"
#include "topo/paths.h"
#include "topo/topology.h"

namespace zenith {
namespace {

TEST(Topology, AddSwitchesAndLinks) {
  Topology t;
  SwitchId a = t.add_switch("a");
  SwitchId b = t.add_switch("b");
  ASSERT_TRUE(t.add_link(a, b).ok());
  EXPECT_TRUE(t.has_link(a, b));
  EXPECT_TRUE(t.has_link(b, a));  // undirected
  EXPECT_EQ(t.switch_count(), 2u);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.neighbors(a).size(), 1u);
}

TEST(Topology, RejectsInvalidLinks) {
  Topology t;
  SwitchId a = t.add_switch();
  SwitchId b = t.add_switch();
  EXPECT_FALSE(t.add_link(a, a).ok());                 // self loop
  EXPECT_FALSE(t.add_link(a, SwitchId(99)).ok());      // unknown endpoint
  ASSERT_TRUE(t.add_link(a, b).ok());
  EXPECT_FALSE(t.add_link(b, a).ok());                 // duplicate
}

TEST(Topology, ConnectedSubgraph) {
  Topology t = gen::linear(5);
  std::unordered_set<SwitchId> all;
  for (auto sw : t.all_switches()) all.insert(sw);
  EXPECT_TRUE(t.connected_subgraph(all));
  // Removing the middle disconnects the chain.
  all.erase(SwitchId(2));
  EXPECT_FALSE(t.connected_subgraph(all));
}

TEST(Generators, LinearAndRing) {
  Topology line = gen::linear(10);
  EXPECT_EQ(line.switch_count(), 10u);
  EXPECT_EQ(line.link_count(), 9u);
  Topology circle = gen::ring(10);
  EXPECT_EQ(circle.link_count(), 10u);
}

TEST(Generators, Figure2Diamond) {
  Topology t = gen::figure2_diamond();
  EXPECT_EQ(t.switch_count(), 4u);
  // A-B, B-D, A-C, C-D; no direct A-D.
  EXPECT_TRUE(t.has_link(SwitchId(0), SwitchId(1)));
  EXPECT_FALSE(t.has_link(SwitchId(0), SwitchId(3)));
}

TEST(Generators, B4HasTwelveSites) {
  Topology t = gen::b4();
  EXPECT_EQ(t.switch_count(), 12u);
  // Every site is reachable from site 0.
  for (std::uint32_t i = 1; i < 12; ++i) {
    EXPECT_TRUE(shortest_path(t, SwitchId(0), SwitchId(i)).has_value());
  }
}

TEST(Generators, FatTreeStructure) {
  constexpr std::size_t k = 4;
  Topology t = gen::fat_tree(k);
  auto idx = gen::fat_tree_index(k);
  EXPECT_EQ(t.switch_count(), idx.edge_end);
  EXPECT_EQ(idx.core_end - idx.core_begin, 4u);   // (k/2)^2
  EXPECT_EQ(idx.agg_end - idx.agg_begin, 8u);     // k*k/2
  EXPECT_EQ(idx.edge_end - idx.edge_begin, 8u);
  // Edge switches in different pods communicate via agg+core: path len 5.
  auto p = shortest_path(t, SwitchId(static_cast<std::uint32_t>(idx.edge_begin)),
                         SwitchId(static_cast<std::uint32_t>(idx.edge_end - 1)));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 5u);
}

TEST(Generators, KdlLikeIsConnectedAndSparse) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Topology t = gen::kdl_like(200, seed);
    EXPECT_EQ(t.switch_count(), 200u);
    std::unordered_set<SwitchId> all;
    for (auto sw : t.all_switches()) all.insert(sw);
    EXPECT_TRUE(t.connected_subgraph(all));
    // Sparse: edges < 1.3x nodes (KDL is chain heavy).
    EXPECT_LT(t.link_count(), 260u);
  }
}

TEST(Generators, RandomConnectedIsConnected) {
  Topology t = gen::random_connected(50, 20, 99);
  std::unordered_set<SwitchId> all;
  for (auto sw : t.all_switches()) all.insert(sw);
  EXPECT_TRUE(t.connected_subgraph(all));
  EXPECT_GE(t.link_count(), 49u);
}

TEST(Generators, DeterministicInSeed) {
  Topology a = gen::kdl_like(100, 5);
  Topology b = gen::kdl_like(100, 5);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (const Link& l : a.links()) {
    EXPECT_TRUE(b.has_link(l.a, l.b));
  }
}

TEST(Paths, ShortestPathBasics) {
  Topology t = gen::linear(5);
  auto p = shortest_path(t, SwitchId(0), SwitchId(4));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 5u);
  EXPECT_TRUE(valid_path(t, *p));
  EXPECT_EQ(shortest_path(t, SwitchId(2), SwitchId(2))->size(), 1u);
}

TEST(Paths, ExclusionForcesDetourOrDisconnects) {
  Topology t = gen::figure2_diamond();
  // A to D avoiding B must go via C.
  auto p = shortest_path(t, SwitchId(0), SwitchId(3), {SwitchId(1)});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ((*p)[1], SwitchId(2));
  // Avoiding both B and C disconnects.
  EXPECT_FALSE(
      shortest_path(t, SwitchId(0), SwitchId(3), {SwitchId(1), SwitchId(2)})
          .has_value());
}

TEST(Paths, KAlternativesAreNodeDisjoint) {
  Topology t = gen::figure2_diamond();
  auto alts = k_alternative_paths(t, SwitchId(0), SwitchId(3), 3);
  ASSERT_EQ(alts.size(), 2u);  // via B and via C
  EXPECT_NE(alts[0][1], alts[1][1]);
}

}  // namespace
}  // namespace zenith
