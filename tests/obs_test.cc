// Observability subsystem: metric snapshot determinism, causal span
// integrity across the OP pipeline, flight-recorder ring semantics, JSON
// well-formedness of every exporter, and the campaign-level contracts
// (byte-identical traces for equal seeds; violation => flight-recorder dump
// attached to the shrunk reproducer).
#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "chaos/shrink.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/bench_results.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/trace_export.h"
#include "topo/generators.h"

namespace zenith {
namespace {

using obs::Labels;

TEST(Metrics, CanonicalKeysSortLabels) {
  EXPECT_EQ(obs::MetricsRegistry::key_of("ops", {}), "ops");
  EXPECT_EQ(obs::MetricsRegistry::key_of(
                "ops", {{"b", "2"}, {"a", "1"}}),
            "ops{a=1,b=2}");
}

TEST(Metrics, SeriesInterning) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("sends", {{"sw", "3"}});
  c1.inc(5);
  // Same name+labels (any label order) -> the same series.
  EXPECT_EQ(registry.counter("sends", {{"sw", "3"}}).value(), 5u);
  registry.counter("sends", {{"sw", "4"}}).inc();
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Metrics, SnapshotIsByteIdenticalAcrossIdenticalRuns) {
  auto populate = [](obs::MetricsRegistry& r) {
    r.counter("ops", {{"by", "seq0"}}).inc(3);
    r.counter("ops", {{"by", "seq1"}}).inc(1);
    r.gauge("queue_depth").set(7.5);
    Histogram& h = r.histogram("latency", {}, 0.0, 1.0, 10);
    h.add(0.25);
    h.add(0.95);
    h.add(-1.0);  // underflow
    h.add(2.0);   // overflow
  };
  obs::MetricsRegistry a, b;
  populate(a);
  populate(b);
  obs::MetricsSnapshot sa = a.snapshot(millis(42));
  obs::MetricsSnapshot sb = b.snapshot(millis(42));
  EXPECT_EQ(sa.to_string(), sb.to_string());
  EXPECT_EQ(sa.fingerprint(), sb.fingerprint());
  // Timestamp and content are both part of the fingerprint.
  EXPECT_NE(sa.fingerprint(), a.snapshot(millis(43)).fingerprint());
  b.counter("ops", {{"by", "seq0"}}).inc();
  EXPECT_NE(sa.fingerprint(), b.snapshot(millis(42)).fingerprint());
  // Out-of-range samples are reported, not silently clamped into edge bins.
  bool saw_histogram = false;
  for (const auto& entry : sa.entries) {
    if (entry.kind != "histogram") continue;
    saw_histogram = true;
    EXPECT_NE(entry.value.find("underflow=1"), std::string::npos)
        << entry.value;
    EXPECT_NE(entry.value.find("overflow=1"), std::string::npos)
        << entry.value;
  }
  EXPECT_TRUE(saw_histogram);
  EXPECT_TRUE(obs::json_valid(sa.to_json()));
}

TEST(SpanTracer, ParentChildAndBindings) {
  obs::SpanTracer tracer;
  SimTime t = 0;
  tracer.set_clock([&t] { return t; });
  std::uint64_t dag = tracer.begin("dag 1", "dag", obs::SpanTracer::kNoSpan,
                                   {}, /*async=*/true);
  t = millis(1);
  std::uint64_t op = tracer.begin("op 7", "op", dag, {}, /*async=*/true);
  tracer.bind_op(OpId(7), op);
  t = millis(2);
  tracer.instant("op-send", "worker0", tracer.op_span(OpId(7)));
  t = millis(3);
  tracer.end(tracer.op_span(OpId(7)), "outcome=done");
  tracer.unbind_op(OpId(7));
  EXPECT_EQ(tracer.op_span(OpId(7)), obs::SpanTracer::kNoSpan);

  ASSERT_EQ(tracer.spans().size(), 3u);
  const obs::Span* op_span = tracer.find(op);
  ASSERT_NE(op_span, nullptr);
  EXPECT_EQ(op_span->parent, dag);
  EXPECT_EQ(op_span->start, millis(1));
  EXPECT_EQ(op_span->end, millis(3));
  EXPECT_NE(op_span->args.find("outcome=done"), std::string::npos);
  const obs::Span& send = tracer.spans().back();
  EXPECT_TRUE(send.instant);
  EXPECT_EQ(send.parent, op);
  EXPECT_EQ(tracer.open_count(), 1u);  // the DAG span is still open
}

TEST(SpanTracer, CapacityDropsAreCounted) {
  obs::SpanTracer tracer;
  tracer.set_capacity(2);
  EXPECT_NE(tracer.begin("a", "t"), obs::SpanTracer::kNoSpan);
  EXPECT_NE(tracer.instant("b", "t"), obs::SpanTracer::kNoSpan);
  EXPECT_EQ(tracer.instant("c", "t"), obs::SpanTracer::kNoSpan);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(FlightRecorder, RingWrapsKeepingNewestOldestFirst) {
  obs::FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i) {
    recorder.record(millis(i), "track", "event", std::to_string(i));
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front()->detail, "12");  // oldest surviving
  EXPECT_EQ(events.back()->detail, "19");   // newest
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1]->seq, events[i]->seq);
  }
  std::string dump = recorder.dump();
  EXPECT_NE(dump.find("last 8 of 20"), std::string::npos) << dump;
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(obs::json_valid("{\"a\": [1, 2.5e3, true, null, \"x\\n\"]}"));
  EXPECT_TRUE(obs::json_valid("[]"));
  std::string error;
  EXPECT_FALSE(obs::json_valid("{\"a\": }", &error));
  EXPECT_FALSE(obs::json_valid("[1, 2", &error));
  EXPECT_FALSE(obs::json_valid("{} trailing", &error));
  EXPECT_FALSE(obs::json_valid("{\"a\": NaN}", &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchResults, JsonIsWellFormed) {
  obs::BenchResult bench("unit");
  bench.add("latency_p50", 0.125, "s");
  bench.add_count("runs", 10);
  bench.add("weird", std::numeric_limits<double>::infinity());
  bench.add_note("mode", "test \"quoted\"");
  std::string json = bench.to_json();
  std::string error;
  EXPECT_TRUE(obs::json_valid(json, &error)) << json << " :: " << error;
  EXPECT_NE(json.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);  // inf -> null
}

TEST(Logging, ParseLevelAndSinkCapture) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("loud").has_value());

  Logger& logger = Logger::instance();
  LogLevel saved = logger.level();
  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel, const char*, int, const std::string& msg) {
    captured.push_back(msg);
  });
  logger.set_level(LogLevel::kInfo);
  ZLOG_INFO("hello %d", 42);
  ZLOG_DEBUG("below threshold");
  logger.set_sink({});  // restore stderr
  logger.set_level(saved);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "hello 42");
}

// ---- pipeline integration ---------------------------------------------------

// One instrumented diamond-topology run: install an initial DAG and wait
// for convergence with the full bundle attached.
struct InstrumentedRun {
  std::string chrome_json;
  std::string metrics_text;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t metrics_fingerprint = 0;
  std::vector<obs::Span> spans;
};

InstrumentedRun run_instrumented(std::uint64_t seed) {
  obs::Observability o(128);
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kZenithNR;
  config.core.num_sequencers = 2;
  config.core.num_workers = 2;
  Experiment exp(gen::figure2_diamond(), config);
  exp.attach_observability(&o);
  exp.start();
  Workload workload(&exp, seed + 100);
  Dag dag = workload.initial_dag_for_pairs(
      {{SwitchId(0), SwitchId(3)}, {SwitchId(1), SwitchId(2)}});
  EXPECT_TRUE(exp.install_and_wait(std::move(dag), seconds(30)).has_value());
  InstrumentedRun run;
  run.chrome_json = obs::chrome_trace_json(o.tracer());
  run.metrics_text = o.snapshot().to_string();
  run.trace_fingerprint = o.tracer().fingerprint();
  run.metrics_fingerprint = o.snapshot().fingerprint();
  run.spans = o.tracer().spans();
  return run;
}

// Regression (monitoring_server audit): the batch-reply path must report
// batch_committed with the COMMITTED count, not the wire batch size —
// orphan entries (OPs this controller incarnation never registered) are
// filtered before the NIB transaction and only counted as orphan_acks, so
// a batch of 6 with 1 known OP is one commit of size 1, and an all-orphan
// batch is no commit at all. The kAck path already behaves this way
// (batch_committed(sw, 1) only when the single OP commits).
TEST(ObsBatchMetrics, BatchCommitReportsKnownOpsNotWireSize) {
  obs::Observability o(128);
  ExperimentConfig config;
  config.seed = 5;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::figure2_diamond(), config);
  exp.attach_observability(&o);
  exp.start();

  auto make_op = [](std::uint32_t id) {
    Op op;
    op.id = OpId(id);
    op.type = OpType::kInstallRule;
    op.sw = SwitchId(0);
    op.rule = FlowRule{FlowId(id), SwitchId(0), SwitchId(3), SwitchId(1), 1};
    return op;
  };
  // One registered OP + five orphans (state a previous master installed).
  Op known = make_op(900);
  exp.nib().put_op(known);
  SwitchRequest req;
  req.type = SwitchRequest::Type::kBatch;
  req.batch.push_back(known);
  for (std::uint32_t id = 901; id <= 905; ++id) {
    req.batch.push_back(make_op(id));
  }
  exp.fabric().send(SwitchId(0), req);
  exp.run_for(millis(100));

  // Histogram bins on [1, 65) with 16 bins are 4 wide: a sample of 1 (the
  // committed count) lands in bin 0; the buggy wire size 6 would land in
  // bin 1.
  Histogram& h =
      o.metrics().histogram("op_batch_size", {{"stage", "commit"}}, 1.0,
                            65.0, 16);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 0u);
  EXPECT_EQ(o.metrics().counter("orphan_acks", {}).value(), 5u);
  // The known OP committed exactly once.
  EXPECT_EQ(exp.nib().op_status(OpId(900)), OpStatus::kDone);
  EXPECT_TRUE(exp.nib().view_installed(SwitchId(0)).count(OpId(900)) > 0);

  // An all-orphan batch-ACK commits nothing and must not touch the
  // histogram.
  SwitchRequest orphans;
  orphans.type = SwitchRequest::Type::kBatch;
  for (std::uint32_t id = 910; id <= 912; ++id) {
    orphans.batch.push_back(make_op(id));
  }
  exp.fabric().send(SwitchId(0), orphans);
  exp.run_for(millis(100));
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(o.metrics().counter("orphan_acks", {}).value(), 8u);
}

TEST(ObsBatchMetrics, SingleOpBatchAckCommitsExactlyOnce) {
  // A size-1 kBatchAck (possible from a direct kBatch send; the sequencer
  // forwards singletons via the classic per-OP path) must commit the OP
  // once — not double-count through both reply paths.
  obs::Observability o(128);
  ExperimentConfig config;
  config.seed = 6;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::figure2_diamond(), config);
  exp.attach_observability(&o);
  exp.start();

  Op op;
  op.id = OpId(950);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(1);
  op.rule = FlowRule{FlowId(950), SwitchId(1), SwitchId(2), SwitchId(2), 1};
  exp.nib().put_op(op);
  SwitchRequest req;
  req.type = SwitchRequest::Type::kBatch;
  req.batch.push_back(op);
  exp.fabric().send(SwitchId(1), req);
  exp.run_for(millis(100));

  EXPECT_EQ(exp.nib().op_status(OpId(950)), OpStatus::kDone);
  Histogram& h =
      o.metrics().histogram("op_batch_size", {{"stage", "commit"}}, 1.0,
                            65.0, 16);
  EXPECT_EQ(h.total(), 1u);  // exactly one commit sample, of size 1
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(o.metrics().counter("orphan_acks", {}).value(), 0u);
}

TEST(ObsPipeline, SpanGraphCoversTheFullOpLifecycle) {
  InstrumentedRun run = run_instrumented(7);

  // Parent integrity: every referenced parent exists and started no later
  // than its child.
  std::map<std::uint64_t, const obs::Span*> by_id;
  for (const obs::Span& span : run.spans) by_id[span.id] = &span;
  std::size_t parented = 0;
  for (const obs::Span& span : run.spans) {
    if (span.parent == obs::SpanTracer::kNoSpan) continue;
    ++parented;
    auto it = by_id.find(span.parent);
    ASSERT_NE(it, by_id.end()) << "dangling parent for span " << span.id;
    EXPECT_LE(it->second->start, span.start);
  }
  EXPECT_GT(parented, 0u);

  // The causal chain: a DAG lifecycle span; OP lifecycle spans parented to
  // it; send/ack/commit stages parented to the OPs; every OP span closed
  // with outcome=done after convergence.
  const obs::Span* dag_span = nullptr;
  std::size_t op_spans = 0, closed_done = 0;
  std::map<std::string, std::size_t> stages;
  for (const obs::Span& span : run.spans) {
    if (span.track == "dag" && span.async) dag_span = &span;
    if (span.track != "op") continue;
    ++op_spans;
    EXPECT_TRUE(span.async);
    ASSERT_NE(dag_span, nullptr);
    EXPECT_EQ(span.parent, dag_span->id);
    EXPECT_NE(span.end, kSimTimeNever) << span.name << " never closed";
    if (span.args.find("outcome=done") != std::string::npos) ++closed_done;
    for (const obs::Span& stage : run.spans) {
      if (stage.instant && stage.parent == span.id) ++stages[stage.name];
    }
  }
  EXPECT_EQ(op_spans, 4u);  // one per pair-path switch on the diamond
  EXPECT_EQ(closed_done, op_spans);
  EXPECT_EQ(stages["op-send"], op_spans);
  EXPECT_EQ(stages["op-ack"], op_spans);

  // Exporter output is strictly valid JSON.
  std::string error;
  EXPECT_TRUE(obs::json_valid(run.chrome_json, &error)) << error;
  EXPECT_NE(run.chrome_json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"ph\":\"b\""), std::string::npos);
}

TEST(ObsPipeline, IdenticalSeedsYieldByteIdenticalArtifacts) {
  InstrumentedRun a = run_instrumented(11);
  InstrumentedRun b = run_instrumented(11);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.metrics_fingerprint, b.metrics_fingerprint);
  EXPECT_EQ(a.chrome_json, b.chrome_json);    // byte-identical trace
  EXPECT_EQ(a.metrics_text, b.metrics_text);  // byte-identical snapshot
  InstrumentedRun c = run_instrumented(12);
  EXPECT_NE(a.trace_fingerprint, c.trace_fingerprint);
}

// ---- chaos-campaign contracts ----------------------------------------------

chaos::CampaignConfig small_campaign(std::uint64_t seed) {
  chaos::CampaignConfig config;
  config.topology = chaos::TopologyKind::kDiamond;
  config.seed = seed;
  config.schedule.horizon = seconds(4);
  config.schedule.fault_count = 8;
  config.initial_flows = 2;
  config.update_period = millis(40);
  return config;
}

TEST(ObsCampaign, FingerprintsAreSeedDeterministic) {
  chaos::CampaignConfig config = small_campaign(5);
  chaos::CampaignResult a = chaos::ChaosCampaign(config).run();
  chaos::CampaignResult b = chaos::ChaosCampaign(config).run();
  EXPECT_NE(a.trace_fingerprint, 0u);
  EXPECT_NE(a.metrics_fingerprint, 0u);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.metrics_fingerprint, b.metrics_fingerprint);
  EXPECT_EQ(a.verdict_digest(), b.verdict_digest());
  EXPECT_TRUE(a.ok) << a.summary();
  EXPECT_TRUE(a.flight_recorder_dump.empty());
}

TEST(ObsCampaign, ViolationAttachesFlightRecorderToShrunkReproducer) {
  // The §G ordering bug (mark UP before the deferred OP reset): seed 1 on
  // the diamond trips the hidden-entry oracle (same configuration the
  // chaos-coverage bench demos).
  chaos::CampaignConfig config = small_campaign(1);
  config.schedule.horizon = seconds(6);
  config.schedule.fault_count = 14;
  config.initial_flows = 2;
  config.update_period = millis(30);
  config.core.bugs.mark_up_before_reset = true;
  chaos::ChaosCampaign campaign(config);
  chaos::CampaignResult result = campaign.run();
  ASSERT_FALSE(result.ok);
  ASSERT_FALSE(result.flight_recorder_dump.empty());
  // The dump's last line is the oracle detection itself.
  EXPECT_NE(result.flight_recorder_dump.find("[oracle] violation"),
            std::string::npos);
  EXPECT_NE(result.flight_recorder_dump.find("hidden entry"),
            std::string::npos);

  chaos::ShrinkResult shrunk =
      chaos::shrink_schedule(config, campaign.schedule());
  EXPECT_LT(shrunk.minimal.size(), shrunk.original_events);
  ASSERT_FALSE(shrunk.minimal_result.ok);
  EXPECT_FALSE(shrunk.minimal_result.flight_recorder_dump.empty())
      << "shrunk reproducer must carry the flight-recorder dump";
}

}  // namespace
}  // namespace zenith
