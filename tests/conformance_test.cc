// NADIR conformance (§5): the generated runtime must match the verified
// specification. We drive the same scenario through (a) the interpreted
// core spec (mc/core_spec) and (b) the hand-written simulator controller,
// and compare the externally observable outcome: which OPs end up
// installed, and which DAGs are certified.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "apps/drain_app.h"
#include "apps/drain_spec.h"
#include "golden_scenarios.h"
#include "harness/experiment.h"
#include "mc/core_spec.h"
#include "mc_golden_cells.h"
#include "nadir/interpreter.h"
#include "topo/generators.h"

namespace zenith {
namespace {

TEST(Conformance, DrainSpecComposedWithCoreMatchesSimulatedController) {
  // (a) Spec side: drain app + interpreted core pipeline to quiescence.
  apps::DrainSpecScenario scenario;  // diamond, drain sw1, flow 0-1-3
  nadir::Spec composed = mc::compose_app_with_core(
      apps::build_drain_spec(scenario), mc::CoreSpecScenario{});
  auto env = composed.make_initial_env();
  ASSERT_TRUE(env.ok());
  nadir::Interpreter::run_to_quiescence(composed, env.value());
  ASSERT_TRUE(composed.check_types(env.value()).ok());

  // Spec outcome: set of (sw, nh) pairs installed after the drain.
  std::set<std::pair<int, int>> spec_rules;
  for (const nadir::Value& op :
       env.value().globals.at("SwTable").as_set()) {
    spec_rules.emplace(static_cast<int>(op.field("sw").as_int()),
                       static_cast<int>(op.field("nh").as_int()));
  }
  EXPECT_EQ(env.value().globals.at("InstalledDags").size(), 1u);

  // (b) Runtime side: the same drain through the simulated controller.
  ExperimentConfig config;
  config.seed = 5;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  CompiledPath initial_path = compile_single_path(
      {SwitchId(0), SwitchId(1), SwitchId(3)}, FlowId(1), 1, exp.op_ids());
  Dag initial(DagId(1));
  for (const Op& op : initial_path.ops) ASSERT_TRUE(initial.add_op(op).ok());
  for (auto [a, b] : initial_path.edges) {
    ASSERT_TRUE(initial.add_edge(a, b).ok());
  }
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  apps::DrainRequest request;
  request.topology = gen::figure2_diamond();
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(3)}};
  request.flows = {FlowId(1)};
  request.ops = initial_path.ops;
  request.node_to_drain = SwitchId(1);
  auto result = apps::compute_drain_dag(request, DagId(2), exp.op_ids());
  ASSERT_TRUE(result.ok());
  Dag drain_dag = result.value().dag;
  ASSERT_TRUE(
      exp.install_and_wait(std::move(drain_dag), seconds(10)).has_value());

  std::set<std::pair<int, int>> runtime_rules;
  for (SwitchId sw : exp.nib().switches()) {
    for (const auto& entry : exp.fabric().at(sw).table()) {
      runtime_rules.emplace(static_cast<int>(sw.value()),
                            static_cast<int>(entry.rule.next_hop.value()));
    }
  }

  // Conformance: identical final forwarding state (A->C, C->D).
  EXPECT_EQ(spec_rules, runtime_rules);
  EXPECT_EQ(spec_rules,
            (std::set<std::pair<int, int>>{{0, 2}, {2, 3}}));
}

TEST(Conformance, CoreSpecCertifiesExactlyWhatItInstalled) {
  // Property over the interpreted core: at quiescence, certified DAG ids
  // equal consumed DAG ids, and every non-deletion OP of a certified DAG is
  // in SwTable (matching the simulator's Sequencer certification rule).
  apps::DrainSpecScenario scenario;
  nadir::Spec composed = mc::compose_app_with_core(
      apps::build_drain_spec(scenario), mc::CoreSpecScenario{});
  auto env = composed.make_initial_env();
  ASSERT_TRUE(env.ok());
  nadir::Interpreter::run_to_quiescence(composed, env.value());
  const nadir::Value& certified = env.value().globals.at("InstalledDags");
  ASSERT_EQ(certified.size(), 1u);
  const nadir::Value& table = env.value().globals.at("SwTable");
  const nadir::Value& installed_ids = env.value().globals.at("InstalledIds");
  for (const nadir::Value& op : table.as_set()) {
    EXPECT_TRUE(installed_ids.set_contains(op.field("op")))
        << "installed entry not acknowledged in the NIB view";
  }
}

// Parses the flat {"name": "0x<hex>", ...} format FINGERPRINTS.json uses.
std::map<std::string, std::uint64_t> load_golden_fingerprints(
    const std::string& path) {
  std::map<std::string, std::uint64_t> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t k0 = line.find('"');
    if (k0 == std::string::npos) continue;
    std::size_t k1 = line.find('"', k0 + 1);
    std::size_t v0 = line.find("\"0x", k1 + 1);
    if (k1 == std::string::npos || v0 == std::string::npos) continue;
    std::size_t v1 = line.find('"', v0 + 1);
    if (v1 == std::string::npos) continue;
    std::string key = line.substr(k0 + 1, k1 - k0 - 1);
    std::string hex = line.substr(v0 + 3, v1 - v0 - 3);
    out[key] = std::strtoull(hex.c_str(), nullptr, 16);
  }
  return out;
}

TEST(Conformance, GoldenFingerprintCorpusMatchesLiveRuns) {
  // The regression corpus: every curated deterministic run (failure-free
  // soak cells at bs=1 and bs=16, the 12-cell chaos grid at bs=1) must
  // reproduce the committed fingerprints bit for bit. A diff here means a
  // semantic or determinism change in the pipeline: if it is intended,
  // regenerate with scripts/update_golden.sh and review the delta like any
  // other behaviour change; if not, it is a regression.
  std::string path = std::string(ZENITH_SOURCE_DIR) +
                     "/tests/golden/FINGERPRINTS.json";
  std::map<std::string, std::uint64_t> golden = load_golden_fingerprints(path);
  ASSERT_FALSE(golden.empty()) << "missing or unparseable " << path;

  std::map<std::string, std::uint64_t> live = golden::compute_fingerprints();
  for (const auto& [name, value] : live) {
    auto it = golden.find(name);
    if (it == golden.end()) {
      ADD_FAILURE() << "scenario '" << name
                    << "' has no committed golden entry; run "
                       "scripts/update_golden.sh";
      continue;
    }
    EXPECT_EQ(it->second, value)
        << "fingerprint drift in '" << name
        << "' (committed vs live); intended changes need "
           "scripts/update_golden.sh";
  }
  for (const auto& [name, value] : golden) {
    (void)value;
    EXPECT_TRUE(live.count(name))
        << "stale golden entry '" << name
        << "' no longer produced; run scripts/update_golden.sh";
  }
}

// Parses the flat {"name": "text", ...} format MC_CELLS.json uses (string
// values, unlike the hex fingerprints above).
std::map<std::string, std::string> load_golden_strings(
    const std::string& path) {
  std::map<std::string, std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t k0 = line.find('"');
    if (k0 == std::string::npos) continue;
    std::size_t k1 = line.find('"', k0 + 1);
    if (k1 == std::string::npos) continue;
    std::size_t v0 = line.find('"', k1 + 1);
    if (v0 == std::string::npos) continue;
    std::size_t v1 = line.find('"', v0 + 1);
    if (v1 == std::string::npos) continue;
    out[line.substr(k0 + 1, k1 - k0 - 1)] =
        line.substr(v0 + 1, v1 - v0 - 1);
  }
  return out;
}

TEST(Conformance, GoldenMcCellsMatchLiveRunsAtEveryThreadCount) {
  // The model-checking regression corpus (PR 9): exact state counts,
  // transition counts and diameters for the small golden instances. Run
  // twice — serial and with a work-stealing worker pool — because the
  // engine's determinism contract says clean runs are thread-count
  // invariant; a diff at threads=1 is state-space semantic drift, a diff
  // only at threads=3 is a parallel-engine bug.
  std::string path =
      std::string(ZENITH_SOURCE_DIR) + "/tests/golden/MC_CELLS.json";
  std::map<std::string, std::string> golden = load_golden_strings(path);
  ASSERT_FALSE(golden.empty()) << "missing or unparseable " << path;

  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    std::map<std::string, std::string> live =
        golden::compute_mc_cells(threads);
    for (const auto& [name, value] : live) {
      auto it = golden.find(name);
      if (it == golden.end()) {
        ADD_FAILURE() << "cell '" << name
                      << "' has no committed golden entry; run "
                         "scripts/update_golden.sh";
        continue;
      }
      EXPECT_EQ(it->second, value)
          << "MC statistics drift in '" << name << "' at threads=" << threads
          << " (committed vs live); intended model changes need "
             "scripts/update_golden.sh";
    }
    for (const auto& [name, value] : golden) {
      (void)value;
      EXPECT_TRUE(live.count(name))
          << "stale golden entry '" << name
          << "' no longer produced; run scripts/update_golden.sh";
    }
  }
}

}  // namespace
}  // namespace zenith
