// NADIR conformance (§5): the generated runtime must match the verified
// specification. We drive the same scenario through (a) the interpreted
// core spec (mc/core_spec) and (b) the hand-written simulator controller,
// and compare the externally observable outcome: which OPs end up
// installed, and which DAGs are certified.
#include <gtest/gtest.h>

#include "apps/drain_app.h"
#include "apps/drain_spec.h"
#include "harness/experiment.h"
#include "mc/core_spec.h"
#include "nadir/interpreter.h"
#include "topo/generators.h"

namespace zenith {
namespace {

TEST(Conformance, DrainSpecComposedWithCoreMatchesSimulatedController) {
  // (a) Spec side: drain app + interpreted core pipeline to quiescence.
  apps::DrainSpecScenario scenario;  // diamond, drain sw1, flow 0-1-3
  nadir::Spec composed = mc::compose_app_with_core(
      apps::build_drain_spec(scenario), mc::CoreSpecScenario{});
  auto env = composed.make_initial_env();
  ASSERT_TRUE(env.ok());
  nadir::Interpreter::run_to_quiescence(composed, env.value());
  ASSERT_TRUE(composed.check_types(env.value()).ok());

  // Spec outcome: set of (sw, nh) pairs installed after the drain.
  std::set<std::pair<int, int>> spec_rules;
  for (const nadir::Value& op :
       env.value().globals.at("SwTable").as_set()) {
    spec_rules.emplace(static_cast<int>(op.field("sw").as_int()),
                       static_cast<int>(op.field("nh").as_int()));
  }
  EXPECT_EQ(env.value().globals.at("InstalledDags").size(), 1u);

  // (b) Runtime side: the same drain through the simulated controller.
  ExperimentConfig config;
  config.seed = 5;
  config.kind = ControllerKind::kZenithNR;
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  CompiledPath initial_path = compile_single_path(
      {SwitchId(0), SwitchId(1), SwitchId(3)}, FlowId(1), 1, exp.op_ids());
  Dag initial(DagId(1));
  for (const Op& op : initial_path.ops) ASSERT_TRUE(initial.add_op(op).ok());
  for (auto [a, b] : initial_path.edges) {
    ASSERT_TRUE(initial.add_edge(a, b).ok());
  }
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(10)).has_value());

  apps::DrainRequest request;
  request.topology = gen::figure2_diamond();
  request.paths = {{SwitchId(0), SwitchId(1), SwitchId(3)}};
  request.flows = {FlowId(1)};
  request.ops = initial_path.ops;
  request.node_to_drain = SwitchId(1);
  auto result = apps::compute_drain_dag(request, DagId(2), exp.op_ids());
  ASSERT_TRUE(result.ok());
  Dag drain_dag = result.value().dag;
  ASSERT_TRUE(
      exp.install_and_wait(std::move(drain_dag), seconds(10)).has_value());

  std::set<std::pair<int, int>> runtime_rules;
  for (SwitchId sw : exp.nib().switches()) {
    for (const auto& entry : exp.fabric().at(sw).table()) {
      runtime_rules.emplace(static_cast<int>(sw.value()),
                            static_cast<int>(entry.rule.next_hop.value()));
    }
  }

  // Conformance: identical final forwarding state (A->C, C->D).
  EXPECT_EQ(spec_rules, runtime_rules);
  EXPECT_EQ(spec_rules,
            (std::set<std::pair<int, int>>{{0, 2}, {2, 3}}));
}

TEST(Conformance, CoreSpecCertifiesExactlyWhatItInstalled) {
  // Property over the interpreted core: at quiescence, certified DAG ids
  // equal consumed DAG ids, and every non-deletion OP of a certified DAG is
  // in SwTable (matching the simulator's Sequencer certification rule).
  apps::DrainSpecScenario scenario;
  nadir::Spec composed = mc::compose_app_with_core(
      apps::build_drain_spec(scenario), mc::CoreSpecScenario{});
  auto env = composed.make_initial_env();
  ASSERT_TRUE(env.ok());
  nadir::Interpreter::run_to_quiescence(composed, env.value());
  const nadir::Value& certified = env.value().globals.at("InstalledDags");
  ASSERT_EQ(certified.size(), 1u);
  const nadir::Value& table = env.value().globals.at("SwTable");
  const nadir::Value& installed_ids = env.value().globals.at("InstalledIds");
  for (const nadir::Value& op : table.as_set()) {
    EXPECT_TRUE(installed_ids.set_contains(op.field("op")))
        << "installed entry not acknowledged in the NIB view";
  }
}

}  // namespace
}  // namespace zenith
