// Soak-tier smoke: the SoakWorkload driver itself, kept cheap enough for
// tier-1 (a few thousand OPs on a small fat-tree) and scalable to a real
// soak via ZENITH_SOAK_OPS — scripts/ci.sh's stress stage runs it with a
// six-figure OP budget (`ctest -L stress`). The million-OP headline run
// lives in bench_soak; this test pins the driver's contract: every round
// converges, the invariant monitors stay quiet, and equal seeds at equal
// batch size reproduce the same NIB fingerprint.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/soak.h"
#include "topo/generators.h"

namespace zenith {
namespace {

std::size_t soak_ops_budget() {
  const char* env = std::getenv("ZENITH_SOAK_OPS");
  if (env != nullptr && *env != '\0') {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 4000;  // a handful of rounds; tier-1 stays flat
}

SoakResult run_soak(std::size_t batch_size, std::uint64_t seed,
                    bool chaos = true) {
  ExperimentConfig config;
  config.seed = 11 + seed;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = batch_size;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;

  std::size_t k = 4;
  Experiment exp(gen::fat_tree(k), config);
  exp.start();

  SoakConfig soak_config;
  soak_config.seed = seed;
  soak_config.groups = 4;
  soak_config.flows_per_group = 8;
  soak_config.target_ops = soak_ops_budget();
  soak_config.chaos = chaos;
  soak_config.deep_check_every = 8;
  gen::FatTreeIndex index = gen::fat_tree_index(k);
  for (std::size_t i = index.edge_begin; i < index.edge_end; ++i) {
    soak_config.endpoints.push_back(SwitchId(static_cast<std::uint32_t>(i)));
  }

  SoakWorkload workload(&exp, soak_config);
  return workload.run();
}

TEST(Soak, BatchedRunConvergesCleanly) {
  SoakResult result = run_soak(/*batch_size=*/16, /*seed=*/5);
  EXPECT_GE(result.ops_completed, soak_ops_budget());
  EXPECT_EQ(result.timeouts, 0u);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_TRUE(result.order_ok);
  EXPECT_GT(result.rounds, 1u);
}

TEST(Soak, SingletonRunConvergesCleanly) {
  SoakResult result = run_soak(/*batch_size=*/1, /*seed=*/5);
  EXPECT_GE(result.ops_completed, soak_ops_budget());
  EXPECT_EQ(result.timeouts, 0u);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_TRUE(result.order_ok);
}

TEST(Soak, EqualSeedsReproduceNibFingerprint) {
  SoakResult a = run_soak(/*batch_size=*/16, /*seed=*/9);
  SoakResult b = run_soak(/*batch_size=*/16, /*seed=*/9);
  ASSERT_EQ(a.invariant_violations, 0u);
  EXPECT_EQ(a.nib_fingerprint, b.nib_fingerprint);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.switch_blips, b.switch_blips);
  EXPECT_EQ(a.component_crashes, b.component_crashes);
}

// The batch-size determinism contract (see CoreConfig::batch_size): for
// failure-free runs over the same seed, the final NIB state is fingerprint-
// identical across batch sizes — batching may only change timing, never
// outcomes. Chaos stays off here because component-crash timing is
// schedule-dependent across batch sizes (contract scope).
TEST(Soak, BatchSizeDoesNotChangeFinalNibState) {
  SoakResult bs1 = run_soak(/*batch_size=*/1, /*seed=*/13, /*chaos=*/false);
  SoakResult bs16 = run_soak(/*batch_size=*/16, /*seed=*/13, /*chaos=*/false);
  ASSERT_EQ(bs1.invariant_violations, 0u);
  ASSERT_EQ(bs16.invariant_violations, 0u);
  EXPECT_EQ(bs1.ops_completed, bs16.ops_completed);
  EXPECT_EQ(bs1.nib_fingerprint, bs16.nib_fingerprint);
}

}  // namespace
}  // namespace zenith
