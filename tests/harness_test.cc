// Harness tests: workload generation, failure schedules, the experiment
// runner, and the reconciliation contention model's calibration knobs.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

ExperimentConfig zenith_config(std::uint64_t seed = 3) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kZenithNR;
  return config;
}

TEST(WorkloadTest, InitialDagCoversRequestedFlows) {
  Experiment exp(gen::kdl_like(30, 2), zenith_config());
  exp.start();
  Workload workload(&exp, 5);
  Dag dag = workload.initial_dag(10);
  EXPECT_EQ(workload.flow_count(), 10u);
  EXPECT_GT(dag.size(), 0u);
  EXPECT_TRUE(dag.topological_order().ok());
  // Every flow got install ops.
  std::unordered_set<std::uint32_t> flows;
  for (const Op* op : dag.all_ops()) {
    if (op->type == OpType::kInstallRule) flows.insert(op->rule.flow.value());
  }
  EXPECT_EQ(flows.size(), 10u);
}

TEST(WorkloadTest, NextUpdateDagAlwaysAvailableOnChainHeavyGraphs) {
  // KDL-like graphs are chain heavy: reroutes often do not exist, but the
  // update stream must keep flowing (Figure 11's 5-minute loop).
  Experiment exp(gen::kdl_like(120, 7), zenith_config(9));
  exp.start();
  Workload workload(&exp, 11);
  (void)workload.initial_dag(10);
  int produced = 0;
  for (int i = 0; i < 200; ++i) {
    auto dag = workload.next_update_dag();
    if (dag.has_value()) ++produced;
  }
  EXPECT_GE(produced, 195) << "the update stream stalled";
}

TEST(WorkloadTest, UpdateDagsTouchFewSwitches) {
  Experiment exp(gen::kdl_like(200, 7), zenith_config(13));
  exp.start();
  Workload workload(&exp, 17);
  (void)workload.initial_dag(10);
  for (int i = 0; i < 50; ++i) {
    auto dag = workload.next_update_dag(/*max_hops=*/5);
    ASSERT_TRUE(dag.has_value());
    // "Each DAG only updates a portion of the topology (i.e., 5 switches)":
    // installs touch at most max_hops switches (deletions may touch the
    // outgoing path's too).
    std::unordered_set<SwitchId> installs_on;
    for (const Op* op : dag->all_ops()) {
      if (op->type == OpType::kInstallRule) installs_on.insert(op->sw);
    }
    EXPECT_LE(installs_on.size(), 5u);
  }
}

TEST(WorkloadTest, RepairDagAvoidsDeadSwitchesEntirely) {
  Experiment exp(gen::b4(), zenith_config(19));
  exp.start();
  Workload workload(&exp, 23);
  (void)workload.initial_dag_for_pairs(
      {{SwitchId(0), SwitchId(8)}, {SwitchId(1), SwitchId(11)}});
  auto repair = workload.repair_dag({SwitchId(4)});
  if (repair.has_value()) {
    for (const Op* op : repair->all_ops()) {
      EXPECT_NE(op->sw, SwitchId(4)) << to_string(*op);
      if (op->type == OpType::kInstallRule) {
        EXPECT_NE(op->rule.next_hop, SwitchId(4));
      }
    }
  }
}

TEST(PreloadTest, BackgroundEntriesAreConsistentState) {
  Experiment exp(gen::linear(5), zenith_config(29));
  exp.start();
  preload_background_entries(exp, 100);
  for (SwitchId sw : exp.nib().switches()) {
    EXPECT_EQ(exp.fabric().at(sw).table_size(), 100u);
    EXPECT_EQ(exp.nib().view_installed(sw).size(), 100u);
  }
  // Consistent: the checker agrees.
  EXPECT_TRUE(exp.checker().check(std::nullopt).view_consistent);
  // And they do not disturb convergence of real DAGs.
  Workload workload(&exp, 31);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(4)}});
  EXPECT_TRUE(exp.install_and_wait(std::move(dag), seconds(10)).has_value());
}

TEST(FailureScheduleTest, RespectsConcurrencyCap) {
  Experiment exp(gen::kdl_like(50, 3), zenith_config(37));
  exp.start();
  FailurePlanConfig plan;
  plan.mean_gap = millis(200);
  plan.down_time = seconds(2);
  plan.max_concurrent = 1;
  plan.horizon = seconds(30);
  auto injected = schedule_switch_failures(exp, plan, 41);
  ASSERT_GT(injected.size(), 2u);
  // With down_time 2s and cap 1, admitted failures are >= 2s apart.
  for (std::size_t i = 1; i < injected.size(); ++i) {
    EXPECT_GE(injected[i].first - injected[i - 1].first, plan.down_time);
  }
}

TEST(FailureScheduleTest, InjectionsActuallyHappen) {
  Experiment exp(gen::kdl_like(20, 3), zenith_config(43));
  exp.start();
  FailurePlanConfig plan;
  plan.mean_gap = seconds(1);
  plan.down_time = millis(500);
  plan.horizon = seconds(10);
  auto injected = schedule_switch_failures(exp, plan, 47);
  ASSERT_GT(injected.size(), 0u);
  auto [when, sw] = injected.front();
  exp.run_until([&] { return !exp.fabric().alive(sw); }, seconds(15));
  EXPECT_FALSE(exp.fabric().alive(sw));
  // And it recovers.
  auto recovered = exp.run_until(
      [&] { return exp.fabric().alive(sw); }, seconds(15));
  EXPECT_TRUE(recovered.has_value());
}

TEST(ComponentScheduleTest, CrashesAreDeliveredAndWatchdogRecovers) {
  Experiment exp(gen::linear(4), zenith_config(53));
  exp.start();
  auto plan = schedule_component_failures(exp, seconds(1), seconds(5), 59);
  ASSERT_GT(plan.size(), 0u);
  exp.run_for(seconds(10));
  // Watchdog restarted everything.
  for (Component* c : exp.controller().components()) {
    EXPECT_TRUE(c->alive()) << c->name();
  }
  std::uint64_t crashes = 0;
  for (Component* c : exp.controller().components()) {
    crashes += c->crash_count();
  }
  EXPECT_GE(crashes, plan.size());
}

TEST(ExperimentTest, RunUntilTimesOutCleanly) {
  Experiment exp(gen::linear(3), zenith_config(61));
  exp.start();
  auto never = exp.run_until([] { return false; }, millis(50));
  EXPECT_FALSE(never.has_value());
  auto instant = exp.run_until([] { return true; }, millis(50));
  ASSERT_TRUE(instant.has_value());
  EXPECT_EQ(*instant, 0);
}

TEST(ExperimentTest, ScopedAndFullConvergenceAgreeOnSmallRuns) {
  ExperimentConfig config = zenith_config(67);
  Experiment exp(gen::b4(), config);
  exp.start();
  Workload workload(&exp, 71);
  Dag dag = workload.initial_dag(5);
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(20)).has_value());
  EXPECT_TRUE(exp.checker().converged(id));
  EXPECT_TRUE(exp.checker().converged_scoped(id));
}

TEST(ReconcilerModel, SaturationGrowsBacklogButNotDeadlock) {
  // At a size where cycle work exceeds the period, PR's updates still make
  // (slow) progress through the courtesy gaps — the graceful-degradation
  // regime documented in DESIGN.md §4b.
  ExperimentConfig config;
  config.seed = 73;
  config.kind = ControllerKind::kPr;
  config.reconciliation_period = seconds(2);
  config.scoped_convergence = true;
  config.poll_interval = millis(5);
  Experiment exp(gen::kdl_like(60, 3), config);
  exp.start();
  preload_background_entries(exp, 3000);  // 60 x 3000 x 16us = 2.9s > 2s
  Workload workload(&exp, 79);
  Dag dag = workload.initial_dag(5);
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(60)).has_value());
  exp.run_for(seconds(10));  // several saturated cycles
  auto update = workload.next_update_dag();
  ASSERT_TRUE(update.has_value());
  auto latency = exp.install_and_wait(std::move(*update), seconds(60));
  ASSERT_TRUE(latency.has_value()) << "saturated PR must still progress";
  EXPECT_GT(*latency, millis(1));
}

}  // namespace
}  // namespace zenith
