// Regenerates tests/golden/WIRE_FRAMES.json: the committed hex bytes of the
// canonical wire-frame corpus (see wire_frames_corpus.h). Not a test —
// scripts/update_golden.sh runs this and net_codec_test compares against the
// committed output byte for byte.
#include <cstdio>

#include "wire_frames_corpus.h"

int main() {
  auto corpus = zenith::golden::wire_frame_corpus();
  std::printf("{\n");
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    std::printf("  \"%s\": \"%s\"%s\n", corpus[i].first.c_str(),
                zenith::golden::to_hex(corpus[i].second).c_str(),
                i + 1 < corpus.size() ? "," : "");
  }
  std::printf("}\n");
  return 0;
}
