// Component-level unit tests of ZENITH-core internals, observing the NIB
// event stream for the exact orderings the verified spec mandates.
#include <gtest/gtest.h>

#include "dag/compiler.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

ExperimentConfig zenith_config(std::uint64_t seed = 7) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kZenithNR;
  return config;
}

// P2: the Sequencer never schedules an OP before its predecessor is DONE —
// observed on the event stream, not just the end state.
TEST(SequencerOrdering, NeverSchedulesBeforePredecessorDone) {
  Experiment exp(gen::linear(6), zenith_config());
  exp.start();

  // A 5-op chain across 5 switches.
  CompiledPath chain = compile_single_path(
      {SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(3), SwitchId(4),
       SwitchId(5)},
      FlowId(1), 1, exp.op_ids());
  Dag dag(DagId(1));
  for (const Op& op : chain.ops) ASSERT_TRUE(dag.add_op(op).ok());
  for (auto [a, b] : chain.edges) ASSERT_TRUE(dag.add_edge(a, b).ok());
  Dag copy = dag;

  // Watch every OP status transition.
  struct Event {
    OpId op;
    OpStatus status;
  };
  std::vector<Event> log;
  NadirFifo<NibEvent> probe;
  probe.set_wake_callback([&] {
    while (!probe.empty()) {
      NibEvent event = probe.pop();
      if (event.type == NibEvent::Type::kOpStatusChanged) {
        log.push_back({event.op, event.op_status});
      }
    }
  });
  exp.nib().subscribe(&probe);

  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(10)).has_value());

  auto first_index_of = [&](OpId op, OpStatus status) -> std::size_t {
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].op == op && log[i].status == status) return i;
    }
    return log.size();
  };
  for (auto [before, after] : copy.edges()) {
    std::size_t done_before = first_index_of(before, OpStatus::kDone);
    std::size_t scheduled_after = first_index_of(after, OpStatus::kScheduled);
    ASSERT_LT(done_before, log.size());
    ASSERT_LT(scheduled_after, log.size());
    EXPECT_LT(done_before, scheduled_after)
        << "op" << after.value() << " scheduled before op" << before.value()
        << " was DONE";
  }
}

// P3 (record-before-act): every OP's SENT write precedes its DONE (the ACK
// cannot arrive before the NIB knew about the send).
TEST(WorkerOrdering, SentAlwaysPrecedesDone) {
  Experiment exp(gen::kdl_like(20, 3), zenith_config(9));
  exp.start();
  std::vector<std::pair<OpId, OpStatus>> log;
  NadirFifo<NibEvent> probe;
  probe.set_wake_callback([&] {
    while (!probe.empty()) {
      NibEvent event = probe.pop();
      if (event.type == NibEvent::Type::kOpStatusChanged) {
        log.emplace_back(event.op, event.op_status);
      }
    }
  });
  exp.nib().subscribe(&probe);
  Workload workload(&exp, 11);
  Dag dag = workload.initial_dag(8);
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(30)).has_value());

  std::unordered_map<OpId, bool> sent_seen;
  for (auto [op, status] : log) {
    if (status == OpStatus::kSent) sent_seen[op] = true;
    if (status == OpStatus::kDone) {
      EXPECT_TRUE(sent_seen[op])
          << "op" << op.value() << " DONE before SENT was recorded";
    }
  }
}

// P8(2) / §G fix: on recovery, every affected OP's reset (DONE -> NONE)
// happens before the switch-up event.
TEST(TopoHandlerOrdering, ResetsOpsBeforeMarkingUp) {
  Experiment exp(gen::figure2_diamond(), zenith_config(13));
  exp.start();
  Workload workload(&exp, 17);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(10)).has_value());

  struct Entry {
    bool is_health;
    SwitchId sw;
    bool up;
    OpId op;
    OpStatus status;
  };
  std::vector<Entry> log;
  NadirFifo<NibEvent> probe;
  probe.set_wake_callback([&] {
    while (!probe.empty()) {
      NibEvent event = probe.pop();
      if (event.type == NibEvent::Type::kSwitchHealthChanged) {
        log.push_back({true, event.sw, event.sw_up, OpId(), OpStatus::kNone});
      } else if (event.type == NibEvent::Type::kOpStatusChanged) {
        log.push_back({false, event.sw, false, event.op, event.op_status});
      }
    }
  });
  exp.nib().subscribe(&probe);

  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
  exp.run_for(millis(300));
  exp.fabric().inject_recovery(SwitchId(1));
  ASSERT_TRUE(exp.run_until([&] { return exp.checker().converged(id); },
                            seconds(30))
                  .has_value());

  // Find the up-transition of sw1 and assert no reset (-> NONE) of a sw1 OP
  // occurs after it until the re-installs start (resets come first).
  std::size_t up_index = log.size();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].is_health && log[i].sw == SwitchId(1) && log[i].up) {
      up_index = i;  // the recovery-up (last up transition)
    }
  }
  ASSERT_LT(up_index, log.size());
  bool saw_reset_before_up = false;
  for (std::size_t i = 0; i < up_index; ++i) {
    if (!log[i].is_health && log[i].sw == SwitchId(1) &&
        log[i].status == OpStatus::kNone) {
      saw_reset_before_up = true;
    }
  }
  EXPECT_TRUE(saw_reset_before_up)
      << "no OP reset observed before the switch was marked UP";
  for (std::size_t i = up_index + 1; i < log.size(); ++i) {
    if (!log[i].is_health && log[i].sw == SwitchId(1)) {
      // After UP, the first sw1 transitions must be re-scheduling, never a
      // reset of a DONE op (that would be the §G bug).
      EXPECT_NE(log[i].status, OpStatus::kNone)
          << "OP reset leaked past the UP transition";
      break;
    }
  }
}

// P6: the recovery CLEAR_TCAM traverses the Worker Pool — observable as the
// cleanup OP appearing with SCHEDULED then SENT status like any other OP.
TEST(TopoHandlerOrdering, ClearTcamGoesThroughWorkerPool) {
  Experiment exp(gen::linear(3), zenith_config(19));
  exp.start();
  std::vector<std::pair<OpId, OpStatus>> log;
  NadirFifo<NibEvent> probe;
  probe.set_wake_callback([&] {
    while (!probe.empty()) {
      NibEvent event = probe.pop();
      if (event.type == NibEvent::Type::kOpStatusChanged) {
        log.emplace_back(event.op, event.op_status);
      }
    }
  });
  exp.nib().subscribe(&probe);
  exp.fabric().inject_failure(SwitchId(1), FailureMode::kCompleteTransient);
  exp.run_for(millis(200));
  exp.fabric().inject_recovery(SwitchId(1));
  auto settled = exp.run_until(
      [&] { return exp.nib().switch_health(SwitchId(1)) == SwitchHealth::kUp; },
      seconds(10));
  ASSERT_TRUE(settled.has_value());

  // Exactly one cleanup OP went SCHEDULED -> SENT -> DONE.
  bool scheduled = false, sent = false, done = false;
  for (auto [op, status] : log) {
    if (!exp.nib().has_op(op)) continue;
    if (exp.nib().op(op).type != OpType::kClearTcam) continue;
    scheduled |= status == OpStatus::kScheduled;
    sent |= status == OpStatus::kSent && scheduled;
    done |= status == OpStatus::kDone && sent;
  }
  EXPECT_TRUE(scheduled && sent && done)
      << "CLEAR_TCAM did not traverse the normal OP pipeline";
}

// DAG transitions: the scheduler's stale sweep covers exactly the replaced
// flow's live OPs and leaves other flows untouched.
TEST(DagSchedulerSweep, SweepsOnlyTouchedFlows) {
  Experiment exp(gen::b4(), zenith_config(23));
  exp.start();
  Workload workload(&exp, 29);
  Dag initial = workload.initial_dag_for_pairs(
      {{SwitchId(0), SwitchId(8)}, {SwitchId(1), SwitchId(11)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(20)).has_value());
  std::size_t flow2_rules = 0;
  for (SwitchId sw : exp.nib().switches()) {
    for (const auto& entry : exp.fabric().at(sw).table()) {
      if (entry.rule.flow == FlowId(2)) ++flow2_rules;
    }
  }
  ASSERT_GT(flow2_rules, 0u);

  // Replace flow 1's route repeatedly; flow 2's rules must survive intact.
  for (int i = 0; i < 3; ++i) {
    auto update = workload.next_update_dag();
    ASSERT_TRUE(update.has_value());
    // next_update_dag may pick either flow; run regardless — the invariant
    // is that untouched flows keep their state.
    ASSERT_TRUE(
        exp.install_and_wait(std::move(*update), seconds(20)).has_value());
  }
  // Every flow the workload still intends is fully installed.
  for (const Op& op : workload.all_flow_ops()) {
    EXPECT_TRUE(exp.fabric().at(op.sw).has_entry(op.id))
        << "intent op" << op.id.value() << " missing after unrelated updates";
  }
}

}  // namespace
}  // namespace zenith
