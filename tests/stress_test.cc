// Randomized soak test: sustained DAG churn under concurrent switch, link
// and component failures, with every correctness monitor armed. This is the
// closest thing to the paper's large-testbed burn-in that a unit test can
// afford; the seeds make any failure reproducible.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

class StressSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSoak, SixtySecondsOfChurnStaysConsistent) {
  std::uint64_t seed = GetParam();
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kZenithNR;
  config.poll_interval = millis(5);
  Experiment exp(gen::kdl_like(40, seed), config);
  exp.start();
  Workload workload(&exp, seed * 101 + 7);
  Dag initial = workload.initial_dag(12);
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(60)).has_value());

  // Transient switch failures + component crashes across a 60 s window.
  FailurePlanConfig plan;
  plan.mean_gap = seconds(4);
  plan.down_time = millis(800);
  plan.max_concurrent = 2;
  plan.mode = seed % 2 == 0 ? FailureMode::kCompleteTransient
                            : FailureMode::kPartialTransient;
  plan.horizon = seconds(60);
  (void)schedule_switch_failures(exp, plan, seed * 3 + 1);
  (void)schedule_component_failures(exp, seconds(5), seconds(60),
                                    seed * 5 + 2);
  // A couple of link flaps too.
  Rng rng(seed * 7 + 3);
  for (int i = 0; i < 3; ++i) {
    auto link = LinkId(static_cast<std::uint32_t>(
        rng.next_below(exp.topology().link_count())));
    SimTime when = static_cast<SimTime>(rng.next_below(seconds(50)));
    exp.sim().schedule_at(when, [&exp, link] {
      exp.fabric().inject_link_failure(link);
    });
    exp.sim().schedule_at(when + seconds(2), [&exp, link] {
      exp.fabric().inject_link_recovery(link);
    });
  }

  // Keep the update stream flowing through the churn.
  std::size_t converged = 0, attempted = 0;
  SimTime horizon = exp.sim().now() + seconds(60);
  while (exp.sim().now() < horizon) {
    auto dag = workload.next_update_dag();
    if (!dag.has_value()) {
      exp.run_for(millis(100));
      continue;
    }
    ++attempted;
    if (exp.install_and_wait(std::move(*dag), seconds(20)).has_value()) {
      ++converged;
    }
  }
  EXPECT_GT(attempted, 10u);
  // Churn may legitimately delay some installs past their window, but the
  // vast majority must land.
  EXPECT_GE(converged * 10, attempted * 9)
      << converged << "/" << attempted << " converged";

  // Let everything settle, then audit all invariants.
  exp.run_for(seconds(10));
  auto settled = exp.run_until(
      [&] {
        auto report = exp.checker().check(std::nullopt);
        return report.view_consistent;
      },
      seconds(30));
  EXPECT_TRUE(settled.has_value()) << "view never reconverged after churn";
  EXPECT_TRUE(exp.order_checker().ok())
      << exp.order_checker().violations().front();
  EXPECT_FALSE(exp.checker().hidden_entry_signature());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSoak,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace zenith
