#include <gtest/gtest.h>

#include "dataplane/fabric.h"
#include "topo/generators.h"
#include "traffic/traffic.h"

namespace zenith {
namespace {

void install_now(Fabric& fabric, Simulator& sim, std::uint32_t op_id,
                 std::uint32_t sw, std::uint32_t dst, std::uint32_t nh,
                 int priority = 1) {
  SwitchRequest r;
  r.type = SwitchRequest::Type::kInstall;
  r.op.id = OpId(op_id);
  r.op.type = OpType::kInstallRule;
  r.op.sw = SwitchId(sw);
  r.op.rule = FlowRule{FlowId(1), SwitchId(sw), SwitchId(dst), SwitchId(nh),
                       priority};
  fabric.send(SwitchId(sw), r);
  sim.run();
  fabric.replies().clear();
}

class TrafficTest : public ::testing::Test {
 protected:
  TrafficTest()
      : fabric_(&sim_, gen::figure2_diamond(), Rng(1)), model_(&fabric_) {}

  Simulator sim_;
  Fabric fabric_;     // A=0, B=1, C=2, D=3
  TrafficModel model_;
};

TEST_F(TrafficTest, ResolvesInstalledPath) {
  install_now(fabric_, sim_, 1, 0, 3, 1);  // A -> B
  install_now(fabric_, sim_, 2, 1, 3, 3);  // B -> D
  Demand d{FlowId(1), SwitchId(0), SwitchId(3), 1.0};
  Resolution r = model_.resolve(d);
  EXPECT_EQ(r.outcome, DeliveryOutcome::kDelivered);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[1], SwitchId(1));
}

TEST_F(TrafficTest, MissingRuleIsNoRule) {
  install_now(fabric_, sim_, 1, 0, 3, 1);  // only the first hop
  Demand d{FlowId(1), SwitchId(0), SwitchId(3), 1.0};
  EXPECT_EQ(model_.resolve(d).outcome, DeliveryOutcome::kNoRule);
}

TEST_F(TrafficTest, DeadSwitchBlackholes) {
  install_now(fabric_, sim_, 1, 0, 3, 1);
  install_now(fabric_, sim_, 2, 1, 3, 3);
  fabric_.inject_failure(SwitchId(1), FailureMode::kPartialTransient);
  Demand d{FlowId(1), SwitchId(0), SwitchId(3), 1.0};
  EXPECT_EQ(model_.resolve(d).outcome, DeliveryOutcome::kDeadSwitch);
}

TEST_F(TrafficTest, HiddenHighPriorityEntryShadowsNewRoute) {
  // Figure 2: hidden priority-9 entry A->B plus the controller's new A->C.
  install_now(fabric_, sim_, 1, 0, 3, 1, /*priority=*/9);  // hidden
  install_now(fabric_, sim_, 2, 0, 3, 2, /*priority=*/2);  // new route
  install_now(fabric_, sim_, 3, 2, 3, 3);                  // C -> D
  fabric_.inject_failure(SwitchId(1), FailureMode::kCompletePermanent);
  Demand d{FlowId(1), SwitchId(0), SwitchId(3), 1.0};
  // Traffic still follows the hidden entry into dead B: blackhole.
  EXPECT_EQ(model_.resolve(d).outcome, DeliveryOutcome::kDeadSwitch);
}

TEST_F(TrafficTest, DeadLinkBreaksDelivery) {
  install_now(fabric_, sim_, 1, 0, 3, 1);  // A -> B
  install_now(fabric_, sim_, 2, 1, 3, 3);  // B -> D
  auto link = fabric_.topology().link_between(SwitchId(0), SwitchId(1));
  ASSERT_TRUE(link.ok());
  fabric_.inject_link_failure(link.value());
  Demand d{FlowId(1), SwitchId(0), SwitchId(3), 1.0};
  EXPECT_EQ(model_.resolve(d).outcome, DeliveryOutcome::kBrokenLink);
  fabric_.inject_link_recovery(link.value());
  EXPECT_EQ(model_.resolve(d).outcome, DeliveryOutcome::kDelivered);
}

TEST_F(TrafficTest, LoopDetected) {
  install_now(fabric_, sim_, 1, 0, 3, 1);  // A -> B
  install_now(fabric_, sim_, 2, 1, 3, 0);  // B -> A: loop
  Demand d{FlowId(1), SwitchId(0), SwitchId(3), 1.0};
  EXPECT_EQ(model_.resolve(d).outcome, DeliveryOutcome::kLoop);
}

TEST_F(TrafficTest, MaxMinSharesBottleneck) {
  // Two flows forced over the same A->B link (capacity 100).
  install_now(fabric_, sim_, 1, 0, 3, 1);
  install_now(fabric_, sim_, 2, 1, 3, 3);
  install_now(fabric_, sim_, 3, 0, 1, 1);  // flow 2: A -> B terminates at B
  std::vector<Demand> demands{
      {FlowId(1), SwitchId(0), SwitchId(3), 80.0},
      {FlowId(2), SwitchId(0), SwitchId(1), 80.0},
  };
  auto reports = model_.evaluate(demands);
  ASSERT_EQ(reports.size(), 2u);
  // Bottleneck link A-B (100 Gbps) split fairly: 50/50.
  EXPECT_NEAR(reports[0].throughput_gbps, 50.0, 1e-6);
  EXPECT_NEAR(reports[1].throughput_gbps, 50.0, 1e-6);
}

TEST_F(TrafficTest, DemandCapRespected) {
  install_now(fabric_, sim_, 1, 0, 3, 1);
  install_now(fabric_, sim_, 2, 1, 3, 3);
  std::vector<Demand> demands{{FlowId(1), SwitchId(0), SwitchId(3), 5.0}};
  EXPECT_NEAR(model_.total_throughput(demands), 5.0, 1e-6);
}

TEST_F(TrafficTest, UndeliveredFlowsGetZero) {
  std::vector<Demand> demands{{FlowId(1), SwitchId(0), SwitchId(3), 5.0}};
  EXPECT_DOUBLE_EQ(model_.total_throughput(demands), 0.0);
}

}  // namespace
}  // namespace zenith
