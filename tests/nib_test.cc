#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nib/nib.h"

namespace zenith {
namespace {

Op make_op(std::uint32_t id, std::uint32_t sw) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(sw);
  op.rule = FlowRule{FlowId(1), SwitchId(sw), SwitchId(9), SwitchId(sw + 1), 1};
  return op;
}

TEST(NibTest, OpLifecycle) {
  Nib nib;
  Op op = make_op(1, 0);
  nib.put_op(op);
  EXPECT_TRUE(nib.has_op(OpId(1)));
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kNone);
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  nib.set_op_status(OpId(1), OpStatus::kSent);
  nib.set_op_status(OpId(1), OpStatus::kDone);
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
}

TEST(NibTest, PutOpIsIdempotentForIdenticalPayload) {
  Nib nib;
  Op op = make_op(1, 0);
  nib.put_op(op);
  nib.set_op_status(OpId(1), OpStatus::kDone);
  nib.put_op(op);  // re-put must not reset status
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
}

TEST(NibTest, EventsPublishedToAllSubscribers) {
  Nib nib;
  NadirFifo<NibEvent> a, b;
  nib.subscribe(&a);
  nib.subscribe(&b);
  nib.put_op(make_op(1, 0));
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  NibEvent event = a.pop();
  EXPECT_EQ(event.type, NibEvent::Type::kOpStatusChanged);
  EXPECT_EQ(event.op, OpId(1));
  EXPECT_EQ(event.op_status, OpStatus::kScheduled);
}

TEST(NibTest, NoEventOnIdenticalStatusWrite) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  nib.put_op(make_op(1, 0));
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  EXPECT_EQ(sink.size(), 1u);
}

TEST(NibTest, SwitchHealthTransitions) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  nib.register_switch(SwitchId(0));
  EXPECT_TRUE(nib.switch_up(SwitchId(0)));
  nib.set_switch_health(SwitchId(0), SwitchHealth::kDown);
  EXPECT_FALSE(nib.switch_up(SwitchId(0)));
  // Down -> Recovering: still not "up", no up-transition event.
  nib.set_switch_health(SwitchId(0), SwitchHealth::kRecovering);
  nib.set_switch_health(SwitchId(0), SwitchHealth::kUp);
  int health_events = 0;
  while (!sink.empty()) {
    if (sink.pop().type == NibEvent::Type::kSwitchHealthChanged) {
      ++health_events;
    }
  }
  EXPECT_EQ(health_events, 2);  // up->down, recovering->up
}

TEST(NibTest, OpsOnSwitchFiltersByStatus) {
  Nib nib;
  nib.put_op(make_op(1, 0));
  nib.put_op(make_op(2, 0));
  nib.put_op(make_op(3, 1));
  nib.set_op_status(OpId(1), OpStatus::kSent);
  nib.set_op_status(OpId(2), OpStatus::kDone);
  nib.set_op_status(OpId(3), OpStatus::kSent);
  auto sent_on_0 = nib.ops_on_switch(SwitchId(0), {OpStatus::kSent});
  EXPECT_EQ(sent_on_0, std::vector<OpId>{OpId(1)});
  auto both = nib.ops_on_switch(SwitchId(0), {OpStatus::kSent, OpStatus::kDone});
  EXPECT_EQ(both.size(), 2u);
  EXPECT_EQ(nib.ops_with_status(OpStatus::kSent).size(), 2u);
}

TEST(NibTest, ViewTracksInstalledOps) {
  Nib nib;
  nib.register_switch(SwitchId(0));
  nib.view_add_installed(SwitchId(0), OpId(1));
  nib.view_add_installed(SwitchId(0), OpId(2));
  EXPECT_EQ(nib.view_installed(SwitchId(0)).size(), 2u);
  nib.view_remove_installed(SwitchId(0), OpId(1));
  EXPECT_EQ(nib.view_installed(SwitchId(0)).size(), 1u);
  nib.view_clear_switch(SwitchId(0));
  EXPECT_TRUE(nib.view_installed(SwitchId(0)).empty());
}

TEST(NibTest, DagTableAndDoneFlags) {
  Nib nib;
  Dag dag(DagId(7));
  ASSERT_TRUE(dag.add_op(make_op(1, 0)).ok());
  nib.put_dag(dag);
  EXPECT_TRUE(nib.has_dag(DagId(7)));
  EXPECT_TRUE(nib.has_op(OpId(1)));  // ops registered alongside
  nib.set_current_dag(DagId(7));
  EXPECT_EQ(nib.current_dag(), DagId(7));
  EXPECT_FALSE(nib.dag_is_done(DagId(7)));
  nib.mark_dag_done(DagId(7));
  EXPECT_TRUE(nib.dag_is_done(DagId(7)));
  nib.clear_dag_done(DagId(7));
  EXPECT_FALSE(nib.dag_is_done(DagId(7)));
  nib.remove_dag(DagId(7));
  EXPECT_FALSE(nib.has_dag(DagId(7)));
  EXPECT_FALSE(nib.current_dag().has_value());
}

TEST(NibTest, WorkerStateSlots) {
  Nib nib;
  EXPECT_FALSE(nib.worker_state(WorkerId(0)).has_value());
  nib.set_worker_state(WorkerId(0), OpId(5));
  EXPECT_EQ(nib.worker_state(WorkerId(0)), OpId(5));
  nib.set_worker_state(WorkerId(0), std::nullopt);
  EXPECT_FALSE(nib.worker_state(WorkerId(0)).has_value());
}

TEST(NibTest, LinkHealthTableAndTopologyEvents) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  EXPECT_TRUE(nib.link_up(LinkId(0)));
  nib.set_link_up(LinkId(0), false);
  EXPECT_FALSE(nib.link_up(LinkId(0)));
  EXPECT_EQ(nib.down_links().size(), 1u);
  nib.set_link_up(LinkId(0), false);  // idempotent: no second event
  nib.set_link_up(LinkId(0), true);
  EXPECT_TRUE(nib.link_up(LinkId(0)));
  int topology_events = 0;
  while (!sink.empty()) {
    NibEvent event = sink.pop();
    if (event.type == NibEvent::Type::kTopologyChanged) ++topology_events;
  }
  EXPECT_EQ(topology_events, 2);  // down, up
}

TEST(NibTest, PreloadDoesNotPublishEvents) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  nib.register_switch(SwitchId(0));
  sink.clear();
  Op op = make_op(1, 0);
  nib.preload_op(op, OpStatus::kDone, /*in_view=*/true);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
  EXPECT_TRUE(nib.view_installed(SwitchId(0)).count(OpId(1)));
}

TEST(StatusMaskTest, SingleListAndUnionConstruction) {
  StatusMask none;
  EXPECT_TRUE(none.empty());
  StatusMask sent = OpStatus::kSent;
  EXPECT_TRUE(sent.contains(OpStatus::kSent));
  EXPECT_FALSE(sent.contains(OpStatus::kDone));
  StatusMask pair{OpStatus::kSent, OpStatus::kDone};
  EXPECT_TRUE(pair.contains(OpStatus::kSent));
  EXPECT_TRUE(pair.contains(OpStatus::kDone));
  EXPECT_EQ(pair, StatusMask(OpStatus::kSent) | StatusMask(OpStatus::kDone));
  StatusMask all{OpStatus::kNone,   OpStatus::kScheduled,
                 OpStatus::kInFlight, OpStatus::kSent,
                 OpStatus::kDone,   OpStatus::kFailedSwitch};
  for (std::size_t s = 0; s < kNumOpStatuses; ++s) {
    EXPECT_TRUE(all.contains(static_cast<OpStatus>(s)));
  }
}

TEST(NibTest, EmptyStatusMaskMatchesNothing) {
  Nib nib;
  nib.put_op(make_op(1, 0));
  EXPECT_TRUE(nib.ops_on_switch(SwitchId(0), StatusMask{}).empty());
}

TEST(NibTest, SwitchesCacheStaysSortedAcrossRegistrations) {
  Nib nib;
  EXPECT_TRUE(nib.switches().empty());
  nib.register_switch(SwitchId(5));
  nib.register_switch(SwitchId(1));
  EXPECT_EQ(nib.switches(), (std::vector<SwitchId>{SwitchId(1), SwitchId(5)}));
  nib.register_switch(SwitchId(3));
  nib.register_switch(SwitchId(3));  // duplicate registration: no-op
  EXPECT_EQ(nib.switches(),
            (std::vector<SwitchId>{SwitchId(1), SwitchId(3), SwitchId(5)}));
}

// Randomized cross-check of the incrementally maintained status indexes
// against a brute-force full-scan oracle: thousands of interleaved
// put_op / set_op_status / preload_op / view_* calls, with every query
// compared against recomputation from the oracle's flat tables.
TEST(NibTest, IndexMatchesFullScanOracleUnderRandomizedChurn) {
  constexpr std::uint32_t kSwitches = 9;
  constexpr int kOpsPerRound = 40;
  constexpr int kRounds = 60;

  Nib nib;
  for (std::uint32_t sw = 0; sw < kSwitches; ++sw) {
    nib.register_switch(SwitchId(sw));
  }

  struct OracleEntry {
    SwitchId sw;
    OpStatus status = OpStatus::kNone;
  };
  std::map<OpId, OracleEntry> oracle;  // ordered: scans yield sorted ids
  Rng rng(2024);
  std::uint32_t next_id = 1;

  auto oracle_ops_on_switch = [&](SwitchId sw, StatusMask mask) {
    std::vector<OpId> out;
    for (const auto& [id, entry] : oracle) {
      if (entry.sw == sw && mask.contains(entry.status)) out.push_back(id);
    }
    return out;
  };
  auto oracle_ops_with_status = [&](OpStatus status) {
    std::vector<OpId> out;
    for (const auto& [id, entry] : oracle) {
      if (entry.status == status) out.push_back(id);
    }
    return out;
  };
  auto random_status = [&] {
    return static_cast<OpStatus>(rng.next_below(kNumOpStatuses));
  };
  auto random_known_op = [&]() -> OpId {
    auto it = oracle.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         rng.next_below(oracle.size())));
    return it->first;
  };

  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kOpsPerRound; ++i) {
      switch (rng.next_below(oracle.empty() ? 2u : 5u)) {
        case 0: {  // put_op: fresh op lands as kNone
          Op op = make_op(next_id++, rng.next_below(kSwitches));
          nib.put_op(op);
          oracle[op.id] = {op.sw, OpStatus::kNone};
          break;
        }
        case 1: {  // preload_op: bulk load with arbitrary status
          Op op = make_op(next_id++, rng.next_below(kSwitches));
          OpStatus status = random_status();
          nib.preload_op(op, status, rng.next_below(2) == 0);
          oracle[op.id] = {op.sw, status};
          break;
        }
        case 2: {  // set_op_status on a live op
          OpId id = random_known_op();
          OpStatus status = random_status();
          nib.set_op_status(id, status);
          oracle[id].status = status;
          break;
        }
        case 3: {  // view churn: must not perturb the status indexes
          OpId id = random_known_op();
          SwitchId sw = oracle[id].sw;
          if (rng.next_below(2) == 0) {
            nib.view_add_installed(sw, id);
          } else {
            nib.view_remove_installed(sw, id);
          }
          break;
        }
        case 4: {  // preload over an existing op: status move in the index
          OpId id = random_known_op();
          OpStatus status = random_status();
          nib.preload_op(nib.op(id), status, false);
          oracle[id].status = status;
          break;
        }
      }
    }
    // Cross-check every query shape against the oracle scan.
    OpStatus probe = random_status();
    EXPECT_EQ(nib.ops_with_status(probe), oracle_ops_with_status(probe));
    SwitchId sw(rng.next_below(kSwitches));
    StatusMask single = random_status();
    EXPECT_EQ(nib.ops_on_switch(sw, single), oracle_ops_on_switch(sw, single));
    StatusMask multi{random_status(), random_status(), random_status()};
    EXPECT_EQ(nib.ops_on_switch(sw, multi), oracle_ops_on_switch(sw, multi));
    for (std::size_t s = 0; s < kNumOpStatuses; ++s) {
      ASSERT_EQ(nib.ops_with_status(static_cast<OpStatus>(s)),
                oracle_ops_with_status(static_cast<OpStatus>(s)))
          << "status index diverged at round " << round << " status " << s;
    }
  }
  ASSERT_GT(oracle.size(), 500u);  // the churn actually built a large table
}

TEST(NibTest, WriteCountAccounting) {
  Nib nib;
  auto before = nib.write_count();
  nib.put_op(make_op(1, 0));
  nib.set_op_status(OpId(1), OpStatus::kDone);
  EXPECT_GT(nib.write_count(), before);
}

}  // namespace
}  // namespace zenith
