#include <gtest/gtest.h>

#include "nib/nib.h"

namespace zenith {
namespace {

Op make_op(std::uint32_t id, std::uint32_t sw) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(sw);
  op.rule = FlowRule{FlowId(1), SwitchId(sw), SwitchId(9), SwitchId(sw + 1), 1};
  return op;
}

TEST(NibTest, OpLifecycle) {
  Nib nib;
  Op op = make_op(1, 0);
  nib.put_op(op);
  EXPECT_TRUE(nib.has_op(OpId(1)));
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kNone);
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  nib.set_op_status(OpId(1), OpStatus::kSent);
  nib.set_op_status(OpId(1), OpStatus::kDone);
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
}

TEST(NibTest, PutOpIsIdempotentForIdenticalPayload) {
  Nib nib;
  Op op = make_op(1, 0);
  nib.put_op(op);
  nib.set_op_status(OpId(1), OpStatus::kDone);
  nib.put_op(op);  // re-put must not reset status
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
}

TEST(NibTest, EventsPublishedToAllSubscribers) {
  Nib nib;
  NadirFifo<NibEvent> a, b;
  nib.subscribe(&a);
  nib.subscribe(&b);
  nib.put_op(make_op(1, 0));
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  NibEvent event = a.pop();
  EXPECT_EQ(event.type, NibEvent::Type::kOpStatusChanged);
  EXPECT_EQ(event.op, OpId(1));
  EXPECT_EQ(event.op_status, OpStatus::kScheduled);
}

TEST(NibTest, NoEventOnIdenticalStatusWrite) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  nib.put_op(make_op(1, 0));
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  nib.set_op_status(OpId(1), OpStatus::kScheduled);
  EXPECT_EQ(sink.size(), 1u);
}

TEST(NibTest, SwitchHealthTransitions) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  nib.register_switch(SwitchId(0));
  EXPECT_TRUE(nib.switch_up(SwitchId(0)));
  nib.set_switch_health(SwitchId(0), SwitchHealth::kDown);
  EXPECT_FALSE(nib.switch_up(SwitchId(0)));
  // Down -> Recovering: still not "up", no up-transition event.
  nib.set_switch_health(SwitchId(0), SwitchHealth::kRecovering);
  nib.set_switch_health(SwitchId(0), SwitchHealth::kUp);
  int health_events = 0;
  while (!sink.empty()) {
    if (sink.pop().type == NibEvent::Type::kSwitchHealthChanged) {
      ++health_events;
    }
  }
  EXPECT_EQ(health_events, 2);  // up->down, recovering->up
}

TEST(NibTest, OpsOnSwitchFiltersByStatus) {
  Nib nib;
  nib.put_op(make_op(1, 0));
  nib.put_op(make_op(2, 0));
  nib.put_op(make_op(3, 1));
  nib.set_op_status(OpId(1), OpStatus::kSent);
  nib.set_op_status(OpId(2), OpStatus::kDone);
  nib.set_op_status(OpId(3), OpStatus::kSent);
  auto sent_on_0 = nib.ops_on_switch(SwitchId(0), {OpStatus::kSent});
  EXPECT_EQ(sent_on_0, std::vector<OpId>{OpId(1)});
  auto both = nib.ops_on_switch(SwitchId(0), {OpStatus::kSent, OpStatus::kDone});
  EXPECT_EQ(both.size(), 2u);
  EXPECT_EQ(nib.ops_with_status(OpStatus::kSent).size(), 2u);
}

TEST(NibTest, ViewTracksInstalledOps) {
  Nib nib;
  nib.register_switch(SwitchId(0));
  nib.view_add_installed(SwitchId(0), OpId(1));
  nib.view_add_installed(SwitchId(0), OpId(2));
  EXPECT_EQ(nib.view_installed(SwitchId(0)).size(), 2u);
  nib.view_remove_installed(SwitchId(0), OpId(1));
  EXPECT_EQ(nib.view_installed(SwitchId(0)).size(), 1u);
  nib.view_clear_switch(SwitchId(0));
  EXPECT_TRUE(nib.view_installed(SwitchId(0)).empty());
}

TEST(NibTest, DagTableAndDoneFlags) {
  Nib nib;
  Dag dag(DagId(7));
  ASSERT_TRUE(dag.add_op(make_op(1, 0)).ok());
  nib.put_dag(dag);
  EXPECT_TRUE(nib.has_dag(DagId(7)));
  EXPECT_TRUE(nib.has_op(OpId(1)));  // ops registered alongside
  nib.set_current_dag(DagId(7));
  EXPECT_EQ(nib.current_dag(), DagId(7));
  EXPECT_FALSE(nib.dag_is_done(DagId(7)));
  nib.mark_dag_done(DagId(7));
  EXPECT_TRUE(nib.dag_is_done(DagId(7)));
  nib.clear_dag_done(DagId(7));
  EXPECT_FALSE(nib.dag_is_done(DagId(7)));
  nib.remove_dag(DagId(7));
  EXPECT_FALSE(nib.has_dag(DagId(7)));
  EXPECT_FALSE(nib.current_dag().has_value());
}

TEST(NibTest, WorkerStateSlots) {
  Nib nib;
  EXPECT_FALSE(nib.worker_state(WorkerId(0)).has_value());
  nib.set_worker_state(WorkerId(0), OpId(5));
  EXPECT_EQ(nib.worker_state(WorkerId(0)), OpId(5));
  nib.set_worker_state(WorkerId(0), std::nullopt);
  EXPECT_FALSE(nib.worker_state(WorkerId(0)).has_value());
}

TEST(NibTest, LinkHealthTableAndTopologyEvents) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  EXPECT_TRUE(nib.link_up(LinkId(0)));
  nib.set_link_up(LinkId(0), false);
  EXPECT_FALSE(nib.link_up(LinkId(0)));
  EXPECT_EQ(nib.down_links().size(), 1u);
  nib.set_link_up(LinkId(0), false);  // idempotent: no second event
  nib.set_link_up(LinkId(0), true);
  EXPECT_TRUE(nib.link_up(LinkId(0)));
  int topology_events = 0;
  while (!sink.empty()) {
    NibEvent event = sink.pop();
    if (event.type == NibEvent::Type::kTopologyChanged) ++topology_events;
  }
  EXPECT_EQ(topology_events, 2);  // down, up
}

TEST(NibTest, PreloadDoesNotPublishEvents) {
  Nib nib;
  NadirFifo<NibEvent> sink;
  nib.subscribe(&sink);
  nib.register_switch(SwitchId(0));
  sink.clear();
  Op op = make_op(1, 0);
  nib.preload_op(op, OpStatus::kDone, /*in_view=*/true);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(nib.op_status(OpId(1)), OpStatus::kDone);
  EXPECT_TRUE(nib.view_installed(SwitchId(0)).count(OpId(1)));
}

TEST(NibTest, WriteCountAccounting) {
  Nib nib;
  auto before = nib.write_count();
  nib.put_op(make_op(1, 0));
  nib.set_op_status(OpId(1), OpStatus::kDone);
  EXPECT_GT(nib.write_count(), before);
}

}  // namespace
}  // namespace zenith
