// Sharded-NIB equivalence (PR 8).
//
// Two layers of evidence that nib_shards changes throughput, never outcomes:
//  * randomized index churn applied identically to a sharded NIB, an
//    unsharded mirror, and a plain-map oracle — every secondary-index query
//    and both fingerprint forms must agree at every checkpoint;
//  * full pipeline runs (the soak workload, chaos off so OpId streams are
//    comparable) across nib_shards in {0, 2, 4, 8} and commit_threads in
//    {0, 3} — final NIB fingerprints and op counts must be byte-identical
//    to the classic single-threaded path.
// The chaos-on case asserts only cleanliness (0 invariant violations):
// CLEAR_TCAM recovery consumes OpIds, so cross-arm fingerprints are not
// comparable once chaos timing differs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "common/rng.h"
#include "harness/soak.h"
#include "nib/nib.h"
#include "topo/generators.h"

namespace zenith {
namespace {

TEST(ShardSlot, StableAndDegenerateAtOneShard) {
  for (std::uint32_t sw = 0; sw < 64; ++sw) {
    EXPECT_EQ(Nib::shard_slot(SwitchId(sw), 0), 0u);
    EXPECT_EQ(Nib::shard_slot(SwitchId(sw), 1), 0u);
    for (std::size_t shards : {2u, 4u, 8u}) {
      std::size_t slot = Nib::shard_slot(SwitchId(sw), shards);
      EXPECT_LT(slot, shards);
      EXPECT_EQ(slot, Nib::shard_slot(SwitchId(sw), shards));  // pure
    }
  }
}

Op make_install(std::uint32_t id, std::uint32_t sw) {
  Op op;
  op.id = OpId(id);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(sw);
  op.rule.flow = FlowId(id);
  op.rule.sw = SwitchId(sw);
  op.rule.dst = SwitchId(sw + 1);
  op.rule.next_hop = SwitchId(sw + 1);
  return op;
}

// Randomized churn: puts, status flips, health flips, view edits — applied
// in lockstep to a sharded NIB and an unsharded mirror, checked against a
// plain std::map oracle and against each other.
TEST(ShardedNib, RandomChurnMatchesOracleAcrossShardCounts) {
  constexpr std::uint32_t kSwitches = 32;
  constexpr std::size_t kSteps = 6000;
  constexpr OpStatus kStatuses[] = {OpStatus::kNone,   OpStatus::kScheduled,
                                    OpStatus::kInFlight, OpStatus::kSent,
                                    OpStatus::kDone,   OpStatus::kFailedSwitch};

  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    Nib sharded;
    sharded.configure_sharding(shards);
    Nib mirror;  // classic single-index layout
    std::map<std::uint32_t, std::pair<std::uint32_t, OpStatus>> oracle;

    Rng rng(0xC0FFEE ^ shards);
    for (std::uint32_t sw = 0; sw < kSwitches; ++sw) {
      sharded.register_switch(SwitchId(sw));
      mirror.register_switch(SwitchId(sw));
    }

    std::uint32_t next_id = 1;
    for (std::size_t step = 0; step < kSteps; ++step) {
      const std::uint64_t roll = rng.next_below(100);
      if (roll < 40 || oracle.empty()) {
        const std::uint32_t sw =
            static_cast<std::uint32_t>(rng.next_below(kSwitches));
        Op op = make_install(next_id++, sw);
        sharded.put_op(op);
        mirror.put_op(op);
        oracle[op.id.value()] = {sw, OpStatus::kNone};
      } else if (roll < 85) {
        auto it = oracle.begin();
        std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
        OpStatus status =
            kStatuses[rng.next_below(std::size(kStatuses))];
        sharded.set_op_status(OpId(it->first), status);
        mirror.set_op_status(OpId(it->first), status);
        it->second.second = status;
      } else if (roll < 92) {
        auto it = oracle.begin();
        std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
        const SwitchId sw(it->second.first);
        if (rng.next_below(2) == 0) {
          sharded.view_add_installed(sw, OpId(it->first));
          mirror.view_add_installed(sw, OpId(it->first));
        } else {
          sharded.view_remove_installed(sw, OpId(it->first));
          mirror.view_remove_installed(sw, OpId(it->first));
        }
      } else {
        const SwitchId sw(
            static_cast<std::uint32_t>(rng.next_below(kSwitches)));
        SwitchHealth health = rng.next_below(2) == 0 ? SwitchHealth::kUp
                                                     : SwitchHealth::kDown;
        sharded.set_switch_health(sw, health);
        mirror.set_switch_health(sw, health);
      }

      if (step % 500 != 499 && step + 1 != kSteps) continue;

      // Checkpoint: every query form agrees with the oracle and the mirror.
      for (OpStatus status : kStatuses) {
        std::vector<OpId> want;
        for (const auto& [id, entry] : oracle) {
          if (entry.second == status) want.push_back(OpId(id));
        }
        EXPECT_EQ(sharded.ops_with_status(status), want)
            << "shards=" << shards << " status=" << to_string(status);
        EXPECT_EQ(mirror.ops_with_status(status), want);
      }
      for (std::uint32_t sw = 0; sw < kSwitches; sw += 5) {
        StatusMask mask = {OpStatus::kSent, OpStatus::kDone};
        std::vector<OpId> want;
        for (const auto& [id, entry] : oracle) {
          if (entry.first == sw && mask.contains(entry.second)) {
            want.push_back(OpId(id));
          }
        }
        EXPECT_EQ(sharded.ops_on_switch(SwitchId(sw), mask), want);
        EXPECT_EQ(mirror.ops_on_switch(SwitchId(sw), mask), want);
      }
      EXPECT_EQ(sharded.state_fingerprint(), mirror.state_fingerprint());
      EXPECT_EQ(sharded.folded_shard_fingerprint(),
                mirror.folded_shard_fingerprint(shards))
          << "shards=" << shards;
      EXPECT_EQ(sharded.write_count(), mirror.write_count());
    }
  }
}

// The shard fingerprint is a pure read-side partition: for any shard count,
// the fold over the shard digests commits to the same state regardless of
// how the NIB itself is configured.
TEST(ShardedNib, FoldedFingerprintIsConfigurationIndependent) {
  Nib a;  // unsharded
  Nib b;
  b.configure_sharding(4);
  for (std::uint32_t sw = 0; sw < 16; ++sw) {
    a.register_switch(SwitchId(sw));
    b.register_switch(SwitchId(sw));
  }
  for (std::uint32_t i = 1; i <= 200; ++i) {
    Op op = make_install(i, i % 16);
    a.put_op(op);
    b.put_op(op);
    a.set_op_status(op.id, OpStatus::kDone);
    b.set_op_status(op.id, OpStatus::kDone);
  }
  EXPECT_EQ(a.state_fingerprint(), b.state_fingerprint());
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(a.folded_shard_fingerprint(shards),
              b.folded_shard_fingerprint(shards));
  }
  // And the shards really partition: each op's digest lands in exactly one
  // shard (changing one op changes exactly one shard_fingerprint slot).
  std::vector<std::uint64_t> before;
  for (std::size_t s = 0; s < 4; ++s) before.push_back(b.shard_fingerprint(s, 4));
  b.set_op_status(OpId(7), OpStatus::kSent);
  std::size_t changed = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    if (b.shard_fingerprint(s, 4) != before[s]) ++changed;
  }
  EXPECT_EQ(changed, 1u);
}

// ---- full-pipeline equivalence -------------------------------------------

std::size_t soak_ops_budget() {
  const char* env = std::getenv("ZENITH_SOAK_OPS");
  if (env != nullptr && *env != '\0') {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 3000;  // a handful of rounds; tier-1 stays flat
}

struct PipelineRun {
  SoakResult soak;
  std::uint64_t folded_fingerprint = 0;
};

PipelineRun run_pipeline(std::size_t nib_shards, std::size_t commit_threads,
                         bool chaos) {
  ExperimentConfig config;
  config.seed = 23;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = 16;
  config.core.nib_shards = nib_shards;
  config.core.commit_threads = commit_threads;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;

  std::size_t k = 4;
  Experiment exp(gen::fat_tree(k), config);
  exp.start();

  SoakConfig soak_config;
  soak_config.seed = 71;
  soak_config.groups = 4;
  soak_config.flows_per_group = 8;
  soak_config.target_ops = soak_ops_budget();
  soak_config.chaos = chaos;
  soak_config.deep_check_every = 8;
  gen::FatTreeIndex index = gen::fat_tree_index(k);
  for (std::size_t i = index.edge_begin; i < index.edge_end; ++i) {
    soak_config.endpoints.push_back(SwitchId(static_cast<std::uint32_t>(i)));
  }

  SoakWorkload workload(&exp, soak_config);
  PipelineRun run;
  run.soak = workload.run();
  run.folded_fingerprint = exp.nib().folded_shard_fingerprint(4);
  return run;
}

TEST(ShardedPipeline, MatchesUnshardedFingerprintChaosOff) {
  PipelineRun classic = run_pipeline(/*nib_shards=*/0, /*commit_threads=*/0,
                                     /*chaos=*/false);
  PipelineRun sharded = run_pipeline(/*nib_shards=*/4, /*commit_threads=*/0,
                                     /*chaos=*/false);
  ASSERT_EQ(classic.soak.invariant_violations, 0u);
  ASSERT_EQ(sharded.soak.invariant_violations, 0u);
  EXPECT_EQ(sharded.soak.ops_completed, classic.soak.ops_completed);
  EXPECT_EQ(sharded.soak.nib_fingerprint, classic.soak.nib_fingerprint);
  EXPECT_EQ(sharded.folded_fingerprint, classic.folded_fingerprint);
}

TEST(ShardedPipeline, ShardCountDoesNotChangeOutcome) {
  PipelineRun two = run_pipeline(2, 0, /*chaos=*/false);
  PipelineRun eight = run_pipeline(8, 0, /*chaos=*/false);
  ASSERT_EQ(two.soak.invariant_violations, 0u);
  ASSERT_EQ(eight.soak.invariant_violations, 0u);
  EXPECT_EQ(two.soak.ops_completed, eight.soak.ops_completed);
  EXPECT_EQ(two.soak.nib_fingerprint, eight.soak.nib_fingerprint);
}

// commit_threads fans the per-shard commit jobs over a real thread pool;
// the parallel-commit section contract says the result is byte-identical
// to the serial shard-order application. This is the case the CI TSan
// stage re-runs with a bigger budget.
TEST(ShardedPipeline, CommitThreadPoolIsByteIdenticalToSerial) {
  PipelineRun serial = run_pipeline(4, /*commit_threads=*/0, /*chaos=*/false);
  PipelineRun pooled = run_pipeline(4, /*commit_threads=*/3, /*chaos=*/false);
  ASSERT_EQ(serial.soak.invariant_violations, 0u);
  ASSERT_EQ(pooled.soak.invariant_violations, 0u);
  EXPECT_EQ(pooled.soak.ops_completed, serial.soak.ops_completed);
  EXPECT_EQ(pooled.soak.nib_fingerprint, serial.soak.nib_fingerprint);
  EXPECT_EQ(pooled.folded_fingerprint, serial.folded_fingerprint);
}

TEST(ShardedPipeline, ChaosSoakStaysClean) {
  PipelineRun run = run_pipeline(4, /*commit_threads=*/3, /*chaos=*/true);
  EXPECT_GE(run.soak.ops_completed, soak_ops_budget());
  EXPECT_EQ(run.soak.timeouts, 0u);
  EXPECT_EQ(run.soak.invariant_violations, 0u);
  EXPECT_TRUE(run.soak.order_ok);
}

}  // namespace
}  // namespace zenith
