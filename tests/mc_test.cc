// Model-checker tests: the correct spec model passes under every
// optimization configuration; the optimizations shrink the state space
// monotonically (Table 4's shape); the §3.9 bug knobs produce violations
// with counterexample traces (Figure A.6 feedstock).
#include <gtest/gtest.h>

#include "mc/checker.h"
#include "mc/parallel_bfs.h"
#include "mc/pipeline_model.h"
#include "mc/repl_model.h"

namespace zenith::mc {
namespace {

CheckerOptions quick_options() {
  CheckerOptions options;
  options.max_states = 2'000'000;
  options.time_limit_seconds = 60.0;
  return options;
}

TEST(McTiny, NoFailureInstanceVerifies) {
  ModelConfig config = ModelConfig::tiny_instance();
  config.opt_por = true;
  CheckResult result = check(PipelineModel(config), quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
  EXPECT_GT(result.distinct_states, 1u);
  EXPECT_GT(result.quiescent_states, 0u);
}

TEST(McTiny, FineGrainedExploresMoreStatesThanPor) {
  ModelConfig fine = ModelConfig::tiny_instance();
  ModelConfig por = ModelConfig::tiny_instance();
  por.opt_por = true;
  CheckResult fine_result = check(PipelineModel(fine), quick_options());
  CheckResult por_result = check(PipelineModel(por), quick_options());
  ASSERT_TRUE(fine_result.ok) << fine_result.violation;
  ASSERT_TRUE(por_result.ok) << por_result.violation;
  EXPECT_GT(fine_result.distinct_states, por_result.distinct_states);
}

TEST(McTable4, CorrectModelVerifiesWithAllOptimizations) {
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = true;
  CheckResult result = check(PipelineModel(config), quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped) << "fully-optimized run must exhaust";
  EXPECT_GT(result.diameter, 10u);
}

TEST(McTable4, OptimizationLadderShrinksStateSpace) {
  auto run = [](bool sym, bool com, bool por) {
    ModelConfig config = ModelConfig::table4_instance();
    config.opt_symmetry = sym;
    config.opt_compositional = com;
    config.opt_por = por;
    CheckerOptions options;
    options.max_states = 3'000'000;
    options.time_limit_seconds = 120.0;
    return check(PipelineModel(config), options);
  };
  CheckResult sym = run(true, false, false);
  CheckResult sym_com = run(true, true, false);
  CheckResult all = run(true, true, true);
  ASSERT_TRUE(all.ok) << all.violation;
  ASSERT_TRUE(sym_com.ok || sym_com.capped) << sym_com.violation;
  ASSERT_TRUE(sym.ok || sym.capped) << sym.violation;
  // Monotone collapse (Table 4): each optimization prunes further.
  EXPECT_GT(sym.distinct_states, sym_com.distinct_states);
  EXPECT_GT(sym_com.distinct_states, all.distinct_states);
  if (!sym.capped && !all.capped) {
    EXPECT_GE(sym.diameter, all.diameter);
  }
}

TEST(McTable4, TransientRecoveryInstanceVerifies) {
  ModelConfig config = ModelConfig::transient_recovery_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = true;
  CheckResult result = check(PipelineModel(config), quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(McBugs, MarkUpBeforeResetViolates) {
  ModelConfig config = ModelConfig::transient_recovery_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = true;
  config.bugs.mark_up_before_reset = true;
  CheckerOptions options = quick_options();
  options.record_traces = true;
  CheckResult result = check(PipelineModel(config), options);
  ASSERT_FALSE(result.ok) << "§G bug must be caught by the checker";
  EXPECT_FALSE(result.trace.empty());
  // The counterexample must include the failure/recovery cycle.
  bool saw_recovery = false;
  for (const TraceEvent& event : result.trace) {
    if (event.action.kind == Action::Kind::kSwitchRecover) {
      saw_recovery = true;
    }
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(McBugs, SkipRecoveryCleanupViolates) {
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = true;
  config.bugs.skip_recovery_cleanup = true;
  CheckerOptions options = quick_options();
  options.record_traces = true;
  CheckResult result = check(PipelineModel(config), options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("CorrectRoutingState"), std::string::npos)
      << result.violation;
}

TEST(McBugs, DirectClearTcamViolates) {
  // The CLEAR-vs-in-flight-OP race lives *between* the worker's record and
  // act steps, so it needs the fine-grained worker (POR's merge is exactly
  // what the verified design's P4/P6 justify — and with the bug those
  // assumptions do not hold). A partial failure keeps the held OP relevant.
  ModelConfig config = ModelConfig::transient_recovery_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.complete_failure = false;
  config.bugs.direct_clear_tcam = true;
  CheckerOptions options = quick_options();
  options.record_traces = true;
  CheckResult result = check(PipelineModel(config), options);
  ASSERT_FALSE(result.ok);
  // The same configuration WITHOUT the bug is clean.
  config.bugs.direct_clear_tcam = false;
  CheckResult clean = check(PipelineModel(config), quick_options());
  EXPECT_TRUE(clean.ok) << clean.violation;
}

// §3.7 claims the optimizations are sound: "if the specification after
// applying these techniques is correct, the initial specification is
// correct too". Empirical check: the optimized and unoptimized checkers
// agree on the verdict for every correct configuration, and symmetry/
// compositional reduction still catch every bug the unoptimized model
// catches. (POR is excluded for the two bugs that live between merged
// steps — merging is exactly what those bugs violate; see
// DirectClearTcamViolates above.)
TEST(McSoundness, OptimizationsPreserveVerdicts) {
  struct Case {
    const char* name;
    mc::ModelConfig (*make)();
    void (*bug)(SpecBugs&);
    bool expect_ok;
  };
  const Case cases[] = {
      {"correct-table4", ModelConfig::table4_instance,
       [](SpecBugs&) {}, true},
      {"correct-transient", ModelConfig::transient_recovery_instance,
       [](SpecBugs&) {}, true},
      {"mark-up-bug", ModelConfig::transient_recovery_instance,
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, false},
      {"skip-cleanup-bug", ModelConfig::table4_instance,
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, false},
  };
  for (const Case& c : cases) {
    for (bool optimized : {false, true}) {
      mc::ModelConfig config = c.make();
      c.bug(config.bugs);
      config.opt_symmetry = optimized;
      config.opt_compositional = optimized;
      config.opt_por = optimized;
      CheckResult result = check(PipelineModel(config), quick_options());
      ASSERT_FALSE(result.capped) << c.name;
      EXPECT_EQ(result.ok, c.expect_ok)
          << c.name << " optimized=" << optimized << ": " << result.violation;
    }
  }
}

TEST(McSoundness, SymmetryCanonicalizationMergesWorkerPermutations) {
  // Two states differing only by which worker holds which message must
  // fingerprint identically under symmetry and differently without it.
  PipelineModel model(ModelConfig::table4_instance());
  State a = model.initial_state();
  a.worker_msg[0] = 3;
  a.worker_phase[0] = 1;
  State b = model.initial_state();
  b.worker_msg[1] = 3;
  b.worker_phase[1] = 1;
  EXPECT_EQ(a.fingerprint(true), b.fingerprint(true));
  EXPECT_NE(a.fingerprint(false), b.fingerprint(false));
}

TEST(McSoundness, FingerprintIgnoresGarbageBeyondQueueLength)
{
  PipelineModel model(ModelConfig::tiny_instance());
  State a = model.initial_state();
  State b = model.initial_state();
  b.op_queue[3] = 0x5a;  // beyond op_queue_len: semantically identical
  EXPECT_EQ(a.fingerprint(false), b.fingerprint(false));
}

TEST(McWorkerCrash, CrashSafeDisciplineSurvivesCrashes) {
  // CP-partial (Table 3): worker crashes mid-item. With the verified
  // read-head/ack-pop discipline the item survives; the model must verify.
  // (Crash windows live between worker steps, so fine-grained mode.)
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.max_worker_crashes = 1;
  CheckResult result = check(PipelineModel(config), quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
}

TEST(McWorkerCrash, PopBeforeProcessLosesWorkUnderCrash) {
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.max_worker_crashes = 1;
  config.max_switch_failures = 0;  // isolate the CP failure
  config.bugs.pop_before_process = true;
  CheckerOptions options = quick_options();
  options.record_traces = true;
  CheckResult result = check(PipelineModel(config), options);
  ASSERT_FALSE(result.ok)
      << "a crash between dequeue and process must lose the OP";
  EXPECT_NE(result.violation.find("never installed"), std::string::npos)
      << result.violation;
  // The counterexample includes the crash.
  bool saw_crash = false;
  for (const TraceEvent& event : result.trace) {
    saw_crash |= event.action.kind == Action::Kind::kWorkerCrash;
  }
  EXPECT_TRUE(saw_crash);
}

TEST(McWorkerCrash, SwitchAndWorkerFailuresCompose) {
  // Concurrent failures (Table 3 last row): switch failure during CP churn.
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.max_worker_crashes = 1;
  config.max_switch_failures = 1;
  CheckerOptions options = quick_options();
  options.max_states = 4'000'000;
  CheckResult result = check(PipelineModel(config), options);
  EXPECT_TRUE(result.ok) << result.violation;
}

// PR 4 brought batched dispatch (CoreConfig::batch_size) into the
// implementation; ModelConfig::batch_size brings the spec model back into
// conformance: an atomic coalescing Sequencer pass, per-switch batch
// messages, ONE batch-ACK committed as a single Monitoring transition, and
// whole-batch re-enqueue on worker crash.
TEST(McBatching, BatchedModelVerifiesAcrossBatchSizes) {
  for (auto make : {ModelConfig::table4_instance,
                    ModelConfig::transient_recovery_instance}) {
    for (int bs : {2, 4}) {
      ModelConfig config = make();
      config.batch_size = bs;
      config.opt_symmetry = true;
      config.opt_compositional = true;
      config.opt_por = true;
      CheckResult result = check(PipelineModel(config), quick_options());
      EXPECT_TRUE(result.ok)
          << "batch_size=" << bs << ": " << result.violation;
      EXPECT_FALSE(result.capped);
    }
  }
}

TEST(McBatching, BatchSizeOneMatchesClassicStateSpace) {
  // batch_size=1 must be byte-identical to the pre-batching pipeline: the
  // per-OP Sequencer transitions are kept verbatim (no SchedulePass).
  ModelConfig classic = ModelConfig::table4_instance();
  classic.opt_symmetry = true;
  classic.opt_compositional = true;
  classic.opt_por = true;
  ModelConfig bs1 = classic;
  bs1.batch_size = 1;
  CheckResult a = check(PipelineModel(classic), quick_options());
  CheckResult b = check(PipelineModel(bs1), quick_options());
  ASSERT_TRUE(a.ok) << a.violation;
  ASSERT_TRUE(b.ok) << b.violation;
  EXPECT_EQ(a.distinct_states, b.distinct_states);
  EXPECT_EQ(a.diameter, b.diameter);
}

TEST(McBatching, BatchingShrinksSchedulingInterleavings) {
  // The atomic coalescing pass replaces up-to-kMaxOps interleaved per-OP
  // schedule transitions with one macro-step, so the batched state space
  // cannot exceed the classic one on the same instance.
  ModelConfig classic = ModelConfig::table4_instance();
  classic.opt_symmetry = true;
  classic.opt_compositional = true;
  classic.opt_por = true;
  ModelConfig batched = classic;
  batched.batch_size = 4;
  CheckResult a = check(PipelineModel(classic), quick_options());
  CheckResult b = check(PipelineModel(batched), quick_options());
  ASSERT_TRUE(a.ok) << a.violation;
  ASSERT_TRUE(b.ok) << b.violation;
  EXPECT_LE(b.distinct_states, a.distinct_states);
}

TEST(McBatching, CrashMidBatchSurvivesWithCrashSafeDiscipline) {
  // A worker crash while it holds a BATCH must re-enqueue the whole batch
  // exactly once (the PR 4 ghost-ACK fix, now in the spec too).
  ModelConfig config = ModelConfig::table4_instance();
  config.batch_size = 4;
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;  // crash windows live between worker steps
  config.max_worker_crashes = 1;
  CheckResult result = check(PipelineModel(config), quick_options());
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.capped);
}

TEST(McBatching, PopBeforeProcessLosesWholeBatchUnderCrash) {
  ModelConfig config = ModelConfig::table4_instance();
  config.batch_size = 4;
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.max_worker_crashes = 1;
  config.max_switch_failures = 0;  // isolate the CP failure
  config.bugs.pop_before_process = true;
  CheckerOptions options = quick_options();
  options.record_traces = true;
  CheckResult result = check(PipelineModel(config), options);
  ASSERT_FALSE(result.ok)
      << "a crash between dequeue and process must lose the whole batch";
  EXPECT_NE(result.violation.find("never installed"), std::string::npos)
      << result.violation;
}

TEST(McBatching, BatchAckCommitsAsOneTransaction) {
  // Hand-built state: a 2-OP batch-ACK sits at the Monitoring Server. ONE
  // kMonitoring transition must commit both OPs (status + view) — the
  // model-level image of Nib::commit_ack_batch's single transaction.
  ModelConfig config = ModelConfig::table4_instance();
  config.batch_size = 4;
  PipelineModel model(config);
  State s = model.initial_state();
  // op2 and op3 both live on sw1 (DAG B); pretend they were batched,
  // applied on the switch, and the batch-ACK is queued.
  s.current_dag = 1;
  s.app_switched = 1;
  s.failures_used = 1;
  s.sw_up[0] = 0;
  s.nib_health[0] = 1;  // MHealth::kDown
  s.op_status[2] = static_cast<std::uint8_t>(MOpStatus::kSent);
  s.op_status[3] = static_cast<std::uint8_t>(MOpStatus::kSent);
  s.sw_table[1] = (1u << 2) | (1u << 3);
  s.installed_once = (1u << 2) | (1u << 3);
  s.ack_queue[0] = static_cast<Msg>(kBatchFlag | (1u << 10) | (1u << 2) |
                                    (1u << 3));
  s.ack_queue_len = 1;
  Action monitoring{Action::Kind::kMonitoring, 0};
  ASSERT_EQ(model.apply(s, monitoring), "");
  EXPECT_EQ(static_cast<MOpStatus>(s.op_status[2]), MOpStatus::kDone);
  EXPECT_EQ(static_cast<MOpStatus>(s.op_status[3]), MOpStatus::kDone);
  EXPECT_EQ(s.nib_view[1], (1u << 2) | (1u << 3));
  EXPECT_EQ(s.ack_queue_len, 0);
}

TEST(McParametrized, CorrectModelHoldsAcrossFailureModes) {
  struct Case {
    bool complete;
    bool recovery;
    int budget;
  };
  for (const Case& c : std::initializer_list<Case>{
           {true, true, 1}, {true, false, 1}, {false, true, 1},
           {true, true, 2}}) {
    ModelConfig config = ModelConfig::table4_instance();
    config.complete_failure = c.complete;
    config.allow_recovery = c.recovery;
    config.max_switch_failures = c.budget;
    config.failing_switch = -1;  // any switch may fail
    config.opt_symmetry = true;
    config.opt_compositional = true;
    config.opt_por = true;
    CheckResult result = check(PipelineModel(config), quick_options());
    EXPECT_TRUE(result.ok)
        << "complete=" << c.complete << " recovery=" << c.recovery
        << " budget=" << c.budget << ": " << result.violation;
  }
}

TEST(McReplModel, CorrectProtocolVerifiesExhaustively) {
  // The abstract replica-set model (the formal twin of src/repl's shard
  // protocol): with the correct commit rule, no reachable interleaving of
  // appends, replication, commits, leader kills and elections elects a
  // leader missing a NIB-applied entry.
  ReplModelConfig config;
  config.max_appends = 3;
  config.max_kills = 1;
  ReplModelResult result = check_repl_model(config);
  EXPECT_FALSE(result.violation_found) << result.violation << "\nvia: "
                                       << result.counterexample;
  EXPECT_GT(result.states_explored, 10u);
}

TEST(McReplModel, FiveReplicaInstanceAlsoVerifies) {
  ReplModelConfig config;
  config.replicas = 5;
  config.max_appends = 2;
  config.max_kills = 2;
  ReplModelResult result = check_repl_model(config);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.states_explored, 100u);
}

TEST(McReplModel, CommitBeforeQuorumYieldsMinimalCounterexample) {
  // The same defect knob the simulator's ReplConfig carries: committing on
  // append means a kill + election reaches a leader whose log lacks applied
  // entries. BFS finds the canonical three-action counterexample.
  ReplModelConfig config;
  config.max_appends = 1;
  config.max_kills = 1;
  config.bug_commit_before_quorum = true;
  ReplModelResult result = check_repl_model(config);
  ASSERT_TRUE(result.violation_found);
  EXPECT_NE(result.violation.find("leader"), std::string::npos)
      << result.violation;
  EXPECT_EQ(result.counterexample.rfind("append -> kill-leader -> elect", 0),
            0u)
      << result.counterexample;
}

// ---------------------------------------------------------------------------
// PR 9: the parallel exploration engine.
//
// The determinism contract under test (see checker.h):
//  * clean uncapped runs: distinct_states / transitions / quiescent_states /
//    diameter are EXACT at every thread count (level-synchronous BFS);
//  * capped runs: the capped flag and the ok verdict agree across thread
//    counts; distinct_states is only bounded (>= max_states);
//  * violating runs: the ok verdict agrees; the specific trace may differ
//    past threads=1 but must replay to a real violation.

TEST(McParallel, CleanRunsAgreeExactlyAcrossThreadCounts) {
  struct Cell {
    const char* name;
    ModelConfig config;
  };
  std::vector<Cell> cells;
  cells.push_back({"tiny-fine", ModelConfig::tiny_instance()});
  {
    ModelConfig config = ModelConfig::tiny_instance();
    config.opt_por = true;
    cells.push_back({"tiny-por", config});
  }
  {
    ModelConfig config = ModelConfig::table4_instance();
    config.opt_symmetry = true;
    config.opt_compositional = true;
    config.opt_por = true;
    cells.push_back({"table4-sym-com-por", config});
  }
  {
    ModelConfig config = ModelConfig::transient_recovery_instance();
    config.opt_symmetry = true;
    config.opt_compositional = true;
    config.opt_por = true;
    cells.push_back({"transient-recovery", config});
  }
  {
    ModelConfig config = ModelConfig::table4_instance();
    config.opt_symmetry = true;
    config.opt_compositional = true;
    config.opt_por = true;
    config.batch_size = 2;
    cells.push_back({"table4-batch2", config});
  }

  for (const Cell& cell : cells) {
    PipelineModel model(cell.config);
    CheckerOptions options = quick_options();
    options.threads = 1;
    CheckResult serial = check(model, options);
    ASSERT_TRUE(serial.ok) << cell.name << ": " << serial.violation;
    ASSERT_FALSE(serial.capped) << cell.name;
    for (std::size_t threads : {2u, 4u, 8u}) {
      options.threads = threads;
      CheckResult parallel = check(model, options);
      EXPECT_TRUE(parallel.ok) << cell.name << " t=" << threads;
      EXPECT_FALSE(parallel.capped) << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.distinct_states, serial.distinct_states)
          << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.transitions, serial.transitions)
          << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.quiescent_states, serial.quiescent_states)
          << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.diameter, serial.diameter)
          << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.threads_used, threads);
    }
  }
}

TEST(McParallel, ReplModelAgreesExactlyAcrossThreadCounts) {
  struct Cell {
    const char* name;
    ReplModelConfig config;
  };
  std::vector<Cell> cells;
  {
    ReplModelConfig config;
    config.max_appends = 3;
    config.max_kills = 1;
    cells.push_back({"r3-a3-k1", config});
  }
  {
    ReplModelConfig config;
    config.replicas = 5;
    config.max_appends = 2;
    config.max_kills = 2;
    cells.push_back({"r5-a2-k2", config});
  }
  {
    ReplModelConfig config;
    config.replicas = 5;
    config.max_appends = 4;
    config.max_kills = 1;
    config.stepwise_replication = true;
    cells.push_back({"r5-a4-k1-stepwise", config});
  }

  for (const Cell& cell : cells) {
    ReplModelConfig config = cell.config;
    config.threads = 1;
    ReplModelResult serial = check_repl_model(config);
    ASSERT_FALSE(serial.violation_found) << cell.name << ": "
                                         << serial.violation;
    ASSERT_FALSE(serial.capped) << cell.name;
    for (std::size_t threads : {2u, 4u, 8u}) {
      config.threads = threads;
      ReplModelResult parallel = check_repl_model(config);
      EXPECT_FALSE(parallel.violation_found) << cell.name << " t=" << threads;
      EXPECT_FALSE(parallel.capped) << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.states_explored, serial.states_explored)
          << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.transitions, serial.transitions)
          << cell.name << " t=" << threads;
      EXPECT_EQ(parallel.diameter, serial.diameter)
          << cell.name << " t=" << threads;
    }
  }
}

TEST(McParallel, CappedRunsAgreeOnVerdictAndCappedFlag) {
  // Caps stop the search mid-level, so only the verdict and the capped flag
  // are exact across thread counts; distinct_states is bounded below by the
  // cap (the stopping worker saw distinct >= max_states) and may overshoot
  // by in-flight expansions. transitions/diameter are not compared at all.
  ModelConfig config = ModelConfig::table4_measurement_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = true;
  CheckerOptions options;
  options.max_states = 20'000;
  options.time_limit_seconds = 60.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    options.threads = threads;
    CheckResult result = check(PipelineModel(config), options);
    EXPECT_TRUE(result.ok) << "t=" << threads << ": " << result.violation;
    EXPECT_TRUE(result.capped) << "t=" << threads;
    EXPECT_GE(result.distinct_states, options.max_states) << "t=" << threads;
  }
}

TEST(McParallel, ViolationVerdictAgreesAcrossThreadCounts) {
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.max_worker_crashes = 1;
  config.max_switch_failures = 0;
  config.bugs.pop_before_process = true;
  PipelineModel model(config);
  CheckerOptions options = quick_options();
  options.record_traces = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    options.threads = threads;
    CheckResult result = check(model, options);
    ASSERT_FALSE(result.ok) << "t=" << threads;
    EXPECT_FALSE(result.capped) << "t=" << threads;
    // Whatever trace this thread count found must replay to a violation
    // under the model's own apply semantics.
    EXPECT_FALSE(replay_trace(model, result.trace).empty())
        << "t=" << threads << " trace does not reproduce";
  }
}

TEST(McParallel, DiskBackedSeenSetMatchesInMemory) {
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = true;
  PipelineModel model(config);
  CheckerOptions options = quick_options();
  CheckResult in_memory = check(model, options);
  ASSERT_TRUE(in_memory.ok) << in_memory.violation;

  options.disk_store_path = ::testing::TempDir();
  for (std::size_t threads : {1u, 4u}) {
    options.threads = threads;
    CheckResult spilled = check(model, options);
    EXPECT_TRUE(spilled.ok) << spilled.violation;
    EXPECT_EQ(spilled.distinct_states, in_memory.distinct_states)
        << "t=" << threads;
    EXPECT_EQ(spilled.transitions, in_memory.transitions) << "t=" << threads;
    EXPECT_EQ(spilled.diameter, in_memory.diameter) << "t=" << threads;
  }
}

// PR 9 counterexample determinism: parallel-found violations must replay
// and ddmin-shrink just like serial ones.

TEST(McCounterexample, PopBeforeProcessTraceReplaysAndShrinks) {
  ModelConfig config = ModelConfig::table4_instance();
  config.opt_symmetry = true;
  config.opt_compositional = true;
  config.opt_por = false;
  config.max_worker_crashes = 1;
  config.max_switch_failures = 0;
  config.bugs.pop_before_process = true;
  PipelineModel model(config);
  CheckerOptions options = quick_options();
  options.record_traces = true;

  options.threads = 1;
  CheckResult serial = check(model, options);
  ASSERT_FALSE(serial.ok);
  // The serial trace replays to exactly the violation the checker reported.
  EXPECT_EQ(replay_trace(model, serial.trace), serial.violation);
  std::vector<TraceEvent> serial_shrunk = shrink_trace(model, serial.trace);
  EXPECT_LE(serial_shrunk.size(), 15u);
  EXPECT_FALSE(replay_trace(model, serial_shrunk).empty());

  // A parallel run may claim a different first violation, but its trace
  // must still replay and shrink to the same <=15-event bound.
  options.threads = 4;
  CheckResult parallel = check(model, options);
  ASSERT_FALSE(parallel.ok);
  std::string replayed = replay_trace(model, parallel.trace);
  EXPECT_FALSE(replayed.empty()) << "parallel trace does not reproduce";
  std::vector<TraceEvent> parallel_shrunk =
      shrink_trace(model, parallel.trace);
  EXPECT_LE(parallel_shrunk.size(), 15u);
  EXPECT_FALSE(replay_trace(model, parallel_shrunk).empty());
}

TEST(McCounterexample, CommitBeforeQuorumReplaysAcrossThreadCounts) {
  ReplModelConfig config;
  config.max_appends = 1;
  config.max_kills = 1;
  config.bug_commit_before_quorum = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    config.threads = threads;
    ReplModelResult result = check_repl_model(config);
    ASSERT_TRUE(result.violation_found) << "t=" << threads;
    std::string replayed =
        replay_repl_counterexample(config, result.counterexample);
    EXPECT_FALSE(replayed.empty())
        << "t=" << threads << " '" << result.counterexample
        << "' does not reproduce";
  }
  // threads=1 keeps the exact canonical counterexample.
  config.threads = 1;
  ReplModelResult serial = check_repl_model(config);
  EXPECT_EQ(serial.counterexample, "append -> kill-leader -> elect(1)");
  EXPECT_EQ(replay_repl_counterexample(config, serial.counterexample),
            serial.violation);
}

// PR 9 satellite: the initial state IS visited like any other state — it is
// popped (depth 0) before expansion, so a violating initial terminal state
// is reported with an empty trace, and a healthy terminal initial state is
// counted as quiescent. (Verified against the pre-PR-9 serial checker,
// which had the same pop-time semantics; these tests pin it down.)

// Engine-level regression: a model whose INITIAL state already violates at
// visit time must be reported (ok=false, empty trace) — the root is not
// silently expanded past. The counting toy walks 0..9 with a violation
// planted at `bad`.
struct CountingToyModel {
  using State = int;
  using Action = int;
  int limit = 10;
  int bad = -1;  // visit-violating state, -1 = none

  State initial() const { return 0; }
  std::pair<std::uint64_t, std::uint64_t> fingerprint(const State& s) const {
    return {static_cast<std::uint64_t>(s) + 1, 0};
  }
  std::string visit(const State& s, bool& quiescent) const {
    if (s == limit - 1) quiescent = true;
    if (s == bad) return "toy violation at " + std::to_string(s);
    return {};
  }
  template <typename Sink>
  std::string expand(const State& s, Sink& sink) const {
    if (s + 1 < limit) sink.transition(s, s + 1);
    return {};
  }
};

TEST(McInitialState, ViolatingInitialStateIsReportedWithEmptyTrace) {
  CountingToyModel model;
  model.bad = 0;
  for (std::size_t threads : {1u, 4u}) {
    ParallelBfsOptions options;
    options.record_traces = true;
    options.threads = threads;
    ParallelBfsResult<int> result = parallel_bfs(model, options);
    EXPECT_FALSE(result.ok) << "t=" << threads;
    EXPECT_EQ(result.violation, "toy violation at 0") << "t=" << threads;
    EXPECT_TRUE(result.trace.empty()) << "t=" << threads;
    EXPECT_EQ(result.distinct_states, 1u) << "t=" << threads;
    EXPECT_EQ(result.transitions, 0u) << "t=" << threads;
  }
}

TEST(McInitialState, ToyChainCountsExactlyAtEveryThreadCount) {
  CountingToyModel model;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ParallelBfsOptions options;
    options.threads = threads;
    ParallelBfsResult<int> result = parallel_bfs(model, options);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.distinct_states, 10u) << "t=" << threads;
    EXPECT_EQ(result.transitions, 9u) << "t=" << threads;
    EXPECT_EQ(result.quiescent_states, 1u) << "t=" << threads;
    EXPECT_EQ(result.diameter, 9u) << "t=" << threads;
  }
}

TEST(McInitialState, TerminalInitialStateIsQuiescenceCheckedAndCounted) {
  // No ops: the initial state is terminal. It must be counted (1 distinct,
  // 1 quiescent, diameter 0) and consistency-checked (vacuously ok).
  ModelConfig config;
  config.num_switches = 1;
  config.num_workers = 1;
  config.max_switch_failures = 0;
  config.ops = {};
  for (std::size_t threads : {1u, 4u}) {
    CheckerOptions options = quick_options();
    options.threads = threads;
    CheckResult result = check(PipelineModel(config), options);
    EXPECT_TRUE(result.ok) << result.violation;
    EXPECT_EQ(result.distinct_states, 1u) << "t=" << threads;
    EXPECT_EQ(result.quiescent_states, 1u) << "t=" << threads;
    EXPECT_EQ(result.diameter, 0u) << "t=" << threads;
    EXPECT_EQ(result.transitions, 0u) << "t=" << threads;
  }
}

}  // namespace
}  // namespace zenith::mc
