// End-to-end tests of the ZENITH-core pipeline in the absence of failures:
// DAG admission -> Sequencer -> Worker Pool -> switches -> ACKs -> NIB, and
// the §3.3 correctness conditions at quiescence.
#include <gtest/gtest.h>

#include "dag/compiler.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith {
namespace {

ExperimentConfig zenith_config(std::uint64_t seed = 7) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kZenithNR;
  return config;
}

TEST(CorePipeline, SingleOpDagInstallsAndCertifies) {
  Experiment exp(gen::linear(2), zenith_config());
  exp.start();

  Dag dag(DagId(1));
  Op op;
  op.id = exp.op_ids().next();
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(0);
  op.rule = FlowRule{FlowId(1), SwitchId(0), SwitchId(1), SwitchId(1), 1};
  ASSERT_TRUE(dag.add_op(op).ok());

  auto latency = exp.install_and_wait(std::move(dag), seconds(10));
  ASSERT_TRUE(latency.has_value()) << "pipeline did not converge";
  EXPECT_GT(*latency, 0);
  EXPECT_LT(*latency, seconds(1));

  // Ground truth: rule on switch, NIB view agrees, status DONE.
  EXPECT_TRUE(exp.fabric().at(SwitchId(0)).has_entry(op.id));
  EXPECT_TRUE(exp.nib().view_installed(SwitchId(0)).count(op.id));
  EXPECT_EQ(exp.nib().op_status(op.id), OpStatus::kDone);
}

TEST(CorePipeline, ChainDagRespectsDependencyOrder) {
  // Figure 5's drain example shape: C:D must be installed before A:C.
  Experiment exp(gen::figure2_diamond(), zenith_config());
  exp.start();

  OpIdAllocator& ids = exp.op_ids();
  // Path A -> C -> D for flow 1: install (C:D) then (A:C).
  Path path{SwitchId(0), SwitchId(2), SwitchId(3)};
  CompiledPath compiled = compile_single_path(path, FlowId(1), 1, ids);
  ASSERT_EQ(compiled.ops.size(), 2u);
  ASSERT_EQ(compiled.edges.size(), 1u);
  // Edge runs downstream -> upstream.
  EXPECT_EQ(compiled.edges[0].first, compiled.ops[1].id);
  EXPECT_EQ(compiled.edges[0].second, compiled.ops[0].id);

  Dag dag(DagId(1));
  for (const Op& op : compiled.ops) ASSERT_TRUE(dag.add_op(op).ok());
  for (auto [a, b] : compiled.edges) ASSERT_TRUE(dag.add_edge(a, b).ok());

  auto latency = exp.install_and_wait(std::move(dag), seconds(10));
  ASSERT_TRUE(latency.has_value());
  EXPECT_TRUE(exp.order_checker().ok())
      << exp.order_checker().violations().front();
  EXPECT_GE(exp.order_checker().installs_observed(), 2u);
}

TEST(CorePipeline, WideDagAcrossManySwitches) {
  Experiment exp(gen::kdl_like(40, 3), zenith_config());
  exp.start();
  Workload workload(&exp, 11);
  Dag dag = workload.initial_dag(15);
  ASSERT_GT(dag.size(), 0u);
  auto latency = exp.install_and_wait(std::move(dag), seconds(30));
  ASSERT_TRUE(latency.has_value());
  EXPECT_TRUE(exp.order_checker().ok());
  auto report = exp.checker().check(std::nullopt);
  EXPECT_TRUE(report.view_consistent)
      << (report.diffs.empty() ? "" : report.diffs.front());
}

TEST(CorePipeline, DagTransitionRemovesStaleOps) {
  Experiment exp(gen::figure2_diamond(), zenith_config());
  exp.start();
  Workload workload(&exp, 5);
  // Flow A (sw0) -> D (sw3); initial shortest path.
  Dag first = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  ASSERT_TRUE(exp.install_and_wait(std::move(first), seconds(10)).has_value());

  // Reroute; the replacement DAG deletes the previous path's ops.
  auto second = workload.reroute_dag();
  ASSERT_TRUE(second.has_value());
  DagId second_id = second->id();
  ASSERT_TRUE(exp.install_and_wait(std::move(*second), seconds(10)).has_value());

  // Only the new path's ops remain anywhere in the data plane.
  std::vector<Op> intent = workload.all_flow_ops();
  std::size_t installed = 0;
  for (SwitchId sw : exp.nib().switches()) {
    installed += exp.fabric().at(sw).table_size();
  }
  EXPECT_EQ(installed, intent.size());
  EXPECT_TRUE(exp.checker().converged(second_id));
}

TEST(CorePipeline, BackToBackRerouteConvergences) {
  Experiment exp(gen::kdl_like(30, 9), zenith_config());
  exp.start();
  Workload workload(&exp, 21);
  Dag initial = workload.initial_dag(8);
  ASSERT_TRUE(exp.install_and_wait(std::move(initial), seconds(30)).has_value());
  for (int i = 0; i < 10; ++i) {
    auto dag = workload.reroute_dag();
    if (!dag.has_value()) continue;
    auto latency = exp.install_and_wait(std::move(*dag), seconds(30));
    ASSERT_TRUE(latency.has_value()) << "reroute " << i << " did not converge";
  }
  EXPECT_TRUE(exp.order_checker().ok());
  auto report = exp.checker().check(std::nullopt);
  EXPECT_TRUE(report.view_consistent);
}

TEST(CorePipeline, DeleteCurrentDagSweepsDataPlane) {
  Experiment exp(gen::linear(4), zenith_config());
  exp.start();
  Workload workload(&exp, 3);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  DagId id = dag.id();
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(10)).has_value());

  exp.controller().delete_dag(id);
  auto cleaned = exp.run_until(
      [&] {
        for (SwitchId sw : exp.nib().switches()) {
          if (exp.fabric().at(sw).table_size() != 0) return false;
        }
        return true;
      },
      seconds(10));
  EXPECT_TRUE(cleaned.has_value())
      << "deleted DAG's routing state was not removed (§3.6)";
}

TEST(CorePipeline, NoDuplicateInstallsWithoutFailures) {
  Experiment exp(gen::kdl_like(25, 4), zenith_config());
  exp.start();
  Workload workload(&exp, 8);
  Dag dag = workload.initial_dag(10);
  ASSERT_TRUE(exp.install_and_wait(std::move(dag), seconds(30)).has_value());
  DuplicateInstallMonitor dup(&exp.order_checker());
  EXPECT_EQ(dup.duplicate_installs(), 0u)
      << "§B: at-most-once install must hold in failure-free runs";
}

}  // namespace
}  // namespace zenith
