// Wire codec suite (label: wire): round-trips every frame/message type
// through encode -> FrameAssembler -> decode, pins the committed golden hex
// bytes (tests/golden/WIRE_FRAMES.json), and feeds the decoder adversarial
// input — truncated, oversized, corrupt-magic, lying-count, mutated — which
// must come back as a clean Error, never a crash, hang, or huge allocation.
// scripts/ci.sh runs this under ASan+UBSan, so "no crash" is load-bearing.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/codec.h"
#include "net/wire.h"
#include "wire_frames_corpus.h"

namespace zenith {
namespace {

using net::FrameAssembler;
using net::FrameHeader;
using net::FrameType;
using net::WireMessage;

std::vector<WireMessage> decode_all(const std::vector<std::uint8_t>& bytes) {
  FrameAssembler assembler;
  std::vector<WireMessage> out;
  Status st = assembler.feed(bytes.data(), bytes.size(), &out);
  EXPECT_TRUE(st.ok()) << st.error().message;
  EXPECT_EQ(assembler.pending_bytes(), 0u);
  return out;
}

// ---- round trips ----------------------------------------------------------

TEST(WireCodec, RequestRoundTripsEveryType) {
  const SwitchRequest::Type types[] = {
      SwitchRequest::Type::kInstall,    SwitchRequest::Type::kDelete,
      SwitchRequest::Type::kClearTcam,  SwitchRequest::Type::kDumpTable,
      SwitchRequest::Type::kRoleChange, SwitchRequest::Type::kBatch,
  };
  for (SwitchRequest::Type type : types) {
    SwitchRequest request;
    request.type = type;
    request.xid = 0xA1B2C3D4E5F60718ull;
    request.role = 3;
    request.op = golden::corpus_op(55, OpType::kInstallRule);
    if (type == SwitchRequest::Type::kBatch) {
      request.batch = {golden::corpus_op(56, OpType::kInstallRule),
                       golden::corpus_op(57, OpType::kDeleteRule)};
    }
    std::vector<std::uint8_t> bytes;
    net::encode_request_frame(bytes, SwitchId(9), request);

    auto messages = decode_all(bytes);
    ASSERT_EQ(messages.size(), 1u);
    const WireMessage& m = messages[0];
    EXPECT_EQ(m.type, FrameType::kSwitchRequest);
    EXPECT_EQ(m.sw, SwitchId(9));
    EXPECT_EQ(m.request.type, type);
    EXPECT_EQ(m.request.xid, request.xid);
    EXPECT_EQ(m.request.role, request.role);
    EXPECT_EQ(m.request.op, request.op);
    EXPECT_EQ(m.request.batch, request.batch);
  }
}

TEST(WireCodec, ReplyRoundTripsEveryType) {
  const SwitchReply::Type types[] = {
      SwitchReply::Type::kAck,
      SwitchReply::Type::kDumpReply,
      SwitchReply::Type::kRoleAck,
      SwitchReply::Type::kBatchAck,
  };
  for (SwitchReply::Type type : types) {
    SwitchReply reply;
    reply.type = type;
    reply.xid = kReconciliationXidFlag | 77u;
    reply.sw = SwitchId(3);
    reply.role = 1;
    reply.op = golden::corpus_op(60, OpType::kDumpTable);
    if (type == SwitchReply::Type::kBatchAck) {
      reply.batch = {golden::corpus_op(61, OpType::kInstallRule)};
    }
    if (type == SwitchReply::Type::kDumpReply) {
      for (std::uint32_t i = 0; i < 5; ++i) {
        DumpedEntry entry;
        entry.installed_by = OpId(100 + i);
        entry.rule = golden::corpus_op(100 + i, OpType::kInstallRule).rule;
        reply.table.push_back(entry);
      }
    }
    std::vector<std::uint8_t> bytes;
    net::encode_reply_frame(bytes, reply);

    auto messages = decode_all(bytes);
    ASSERT_EQ(messages.size(), 1u);
    const WireMessage& m = messages[0];
    EXPECT_EQ(m.type, FrameType::kSwitchReply);
    EXPECT_EQ(m.reply.type, type);
    EXPECT_EQ(m.reply.xid, reply.xid);
    EXPECT_EQ(m.reply.sw, reply.sw);
    EXPECT_EQ(m.reply.role, reply.role);
    EXPECT_EQ(m.reply.op, reply.op);
    EXPECT_EQ(m.reply.batch, reply.batch);
    ASSERT_EQ(m.reply.table.size(), reply.table.size());
    for (std::size_t i = 0; i < reply.table.size(); ++i) {
      EXPECT_EQ(m.reply.table[i].installed_by, reply.table[i].installed_by);
      EXPECT_EQ(m.reply.table[i].rule, reply.table[i].rule);
    }
  }
}

TEST(WireCodec, EventAndControlFramesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  SwitchHealthEvent health;
  health.type = SwitchHealthEvent::Type::kFailure;
  health.sw = SwitchId(11);
  health.state_lost = true;
  net::encode_health_frame(bytes, health);
  LinkHealthEvent link;
  link.link = LinkId(0x7F000001u);
  link.up = true;
  net::encode_link_frame(bytes, link);
  net::Hello hello;
  hello.role = net::Hello::Role::kSwitchd;
  hello.switch_count = 12;
  hello.seed = 0xFEEDull;
  net::encode_hello_frame(bytes, hello);
  net::encode_bye_frame(bytes);

  auto messages = decode_all(bytes);
  ASSERT_EQ(messages.size(), 4u);
  EXPECT_EQ(messages[0].type, FrameType::kHealthEvent);
  EXPECT_EQ(messages[0].health.type, health.type);
  EXPECT_EQ(messages[0].health.sw, health.sw);
  EXPECT_EQ(messages[0].health.state_lost, true);
  EXPECT_EQ(messages[1].type, FrameType::kLinkEvent);
  EXPECT_EQ(messages[1].link.link, link.link);
  EXPECT_EQ(messages[1].link.up, true);
  EXPECT_EQ(messages[2].type, FrameType::kHello);
  EXPECT_EQ(messages[2].hello.role, hello.role);
  EXPECT_EQ(messages[2].hello.proto, net::kWireVersion);
  EXPECT_EQ(messages[2].hello.switch_count, 12u);
  EXPECT_EQ(messages[2].hello.seed, 0xFEEDull);
  EXPECT_EQ(messages[3].type, FrameType::kBye);
}

TEST(WireCodec, HeaderFieldsAreNetworkEndian) {
  // Pin the byte layout, not just self-consistency: magic "ZNTH" big-endian,
  // then version, type, flags, length, switch id.
  std::vector<std::uint8_t> bytes;
  SwitchHealthEvent event;
  event.type = SwitchHealthEvent::Type::kRecovery;
  event.sw = SwitchId(0x01020304u);
  net::encode_health_frame(bytes, event);
  ASSERT_GE(bytes.size(), net::kFrameHeaderSize);
  EXPECT_EQ(bytes[0], 0x5A);  // 'Z'
  EXPECT_EQ(bytes[1], 0x4E);  // 'N'
  EXPECT_EQ(bytes[2], 0x54);  // 'T'
  EXPECT_EQ(bytes[3], 0x48);  // 'H'
  EXPECT_EQ(bytes[4], net::kWireVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(FrameType::kHealthEvent));
  EXPECT_EQ(bytes[8], 0x00);  // length = 2, big endian
  EXPECT_EQ(bytes[11], 0x02);
  EXPECT_EQ(bytes[12], 0x01);  // switch id big endian
  EXPECT_EQ(bytes[15], 0x04);
}

TEST(WireCodec, BulkWordConverterMatchesScalar) {
  std::uint32_t words[4] = {0, 1, 0x01020304u, 0xFFFFFFFFu};
  std::uint32_t wire[4];
  net::HtoNLA(wire, words, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(wire[i], net::host_to_net_u32(words[i]));
  }
  std::uint32_t back[4];
  net::NtoHLA(back, wire, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], words[i]);
}

// ---- reassembly -----------------------------------------------------------

TEST(WireCodec, AssemblerReassemblesByteAtATime) {
  std::vector<std::uint8_t> bytes;
  for (const auto& [name, frame] : golden::wire_frame_corpus()) {
    (void)name;
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  FrameAssembler assembler;
  std::vector<WireMessage> out;
  for (std::uint8_t b : bytes) {
    ASSERT_TRUE(assembler.feed(&b, 1, &out).ok());
  }
  EXPECT_EQ(out.size(), golden::wire_frame_corpus().size());
  EXPECT_EQ(assembler.pending_bytes(), 0u);
}

TEST(WireCodec, AssemblerHandlesArbitrarySplits) {
  std::vector<std::uint8_t> bytes;
  for (const auto& [name, frame] : golden::wire_frame_corpus()) {
    (void)name;
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    FrameAssembler assembler;
    std::vector<WireMessage> out;
    std::size_t at = 0;
    while (at < bytes.size()) {
      std::size_t chunk = 1 + static_cast<std::size_t>(rng.next_below(38));
      chunk = std::min(chunk, bytes.size() - at);
      ASSERT_TRUE(assembler.feed(bytes.data() + at, chunk, &out).ok());
      at += chunk;
    }
    EXPECT_EQ(out.size(), golden::wire_frame_corpus().size());
  }
}

// ---- golden bytes ---------------------------------------------------------

// Parses the flat {"name": "<hex>", ...} format WIRE_FRAMES.json uses.
std::map<std::string, std::string> load_golden_frames(
    const std::string& path) {
  std::map<std::string, std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t k0 = line.find('"');
    if (k0 == std::string::npos) continue;
    std::size_t k1 = line.find('"', k0 + 1);
    if (k1 == std::string::npos) continue;
    std::size_t v0 = line.find('"', k1 + 1);
    if (v0 == std::string::npos) continue;
    std::size_t v1 = line.find('"', v0 + 1);
    if (v1 == std::string::npos) continue;
    out[line.substr(k0 + 1, k1 - k0 - 1)] =
        line.substr(v0 + 1, v1 - v0 - 1);
  }
  return out;
}

TEST(WireCodec, GoldenFrameBytesMatchCommitted) {
  // The committed hex IS the wire protocol. Drift here means an (intended or
  // not) format change: regenerate with scripts/update_golden.sh, review the
  // hex diff, and remember old/new daemons will not interoperate.
  std::string path =
      std::string(ZENITH_SOURCE_DIR) + "/tests/golden/WIRE_FRAMES.json";
  auto golden_hex = load_golden_frames(path);
  ASSERT_FALSE(golden_hex.empty()) << "missing or unparseable " << path;

  auto corpus = golden::wire_frame_corpus();
  EXPECT_EQ(golden_hex.size(), corpus.size());
  for (const auto& [name, frame] : corpus) {
    auto it = golden_hex.find(name);
    if (it == golden_hex.end()) {
      ADD_FAILURE() << "frame '" << name
                    << "' has no committed golden entry; run "
                       "scripts/update_golden.sh";
      continue;
    }
    EXPECT_EQ(it->second, golden::to_hex(frame))
        << "wire bytes drift in '" << name
        << "'; intended format changes need scripts/update_golden.sh";
    // And the committed bytes must still decode.
    auto bytes = golden::from_hex(it->second);
    FrameAssembler assembler;
    std::vector<WireMessage> out;
    EXPECT_TRUE(assembler.feed(bytes.data(), bytes.size(), &out).ok());
    EXPECT_EQ(out.size(), 1u) << "golden frame '" << name
                              << "' no longer decodes";
  }
}

// ---- adversarial input ----------------------------------------------------

TEST(WireCodec, RejectsCorruptMagic) {
  std::vector<std::uint8_t> bytes;
  net::encode_bye_frame(bytes);
  bytes[0] ^= 0xFF;
  FrameAssembler assembler;
  std::vector<WireMessage> out;
  EXPECT_FALSE(assembler.feed(bytes.data(), bytes.size(), &out).ok());
  EXPECT_TRUE(assembler.poisoned());
  // A poisoned assembler rejects everything afterwards, even valid frames.
  std::vector<std::uint8_t> good;
  net::encode_bye_frame(good);
  EXPECT_FALSE(assembler.feed(good.data(), good.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(WireCodec, RejectsBadVersionAndType) {
  std::vector<std::uint8_t> bytes;
  net::encode_bye_frame(bytes);
  {
    auto copy = bytes;
    copy[4] = 99;  // version
    auto header = net::decode_frame_header(copy.data(), copy.size());
    EXPECT_FALSE(header.ok());
  }
  for (std::uint8_t type : {std::uint8_t{0}, std::uint8_t{7},
                            std::uint8_t{255}}) {
    auto copy = bytes;
    copy[5] = type;
    auto header = net::decode_frame_header(copy.data(), copy.size());
    EXPECT_FALSE(header.ok()) << "type " << int(type) << " accepted";
  }
}

TEST(WireCodec, RejectsOversizedLength) {
  std::vector<std::uint8_t> bytes;
  net::encode_bye_frame(bytes);
  // length := kMaxPayload + 1, big endian at offset 8.
  std::uint32_t length = net::kMaxPayload + 1;
  bytes[8] = static_cast<std::uint8_t>(length >> 24);
  bytes[9] = static_cast<std::uint8_t>(length >> 16);
  bytes[10] = static_cast<std::uint8_t>(length >> 8);
  bytes[11] = static_cast<std::uint8_t>(length);
  auto header = net::decode_frame_header(bytes.data(), bytes.size());
  EXPECT_FALSE(header.ok());
}

TEST(WireCodec, TruncatedHeaderWaitsTruncatedPayloadRejects) {
  std::vector<std::uint8_t> bytes;
  SwitchRequest request;
  request.op = golden::corpus_op(9, OpType::kInstallRule);
  net::encode_request_frame(bytes, SwitchId(1), request);

  // A short header is not an error — the assembler waits for more bytes.
  FrameAssembler waits;
  std::vector<WireMessage> out;
  ASSERT_TRUE(waits.feed(bytes.data(), 10, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(waits.pending_bytes(), 10u);

  // But a complete frame whose payload was truncated (length lies) must
  // reject in decode_frame.
  auto header = net::decode_frame_header(bytes.data(), bytes.size());
  ASSERT_TRUE(header.ok());
  auto msg = net::decode_frame(header.value(),
                               bytes.data() + net::kFrameHeaderSize,
                               header.value().length - 4);
  EXPECT_FALSE(msg.ok());
}

TEST(WireCodec, LyingArrayCountRejectsWithoutHugeAllocation) {
  // A 4 GiB op count in a 100-byte payload must fail count validation
  // before any reserve — under ASan an attempted 137 GB allocation aborts,
  // so passing this test proves the guard, not just the error path.
  std::vector<std::uint8_t> bytes;
  SwitchRequest request;
  request.op = golden::corpus_op(9, OpType::kInstallRule);
  net::encode_request_frame(bytes, SwitchId(1), request);
  // Batch count is the last 4 payload bytes of a batchless request frame.
  std::size_t count_at = bytes.size() - 4;
  bytes[count_at] = 0xFF;
  bytes[count_at + 1] = 0xFF;
  bytes[count_at + 2] = 0xFF;
  bytes[count_at + 3] = 0xFF;
  FrameAssembler assembler;
  std::vector<WireMessage> out;
  EXPECT_FALSE(assembler.feed(bytes.data(), bytes.size(), &out).ok());
  EXPECT_TRUE(assembler.poisoned());
}

TEST(WireCodec, TrailingPayloadBytesReject) {
  // Extend a bye frame's payload by one byte (and fix the length): decode
  // must notice the unconsumed remainder instead of ignoring it.
  std::vector<std::uint8_t> bytes;
  net::encode_bye_frame(bytes);
  bytes.push_back(0xAB);
  bytes[11] = 1;  // length 0 -> 1
  FrameAssembler assembler;
  std::vector<WireMessage> out;
  EXPECT_FALSE(assembler.feed(bytes.data(), bytes.size(), &out).ok());
}

TEST(WireCodec, SingleByteMutationsNeverCrash) {
  // Deterministic mutation fuzz: every byte of every corpus frame, flipped
  // to a handful of values, fed to a fresh assembler. Any outcome is
  // acceptable except UB — decode succeeds (mutation hit a don't-care or
  // stayed in-domain) or errors cleanly. ASan+UBSan in CI make this sharp.
  for (const auto& [name, frame] : golden::wire_frame_corpus()) {
    for (std::size_t at = 0; at < frame.size(); ++at) {
      for (std::uint8_t value : {std::uint8_t{0x00}, std::uint8_t{0xFF},
                                 std::uint8_t{0x01}, std::uint8_t{0x80}}) {
        if (frame[at] == value) continue;
        auto copy = frame;
        copy[at] = value;
        FrameAssembler assembler;
        std::vector<WireMessage> out;
        (void)assembler.feed(copy.data(), copy.size(), &out);
      }
    }
    (void)name;
  }
}

TEST(WireCodec, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(300));
    std::vector<std::uint8_t> junk(n);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    // Half the trials lead with a valid magic so parsing goes deeper.
    if (trial % 2 == 0 && n >= 4) {
      junk[0] = 0x5A;
      junk[1] = 0x4E;
      junk[2] = 0x54;
      junk[3] = 0x48;
    }
    FrameAssembler assembler;
    std::vector<WireMessage> out;
    (void)assembler.feed(junk.data(), junk.size(), &out);
  }
}

}  // namespace
}  // namespace zenith
