file(REMOVE_RECURSE
  "CMakeFiles/core_failure_test.dir/core_failure_test.cc.o"
  "CMakeFiles/core_failure_test.dir/core_failure_test.cc.o.d"
  "core_failure_test"
  "core_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
