# Empty compiler generated dependencies file for core_failure_test.
# This may be replaced when dependencies are built.
