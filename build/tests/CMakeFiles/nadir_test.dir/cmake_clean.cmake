file(REMOVE_RECURSE
  "CMakeFiles/nadir_test.dir/nadir_test.cc.o"
  "CMakeFiles/nadir_test.dir/nadir_test.cc.o.d"
  "nadir_test"
  "nadir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
