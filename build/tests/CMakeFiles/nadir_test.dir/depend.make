# Empty dependencies file for nadir_test.
# This may be replaced when dependencies are built.
