
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/zenith_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zenith_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pr/CMakeFiles/zenith_pr.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/zenith_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/nadir/CMakeFiles/zenith_nadir.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/zenith_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/zenith_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/to/CMakeFiles/zenith_to.dir/DependInfo.cmake"
  "/root/repo/build/src/nib/CMakeFiles/zenith_nib.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/zenith_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zenith_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/zenith_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/zenith_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zenith_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
