file(REMOVE_RECURSE
  "CMakeFiles/to_test.dir/to_test.cc.o"
  "CMakeFiles/to_test.dir/to_test.cc.o.d"
  "to_test"
  "to_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
