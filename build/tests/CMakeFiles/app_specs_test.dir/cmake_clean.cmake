file(REMOVE_RECURSE
  "CMakeFiles/app_specs_test.dir/app_specs_test.cc.o"
  "CMakeFiles/app_specs_test.dir/app_specs_test.cc.o.d"
  "app_specs_test"
  "app_specs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_specs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
