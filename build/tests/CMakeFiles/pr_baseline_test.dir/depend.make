# Empty dependencies file for pr_baseline_test.
# This may be replaced when dependencies are built.
