file(REMOVE_RECURSE
  "CMakeFiles/pr_baseline_test.dir/pr_baseline_test.cc.o"
  "CMakeFiles/pr_baseline_test.dir/pr_baseline_test.cc.o.d"
  "pr_baseline_test"
  "pr_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pr_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
