file(REMOVE_RECURSE
  "CMakeFiles/nib_test.dir/nib_test.cc.o"
  "CMakeFiles/nib_test.dir/nib_test.cc.o.d"
  "nib_test"
  "nib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
