# Empty dependencies file for nib_test.
# This may be replaced when dependencies are built.
