# Empty compiler generated dependencies file for bench_fig16_drain_undrain.
# This may be replaced when dependencies are built.
