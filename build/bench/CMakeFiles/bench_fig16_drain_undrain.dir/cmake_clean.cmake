file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_drain_undrain.dir/bench_fig16_drain_undrain.cc.o"
  "CMakeFiles/bench_fig16_drain_undrain.dir/bench_fig16_drain_undrain.cc.o.d"
  "bench_fig16_drain_undrain"
  "bench_fig16_drain_undrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_drain_undrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
