# Empty dependencies file for bench_figA2_odl.
# This may be replaced when dependencies are built.
