file(REMOVE_RECURSE
  "CMakeFiles/bench_figA2_odl.dir/bench_figA2_odl.cc.o"
  "CMakeFiles/bench_figA2_odl.dir/bench_figA2_odl.cc.o.d"
  "bench_figA2_odl"
  "bench_figA2_odl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA2_odl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
