# Empty compiler generated dependencies file for bench_sec63_app_verification.
# This may be replaced when dependencies are built.
