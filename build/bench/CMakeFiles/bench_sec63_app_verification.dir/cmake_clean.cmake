file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_app_verification.dir/bench_sec63_app_verification.cc.o"
  "CMakeFiles/bench_sec63_app_verification.dir/bench_sec63_app_verification.cc.o.d"
  "bench_sec63_app_verification"
  "bench_sec63_app_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_app_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
