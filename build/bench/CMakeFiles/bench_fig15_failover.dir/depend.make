# Empty dependencies file for bench_fig15_failover.
# This may be replaced when dependencies are built.
