file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_failover.dir/bench_fig15_failover.cc.o"
  "CMakeFiles/bench_fig15_failover.dir/bench_fig15_failover.cc.o.d"
  "bench_fig15_failover"
  "bench_fig15_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
