# Empty compiler generated dependencies file for bench_tab04_mc_optimizations.
# This may be replaced when dependencies are built.
