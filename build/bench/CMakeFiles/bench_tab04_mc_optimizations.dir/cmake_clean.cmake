file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_mc_optimizations.dir/bench_tab04_mc_optimizations.cc.o"
  "CMakeFiles/bench_tab04_mc_optimizations.dir/bench_tab04_mc_optimizations.cc.o.d"
  "bench_tab04_mc_optimizations"
  "bench_tab04_mc_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_mc_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
