file(REMOVE_RECURSE
  "CMakeFiles/bench_figA6_trace_lengths.dir/bench_figA6_trace_lengths.cc.o"
  "CMakeFiles/bench_figA6_trace_lengths.dir/bench_figA6_trace_lengths.cc.o.d"
  "bench_figA6_trace_lengths"
  "bench_figA6_trace_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA6_trace_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
