# Empty dependencies file for bench_figA6_trace_lengths.
# This may be replaced when dependencies are built.
