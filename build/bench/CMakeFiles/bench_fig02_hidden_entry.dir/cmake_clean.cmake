file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_hidden_entry.dir/bench_fig02_hidden_entry.cc.o"
  "CMakeFiles/bench_fig02_hidden_entry.dir/bench_fig02_hidden_entry.cc.o.d"
  "bench_fig02_hidden_entry"
  "bench_fig02_hidden_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_hidden_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
