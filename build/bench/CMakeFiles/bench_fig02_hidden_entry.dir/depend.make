# Empty dependencies file for bench_fig02_hidden_entry.
# This may be replaced when dependencies are built.
