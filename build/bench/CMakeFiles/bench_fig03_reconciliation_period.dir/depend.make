# Empty dependencies file for bench_fig03_reconciliation_period.
# This may be replaced when dependencies are built.
