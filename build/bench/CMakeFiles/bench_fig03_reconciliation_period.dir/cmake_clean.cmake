file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_reconciliation_period.dir/bench_fig03_reconciliation_period.cc.o"
  "CMakeFiles/bench_fig03_reconciliation_period.dir/bench_fig03_reconciliation_period.cc.o.d"
  "bench_fig03_reconciliation_period"
  "bench_fig03_reconciliation_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_reconciliation_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
