# Empty dependencies file for bench_fig14_te_throughput.
# This may be replaced when dependencies are built.
