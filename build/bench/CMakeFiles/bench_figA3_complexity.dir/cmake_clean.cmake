file(REMOVE_RECURSE
  "CMakeFiles/bench_figA3_complexity.dir/bench_figA3_complexity.cc.o"
  "CMakeFiles/bench_figA3_complexity.dir/bench_figA3_complexity.cc.o.d"
  "bench_figA3_complexity"
  "bench_figA3_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA3_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
