# Empty compiler generated dependencies file for bench_fig10_trace_replay.
# This may be replaced when dependencies are built.
