file(REMOVE_RECURSE
  "CMakeFiles/drain_b4.dir/drain_b4.cc.o"
  "CMakeFiles/drain_b4.dir/drain_b4.cc.o.d"
  "drain_b4"
  "drain_b4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drain_b4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
