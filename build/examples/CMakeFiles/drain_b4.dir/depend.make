# Empty dependencies file for drain_b4.
# This may be replaced when dependencies are built.
