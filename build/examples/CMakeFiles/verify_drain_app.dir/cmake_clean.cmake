file(REMOVE_RECURSE
  "CMakeFiles/verify_drain_app.dir/verify_drain_app.cc.o"
  "CMakeFiles/verify_drain_app.dir/verify_drain_app.cc.o.d"
  "verify_drain_app"
  "verify_drain_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_drain_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
