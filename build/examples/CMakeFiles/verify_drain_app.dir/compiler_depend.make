# Empty compiler generated dependencies file for verify_drain_app.
# This may be replaced when dependencies are built.
