file(REMOVE_RECURSE
  "CMakeFiles/zenith_nib.dir/nib.cc.o"
  "CMakeFiles/zenith_nib.dir/nib.cc.o.d"
  "libzenith_nib.a"
  "libzenith_nib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_nib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
