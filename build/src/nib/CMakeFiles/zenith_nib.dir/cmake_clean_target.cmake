file(REMOVE_RECURSE
  "libzenith_nib.a"
)
