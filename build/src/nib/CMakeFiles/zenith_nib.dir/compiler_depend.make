# Empty compiler generated dependencies file for zenith_nib.
# This may be replaced when dependencies are built.
