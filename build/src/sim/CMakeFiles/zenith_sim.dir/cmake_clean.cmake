file(REMOVE_RECURSE
  "CMakeFiles/zenith_sim.dir/simulator.cc.o"
  "CMakeFiles/zenith_sim.dir/simulator.cc.o.d"
  "libzenith_sim.a"
  "libzenith_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
