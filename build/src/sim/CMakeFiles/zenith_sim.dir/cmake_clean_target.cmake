file(REMOVE_RECURSE
  "libzenith_sim.a"
)
