# Empty dependencies file for zenith_sim.
# This may be replaced when dependencies are built.
