# Empty dependencies file for zenith_common.
# This may be replaced when dependencies are built.
