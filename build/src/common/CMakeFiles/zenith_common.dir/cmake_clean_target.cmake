file(REMOVE_RECURSE
  "libzenith_common.a"
)
