file(REMOVE_RECURSE
  "CMakeFiles/zenith_common.dir/logging.cc.o"
  "CMakeFiles/zenith_common.dir/logging.cc.o.d"
  "CMakeFiles/zenith_common.dir/stats.cc.o"
  "CMakeFiles/zenith_common.dir/stats.cc.o.d"
  "CMakeFiles/zenith_common.dir/strings.cc.o"
  "CMakeFiles/zenith_common.dir/strings.cc.o.d"
  "libzenith_common.a"
  "libzenith_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
