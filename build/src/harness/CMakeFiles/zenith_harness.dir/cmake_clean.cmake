file(REMOVE_RECURSE
  "CMakeFiles/zenith_harness.dir/experiment.cc.o"
  "CMakeFiles/zenith_harness.dir/experiment.cc.o.d"
  "CMakeFiles/zenith_harness.dir/workload.cc.o"
  "CMakeFiles/zenith_harness.dir/workload.cc.o.d"
  "libzenith_harness.a"
  "libzenith_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
