# Empty compiler generated dependencies file for zenith_harness.
# This may be replaced when dependencies are built.
