file(REMOVE_RECURSE
  "libzenith_harness.a"
)
