file(REMOVE_RECURSE
  "libzenith_to.a"
)
