file(REMOVE_RECURSE
  "CMakeFiles/zenith_to.dir/library.cc.o"
  "CMakeFiles/zenith_to.dir/library.cc.o.d"
  "CMakeFiles/zenith_to.dir/orchestrator.cc.o"
  "CMakeFiles/zenith_to.dir/orchestrator.cc.o.d"
  "CMakeFiles/zenith_to.dir/trace.cc.o"
  "CMakeFiles/zenith_to.dir/trace.cc.o.d"
  "libzenith_to.a"
  "libzenith_to.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_to.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
