# Empty dependencies file for zenith_to.
# This may be replaced when dependencies are built.
