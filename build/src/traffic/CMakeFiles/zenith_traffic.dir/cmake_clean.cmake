file(REMOVE_RECURSE
  "CMakeFiles/zenith_traffic.dir/traffic.cc.o"
  "CMakeFiles/zenith_traffic.dir/traffic.cc.o.d"
  "libzenith_traffic.a"
  "libzenith_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
