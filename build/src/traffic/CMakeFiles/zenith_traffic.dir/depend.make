# Empty dependencies file for zenith_traffic.
# This may be replaced when dependencies are built.
