file(REMOVE_RECURSE
  "libzenith_traffic.a"
)
