
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nadir/interpreter.cc" "src/nadir/CMakeFiles/zenith_nadir.dir/interpreter.cc.o" "gcc" "src/nadir/CMakeFiles/zenith_nadir.dir/interpreter.cc.o.d"
  "/root/repo/src/nadir/metrics.cc" "src/nadir/CMakeFiles/zenith_nadir.dir/metrics.cc.o" "gcc" "src/nadir/CMakeFiles/zenith_nadir.dir/metrics.cc.o.d"
  "/root/repo/src/nadir/spec.cc" "src/nadir/CMakeFiles/zenith_nadir.dir/spec.cc.o" "gcc" "src/nadir/CMakeFiles/zenith_nadir.dir/spec.cc.o.d"
  "/root/repo/src/nadir/type.cc" "src/nadir/CMakeFiles/zenith_nadir.dir/type.cc.o" "gcc" "src/nadir/CMakeFiles/zenith_nadir.dir/type.cc.o.d"
  "/root/repo/src/nadir/value.cc" "src/nadir/CMakeFiles/zenith_nadir.dir/value.cc.o" "gcc" "src/nadir/CMakeFiles/zenith_nadir.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zenith_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
