file(REMOVE_RECURSE
  "CMakeFiles/zenith_nadir.dir/interpreter.cc.o"
  "CMakeFiles/zenith_nadir.dir/interpreter.cc.o.d"
  "CMakeFiles/zenith_nadir.dir/metrics.cc.o"
  "CMakeFiles/zenith_nadir.dir/metrics.cc.o.d"
  "CMakeFiles/zenith_nadir.dir/spec.cc.o"
  "CMakeFiles/zenith_nadir.dir/spec.cc.o.d"
  "CMakeFiles/zenith_nadir.dir/type.cc.o"
  "CMakeFiles/zenith_nadir.dir/type.cc.o.d"
  "CMakeFiles/zenith_nadir.dir/value.cc.o"
  "CMakeFiles/zenith_nadir.dir/value.cc.o.d"
  "libzenith_nadir.a"
  "libzenith_nadir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_nadir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
