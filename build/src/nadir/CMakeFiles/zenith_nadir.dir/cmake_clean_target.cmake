file(REMOVE_RECURSE
  "libzenith_nadir.a"
)
