# Empty compiler generated dependencies file for zenith_nadir.
# This may be replaced when dependencies are built.
