file(REMOVE_RECURSE
  "CMakeFiles/zenith_topo.dir/generators.cc.o"
  "CMakeFiles/zenith_topo.dir/generators.cc.o.d"
  "CMakeFiles/zenith_topo.dir/paths.cc.o"
  "CMakeFiles/zenith_topo.dir/paths.cc.o.d"
  "CMakeFiles/zenith_topo.dir/topology.cc.o"
  "CMakeFiles/zenith_topo.dir/topology.cc.o.d"
  "libzenith_topo.a"
  "libzenith_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
