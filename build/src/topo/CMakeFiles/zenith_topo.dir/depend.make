# Empty dependencies file for zenith_topo.
# This may be replaced when dependencies are built.
