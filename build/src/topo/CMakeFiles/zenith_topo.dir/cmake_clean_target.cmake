file(REMOVE_RECURSE
  "libzenith_topo.a"
)
