file(REMOVE_RECURSE
  "libzenith_dag.a"
)
