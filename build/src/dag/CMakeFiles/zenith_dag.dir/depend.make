# Empty dependencies file for zenith_dag.
# This may be replaced when dependencies are built.
