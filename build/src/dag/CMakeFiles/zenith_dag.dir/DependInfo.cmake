
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/compiler.cc" "src/dag/CMakeFiles/zenith_dag.dir/compiler.cc.o" "gcc" "src/dag/CMakeFiles/zenith_dag.dir/compiler.cc.o.d"
  "/root/repo/src/dag/dag.cc" "src/dag/CMakeFiles/zenith_dag.dir/dag.cc.o" "gcc" "src/dag/CMakeFiles/zenith_dag.dir/dag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zenith_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/zenith_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
