file(REMOVE_RECURSE
  "CMakeFiles/zenith_dag.dir/compiler.cc.o"
  "CMakeFiles/zenith_dag.dir/compiler.cc.o.d"
  "CMakeFiles/zenith_dag.dir/dag.cc.o"
  "CMakeFiles/zenith_dag.dir/dag.cc.o.d"
  "libzenith_dag.a"
  "libzenith_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
