file(REMOVE_RECURSE
  "CMakeFiles/zenith_apps.dir/abstract_app.cc.o"
  "CMakeFiles/zenith_apps.dir/abstract_app.cc.o.d"
  "CMakeFiles/zenith_apps.dir/app_specs.cc.o"
  "CMakeFiles/zenith_apps.dir/app_specs.cc.o.d"
  "CMakeFiles/zenith_apps.dir/drain_app.cc.o"
  "CMakeFiles/zenith_apps.dir/drain_app.cc.o.d"
  "CMakeFiles/zenith_apps.dir/drain_spec.cc.o"
  "CMakeFiles/zenith_apps.dir/drain_spec.cc.o.d"
  "CMakeFiles/zenith_apps.dir/failover_app.cc.o"
  "CMakeFiles/zenith_apps.dir/failover_app.cc.o.d"
  "CMakeFiles/zenith_apps.dir/generated_drain_app.cc.o"
  "CMakeFiles/zenith_apps.dir/generated_drain_app.cc.o.d"
  "CMakeFiles/zenith_apps.dir/te_app.cc.o"
  "CMakeFiles/zenith_apps.dir/te_app.cc.o.d"
  "libzenith_apps.a"
  "libzenith_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
