file(REMOVE_RECURSE
  "libzenith_apps.a"
)
