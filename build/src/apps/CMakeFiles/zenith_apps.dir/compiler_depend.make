# Empty compiler generated dependencies file for zenith_apps.
# This may be replaced when dependencies are built.
