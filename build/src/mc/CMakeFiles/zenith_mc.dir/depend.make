# Empty dependencies file for zenith_mc.
# This may be replaced when dependencies are built.
