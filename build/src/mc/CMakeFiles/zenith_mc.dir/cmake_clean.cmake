file(REMOVE_RECURSE
  "CMakeFiles/zenith_mc.dir/checker.cc.o"
  "CMakeFiles/zenith_mc.dir/checker.cc.o.d"
  "CMakeFiles/zenith_mc.dir/core_spec.cc.o"
  "CMakeFiles/zenith_mc.dir/core_spec.cc.o.d"
  "CMakeFiles/zenith_mc.dir/nadir_explorer.cc.o"
  "CMakeFiles/zenith_mc.dir/nadir_explorer.cc.o.d"
  "CMakeFiles/zenith_mc.dir/pipeline_model.cc.o"
  "CMakeFiles/zenith_mc.dir/pipeline_model.cc.o.d"
  "libzenith_mc.a"
  "libzenith_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
