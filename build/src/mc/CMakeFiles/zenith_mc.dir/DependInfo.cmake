
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/checker.cc" "src/mc/CMakeFiles/zenith_mc.dir/checker.cc.o" "gcc" "src/mc/CMakeFiles/zenith_mc.dir/checker.cc.o.d"
  "/root/repo/src/mc/core_spec.cc" "src/mc/CMakeFiles/zenith_mc.dir/core_spec.cc.o" "gcc" "src/mc/CMakeFiles/zenith_mc.dir/core_spec.cc.o.d"
  "/root/repo/src/mc/nadir_explorer.cc" "src/mc/CMakeFiles/zenith_mc.dir/nadir_explorer.cc.o" "gcc" "src/mc/CMakeFiles/zenith_mc.dir/nadir_explorer.cc.o.d"
  "/root/repo/src/mc/pipeline_model.cc" "src/mc/CMakeFiles/zenith_mc.dir/pipeline_model.cc.o" "gcc" "src/mc/CMakeFiles/zenith_mc.dir/pipeline_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zenith_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zenith_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nadir/CMakeFiles/zenith_nadir.dir/DependInfo.cmake"
  "/root/repo/build/src/nib/CMakeFiles/zenith_nib.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/zenith_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zenith_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/zenith_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/zenith_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
