file(REMOVE_RECURSE
  "libzenith_mc.a"
)
