file(REMOVE_RECURSE
  "libzenith_dataplane.a"
)
