# Empty dependencies file for zenith_dataplane.
# This may be replaced when dependencies are built.
