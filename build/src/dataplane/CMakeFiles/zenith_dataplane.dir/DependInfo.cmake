
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/abstract_switch.cc" "src/dataplane/CMakeFiles/zenith_dataplane.dir/abstract_switch.cc.o" "gcc" "src/dataplane/CMakeFiles/zenith_dataplane.dir/abstract_switch.cc.o.d"
  "/root/repo/src/dataplane/fabric.cc" "src/dataplane/CMakeFiles/zenith_dataplane.dir/fabric.cc.o" "gcc" "src/dataplane/CMakeFiles/zenith_dataplane.dir/fabric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zenith_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zenith_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/zenith_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/zenith_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
