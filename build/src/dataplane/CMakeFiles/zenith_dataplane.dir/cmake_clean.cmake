file(REMOVE_RECURSE
  "CMakeFiles/zenith_dataplane.dir/abstract_switch.cc.o"
  "CMakeFiles/zenith_dataplane.dir/abstract_switch.cc.o.d"
  "CMakeFiles/zenith_dataplane.dir/fabric.cc.o"
  "CMakeFiles/zenith_dataplane.dir/fabric.cc.o.d"
  "libzenith_dataplane.a"
  "libzenith_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
