
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/component.cc" "src/core/CMakeFiles/zenith_core.dir/component.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/component.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/zenith_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/controller.cc.o.d"
  "/root/repo/src/core/dag_scheduler.cc" "src/core/CMakeFiles/zenith_core.dir/dag_scheduler.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/dag_scheduler.cc.o.d"
  "/root/repo/src/core/failover.cc" "src/core/CMakeFiles/zenith_core.dir/failover.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/failover.cc.o.d"
  "/root/repo/src/core/monitoring_server.cc" "src/core/CMakeFiles/zenith_core.dir/monitoring_server.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/monitoring_server.cc.o.d"
  "/root/repo/src/core/nib_event_handler.cc" "src/core/CMakeFiles/zenith_core.dir/nib_event_handler.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/nib_event_handler.cc.o.d"
  "/root/repo/src/core/properties.cc" "src/core/CMakeFiles/zenith_core.dir/properties.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/properties.cc.o.d"
  "/root/repo/src/core/sequencer.cc" "src/core/CMakeFiles/zenith_core.dir/sequencer.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/sequencer.cc.o.d"
  "/root/repo/src/core/topo_event_handler.cc" "src/core/CMakeFiles/zenith_core.dir/topo_event_handler.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/topo_event_handler.cc.o.d"
  "/root/repo/src/core/watchdog.cc" "src/core/CMakeFiles/zenith_core.dir/watchdog.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/watchdog.cc.o.d"
  "/root/repo/src/core/worker_pool.cc" "src/core/CMakeFiles/zenith_core.dir/worker_pool.cc.o" "gcc" "src/core/CMakeFiles/zenith_core.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zenith_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zenith_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/zenith_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/nib/CMakeFiles/zenith_nib.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/zenith_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/zenith_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
