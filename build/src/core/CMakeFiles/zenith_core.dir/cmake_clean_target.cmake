file(REMOVE_RECURSE
  "libzenith_core.a"
)
