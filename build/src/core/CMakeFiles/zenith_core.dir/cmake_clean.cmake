file(REMOVE_RECURSE
  "CMakeFiles/zenith_core.dir/component.cc.o"
  "CMakeFiles/zenith_core.dir/component.cc.o.d"
  "CMakeFiles/zenith_core.dir/controller.cc.o"
  "CMakeFiles/zenith_core.dir/controller.cc.o.d"
  "CMakeFiles/zenith_core.dir/dag_scheduler.cc.o"
  "CMakeFiles/zenith_core.dir/dag_scheduler.cc.o.d"
  "CMakeFiles/zenith_core.dir/failover.cc.o"
  "CMakeFiles/zenith_core.dir/failover.cc.o.d"
  "CMakeFiles/zenith_core.dir/monitoring_server.cc.o"
  "CMakeFiles/zenith_core.dir/monitoring_server.cc.o.d"
  "CMakeFiles/zenith_core.dir/nib_event_handler.cc.o"
  "CMakeFiles/zenith_core.dir/nib_event_handler.cc.o.d"
  "CMakeFiles/zenith_core.dir/properties.cc.o"
  "CMakeFiles/zenith_core.dir/properties.cc.o.d"
  "CMakeFiles/zenith_core.dir/sequencer.cc.o"
  "CMakeFiles/zenith_core.dir/sequencer.cc.o.d"
  "CMakeFiles/zenith_core.dir/topo_event_handler.cc.o"
  "CMakeFiles/zenith_core.dir/topo_event_handler.cc.o.d"
  "CMakeFiles/zenith_core.dir/watchdog.cc.o"
  "CMakeFiles/zenith_core.dir/watchdog.cc.o.d"
  "CMakeFiles/zenith_core.dir/worker_pool.cc.o"
  "CMakeFiles/zenith_core.dir/worker_pool.cc.o.d"
  "libzenith_core.a"
  "libzenith_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
