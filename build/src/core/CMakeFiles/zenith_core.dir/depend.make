# Empty dependencies file for zenith_core.
# This may be replaced when dependencies are built.
