# Empty compiler generated dependencies file for zenith_pr.
# This may be replaced when dependencies are built.
