file(REMOVE_RECURSE
  "libzenith_pr.a"
)
