file(REMOVE_RECURSE
  "CMakeFiles/zenith_pr.dir/pr_controller.cc.o"
  "CMakeFiles/zenith_pr.dir/pr_controller.cc.o.d"
  "CMakeFiles/zenith_pr.dir/reconciler.cc.o"
  "CMakeFiles/zenith_pr.dir/reconciler.cc.o.d"
  "libzenith_pr.a"
  "libzenith_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zenith_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
