// Figure 11: convergence vs topology size (KDL subgraphs), no failures.
// ZENITH's median and p99 stay flat; PR's p99 grows as reconciliation work
// scales with the network, and beyond ~500 nodes PR stops converging within
// the 30s reconciliation interval. PR-NoReconcile confirms reconciliation
// is the cause (flat tail, but that controller is not failure-robust).
#include "bench_util.h"
#include "chaos/parallel.h"
#include "topo/generators.h"

namespace zenith {
namespace {

// Per-switch transit state grows with the WAN's size until the table is
// full (the 4K-entry scale of Figure 4).
std::size_t entries_per_switch(std::size_t n) {
  return std::min<std::size_t>(8 * n, 4000);
}

benchutil::TrialSeries run_size(ControllerKind kind, std::size_t n,
                                std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  config.scoped_convergence = true;
  config.poll_interval = millis(5);
  Experiment exp(gen::kdl_like(n, 42), config);
  exp.start();
  preload_background_entries(exp, entries_per_switch(n));
  Workload workload(&exp, seed * 13 + 7);
  Dag initial = workload.initial_dag(30);
  benchutil::TrialSeries series;
  if (!exp.install_and_wait(std::move(initial), seconds(120)).has_value()) {
    series.add(std::nullopt);
    return series;
  }
  // Repeatedly install DAGs touching ~5 switches each for 5 minutes,
  // scheduling the next only after the previous converged (§6.1).
  SimTime horizon = exp.sim().now() + seconds(300);
  while (exp.sim().now() < horizon) {
    auto dag = workload.next_update_dag();
    if (!dag.has_value()) break;
    auto latency = exp.install_and_wait(std::move(*dag), seconds(30));
    series.add(latency);
    if (!latency.has_value()) break;  // fails to converge within the interval
  }
  return series;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 11: convergence vs topology size (KDL subgraphs, no failures)",
      "ZENITH median/p99 flat with size; PR p99 grows (reconciliation "
      "interference) and PR cannot converge within the 30s interval beyond "
      "~500 nodes; disabling reconciliation flattens PR's tail");

  const std::size_t sizes[] = {100, 200, 350, 500, 750};
  const ControllerKind kinds[] = {ControllerKind::kZenithNR,
                                  ControllerKind::kPr,
                                  ControllerKind::kPrNoReconcile};

  // Each (size, system) cell is an independent deterministic experiment;
  // the grid fans out over the bench thread pool and the table is printed
  // after the barrier, in grid order — output is identical to a serial run.
  struct Cell {
    std::size_t n;
    ControllerKind kind;
  };
  std::vector<Cell> cells;
  for (std::size_t n : sizes) {
    for (ControllerKind kind : kinds) cells.push_back({n, kind});
  }
  std::vector<benchutil::TrialSeries> results(cells.size());
  chaos::parallel_for(cells.size(), chaos::default_bench_threads(),
                      [&](std::size_t i) {
                        results[i] = run_size(cells[i].kind, cells[i].n, 21);
                      });

  TablePrinter table(
      {"nodes", "system", "median(s)", "p99(s)", "DNF", "samples"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const benchutil::TrialSeries& series = results[i];
    table.add_row({std::to_string(cells[i].n), to_string(cells[i].kind),
                   series.median(), series.p99(), std::to_string(series.dnf),
                   std::to_string(series.trials)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nshape check: Zenith-NR and PR-NoRecon stay flat at every size "
      "(medians comparable to PR, as in the paper); PR's p99 grows "
      "monotonically with n, and at >=500 nodes PR's reconciliation work "
      "exceeds the 30s interval — its NIB saturates and the completed-update "
      "count (samples column) collapses ~7x. Our PR degrades gracefully "
      "under saturation where the paper's hard-fails; see EXPERIMENTS.md.\n");
  return 0;
}
