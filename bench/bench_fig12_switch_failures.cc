// Figure 12: random transient switch failures on a 300-node KDL subgraph.
// (a) single failures: medians comparable, ZENITH's p99 ~4.1x lower;
// (b) concurrent failures (inter-arrival < convergence time): PR and PRUp
// degrade at median and tail, PRUp helping somewhat.
#include "bench_util.h"
#include "chaos/parallel.h"
#include "topo/generators.h"

namespace zenith {
namespace {

constexpr std::size_t kNodes = 300;

benchutil::TrialSeries run(ControllerKind kind, bool concurrent,
                           std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  config.scoped_convergence = true;
  config.poll_interval = millis(5);
  Experiment exp(gen::kdl_like(kNodes, 42), config);
  exp.start();
  Workload workload(&exp, seed * 3 + 5);
  Dag initial = workload.initial_dag(60);
  benchutil::TrialSeries series;
  if (!exp.install_and_wait(std::move(initial), seconds(120)).has_value()) {
    series.add(std::nullopt);
    return series;
  }

  // Random transient failures. In (b) the inter-arrival is shorter than
  // typical convergence, so failures overlap handling of earlier ones.
  FailurePlanConfig plan;
  plan.mean_gap = concurrent ? millis(400) : seconds(3);
  plan.down_time = concurrent ? millis(600) : seconds(1);
  plan.max_concurrent = concurrent ? 3 : 1;
  plan.mode = FailureMode::kCompleteTransient;
  plan.horizon = seconds(240);
  auto injected = schedule_switch_failures(exp, plan, seed * 11 + 1);

  // After each failure's recovery, the app submits a repair DAG; we measure
  // its convergence (the controller must also digest the failure/recovery
  // churn, which is where PR's optimistic recovery bites).
  for (auto [when, sw] : injected) {
    exp.run_until([&] { return exp.sim().now() >= when + plan.down_time; },
                  seconds(30));
    auto repair = workload.repair_dag({sw});
    if (!repair.has_value()) continue;
    series.add(exp.install_and_wait(std::move(*repair), seconds(90)));
  }
  return series;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 12: random transient switch failures, 300-node topology",
      "(a) single failures: medians comparable, ZENITH p99 ~4.1x lower; "
      "(b) concurrent failures: PR median 2.5x / p99 2.8x worse, PRUp "
      "median 1.5x / p99 1.9x worse than ZENITH");

  const ControllerKind kinds[] = {ControllerKind::kZenithNR,
                                  ControllerKind::kPr, ControllerKind::kPrUp};
  // The 2x3 (panel, system) grid runs on the bench thread pool — every cell
  // is an independent deterministic experiment — and prints after the
  // barrier in grid order, so the tables match a serial run exactly.
  struct Cell {
    bool concurrent;
    ControllerKind kind;
  };
  std::vector<Cell> cells;
  for (bool concurrent : {false, true}) {
    for (ControllerKind kind : kinds) cells.push_back({concurrent, kind});
  }
  std::vector<benchutil::TrialSeries> results(cells.size());
  chaos::parallel_for(cells.size(), chaos::default_bench_threads(),
                      [&](std::size_t i) {
                        results[i] = run(cells[i].kind, cells[i].concurrent, 31);
                      });

  std::size_t cell = 0;
  for (bool concurrent : {false, true}) {
    std::printf("\n(%s) %s failures:\n", concurrent ? "b" : "a",
                concurrent ? "concurrent" : "single");
    TablePrinter table({"system", "median(s)", "p99(s)", "DNF", "samples"});
    double zenith_median = 0, zenith_p99 = 0;
    for (ControllerKind kind : kinds) {
      benchutil::TrialSeries series = results[cell++];
      if (kind == ControllerKind::kZenithNR && !series.converged.empty()) {
        zenith_median = series.converged.median();
        zenith_p99 = series.converged.p99();
      }
      std::string note;
      if (!series.converged.empty() && zenith_median > 0 &&
          kind != ControllerKind::kZenithNR) {
        note = " (median " +
               TablePrinter::fmt(series.converged.median() / zenith_median, 1) +
               "x, p99 " +
               TablePrinter::fmt(series.converged.p99() / zenith_p99, 1) +
               "x vs ZENITH)";
      }
      table.add_row({to_string(kind) + note, series.median(), series.p99(),
                     std::to_string(series.dnf),
                     std::to_string(series.trials)});
    }
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
