// Wire-transport loopback throughput: the zenith_controllerd/zenith_switchd
// pair collapsed into one process (controller on the main thread, a
// SwitchBridge served from a background thread) connected through a real
// kernel socket — once Unix-domain, once TCP loopback. Reports wall-clock
// OPs/sec for the standard wire scenario plus frame/byte/stall counters.
//
// Unlike the sim benches this measures wall time, so absolute numbers are
// host-dependent and advisory; the deterministic gate is
// `fingerprint_mismatches` — both socket arms and the in-process sim bus
// must finish on the same NIB fingerprint, at any budget.
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/socket_transport.h"
#include "net/switch_bridge.h"
#include "netd/wire_scenario.h"
#include "obs/bench_results.h"

namespace zenith {
namespace {

struct ArmResult {
  std::string label;
  netd::WireScenarioReport report;
  double wall_seconds = 0;
  net::ConnectionStats stats;
};

/// Accepts one connection and serves a SwitchBridge until the peer says Bye.
void serve_switchd(int listen_fd, Topology topo, std::uint64_t seed) {
  int fd = -1;
  for (int i = 0; i < 1000 && fd < 0; ++i) {
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    ::poll(&pfd, 1, 100);
    auto accepted = net::accept_on(listen_fd);
    if (!accepted.ok()) return;
    fd = accepted.value();
  }
  if (fd < 0) return;
  net::EventLoop loop;
  net::SwitchBridge bridge(std::move(topo), seed);
  bridge.attach(&loop, fd);
  while (bridge.peer_connected() && !bridge.peer_said_bye()) {
    auto polled = loop.poll(1);
    if (!polled.ok()) break;
    bridge.pump();
  }
  bridge.pump();
  bridge.send_bye_and_flush(/*timeout_ms=*/2000);
}

ArmResult run_arm(const std::string& label, const net::Endpoint& listen_ep,
                  const netd::WireScenarioConfig& config) {
  ArmResult arm;
  arm.label = label;
  std::uint16_t port = 0;
  auto listen_fd = net::listen_on(listen_ep, &port);
  if (!listen_fd.ok()) {
    arm.report.error = listen_ep.path + ": " + listen_fd.error().message;
    return arm;
  }
  net::Endpoint connect_ep = listen_ep;
  connect_ep.port = port;

  Topology topo = netd::wire_topology(config);
  std::thread server(serve_switchd, listen_fd.value(), topo, config.seed);

  net::EventLoop loop;
  auto fd = net::connect_with_retry(connect_ep, /*timeout_ms=*/5000);
  if (!fd.ok()) {
    arm.report.error = fd.error().message;
    server.join();
    return arm;
  }
  net::SocketTransport transport(&loop, fd.value());
  if (auto st = transport.handshake(config.seed, /*timeout_ms=*/5000);
      !st.ok()) {
    arm.report.error = st.error().message;
    server.join();
    return arm;
  }

  Simulator sim;
  ZenithController controller(&sim, &transport);
  controller.start();
  auto pump = [&] {
    (void)loop.poll(0);
    sim.run_until(sim.now() + micros(200));
  };
  auto aborted = [&] { return !transport.peer_connected(); };

  auto started = std::chrono::steady_clock::now();
  arm.report = netd::run_wire_scenario(config, controller, pump, aborted);
  arm.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  arm.stats = transport.stats();

  transport.send_bye_and_flush(/*timeout_ms=*/2000);
  for (int i = 0; i < 200 && !transport.peer_said_bye(); ++i) {
    auto polled = loop.poll(10);
    if (!polled.ok() || !transport.peer_connected()) break;
  }
  server.join();
  net::close_fd(listen_fd.value());
  return arm;
}

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::Options opts = benchutil::parse_options(argc, argv);

  netd::WireScenarioConfig config;
  config.target_ops = opts.quick ? 20000 : 100000;
  config.churn_updates = opts.quick ? 20 : 50;
  config.drain_rounds = 2;

  benchutil::banner(
      "Wire loopback throughput (controllerd<->switchd in one process)",
      "the process boundary must not change controller semantics; "
      "fingerprints stay bit-equal while OPs cross a real socket");

  net::Endpoint uds;
  uds.kind = net::Endpoint::Kind::kUds;
  uds.path = "/tmp/zenith_bench_wire_" + std::to_string(::getpid()) + ".sock";
  net::Endpoint tcp;
  tcp.kind = net::Endpoint::Kind::kTcp;
  tcp.port = 0;  // ephemeral

  ArmResult uds_arm = run_arm("uds", uds, config);
  ArmResult tcp_arm = run_arm("tcp", tcp, config);
  ::unlink(uds.path.c_str());

  netd::WireScenarioReport reference = run_wire_scenario_sim(config);

  std::uint64_t mismatches = 0;
  for (const ArmResult* arm : {&uds_arm, &tcp_arm}) {
    if (!arm->report.converged ||
        arm->report.fingerprint != reference.fingerprint) {
      ++mismatches;
    }
  }

  obs::BenchResult result("wire_loopback");
  std::printf("  %-4s %10s %8s %12s %12s %10s %7s\n", "arm", "ops", "wall_s",
              "ops/sec", "frames", "MiB_sent", "stalls");
  for (const ArmResult* arm : {&uds_arm, &tcp_arm}) {
    const auto& r = arm->report;
    double ops_per_sec =
        static_cast<double>(r.ops) /
        (arm->wall_seconds > 0 ? arm->wall_seconds : 1e-9);
    std::printf("  %-4s %10llu %8.2f %12.0f %12llu %10.1f %7llu%s\n",
                arm->label.c_str(), static_cast<unsigned long long>(r.ops),
                arm->wall_seconds, ops_per_sec,
                static_cast<unsigned long long>(arm->stats.frames_sent),
                static_cast<double>(arm->stats.bytes_sent) / (1 << 20),
                static_cast<unsigned long long>(arm->stats.stall_events),
                r.converged ? "" : (" FAILED: " + r.error).c_str());
    result.add(arm->label + ".ops_per_sec", ops_per_sec, "1/s");
    result.add(arm->label + ".wall_seconds", arm->wall_seconds, "s");
    result.add_count(arm->label + ".ops", r.ops);
    result.add_count(arm->label + ".dags", r.dags);
    result.add_count(arm->label + ".frames_sent", arm->stats.frames_sent);
    result.add_count(arm->label + ".frames_received",
                     arm->stats.frames_received);
    result.add_count(arm->label + ".bytes_sent", arm->stats.bytes_sent);
    result.add_count(arm->label + ".short_writes", arm->stats.short_writes);
    result.add_count(arm->label + ".stall_events", arm->stats.stall_events);
  }
  result.add_count("fingerprint_mismatches", mismatches);
  result.add_note("mode", opts.quick ? "quick" : "full");
  result.add_note("topology", "b4");
  std::printf("  fingerprint: sim=%016llx uds=%016llx tcp=%016llx -> %s\n",
              static_cast<unsigned long long>(reference.fingerprint),
              static_cast<unsigned long long>(uds_arm.report.fingerprint),
              static_cast<unsigned long long>(tcp_arm.report.fingerprint),
              mismatches == 0 ? "MATCH" : "MISMATCH");

  if (opts.json) {
    std::string path = result.write();
    std::printf("  wrote %s\n", path.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
