// Figure A.2: the Figure 14 scenario against an ODL-like controller, with a
// concurrent complete + partial-transient failure (§D.1). ODL's DE app
// fails to clean up state (the overlap race) and blackholes traffic until
// reconciliation; ZENITH — with failure detection slowed to match ODL's —
// still recovers as soon as its DAGs land.
#include "apps/te_app.h"
#include "bench_util.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct RunResult {
  TimeSeries throughput{millis(500)};
  double mean = 0;
  double recovered_at = -1;
};

RunResult run(ControllerKind kind) {
  ExperimentConfig config;
  config.seed = 3;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  // §D.1: "ZENITH's failure detection time is set to match that of ODL, so
  // it takes longer to recover than in Figure 14."
  config.fabric.failure_detection_delay = seconds(12);
  config.fabric.recovery_detection_delay = seconds(2);
  config.fabric.ctrl_to_sw = DelayModel{millis(300), millis(200)};
  config.fabric.sw_to_ctrl = DelayModel{millis(300), millis(200)};
  Experiment exp(gen::b4(), config);
  exp.start();

  TrafficModel traffic(&exp.fabric());
  apps::TrafficEngineeringApp te(&exp.controller(), &exp.topology(),
                                 &traffic);
  std::vector<Demand> demands{
      {FlowId(1), SwitchId(0), SwitchId(4), 80.0},   // primary 0-2-4
      {FlowId(2), SwitchId(3), SwitchId(6), 80.0},   // primary 3-4-6
  };
  DagId initial = te.install_initial_paths(demands);
  (void)exp.run_until(
      [&] { return exp.checker().converged_scoped(initial); }, seconds(10));

  RunResult result;
  bool failed = false;
  bool congestion_scan_done = false;
  double full_rate = traffic.total_throughput(demands);  // 160 Gbps
  for (SimTime t = 0; t < seconds(80); t += millis(500)) {
    if (!failed && exp.sim().now() >= seconds(8)) {
      Resolution r = traffic.resolve(demands[0]);
      SwitchId victim = r.path.size() > 2 ? r.path[1] : SwitchId(2);
      exp.fabric().inject_failure(victim, FailureMode::kCompletePermanent);
      // Concurrent partial-transient failure of another transit switch
      // (§D.1): it recovers 2s later but stresses the recovery pipeline.
      SwitchId second(5);
      if (second != victim && exp.fabric().alive(second)) {
        exp.fabric().inject_failure(second, FailureMode::kPartialTransient);
        exp.sim().schedule(seconds(2), [&exp, second] {
          exp.fabric().inject_recovery(second);
        });
      }
      // Local recovery onto the protection path 0-1-3-4 (congests 3-4).
      auto backup = shortest_path(exp.topology(), demands[0].src,
                                  demands[0].dst, {victim});
      if (backup.has_value() && backup->size() >= 2) {
        for (std::size_t h = 0; h + 1 < backup->size(); ++h) {
          Op backup_op;
          backup_op.id = exp.op_ids().next();
          backup_op.type = OpType::kInstallRule;
          backup_op.sw = (*backup)[h];
          backup_op.rule = FlowRule{demands[0].flow, (*backup)[h],
                                    demands[0].dst, (*backup)[h + 1], 5};
          exp.nib().preload_op(backup_op, OpStatus::kDone, /*in_view=*/true);
          exp.fabric().at((*backup)[h]).preload_entry(backup_op);
          te.note_local_recovery(demands[0].flow, backup_op, *backup);
        }
      }
      failed = true;
    }
    if (failed && !congestion_scan_done && te.repair_dags() > 0) {
      congestion_scan_done = te.trigger_congestion_scan();
    }
    double tput = traffic.total_throughput(demands);
    result.throughput.record(exp.sim().now(), tput);
    if (failed && result.recovered_at < 0 && tput >= full_rate * 0.95) {
      result.recovered_at = to_seconds(exp.sim().now());
    }
    exp.run_for(millis(500));
  }
  // Mean over the failure-affected window (t in [8s, 50s]), matching the
  // span the paper's figure covers.
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < result.throughput.size(); ++i) {
    SimTime when = result.throughput.time_at(i);
    if (when < seconds(8) || when > seconds(50)) continue;
    sum += result.throughput.value_at(i);
    ++count;
  }
  result.mean = sum / static_cast<double>(std::max<std::size_t>(count, 1));
  return result;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure A.2: ZENITH vs ODL-like controller, concurrent complete + "
      "partial failures (B4)",
      "ODL's DE app fails to clean up state and blackholes traffic until "
      "reconciliation; ZENITH (detection matched to ODL) recovers sooner; "
      "overall 1.47x ODL's throughput");

  RunResult zenith_run = run(ControllerKind::kZenithNR);
  RunResult odl_run = run(ControllerKind::kOdlLike);

  std::printf("\nthroughput timeline (Gbps; failures at t=8, detection "
              "~t=20):\n");
  std::printf("%8s %10s %10s\n", "t(s)", "ZENITH", "ODL-like");
  for (std::size_t i = 0; i < odl_run.throughput.size(); i += 2) {
    std::printf("%8.1f %10.1f %10.1f\n",
                to_seconds(odl_run.throughput.time_at(i)),
                i < zenith_run.throughput.size()
                    ? zenith_run.throughput.value_at(i)
                    : 0.0,
                odl_run.throughput.value_at(i));
  }
  std::printf("\nfull recovery: ZENITH t=%s, ODL-like t=%s\n",
              zenith_run.recovered_at < 0
                  ? "never (80s window)"
                  : TablePrinter::fmt(zenith_run.recovered_at, 1).c_str(),
              odl_run.recovered_at < 0
                  ? "never (80s window)"
                  : TablePrinter::fmt(odl_run.recovered_at, 1).c_str());
  std::printf("mean throughput ZENITH/ODL = %.2fx (paper: 1.47x)\n",
              zenith_run.mean / odl_run.mean);
  return 0;
}
