// Figure 13: random controller-component failures on a 300-node topology.
// Single failures: ZENITH median 1.9x and p99 3.4x lower than PR; with
// concurrent component failures: 2.0x median, 3.2x tail.
#include "bench_util.h"
#include "chaos/parallel.h"
#include "topo/generators.h"

namespace zenith {
namespace {

constexpr std::size_t kNodes = 300;

benchutil::TrialSeries run(ControllerKind kind, bool concurrent,
                           std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  config.scoped_convergence = true;
  config.poll_interval = millis(5);
  // Component processing windows comparable to the paper's (Python-based)
  // controller: random crashes then land inside in-progress work, which is
  // where PR's lost-event shortcuts bite.
  config.core.worker_service = micros(400);
  config.core.monitoring_service = micros(300);
  config.core.sequencer_service = micros(400);
  config.core.topo_handler_service = micros(400);
  Experiment exp(gen::kdl_like(kNodes, 42), config);
  exp.start();
  Workload workload(&exp, seed * 3 + 5);
  Dag initial = workload.initial_dag(40);
  benchutil::TrialSeries series;
  if (!exp.install_and_wait(std::move(initial), seconds(120)).has_value()) {
    series.add(std::nullopt);
    return series;
  }

  // Crash components at random while DAG installs are in flight; the
  // Watchdog restarts them. 60 installs, each with component churn.
  Rng rng(seed * 17 + 3);
  std::vector<Component*> components = exp.controller().components();
  for (int i = 0; i < 60; ++i) {
    auto dag = workload.next_update_dag();
    if (!dag.has_value()) continue;
    DagId id = dag->id();
    exp.order_checker().register_dag(*dag);
    exp.controller().submit_dag(std::move(*dag));
    // Crash 1 (or up to 3 when concurrent) random components mid-install.
    std::size_t crashes = concurrent ? 3 : 1;
    for (std::size_t c = 0; c < crashes; ++c) {
      exp.run_for(micros(400 + rng.next_below(4000)));
      components[rng.next_below(components.size())]->crash();
    }
    auto latency = exp.run_until(
        [&] { return exp.checker().converged_scoped(id); }, seconds(90));
    series.add(latency);
  }
  return series;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 13: random component failures, 300-node topology",
      "single: ZENITH median 1.9x / p99 3.4x lower than PR; concurrent: "
      "2.0x median / 3.2x tail");

  const ControllerKind kinds[] = {ControllerKind::kZenithNR,
                                  ControllerKind::kPr};
  // Independent deterministic cells fan out over the bench thread pool;
  // the tables print after the barrier in grid order (serial-identical).
  struct Cell {
    bool concurrent;
    ControllerKind kind;
  };
  std::vector<Cell> cells;
  for (bool concurrent : {false, true}) {
    for (ControllerKind kind : kinds) cells.push_back({concurrent, kind});
  }
  std::vector<benchutil::TrialSeries> results(cells.size());
  chaos::parallel_for(cells.size(), chaos::default_bench_threads(),
                      [&](std::size_t i) {
                        results[i] = run(cells[i].kind, cells[i].concurrent, 37);
                      });

  std::size_t cell = 0;
  for (bool concurrent : {false, true}) {
    std::printf("\n(%s) %s component failures:\n", concurrent ? "b" : "a",
                concurrent ? "concurrent" : "single");
    TablePrinter table({"system", "median(s)", "p99(s)", "DNF", "samples"});
    double zenith_median = 0, zenith_p99 = 0;
    for (ControllerKind kind : kinds) {
      benchutil::TrialSeries series = results[cell++];
      if (kind == ControllerKind::kZenithNR && !series.converged.empty()) {
        zenith_median = series.converged.median();
        zenith_p99 = series.converged.p99();
      }
      std::string note;
      if (!series.converged.empty() && zenith_median > 0 &&
          kind == ControllerKind::kPr) {
        note = " (median " +
               TablePrinter::fmt(series.converged.median() / zenith_median, 1) +
               "x, p99 " +
               TablePrinter::fmt(series.converged.p99() / zenith_p99, 1) +
               "x vs ZENITH)";
      }
      table.add_row({to_string(kind) + note, series.median(), series.p99(),
                     std::to_string(series.dnf),
                     std::to_string(series.trials)});
    }
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
