// Figure 15: planned OFC failover. Five orchestrated failover scenarios,
// 10 runs each: ZENITH drains in-flight ACKs before moving the master role
// (bounded, small convergence); PR fails over immediately and loses
// in-flight ACKs, paying deadlock-timeout/reconciliation tax at the tail.
#include "core/controller.h"
#include "bench_util.h"
#include "topo/generators.h"

namespace zenith {
namespace {

enum class Scenario {
  kIdle,            // failover with a quiet controller
  kMidInstall,      // failover while a DAG is installing
  kWithSwitchChurn, // a transient switch failure overlaps the failover
  kWithCrash,       // a component crash overlaps the failover
  kBackToBack,      // two failovers in sequence with traffic
};

const char* name_of(Scenario s) {
  switch (s) {
    case Scenario::kIdle: return "idle";
    case Scenario::kMidInstall: return "mid-install";
    case Scenario::kWithSwitchChurn: return "switch-churn";
    case Scenario::kWithCrash: return "component-crash";
    case Scenario::kBackToBack: return "back-to-back";
  }
  return "?";
}

std::optional<SimTime> run(Scenario scenario, ControllerKind kind,
                           std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  Experiment exp(gen::kdl_like(20, 6), config);
  exp.start();
  Workload workload(&exp, seed + 5);
  Dag initial = workload.initial_dag(6);
  if (!exp.install_and_wait(std::move(initial), seconds(30)).has_value()) {
    return std::nullopt;
  }
  bool drain_first = !is_pr_variant(kind);

  std::optional<DagId> pending;
  switch (scenario) {
    case Scenario::kIdle:
      break;
    case Scenario::kMidInstall:
    case Scenario::kBackToBack: {
      auto dag = workload.reroute_dag();
      if (dag.has_value()) {
        pending = dag->id();
        exp.controller().submit_dag(std::move(*dag));
        // Orchestrated timing (the paper replays TO traces here): the
        // failover fires at the instant an ACK sits at the old instance,
        // received but not yet processed into the NIB. A drained handover
        // processes it first; an abrupt one loses it.
        exp.config().poll_interval = micros(20);
        (void)exp.run_until(
            [&] { return !exp.fabric().replies().empty(); }, millis(30));
        exp.config().poll_interval = millis(1);
      }
      break;
    }
    case Scenario::kWithSwitchChurn:
      exp.fabric().inject_failure(SwitchId(3),
                                  FailureMode::kCompleteTransient);
      exp.run_for(millis(100));
      exp.fabric().inject_recovery(SwitchId(3));
      break;
    case Scenario::kWithCrash:
      exp.controller().crash_component("monitoring");
      break;
  }

  SimTime start = exp.sim().now();
  std::size_t completed = 0;
  // Direct, synchronous failover request (the management app path is
  // exercised in apps_test; here timing precision matters).
  exp.controller().planned_ofc_failover([&](SimTime) { ++completed; },
                                        drain_first);
  std::size_t wanted = 1;
  if (scenario == Scenario::kBackToBack) wanted = 2;
  bool second_requested = false;
  // Convergence: all failovers completed, pending DAG converged, and the
  // controller is consistent with the data plane.
  auto done = exp.run_until(
      [&] {
        if (completed >= 1 && wanted == 2 && !second_requested) {
          second_requested = true;
          exp.controller().planned_ofc_failover(
              [&](SimTime) { ++completed; }, drain_first);
        }
        if (completed < wanted) return false;
        if (pending.has_value() && !exp.checker().converged(*pending)) {
          return false;
        }
        return exp.nib().ops_with_status(OpStatus::kSent).empty();
      },
      seconds(120));
  if (!done.has_value()) return std::nullopt;
  return exp.sim().now() - start;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 15: planned OFC failover (5 scenarios x 10 runs)",
      "ZENITH's convergence is bounded and small; vs PR it is 2.3x faster "
      "on average, 3.8x at p99, with far lower variance");

  const Scenario scenarios[] = {Scenario::kIdle, Scenario::kMidInstall,
                                Scenario::kWithSwitchChurn,
                                Scenario::kWithCrash, Scenario::kBackToBack};
  Summary zenith_all, pr_all;
  std::size_t zenith_dnf = 0, pr_dnf = 0;

  std::printf("\n(15b) per-scenario convergence [median (min..max) s]:\n");
  std::printf("%-18s %-24s %-24s\n", "scenario", "ZENITH", "PR");
  for (Scenario scenario : scenarios) {
    Summary zenith_s, pr_s;
    for (std::uint64_t run_idx = 0; run_idx < 10; ++run_idx) {
      auto z = run(scenario, ControllerKind::kZenithNR, 100 + run_idx);
      auto p = run(scenario, ControllerKind::kPr, 100 + run_idx);
      if (z.has_value()) {
        zenith_s.add(to_seconds(*z));
        zenith_all.add(to_seconds(*z));
      } else {
        ++zenith_dnf;
      }
      if (p.has_value()) {
        pr_s.add(to_seconds(*p));
        pr_all.add(to_seconds(*p));
      } else {
        ++pr_dnf;
      }
    }
    auto spread = [](const Summary& s) -> std::string {
      if (s.empty()) return "DNF";
      return TablePrinter::fmt(s.median(), 2) + " (" +
             TablePrinter::fmt(s.min(), 2) + ".." +
             TablePrinter::fmt(s.max(), 2) + ")";
    };
    std::printf("%-18s %-24s %-24s\n", name_of(scenario),
                spread(zenith_s).c_str(), spread(pr_s).c_str());
  }

  std::printf("\n(15a) aggregate:\n");
  TablePrinter table({"system", "mean(s)", "p99(s)", "DNF"});
  table.add_row({"ZENITH", TablePrinter::fmt(zenith_all.mean(), 2),
                 TablePrinter::fmt(zenith_all.p99(), 2),
                 std::to_string(zenith_dnf)});
  table.add_row({"PR", TablePrinter::fmt(pr_all.mean(), 2),
                 TablePrinter::fmt(pr_all.p99(), 2), std::to_string(pr_dnf)});
  std::printf("%s", table.to_string().c_str());
  benchutil::print_cdf("ZENITH", zenith_all);
  benchutil::print_cdf("PR", pr_all);
  std::printf(
      "\nshape check: mean ratio PR/ZENITH = %.1fx (paper 2.3x), p99 ratio "
      "= %.1fx (paper 3.8x)\n",
      pr_all.mean() / zenith_all.mean(), pr_all.p99() / zenith_all.p99());
  return 0;
}
