// Figure 4: reconciliation cost scaling.
//  (a) single-switch dump time vs table size (Cumulus SN2100 calibration:
//      13ms @ 512 entries -> 117ms @ 4096, a 9x increase for 8x the state);
//  (b) full-network reconciliation time on 100 switches vs per-switch table
//      size (831ms @ 500 -> 8.58s @ 4000; the serialized NIB update is the
//      bottleneck).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "topo/generators.h"

namespace zenith {
namespace {

SimTime measure_single_switch_dump(std::size_t entries) {
  Simulator sim;
  Fabric fabric(&sim, gen::linear(1), Rng(3));
  for (std::size_t i = 0; i < entries; ++i) {
    Op op;
    op.id = OpId(static_cast<std::uint32_t>(i + 1));
    op.type = OpType::kInstallRule;
    op.sw = SwitchId(0);
    op.rule = FlowRule{FlowId(1), SwitchId(0), SwitchId(0), SwitchId(0), 0};
    fabric.at(SwitchId(0)).preload_entry(op);
  }
  SwitchRequest dump;
  dump.type = SwitchRequest::Type::kDumpTable;
  SimTime started = sim.now();
  fabric.send(SwitchId(0), dump);
  sim.run();
  return sim.now() - started;
}

SimTime measure_network_reconciliation(std::size_t entries_per_switch) {
  constexpr std::size_t kSwitches = 100;
  ExperimentConfig config;
  config.seed = 7;
  config.kind = ControllerKind::kPr;
  config.reconciliation_period = seconds(30);
  Experiment exp(gen::kdl_like(kSwitches, 5), config);
  exp.start();
  preload_background_entries(exp, entries_per_switch);
  // Run past the first cycle and measure its NIB-work horizon: cycle start
  // to the commit of the last batch.
  SimTime cycle_start = seconds(30);
  exp.run_for(seconds(31));
  // Wait until all dump batches committed (the NIB lock horizon passes).
  auto done = exp.run_until(
      [&] {
        return exp.controller().context().nib_locked_until <=
                   exp.sim().now() &&
               exp.controller().context().reconciler_reply_queue.empty();
      },
      seconds(120));
  (void)done;
  SimTime lock_horizon = exp.controller().context().nib_locked_until;
  return std::max(lock_horizon, exp.sim().now()) - cycle_start;
}

void BM_SingleSwitchDump(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_single_switch_dump(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_SingleSwitchDump)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::banner(
      "Figure 4: reconciliation cost grows with topology and table size",
      "(a) 13ms @512 -> 117ms @4096 entries on one switch (9x for 8x); "
      "(b) 831ms @500 -> 8.58s @4000 entries/switch on 100 switches (NIB "
      "updates are the bottleneck)");

  std::printf("\n(a) single-switch dump time vs flow-table size:\n");
  TablePrinter a({"entries", "dump time (ms)"});
  SimTime t512 = 0;
  for (std::size_t entries : {512u, 1024u, 2048u, 4096u}) {
    SimTime t = measure_single_switch_dump(entries);
    if (entries == 512) t512 = t;
    a.add_row({std::to_string(entries),
               TablePrinter::fmt(to_seconds(t) * 1e3, 1)});
  }
  std::printf("%s", a.to_string().c_str());
  SimTime t4096 = measure_single_switch_dump(4096);
  std::printf("growth 512->4096: %.1fx (paper: 9x)\n",
              static_cast<double>(t4096) / static_cast<double>(t512));

  std::printf("\n(b) 100-switch reconciliation time vs entries/switch:\n");
  TablePrinter b({"entries/switch", "reconciliation time (s)"});
  double t500 = 0, t4000 = 0;
  for (std::size_t entries : {500u, 1000u, 2000u, 4000u}) {
    double t = to_seconds(measure_network_reconciliation(entries));
    if (entries == 500) t500 = t;
    if (entries == 4000) t4000 = t;
    b.add_row({std::to_string(entries), TablePrinter::fmt(t, 2)});
  }
  std::printf("%s", b.to_string().c_str());
  std::printf("growth 500->4000: %.1fx (paper: 831ms -> 8.58s, ~10x)\n",
              t4000 / t500);

  std::printf("\nmicrobenchmark (google-benchmark) of the dump path:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
