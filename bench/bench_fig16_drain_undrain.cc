// Figure 16: drain (t=20) / undrain (t=40) of an aggregation switch in a
// fat-tree carrying ~80% load. ZENITH keeps normalized throughput high with
// only the capacity-loss dip while the switch is out of service.
#include "apps/drain_app.h"
#include "bench_util.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct RunResult {
  TimeSeries normalized{millis(500)};
  double min_during_drain = 1.0;
};

RunResult run(ControllerKind kind) {
  constexpr std::size_t kFatTreeK = 4;
  ExperimentConfig config;
  config.seed = 9;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  Topology topo = gen::fat_tree(kFatTreeK);
  auto idx = gen::fat_tree_index(kFatTreeK);
  Experiment exp(topo, config);
  exp.start();

  // Cross-pod flows between edge switches at ~80% of edge-link capacity.
  Workload workload(&exp, 17);
  std::vector<std::pair<SwitchId, SwitchId>> pairs;
  for (std::size_t pod = 0; pod + 1 < kFatTreeK; pod += 2) {
    for (std::size_t e = 0; e < kFatTreeK / 2; ++e) {
      pairs.emplace_back(
          SwitchId(static_cast<std::uint32_t>(idx.edge_begin +
                                              pod * (kFatTreeK / 2) + e)),
          SwitchId(static_cast<std::uint32_t>(idx.edge_begin +
                                              (pod + 1) * (kFatTreeK / 2) +
                                              e)));
    }
  }
  Dag initial = workload.initial_dag_for_pairs(pairs);
  (void)exp.install_and_wait(std::move(initial), seconds(30));

  TrafficModel traffic(&exp.fabric());
  std::vector<Demand> demands = workload.demands();
  for (Demand& d : demands) d.rate_gbps = 32.0;  // ~80% of a 40G edge link
  double full = traffic.total_throughput(demands);

  apps::DrainApp drain_app(&exp.controller());
  auto agg = SwitchId(static_cast<std::uint32_t>(idx.agg_begin));

  auto make_request = [&](bool undrain) {
    apps::DrainRequest request;
    request.topology = topo;
    request.flows = drain_app.drains_completed() > 0
                        ? drain_app.current_flows()
                        : [&] {
                            std::vector<FlowId> flows;
                            for (const Demand& d : demands) {
                              flows.push_back(d.flow);
                            }
                            return flows;
                          }();
    request.paths = drain_app.drains_completed() > 0
                        ? drain_app.current_paths()
                        : [&] {
                            std::vector<Path> paths;
                            for (const Demand& d : demands) {
                              paths.push_back(
                                  traffic.resolve(d).path);
                            }
                            return paths;
                          }();
    request.ops = drain_app.drains_completed() > 0
                      ? drain_app.current_ops()
                      : workload.all_flow_ops();
    request.node_to_drain = agg;
    request.undrain = undrain;
    return request;
  };

  RunResult result;
  bool drained = false, undrained = false;
  for (SimTime t = 0; t < seconds(60); t += millis(500)) {
    if (!drained && exp.sim().now() >= seconds(20)) {
      drain_app.submit(make_request(false));
      drained = true;
    }
    if (drained && !undrained && exp.sim().now() >= seconds(40)) {
      drain_app.submit(make_request(true));
      undrained = true;
    }
    double tput = traffic.total_throughput(demands) / std::max(full, 1e-9);
    result.normalized.record(exp.sim().now(), tput);
    if (exp.sim().now() >= seconds(20) && exp.sim().now() < seconds(40)) {
      result.min_during_drain = std::min(result.min_during_drain, tput);
    }
    exp.run_for(millis(500));
  }
  return result;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 16: hitless drain/undrain of an aggregation switch (fat-tree, "
      "~80% load)",
      "ZENITH keeps throughput consistently high; only a slight decrease "
      "while the switch is drained (reduced capacity)");

  RunResult zenith_run = run(ControllerKind::kZenithNR);

  std::printf("\nnormalized aggregate throughput (drain at t=20, undrain at "
              "t=40):\n");
  std::printf("%8s %12s\n", "t(s)", "ZENITH");
  for (std::size_t i = 0; i < zenith_run.normalized.size(); i += 4) {
    std::printf("%8.1f %12.2f\n", to_seconds(zenith_run.normalized.time_at(i)),
                zenith_run.normalized.value_at(i));
  }
  std::printf("\nminimum normalized throughput during the drain window: "
              "%.2f (paper: slight decrease only; no transient collapse)\n",
              zenith_run.min_during_drain);
  return 0;
}
