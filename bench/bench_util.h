// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints (a) the rows/series its paper counterpart reports and
// (b) a short "paper vs measured" shape note. Absolute values are not
// expected to match the paper's testbed; the comparisons of interest are
// relative (who wins, by what factor, where the crossover sits).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/workload.h"

namespace zenith::benchutil {

/// Flags shared by the bench binaries.
///  --quick             shrink the sweep so CI can smoke-test the binary;
///  --json              also write BENCH_<name>.json (machine-readable);
///  --chrome-trace=PATH export one instrumented run as a Chrome trace-event
///                      file (benches that support it; see EXPERIMENTS.md).
struct Options {
  bool quick = false;
  bool json = false;
  std::string chrome_trace;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      opts.chrome_trace = arg.substr(std::string("--chrome-trace=").size());
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      opts.chrome_trace = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown option '%s' (supported: --quick --json "
                   "--chrome-trace PATH)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

inline void banner(const std::string& title, const std::string& paper_claim) {
  std::printf("\n=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("=====================================================\n");
}

inline std::string fmt_seconds(std::optional<SimTime> t) {
  if (!t.has_value()) return "DNF";
  return TablePrinter::fmt(to_seconds(*t), 3) + "s";
}

/// Convergence-time samples for one controller kind under a caller-supplied
/// scenario body. The body receives a ready experiment + workload and
/// returns one convergence sample (nullopt = did not converge).
struct TrialSeries {
  Summary converged;
  std::size_t dnf = 0;
  std::size_t trials = 0;

  void add(std::optional<SimTime> sample) {
    ++trials;
    if (sample.has_value()) {
      converged.add(to_seconds(*sample));
    } else {
      ++dnf;
    }
  }

  std::string median() const {
    return converged.empty() ? "DNF" : TablePrinter::fmt(converged.median(), 3);
  }
  std::string p99() const {
    if (dnf > 0) return "DNF";
    return converged.empty() ? "DNF" : TablePrinter::fmt(converged.p99(), 3);
  }
  std::string mean() const {
    return converged.empty() ? "DNF" : TablePrinter::fmt(converged.mean(), 3);
  }
};

/// Prints a CDF as value/percentile pairs at canonical percentiles.
inline void print_cdf(const std::string& label, const Summary& summary) {
  std::printf("  %-12s:", label.c_str());
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf(" p%.0f=%.3fs", p, summary.percentile(p));
  }
  std::printf(" (n=%zu)\n", summary.count());
}

}  // namespace zenith::benchutil
