// Figure 2: a hidden high-priority flow entry blackholes traffic after its
// next hop fails; a PR controller stays dark until the next reconciliation
// cycle deletes it, while ZENITH (which prevents the hidden entry by
// design) restores throughput as soon as its repair DAG lands.
#include "bench_util.h"
#include "topo/generators.h"
#include "traffic/traffic.h"

namespace zenith {
namespace {

struct Timeline {
  TimeSeries throughput{millis(250)};
  SimTime recovered_at = kSimTimeNever;
};

Timeline run(ControllerKind kind, bool plant_hidden_entry) {
  ExperimentConfig config;
  config.seed = 2;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  Workload workload(&exp, 5);
  // One flow A (sw0) -> D (sw3), via B (sw1) on the shortest path.
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  (void)exp.install_and_wait(std::move(dag), seconds(10));

  if (plant_hidden_entry) {
    // The §G inconsistency left a high-priority rule on A that the NIB does
    // not know about (only reproducible under PR's bugs; ZENITH's pipeline
    // prevents it, so for PR we plant the artifact directly).
    Op hidden;
    hidden.id = OpId(0x7ffffff0);
    hidden.type = OpType::kInstallRule;
    hidden.sw = SwitchId(0);
    hidden.rule =
        FlowRule{FlowId(1), SwitchId(0), SwitchId(3), SwitchId(1), 9};
    exp.fabric().at(SwitchId(0)).preload_entry(hidden);
  }

  TrafficModel traffic(&exp.fabric());
  std::vector<Demand> demands = workload.demands();
  Timeline timeline;

  // Sample throughput every 250 ms over 40 s; B fails at t=5 s and the app
  // immediately reroutes via C (replacing the low-priority entry).
  bool failed = false;
  bool rerouted = false;
  for (SimTime t = 0; t < seconds(40); t += millis(250)) {
    if (!failed && exp.sim().now() >= seconds(5)) {
      exp.fabric().inject_failure(SwitchId(1),
                                  FailureMode::kCompletePermanent);
      failed = true;
    }
    if (failed && !rerouted) {
      auto repair = workload.repair_dag({SwitchId(1)});
      if (repair.has_value()) {
        (void)exp.controller().submit_dag(std::move(*repair));
        rerouted = true;
      }
    }
    double tput = traffic.total_throughput(demands);
    timeline.throughput.record(exp.sim().now(), tput);
    if (failed && tput > 0.5 && timeline.recovered_at == kSimTimeNever) {
      timeline.recovered_at = exp.sim().now();
    }
    exp.run_for(millis(250));
  }
  return timeline;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 2: hidden-entry blackhole and time to recover",
      "with PR, throughput stays zero after the controller installs the new "
      "route, until periodic reconciliation (30s) removes the hidden entry; "
      "ZENITH recovers as soon as the repair DAG is installed");

  Timeline zenith_run = run(ControllerKind::kZenithNR, false);
  Timeline pr_run = run(ControllerKind::kPr, true);

  std::printf("\nthroughput timeline (Gbps, failure at t=5s):\n");
  std::printf("%8s %10s %10s\n", "t(s)", "ZENITH", "PR+hidden");
  for (std::size_t i = 0; i < pr_run.throughput.size(); i += 4) {
    double t = to_seconds(pr_run.throughput.time_at(i));
    double z = i < zenith_run.throughput.size()
                   ? zenith_run.throughput.value_at(i)
                   : 0.0;
    std::printf("%8.1f %10.2f %10.2f\n", t, z, pr_run.throughput.value_at(i));
  }
  std::printf("\nrecovery after failure:\n");
  std::printf("  ZENITH   : %s after the failure (repair DAG install)\n",
              zenith_run.recovered_at == kSimTimeNever
                  ? "DNF"
                  : (TablePrinter::fmt(
                         to_seconds(zenith_run.recovered_at - seconds(5)), 2) +
                     "s")
                        .c_str());
  std::printf("  PR+hidden: %s after the failure (waits for reconciliation)\n",
              pr_run.recovered_at == kSimTimeNever
                  ? "DNF"
                  : (TablePrinter::fmt(
                         to_seconds(pr_run.recovered_at - seconds(5)), 2) +
                     "s")
                        .c_str());
  return 0;
}
