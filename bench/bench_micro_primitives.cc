// Microbenchmarks (google-benchmark) of the substrate primitives the
// scenario benches are built on: simulator event dispatch, NIB writes,
// queue operations, model-checker state fingerprints, NADIR value ops and
// DAG compilation. Useful for spotting substrate regressions that would
// skew the figure-level results.
#include <benchmark/benchmark.h>

#include "dag/compiler.h"
#include "mc/pipeline_model.h"
#include "nadir/value.h"
#include "nib/nib.h"
#include "sim/fifo.h"
#include "sim/simulator.h"
#include "topo/generators.h"
#include "topo/paths.h"

namespace zenith {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule(micros(i % 100), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

void BM_NadirFifoPushPop(benchmark::State& state) {
  NadirFifo<int> fifo;
  for (auto _ : state) {
    fifo.push(1);
    benchmark::DoNotOptimize(fifo.peek());
    fifo.ack_pop();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NadirFifoPushPop);

void BM_NibOpStatusWrite(benchmark::State& state) {
  Nib nib;
  Op op;
  op.id = OpId(1);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(0);
  nib.put_op(op);
  bool flip = false;
  for (auto _ : state) {
    nib.set_op_status(OpId(1),
                      flip ? OpStatus::kSent : OpStatus::kScheduled);
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NibOpStatusWrite);

void BM_McStateFingerprint(benchmark::State& state) {
  mc::PipelineModel model(mc::ModelConfig::table4_measurement_instance());
  mc::State s = model.initial_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.fingerprint(/*symmetry=*/true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McStateFingerprint);

void BM_McSuccessorExpansion(benchmark::State& state) {
  mc::PipelineModel model(mc::ModelConfig::table4_measurement_instance());
  mc::State s = model.initial_state();
  for (auto _ : state) {
    auto actions = model.enabled_actions(s);
    for (const auto& action : actions) {
      mc::State next = s;
      benchmark::DoNotOptimize(model.apply(next, action));
    }
  }
}
BENCHMARK(BM_McSuccessorExpansion);

void BM_NadirValueSetInsert(benchmark::State& state) {
  nadir::Value set = nadir::Value::set({});
  for (int i = 0; i < 64; ++i) {
    set = set.set_insert(nadir::Value::integer(i));
  }
  std::int64_t next = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.set_insert(nadir::Value::integer(next)));
  }
}
BENCHMARK(BM_NadirValueSetInsert);

void BM_ShortestPathKdl(benchmark::State& state) {
  Topology topo = gen::kdl_like(static_cast<std::size_t>(state.range(0)), 42);
  Rng rng(7);
  for (auto _ : state) {
    auto a = SwitchId(static_cast<std::uint32_t>(
        rng.next_below(topo.switch_count())));
    auto b = SwitchId(static_cast<std::uint32_t>(
        rng.next_below(topo.switch_count())));
    benchmark::DoNotOptimize(shortest_path(topo, a, b));
  }
}
BENCHMARK(BM_ShortestPathKdl)->Arg(100)->Arg(750);

void BM_CompileReplacementDag(benchmark::State& state) {
  Topology topo = gen::kdl_like(200, 42);
  OpIdAllocator ids;
  Path path = *shortest_path(topo, SwitchId(0), SwitchId(150));
  CompiledPath previous = compile_single_path(path, FlowId(1), 1, ids);
  for (auto _ : state) {
    auto dag = compile_replacement_dag(DagId(1), {path}, {FlowId(1)},
                                       previous.ops, ids);
    benchmark::DoNotOptimize(dag.ok());
  }
}
BENCHMARK(BM_CompileReplacementDag);

}  // namespace
}  // namespace zenith

BENCHMARK_MAIN();
