// Microbenchmarks (google-benchmark) of the substrate primitives the
// scenario benches are built on: simulator event dispatch and cancel churn,
// NIB writes and indexed status queries, queue operations, model-checker
// state fingerprints, NADIR value ops and DAG compilation. Useful for
// spotting substrate regressions that would skew the figure-level results.
//
// Flags (in addition to google-benchmark's own):
//   --quick   cap per-benchmark min time so CI can smoke-test the binary;
//   --json    also write BENCH_micro_primitives.json (items/sec and ns/op
//             per benchmark, plus derived speedup ratios) for the committed
//             baseline diff in scripts/ci.sh.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/arena.h"
#include "dag/compiler.h"
#include "mc/pipeline_model.h"
#include "nadir/value.h"
#include "nib/nib.h"
#include "obs/bench_results.h"
#include "sim/fifo.h"
#include "sim/simulator.h"
#include "topo/generators.h"
#include "topo/paths.h"

namespace zenith {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule(micros(i % 100), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

// Event churn on a warm slab: schedule + cancel half + drain, the pattern
// timers and retries produce. The slab kernel recycles pooled records, so
// the steady state performs no per-event allocation for the cancel flag.
void BM_SimulatorEventChurn(benchmark::State& state) {
  Simulator sim;
  std::vector<Simulator::EventHandle> handles;
  handles.reserve(static_cast<std::size_t>(state.range(0)));
  int counter = 0;
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < state.range(0); ++i) {
      handles.push_back(sim.schedule(micros(i % 64), [&counter] { ++counter; }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      handles[i].cancel();
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventChurn)->Arg(1000)->Arg(10000);

void BM_NadirFifoPushPop(benchmark::State& state) {
  NadirFifo<int> fifo;
  for (auto _ : state) {
    fifo.push(1);
    benchmark::DoNotOptimize(fifo.peek());
    fifo.ack_pop();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NadirFifoPushPop);

void BM_NibOpStatusWrite(benchmark::State& state) {
  Nib nib;
  Op op;
  op.id = OpId(1);
  op.type = OpType::kInstallRule;
  op.sw = SwitchId(0);
  nib.put_op(op);
  bool flip = false;
  for (auto _ : state) {
    nib.set_op_status(OpId(1),
                      flip ? OpStatus::kSent : OpStatus::kScheduled);
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NibOpStatusWrite);

/// Populates a NIB with `n` OPs spread over 32 switches; every 64th OP is
/// kSent, the rest kDone — the steady-state shape of a long-running
/// controller, where transient statuses are rare against the done history
/// and the hot path queries exactly those rare statuses.
Nib populated_nib(int n) {
  Nib nib;
  for (std::uint32_t sw = 0; sw < 32; ++sw) nib.register_switch(SwitchId(sw));
  for (int i = 1; i <= n; ++i) {
    Op op;
    op.id = OpId(static_cast<std::uint32_t>(i));
    op.type = OpType::kInstallRule;
    op.sw = SwitchId(static_cast<std::uint32_t>(i % 32));
    nib.preload_op(op, i % 64 == 0 ? OpStatus::kSent : OpStatus::kDone,
                   /*in_view=*/false);
  }
  return nib;
}

// The hot-path status query, served by the per-status index: O(result).
void BM_NibStatusQueryIndexed(benchmark::State& state) {
  Nib nib = populated_nib(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nib.ops_with_status(OpStatus::kSent));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NibStatusQueryIndexed)->Arg(1000)->Arg(10000);

// The pre-index strategy for comparison: a full O(|ops|) scan with a
// per-op hash lookup plus the final sort, as ops_with_status worked
// before the secondary indexes.
void BM_NibStatusQueryScan(benchmark::State& state) {
  Nib nib = populated_nib(static_cast<int>(state.range(0)));
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<OpId> out;
    for (int i = 1; i <= n; ++i) {
      OpId id(static_cast<std::uint32_t>(i));
      if (nib.op_status(id) == OpStatus::kSent) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NibStatusQueryScan)->Arg(1000)->Arg(10000);

// Multi-status per-switch query (the topo handler's reset scan shape):
// one index merge over the per-switch x per-status sets.
void BM_NibOpsOnSwitchIndexed(benchmark::State& state) {
  Nib nib = populated_nib(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nib.ops_on_switch(
        SwitchId(7), {OpStatus::kInFlight, OpStatus::kSent, OpStatus::kDone,
                      OpStatus::kFailedSwitch}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NibOpsOnSwitchIndexed)->Arg(10000);

// The OpBatch id-buffer lifecycle with the PR-8 arena: a window of
// `range(0)` buffers in flight (the pipeline's peak depth), each filled to a
// 16-OP batch and retired. After the pool warms up every acquire recycles a
// retired buffer with its capacity intact — steady state is allocation-free.
void BM_OpBatchArenaChurn(benchmark::State& state) {
  OpBatchArena arena;
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<OpId>> in_flight;
  in_flight.reserve(depth);
  std::uint32_t next = 1;
  for (auto _ : state) {
    if (in_flight.size() == depth) {
      arena.release(std::move(in_flight.front()));
      in_flight.erase(in_flight.begin());
    }
    std::vector<OpId> buffer = arena.acquire();
    for (int i = 0; i < 16; ++i) buffer.push_back(OpId(next++));
    benchmark::DoNotOptimize(buffer.data());
    in_flight.push_back(std::move(buffer));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["fresh_allocs"] =
      static_cast<double>(arena.fresh_allocations());
}
BENCHMARK(BM_OpBatchArenaChurn)->Arg(32);

// The pre-arena shape for comparison: the same in-flight window, but every
// batch builds a fresh vector and its retirement frees the buffer — one
// heap round-trip (plus the push_back growth doublings) per batch.
void BM_OpBatchHeapChurn(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<OpId>> in_flight;
  in_flight.reserve(depth);
  std::uint32_t next = 1;
  for (auto _ : state) {
    if (in_flight.size() == depth) {
      in_flight.erase(in_flight.begin());  // frees the buffer
    }
    std::vector<OpId> buffer;
    for (int i = 0; i < 16; ++i) buffer.push_back(OpId(next++));
    benchmark::DoNotOptimize(buffer.data());
    in_flight.push_back(std::move(buffer));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpBatchHeapChurn)->Arg(32);

/// Deterministic arena accounting over a fixed churn script (no
/// google-benchmark timing involved): 100k acquire/release cycles through a
/// 32-deep in-flight window. A correct arena allocates exactly once per
/// window slot — 32 fresh allocations total — independent of host speed, so
/// scripts/ci.sh gates this counter against the committed baseline.
std::size_t arena_fresh_allocs_fixed_churn() {
  OpBatchArena arena;
  constexpr std::size_t kDepth = 32;
  constexpr std::size_t kCycles = 100'000;
  std::vector<std::vector<OpId>> in_flight;
  std::uint32_t next = 1;
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    if (in_flight.size() == kDepth) {
      arena.release(std::move(in_flight.front()));
      in_flight.erase(in_flight.begin());
    }
    std::vector<OpId> buffer = arena.acquire();
    for (int i = 0; i < 16; ++i) buffer.push_back(OpId(next++));
    in_flight.push_back(std::move(buffer));
  }
  return arena.fresh_allocations();
}

void BM_McStateFingerprint(benchmark::State& state) {
  mc::PipelineModel model(mc::ModelConfig::table4_measurement_instance());
  mc::State s = model.initial_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.fingerprint(/*symmetry=*/true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McStateFingerprint);

void BM_McSuccessorExpansion(benchmark::State& state) {
  mc::PipelineModel model(mc::ModelConfig::table4_measurement_instance());
  mc::State s = model.initial_state();
  for (auto _ : state) {
    auto actions = model.enabled_actions(s);
    for (const auto& action : actions) {
      mc::State next = s;
      benchmark::DoNotOptimize(model.apply(next, action));
    }
  }
}
BENCHMARK(BM_McSuccessorExpansion);

void BM_NadirValueSetInsert(benchmark::State& state) {
  nadir::Value set = nadir::Value::set({});
  for (int i = 0; i < 64; ++i) {
    set = set.set_insert(nadir::Value::integer(i));
  }
  std::int64_t next = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.set_insert(nadir::Value::integer(next)));
  }
}
BENCHMARK(BM_NadirValueSetInsert);

void BM_ShortestPathKdl(benchmark::State& state) {
  Topology topo = gen::kdl_like(static_cast<std::size_t>(state.range(0)), 42);
  Rng rng(7);
  for (auto _ : state) {
    auto a = SwitchId(static_cast<std::uint32_t>(
        rng.next_below(topo.switch_count())));
    auto b = SwitchId(static_cast<std::uint32_t>(
        rng.next_below(topo.switch_count())));
    benchmark::DoNotOptimize(shortest_path(topo, a, b));
  }
}
BENCHMARK(BM_ShortestPathKdl)->Arg(100)->Arg(750);

void BM_CompileReplacementDag(benchmark::State& state) {
  Topology topo = gen::kdl_like(200, 42);
  OpIdAllocator ids;
  Path path = *shortest_path(topo, SwitchId(0), SwitchId(150));
  CompiledPath previous = compile_single_path(path, FlowId(1), 1, ids);
  for (auto _ : state) {
    auto dag = compile_replacement_dag(DagId(1), {path}, {FlowId(1)},
                                       previous.ops, ids);
    benchmark::DoNotOptimize(dag.ok());
  }
}
BENCHMARK(BM_CompileReplacementDag);

/// Console reporter that additionally captures (benchmark -> items/sec,
/// ns/op) so main() can emit BENCH_micro_primitives.json.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Sample sample;
      sample.ns_per_op = run.GetAdjustedRealTime();
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) sample.items_per_second = it->second;
      samples_[run.benchmark_name()] = sample;
    }
  }

  const std::map<std::string, Sample>& samples() const { return samples_; }

 private:
  std::map<std::string, Sample> samples_;
};

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  // --quick caps min time per benchmark; injected before user flags so an
  // explicit --benchmark_min_time still wins.
  static char quick_flag[] = "--benchmark_min_time=0.05";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      passthrough.push_back(quick_flag);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());

  zenith::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (json) {
    zenith::obs::BenchResult bench("micro_primitives");
    for (const auto& [name, sample] : reporter.samples()) {
      // Benchmark names contain '/' (args); keep them verbatim — the JSON
      // emitter escapes, and the diff tool matches on the full string.
      bench.add(name + ".ns_per_op", sample.ns_per_op, "ns");
      if (sample.items_per_second > 0.0) {
        bench.add(name + ".items_per_sec", sample.items_per_second, "1/s");
      }
    }
    // Derived headline ratio: indexed NIB status query vs the pre-index
    // full scan at 10k OPs (the ISSUE-3 acceptance metric).
    const auto& samples = reporter.samples();
    auto indexed = samples.find("BM_NibStatusQueryIndexed/10000");
    auto scan = samples.find("BM_NibStatusQueryScan/10000");
    if (indexed != samples.end() && scan != samples.end() &&
        indexed->second.ns_per_op > 0.0) {
      bench.add("nib_status_query_speedup_10k",
                scan->second.ns_per_op / indexed->second.ns_per_op, "x");
    }
    // Derived headline ratio: arena-pooled batch-buffer churn vs the
    // pre-arena heap round-trip per batch (PR-8 satellite).
    auto pooled = samples.find("BM_OpBatchArenaChurn/32");
    auto heap = samples.find("BM_OpBatchHeapChurn/32");
    if (pooled != samples.end() && heap != samples.end() &&
        pooled->second.ns_per_op > 0.0) {
      bench.add("arena_batch_churn_speedup",
                heap->second.ns_per_op / pooled->second.ns_per_op, "x");
    }
    // Host-independent pool accounting — gated in scripts/ci.sh (a value
    // above the 32-slot window depth means recycling broke).
    bench.add_count("arena.fresh_allocs_fixed_churn",
                    zenith::arena_fresh_allocs_fixed_churn());
    bench.add_note("mode", quick ? "quick" : "full");
    std::string path = bench.write(".");
    std::printf("wrote %s\n", path.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
