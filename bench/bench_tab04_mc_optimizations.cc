// Table 4: impact of the §3.7 scaling optimizations on model checking the
// core spec under a single-switch-failure DAG-transition instance.
//
// Paper:   None        > 30h   > 200M states   (crashed, OOM)
//          Sym         10h43m    82M           diameter 393
//          Sym/Com     1h25m     11M           diameter 302
//          Sym/Com/Par 3s        12K           diameter 109
//
// Our checker explores a smaller instance on one core; the claim reproduced
// is the monotone collapse: each optimization prunes a superset-of-states,
// and the unoptimized run does not finish within its budget.
#include "bench_util.h"
#include "mc/checker.h"

int main() {
  using namespace zenith;
  using namespace zenith::mc;
  benchutil::banner(
      "Table 4: model-checking cost vs optimizations (switch failure + DAG "
      "transition instance)",
      "None crashes beyond 200M states; Sym 82M/10h43m; Sym+Com 11M/1h25m; "
      "all three 12K/3s — a monotone collapse of states, time and diameter");

  struct Row {
    const char* name;
    bool sym, com, por;
    std::size_t cap;
  };
  const Row rows[] = {
      // The unoptimized run gets the same budget the others need at most;
      // like the paper's ">200M, crashed" it is expected to blow through it.
      {"None", false, false, false, 12'000'000},
      {"Sym", true, false, false, 12'000'000},
      {"Sym/Com", true, true, false, 12'000'000},
      {"Sym/Com/Par", true, true, true, 12'000'000},
  };

  TablePrinter table({"optimizations", "time", "#distinct states", "diameter",
                      "verified"});
  for (const Row& row : rows) {
    ModelConfig config = ModelConfig::table4_measurement_instance();
    config.opt_symmetry = row.sym;
    config.opt_compositional = row.com;
    config.opt_por = row.por;
    CheckerOptions options;
    options.max_states = row.cap;
    options.time_limit_seconds = 120.0;
    CheckResult result = check(PipelineModel(config), options);
    std::string states = std::to_string(result.distinct_states);
    std::string time = TablePrinter::fmt(result.seconds, 2) + "s";
    std::string verified = result.ok ? "yes" : result.violation;
    if (result.capped) {
      states = "> " + states;
      time = "> " + time + " (did not finish)";
      verified = "-";
    }
    table.add_row({row.name, time, states,
                   result.capped ? "-" : std::to_string(result.diameter),
                   verified});
    std::fflush(stdout);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nshape check: monotone collapse None > Sym > Sym/Com > Sym/Com/Par "
      "in states and time; the unoptimized configuration exhausts its "
      "budget (the paper's crashed-after-30h row).\n");
  return 0;
}
