// Table 4: impact of the §3.7 scaling optimizations on model checking the
// core spec under a single-switch-failure DAG-transition instance, plus
// (PR 9) the parallel-exploration scaling of the work-stealing checker.
//
// Paper:   None        > 30h   > 200M states   (crashed, OOM)
//          Sym         10h43m    82M           diameter 393
//          Sym/Com     1h25m     11M           diameter 302
//          Sym/Com/Par 3s        12K           diameter 109
//
// Our checker explores a smaller instance on one core; the claim reproduced
// is the monotone collapse: each optimization prunes a superset-of-states,
// and the unoptimized run does not finish within its budget.
//
// The PR 9 sections run the replicated-log model (stepwise replication, the
// >=10M-state headline instance) across threads in {1,2,4,8}. The engine's
// determinism contract makes distinct_states/transitions/diameter exact at
// every thread count on clean runs — those agreement bits are the gated
// metrics (scripts/ci.sh); states/sec is advisory (hosts differ, and a
// single-core host serializes the workers).
//
// Flags: --quick (CI smoke: smaller instances, same metrics), --json
// (write BENCH_tab04_mc.json).
#include <vector>

#include "bench_util.h"
#include "mc/checker.h"
#include "mc/repl_model.h"
#include "obs/bench_results.h"

int main(int argc, char** argv) {
  using namespace zenith;
  using namespace zenith::mc;
  benchutil::Options opts = benchutil::parse_options(argc, argv);
  benchutil::banner(
      "Table 4: model-checking cost vs optimizations (switch failure + DAG "
      "transition instance) + parallel checker scaling",
      "None crashes beyond 200M states; Sym 82M/10h43m; Sym+Com 11M/1h25m; "
      "all three 12K/3s — a monotone collapse of states, time and diameter");

  obs::BenchResult bench("tab04_mc");
  bench.add_note("mode", opts.quick ? "quick" : "full");

  // -- the optimization ladder ------------------------------------------------
  struct Row {
    const char* name;
    const char* metric;  // JSON-friendly key
    bool sym, com, por;
  };
  const Row rows[] = {
      // The unoptimized run gets the same budget the others need at most;
      // like the paper's ">200M, crashed" it is expected to blow through it
      // on the full instance.
      {"None", "none", false, false, false},
      {"Sym", "sym", true, false, false},
      {"Sym/Com", "sym_com", true, true, false},
      {"Sym/Com/Par", "sym_com_por", true, true, true},
  };

  TablePrinter table({"optimizations", "time", "#distinct states", "diameter",
                      "verified"});
  for (const Row& row : rows) {
    ModelConfig config = opts.quick
                             ? ModelConfig::table4_instance()
                             : ModelConfig::table4_measurement_instance();
    config.opt_symmetry = row.sym;
    config.opt_compositional = row.com;
    config.opt_por = row.por;
    CheckerOptions options;
    options.max_states = opts.quick ? 2'000'000 : 12'000'000;
    options.time_limit_seconds = 120.0;
    CheckResult result = check(PipelineModel(config), options);
    std::string states = std::to_string(result.distinct_states);
    std::string time = TablePrinter::fmt(result.seconds, 2) + "s";
    std::string verified = result.ok ? "yes" : result.violation;
    if (result.capped) {
      states = "> " + states;
      time = "> " + time + " (did not finish)";
      verified = "-";
    }
    table.add_row({row.name, time, states,
                   result.capped ? "-" : std::to_string(result.diameter),
                   verified});
    std::string prefix = std::string("ladder.") + row.metric;
    bench.add_count(prefix + ".states", result.distinct_states);
    bench.add(prefix + ".seconds", result.seconds, "s");
    bench.add_count(prefix + ".capped", result.capped ? 1 : 0);
    std::fflush(stdout);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nshape check: monotone collapse None > Sym > Sym/Com > Sym/Com/Par "
      "in states and time; the unoptimized configuration exhausts its "
      "budget (the paper's crashed-after-30h row).\n");

  // -- parallel checker scaling (PR 9 headline) -------------------------------
  // The replicated-log shard model with stepwise replication: one entry per
  // replication RPC. The full instance (5 replicas, 10 appends, 2 leader
  // kills) has 10,421,607 distinct states — a >=10M headline far past the
  // old 3M-state in-memory comfort zone.
  ReplModelConfig headline;
  headline.replicas = 5;
  headline.max_appends = opts.quick ? 6 : 10;
  headline.max_kills = 2;
  headline.stepwise_replication = true;
  headline.max_states = 50'000'000;
  headline.time_limit_seconds = 600.0;

  std::printf(
      "\nparallel scaling: ReplModel stepwise instance (replicas=%d, "
      "appends=%d, kills=%d), threads in {1,2,4,8}\n",
      headline.replicas, headline.max_appends, headline.max_kills);
  TablePrinter scaling(
      {"threads", "time", "#distinct states", "diameter", "states/sec"});
  std::vector<ReplModelResult> runs;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ReplModelConfig config = headline;
    config.threads = threads;
    ReplModelResult result = check_repl_model(config);
    runs.push_back(result);
    double rate = result.seconds > 0.0
                      ? double(result.states_explored) / result.seconds
                      : 0.0;
    scaling.add_row({std::to_string(threads),
                     TablePrinter::fmt(result.seconds, 2) + "s",
                     std::to_string(result.states_explored),
                     std::to_string(result.diameter),
                     TablePrinter::fmt(rate / 1e6, 2) + "M"});
    std::string prefix = "scaling.t" + std::to_string(threads);
    bench.add(prefix + ".states_per_sec", rate, "1/s");
    bench.add(prefix + ".seconds", result.seconds, "s");
    bench.add_count(prefix + ".states", result.states_explored);
    std::fflush(stdout);
  }
  std::printf("%s", scaling.to_string().c_str());

  // Determinism gates: every thread count reports the same exploration.
  bool states_agree = true;
  bool diameter_agree = true;
  bool clean = true;
  for (const ReplModelResult& run : runs) {
    states_agree &= run.states_explored == runs.front().states_explored &&
                    run.transitions == runs.front().transitions;
    diameter_agree &= run.diameter == runs.front().diameter;
    clean &= !run.violation_found && !run.capped;
  }
  bench.add_count("scaling.states_agree", states_agree ? 1 : 0);
  bench.add_count("scaling.diameter_agree", diameter_agree ? 1 : 0);
  bench.add_count("repl_headline.violations", clean ? 0 : 1);
  bench.add_count("repl_headline.states", runs.front().states_explored);
  bench.add_count("repl_headline.diameter", runs.front().diameter);
  std::printf(
      "\ndeterminism: states %s, diameter %s across thread counts; run %s "
      "(threads=1 is byte-identical to the serial checker).\n",
      states_agree ? "agree" : "DISAGREE",
      diameter_agree ? "agree" : "DISAGREE", clean ? "clean" : "NOT CLEAN");
  std::printf(
      "shape check: states/sec is advisory — on a single-core host the "
      "workers serialize and the parallel rows only prove determinism, not "
      "speedup.\n");

  if (opts.json) {
    std::string path = bench.write(".");
    std::printf("wrote %s\n", path.c_str());
  }
  return (states_agree && diameter_agree && clean) ? 0 : 1;
}
