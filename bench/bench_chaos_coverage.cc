// Chaos-campaign coverage: seeded randomized multi-fault schedules against
// ZENITH-core on the evaluation topologies, with the invariant oracle of
// §3.3 (DAG order, hidden entries, eventual consistency) after every run.
// Reports faults injected per class, violations, and — on a deliberately
// buggy build (§G's mark-UP-before-reset knob) — the shrinker's reduction
// from a full random schedule to a minimal reproducer trace.
#include <chrono>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "chaos/parallel.h"
#include "chaos/shrink.h"
#include "obs/bench_results.h"

namespace zenith {
namespace {

chaos::CampaignConfig base_config(chaos::TopologyKind topology,
                                  std::size_t size, std::uint64_t seed) {
  chaos::CampaignConfig config;
  config.topology = topology;
  config.topology_size = size;
  config.seed = seed;
  config.schedule.horizon = seconds(6);
  config.schedule.fault_count = 14;
  return config;
}

struct TopologySweep {
  std::size_t campaigns = 0;
  std::size_t violations = 0;
  std::map<std::string, std::size_t> faults;
  std::size_t dags_submitted = 0;
  std::size_t dags_certified = 0;
  Summary quiescence;
};

// Campaigns are independent deterministic simulations, so the seed sweep
// fans out across the ParallelRunner pool; aggregation happens afterwards
// in seed order, keeping the printed tables byte-identical to a serial run.
TopologySweep sweep(const chaos::ParallelRunner& runner,
                    chaos::TopologyKind topology, std::size_t size,
                    std::size_t campaigns) {
  std::vector<chaos::CampaignConfig> configs;
  for (std::uint64_t seed = 1; seed <= campaigns; ++seed) {
    configs.push_back(base_config(topology, size, seed));
  }
  std::vector<chaos::CampaignResult> results = runner.run_campaigns(configs);
  TopologySweep out;
  for (const chaos::CampaignResult& result : results) {
    ++out.campaigns;
    if (!result.ok) ++out.violations;
    for (const auto& [kind, count] : result.stats.faults_by_kind) {
      out.faults[kind] += count;
    }
    out.dags_submitted += result.stats.dags_submitted;
    out.dags_certified += result.stats.dags_certified;
    out.quiescence.add(to_seconds(result.stats.quiescence_latency));
  }
  return out;
}

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::Options opts = benchutil::parse_options(argc, argv);
  const std::size_t campaigns_per_topology = opts.quick ? 3 : 25;
  benchutil::banner(
      "Chaos campaign coverage: randomized multi-fault schedules + oracle",
      "§3.5/§6 — eventual data-plane/control-plane consistency under "
      "arbitrary compositions of switch, link and component failures");

  struct Entry {
    chaos::TopologyKind kind;
    std::size_t size;
  };
  const Entry topologies[] = {
      {chaos::TopologyKind::kKdlLike, 24},
      {chaos::TopologyKind::kB4, 0},
      {chaos::TopologyKind::kFatTree, 4},
  };

  chaos::ParallelRunner runner;  // thread count: $ZENITH_BENCH_THREADS
  std::printf("running %zu campaigns per topology on %zu thread(s)\n",
              campaigns_per_topology, runner.threads());

  obs::BenchResult bench("chaos_coverage");
  TablePrinter table({"topology", "campaigns", "faults", "violations",
                      "dags(cert/sub)", "quiesce p50(s)", "quiesce p99(s)"});
  std::map<std::string, std::size_t> fault_totals;
  std::size_t total_campaigns = 0;
  std::size_t total_violations = 0;
  auto sweep_start = std::chrono::steady_clock::now();
  for (const Entry& entry : topologies) {
    TopologySweep result = sweep(runner, entry.kind, entry.size,
                                 campaigns_per_topology);
    std::size_t faults = 0;
    for (const auto& [kind, count] : result.faults) {
      faults += count;
      fault_totals[kind] += count;
    }
    table.add_row({std::string(chaos::to_string(entry.kind)),
                   std::to_string(result.campaigns), std::to_string(faults),
                   std::to_string(result.violations),
                   std::to_string(result.dags_certified) + "/" +
                       std::to_string(result.dags_submitted),
                   TablePrinter::fmt(result.quiescence.median(), 3),
                   TablePrinter::fmt(result.quiescence.p99(), 3)});
    total_campaigns += result.campaigns;
    total_violations += result.violations;
    std::string topo_name(chaos::to_string(entry.kind));
    bench.add("quiescence_p50_" + topo_name, result.quiescence.median(), "s");
    bench.add("quiescence_p99_" + topo_name, result.quiescence.p99(), "s");
  }
  double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  std::printf("%s", table.to_string().c_str());
  // stderr: stdout must stay byte-identical across runs (the determinism
  // probe diffs it), and wall time is the one nondeterministic datum here.
  std::fprintf(stderr,
               "sweep wall time: %.2fs (%zu campaigns, %zu thread(s), "
               "%.1f campaigns/s)\n",
               sweep_wall, total_campaigns, runner.threads(),
               sweep_wall > 0.0 ? total_campaigns / sweep_wall : 0.0);
  bench.add_count("campaigns", total_campaigns);
  bench.add_count("violations_correct_build", total_violations);
  bench.add("sweep_wall_time", sweep_wall, "s");
  bench.add("campaign_throughput",
            sweep_wall > 0.0 ? total_campaigns / sweep_wall : 0.0,
            "campaigns/s");

  std::printf("\nfault mix across all campaigns:\n");
  for (const auto& [kind, count] : fault_totals) {
    std::printf("  %-24s %zu\n", kind.c_str(), count);
  }

  // Shrinker demonstration on a deliberately buggy build: §G's
  // mark-UP-before-reset ordering bug leaves hidden entries when installs
  // race the deferred OP reset after a switch recovery.
  std::printf("\nshrinker on a deliberately buggy build "
              "(core.bugs.mark_up_before_reset):\n");
  std::size_t caught = 0;
  Summary ratios;
  Summary minimal_lengths;
  std::size_t demos = 0;
  std::string last_dump;
  const std::uint64_t seed_sweep = opts.quick ? 12 : 40;
  const std::size_t demo_target = opts.quick ? 1 : 5;
  // Discovery fans out on the pool; shrinking stays serial (it is an
  // adaptive search whose every probe depends on the previous verdict).
  // Schedules are pure functions of (topology, config, seed), so the
  // violating schedule is regenerated on demand instead of retained for
  // every swept seed.
  std::vector<chaos::CampaignConfig> buggy_configs;
  for (std::uint64_t seed = 1; seed <= seed_sweep; ++seed) {
    chaos::CampaignConfig config =
        base_config(chaos::TopologyKind::kDiamond, 0, seed);
    config.initial_flows = 2;
    config.update_period = millis(30);
    config.core.bugs.mark_up_before_reset = true;
    buggy_configs.push_back(config);
  }
  std::vector<chaos::CampaignResult> buggy_results =
      runner.run_campaigns(buggy_configs);
  for (std::size_t i = 0; i < buggy_results.size() && demos < demo_target;
       ++i) {
    const chaos::CampaignResult& result = buggy_results[i];
    if (result.ok) continue;
    const chaos::CampaignConfig& config = buggy_configs[i];
    const std::uint64_t seed = config.seed;
    ++caught;
    ++demos;
    Topology topo = chaos::make_topology(config);
    chaos::ChaosSchedule failing =
        chaos::generate_schedule(topo, config.core, config.schedule,
                                 config.seed);
    chaos::ShrinkResult shrunk = chaos::shrink_schedule(config, failing);
    ratios.add(shrunk.shrink_ratio());
    minimal_lengths.add(static_cast<double>(shrunk.minimal.size()));
    std::printf("  seed %2llu: %zu events -> %zu (%.0f%%), %zu oracle runs, "
                "violation: %s\n",
                static_cast<unsigned long long>(seed),
                shrunk.original_events, shrunk.minimal.size(),
                100.0 * shrunk.shrink_ratio(), shrunk.oracle_runs,
                result.violations.front().c_str());
    for (const to::TraceStep& step : shrunk.trace.steps) {
      std::printf("      %s\n", step.to_string().c_str());
    }
    if (!shrunk.minimal_result.flight_recorder_dump.empty()) {
      last_dump = shrunk.minimal_result.flight_recorder_dump;
    }
  }
  if (caught == 0) {
    std::printf("  (no seed tripped the oracle — widen the sweep)\n");
  } else {
    std::printf("  violating seeds shrunk: %zu; mean shrink ratio %.0f%%, "
                "mean minimal length %.1f steps\n",
                caught, 100.0 * ratios.mean(), minimal_lengths.mean());
  }

  // The flight recorder rides along with the minimal reproducer: the last
  // pre-violation events give the causal story without re-running anything.
  if (!last_dump.empty()) {
    std::printf("\nflight recorder attached to the last minimal reproducer "
                "(tail):\n");
    // Header plus the newest 11 events (the violation is the last line);
    // the full dump travels with the CampaignResult for tooling.
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= last_dump.size()) {
      std::size_t nl = last_dump.find('\n', pos);
      if (nl == std::string::npos) nl = last_dump.size();
      if (nl > pos) lines.push_back(last_dump.substr(pos, nl - pos));
      pos = nl + 1;
    }
    std::printf("  %s\n", lines.front().c_str());
    std::size_t first = lines.size() > 12 ? lines.size() - 11 : 1;
    if (first > 1) std::printf("  ...\n");
    for (std::size_t i = first; i < lines.size(); ++i) {
      std::printf("  %s\n", lines[i].c_str());
    }
  }

  bench.add_count("buggy_build_seeds_caught", caught);
  if (!ratios.empty()) {
    bench.add("shrink_ratio_mean", ratios.mean(), "fraction");
    bench.add("minimal_trace_len_mean", minimal_lengths.mean(), "steps");
  }
  bench.add_note("mode", opts.quick ? "quick" : "full");
  bench.add_note("threads", std::to_string(runner.threads()));
  bench.add_note("flight_recorder_attached", last_dump.empty() ? "no" : "yes");
  if (opts.json) {
    std::string path = bench.write(".");
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
