// Figure A.6: distribution of counterexample-trace lengths found while
// checking buggy spec variants — the paper's traces have median 56 steps
// (min 21, max 110), indicating how deep the interleavings behind the
// specification errors run.
#include "bench_util.h"
#include "mc/checker.h"
#include "to/library.h"

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure A.6: counterexample trace lengths from the bug matrix",
      "paper traces: median 56 steps, min 21, max 110 — the errors need "
      "long, subtle interleavings to manifest");

  // Raw model-checker traces (full action granularity, before grant
  // merging) across the bug/instance matrix.
  Summary lengths;
  struct Case {
    mc::ModelConfig (*make)();
    void (*bug)(SpecBugs&);
    bool fine;
    bool complete;
  };
  const Case cases[] = {
      {mc::ModelConfig::table4_instance,
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, false, true},
      {mc::ModelConfig::table4_instance,
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, true, true},
      {mc::ModelConfig::table4_instance,
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, false, true},
      {mc::ModelConfig::table4_instance,
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, true, true},
      {mc::ModelConfig::transient_recovery_instance,
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, true, true},
      {mc::ModelConfig::transient_recovery_instance,
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, true, false},
      {mc::ModelConfig::transient_recovery_instance,
       [](SpecBugs& b) { b.direct_clear_tcam = true; }, true, false},
      {mc::ModelConfig::table4_measurement_instance,
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, false, true},
      {mc::ModelConfig::table4_measurement_instance,
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, false, true},
      {mc::ModelConfig::table4_measurement_instance,
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, true, true},
  };
  for (const Case& c : cases) {
    mc::ModelConfig config = c.make();
    config.complete_failure = c.complete;
    config.opt_symmetry = true;
    config.opt_compositional = !c.fine;
    config.opt_por = !c.fine;
    c.bug(config.bugs);
    mc::CheckerOptions options;
    options.record_traces = true;
    options.max_states = 2'000'000;
    options.time_limit_seconds = 60.0;
    mc::CheckResult result = mc::check(mc::PipelineModel(config), options);
    if (!result.ok && !result.trace.empty()) {
      lengths.add(static_cast<double>(result.trace.size()));
    }
  }
  // The orchestration-trace library adds its (grant-merged) lengths.
  for (const to::Trace& trace : to::build_trace_library(17)) {
    lengths.add(static_cast<double>(trace.length()));
  }

  std::printf("\ncounterexamples found: %zu\n", lengths.count());
  std::printf("trace length: median %.0f, min %.0f, max %.0f (paper: 56 / "
              "21 / 110 on a far larger spec)\n",
              lengths.median(), lengths.min(), lengths.max());
  Histogram histogram(0, lengths.max() + 5, 8);
  for (double v : lengths.samples()) histogram.add(v);
  std::printf("\n%s", histogram.to_string().c_str());
  std::printf(
      "\nshape check: lengths spread well beyond the minimum — the bugs "
      "need multi-component interleavings, not single-step mistakes.\n");
  return 0;
}
