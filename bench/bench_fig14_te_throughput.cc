// Figure 14: TE throughput on the 12-node B4 WAN.
//
// Timeline (paper §6.2): traffic runs; a switch fails completely at t=8 and
// local recovery immediately shifts the impacted flow onto a predefined
// backup path that shares a link with other traffic (congestion). The
// controller detects the failure (detection tuned so the repair DAG lands
// around t=16); before that DAG completes, TE notices the congestion and
// schedules a second, overlapping DAG. ZENITH handles the overlap and
// throughput recovers at ~t=16; PR's racing schedulers corrupt the NIB
// (§1.1 incident 2) and throughput stays depressed until reconciliation.
#include "apps/te_app.h"
#include "bench_util.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct RunResult {
  TimeSeries throughput{millis(500)};
  double recovered_at = -1;  // seconds; -1 = never during the window
  double mean_throughput = 0;
};

RunResult run(ControllerKind kind) {
  ExperimentConfig config;
  config.seed = 3;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  // Detection tuned so the repair DAG lands around t=16 given the t=8
  // failure; WAN-scale control-channel latencies make a multi-hop DAG take
  // a couple of seconds to install, which is what lets the TE congestion
  // DAG overlap the still-installing repair DAG (the paper's timeline).
  config.fabric.failure_detection_delay = seconds(8);
  config.fabric.ctrl_to_sw = DelayModel{millis(300), millis(200)};
  config.fabric.sw_to_ctrl = DelayModel{millis(300), millis(200)};
  Experiment exp(gen::b4(), config);
  exp.start();

  TrafficModel traffic(&exp.fabric());
  apps::TrafficEngineeringApp te(&exp.controller(), &exp.topology(),
                                 &traffic);
  // Flow 1 (0 -> 4) rides 0-2-4; its protection path 0-1-3-4 shares link
  // 3-4 with flow 2 (3 -> 4), so local recovery congests that link.
  std::vector<Demand> demands{
      {FlowId(1), SwitchId(0), SwitchId(4), 80.0},   // primary 0-2-4
      {FlowId(2), SwitchId(3), SwitchId(6), 80.0},   // primary 3-4-6
  };
  DagId initial = te.install_initial_paths(demands);
  (void)exp.run_until(
      [&] { return exp.checker().converged_scoped(initial); }, seconds(10));

  RunResult result;
  bool failed = false;
  bool congestion_scan_done = false;
  double full_rate = traffic.total_throughput(demands);  // 160 Gbps
  for (SimTime t = 0; t < seconds(40); t += millis(500)) {
    if (!failed && exp.sim().now() >= seconds(8)) {
      // Victim's current transit switch fails completely.
      Resolution r = traffic.resolve(demands[0]);
      SwitchId victim = r.path.size() > 2 ? r.path[1] : SwitchId(2);
      exp.fabric().inject_failure(victim, FailureMode::kCompletePermanent);
      // Local recovery: protection switching onto the predefined backup
      // path (0-1-3-4), which shares link 3-4 with flow 2. The backup
      // rules are provisioned state the controller knows about; they cover
      // every hop of the protection path.
      auto backup = shortest_path(exp.topology(), demands[0].src,
                                  demands[0].dst, {victim});
      if (backup.has_value() && backup->size() >= 2) {
        for (std::size_t h = 0; h + 1 < backup->size(); ++h) {
          Op backup_op;
          backup_op.id = exp.op_ids().next();
          backup_op.type = OpType::kInstallRule;
          backup_op.sw = (*backup)[h];
          backup_op.rule = FlowRule{demands[0].flow, (*backup)[h],
                                    demands[0].dst, (*backup)[h + 1], 5};
          exp.nib().preload_op(backup_op, OpStatus::kDone, /*in_view=*/true);
          exp.fabric().at((*backup)[h]).preload_entry(backup_op);
          te.note_local_recovery(demands[0].flow, backup_op, *backup);
        }
      }
      failed = true;
    }
    // Telemetry tick: once the repair DAG is being installed, the TE
    // telemetry notices the congested link and schedules a second DAG
    // *while the first is still in flight* — the paper's overlap.
    if (failed && !congestion_scan_done && te.repair_dags() > 0) {
      congestion_scan_done = te.trigger_congestion_scan();
    }
    double tput = traffic.total_throughput(demands);
    result.throughput.record(exp.sim().now(), tput);
    if (failed && result.recovered_at < 0 && tput >= full_rate * 0.95) {
      result.recovered_at = to_seconds(exp.sim().now());
    }
    exp.run_for(millis(500));
  }
  double sum = 0;
  for (std::size_t i = 0; i < result.throughput.size(); ++i) {
    sum += result.throughput.value_at(i);
  }
  result.mean_throughput = sum / static_cast<double>(result.throughput.size());
  return result;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 14: TE throughput during failure + overlapping DAGs (B4)",
      "ZENITH's throughput improves as soon as TE's DAG lands (~t=16); PR "
      "stays depressed until reconciliation (~10s longer); overall ZENITH "
      "carries 1.23x PR's throughput");

  RunResult zenith_run = run(ControllerKind::kZenithNR);
  RunResult pr_run = run(ControllerKind::kPr);

  std::printf("\nthroughput timeline (Gbps; failure at t=8, detection ~t=16):\n");
  std::printf("%8s %10s %10s\n", "t(s)", "ZENITH", "PR");
  for (std::size_t i = 0; i < pr_run.throughput.size(); i += 2) {
    std::printf("%8.1f %10.1f %10.1f\n",
                to_seconds(pr_run.throughput.time_at(i)),
                i < zenith_run.throughput.size()
                    ? zenith_run.throughput.value_at(i)
                    : 0.0,
                pr_run.throughput.value_at(i));
  }
  std::printf("\nfull-rate recovery: ZENITH at t=%.1fs, PR at t=%s\n",
              zenith_run.recovered_at,
              pr_run.recovered_at < 0
                  ? "never (within 40s window)"
                  : TablePrinter::fmt(pr_run.recovered_at, 1).c_str());
  std::printf("mean throughput ZENITH/PR = %.2fx (paper: 1.23x)\n",
              zenith_run.mean_throughput / pr_run.mean_throughput);
  return 0;
}
