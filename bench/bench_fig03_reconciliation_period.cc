// Figure 3: tail convergence vs reconciliation period (200 switches).
// "More frequent reconciliations increase the likelihood of network updates
// colliding with reconciliation cycles. Hence, reconciliation itself
// becomes a dominant source of tail latencies."
#include "bench_util.h"
#include "topo/generators.h"

namespace zenith {
namespace {

// Transit flow-table state per switch: chain-heavy WAN switches carry state
// proportional to the network size, up to full tables (see DESIGN.md and
// Figure 4's cost calibration).
std::size_t entries_per_switch(std::size_t n) {
  return std::min<std::size_t>(8 * n, 4000);
}

benchutil::TrialSeries run_period(SimTime period, std::uint64_t seed) {
  constexpr std::size_t kSwitches = 200;
  ExperimentConfig config;
  config.seed = seed;
  config.kind = ControllerKind::kPr;
  config.reconciliation_period = period;
  config.scoped_convergence = true;
  config.poll_interval = millis(5);
  Experiment exp(gen::kdl_like(kSwitches, 42), config);
  exp.start();
  preload_background_entries(exp, entries_per_switch(kSwitches));
  Workload workload(&exp, seed * 7 + 1);
  Dag initial = workload.initial_dag(30);
  benchutil::TrialSeries series;
  if (!exp.install_and_wait(std::move(initial), seconds(60)).has_value()) {
    series.add(std::nullopt);
    return series;
  }
  // 5-minute run of back-to-back reroutes (§6.1 methodology).
  SimTime horizon = exp.sim().now() + seconds(300);
  while (exp.sim().now() < horizon) {
    auto dag = workload.next_update_dag();
    if (!dag.has_value()) break;
    auto latency = exp.install_and_wait(std::move(*dag), seconds(60));
    series.add(latency);
    if (!latency.has_value()) break;  // saturated: no point continuing
  }
  return series;
}

}  // namespace
}  // namespace zenith

int main() {
  using namespace zenith;
  benchutil::banner(
      "Figure 3: convergence vs reconciliation period (200 switches, PR)",
      "shorter periods worsen tail convergence: reconciliation collides "
      "with updates more often; at very short periods the serialized NIB "
      "work saturates the controller");

  TablePrinter table({"period(s)", "median(s)", "p90(s)", "p99(s)", "DNF",
                      "samples"});
  for (double period : {5.0, 10.0, 15.0, 30.0, 45.0, 60.0}) {
    benchutil::TrialSeries series = run_period(seconds(period), 11);
    table.add_row({TablePrinter::fmt(period, 0), series.median(),
                   series.converged.empty()
                       ? "DNF"
                       : TablePrinter::fmt(series.converged.percentile(90), 3),
                   series.p99(), std::to_string(series.dnf),
                   std::to_string(series.trials)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nshape check: p99 grows as the period shrinks (paper Fig. 3); "
      "5s-period runs show the worst tail / DNFs.\n");
  return 0;
}
