// Figure 10: trace replay. Replays the model-checker counterexample library
// (the stand-in for the paper's 17 TLA+ traces), 10 runs each, on
// ZENITH-NR, ZENITH-DR and PR; reports the convergence CDF (10a) and
// per-trace spreads (10b), and validates that the generated controller
// never violates DAG order on any trace.
#include <cstdio>

#include "bench_util.h"
#include "obs/bench_results.h"
#include "obs/obs.h"
#include "obs/trace_export.h"
#include "to/library.h"
#include "to/orchestrator.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct ReplayResult {
  SimTime convergence = kSimTimeNever;
  bool order_ok = true;
};

ReplayResult replay_once(const to::Trace& trace, ControllerKind kind,
                         std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.kind = kind;
  config.reconciliation_period = seconds(30);
  config.core.num_sequencers = 1;
  config.core.num_workers = 2;
  Experiment exp(gen::figure2_diamond(), config);
  exp.start();
  Workload workload(&exp, seed + 100);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  DagId id = dag.id();
  ReplayResult result;
  if (!exp.install_and_wait(std::move(dag), seconds(30)).has_value()) {
    return result;
  }
  // Randomize the phase between the failure schedule and the
  // reconciliation cycle: "PR's convergence depends on the timing of
  // failures relative to the reconciliation. When the failures occur just
  // after the reconciliation, PR must wait a full round" (§6.1, Fig 10b).
  Rng phase_rng(seed * 31 + trace.length());
  exp.run_for(static_cast<SimTime>(
      phase_rng.next_below(static_cast<std::uint64_t>(seconds(30)))));
  to::TraceOrchestrator orchestrator(&exp);
  SimTime start = exp.sim().now();
  orchestrator.replay(trace);
  auto converged = exp.run_until(
      [&] { return exp.checker().converged(id); }, seconds(60));
  if (converged.has_value()) {
    result.convergence = exp.sim().now() - start;
  }
  result.order_ok = exp.order_checker().ok();
  return result;
}

// One fully instrumented ZENITH-NR replay of `trace`, exported as a Chrome
// trace-event file (load in Perfetto / chrome://tracing). The span DAG shows
// each OP's submit -> schedule -> send -> ack -> commit lifecycle with flow
// arrows across the microservice tracks.
bool export_chrome_trace(const to::Trace& trace, const std::string& path) {
  obs::Observability o(1024);
  ExperimentConfig config;
  config.seed = 1;
  config.kind = ControllerKind::kZenithNR;
  config.core.num_sequencers = 1;
  config.core.num_workers = 2;
  Experiment exp(gen::figure2_diamond(), config);
  exp.attach_observability(&o);
  exp.start();
  Workload workload(&exp, 101);
  Dag dag = workload.initial_dag_for_pairs({{SwitchId(0), SwitchId(3)}});
  exp.install_and_wait(std::move(dag), seconds(30));
  to::TraceOrchestrator orchestrator(&exp);
  orchestrator.replay(trace);
  exp.run_for(seconds(10));
  std::string json = obs::chrome_trace_json(o.tracer());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote Chrome trace (%zu spans, %zu bytes) to %s\n",
              o.tracer().spans().size(), json.size(), path.c_str());
  return true;
}

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::Options opts = benchutil::parse_options(argc, argv);
  const std::size_t trace_count = opts.quick ? 4 : 17;
  const std::uint64_t runs_per_trace = opts.quick ? 2 : 10;
  benchutil::banner(
      "Figure 10: convergence on inconsistency-triggering traces (10 runs "
      "per trace)",
      "PR averages 11.2s (p99 26.8s) across 170 runs; ZENITH-NR 2.11s (5.3x "
      "lower), p99 3.3s (8.1x lower); ZENITH-NR and ZENITH-DR are "
      "comparable; NADIR-generated code never violates safety on any trace");

  std::vector<to::Trace> library = to::build_trace_library(trace_count);
  std::printf("trace library: %zu counterexample traces\n", library.size());

  struct SystemRow {
    ControllerKind kind;
    Summary all;
    std::size_t dnf = 0;
    bool order_ok = true;
  };
  SystemRow systems[] = {{ControllerKind::kZenithNR},
                         {ControllerKind::kZenithDR},
                         {ControllerKind::kPr}};

  std::printf("\n(10b) per-trace convergence [median (min..max) seconds]:\n");
  std::printf("%-55s %-22s %-22s\n", "trace", "ZENITH-NR", "PR");
  for (const to::Trace& trace : library) {
    Summary per_trace[3];
    for (std::size_t s = 0; s < 3; ++s) {
      for (std::uint64_t run = 0; run < runs_per_trace; ++run) {
        ReplayResult r = replay_once(trace, systems[s].kind, 1000 + run);
        systems[s].order_ok &= r.order_ok;
        if (r.convergence == kSimTimeNever) {
          ++systems[s].dnf;
        } else {
          per_trace[s].add(to_seconds(r.convergence));
          systems[s].all.add(to_seconds(r.convergence));
        }
      }
    }
    auto spread = [](const Summary& s) -> std::string {
      if (s.empty()) return "DNF";
      return TablePrinter::fmt(s.median(), 2) + " (" +
             TablePrinter::fmt(s.min(), 2) + ".." +
             TablePrinter::fmt(s.max(), 2) + ")";
    };
    std::printf("%-55s %-22s %-22s\n", trace.name.c_str(),
                spread(per_trace[0]).c_str(), spread(per_trace[2]).c_str());
  }

  std::printf("\n(10a) aggregate convergence across all traces and runs:\n");
  TablePrinter table({"system", "mean(s)", "median(s)", "p99(s)", "DNF"});
  for (const SystemRow& s : systems) {
    table.add_row({to_string(s.kind),
                   s.all.empty() ? "-" : TablePrinter::fmt(s.all.mean(), 2),
                   s.all.empty() ? "-" : TablePrinter::fmt(s.all.median(), 2),
                   s.all.empty() ? "-" : TablePrinter::fmt(s.all.p99(), 2),
                   std::to_string(s.dnf)});
  }
  std::printf("%s", table.to_string().c_str());
  for (const SystemRow& s : systems) {
    benchutil::print_cdf(to_string(s.kind), s.all);
  }

  double zenith_mean = systems[0].all.mean();
  double pr_mean = systems[2].all.mean();
  double zenith_p99 = systems[0].all.p99();
  double pr_p99 = systems[2].all.p99();
  std::printf(
      "\nshape check: PR/ZENITH mean ratio = %.1fx (paper 5.3x), p99 ratio "
      "= %.1fx (paper 8.1x); ZENITH-NR vs -DR comparable; DAG-order safety "
      "held on every replay: %s\n",
      pr_mean / zenith_mean, pr_p99 / zenith_p99,
      (systems[0].order_ok && systems[1].order_ok) ? "yes" : "NO");

  if (opts.json) {
    obs::BenchResult bench("fig10_trace_replay");
    for (const SystemRow& s : systems) {
      std::string name = to_string(s.kind);
      if (!s.all.empty()) {
        bench.add("mean_" + name, s.all.mean(), "s");
        bench.add("p99_" + name, s.all.p99(), "s");
      }
      bench.add_count("dnf_" + name, s.dnf);
    }
    if (zenith_mean > 0) {
      bench.add("pr_over_zenith_mean", pr_mean / zenith_mean, "x");
    }
    bench.add_note("mode", opts.quick ? "quick" : "full");
    bench.add_note("order_safety",
                   (systems[0].order_ok && systems[1].order_ok) ? "held"
                                                                : "VIOLATED");
    std::string path = bench.write(".");
    std::printf("\nwrote %s\n", path.c_str());
  }

  if (!opts.chrome_trace.empty()) {
    if (!export_chrome_trace(library.front(), opts.chrome_trace)) return 1;
  }
  return 0;
}
