// Figure A.3: Henry-Kafura information-flow complexity of four core
// components after verifying the spec under the six failure-scenario
// stages of §D.2. The hardening steps each verification stage forces into
// the spec grow both component length and cross-component information
// flow; Sequencer dominates after complete-permanent hardening (DAG
// transitions), Monitoring Server grows at complete-transient (flow-level
// ACK tracking), and DR tracking adds complexity on top.
#include "bench_util.h"
#include "mc/core_spec.h"
#include "nadir/metrics.h"

int main() {
  using namespace zenith;
  using namespace zenith::mc;
  benchutil::banner(
      "Figure A.3: spec complexity (Henry-Kafura) per component per "
      "verification stage",
      "Sequencer is the most complex component (DAG transition/undo after "
      "SW complete-permanent); Monitoring Server grows after SW "
      "complete-transient (flow-granularity ACKs); ZENITH-DR adds tracking "
      "complexity over ZENITH-NR");

  const char* components[] = {"Sequencer", "WorkerPool", "MonitoringServer",
                              "TopoEventHandler"};
  TablePrinter table({"stage", "Sequencer", "WorkerPool", "MonitoringServer",
                      "TopoEventHandler"});
  std::vector<std::vector<std::uint64_t>> values;
  for (int stage = 1; stage <= 6; ++stage) {
    CoreSpecScenario scenario = CoreSpecScenario::stage(stage);
    nadir::Spec spec = build_core_spec(scenario);
    nadir::SpecMetrics metrics = nadir::measure(spec);
    std::vector<std::string> row{std::to_string(stage) + " (" +
                                 scenario.name() + ")"};
    std::vector<std::uint64_t> numeric;
    for (const char* component : components) {
      auto it = metrics.per_process.find(component);
      std::uint64_t hk =
          it == metrics.per_process.end() ? 0 : it->second.henry_kafura;
      numeric.push_back(hk);
      row.push_back(std::to_string(hk));
    }
    values.push_back(numeric);
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());

  bool sequencer_grows_at_cp =
      values[3][0] > values[2][0];  // stage 4 vs stage 3
  bool monitoring_grows_at_ct = values[4][2] > values[3][2];
  bool dr_adds = values[5][3] >= values[4][3];
  std::printf(
      "\nshape check: Sequencer complexity jumps at SW complete-permanent "
      "(%s), Monitoring Server at SW complete-transient (%s), DR >= NR for "
      "the Topo Event Handler (%s)\n",
      sequencer_grows_at_cp ? "yes" : "NO",
      monitoring_grows_at_ct ? "yes" : "NO", dr_adds ? "yes" : "NO");
  return 0;
}
