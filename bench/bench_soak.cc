// Million-OP soak + batching/sharding throughput comparison (the PR-4
// stress tier, grown into the PR-8 parallel-hot-path headline).
//
// Default-fabric arms on the same fat-tree k=16 deployment and seed:
//   bs=1   — the pre-batching pipeline shape (singleton dispatch), sized to
//            reach steady state and measure baseline throughput;
//   bs=16  — batched dispatch, >= 1M converged OPs under light chaos with
//            every invariant monitor armed. At the default fabric both of
//            these are DATA-PLANE bound: the 50us per-message switch
//            service, not the controller, sets the ceiling.
//
// Hot-path tier (the PR-8 measurement): the same deployment with a fast
// fabric (delay x0.1, switch op_service x0.05) so the controller is the
// measured resource, ECMP-style path spread, and a 16-worker pool — run
// twice with IDENTICAL config except nib_shards:
//   hot.unsharded — nib_shards=0: the single Monitoring Server's per-reply
//                   service step is the ceiling (~0.8M ops/sim-s);
//   hot.sharded   — nib_shards=4: per-shard NIB event handlers + monitoring
//                   instances + the commit pump. Carries the 10M-OP soak
//                   tier (ZENITH_SOAK_OPS overrides the volume; set it to
//                   100000000 for the opt-in 100M tier).
//
// Headline metrics: batching_speedup_16v1 (default fabric) and
// sharding_speedup_4v1 (hot tier, sharded over unsharded at identical
// settings). A chaos-off probe pair additionally reruns a short bs=16
// workload sharded and unsharded and asserts fingerprint equality
// (fingerprint_match) — the throughput claim is only meaningful because the
// sharded path is outcome-identical.
//
// Flags: --quick (small topology + 40k-OP arms for CI smoke), --json
// (write BENCH_soak.json for scripts/ci.sh's gating baseline diff).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "harness/soak.h"
#include "obs/bench_results.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct ArmResult {
  SoakResult soak;
  std::uint64_t folded_fingerprint = 0;
  double wall_seconds = 0.0;
};

/// The default-fabric arms (and the chaos-off equivalence probes): edge
/// endpoints, deterministic BFS paths, the stock 4-worker pipeline.
ArmResult run_arm(std::size_t batch_size, std::size_t target_ops, bool quick,
                  std::size_t nib_shards = 0, bool chaos = true) {
  ExperimentConfig config;
  config.seed = 20260807;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = batch_size;
  config.core.nib_shards = nib_shards;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;

  std::size_t k = quick ? 8 : 16;
  Experiment exp(gen::fat_tree(k), config);
  exp.start();

  SoakConfig soak_config;
  soak_config.seed = 97;
  soak_config.target_ops = target_ops;
  // Wide waves: ~1k concurrent flows put one ACK per in-flight flow into
  // the MonitoringServer per dependency wave, so the singleton arm's one-
  // reply-per-20us service discipline — not path RTT or per-switch service
  // time — bounds throughput. Full mode spreads many groups across the
  // k=16 edge layer (128 edge switches) with flows_per_group matched to
  // the batch size; quick mode compresses onto fat_tree(8)'s 32 edges.
  soak_config.groups = quick ? 16 : 64;
  soak_config.flows_per_group = quick ? 32 : 16;
  soak_config.chaos = chaos;
  gen::FatTreeIndex index = gen::fat_tree_index(k);
  for (std::size_t i = index.edge_begin; i < index.edge_end; ++i) {
    soak_config.endpoints.push_back(SwitchId(static_cast<std::uint32_t>(i)));
  }

  SoakWorkload workload(&exp, soak_config);
  auto wall_start = std::chrono::steady_clock::now();
  ArmResult arm;
  arm.soak = workload.run();
  arm.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  arm.folded_fingerprint = exp.nib().folded_shard_fingerprint(4);
  return arm;
}

/// The hot-path tier: controller-bound by design. Fast fabric (delay x0.1,
/// switch op_service x0.05 — a 50us TCAM write shrunk to modern-ASIC 2.5us),
/// ECMP-style path spread over all-switch endpoints so no stride-aligned
/// agg/core switch concentrates the load, and a 16-worker pool so dispatch
/// lanes outnumber the reply-commit lanes under test. Everything except
/// nib_shards is IDENTICAL across the two calls — the reported speedup is
/// the sharding, nothing else.
ArmResult run_hot_arm(std::size_t nib_shards, std::size_t target_ops,
                      bool quick) {
  ExperimentConfig config;
  config.seed = 20260807;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = 16;
  config.core.nib_shards = nib_shards;
  config.core.num_workers = quick ? 8 : 16;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;
  config.fabric.ctrl_to_sw = {SimTime(millis(0.5) * 0.1),
                              SimTime(millis(0.5) * 0.1)};
  config.fabric.sw_to_ctrl = {SimTime(millis(0.5) * 0.1),
                              SimTime(millis(0.5) * 0.1)};
  config.fabric.timings.op_service = SimTime(micros(50) * 0.05);

  std::size_t k = quick ? 8 : 16;
  Experiment exp(gen::fat_tree(k), config);
  exp.start();

  SoakConfig soak_config;
  soak_config.seed = 97;
  soak_config.target_ops = target_ops;
  soak_config.groups = quick ? 64 : 256;
  soak_config.flows_per_group = 32;
  soak_config.path_spread = 16;
  // endpoints left empty: any switch pair, spreading load over the whole
  // agg/core layer instead of pinning src/dst to the edge.

  SoakWorkload workload(&exp, soak_config);
  auto wall_start = std::chrono::steady_clock::now();
  ArmResult arm;
  arm.soak = workload.run();
  arm.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  arm.folded_fingerprint = exp.nib().folded_shard_fingerprint(4);
  return arm;
}

void print_arm(const char* label, const ArmResult& arm) {
  const SoakResult& r = arm.soak;
  std::printf(
      "  %-12s ops=%zu rounds=%zu blips=%zu crashes=%zu timeouts=%zu "
      "violations=%zu order=%s sim=%.1fs wall=%.0fs  ops/sim-s=%.0f\n",
      label, r.ops_completed, r.rounds, r.switch_blips, r.component_crashes,
      r.timeouts, r.invariant_violations, r.order_ok ? "ok" : "VIOLATED",
      to_seconds(r.sim_elapsed), arm.wall_seconds, r.ops_per_sim_second());
}

/// The sharded soak-tier volume: 10M OPs by default, overridable through
/// ZENITH_SOAK_OPS (the 100M tier is the same binary with the variable set
/// to 100000000 — see EXPERIMENTS.md).
std::size_t sharded_soak_ops(bool quick) {
  if (quick) return 40'000;
  const char* env = std::getenv("ZENITH_SOAK_OPS");
  if (env != nullptr && *env != '\0') {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 10'000'000;
}

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::Options opts = benchutil::parse_options(argc, argv);

  benchutil::banner(
      "Soak: mixed install/delete churn — batched, singleton, and sharded",
      "control plane stays consistent under sustained load; batching the "
      "per-switch OP stream and sharding the NIB hot path lift throughput "
      "without changing outcomes");

  // The bs=1 arm only needs enough rounds for a stable throughput estimate;
  // the bs=16 arm carries the >=1M-OP requirement.
  std::size_t base_ops = opts.quick ? 40'000 : 200'000;
  std::size_t soak_ops = opts.quick ? 40'000 : 1'000'000;

  ArmResult bs1 = run_arm(1, base_ops, opts.quick);
  print_arm("bs=1", bs1);
  ArmResult bs16 = run_arm(16, soak_ops, opts.quick);
  print_arm("bs=16", bs16);

  // Hot-path tier: unsharded control first (a throughput estimate), then
  // the sharded arm carrying the 10M-OP soak (100M via ZENITH_SOAK_OPS).
  std::size_t hot_control_ops = opts.quick ? 40'000 : 300'000;
  ArmResult hot_unsharded =
      run_hot_arm(/*nib_shards=*/0, hot_control_ops, opts.quick);
  print_arm("hot", hot_unsharded);
  ArmResult hot_sharded = run_hot_arm(
      /*nib_shards=*/4, sharded_soak_ops(opts.quick), opts.quick);
  print_arm("hot+shards", hot_sharded);

  double speedup = bs1.soak.ops_per_sim_second() > 0.0
                       ? bs16.soak.ops_per_sim_second() /
                             bs1.soak.ops_per_sim_second()
                       : 0.0;
  double shard_speedup = hot_unsharded.soak.ops_per_sim_second() > 0.0
                             ? hot_sharded.soak.ops_per_sim_second() /
                                   hot_unsharded.soak.ops_per_sim_second()
                             : 0.0;
  std::printf("\n  batching speedup (bs=16 / bs=1):          %.2fx\n",
              speedup);
  std::printf("  sharding speedup (hot tier, 4 shards):    %.2fx\n",
              shard_speedup);

  // Equivalence probe: a short chaos-off workload (comparable OpId streams)
  // run sharded and unsharded must land on byte-identical NIB state — both
  // the classic global fingerprint and the shard-order fold.
  std::size_t probe_ops = opts.quick ? 20'000 : 100'000;
  ArmResult probe_classic =
      run_arm(16, probe_ops, opts.quick, /*nib_shards=*/0, /*chaos=*/false);
  ArmResult probe_sharded =
      run_arm(16, probe_ops, opts.quick, /*nib_shards=*/4, /*chaos=*/false);
  bool fingerprint_match =
      probe_classic.soak.nib_fingerprint == probe_sharded.soak.nib_fingerprint &&
      probe_classic.folded_fingerprint == probe_sharded.folded_fingerprint &&
      probe_classic.soak.ops_completed == probe_sharded.soak.ops_completed;
  std::printf("  sharded-vs-unsharded fingerprints:        %s\n",
              fingerprint_match ? "match" : "MISMATCH");

  std::size_t total_violations =
      bs1.soak.invariant_violations + bs16.soak.invariant_violations +
      hot_unsharded.soak.invariant_violations +
      hot_sharded.soak.invariant_violations +
      probe_classic.soak.invariant_violations +
      probe_sharded.soak.invariant_violations;
  bool clean = total_violations == 0 && bs1.soak.order_ok &&
               bs16.soak.order_ok && hot_unsharded.soak.order_ok &&
               hot_sharded.soak.order_ok && fingerprint_match;
  std::printf("  invariants: %s\n", clean ? "clean" : "VIOLATIONS SEEN");

  if (opts.json) {
    obs::BenchResult bench("soak");
    bench.add_count("bs1.ops_completed", bs1.soak.ops_completed);
    bench.add_count("bs16.ops_completed", bs16.soak.ops_completed);
    bench.add_count("bs16.rounds", bs16.soak.rounds);
    bench.add_count("bs16.switch_blips", bs16.soak.switch_blips);
    bench.add_count("bs16.component_crashes", bs16.soak.component_crashes);
    bench.add_count("sharded.ops_completed", hot_sharded.soak.ops_completed);
    bench.add_count("sharded.rounds", hot_sharded.soak.rounds);
    bench.add_count("sharded.component_crashes",
                    hot_sharded.soak.component_crashes);
    bench.add_count("invariant_violations", total_violations);
    bench.add_count("fingerprint_match", fingerprint_match ? 1 : 0);
    bench.add("bs1.ops_per_sim_sec", bs1.soak.ops_per_sim_second(), "1/s");
    bench.add("bs16.ops_per_sim_sec", bs16.soak.ops_per_sim_second(), "1/s");
    bench.add("hot.unsharded.ops_per_sim_sec",
              hot_unsharded.soak.ops_per_sim_second(), "1/s");
    bench.add("hot.sharded.ops_per_sim_sec",
              hot_sharded.soak.ops_per_sim_second(), "1/s");
    bench.add("batching_speedup_16v1", speedup, "x");
    bench.add("sharding_speedup_4v1", shard_speedup, "x");
    bench.add("bs1.wall_seconds", bs1.wall_seconds, "s");
    bench.add("bs16.wall_seconds", bs16.wall_seconds, "s");
    bench.add("sharded.wall_seconds", hot_sharded.wall_seconds, "s");
    bench.add_note("mode", opts.quick ? "quick" : "full");
    bench.add_note("topology", opts.quick ? "fat_tree(8)" : "fat_tree(16)");
    std::string path = bench.write(".");
    std::printf("wrote %s\n", path.c_str());
  }
  return clean ? 0 : 1;
}
