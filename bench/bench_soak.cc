// Million-OP soak + batching throughput comparison (the PR-4 stress tier).
//
// Two arms on the same fat-tree k=16 deployment and seed:
//   bs=1   — the pre-batching pipeline shape (singleton dispatch), sized to
//            reach steady state and measure baseline throughput;
//   bs=16  — batched dispatch, driven for >= 1M converged OPs under light
//            chaos with every invariant monitor armed (the soak proper).
//
// The headline JSON metric is batching_speedup_16v1: converged OPs per
// simulated second, bs=16 over bs=1. At bs=1 the MonitoringServer's one-
// reply-per-service-step discipline is the bottleneck (128 concurrent
// same-wave flows x 20us/ack > path RTT); batching commits a whole
// per-switch batch per step, so the soak's elephant-group workload should
// clear >= 1.5x.
//
// Flags: --quick (small topology + 40k-OP arms for CI smoke), --json
// (write BENCH_soak.json for scripts/ci.sh's baseline diff).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "harness/soak.h"
#include "obs/bench_results.h"
#include "topo/generators.h"

namespace zenith {
namespace {

struct ArmResult {
  SoakResult soak;
  double wall_seconds = 0.0;
};

ArmResult run_arm(std::size_t batch_size, std::size_t target_ops, bool quick) {
  ExperimentConfig config;
  config.seed = 20260807;
  config.kind = ControllerKind::kZenithNR;
  config.core.batch_size = batch_size;
  config.poll_interval = millis(2);
  config.scoped_convergence = true;

  std::size_t k = quick ? 8 : 16;
  Experiment exp(gen::fat_tree(k), config);
  exp.start();

  SoakConfig soak_config;
  soak_config.seed = 97;
  soak_config.target_ops = target_ops;
  // Wide waves: ~1k concurrent flows put one ACK per in-flight flow into
  // the MonitoringServer per dependency wave, so the singleton arm's one-
  // reply-per-20us service discipline — not path RTT or per-switch service
  // time — bounds throughput. Full mode spreads many groups across the
  // k=16 edge layer (128 edge switches) with flows_per_group matched to
  // the batch size; quick mode compresses onto fat_tree(8)'s 32 edges.
  soak_config.groups = quick ? 16 : 64;
  soak_config.flows_per_group = quick ? 32 : 16;
  gen::FatTreeIndex index = gen::fat_tree_index(k);
  for (std::size_t i = index.edge_begin; i < index.edge_end; ++i) {
    soak_config.endpoints.push_back(SwitchId(static_cast<std::uint32_t>(i)));
  }

  SoakWorkload workload(&exp, soak_config);
  auto wall_start = std::chrono::steady_clock::now();
  ArmResult arm;
  arm.soak = workload.run();
  arm.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  return arm;
}

void print_arm(const char* label, const ArmResult& arm) {
  const SoakResult& r = arm.soak;
  std::printf(
      "  %-6s ops=%zu rounds=%zu blips=%zu crashes=%zu timeouts=%zu "
      "violations=%zu order=%s sim=%.1fs wall=%.0fs  ops/sim-s=%.0f\n",
      label, r.ops_completed, r.rounds, r.switch_blips, r.component_crashes,
      r.timeouts, r.invariant_violations, r.order_ok ? "ok" : "VIOLATED",
      to_seconds(r.sim_elapsed), arm.wall_seconds, r.ops_per_sim_second());
}

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::Options opts = benchutil::parse_options(argc, argv);

  benchutil::banner(
      "Soak: million-OP mixed install/delete churn, batched vs singleton",
      "control plane stays consistent under sustained load; batching the "
      "per-switch OP stream lifts throughput without changing outcomes");

  // The bs=1 arm only needs enough rounds for a stable throughput estimate;
  // the bs=16 arm is the soak proper and carries the >=1M-OP requirement.
  std::size_t base_ops = opts.quick ? 40'000 : 200'000;
  std::size_t soak_ops = opts.quick ? 40'000 : 1'000'000;

  ArmResult bs1 = run_arm(1, base_ops, opts.quick);
  print_arm("bs=1", bs1);
  ArmResult bs16 = run_arm(16, soak_ops, opts.quick);
  print_arm("bs=16", bs16);

  double speedup = bs1.soak.ops_per_sim_second() > 0.0
                       ? bs16.soak.ops_per_sim_second() /
                             bs1.soak.ops_per_sim_second()
                       : 0.0;
  std::printf("\n  batching speedup (bs=16 / bs=1): %.2fx\n", speedup);

  bool clean = bs1.soak.invariant_violations == 0 &&
               bs16.soak.invariant_violations == 0 && bs1.soak.order_ok &&
               bs16.soak.order_ok;
  std::printf("  invariants: %s\n", clean ? "clean" : "VIOLATIONS SEEN");

  if (opts.json) {
    obs::BenchResult bench("soak");
    bench.add_count("bs1.ops_completed", bs1.soak.ops_completed);
    bench.add_count("bs16.ops_completed", bs16.soak.ops_completed);
    bench.add_count("bs16.rounds", bs16.soak.rounds);
    bench.add_count("bs16.switch_blips", bs16.soak.switch_blips);
    bench.add_count("bs16.component_crashes", bs16.soak.component_crashes);
    bench.add_count("invariant_violations",
                    bs1.soak.invariant_violations +
                        bs16.soak.invariant_violations);
    bench.add("bs1.ops_per_sim_sec", bs1.soak.ops_per_sim_second(), "1/s");
    bench.add("bs16.ops_per_sim_sec", bs16.soak.ops_per_sim_second(), "1/s");
    bench.add("batching_speedup_16v1", speedup, "x");
    bench.add("bs1.wall_seconds", bs1.wall_seconds, "s");
    bench.add("bs16.wall_seconds", bs16.wall_seconds, "s");
    bench.add_note("mode", opts.quick ? "quick" : "full");
    bench.add_note("topology", opts.quick ? "fat_tree(8)" : "fat_tree(16)");
    std::string path = bench.write(".");
    std::printf("wrote %s\n", path.c_str());
  }
  return clean ? 0 : 1;
}
