// §6.3 "Decoupling apps from core": verifying the drain app against
// AbstractCore vs against the full multi-component core spec. The paper
// reports >100x (30 min -> 2 s); the ratio comes from the product of
// component state spaces that AbstractCore collapses into one step.
// Also prints Table A.1-style size numbers for our specifications.
#include "apps/app_specs.h"
#include "apps/drain_spec.h"
#include "bench_util.h"
#include "mc/core_spec.h"
#include "mc/nadir_explorer.h"
#include "nadir/metrics.h"

int main() {
  using namespace zenith;
  using namespace zenith::mc;
  benchutil::banner(
      "§6.3: independent app verification (AbstractCore vs full core spec)",
      "verifying drain with AbstractCore takes 2s vs 30min with the full "
      "core (>100x); TE verifies in 6s, failover in 3s — decoupling makes "
      "app verification practical");

  apps::DrainSpecScenario scenario;
  auto invariant = [&](const nadir::Env& env) {
    return apps::check_no_traffic_via_drained(env, scenario.node_to_drain);
  };

  // (1) App against AbstractCore (§4's independent verification).
  nadir::Spec abstract_spec = apps::build_drain_spec(scenario);
  NadirCheckerOptions abstract_options;
  abstract_options.invariant = invariant;
  abstract_options.quiescence = [](const nadir::Env& env) {
    return apps::drain_submitted(env) ? "" : "drainer never submitted a DAG";
  };
  NadirCheckResult with_abstract = explore(abstract_spec, abstract_options);

  // (2) App composed with the full core spec (every pipeline component as
  // its own process), hardened through stage 5 (switch complete-transient:
  // failure/recovery processes included), plus crash exploration of the
  // worker pool — the configuration ZENITH-core itself is verified under.
  CoreSpecScenario core_scenario = CoreSpecScenario::stage(5);
  nadir::Spec composed =
      compose_app_with_core(abstract_spec, core_scenario);
  NadirCheckerOptions full_options;
  full_options.invariant = [&](const nadir::Env& env) {
    std::string app = invariant(env);
    if (!app.empty()) return app;
    return check_core_installed_dags(env);
  };
  full_options.crashable = {"WorkerPool", "Sequencer"};
  full_options.max_crashes = 1;
  full_options.max_states = 3'000'000;
  full_options.time_limit_seconds = 600.0;
  NadirCheckResult with_core = explore(composed, full_options);

  // (3) The other verified apps (paper: TE 6s, failover 3s), against their
  // abstract environments.
  apps::TeSpecScenario te_scenario;
  nadir::Spec te_spec = apps::build_te_spec(te_scenario);
  NadirCheckerOptions te_options;
  te_options.invariant = [&](const nadir::Env& env) {
    return apps::check_te_avoids_failed(env, te_scenario);
  };
  te_options.quiescence = [&](const nadir::Env& env) {
    return apps::te_all_events_handled(env, te_scenario)
               ? ""
               : "TE left a failure event unhandled";
  };
  NadirCheckResult te_result = explore(te_spec, te_options);

  apps::FailoverSpecScenario failover_scenario;
  nadir::Spec failover_spec = apps::build_failover_spec(failover_scenario);
  NadirCheckerOptions failover_options;
  failover_options.invariant = [](const nadir::Env& env) {
    return apps::check_failover_drained(env);
  };
  failover_options.quiescence = [&](const nadir::Env& env) {
    return apps::failover_completed(env, failover_scenario)
               ? ""
               : "failover never completed";
  };
  NadirCheckResult failover_result = explore(failover_spec, failover_options);

  TablePrinter table({"verification target", "states", "transitions",
                      "time(s)", "result"});
  table.add_row({"TE + AbstractCore", std::to_string(te_result.distinct_states),
                 std::to_string(te_result.transitions),
                 TablePrinter::fmt(te_result.seconds, 3),
                 te_result.ok ? "verified" : te_result.violation});
  table.add_row({"failover + abstract switches",
                 std::to_string(failover_result.distinct_states),
                 std::to_string(failover_result.transitions),
                 TablePrinter::fmt(failover_result.seconds, 3),
                 failover_result.ok ? "verified" : failover_result.violation});
  table.add_row({"drain + AbstractCore",
                 std::to_string(with_abstract.distinct_states),
                 std::to_string(with_abstract.transitions),
                 TablePrinter::fmt(with_abstract.seconds, 3),
                 with_abstract.ok ? "verified" : with_abstract.violation});
  table.add_row({"drain + full core spec",
                 std::string(with_core.capped ? "> " : "") +
                     std::to_string(with_core.distinct_states),
                 std::to_string(with_core.transitions),
                 TablePrinter::fmt(with_core.seconds, 3),
                 with_core.capped ? "budget exhausted"
                                  : (with_core.ok ? "verified"
                                                  : with_core.violation)});
  std::printf("%s", table.to_string().c_str());
  double ratio = with_core.seconds /
                 std::max(with_abstract.seconds, 1e-6);
  std::printf(
      "\nshape check: verification-time ratio (full core / AbstractCore) = "
      "%.0fx, state ratio = %.0fx (paper: >100x time reduction)\n",
      ratio,
      static_cast<double>(with_core.distinct_states) /
          std::max<double>(1, static_cast<double>(
                                  with_abstract.distinct_states)));

  // ---- Table A.1: specification sizes ---------------------------------------
  std::printf("\nTable A.1 analogue — specification sizes (spec-IR units):\n");
  TablePrinter sizes({"spec", "processes", "labeled steps", "globals",
                      "locals"});
  auto add_spec = [&](const nadir::Spec& spec) {
    nadir::SpecMetrics m = nadir::measure(spec);
    sizes.add_row({spec.name(), std::to_string(m.process_count),
                   std::to_string(m.step_count),
                   std::to_string(m.global_count),
                   std::to_string(m.local_count)});
  };
  add_spec(abstract_spec);
  add_spec(build_core_spec(CoreSpecScenario::stage(5)));
  add_spec(composed);
  std::printf("%s", sizes.to_string().c_str());
  std::printf(
      "(paper: S3 804 PlusCal lines; DynamoDB 939 TLA+; ZENITH no-failover "
      "1.8K PlusCal + 4.9K TLA+, with failover 2.1K + 6.5K)\n");
  return 0;
}
