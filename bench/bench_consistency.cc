// Adaptive-consistency grid (PR 10): the topology corpus × {strong,
// eventual} NIB visibility, every cell a seeded chaos campaign with the
// three replicated-control-plane fault kinds enabled (leader kill, leader
// partition, lease stall) and the full §3.3 oracle plus the lockstep
// conformance check at quiescence.
//
// The availability/consistency trade the paper motivates shows up as the
// strong-vs-eventual row pairs: eventual cells publish install commits from
// the bounded-staleness apply log (eventual_commits > 0, max lag ≤ the E1
// bound) while strong cells take the barrier on every commit; both must be
// violation-free, and every cell must be deterministic (equal seeds ⇒ equal
// verdict digests — counted and gated, not assumed).
#include <chrono>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "chaos/parallel.h"
#include "mc/lockstep.h"
#include "obs/bench_results.h"

namespace zenith {
namespace {

chaos::CampaignConfig cell_config(chaos::TopologyKind topology,
                                  std::size_t size, bool eventual,
                                  std::uint64_t seed) {
  chaos::CampaignConfig config;
  config.topology = topology;
  config.topology_size = size;
  config.seed = seed;
  config.schedule.horizon = seconds(3);
  config.schedule.fault_count = 10;
  // The three repl fault kinds this grid is about; the generic switch/link/
  // component classes keep their default weights alongside.
  config.core.repl.num_shards = 2;
  config.schedule.weights.repl_kill_leader = 0.25;
  config.schedule.weights.repl_partition_leader = 0.15;
  config.schedule.weights.repl_lease_stall = 0.10;
  config.initial_flows = 4;
  config.update_period = millis(100);
  config.core.consistency.eventual_installs = eventual;
  // Slow the apply pump well below the commit cadence so the eventual log
  // actually accumulates: peak lag then probes the E1 bound instead of
  // sitting at 1 (the structural drain still caps it at staleness_bound).
  config.core.eventual_apply_service = millis(1);
  config.lockstep = true;
  return config;
}

struct CellResult {
  std::size_t campaigns = 0;
  std::size_t violations = 0;
  std::size_t repl_faults = 0;
  std::size_t eventual_commits = 0;
  std::size_t eventual_max_lag = 0;
  std::size_t strong_barriers = 0;
  std::size_t dags_submitted = 0;
  std::size_t dags_certified = 0;
  std::size_t digest_mismatches = 0;
  Summary quiescence;
};

bool is_repl_fault(const std::string& kind) {
  return kind.rfind("repl-", 0) == 0;
}

// One grid cell: `seeds` campaigns plus a digest re-run of the first seed
// (the determinism witness). All runs fan out on the pool together;
// aggregation happens afterwards in seed order so stdout stays
// byte-identical to a serial sweep.
CellResult run_cell(const chaos::ParallelRunner& runner,
                    chaos::TopologyKind topology, std::size_t size,
                    bool eventual, std::size_t seeds) {
  std::vector<chaos::CampaignConfig> configs;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    configs.push_back(cell_config(topology, size, eventual, seed));
  }
  configs.push_back(cell_config(topology, size, eventual, 1));  // re-run
  std::vector<chaos::CampaignResult> results = runner.run_campaigns(configs);
  CellResult out;
  for (std::size_t i = 0; i < seeds; ++i) {
    const chaos::CampaignResult& result = results[i];
    ++out.campaigns;
    if (!result.ok) ++out.violations;
    for (const auto& [kind, count] : result.stats.faults_by_kind) {
      if (is_repl_fault(kind)) out.repl_faults += count;
    }
    out.eventual_commits += result.stats.eventual_commits;
    out.eventual_max_lag =
        std::max(out.eventual_max_lag, result.stats.eventual_max_lag);
    out.strong_barriers += result.stats.strong_barriers;
    out.dags_submitted += result.stats.dags_submitted;
    out.dags_certified += result.stats.dags_certified;
    out.quiescence.add(to_seconds(result.stats.quiescence_latency));
  }
  if (results.back().verdict_digest() != results.front().verdict_digest()) {
    ++out.digest_mismatches;
  }
  return out;
}

}  // namespace
}  // namespace zenith

int main(int argc, char** argv) {
  using namespace zenith;
  benchutil::Options opts = benchutil::parse_options(argc, argv);
  // The lockstep conformance oracle runs at every campaign's quiescence
  // (config.lockstep above); install it once before any cell runs.
  mc::enable_campaign_lockstep_oracle();
  benchutil::banner(
      "Adaptive consistency: strong vs eventual NIB visibility under chaos",
      "per-OP-class consistency — eventual install commits from a "
      "bounded-staleness log (E1), strong OPs barrier first (E2), both "
      "violation-free under replicated leader kill/partition/lease faults");

  struct Entry {
    chaos::TopologyKind kind;
    std::size_t size;
    const char* label;
    bool quick;  // included in --quick sweeps
  };
  const Entry topologies[] = {
      {chaos::TopologyKind::kFatTree, 4, "fat_tree_k4", true},
      {chaos::TopologyKind::kFatTree, 8, "fat_tree_k8", false},
      {chaos::TopologyKind::kFatTree, 16, "fat_tree_k16", false},
      {chaos::TopologyKind::kKdlLike, 20, "kdl_like", true},
      {chaos::TopologyKind::kRandomConnected, 16, "random_connected", false},
      {chaos::TopologyKind::kRing, 10, "ring", true},
  };
  const std::size_t seeds_per_cell = opts.quick ? 1 : 2;

  chaos::ParallelRunner runner;  // thread count: $ZENITH_BENCH_THREADS
  std::size_t cell_count = 0;
  for (const Entry& entry : topologies) {
    if (opts.quick && !entry.quick) continue;
    cell_count += 2;  // strong + eventual
  }
  std::printf("running %zu cells x %zu seed(s) (+1 digest re-run each) on "
              "%zu thread(s)\n",
              cell_count, seeds_per_cell, runner.threads());

  obs::BenchResult bench("consistency");
  TablePrinter table({"topology", "mode", "runs", "repl faults", "violations",
                      "evt commits", "max lag", "barriers", "dags(cert/sub)",
                      "quiesce p50(s)"});
  std::size_t total_campaigns = 0;
  std::size_t total_violations = 0;
  std::size_t total_mismatches = 0;
  std::size_t total_repl_faults = 0;
  std::size_t eventual_commits = 0;
  std::size_t eventual_max_lag = 0;
  std::size_t strong_barriers_eventual = 0;
  Summary quiesce_strong;
  Summary quiesce_eventual;
  auto sweep_start = std::chrono::steady_clock::now();
  for (const Entry& entry : topologies) {
    if (opts.quick && !entry.quick) continue;
    for (bool eventual : {false, true}) {
      CellResult cell = run_cell(runner, entry.kind, entry.size, eventual,
                                 seeds_per_cell);
      table.add_row({entry.label, eventual ? "eventual" : "strong",
                     std::to_string(cell.campaigns),
                     std::to_string(cell.repl_faults),
                     std::to_string(cell.violations),
                     std::to_string(cell.eventual_commits),
                     std::to_string(cell.eventual_max_lag),
                     std::to_string(cell.strong_barriers),
                     std::to_string(cell.dags_certified) + "/" +
                         std::to_string(cell.dags_submitted),
                     TablePrinter::fmt(cell.quiescence.median(), 3)});
      total_campaigns += cell.campaigns;
      total_violations += cell.violations;
      total_mismatches += cell.digest_mismatches;
      total_repl_faults += cell.repl_faults;
      if (eventual) {
        eventual_commits += cell.eventual_commits;
        eventual_max_lag = std::max(eventual_max_lag, cell.eventual_max_lag);
        strong_barriers_eventual += cell.strong_barriers;
        quiesce_eventual.add(cell.quiescence.median());
      } else {
        quiesce_strong.add(cell.quiescence.median());
      }
    }
  }
  double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  std::printf("%s", table.to_string().c_str());
  std::printf("\nacross eventual cells: %zu install commits published via "
              "the eventual log,\npeak staleness %zu entries (E1 bound 8), "
              "%zu strong barriers taken (E2);\ndigest re-run mismatches: "
              "%zu\n",
              eventual_commits, eventual_max_lag, strong_barriers_eventual,
              total_mismatches);
  // stderr: stdout must stay byte-identical across runs (the determinism
  // probe diffs it), and wall time is the one nondeterministic datum here.
  std::fprintf(stderr,
               "sweep wall time: %.2fs (%zu campaigns + %zu digest re-runs, "
               "%zu thread(s))\n",
               sweep_wall, total_campaigns, total_campaigns / seeds_per_cell,
               runner.threads());

  bench.add_count("campaigns", total_campaigns);
  bench.add_count("violations_correct_build", total_violations);
  bench.add_count("determinism_mismatches", total_mismatches);
  bench.add_count("repl_faults_injected", total_repl_faults);
  bench.add_count("eventual_commits", eventual_commits);
  bench.add_count("eventual_max_lag", eventual_max_lag);
  bench.add_count("strong_barriers_eventual_cells", strong_barriers_eventual);
  bench.add("quiescence_p50_strong", quiesce_strong.median(), "s");
  bench.add("quiescence_p50_eventual", quiesce_eventual.median(), "s");
  bench.add("sweep_wall_time", sweep_wall, "s");
  bench.add_note("mode", opts.quick ? "quick" : "full");
  bench.add_note("threads", std::to_string(runner.threads()));
  bench.add_note("lockstep", "on");
  if (opts.json) {
    std::string path = bench.write(".");
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
