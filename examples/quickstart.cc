// Quickstart: bring up ZENITH-core on a small simulated network, submit a
// DAG of routing OPs, and watch it converge.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dag/compiler.h"
#include "harness/experiment.h"
#include "topo/generators.h"

int main() {
  using namespace zenith;

  // 1. A topology: the 4-switch diamond from the paper's Figure 2
  //    (A=sw0, B=sw1, C=sw2, D=sw3).
  Topology topo = gen::figure2_diamond();

  // 2. A deployment: simulator + switch fabric + ZENITH-core.
  ExperimentConfig config;
  config.kind = ControllerKind::kZenithNR;
  config.seed = 1;
  Experiment deployment(topo, config);
  deployment.start();

  // 3. Intent: route a flow from A to D via B, expressed as a DAG whose
  //    edges force downstream-before-upstream installation (hitless).
  OpIdAllocator& ids = deployment.op_ids();
  Path route{SwitchId(0), SwitchId(1), SwitchId(3)};  // A -> B -> D
  CompiledPath compiled = compile_single_path(route, FlowId(1),
                                              /*priority=*/1, ids);
  Dag dag(DagId(1));
  for (const Op& op : compiled.ops) (void)dag.add_op(op);
  for (auto [before, after] : compiled.edges) (void)dag.add_edge(before, after);
  std::printf("submitting DAG %u with %zu OPs (%zu ordering edges)\n",
              dag.id().value(), dag.size(), dag.edge_count());

  // 4. Submit and wait for the controller to certify convergence — and for
  //    the ground truth (actual switch tables) to agree.
  auto latency = deployment.install_and_wait(std::move(dag), seconds(10));
  if (!latency.has_value()) {
    std::printf("did not converge!\n");
    return 1;
  }
  std::printf("converged in %.3f ms (simulated)\n",
              to_seconds(*latency) * 1e3);

  // 5. Inspect the data plane.
  for (SwitchId sw : deployment.nib().switches()) {
    const auto& table = deployment.fabric().at(sw).table();
    std::printf("  %s: %zu rules\n",
                deployment.topology().switch_name(sw).c_str(), table.size());
    for (const auto& entry : table) {
      std::printf("    dst=sw%u -> next_hop=sw%u (prio %d, op%u)\n",
                  entry.rule.dst.value(), entry.rule.next_hop.value(),
                  entry.rule.priority, entry.installed_by.value());
    }
  }

  // 6. The correctness monitors that guard every experiment.
  std::printf("DAG order violations: %zu; NIB view consistent: %s\n",
              deployment.order_checker().violations().size(),
              deployment.checker().check(std::nullopt).view_consistent
                  ? "yes"
                  : "no");
  return 0;
}
