// Failure recovery walkthrough: a transient complete switch failure (the
// hardest Table 3 data-plane case) and a complete OFC microservice failure,
// both survived without inconsistency. Run with ZLOG at debug to watch the
// CLEAR_TCAM pipeline (Figure A.5) in action.
#include <cstdio>

#include "common/logging.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

int main(int argc, char** argv) {
  using namespace zenith;
  if (argc > 1 && std::string(argv[1]) == "-v") {
    Logger::instance().set_level(LogLevel::kDebug);
  }

  ExperimentConfig config;
  config.kind = ControllerKind::kZenithNR;
  config.seed = 11;
  Experiment deployment(gen::kdl_like(30, 3), config);
  deployment.start();
  Workload workload(&deployment, 13);
  Dag initial = workload.initial_dag(10);
  DagId id = initial.id();
  if (!deployment.install_and_wait(std::move(initial), seconds(30))) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  std::printf("10 flows installed and certified\n");

  // --- transient complete switch failure -----------------------------------
  SwitchId victim(5);
  std::printf("\n[1] sw5 loses power (complete transient failure)...\n");
  deployment.fabric().inject_failure(victim,
                                     FailureMode::kCompleteTransient);
  deployment.run_for(seconds(1));
  deployment.fabric().inject_recovery(victim);
  std::printf("    sw5 back up; controller wipes+reprograms it "
              "(P6/P8 recovery pipeline)\n");
  auto recovered = deployment.run_until(
      [&] { return deployment.checker().converged(id); }, seconds(30));
  std::printf("    reconverged: %s (%.3f s)\n",
              recovered ? "yes" : "NO",
              recovered ? to_seconds(*recovered) : -1.0);

  // --- complete OFC microservice failure ------------------------------------
  std::printf("\n[2] the entire OFC microservice dies mid-update...\n");
  std::optional<Dag> reroute;
  for (int attempt = 0; attempt < 8 && !reroute.has_value(); ++attempt) {
    reroute = workload.reroute_dag();
  }
  if (reroute.has_value()) {
    DagId reroute_id = reroute->id();
    deployment.controller().submit_dag(std::move(*reroute));
    deployment.run_for(millis(2));
    deployment.controller().crash_ofc();
    auto failover = deployment.run_until(
        [&] { return deployment.checker().converged(reroute_id); },
        seconds(30));
    std::printf("    standby instance took over; update completed: %s "
                "(%.3f s)\n",
                failover ? "yes" : "NO",
                failover ? to_seconds(*failover) : -1.0);
  }

  // --- final consistency audit -----------------------------------------------
  auto report = deployment.checker().check(std::nullopt);
  std::printf("\nfinal audit: view==data-plane on all healthy switches: %s; "
              "DAG-order violations: %zu\n",
              report.view_consistent ? "yes" : "NO",
              deployment.order_checker().violations().size());
  return report.view_consistent ? 0 : 1;
}
