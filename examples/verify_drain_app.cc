// The ZENITH-apps workflow (§4): specify an app in the NADIR IR, verify it
// independently of the core against AbstractCore, then run the "generated"
// app (the same spec, interpreted) to produce its DAG.
#include <cstdio>

#include "apps/drain_spec.h"
#include "mc/nadir_explorer.h"
#include "nadir/interpreter.h"
#include "nadir/metrics.h"

int main() {
  using namespace zenith;

  // 1. The spec: Listing 4's drainer over a diamond topology, draining
  //    node 1 while flow 0->1->3 is active.
  apps::DrainSpecScenario scenario;
  nadir::Spec spec = apps::build_drain_spec(scenario);
  nadir::SpecMetrics metrics = nadir::measure(spec);
  std::printf("spec '%s': %zu processes, %zu labeled steps, %zu globals\n",
              spec.name().c_str(), metrics.process_count, metrics.step_count,
              metrics.global_count);

  // 2. Verify independently of the core (§4): explore every interleaving
  //    of drainer x AbstractCore, checking the DAG-correctness invariant
  //    ("no traffic over the drained switch") on every state and progress
  //    at quiescence. TypeOK (the NADIR annotations) is enforced per step.
  mc::NadirCheckerOptions options;
  options.invariant = [&](const nadir::Env& env) {
    return apps::check_no_traffic_via_drained(env, scenario.node_to_drain);
  };
  options.quiescence = [](const nadir::Env& env) {
    return apps::drain_submitted(env) ? "" : "drainer never submitted a DAG";
  };
  mc::NadirCheckResult result = mc::explore(spec, options);
  std::printf("crash-free verification: %s — %zu states, %zu transitions, "
              "%.3f s\n",
              result.ok ? "PASSED" : result.violation.c_str(),
              result.distinct_states, result.transitions, result.seconds);
  if (!result.ok) return 1;

  // 3. Now let the checker crash the drainer at any point (its pc and
  //    locals are lost; the NIB-backed queues survive). Listing 4 as
  //    published uses FIFOGet, so a crash between dequeue and SubmitDAG
  //    loses the request forever — the §3.9 "event processing" error class,
  //    found automatically:
  options.crashable = {"drainer"};
  options.max_crashes = 1;
  mc::NadirCheckResult buggy = mc::explore(spec, options);
  std::printf("with crash exploration:  %s\n",
              buggy.ok ? "PASSED (unexpected!)"
                       : ("FOUND: " + buggy.violation).c_str());

  // 4. The fix is the crash-safe AckQueueRead/AckQueuePop discipline
  //    (Listing 3's pattern applied to the app). Re-verify:
  apps::DrainSpecScenario fixed_scenario = scenario;
  fixed_scenario.crash_safe_queue = true;
  nadir::Spec fixed = apps::build_drain_spec(fixed_scenario);
  mc::NadirCheckResult fixed_result = mc::explore(fixed, options);
  std::printf("crash-safe variant:      %s — %zu states, %.3f s\n",
              fixed_result.ok ? "PASSED" : fixed_result.violation.c_str(),
              fixed_result.distinct_states, fixed_result.seconds);
  if (!fixed_result.ok) return 1;

  // 3. "Generate" and run: NADIR's runtime is the same interpreter; execute
  //    the verified spec to quiescence and show the DAG it produces.
  auto env = spec.make_initial_env();
  if (!env.ok()) return 1;
  nadir::Interpreter::run_to_quiescence(spec, env.value());
  const nadir::Value& dag =
      env.value().procs.at("drainer").locals.at("drainedDAG");
  std::printf("\nproduced drain DAG: %s\n", dag.to_string().c_str());
  std::printf("installed DAG ids at AbstractCore: %s\n",
              env.value().globals.at("InstalledDags").to_string().c_str());
  return 0;
}
