// Hitless drain on the B4 WAN: install traffic, drain a transit site with
// the drain application (§E), verify traffic kept flowing, then undrain.
#include <cstdio>

#include "apps/drain_app.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"
#include "traffic/traffic.h"

int main() {
  using namespace zenith;

  ExperimentConfig config;
  config.kind = ControllerKind::kZenithNR;
  config.seed = 4;
  Experiment deployment(gen::b4(), config);
  deployment.start();

  // Traffic: three flows across the WAN.
  Workload workload(&deployment, 9);
  Dag initial = workload.initial_dag_for_pairs({
      {SwitchId(0), SwitchId(8)},
      {SwitchId(1), SwitchId(10)},
      {SwitchId(2), SwitchId(11)},
  });
  if (!deployment.install_and_wait(std::move(initial), seconds(30))) {
    std::printf("initial routing did not converge\n");
    return 1;
  }
  TrafficModel traffic(&deployment.fabric());
  std::vector<Demand> demands = workload.demands();
  std::printf("initial throughput: %.1f Gbps\n",
              traffic.total_throughput(demands));

  // Pick a transit switch used by some flow and drain it — one that is not
  // an endpoint of any flow (an endpoint cannot be drained hitlessly; the
  // app would skip those flows).
  std::unordered_set<SwitchId> endpoints;
  for (const Demand& d : demands) {
    endpoints.insert(d.src);
    endpoints.insert(d.dst);
  }
  SwitchId victim;
  for (const Demand& d : demands) {
    Path path = traffic.resolve(d).path;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (!endpoints.count(path[i])) {
        victim = path[i];
        break;
      }
    }
    if (victim.valid()) break;
  }
  std::printf("draining %s...\n",
              deployment.topology().switch_name(victim).c_str());
  apps::DrainApp drain(&deployment.controller());
  apps::DrainRequest request;
  request.topology = gen::b4();
  for (const Demand& d : demands) {
    request.flows.push_back(d.flow);
    request.paths.push_back(traffic.resolve(d).path);
  }
  request.ops = workload.all_flow_ops();
  request.node_to_drain = victim;
  drain.submit(request);

  auto drained = deployment.run_until(
      [&] { return deployment.fabric().at(victim).table_size() == 0 &&
                   drain.drains_completed() == 1; },
      seconds(30));
  if (!drained.has_value()) {
    std::printf("drain did not complete (%zu rejected)\n",
                drain.drains_rejected());
    return 1;
  }
  std::printf("drained in %.3f s; throughput now %.1f Gbps; drains "
              "rejected: %zu\n",
              to_seconds(*drained), traffic.total_throughput(demands),
              drain.drains_rejected());

  // All three flows must still be delivered (the drain was hitless).
  for (const Demand& d : demands) {
    Resolution r = traffic.resolve(d);
    std::printf("  flow %u: %s via %zu hops\n", d.flow.value(),
                r.outcome == DeliveryOutcome::kDelivered ? "delivered"
                                                         : "NOT delivered",
                r.path.size());
  }

  // Undrain: return the switch to service.
  apps::DrainRequest undrain;
  undrain.topology = gen::b4();
  undrain.paths = drain.current_paths();
  undrain.flows = drain.current_flows();
  undrain.ops = drain.current_ops();
  undrain.node_to_drain = victim;
  undrain.undrain = true;
  drain.submit(undrain);
  deployment.run_for(seconds(5));
  std::printf("undrained; %s carries %zu rules again\n",
              deployment.topology().switch_name(victim).c_str(),
              deployment.fabric().at(victim).table_size());
  return 0;
}
