#include "pr/pr_controller.h"

#include "common/logging.h"

namespace zenith {

PrController::PrController(Simulator* sim, Fabric* fabric, PrConfig config)
    : sim_(sim), config_(config) {
  // PR is ZENITH-core minus the verification-driven fixes.
  config_.core.bugs.send_before_record = true;
  config_.core.bugs.pop_before_process = true;
  config_.core.bugs.skip_recovery_cleanup = true;
  config_.core.bugs.overlap_nib_race = true;
  config_.core.directed_reconciliation = false;

  core_ = std::make_unique<ZenithController>(sim, fabric, config_.core);
  reconciler_ = std::make_unique<Reconciler>(&core_->context(), config_.recon);

  // All controller components contend on the shared NIB with the
  // reconciler's batch transactions.
  CoreContext* ctx = &core_->context();
  for (Component* c : core_->components()) {
    c->set_gate([ctx] { return ctx->nib_locked_until; });
  }

  // Track OP status transitions for deadlock detection.
  nib().subscribe(&op_watch_sink_);

  if (config_.recon.reconcile_on_switch_up) watch_health_events();
}

void PrController::watch_health_events() {
  core_->register_app_sink(&health_sink_);
  health_sink_.set_wake_callback([this] {
    while (!health_sink_.empty()) {
      NibEvent event = health_sink_.pop();
      if (event.type == NibEvent::Type::kSwitchHealthChanged && event.sw_up) {
        // PRUp: preemptively reconcile a switch the moment it comes up.
        reconciler_->reconcile_switch(event.sw);
      }
    }
  });
}

void PrController::start() {
  core_->start();
  reconciler_->start();
  sim_->schedule(config_.deadlock_scan_period, [this] { deadlock_scan(); });
}

void PrController::deadlock_scan() {
  // Record (coarse) transition times from the event stream.
  while (!op_watch_sink_.empty()) {
    NibEvent event = op_watch_sink_.pop();
    if (event.type == NibEvent::Type::kOpStatusChanged) {
      last_transition_[event.op] = sim_->now();
      // Coalesced batch-ACK commits cover several OPs in one event.
      for (OpId id : event.batch) last_transition_[id] = sim_->now();
    }
  }
  Nib& n = nib();
  CoreContext& ctx = core_->context();
  for (OpStatus stuck : {OpStatus::kScheduled, OpStatus::kSent}) {
    for (OpId id : n.ops_with_status(stuck)) {
      auto it = last_transition_.find(id);
      SimTime last = it == last_transition_.end() ? 0 : it->second;
      if (sim_->now() - last < config_.deadlock_timeout) continue;
      const Op& op = n.op(id);
      if (n.switch_health(op.sw) != SwitchHealth::kUp) continue;
      // Stuck OP: the event carrying it was lost (component crash) or its
      // ACK never arrived. Re-issue through the pipeline; installs/deletes
      // are idempotent by OP id.
      ZLOG_DEBUG("PR deadlock timeout: re-issuing op%u", id.value());
      last_transition_[id] = sim_->now();
      n.set_op_status(id, OpStatus::kScheduled);
      ctx.enqueue_op(op.sw, id);
      ++deadlock_resolutions_;
    }
  }
  sim_->schedule(config_.deadlock_scan_period, [this] { deadlock_scan(); });
}

PrConfig make_pr_config(SimTime reconciliation_period) {
  PrConfig config;
  config.recon.period = reconciliation_period;
  return config;
}

PrConfig make_prup_config(SimTime reconciliation_period) {
  PrConfig config = make_pr_config(reconciliation_period);
  config.recon.reconcile_on_switch_up = true;
  return config;
}

PrConfig make_pr_noreconcile_config() {
  PrConfig config;
  config.recon.enabled = false;
  return config;
}

PrConfig make_odl_like_config() {
  // ODL (Figure A.2): same reconciliation strategy, but slower to react —
  // bigger deadlock timeout and (at the fabric level, set by the
  // experiment) a larger failure-detection delay.
  PrConfig config;
  config.deadlock_timeout = seconds(4);
  config.deadlock_scan_period = seconds(2);
  return config;
}

}  // namespace zenith
