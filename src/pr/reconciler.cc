#include "pr/reconciler.h"

#include <algorithm>

#include "common/logging.h"

namespace zenith {

Reconciler::Reconciler(CoreContext* ctx, ReconcilerConfig config)
    : Component(ctx->sim, "reconciler", micros(50)),
      ctx_(ctx),
      config_(config) {
  ctx_->reconciler_reply_queue.set_wake_callback([this] { kick(); });
}

void Reconciler::start() {
  if (!config_.enabled) return;
  sim()->schedule(config_.period, [this] { begin_cycle(); });
}

void Reconciler::begin_cycle() {
  if (!config_.enabled) return;
  // Fixed-rate cycles, Orion style: the next cycle fires one period from
  // this one's start whether or not this one's work has drained. When a
  // cycle's serialized NIB work exceeds the period, the pending-dump queue
  // and the NIB lock horizon grow without bound — the saturation collapse
  // behind Figure 11's ">500 nodes fails to converge" and Figure 3's
  // small-period blow-up.
  sim()->schedule(config_.period, [this] { begin_cycle(); });

  cycle_started_ = sim()->now();
  cycle_active_ = true;
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) != SwitchHealth::kUp) continue;
    pending_dumps_.push_back(sw);
  }
  ++cycles_completed_;
  ZLOG_DEBUG("reconciliation cycle started: %zu dumps queued",
             pending_dumps_.size());
  issue_next_dumps();
}

void Reconciler::issue_next_dumps() {
  Nib& nib = *ctx_->nib;
  while (outstanding_dumps_ < config_.max_outstanding_dumps &&
         !pending_dumps_.empty()) {
    SwitchId sw = pending_dumps_.front();
    pending_dumps_.pop_front();
    if (nib.switch_health(sw) != SwitchHealth::kUp) continue;
    SwitchRequest request;
    request.type = SwitchRequest::Type::kDumpTable;
    request.xid = kReconciliationXidFlag | sw.value();
    ctx_->transport->send(sw, request);
    ++outstanding_dumps_;
  }
}

void Reconciler::reconcile_switch(SwitchId sw) {
  if (ctx_->nib->switch_health(sw) != SwitchHealth::kUp) return;
  SwitchRequest request;
  request.type = SwitchRequest::Type::kDumpTable;
  request.xid = kReconciliationXidFlag | sw.value();
  ctx_->transport->send(sw, request);
  // Not counted toward the periodic cycle's outstanding set: directed
  // passes (PRUp) are fire-and-forget; the reply handler below treats every
  // reconciliation dump identically.
}

std::unordered_set<OpId> Reconciler::desired_on_switch(SwitchId sw) const {
  // Desired = what the controller believes installed (the view, which
  // includes long-lived background state) plus the current DAG's installs,
  // minus everything the current DAG deletes.
  Nib& nib = *ctx_->nib;
  std::unordered_set<OpId> desired = nib.view_installed(sw);
  auto current = nib.current_dag();
  if (current.has_value() && nib.has_dag(*current)) {
    const Dag& dag = nib.dag(*current);
    for (const Op* op : dag.all_ops()) {
      if (op->type == OpType::kInstallRule && op->sw == sw) {
        desired.insert(op->id);
      }
    }
    for (const Op* op : dag.all_ops()) {
      if (op->type == OpType::kDeleteRule) desired.erase(op->delete_target);
    }
  }
  return desired;
}

void Reconciler::process_dump(const SwitchReply& reply) {
  SwitchId sw = reply.sw;

  // Charge the serialized NIB transaction: every component stalls on NIB
  // access until this batch's commit. Batches are admitted one at a time
  // (try_step defers while a commit is pending) with a courtesy gap in
  // between, so regular OP processing interleaves between batches — the
  // per-access penalty is bounded by one batch, and the *fraction* of time
  // reconciliation holds the NIB grows with n x table size.
  double entries = static_cast<double>(reply.table.size());
  SimTime batch_cost = static_cast<SimTime>(
      entries * config_.nib_per_entry_us +
      entries * entries * config_.nib_quadratic_us);
  SimTime commit_at = sim()->now() + batch_cost;
  ctx_->nib_locked_until = commit_at;

  // The diff itself applies at commit time.
  std::vector<DumpedEntry> table = reply.table;
  sim()->schedule_at(commit_at, [this, sw, table = std::move(table)] {
    Nib& nib = *ctx_->nib;
    if (nib.switch_health(sw) != SwitchHealth::kUp) return;
    std::unordered_set<OpId> desired = desired_on_switch(sw);
    std::unordered_set<OpId> present;
    for (const DumpedEntry& e : table) present.insert(e.installed_by);

    // Unintended entries (hidden or stale): delete directly.
    for (const DumpedEntry& e : table) {
      if (desired.count(e.installed_by)) continue;
      Op del;
      del.id = ctx_->op_ids->next();
      del.type = OpType::kDeleteRule;
      del.sw = sw;
      del.delete_target = e.installed_by;
      nib.put_op(del);
      nib.set_op_status(del.id, OpStatus::kSent);
      SwitchRequest request;
      request.type = SwitchRequest::Type::kDelete;
      request.op = del;
      request.xid = del.id.value();
      ctx_->transport->send(sw, request);
      ++fixes_applied_;
    }
    // Intended-but-missing entries: re-install directly.
    auto current = nib.current_dag();
    for (OpId id : desired) {
      if (present.count(id)) continue;
      const Op& op = nib.op(id);
      // Reset the view: whatever the NIB believed, the switch disagrees.
      nib.view_remove_installed(sw, id);
      nib.set_op_status(id, OpStatus::kSent);
      if (current.has_value() && nib.has_dag(*current) &&
          nib.dag(*current).contains(id)) {
        nib.clear_dag_done(*current);
      }
      SwitchRequest request;
      request.type = SwitchRequest::Type::kInstall;
      request.op = op;
      request.xid = id.value();
      ctx_->transport->send(sw, request);
      ++fixes_applied_;
    }
    // View entries the dump disproves (phantoms) without a desired intent:
    // just erase them from the view.
    std::vector<OpId> phantom;
    for (OpId id : nib.view_installed(sw)) {
      if (!present.count(id)) phantom.push_back(id);
    }
    for (OpId id : phantom) nib.view_remove_installed(sw, id);
    // Hidden entries that ARE desired: adopt.
    for (OpId id : present) {
      if (desired.count(id) && !nib.view_installed(sw).count(id)) {
        nib.view_add_installed(sw, id);
        nib.set_op_status(id, OpStatus::kDone);
      }
    }
  });
}

bool Reconciler::try_step() {
  NadirFifo<SwitchReply>& queue = ctx_->reconciler_reply_queue;
  if (queue.empty()) return false;
  // Batch admission control: wait for the previous batch's commit plus a
  // courtesy gap that lets NIB-gated components take their deferred steps.
  SimTime not_before = ctx_->nib_locked_until + millis(2);
  if (sim()->now() < not_before) {
    sim()->schedule_at(not_before, [this] { kick(); });
    return false;
  }
  SwitchReply reply = queue.pop();
  process_dump(reply);
  if (outstanding_dumps_ > 0) --outstanding_dumps_;
  if (pending_dumps_.empty() && outstanding_dumps_ == 0 && cycle_active_) {
    cycle_active_ = false;
    last_cycle_duration_ =
        std::max(ctx_->nib_locked_until, sim()->now()) - cycle_started_;
    ZLOG_DEBUG("reconciliation cycle drained in %.3fs",
               to_seconds(last_cycle_duration_));
  }
  issue_next_dumps();
  return true;
}

}  // namespace zenith
