// Periodic Reconciliation (§1.2): "a PR controller periodically retrieves
// all flow state from every switch, compares it with the locally stored
// intent, and updates inconsistent entries." Implementation follows the
// paper's description of Orion/ONOS reconciliation.
//
// Cost model (calibrated against Figure 4):
//  * each switch's dump costs the switch dump_linear/quadratic time (Fig 4a,
//    SN2100 measurements) — paid inside AbstractSwitch;
//  * dumps are issued in parallel, but "updating the NIB with the received
//    updates is the bottleneck" (Fig 4b): each reply's diff is applied as a
//    serialized NIB transaction charged nib_per_entry_us per dumped entry;
//    while the transaction runs, every other component's NIB access stalls
//    (Component gate).
//
// This shared-NIB contention is what makes PR's tail convergence grow with
// network size (Figure 11) and reconciliation period shrink (Figure 3);
// once a cycle's work exceeds the period, cycles run back to back and the
// controller stops converging (the >500-node collapse).
#pragma once

#include <deque>
#include <functional>
#include <unordered_set>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

struct ReconcilerConfig {
  SimTime period = seconds(30);  // Orion's interval
  bool enabled = true;           // false = PR-NoReconcile ablation
  bool reconcile_on_switch_up = false;  // PRUp variant
  /// Serialized NIB update cost per dumped entry (Figure 4b calibration).
  double nib_per_entry_us = 16.0;
  /// Mild superlinear term per batch (entries^2), from the same calibration.
  double nib_quadratic_us = 3.0e-4;
  /// Dump pacing: at most this many outstanding dumps at once. Real
  /// reconcilers rate-limit their sweeps; without pacing a cycle's dumps
  /// all land at once and the NIB lock horizon jumps by the full cycle's
  /// work in one burst.
  std::size_t max_outstanding_dumps = 4;
};

class Reconciler : public Component {
 public:
  Reconciler(CoreContext* ctx, ReconcilerConfig config);

  /// Starts the periodic cycle.
  void start();

  /// Directed single-switch pass (PRUp uses this on recovery events).
  void reconcile_switch(SwitchId sw);

  std::uint64_t cycles_completed() const { return cycles_completed_; }
  std::uint64_t fixes_applied() const { return fixes_applied_; }
  /// Wall (sim) duration of the last full cycle.
  SimTime last_cycle_duration() const { return last_cycle_duration_; }

 protected:
  bool try_step() override;

 private:
  void begin_cycle();
  void issue_next_dumps();
  void process_dump(const SwitchReply& reply);
  /// Install OPs of the current DAG that should be on `sw` once converged.
  std::unordered_set<OpId> desired_on_switch(SwitchId sw) const;

  CoreContext* ctx_;
  ReconcilerConfig config_;
  bool cycle_active_ = false;
  std::deque<SwitchId> pending_dumps_;
  std::size_t outstanding_dumps_ = 0;
  SimTime cycle_started_ = 0;
  SimTime last_cycle_duration_ = 0;
  std::uint64_t cycles_completed_ = 0;
  std::uint64_t fixes_applied_ = 0;
};

}  // namespace zenith
