// The PR baseline controller (§6 "Comparison Baselines"): "a simplified
// version of ZENITH-core that is robust to concurrency errors but relies on
// periodic reconciliation to be correct under switch or component failures."
//
// Concretely, PR is ZENITH-core with the historically common shortcuts that
// the verification process eliminated (§3.9):
//   * send-before-record (Listing 1's ordering),
//   * pop-before-process event handling (events lost on component crash),
//   * optimistic switch recovery (mark UP, skip the CLEAR/reset pipeline),
// plus two recovery crutches real PR controllers carry:
//   * the periodic Reconciler,
//   * a deadlock timeout "much shorter than the PR interval" that re-issues
//     OPs stuck between states (§6.1).
//
// Variants:
//   PR      — the default;
//   PRUp    — additionally reconciles a switch the moment it comes up;
//   PR-NR   — reconciliation disabled (the Figure 11 ablation; NOT robust);
//   ODL-like— PR with slow failure detection, approximating the
//             OpenDaylight behaviour of Figure A.2.
#pragma once

#include <memory>

#include "core/controller.h"
#include "pr/reconciler.h"

namespace zenith {

struct PrConfig {
  CoreConfig core;          // bug knobs are forced on in the constructor
  ReconcilerConfig recon;
  /// Stuck-OP resend timeout (resolves deadlocks from lost events).
  SimTime deadlock_timeout = seconds(2);
  SimTime deadlock_scan_period = seconds(1);
};

class PrController {
 public:
  PrController(Simulator* sim, Fabric* fabric, PrConfig config = {});

  void start();

  ZenithController& core() { return *core_; }
  Nib& nib() { return core_->nib(); }
  Reconciler& reconciler() { return *reconciler_; }

  void submit_dag(Dag dag) { core_->submit_dag(std::move(dag)); }
  void delete_dag(DagId id) { core_->delete_dag(id); }
  OpIdAllocator& op_ids() { return core_->op_ids(); }

  std::uint64_t deadlock_resolutions() const { return deadlock_resolutions_; }

 private:
  void deadlock_scan();
  void watch_health_events();

  Simulator* sim_;
  PrConfig config_;
  std::unique_ptr<ZenithController> core_;
  std::unique_ptr<Reconciler> reconciler_;
  /// App-style sink used to spot switch-up events for PRUp.
  NadirFifo<NibEvent> health_sink_;
  /// op id -> sim time of last observed status change (deadlock detection).
  std::unordered_map<OpId, SimTime> last_transition_;
  NadirFifo<NibEvent> op_watch_sink_;
  std::uint64_t deadlock_resolutions_ = 0;
};

/// Convenience factories for the §6 baselines.
PrConfig make_pr_config(SimTime reconciliation_period = seconds(30));
PrConfig make_prup_config(SimTime reconciliation_period = seconds(30));
PrConfig make_pr_noreconcile_config();
PrConfig make_odl_like_config();

}  // namespace zenith
