// ChaosCampaign: one seeded randomized-fault run with a live workload and
// an invariant oracle.
//
// From a single RNG seed the campaign derives everything: the topology
// (when seed-parameterized), the fault schedule, the workload's DAG update
// stream and every simulated delay — so a campaign is a pure function of
// (config, seed) and two runs with equal seeds produce identical schedules
// and identical verdicts. Execution is driven through the Trace
// Orchestrator (ungated), which is also how shrunk reproducers replay: the
// discovery path and the regression path share one engine.
//
// The oracle checks the paper's correctness conditions (§3.3) over the run:
//  * CorrectDAGOrder   — DagOrderChecker, online, over every submitted DAG;
//  * no hidden entries — the §G signature, watched continuously on the NIB
//                        event stream (the window can be microseconds);
//  * eventual consistency — at quiescence (all transient faults recovered,
//    schedule exhausted, settle time granted) the last-submitted DAG must
//    be certified in the NIB, ground truth must agree, and the full
//    NIB-view/switch-table comparison must be clean.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/schedule.h"
#include "harness/experiment.h"
#include "to/trace.h"

namespace zenith::obs {
class Observability;
}

namespace zenith::chaos {

enum class TopologyKind : std::uint8_t {
  kDiamond,   // the Figure 2 four-switch example
  kLinear,
  kRing,
  kB4,        // 12-site WAN
  kFatTree,   // topology_size is k (must be even)
  kKdlLike,   // sparse WAN, seed-parameterized
  kRandomConnected,  // spanning tree + n/4 extra edges, seed-parameterized
};

const char* to_string(TopologyKind kind);

struct CampaignConfig {
  std::uint64_t seed = 1;
  TopologyKind topology = TopologyKind::kKdlLike;
  /// Node count (kLinear/kRing/kKdlLike) or k (kFatTree); ignored otherwise.
  std::size_t topology_size = 20;
  ControllerKind controller = ControllerKind::kZenithNR;
  CoreConfig core;  // bug knobs for deliberate-defect hunts live here
  ChaosScheduleConfig schedule;
  /// Workload: initial flow count and the live DAG-update cadence.
  std::size_t initial_flows = 6;
  SimTime update_period = millis(250);
  /// Extra time after the schedule's horizon for the controller to reach
  /// quiescence before the oracle declares an eventual-consistency
  /// violation.
  SimTime settle_timeout = seconds(30);
  /// The hidden-entry probe presumes ZENITH recovery semantics; PR-style
  /// baselines leave hidden entries by design between reconciliations.
  bool check_hidden_entries = true;
  /// Perturb core.failover_takeover_delay with a seed-derived draw from
  /// [takeover_delay_min, takeover_delay_max] before the run: chaos then
  /// explores takeover-timing races, while the draw being a pure function of
  /// the seed keeps equal-seed runs byte-identical (the determinism
  /// fingerprints still match).
  bool randomize_takeover_delay = false;
  SimTime takeover_delay_min = millis(20);
  SimTime takeover_delay_max = millis(400);
  /// Run the model-conformance oracle at quiescence in addition to the
  /// campaign's own invariants. The oracle itself lives in the lockstep
  /// library (src/mc) — a layer above this one — so it is injected via
  /// set_campaign_lockstep_oracle(); call mc::enable_campaign_lockstep_oracle()
  /// once per process before enabling this flag.
  bool lockstep = false;
};

struct CampaignStats {
  std::size_t faults_injected = 0;
  std::map<std::string, std::size_t> faults_by_kind;
  std::size_t dags_submitted = 0;
  std::size_t dags_certified = 0;
  std::size_t installs_observed = 0;
  std::size_t sim_events_executed = 0;
  SimTime quiescence_latency = 0;  // horizon end -> oracle satisfied
  // Adaptive-consistency telemetry (PR 10); all zero in all-strong runs, so
  // verdict_digest() — which never folds them — stays stable either way.
  std::size_t eventual_commits = 0;   // OPs published via the eventual log
  std::size_t eventual_max_lag = 0;   // peak pending entries (E1 evidence)
  std::size_t strong_barriers = 0;    // forced drains before strong ops
};

struct CampaignResult {
  bool ok = true;
  std::vector<std::string> violations;
  CampaignStats stats;
  std::uint64_t schedule_fingerprint = 0;
  /// FNV-1a over every causal span the run recorded (ids, timestamps,
  /// parents, labels). Identical seeds must yield identical values — this is
  /// the byte-identical-trace determinism contract.
  std::uint64_t trace_fingerprint = 0;
  /// Same contract for the end-of-run metrics snapshot.
  std::uint64_t metrics_fingerprint = 0;
  /// Flight-recorder tail, captured only when the oracle flagged a
  /// violation; travels with the ddmin-shrunk reproducer
  /// (ShrinkResult::minimal_result) as the causal history of the failure.
  std::string flight_recorder_dump;
  /// Stable digest of (fingerprints, verdict, violation list): the value the
  /// determinism test compares across re-runs.
  std::uint64_t verdict_digest() const;
  std::string summary() const;
};

Topology make_topology(const CampaignConfig& config);

class ChaosCampaign {
 public:
  explicit ChaosCampaign(CampaignConfig config);

  /// Generates this seed's schedule and runs it.
  CampaignResult run();

  /// Runs an explicit schedule (the shrinker's entry point).
  CampaignResult run(const ChaosSchedule& schedule);

  /// Replays a reproducer trace (only injection steps are meaningful) under
  /// the same workload and oracle as a generated campaign.
  CampaignResult replay(const to::Trace& trace);

  /// Same, but reporting into a caller-supplied observability bundle instead
  /// of the campaign's own (the bench binaries use this to export Chrome
  /// traces of a run). The bundle's clock is left frozen at the run's final
  /// SimTime on return. With null, a campaign-local bundle is used — that is
  /// what fills the result's fingerprints and flight-recorder dump.
  CampaignResult replay(const to::Trace& trace, obs::Observability* external);

  /// The schedule run() generated (valid after run()).
  const ChaosSchedule& schedule() const { return schedule_; }

  const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  ChaosSchedule schedule_;
};

/// Renders a schedule as a reproducer trace: one injection step per event,
/// inter-event gaps preserved in TraceStep::delay.
to::Trace schedule_to_trace(const ChaosSchedule& schedule, std::string name,
                            std::string violation);

/// Process-wide conformance hook. The chaos library cannot link against the
/// lockstep checker (mc depends on chaos, not vice versa), so the oracle is
/// injected as a function: given the quiesced experiment and the last
/// submitted DAG, return conformance violations (empty = conformant). The
/// campaign prefixes each returned message with "lockstep: ". Passing an
/// empty function uninstalls the hook.
using LockstepOracle =
    std::function<std::vector<std::string>(Experiment&, DagId last_dag)>;
void set_campaign_lockstep_oracle(LockstepOracle oracle);
bool campaign_lockstep_oracle_installed();

}  // namespace zenith::chaos
