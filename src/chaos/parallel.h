// ParallelRunner: runs independent deterministic simulations on a pool of
// OS threads.
//
// Every chaos campaign (and every bench seed-sweep cell) is a pure function
// of its config: it builds a private Simulator, Nib, fabric and workload and
// shares no mutable state with any other run. That makes campaign-level
// parallelism trivial and — crucially — *fingerprint-preserving*: a
// campaign's verdict_digest, trace and metrics fingerprints are identical
// whether it ran serially, on a pool of 2 threads, or on 16. The only
// process-global the worker threads touch is the Logger singleton, which
// they read but never write.
//
// Results are returned in submission order regardless of completion order,
// so table output and downstream folds stay byte-stable.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "chaos/campaign.h"

namespace zenith::chaos {

/// Worker-thread count for bench/test harnesses: $ZENITH_BENCH_THREADS when
/// set (clamped to [1, 64]), else min(4, hardware_concurrency), else 1.
std::size_t default_bench_threads();

/// Runs body(0) .. body(n-1) on up to `threads` OS threads. Indexes are
/// claimed from an atomic counter, so each runs exactly once; the call
/// returns after all complete. With threads <= 1 (or n <= 1) the bodies run
/// inline in the calling thread — no pool, identical observable behavior.
/// The first exception thrown by any body is rethrown in the caller after
/// the pool drains.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

class ParallelRunner {
 public:
  explicit ParallelRunner(std::size_t threads = default_bench_threads());

  std::size_t threads() const { return threads_; }

  /// Runs one independent campaign per config (ChaosCampaign(config).run())
  /// and returns results in config order.
  std::vector<CampaignResult> run_campaigns(
      const std::vector<CampaignConfig>& configs) const;

 private:
  std::size_t threads_;
};

}  // namespace zenith::chaos
