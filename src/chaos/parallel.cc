#include "chaos/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

namespace zenith::chaos {

std::size_t default_bench_threads() {
  const char* env = std::getenv("ZENITH_BENCH_THREADS");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(std::min(parsed, 64L));
    }
    std::fprintf(stderr,
                 "[WARN  parallel] ignoring ZENITH_BENCH_THREADS='%s' "
                 "(want an integer >= 1)\n",
                 env);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min<std::size_t>(4, hw);
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ParallelRunner::ParallelRunner(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)) {}

std::vector<CampaignResult> ParallelRunner::run_campaigns(
    const std::vector<CampaignConfig>& configs) const {
  std::vector<CampaignResult> results(configs.size());
  parallel_for(configs.size(), threads_, [&](std::size_t i) {
    ChaosCampaign campaign(configs[i]);
    results[i] = campaign.run();
  });
  return results;
}

}  // namespace zenith::chaos
