#include "chaos/parallel.h"

#include <algorithm>

#include "common/executor.h"

namespace zenith::chaos {

// The pool machinery lives in common/executor.* since PR 8 (the sharded
// commit pipeline in src/core reuses it); these wrappers keep the chaos API.

std::size_t default_bench_threads() { return zenith::default_bench_threads(); }

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  zenith::parallel_for(n, threads, body);
}

ParallelRunner::ParallelRunner(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)) {}

std::vector<CampaignResult> ParallelRunner::run_campaigns(
    const std::vector<CampaignConfig>& configs) const {
  std::vector<CampaignResult> results(configs.size());
  parallel_for(configs.size(), threads_, [&](std::size_t i) {
    ChaosCampaign campaign(configs[i]);
    results[i] = campaign.run();
  });
  return results;
}

}  // namespace zenith::chaos
