#include "chaos/shrink.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace zenith::chaos {

namespace {

ChaosSchedule without_range(const ChaosSchedule& schedule, std::size_t begin,
                            std::size_t end) {
  ChaosSchedule out;
  out.seed = schedule.seed;
  out.events.reserve(schedule.events.size() - (end - begin));
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    if (i >= begin && i < end) continue;
    out.events.push_back(schedule.events[i]);
  }
  return out;
}

}  // namespace

DdminResult ddmin_schedule(
    const ChaosSchedule& failing,
    const std::function<bool(const ChaosSchedule&)>& violates,
    std::size_t max_oracle_runs) {
  DdminResult result;
  auto probe = [&](const ChaosSchedule& candidate) {
    ++result.oracle_runs;
    return violates(candidate);
  };

  if (!probe(failing)) {
    // Nothing to shrink: hand the schedule back unchanged.
    result.minimal = failing;
    return result;
  }
  result.reproduced = true;

  ChaosSchedule current = failing;
  std::size_t chunk = std::max<std::size_t>(1, current.size() / 2);
  while (!current.events.empty() && result.oracle_runs < max_oracle_runs) {
    bool removed_any = false;
    for (std::size_t begin = 0;
         begin < current.size() && result.oracle_runs < max_oracle_runs;) {
      std::size_t end = std::min(begin + chunk, current.size());
      ChaosSchedule candidate = without_range(current, begin, end);
      if (!candidate.events.empty() && probe(candidate)) {
        current = std::move(candidate);
        removed_any = true;
        // Do not advance: the chunk now starting at `begin` is new.
      } else {
        begin = end;
      }
    }
    if (chunk == 1) {
      result.one_minimal = !removed_any && result.oracle_runs < max_oracle_runs;
      if (!removed_any) break;
      continue;  // a pass at granularity 1 removed something; run another
    }
    if (!removed_any) chunk = std::max<std::size_t>(1, chunk / 2);
  }

  result.minimal = std::move(current);
  return result;
}

ShrinkResult shrink_schedule(const CampaignConfig& config,
                             const ChaosSchedule& failing,
                             std::size_t max_oracle_runs) {
  ShrinkResult result;
  result.original_events = failing.size();

  ChaosCampaign campaign(config);
  // Any violating candidate immediately becomes ddmin's `current`, so the
  // last failing probe's result IS the minimal schedule's result.
  CampaignResult last_failing;
  CampaignResult first_probe;
  bool first = true;
  auto violates = [&](const ChaosSchedule& candidate) -> bool {
    CampaignResult probe = campaign.run(candidate);
    bool failed = !probe.ok;
    if (first) {
      first_probe = probe;
      first = false;
    }
    if (failed) last_failing = std::move(probe);
    return failed;
  };

  DdminResult ddmin = ddmin_schedule(failing, violates, max_oracle_runs);
  result.oracle_runs = ddmin.oracle_runs;
  result.one_minimal = ddmin.one_minimal;
  result.minimal = std::move(ddmin.minimal);

  if (!ddmin.reproduced) {
    result.minimal_result = std::move(first_probe);
    result.trace = schedule_to_trace(result.minimal, "not-shrunk", "");
    return result;
  }

  result.minimal_result = std::move(last_failing);
  std::ostringstream name;
  name << "chaos-shrunk/" << to_string(config.topology) << "/seed"
       << config.seed;
  std::string violation = result.minimal_result.violations.empty()
                              ? ""
                              : result.minimal_result.violations.front();
  result.trace =
      schedule_to_trace(result.minimal, name.str(), std::move(violation));
  ZLOG_DEBUG("shrink: %zu -> %zu events in %zu oracle runs",
             result.original_events, result.minimal.size(),
             result.oracle_runs);
  return result;
}

}  // namespace zenith::chaos
