#include "chaos/shrink.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace zenith::chaos {

namespace {

ChaosSchedule without_range(const ChaosSchedule& schedule, std::size_t begin,
                            std::size_t end) {
  ChaosSchedule out;
  out.seed = schedule.seed;
  out.events.reserve(schedule.events.size() - (end - begin));
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    if (i >= begin && i < end) continue;
    out.events.push_back(schedule.events[i]);
  }
  return out;
}

}  // namespace

ShrinkResult shrink_schedule(const CampaignConfig& config,
                             const ChaosSchedule& failing,
                             std::size_t max_oracle_runs) {
  ShrinkResult result;
  result.original_events = failing.size();

  ChaosCampaign campaign(config);
  auto violates = [&](const ChaosSchedule& candidate,
                      CampaignResult* out) -> bool {
    ++result.oracle_runs;
    CampaignResult probe = campaign.run(candidate);
    bool failed = !probe.ok;
    if (out != nullptr) *out = std::move(probe);
    return failed;
  };

  CampaignResult current_result;
  if (!violates(failing, &current_result)) {
    // Nothing to shrink: hand the schedule back unchanged.
    result.minimal = failing;
    result.minimal_result = std::move(current_result);
    result.trace = schedule_to_trace(failing, "not-shrunk", "");
    return result;
  }

  ChaosSchedule current = failing;
  std::size_t chunk = std::max<std::size_t>(1, current.size() / 2);
  while (!current.events.empty() && result.oracle_runs < max_oracle_runs) {
    bool removed_any = false;
    for (std::size_t begin = 0;
         begin < current.size() && result.oracle_runs < max_oracle_runs;) {
      std::size_t end = std::min(begin + chunk, current.size());
      ChaosSchedule candidate = without_range(current, begin, end);
      CampaignResult candidate_result;
      if (!candidate.events.empty() &&
          violates(candidate, &candidate_result)) {
        current = std::move(candidate);
        current_result = std::move(candidate_result);
        removed_any = true;
        // Do not advance: the chunk now starting at `begin` is new.
      } else {
        begin = end;
      }
    }
    if (chunk == 1) {
      result.one_minimal = !removed_any && result.oracle_runs < max_oracle_runs;
      if (!removed_any) break;
      continue;  // a pass at granularity 1 removed something; run another
    }
    if (!removed_any) chunk = std::max<std::size_t>(1, chunk / 2);
  }

  result.minimal = std::move(current);
  result.minimal_result = std::move(current_result);
  std::ostringstream name;
  name << "chaos-shrunk/" << to_string(config.topology) << "/seed"
       << config.seed;
  std::string violation = result.minimal_result.violations.empty()
                              ? ""
                              : result.minimal_result.violations.front();
  result.trace =
      schedule_to_trace(result.minimal, name.str(), std::move(violation));
  ZLOG_DEBUG("shrink: %zu -> %zu events in %zu oracle runs",
             result.original_events, result.minimal.size(),
             result.oracle_runs);
  return result;
}

}  // namespace zenith::chaos
