#include "chaos/schedule.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"

namespace zenith::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSwitchFail: return "switch-fail";
    case FaultKind::kSwitchRecover: return "switch-recover";
    case FaultKind::kLinkFail: return "link-fail";
    case FaultKind::kLinkRecover: return "link-recover";
    case FaultKind::kComponentCrash: return "component-crash";
    case FaultKind::kOfcCrash: return "ofc-crash";
    case FaultKind::kDeCrash: return "de-crash";
    case FaultKind::kReplyBurstLoss: return "reply-burst-loss";
    case FaultKind::kReplKillLeader: return "repl-kill-leader";
    case FaultKind::kReplRevive: return "repl-revive";
    case FaultKind::kReplPartitionLeader: return "repl-partition-leader";
    case FaultKind::kReplHeal: return "repl-heal";
    case FaultKind::kReplLeaseStall: return "repl-lease-stall";
    case FaultKind::kReplLeaseResume: return "repl-lease-resume";
  }
  return "?";
}

std::string ChaosEvent::to_string() const {
  std::ostringstream out;
  out << "t=" << to_seconds(at) << "s " << chaos::to_string(kind);
  switch (kind) {
    case FaultKind::kSwitchFail:
      out << " sw" << sw.value()
          << (mode == FailureMode::kCompletePermanent
                  ? " (permanent)"
                  : mode == FailureMode::kPartialTransient ? " (partial)"
                                                           : " (complete)");
      break;
    case FaultKind::kSwitchRecover:
      out << " sw" << sw.value();
      break;
    case FaultKind::kLinkFail:
    case FaultKind::kLinkRecover:
      out << " link" << link.value();
      break;
    case FaultKind::kComponentCrash:
      out << " " << component;
      break;
    case FaultKind::kReplKillLeader:
    case FaultKind::kReplRevive:
    case FaultKind::kReplPartitionLeader:
    case FaultKind::kReplHeal:
    case FaultKind::kReplLeaseStall:
    case FaultKind::kReplLeaseResume:
      out << " shard" << shard;
      break;
    default:
      break;
  }
  return out.str();
}

std::string ChaosSchedule::to_string() const {
  std::ostringstream out;
  out << "schedule seed=" << seed << " (" << events.size() << " events)\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << "  " << i << ": " << events[i].to_string() << "\n";
  }
  return out.str();
}

std::uint64_t ChaosSchedule::fingerprint() const {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : to_string()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

std::vector<std::string> component_roster(const CoreConfig& core) {
  std::vector<std::string> names{"dag_scheduler", "nib_event_handler",
                                 "monitoring", "topo_handler",
                                 "failover_manager"};
  for (std::size_t i = 0; i < core.num_sequencers; ++i) {
    names.push_back("sequencer" + std::to_string(i));
  }
  for (std::size_t i = 0; i < core.num_workers; ++i) {
    names.push_back("worker" + std::to_string(i));
  }
  return names;
}

}  // namespace

ChaosSchedule generate_schedule(const Topology& topo, const CoreConfig& core,
                                const ChaosScheduleConfig& config,
                                std::uint64_t seed) {
  Rng rng(seed ^ 0xC4A05A11C4A05A11ull);
  ChaosSchedule schedule;
  schedule.seed = seed;

  const std::vector<std::string> components = component_roster(core);
  const FaultWeights& w = config.weights;
  struct WeightedKind {
    double weight;
    FaultKind kind;
    FailureMode mode;
  };
  const WeightedKind table[] = {
      {w.switch_complete_transient, FaultKind::kSwitchFail,
       FailureMode::kCompleteTransient},
      {w.switch_partial_transient, FaultKind::kSwitchFail,
       FailureMode::kPartialTransient},
      {w.switch_complete_permanent, FaultKind::kSwitchFail,
       FailureMode::kCompletePermanent},
      {w.link_flap, FaultKind::kLinkFail, FailureMode::kCompleteTransient},
      {w.component_crash, FaultKind::kComponentCrash,
       FailureMode::kCompleteTransient},
      {w.ofc_crash, FaultKind::kOfcCrash, FailureMode::kCompleteTransient},
      {w.de_crash, FaultKind::kDeCrash, FailureMode::kCompleteTransient},
      {w.reply_burst_loss, FaultKind::kReplyBurstLoss,
       FailureMode::kCompleteTransient},
      // Gated: on an unreplicated config these weigh zero, are never chosen,
      // and (being at the table's tail) leave every cumulative-weight
      // threshold above untouched — pre-replication schedules stay
      // byte-identical for any seed.
      {core.repl.num_shards > 0 ? w.repl_kill_leader : 0.0,
       FaultKind::kReplKillLeader, FailureMode::kCompleteTransient},
      {core.repl.num_shards > 0 ? w.repl_partition_leader : 0.0,
       FaultKind::kReplPartitionLeader, FailureMode::kCompleteTransient},
      {core.repl.num_shards > 0 ? w.repl_lease_stall : 0.0,
       FaultKind::kReplLeaseStall, FailureMode::kCompleteTransient},
  };
  double total = 0;
  for (const WeightedKind& entry : table) total += entry.weight;

  struct Primary {
    ChaosEvent event;
    SimTime down = 0;  // paired recovery delay; 0 = none
  };
  std::vector<Primary> primaries;
  for (std::size_t i = 0; i < config.fault_count && total > 0; ++i) {
    Primary primary;
    primary.event.at = static_cast<SimTime>(
        rng.uniform(1.0, static_cast<double>(config.horizon)));
    double roll = rng.uniform(0.0, total);
    const WeightedKind* chosen = &table[0];
    for (const WeightedKind& entry : table) {
      chosen = &entry;
      if (roll < entry.weight) break;
      roll -= entry.weight;
    }
    primary.event.kind = chosen->kind;
    primary.event.mode = chosen->mode;
    switch (chosen->kind) {
      case FaultKind::kSwitchFail:
        primary.event.sw = SwitchId(static_cast<std::uint32_t>(
            rng.next_below(topo.switch_count())));
        if (chosen->mode != FailureMode::kCompletePermanent) {
          primary.down = static_cast<SimTime>(
              rng.uniform(static_cast<double>(config.min_down),
                          static_cast<double>(config.max_down)));
        }
        break;
      case FaultKind::kLinkFail:
        primary.event.link = LinkId(
            static_cast<std::uint32_t>(rng.next_below(topo.link_count())));
        primary.down = static_cast<SimTime>(
            rng.uniform(static_cast<double>(config.min_down),
                        static_cast<double>(config.max_down)));
        break;
      case FaultKind::kComponentCrash:
        primary.event.component = rng.pick(components);
        break;
      case FaultKind::kReplKillLeader:
      case FaultKind::kReplPartitionLeader:
      case FaultKind::kReplLeaseStall:
        primary.event.shard = rng.next_below(core.repl.num_shards);
        primary.down = static_cast<SimTime>(
            rng.uniform(static_cast<double>(config.min_down),
                        static_cast<double>(config.max_down)));
        break;
      default:
        break;
    }
    primaries.push_back(std::move(primary));
  }
  std::stable_sort(primaries.begin(), primaries.end(),
                   [](const Primary& a, const Primary& b) {
                     return a.event.at < b.event.at;
                   });

  // Admit switch faults under the concurrency cap (nominal down-times);
  // replication faults under an at-most-one-disruption-per-shard rule
  // (stacked kills/partitions on one shard can starve its quorum past the
  // settle horizon, which tests liveness of the scheduler, not the
  // protocol); everything else passes through.
  auto repl_recovery_kind = [](FaultKind kind) {
    switch (kind) {
      case FaultKind::kReplKillLeader: return FaultKind::kReplRevive;
      case FaultKind::kReplPartitionLeader: return FaultKind::kReplHeal;
      case FaultKind::kReplLeaseStall: return FaultKind::kReplLeaseResume;
      case FaultKind::kLinkFail: return FaultKind::kLinkRecover;
      default: return FaultKind::kSwitchRecover;
    }
  };
  auto is_repl = [](FaultKind kind) {
    return kind == FaultKind::kReplKillLeader ||
           kind == FaultKind::kReplPartitionLeader ||
           kind == FaultKind::kReplLeaseStall;
  };
  std::vector<std::pair<SimTime, SimTime>> down_windows;  // [fail, recover)
  // shard -> disruption window end
  std::vector<std::pair<std::size_t, SimTime>> shard_windows;
  for (const Primary& primary : primaries) {
    if (primary.event.kind == FaultKind::kSwitchFail) {
      SimTime until = primary.down > 0 ? primary.event.at + primary.down
                                       : kSimTimeNever;
      std::size_t overlapping = 0;
      for (auto [begin, end] : down_windows) {
        if (begin <= primary.event.at && primary.event.at < end) ++overlapping;
      }
      if (overlapping >= config.max_concurrent_switch_down) continue;
      down_windows.emplace_back(primary.event.at, until);
    }
    if (is_repl(primary.event.kind)) {
      bool busy = false;
      for (auto [shard, end] : shard_windows) {
        if (shard == primary.event.shard && primary.event.at < end) busy = true;
      }
      if (busy) continue;
      shard_windows.emplace_back(primary.event.shard,
                                 primary.event.at + primary.down);
    }
    schedule.events.push_back(primary.event);
    if (primary.down > 0) {
      ChaosEvent recovery;
      recovery.at = primary.event.at + primary.down;
      recovery.sw = primary.event.sw;
      recovery.link = primary.event.link;
      recovery.shard = primary.event.shard;
      recovery.kind = repl_recovery_kind(primary.event.kind);
      schedule.events.push_back(std::move(recovery));
    }
  }
  std::stable_sort(
      schedule.events.begin(), schedule.events.end(),
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return schedule;
}

}  // namespace zenith::chaos
