// Randomized multi-fault schedules for chaos campaigns.
//
// A ChaosSchedule is a deterministic function of (topology, controller
// config, knobs, seed): a time-sorted list of fault injections spanning
// every failure axis the paper's Table 3 exercises — switch failures in all
// three FailureModes, link flaps, component crashes (Watchdog-recovered),
// complete OFC/DE microservice failures, and burst reply loss via an abrupt
// OFC switchover. Transient faults carry their paired recovery as a
// separate event so the shrinker can delete either independently (the
// fabric guards make orphaned recoveries no-ops).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/context.h"
#include "dataplane/abstract_switch.h"
#include "topo/topology.h"

namespace zenith::chaos {

enum class FaultKind : std::uint8_t {
  kSwitchFail,      // per `mode`, paired with kSwitchRecover unless permanent
  kSwitchRecover,
  kLinkFail,        // paired with kLinkRecover
  kLinkRecover,
  kComponentCrash,  // one controller component; the Watchdog revives it
  kOfcCrash,        // complete OFC microservice failure, standby takeover
  kDeCrash,         // complete DE microservice failure, standby takeover
  kReplyBurstLoss,  // drop_all_in_flight_replies + abrupt OFC switchover
  // Replicated-control-plane faults (src/repl). Only drawn when the core
  // config enables replication (repl.num_shards > 0); all are no-ops on an
  // unreplicated controller so shrunk schedules stay replayable anywhere.
  kReplKillLeader,      // kill shard leader mid-flight, paired kReplRevive
  kReplRevive,          // revive every dead replica of the shard
  kReplPartitionLeader, // isolate the leader from its peers, paired kReplHeal
  kReplHeal,            // heal all replica-to-replica partitions of the shard
  kReplLeaseStall,      // wedge the leader's heartbeats (lease-expiry race),
                        // paired kReplLeaseResume
  kReplLeaseResume,
};

const char* to_string(FaultKind kind);

struct ChaosEvent {
  FaultKind kind = FaultKind::kSwitchFail;
  SimTime at = 0;
  SwitchId sw;                                        // switch faults
  FailureMode mode = FailureMode::kCompleteTransient; // kSwitchFail
  LinkId link;                                        // link faults
  std::string component;                              // kComponentCrash
  std::size_t shard = 0;                              // kRepl* faults

  std::string to_string() const;
};

/// Relative likelihood of each primary fault class. Recoveries are not
/// drawn; they ride along with their transient fault. Permanent switch
/// failures default to zero weight because they permanently amputate part
/// of the data plane, which weakens the eventual-consistency oracle (the
/// checker can only skip dead switches); enable them deliberately.
struct FaultWeights {
  double switch_complete_transient = 0.32;
  double switch_partial_transient = 0.20;
  double switch_complete_permanent = 0.0;
  double link_flap = 0.16;
  double component_crash = 0.16;
  double ofc_crash = 0.06;
  double de_crash = 0.05;
  double reply_burst_loss = 0.05;
  /// Replication faults default to zero weight and are additionally forced
  /// to zero when `core.repl.num_shards == 0`: a zero-weight entry is never
  /// chosen and draws nothing from the rng stream, so schedules generated
  /// before replication existed are byte-identical (golden fingerprints).
  double repl_kill_leader = 0.0;
  double repl_partition_leader = 0.0;
  double repl_lease_stall = 0.0;
};

struct ChaosScheduleConfig {
  /// Faults are drawn uniformly over (0, horizon].
  SimTime horizon = seconds(8);
  /// Number of primary faults (recoveries excluded).
  std::size_t fault_count = 12;
  /// Transient down-time range (switch and link faults).
  SimTime min_down = millis(50);
  SimTime max_down = millis(1200);
  /// At most this many switches scheduled down simultaneously; excess
  /// switch faults are dropped at generation time.
  std::size_t max_concurrent_switch_down = 2;
  FaultWeights weights;
};

struct ChaosSchedule {
  std::uint64_t seed = 0;
  std::vector<ChaosEvent> events;  // sorted by `at`

  std::size_t size() const { return events.size(); }
  std::string to_string() const;
  /// FNV-1a over the rendered schedule: equal fingerprints ⇔ identical
  /// schedules, the determinism witness chaos_test asserts on.
  std::uint64_t fingerprint() const;
};

/// Deterministically generates a schedule. `core` supplies the component
/// roster (worker/sequencer counts) for kComponentCrash targets.
ChaosSchedule generate_schedule(const Topology& topo, const CoreConfig& core,
                                const ChaosScheduleConfig& config,
                                std::uint64_t seed);

}  // namespace zenith::chaos
