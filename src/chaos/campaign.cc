#include "chaos/campaign.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "harness/workload.h"
#include "obs/obs.h"
#include "to/orchestrator.h"
#include "topo/generators.h"

namespace zenith::chaos {

namespace {

constexpr std::uint64_t kWorkloadSalt = 0x5EEDF00D5EEDF00Dull;
constexpr std::uint64_t kTakeoverDelaySalt = 0x7A6E0FE2DE1A75A1ull;

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Stats label for an injection step (kAllow steps are not faults).
std::string step_label(const to::TraceStep& step) {
  using Type = to::TraceStep::Type;
  switch (step.type) {
    case Type::kSwitchFail:
      switch (step.mode) {
        case FailureMode::kCompletePermanent:
          return "switch-fail(permanent)";
        case FailureMode::kPartialTransient:
          return "switch-fail(partial)";
        case FailureMode::kCompleteTransient:
          return "switch-fail(complete)";
      }
      return "switch-fail";
    case Type::kSwitchRecover: return "switch-recover";
    case Type::kLinkFail: return "link-fail";
    case Type::kLinkRecover: return "link-recover";
    case Type::kCrashComponent: return "component-crash";
    case Type::kCrashOfc: return "ofc-crash";
    case Type::kCrashDe: return "de-crash";
    case Type::kDropReplies: return "reply-burst-loss";
    case Type::kReplKillLeader: return "repl-kill-leader";
    case Type::kReplRevive: return "repl-revive";
    case Type::kReplPartitionLeader: return "repl-partition-leader";
    case Type::kReplHeal: return "repl-heal";
    case Type::kReplLeaseStall: return "repl-lease-stall";
    case Type::kReplLeaseResume: return "repl-lease-resume";
    case Type::kAllow: return "allow";
  }
  return "?";
}

/// Installed by mc::enable_campaign_lockstep_oracle(); intentionally a plain
/// process global — campaigns are configured per-run, the oracle is a
/// link-time capability.
LockstepOracle g_lockstep_oracle;

}  // namespace

void set_campaign_lockstep_oracle(LockstepOracle oracle) {
  g_lockstep_oracle = std::move(oracle);
}

bool campaign_lockstep_oracle_installed() {
  return static_cast<bool>(g_lockstep_oracle);
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDiamond: return "diamond";
    case TopologyKind::kLinear: return "linear";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kB4: return "b4";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kKdlLike: return "kdl";
    case TopologyKind::kRandomConnected: return "random-connected";
  }
  return "?";
}

Topology make_topology(const CampaignConfig& config) {
  switch (config.topology) {
    case TopologyKind::kDiamond: return gen::figure2_diamond();
    case TopologyKind::kLinear: return gen::linear(config.topology_size);
    case TopologyKind::kRing: return gen::ring(config.topology_size);
    case TopologyKind::kB4: return gen::b4();
    case TopologyKind::kFatTree: return gen::fat_tree(config.topology_size);
    case TopologyKind::kKdlLike:
      return gen::kdl_like(config.topology_size, config.seed);
    case TopologyKind::kRandomConnected:
      return gen::random_connected(config.topology_size,
                                   config.topology_size / 4, config.seed);
  }
  return gen::figure2_diamond();
}

std::uint64_t CampaignResult::verdict_digest() const {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = fnv1a(hash, ok ? "ok" : "violation");
  for (const std::string& violation : violations) hash = fnv1a(hash, violation);
  std::ostringstream tail;
  tail << schedule_fingerprint << "|" << trace_fingerprint << "|"
       << metrics_fingerprint << "|" << stats.faults_injected << "|"
       << stats.dags_submitted << "|" << stats.dags_certified << "|"
       << stats.installs_observed << "|" << stats.sim_events_executed;
  return fnv1a(hash, tail.str());
}

std::string CampaignResult::summary() const {
  std::ostringstream out;
  out << (ok ? "OK" : "VIOLATION") << " faults=" << stats.faults_injected
      << " dags=" << stats.dags_certified << "/" << stats.dags_submitted
      << " installs=" << stats.installs_observed;
  if (!violations.empty()) out << " :: " << violations.front();
  return out.str();
}

to::Trace schedule_to_trace(const ChaosSchedule& schedule, std::string name,
                            std::string violation) {
  to::Trace trace;
  trace.name = std::move(name);
  trace.violation = std::move(violation);
  SimTime previous = 0;
  for (const ChaosEvent& event : schedule.events) {
    to::TraceStep step;
    step.delay = event.at - previous;
    previous = event.at;
    switch (event.kind) {
      case FaultKind::kSwitchFail:
        step.type = to::TraceStep::Type::kSwitchFail;
        step.sw = event.sw;
        step.mode = event.mode;
        break;
      case FaultKind::kSwitchRecover:
        step.type = to::TraceStep::Type::kSwitchRecover;
        step.sw = event.sw;
        break;
      case FaultKind::kLinkFail:
        step.type = to::TraceStep::Type::kLinkFail;
        step.link = event.link;
        break;
      case FaultKind::kLinkRecover:
        step.type = to::TraceStep::Type::kLinkRecover;
        step.link = event.link;
        break;
      case FaultKind::kComponentCrash:
        step.type = to::TraceStep::Type::kCrashComponent;
        step.component = event.component;
        break;
      case FaultKind::kOfcCrash:
        step.type = to::TraceStep::Type::kCrashOfc;
        break;
      case FaultKind::kDeCrash:
        step.type = to::TraceStep::Type::kCrashDe;
        break;
      case FaultKind::kReplyBurstLoss:
        step.type = to::TraceStep::Type::kDropReplies;
        break;
      case FaultKind::kReplKillLeader:
        step.type = to::TraceStep::Type::kReplKillLeader;
        step.shard = event.shard;
        break;
      case FaultKind::kReplRevive:
        step.type = to::TraceStep::Type::kReplRevive;
        step.shard = event.shard;
        break;
      case FaultKind::kReplPartitionLeader:
        step.type = to::TraceStep::Type::kReplPartitionLeader;
        step.shard = event.shard;
        break;
      case FaultKind::kReplHeal:
        step.type = to::TraceStep::Type::kReplHeal;
        step.shard = event.shard;
        break;
      case FaultKind::kReplLeaseStall:
        step.type = to::TraceStep::Type::kReplLeaseStall;
        step.shard = event.shard;
        break;
      case FaultKind::kReplLeaseResume:
        step.type = to::TraceStep::Type::kReplLeaseResume;
        step.shard = event.shard;
        break;
    }
    trace.steps.push_back(std::move(step));
  }
  return trace;
}

ChaosCampaign::ChaosCampaign(CampaignConfig config)
    : config_(std::move(config)) {}

CampaignResult ChaosCampaign::run() {
  Topology topo = make_topology(config_);
  schedule_ =
      generate_schedule(topo, config_.core, config_.schedule, config_.seed);
  return run(schedule_);
}

CampaignResult ChaosCampaign::run(const ChaosSchedule& schedule) {
  std::ostringstream name;
  name << "chaos/" << to_string(config_.topology) << "/seed"
       << config_.seed;
  CampaignResult result = replay(schedule_to_trace(schedule, name.str(), ""));
  result.schedule_fingerprint = schedule.fingerprint();
  return result;
}

CampaignResult ChaosCampaign::replay(const to::Trace& trace) {
  return replay(trace, nullptr);
}

CampaignResult ChaosCampaign::replay(const to::Trace& trace,
                                     obs::Observability* external) {
  CampaignResult result;
  result.schedule_fingerprint = fnv1a(0xcbf29ce484222325ull, trace.to_string());
  CampaignStats& stats = result.stats;

  // A campaign carries its own flight recorder sized for a full run's causal
  // tail; an external bundle (bench trace export) replaces it wholesale.
  obs::Observability local_obs(/*recorder_capacity=*/512);
  obs::Observability& o = external != nullptr ? *external : local_obs;

  ExperimentConfig experiment_config;
  experiment_config.seed = config_.seed;
  experiment_config.kind = config_.controller;
  experiment_config.core = config_.core;
  if (config_.randomize_takeover_delay) {
    // Pure function of the seed: the perturbed delay is part of the run's
    // identity, so equal seeds still fingerprint identically.
    Rng delay_rng(config_.seed ^ kTakeoverDelaySalt);
    experiment_config.core.failover_takeover_delay = static_cast<SimTime>(
        delay_rng.uniform(static_cast<double>(config_.takeover_delay_min),
                          static_cast<double>(config_.takeover_delay_max)));
  }
  Experiment exp(make_topology(config_), experiment_config);
  exp.attach_observability(&o);
  exp.start();
  Workload workload(&exp, config_.seed ^ kWorkloadSalt);

  std::vector<DagId> submitted;
  Dag initial = workload.initial_dag(config_.initial_flows);
  DagId last_dag = initial.id();
  submitted.push_back(last_dag);
  ++stats.dags_submitted;
  if (!exp.install_and_wait(std::move(initial), seconds(10)).has_value()) {
    result.violations.push_back(
        "initial DAG failed to converge before any fault was injected");
  }

  // Continuous hidden-entry watch (§G): an OP whose NIB record transitions
  // to NONE while its rule sits installed on a healthy, NIB-believed-UP
  // switch. The window can be microseconds (the level-triggered sequencer
  // self-heals by re-installing), hence the event-stream hook rather than a
  // polling probe.
  NadirFifo<NibEvent> hidden_probe;
  bool hidden_seen = false;
  std::string hidden_detail;
  // Recorder tail frozen at the instant a violation is first observed;
  // without this the dump would show end-of-run traffic, not the causal
  // window around the bug.
  std::string violation_dump;
  const bool watch_hidden =
      config_.check_hidden_entries && !is_pr_variant(config_.controller);
  if (watch_hidden) {
    hidden_probe.set_wake_callback([&] {
      while (!hidden_probe.empty()) {
        NibEvent event = hidden_probe.pop();
        if (hidden_seen ||
            event.type != NibEvent::Type::kOpStatusChanged ||
            event.op_status != OpStatus::kNone) {
          continue;
        }
        if (exp.fabric().alive(event.sw) &&
            exp.nib().switch_health(event.sw) == SwitchHealth::kUp &&
            exp.fabric().at(event.sw).has_entry(event.op)) {
          hidden_seen = true;
          std::ostringstream detail;
          detail << "hidden entry: op" << event.op.value()
                 << " reset to NONE at t=" << to_seconds(exp.sim().now())
                 << "s while installed on healthy sw" << event.sw.value();
          hidden_detail = detail.str();
          o.event("oracle", "violation", hidden_detail);
          violation_dump = o.recorder().dump();
        }
      }
    });
    exp.nib().subscribe(&hidden_probe);
  }

  // Live workload: a fresh update DAG every update_period until the fault
  // horizon ends, racing the injections.
  const SimTime traffic_until = exp.sim().now() + config_.schedule.horizon;
  // Self-rescheduling pump; the function object outlives every scheduled
  // copy (all simulator events die with `exp`, declared earlier).
  std::function<void()> pump;
  pump = [&] {
    if (exp.sim().now() > traffic_until) return;
    if (auto update = workload.next_update_dag()) {
      last_dag = update->id();
      submitted.push_back(last_dag);
      ++stats.dags_submitted;
      exp.order_checker().register_dag(*update);
      exp.controller().submit_dag(std::move(*update));
    }
    exp.sim().schedule(config_.update_period, pump);
  };
  exp.sim().schedule(config_.update_period, pump);

  // Drive the fault schedule through the Trace Orchestrator (ungated:
  // components run freely, the trace contributes only timed injections).
  to::TraceOrchestrator orchestrator(&exp, /*gate_components=*/false);
  orchestrator.replay(trace);
  for (const to::TraceStep& step : trace.steps) {
    if (step.type == to::TraceStep::Type::kAllow) continue;
    ++stats.faults_injected;
    ++stats.faults_by_kind[step_label(step)];
    o.count("chaos_faults", {{"kind", step_label(step)}});
  }

  // Let the horizon play out (replay stops at the last step's timestamp).
  if (exp.sim().now() < traffic_until) {
    exp.run_for(traffic_until - exp.sim().now());
  }

  // Quiescence oracle. Superseded DAGs legitimately never certify (DAG
  // admission replaces the current DAG and drops its un-sent OPs), so
  // certification is demanded of the last-submitted DAG only; the
  // view/table comparison covers the whole network. A DAG touching a
  // permanently-dead switch can never certify (P7 keeps its OPs unsent) —
  // the oracle then falls back to the network-wide comparison alone.
  auto touches_dead_switch = [&](DagId id) {
    if (!exp.nib().has_dag(id)) return false;
    for (SwitchId sw : exp.nib().dag(id).touched_switches()) {
      if (!exp.fabric().alive(sw)) return true;
    }
    return false;
  };
  const bool eventual_mode = config_.core.consistency.any_eventual();
  auto quiescent = [&] {
    // Replication must settle first: follower commit indexes lag the leader
    // by a heartbeat, and declaring quiescence mid-catchup would turn that
    // lag into a spurious R4 violation in the sweep below.
    if (auto* repl = exp.controller().repl();
        repl != nullptr && !repl->settled()) {
      return false;
    }
    // Eventual mode: the apply cursor must land (pending log drained) before
    // the convergence comparison is meaningful — the switch tables can be
    // ahead of the NIB view by up to the staleness bound until then.
    if (eventual_mode && exp.nib().eventual_pending() > 0) return false;
    if (touches_dead_switch(last_dag)) {
      return exp.checker().check(std::nullopt).view_consistent;
    }
    return exp.checker().converged(last_dag);
  };
  auto settled = exp.run_until(quiescent, config_.settle_timeout);
  if (settled.has_value()) {
    stats.quiescence_latency = *settled;
  } else {
    ConsistencyReport report = exp.checker().check(last_dag);
    std::ostringstream msg;
    msg << "eventual consistency violated: ";
    if (!exp.nib().dag_is_done(last_dag) && !touches_dead_switch(last_dag)) {
      msg << "dag" << last_dag.value() << " never certified";
    } else if (!report.diffs.empty()) {
      msg << report.diffs.front();
    } else {
      msg << "quiescence not reached within settle timeout";
    }
    result.violations.push_back(msg.str());
  }

  // Final oracle sweep.
  for (const std::string& violation : exp.order_checker().violations()) {
    result.violations.push_back(violation);
  }
  if (hidden_seen) result.violations.push_back(hidden_detail);
  if (watch_hidden && exp.checker().hidden_entry_signature()) {
    result.violations.push_back(
        "hidden entry persists at quiescence (installed rule with NIB "
        "status NONE on a healthy switch)");
  }
  // Replication invariants (R1–R4) across every shard. The convergence
  // checks (R4) only apply when the run actually settled — an unsettled run
  // already reports an eventual-consistency violation above.
  if (auto* repl = exp.controller().repl(); repl != nullptr) {
    for (std::string& violation :
         repl->check_invariants(/*at_quiescence=*/settled.has_value())) {
      result.violations.push_back("repl: " + std::move(violation));
    }
  }

  // Adaptive-consistency oracle (PR 10). E1 — bounded staleness: the
  // eventual log never held more than the configured bound, and it is fully
  // drained at quiescence. E2 — strong isolation: no strong-class (delete-
  // bearing) commit ever landed while eventual entries were still pending;
  // a barrier must have drained them first. Both are vacuous (all counters
  // zero) in all-strong runs.
  {
    const Nib& nib = exp.nib();
    stats.eventual_commits =
        static_cast<std::size_t>(nib.eventual_committed());
    stats.eventual_max_lag = static_cast<std::size_t>(nib.eventual_max_lag());
    stats.strong_barriers =
        static_cast<std::size_t>(nib.eventual_barrier_count());
    const std::size_t bound =
        std::max<std::size_t>(1, config_.core.consistency.staleness_bound);
    if (nib.eventual_max_lag() > bound) {
      std::ostringstream msg;
      msg << "E1 violated: eventual read lag peaked at "
          << nib.eventual_max_lag() << " entries, staleness bound is "
          << bound;
      result.violations.push_back(msg.str());
    }
    if (settled.has_value() && nib.eventual_pending() > 0) {
      std::ostringstream msg;
      msg << "E1 violated: " << nib.eventual_pending()
          << " eventual entries still pending at quiescence";
      result.violations.push_back(msg.str());
    }
    if (nib.strong_commits_with_pending() > 0) {
      std::ostringstream msg;
      msg << "E2 violated: " << nib.strong_commits_with_pending()
          << " strong-class commit(s) observed eventual state (pending "
             "entries at delete-bearing commit)";
      result.violations.push_back(msg.str());
    }
  }

  for (DagId id : submitted) {
    if (exp.nib().dag_is_done(id)) ++stats.dags_certified;
  }
  // Optional model-conformance oracle: compares the quiesced implementation
  // state against what the formal-model substitute permits. Requesting it
  // without installing the hook is a configuration bug, reported loudly
  // rather than silently skipped.
  if (config_.lockstep) {
    if (g_lockstep_oracle) {
      for (std::string& violation : g_lockstep_oracle(exp, last_dag)) {
        result.violations.push_back("lockstep: " + std::move(violation));
      }
    } else {
      result.violations.push_back(
          "lockstep oracle requested but not installed; call "
          "mc::enable_campaign_lockstep_oracle() first");
    }
  }

  stats.installs_observed = exp.order_checker().installs_observed();
  stats.sim_events_executed = exp.sim().executed_events();
  result.ok = result.violations.empty();

  // Determinism contract: same seed => byte-identical trace + snapshot.
  result.trace_fingerprint = o.tracer().fingerprint();
  result.metrics_fingerprint = o.snapshot().fingerprint();
  if (!result.ok) {
    // The oracle flagged a violation: dump the causal tail automatically so
    // the reproducer ships with "what happened right before". Prefer the
    // tail frozen at the first online detection over the end-of-run state.
    result.flight_recorder_dump =
        violation_dump.empty() ? o.recorder().dump() : violation_dump;
  }
  // The bundle's clock references `exp`, which dies with this frame; freeze
  // it at the final SimTime for callers that keep the bundle around.
  o.set_clock([t = exp.sim().now()] { return t; });
  return result;
}

}  // namespace zenith::chaos
