// Schedule shrinking: delta-debug a violating chaos schedule down to a
// minimal reproducer and render it as a to::Trace.
//
// Classic ddmin over the event list: try removing chunks (halving
// granularity as chunks stop helping) and keep any candidate that still
// trips the invariant oracle, until the schedule is 1-minimal — removing
// any single remaining event makes the violation disappear. The oracle is
// a full campaign re-run, so a shrink is exact, not heuristic; determinism
// of the campaign engine is what makes the re-runs meaningful.
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/campaign.h"

namespace zenith::chaos {

/// Result of the generic ddmin pass (oracle-agnostic).
struct DdminResult {
  ChaosSchedule minimal;
  std::size_t oracle_runs = 0;
  bool one_minimal = false;  // false when the run budget expired first
  /// False when the initial probe did not violate: `minimal` is then the
  /// input schedule, untouched.
  bool reproduced = false;
};

/// Generic ddmin over a schedule's event list against an arbitrary oracle:
/// `violates(candidate)` re-runs the scenario and reports whether the
/// failure is still present. Used by shrink_schedule (campaign-invariant
/// oracle) and by the lockstep checker (model-divergence oracle). Every
/// probe is counted; `max_oracle_runs` bounds the total including the
/// initial reproduction check.
DdminResult ddmin_schedule(
    const ChaosSchedule& failing,
    const std::function<bool(const ChaosSchedule&)>& violates,
    std::size_t max_oracle_runs = 256);

struct ShrinkResult {
  ChaosSchedule minimal;
  /// The minimal schedule as a replayable orchestration trace; `violation`
  /// carries the first oracle message the minimal schedule reproduces.
  to::Trace trace;
  CampaignResult minimal_result;
  std::size_t original_events = 0;
  std::size_t oracle_runs = 0;
  bool one_minimal = false;  // false when the run budget expired first

  double shrink_ratio() const {
    return original_events == 0
               ? 1.0
               : static_cast<double>(minimal.size()) /
                     static_cast<double>(original_events);
  }
};

/// Shrinks `failing` (a schedule whose campaign run under `config` produced
/// violations). Each oracle probe is one full campaign; `max_oracle_runs`
/// bounds the cost. If the schedule does not actually fail, returns it
/// unchanged with one oracle run spent.
ShrinkResult shrink_schedule(const CampaignConfig& config,
                             const ChaosSchedule& failing,
                             std::size_t max_oracle_runs = 256);

}  // namespace zenith::chaos
