// The switch fabric: every AbstractSwitch plus the controller-facing
// channels and the failure injector.
//
// Responsibilities:
//  * one delayed, ordered channel into each switch (SWInQ) and a merged,
//    delayed reply stream back to the controller (SWOutQ terminated at the
//    Monitoring Server);
//  * keepalive-style health detection: a failure/recovery becomes visible to
//    the controller only after a detection delay (the ODL-like baseline of
//    Figure A.2 uses a larger one);
//  * failure injection per the paper's two-axis model (§3.5, Table 3).
#pragma once

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "dataplane/abstract_switch.h"
#include "dataplane/messages.h"
#include "sim/fifo.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace zenith::obs {
class Observability;
}

namespace zenith {

struct FabricConfig {
  DelayModel ctrl_to_sw{millis(0.5), millis(0.5)};
  DelayModel sw_to_ctrl{millis(0.5), millis(0.5)};
  /// Keepalive loss / resume detection latency.
  SimTime failure_detection_delay = millis(30);
  SimTime recovery_detection_delay = millis(30);
  SwitchTimings timings{};
};

class Fabric {
 public:
  Fabric(Simulator* sim, const Topology& topo, Rng rng,
         FabricConfig config = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::size_t switch_count() const { return switches_.size(); }
  AbstractSwitch& at(SwitchId sw) { return *switches_.at(sw.value()); }
  const AbstractSwitch& at(SwitchId sw) const {
    return *switches_.at(sw.value());
  }
  const Topology& topology() const { return topo_; }

  /// Sends a request toward a switch (delivered after channel delay; lost if
  /// the switch suffers a complete failure first).
  void send(SwitchId sw, SwitchRequest request);

  /// Merged reply stream (install/delete/clear ACKs, dumps, role ACKs).
  NadirFifo<SwitchReply>& replies() { return replies_; }

  /// Health event stream (failure/recovery after detection delay).
  NadirFifo<SwitchHealthEvent>& health_events() { return health_events_; }

  /// Drops every reply currently queued or in flight toward the controller
  /// (an abrupt controller-instance switchover loses its sockets' buffers).
  void drop_all_in_flight_replies();

  // ---- failure injection -----------------------------------------------------

  void inject_failure(SwitchId sw, FailureMode mode);
  /// Brings a failed switch back. No-op when the switch is healthy or its
  /// failure was permanent (randomized schedules may aim recoveries there).
  void inject_recovery(SwitchId sw);
  bool alive(SwitchId sw) const { return at(sw).healthy(); }

  /// Port/link failures: the link stops carrying traffic, both endpoint
  /// switches stay up. The controller learns via link_events(). A permanent
  /// failure (e.g. a cut fiber) never recovers: inject_link_recovery on it
  /// is a guarded no-op, mirroring inject_recovery's permanently-failed-
  /// switch guard (randomized schedules may aim recoveries there).
  void inject_link_failure(LinkId link, bool permanent = false);
  void inject_link_recovery(LinkId link);
  bool link_alive(LinkId link) const { return link_up_.at(link.value()); }
  NadirFifo<LinkHealthEvent>& link_events() { return link_events_; }

  /// Observer invoked on every first install anywhere (hooked to each
  /// switch; used by the DAG-order checker).
  void set_install_observer(AbstractSwitch::InstallObserver observer);

  /// Observer invoked on every applied install/delete OP anywhere (batch
  /// elements included, in application order); used by the batching
  /// determinism tests to record per-switch delivery order.
  void set_apply_observer(AbstractSwitch::ApplyObserver observer);

  /// Attaches the observability bundle (null = uninstrumented): fabric sends,
  /// reply drops, and fault injections become recorded events/counters.
  void set_observability(obs::Observability* o) { obs_ = o; }

 private:
  obs::Observability* obs_ = nullptr;
  Simulator* sim_;
  Topology topo_;
  Rng rng_;
  FabricConfig config_;
  std::vector<std::unique_ptr<AbstractSwitch>> switches_;
  std::vector<std::unique_ptr<DelayedChannel<SwitchRequest>>> to_switch_;
  /// Per-switch generation counters: bumping one drops that switch's
  /// in-flight replies (complete failures lose them with the rest of the
  /// switch state).
  std::vector<std::uint64_t> reply_generation_;
  /// Per-switch monotone delivery clock: replies from one switch never
  /// overtake each other (P4(2) depends on in-order ACK delivery, which TCP
  /// provides in real deployments).
  std::vector<SimTime> reply_last_delivery_;
  /// Same for health events: a recovery notification must not overtake the
  /// failure it resolves (the ODL incident-1 race of §1.1 happens when a
  /// controller processes them out of order; the keepalive stream itself is
  /// ordered).
  std::vector<SimTime> health_last_delivery_;
  /// And per link: with asymmetric detection delays (fast keepalive resume,
  /// slow loss detection) a recovery notification could otherwise overtake
  /// the failure it resolves and leave the controller believing the link is
  /// down forever.
  std::vector<SimTime> link_last_delivery_;
  std::vector<FailureMode> last_failure_mode_;
  NadirFifo<SwitchReply> replies_;
  NadirFifo<SwitchHealthEvent> health_events_;
  NadirFifo<LinkHealthEvent> link_events_;
  std::vector<bool> link_up_;
  std::vector<bool> link_permanently_down_;
};

}  // namespace zenith
