#include "dataplane/fabric.h"

#include <cassert>

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

namespace {

const char* request_name(SwitchRequest::Type type) {
  switch (type) {
    case SwitchRequest::Type::kInstall: return "install";
    case SwitchRequest::Type::kDelete: return "delete";
    case SwitchRequest::Type::kClearTcam: return "clear-tcam";
    case SwitchRequest::Type::kDumpTable: return "dump-table";
    case SwitchRequest::Type::kRoleChange: return "role-change";
    case SwitchRequest::Type::kBatch: return "batch";
  }
  return "unknown";
}

const char* failure_name(FailureMode mode) {
  switch (mode) {
    case FailureMode::kPartialTransient: return "partial-transient";
    case FailureMode::kCompleteTransient: return "complete-transient";
    case FailureMode::kCompletePermanent: return "complete-permanent";
  }
  return "unknown";
}

}  // namespace

Fabric::Fabric(Simulator* sim, const Topology& topo, Rng rng,
               FabricConfig config)
    : sim_(sim), topo_(topo), rng_(std::move(rng)), config_(config) {
  std::size_t n = topo_.switch_count();
  switches_.reserve(n);
  to_switch_.reserve(n);
  reply_generation_.assign(n, 0);
  reply_last_delivery_.assign(n, 0);
  health_last_delivery_.assign(n, 0);
  link_up_.assign(topo_.link_count(), true);
  link_permanently_down_.assign(topo_.link_count(), false);
  link_last_delivery_.assign(topo_.link_count(), 0);
  last_failure_mode_.assign(n, FailureMode::kPartialTransient);
  for (std::size_t i = 0; i < n; ++i) {
    auto sw_id = SwitchId(static_cast<std::uint32_t>(i));
    switches_.push_back(std::make_unique<AbstractSwitch>(
        sim_, sw_id, rng_.fork(), config_.timings));
    to_switch_.push_back(std::make_unique<DelayedChannel<SwitchRequest>>(
        sim_, rng_.fork(), config_.ctrl_to_sw));
    // Bridge the channel sink into the switch's in-queue.
    auto* channel = to_switch_.back().get();
    auto* sw = switches_.back().get();
    channel->sink().set_wake_callback([channel, sw] {
      while (!channel->sink().empty()) {
        sw->in_queue().push(channel->sink().pop());
      }
    });
    // Reply path: sample a delay, deliver into the merged stream unless the
    // switch's reply generation was bumped by a complete failure.
    sw->set_reply_sink([this, i](SwitchReply reply) {
      std::uint64_t generation = reply_generation_[i];
      SimTime delay = config_.sw_to_ctrl.sample(rng_);
      SimTime deliver_at =
          std::max(sim_->now() + delay, reply_last_delivery_[i]);
      reply_last_delivery_[i] = deliver_at;
      sim_->schedule_at(deliver_at,
                        [this, i, generation, r = std::move(reply)] {
        if (reply_generation_[i] == generation) {
          replies_.push(r);
        } else if (obs_ != nullptr) {
          // Reply outlived its switch incarnation (complete failure or an
          // abrupt controller switchover): dropped on the floor, which is
          // exactly the lost-ACK ambiguity the tracer should show.
          obs_->event("fabric", "reply-dropped",
                      "sw=" + std::to_string(i));
        }
      });
    });
  }
}

void Fabric::send(SwitchId sw, SwitchRequest request) {
  assert(sw.value() < switches_.size());
  if (obs_ != nullptr) {
    obs_->count("fabric_sends", {{"type", request_name(request.type)}});
  }
  to_switch_[sw.value()]->send(std::move(request));
}

void Fabric::inject_failure(SwitchId sw, FailureMode mode) {
  AbstractSwitch& target = at(sw);
  if (!target.healthy()) return;
  last_failure_mode_[sw.value()] = mode;
  bool complete = mode != FailureMode::kPartialTransient;
  if (obs_ != nullptr) {
    obs_->event("fabric", "switch-fail",
                "sw=" + std::to_string(sw.value()) +
                    " mode=" + failure_name(mode));
  }
  target.fail(mode);
  if (complete) {
    // The switch lost its ingress queue and anything it had produced that
    // was not yet on the wire; in-flight requests die with the channel.
    to_switch_[sw.value()]->drop_in_flight();
    ++reply_generation_[sw.value()];
  }
  SwitchHealthEvent event;
  event.type = SwitchHealthEvent::Type::kFailure;
  event.sw = sw;
  event.state_lost = complete;
  SimTime deliver_at =
      std::max(sim_->now() + config_.failure_detection_delay,
               health_last_delivery_[sw.value()]);
  health_last_delivery_[sw.value()] = deliver_at;
  sim_->schedule_at(deliver_at, [this, event] { health_events_.push(event); });
}

void Fabric::inject_recovery(SwitchId sw) {
  AbstractSwitch& target = at(sw);
  if (target.healthy()) return;
  // Permanent failures do not recover; randomized fault schedules (chaos
  // campaigns, shrunk reproducers) may still aim a recovery at such a
  // switch, which must be a no-op rather than a contract violation.
  if (last_failure_mode_[sw.value()] == FailureMode::kCompletePermanent) {
    return;
  }
  if (obs_ != nullptr) {
    obs_->event("fabric", "switch-recover",
                "sw=" + std::to_string(sw.value()));
  }
  target.recover();
  SwitchHealthEvent event;
  event.type = SwitchHealthEvent::Type::kRecovery;
  event.sw = sw;
  event.state_lost =
      last_failure_mode_[sw.value()] == FailureMode::kCompleteTransient;
  SimTime deliver_at =
      std::max(sim_->now() + config_.recovery_detection_delay,
               health_last_delivery_[sw.value()]);
  health_last_delivery_[sw.value()] = deliver_at;
  sim_->schedule_at(deliver_at, [this, event] { health_events_.push(event); });
}

void Fabric::inject_link_failure(LinkId link, bool permanent) {
  if (!link_up_.at(link.value())) return;
  link_up_[link.value()] = false;
  if (permanent) link_permanently_down_[link.value()] = true;
  if (obs_ != nullptr) {
    obs_->event("fabric", "link-fail", "link=" + std::to_string(link.value()));
  }
  LinkHealthEvent event{link, false};
  // Monotone per-link delivery clock, as for switch health events: with
  // recovery_detection_delay < failure_detection_delay a recovery notice
  // would otherwise overtake the failure it resolves.
  SimTime deliver_at = std::max(sim_->now() + config_.failure_detection_delay,
                                link_last_delivery_[link.value()]);
  link_last_delivery_[link.value()] = deliver_at;
  sim_->schedule_at(deliver_at, [this, event] { link_events_.push(event); });
}

void Fabric::inject_link_recovery(LinkId link) {
  if (link_up_.at(link.value())) return;
  // Permanently-failed links do not recover; randomized fault schedules may
  // still aim a recovery at one, which must be a no-op rather than a
  // resurrection (same contract as inject_recovery for switches).
  if (link_permanently_down_.at(link.value())) return;
  link_up_[link.value()] = true;
  if (obs_ != nullptr) {
    obs_->event("fabric", "link-recover",
                "link=" + std::to_string(link.value()));
  }
  LinkHealthEvent event{link, true};
  SimTime deliver_at = std::max(sim_->now() + config_.recovery_detection_delay,
                                link_last_delivery_[link.value()]);
  link_last_delivery_[link.value()] = deliver_at;
  sim_->schedule_at(deliver_at, [this, event] { link_events_.push(event); });
}

void Fabric::drop_all_in_flight_replies() {
  for (auto& generation : reply_generation_) ++generation;
  replies_.clear();
}

void Fabric::set_install_observer(AbstractSwitch::InstallObserver observer) {
  for (auto& sw : switches_) sw->set_install_observer(observer);
}

void Fabric::set_apply_observer(AbstractSwitch::ApplyObserver observer) {
  for (auto& sw : switches_) sw->set_apply_observer(observer);
}

}  // namespace zenith
