#include "dataplane/abstract_switch.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace zenith {

AbstractSwitch::AbstractSwitch(Simulator* sim, SwitchId id, Rng rng,
                               SwitchTimings timings)
    : sim_(sim), id_(id), rng_(std::move(rng)), timings_(timings) {
  in_queue_.set_wake_callback([this] { schedule_service(); });
}

void AbstractSwitch::schedule_service() {
  if (busy_ || !healthy_ || in_queue_.empty()) return;
  busy_ = true;
  // Service time: dump cost scales with table size, everything else is the
  // per-op service constant (plus a little jitter so runs are not lockstep).
  const SwitchRequest& head = in_queue_.peek();
  SimTime service;
  if (head.type == SwitchRequest::Type::kDumpTable) {
    service = timings_.dump_cost(table_.size());
  } else if (head.type == SwitchRequest::Type::kBatch) {
    // A batch costs the sum of its OPs' service times — batching amortizes
    // the message/ACK round trip, not the TCAM write itself.
    service = timings_.op_service * static_cast<SimTime>(head.batch.size());
  } else {
    service = timings_.op_service;
  }
  service += static_cast<SimTime>(
      rng_.next_below(static_cast<std::uint64_t>(timings_.op_service / 4 + 1)));
  sim_->schedule(service, [this] { service_one(); });
}

void AbstractSwitch::service_one() {
  busy_ = false;
  if (!healthy_ || in_queue_.empty()) return;
  // Pop-then-apply is safe here (unlike in the controller): per A3 a switch
  // failure legitimately loses requests, so there is no crash-recovery
  // obligation on this queue.
  SwitchRequest request = in_queue_.pop();
  apply(request);
  schedule_service();
}

void AbstractSwitch::apply_rule_op(const Op& op) {
  if (op.type == OpType::kInstallRule) {
    // Re-install of the same OP id overwrites in place (idempotent).
    auto it = std::find_if(
        table_.begin(), table_.end(),
        [&](const TableEntry& e) { return e.installed_by == op.id; });
    if (it == table_.end()) {
      table_.push_back(TableEntry{op.id, op.rule});
    } else {
      it->rule = op.rule;
    }
    if (!first_install_time_.count(op.id)) {
      first_install_time_[op.id] = sim_->now();
      if (install_observer_) install_observer_(id_, op.id, sim_->now());
    }
  } else {
    assert(op.type == OpType::kDeleteRule);
    auto it = std::find_if(table_.begin(), table_.end(),
                           [&](const TableEntry& e) {
                             return e.installed_by == op.delete_target;
                           });
    if (it != table_.end()) table_.erase(it);
    // Deleting an absent rule is fine: the post-state ("rule not present")
    // holds either way, and OpenFlow delete is idempotent.
  }
  if (apply_observer_) apply_observer_(id_, op);
}

void AbstractSwitch::apply(const SwitchRequest& request) {
  SwitchReply reply;
  reply.sw = id_;
  reply.xid = request.xid;
  reply.op = request.op;
  switch (request.type) {
    case SwitchRequest::Type::kInstall:
    case SwitchRequest::Type::kDelete: {
      assert(request.type == SwitchRequest::Type::kInstall
                 ? request.op.type == OpType::kInstallRule
                 : request.op.type == OpType::kDeleteRule);
      apply_rule_op(request.op);
      reply.type = SwitchReply::Type::kAck;
      break;
    }
    case SwitchRequest::Type::kBatch: {
      // One request, many OPs: apply each in order, ACK once for all of
      // them. Per A3 the batch-ACK is only emitted below, after every
      // element took effect.
      assert(!request.batch.empty());
      for (const Op& op : request.batch) apply_rule_op(op);
      reply.type = SwitchReply::Type::kBatchAck;
      reply.batch = request.batch;
      break;
    }
    case SwitchRequest::Type::kClearTcam: {
      table_.clear();
      reply.type = SwitchReply::Type::kAck;
      break;
    }
    case SwitchRequest::Type::kDumpTable: {
      reply.type = SwitchReply::Type::kDumpReply;
      reply.table.reserve(table_.size());
      for (const TableEntry& e : table_) {
        reply.table.push_back(DumpedEntry{e.installed_by, e.rule});
      }
      break;
    }
    case SwitchRequest::Type::kRoleChange: {
      // Roles only move forward: a delayed request from an earlier handoff
      // (retried role changes can arrive out of order with a later round's)
      // must not demote the switch back to a superseded instance. The ACK
      // echoes the role actually in effect, so the failover manager's
      // stale-epoch filter sees which instance this switch answers to.
      if (request.role >= controller_role_) controller_role_ = request.role;
      reply.type = SwitchReply::Type::kRoleAck;
      reply.role = controller_role_;
      break;
    }
  }
  // A3: the ACK is emitted only after the state change above took effect.
  if (reply_sink_) reply_sink_(reply);
}

bool AbstractSwitch::has_entry(OpId op) const {
  return std::any_of(table_.begin(), table_.end(), [&](const TableEntry& e) {
    return e.installed_by == op;
  });
}

std::optional<AbstractSwitch::TableEntry> AbstractSwitch::lookup(
    SwitchId dst) const {
  std::optional<TableEntry> best;
  for (const TableEntry& e : table_) {
    if (e.rule.dst != dst) continue;
    // Ties broken by table position: later installs shadow earlier ones at
    // equal priority, matching typical switch behaviour.
    if (!best || e.rule.priority >= best->rule.priority) best = e;
  }
  return best;
}

std::vector<OpId> AbstractSwitch::installed_ops() const {
  std::vector<OpId> out;
  out.reserve(table_.size());
  for (const TableEntry& e : table_) out.push_back(e.installed_by);
  std::sort(out.begin(), out.end());
  return out;
}

void AbstractSwitch::preload_entry(const Op& op) {
  assert(op.type == OpType::kInstallRule);
  if (!has_entry(op.id)) {
    table_.push_back(TableEntry{op.id, op.rule});
    first_install_time_.emplace(op.id, 0);
  }
}

void AbstractSwitch::fail(FailureMode mode) {
  if (!healthy_) return;
  healthy_ = false;
  switch (mode) {
    case FailureMode::kCompletePermanent:
    case FailureMode::kCompleteTransient:
      table_.clear();
      in_queue_.clear();
      break;
    case FailureMode::kPartialTransient:
      // TCAM survives; ongoing requests are lost (§3.5).
      in_queue_.clear();
      break;
  }
  ZLOG_DEBUG("sw%u failed (mode=%d, table wiped=%d)", id_.value(),
             static_cast<int>(mode), table_.empty());
}

void AbstractSwitch::recover() {
  if (healthy_) return;
  healthy_ = true;
  ZLOG_DEBUG("sw%u recovered (table entries=%zu)", id_.value(), table_.size());
  schedule_service();
}

}  // namespace zenith
