// AbstractSwitch: the simulated data-plane element (paper §3.5, Listing 2).
//
// Semantics preserved from the paper's AbstractSW model:
//  * OpenFlow-like interface: install, delete, dump, role change, plus the
//    CLEAR_TCAM recovery instruction.
//  * Non-Byzantine (A3): a switch ACKs an OP if and only if it applied it,
//    one request at a time, in arrival order; CLEAR_TCAM wipes the table
//    completely and correctly.
//  * Failure model along two axes — state loss (none / partial / complete)
//    and duration (transient / permanent). A complete failure loses the
//    routing table *and* every in-flight request; a partial one keeps the
//    TCAM but drops queued requests.
//  * Delays: request service time per message, dump cost growing with table
//    size (calibrated to the Cumulus SN2100 measurements of Figure 4a).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "dag/op.h"
#include "dataplane/messages.h"
#include "sim/fifo.h"
#include "sim/simulator.h"

namespace zenith {

/// How much state a failure destroys (§3.5 "State loss").
enum class FailureMode : std::uint8_t {
  kCompletePermanent,  // table + queues lost; never recovers
  kCompleteTransient,  // table + queues lost; recovers later
  kPartialTransient,   // TCAM survives; queued/in-flight requests lost
};

struct SwitchTimings {
  /// Service time for install/delete/clear messages.
  SimTime op_service = micros(50);
  /// Dump cost: linear + mild quadratic term, calibrated so that a 512-entry
  /// dump costs ~13 ms and a 4096-entry dump ~117 ms (Figure 4a).
  double dump_linear_us = 24.94;
  double dump_quadratic_us = 8.856e-4;

  SimTime dump_cost(std::size_t entries) const {
    double us = dump_linear_us * static_cast<double>(entries) +
                dump_quadratic_us * static_cast<double>(entries) *
                    static_cast<double>(entries);
    return static_cast<SimTime>(us);
  }
};

class AbstractSwitch {
 public:
  struct TableEntry {
    OpId installed_by;
    FlowRule rule;
  };

  /// Callback observing every *first* successful install, used by the
  /// harness to check CorrectDAGOrder (correctness condition ①).
  using InstallObserver = std::function<void(SwitchId, OpId, SimTime)>;

  /// Callback observing every applied install/delete OP (including
  /// re-applies and every element of a batch), in application order. The
  /// per-switch application sequence it sees is the delivery-order artifact
  /// the batching determinism contract is asserted over.
  using ApplyObserver = std::function<void(SwitchId, const Op&)>;

  AbstractSwitch(Simulator* sim, SwitchId id, Rng rng,
                 SwitchTimings timings = {});

  SwitchId id() const { return id_; }
  bool healthy() const { return healthy_; }

  /// Queue carrying controller requests into the switch (the paper's SWInQ).
  NadirFifo<SwitchRequest>& in_queue() { return in_queue_; }

  /// The switch writes replies through this callback (SWOutQ is owned by the
  /// fabric, which models the reverse channel's delay).
  void set_reply_sink(std::function<void(SwitchReply)> sink) {
    reply_sink_ = std::move(sink);
  }
  void set_install_observer(InstallObserver observer) {
    install_observer_ = std::move(observer);
  }
  void set_apply_observer(ApplyObserver observer) {
    apply_observer_ = std::move(observer);
  }

  // ---- data plane inspection (used by the traffic model & checkers) -------

  const std::vector<TableEntry>& table() const { return table_; }
  bool has_entry(OpId op) const;
  /// Highest-priority entry matching `dst`; ties broken by newest install.
  std::optional<TableEntry> lookup(SwitchId dst) const;
  std::size_t table_size() const { return table_.size(); }

  /// Installed OP ids (G_d restricted to this switch, Table 2).
  std::vector<OpId> installed_ops() const;

  // ---- failure injection ----------------------------------------------------

  /// Applies a failure. Complete modes wipe the table and pending queue;
  /// partial keeps the table but loses queued requests. While down, the
  /// switch processes nothing.
  void fail(FailureMode mode);
  /// Brings the switch back (invalid for permanent failures — the injector
  /// never calls it in that case).
  void recover();

  /// The current master controller role (failover experiments).
  int controller_role() const { return controller_role_; }

  /// Test/experiment hook: place an entry directly in the table without the
  /// request/ACK round trip (pre-existing state, hidden entries).
  void preload_entry(const Op& op);

 private:
  void schedule_service();
  void service_one();
  void apply(const SwitchRequest& request);
  /// Applies one install/delete OP to the table (shared by the per-OP and
  /// the batch path); fires the observers but emits no reply.
  void apply_rule_op(const Op& op);

  Simulator* sim_;
  SwitchId id_;
  Rng rng_;
  SwitchTimings timings_;
  bool healthy_ = true;
  bool busy_ = false;
  int controller_role_ = 0;
  NadirFifo<SwitchRequest> in_queue_;
  std::function<void(SwitchReply)> reply_sink_;
  InstallObserver install_observer_;
  ApplyObserver apply_observer_;
  std::vector<TableEntry> table_;
  std::unordered_map<OpId, SimTime> first_install_time_;
};

}  // namespace zenith
