// Controller <-> switch protocol messages.
//
// The interface is OpenFlow-like at the granularity the paper's AbstractSW
// exports (§3.5): install a rule, delete a rule, clear the whole table
// (CLEAR_TCAM, §F Figure A.5), dump the routing table (reconciliation), and
// change the controller role (planned failover). Switches ACK each OP after
// applying it — never before (assumption A3) — and emit failure/recovery
// events.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "dag/op.h"

namespace zenith {

/// xid flag marking a table dump issued by a periodic reconciler (routed to
/// the reconciler, not the recovery pipeline).
inline constexpr std::uint64_t kReconciliationXidFlag = 1ull << 63;

/// Controller -> switch.
struct SwitchRequest {
  enum class Type : std::uint8_t {
    kInstall,
    kDelete,
    kClearTcam,
    kDumpTable,
    kRoleChange,
    /// A per-switch OP batch (install/delete only): the switch applies each
    /// OP of `batch` in order, then emits one kBatchAck. Never used for
    /// singleton batches — those travel as plain kInstall/kDelete so that
    /// batch_size=1 is byte-identical to the unbatched protocol.
    kBatch,
  };

  Type type = Type::kInstall;
  std::uint64_t xid = 0;  // request id echoed in the reply
  Op op;                  // kInstall / kDelete (and ClearTcam carries op.id)
  std::vector<Op> batch;  // kBatch: the OPs in per-switch FIFO order
  int role = 0;           // kRoleChange: the new master controller instance
};

/// One entry of a table dump.
struct DumpedEntry {
  OpId installed_by;
  FlowRule rule;
};

/// Switch -> controller.
struct SwitchReply {
  enum class Type : std::uint8_t {
    kAck,         // OP applied (install/delete/clear)
    kDumpReply,
    kRoleAck,
    /// One ACK for a whole kBatch request. A3 still holds batch-wide: the
    /// reply is emitted only after *every* OP of the batch was applied, and
    /// `batch` echoes the applied OPs in application order.
    kBatchAck,
  };

  Type type = Type::kAck;
  std::uint64_t xid = 0;
  SwitchId sw;
  Op op;                            // the acknowledged OP
  std::vector<Op> batch;            // kBatchAck: applied OPs, in order
  std::vector<DumpedEntry> table;   // kDumpReply
  int role = 0;
};

/// Out-of-band health notifications (keepalive-loss / keepalive-resume as
/// seen by the Monitoring Server after its detection delay).
struct SwitchHealthEvent {
  enum class Type : std::uint8_t { kFailure, kRecovery };
  Type type = Type::kFailure;
  SwitchId sw;
  /// True when the failure wiped the TCAM (complete failures). The
  /// controller does NOT see this bit — it is carried for test/metric
  /// introspection only; controllers must treat state loss as unknown (§3.9
  /// "Directed Reconciliation").
  bool state_lost = false;
};

/// Port/link health notifications (§3.1: OPs and events at port
/// granularity). Links fail without taking their switches down.
struct LinkHealthEvent {
  LinkId link;
  bool up = false;
};

}  // namespace zenith
