// NADIR specifications of the other two verified applications (§4, §6.3):
// traffic engineering and OFC planned failover. Like the drain spec, each
// is verified independently of the core — TE against an AbstractCore that
// consumes its DAGs, failover against an abstract switch-role model.
#pragma once

#include "nadir/spec.h"

namespace zenith::apps {

// ---- Traffic engineering -----------------------------------------------------

struct TeSpecScenario {
  std::size_t nodes = 4;
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 3}, {0, 2}, {2, 3}};
  /// Flow endpoints (src, dst).
  std::vector<std::pair<int, int>> flows{{0, 3}};
  /// Network events the model checker will deliver, in order: switch ids
  /// that fail (the TE app must reroute around each).
  std::vector<int> failure_events{1};
};

/// TE app process + AbstractCore. The app consumes network events from
/// "NetworkEvents", recomputes paths over the surviving topology, and
/// submits replacement DAGs to "DAGEventQueue".
nadir::Spec build_te_spec(const TeSpecScenario& scenario);

/// Invariant: no DAG submitted after a failure event routes through a
/// failed switch. "" when it holds.
std::string check_te_avoids_failed(const nadir::Env& env,
                                   const TeSpecScenario& scenario);

/// Progress: one DAG per processed failure event at quiescence.
bool te_all_events_handled(const nadir::Env& env,
                           const TeSpecScenario& scenario);

// ---- Planned OFC failover -----------------------------------------------------

struct FailoverSpecScenario {
  int switches = 3;
  /// OPs in flight toward the old instance when the request arrives.
  int in_flight_ops = 2;
};

/// Failover manager process (drain -> role change -> done), an ACK-drainer
/// process standing in for the Monitoring Server, and a role-change applier.
nadir::Spec build_failover_spec(const FailoverSpecScenario& scenario);

/// Safety invariant (the hitless property): the role change never starts
/// while OPs are still in flight toward the old master. "" when it holds.
std::string check_failover_drained(const nadir::Env& env);

/// Progress: at quiescence every switch follows the new master.
bool failover_completed(const nadir::Env& env,
                        const FailoverSpecScenario& scenario);

// ---- Maintenance scheduler (adaptive consistency, PR 10) ----------------------

struct MaintenanceSpecScenario {
  /// Maintenance windows processed in sequence.
  int windows = 1;
  /// Reroute installs each window's drain DAG submits (all eventual-class).
  int installs_per_window = 2;
  /// E1 bound on the eventual apply log.
  int staleness_bound = 2;
  /// Deliberate defect: the gate opens the window WITHOUT draining the
  /// eventual log first. check_maintenance_gate must catch this (E2) and
  /// stay silent with the flag off.
  bool bug_skip_barrier = false;
};

/// MaintenanceApp process (request -> drain -> barrier gate -> window) plus
/// an AbstractCore whose commits land in an explicit eventual log
/// ("PendingLog") drained by an EventualPump process — the spec-level twin
/// of Nib's eventual apply log and EventualApplyPump.
nadir::Spec build_maintenance_spec(const MaintenanceSpecScenario& scenario);

/// Safety: E1 (PendingLog never exceeds the bound; Applied never passes
/// Committed) and E2 (a window never opens with eventual entries pending —
/// the gate's strong barrier must have drained the log). "" when both hold.
std::string check_maintenance_gate(const nadir::Env& env,
                                   const MaintenanceSpecScenario& scenario);

/// Progress: every window completed and the eventual log fully published.
bool maintenance_all_windows_done(const nadir::Env& env,
                                  const MaintenanceSpecScenario& scenario);

}  // namespace zenith::apps
