#include "apps/abstract_app.h"

#include "common/logging.h"

namespace zenith::apps {

AbstractApp::AbstractApp(ZenithController* controller)
    : Component(controller->context().sim, "abstract_app", micros(100)),
      controller_(controller) {
  events_.set_wake_callback([this] { kick(); });
  controller_->register_app_sink(&events_);
}

void AbstractApp::add_dag_for(std::set<SwitchId> healthy, Dag dag) {
  library_.emplace(std::move(healthy), std::move(dag));
}

std::set<SwitchId> AbstractApp::healthy_set() const {
  std::set<SwitchId> healthy;
  const Nib& nib = controller_->nib();
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) == SwitchHealth::kUp) healthy.insert(sw);
  }
  return healthy;
}

void AbstractApp::bootstrap() { react(); }

void AbstractApp::react() {
  auto it = library_.find(healthy_set());
  if (it == library_.end()) return;  // no pre-defined DAG for this state
  if (it->second.id() == current_) return;
  // Delete the invalidated DAG, then install the matching one (§3.6).
  if (current_.valid()) controller_->delete_dag(current_);
  current_ = it->second.id();
  controller_->submit_dag(it->second);
  ++dags_installed_;
  ZLOG_DEBUG("AbstractApp installing dag%u", current_.value());
}

bool AbstractApp::try_step() {
  if (events_.empty()) return false;
  NibEvent event = events_.peek();
  if (event.type == NibEvent::Type::kSwitchHealthChanged) react();
  events_.ack_pop();
  return true;
}

}  // namespace zenith::apps
