#include "apps/app_specs.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace zenith::apps {

using nadir::FieldMap;
using nadir::Spec;
using nadir::StepContext;
using nadir::Type;
using nadir::Value;
using nadir::ValueVec;

namespace {

Value int_seq(const std::vector<int>& xs) {
  ValueVec items;
  items.reserve(xs.size());
  for (int x : xs) items.push_back(Value::integer(x));
  return Value::seq(std::move(items));
}

std::vector<std::vector<int>> bfs_paths(
    const std::set<int>& nodes, const std::set<std::pair<int, int>>& edges,
    const std::vector<std::pair<int, int>>& pairs) {
  std::map<int, std::vector<int>> adjacency;
  for (auto [a, b] : edges) {
    if (!nodes.count(a) || !nodes.count(b)) continue;
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  for (auto& [_, ns] : adjacency) std::sort(ns.begin(), ns.end());
  std::vector<std::vector<int>> out;
  for (auto [src, dst] : pairs) {
    if (!nodes.count(src) || !nodes.count(dst)) continue;
    std::map<int, int> parent;
    std::deque<int> frontier{src};
    parent[src] = src;
    while (!frontier.empty()) {
      int cur = frontier.front();
      frontier.pop_front();
      if (cur == dst) break;
      for (int next : adjacency[cur]) {
        if (!parent.count(next)) {
          parent[next] = cur;
          frontier.push_back(next);
        }
      }
    }
    if (!parent.count(dst)) continue;
    std::vector<int> path{dst};
    int hop = dst;
    while (hop != src) {
      hop = parent[hop];
      path.push_back(hop);
    }
    std::reverse(path.begin(), path.end());
    out.push_back(std::move(path));
  }
  return out;
}

}  // namespace

// ---- TE spec -------------------------------------------------------------------

nadir::Spec build_te_spec(const TeSpecScenario& scenario) {
  Spec spec("TrafficEngineeringApp");

  auto op_type = Type::record({{"op", Type::integer()},
                               {"sw", Type::integer()},
                               {"nh", Type::integer()},
                               {"dst", Type::integer()},
                               {"priority", Type::integer()}});
  auto dag_type = Type::record({{"id", Type::integer()},
                                {"v", Type::set(op_type)},
                                {"e", Type::set(Type::seq(Type::integer()))}});

  ValueVec events;
  for (int sw : scenario.failure_events) {
    events.push_back(Value::integer(sw));
  }
  spec.global("DAGEventQueue", Type::seq(dag_type), Value::seq({}), true);
  spec.global("NetworkEvents", Type::seq(Type::integer()),
              Value::seq(std::move(events)), true);
  spec.global("DownSwitches", Type::set(Type::integer()), Value::set({}),
              true);
  spec.global("InstalledDags", Type::set(Type::integer()), Value::set({}),
              true);

  // Capture the static scenario by value in the step closures (in PlusCal
  // these are CONSTANTS of the module).
  auto nodes_of = [scenario] {
    std::set<int> nodes;
    for (std::size_t i = 0; i < scenario.nodes; ++i) {
      nodes.insert(static_cast<int>(i));
    }
    return nodes;
  };
  auto edges_of = [scenario] {
    std::set<std::pair<int, int>> edges(scenario.edges.begin(),
                                        scenario.edges.end());
    return edges;
  };

  nadir::Process te("TEApp");
  te.local("nextDagId", Type::integer(), Value::integer(1));
  te.local("opIndex", Type::integer(), Value::integer(100));
  te.step(nadir::Step{
      "TELoop",
      {"NetworkEvents", "DownSwitches", "DAGEventQueue"},
      {"NetworkEvents", "DownSwitches", "DAGEventQueue"},
      [scenario, nodes_of, edges_of](StepContext& ctx) {
        Value event = ctx.fifo_get("NetworkEvents");
        if (ctx.blocked()) return;
        int failed = static_cast<int>(event.as_int());
        Value down = ctx.global("DownSwitches").set_insert(event);
        ctx.set_global("DownSwitches", down);
        // Recompute every flow's path over the surviving topology and
        // submit one replacement DAG.
        std::set<int> nodes = nodes_of();
        for (const Value& d : down.as_set()) {
          nodes.erase(static_cast<int>(d.as_int()));
        }
        std::set<std::pair<int, int>> edges = edges_of();
        (void)failed;
        std::vector<std::pair<int, int>> pairs;
        for (auto [src, dst] : scenario.flows) {
          if (nodes.count(src) && nodes.count(dst)) pairs.emplace_back(src, dst);
        }
        ValueVec ops;
        ValueVec dag_edges;
        std::int64_t op_index = ctx.local("opIndex").as_int();
        for (const auto& path : bfs_paths(nodes, edges, pairs)) {
          std::vector<std::int64_t> ids;
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            std::int64_t id = op_index++;
            ids.push_back(id);
            ops.push_back(Value::record(
                FieldMap{{"op", Value::integer(id)},
                         {"sw", Value::integer(path[i])},
                         {"nh", Value::integer(path[i + 1])},
                         {"dst", Value::integer(path.back())},
                         {"priority", Value::integer(2)}}));
          }
          for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
            dag_edges.push_back(int_seq({static_cast<int>(ids[i + 1]),
                                         static_cast<int>(ids[i])}));
          }
        }
        Value dag = Value::record(
            FieldMap{{"id", ctx.local("nextDagId")},
                     {"v", Value::set(std::move(ops))},
                     {"e", Value::set(std::move(dag_edges))}});
        // §3.6 semantics: the app deletes the (now invalid) pending DAG and
        // installs the one consistent with the updated topology — a queued
        // DAG that predates this event is withdrawn, not left to install.
        ctx.set_global("DAGEventQueue", Value::seq({std::move(dag)}));
        ctx.set_local("nextDagId",
                      Value::integer(ctx.local("nextDagId").as_int() + 1));
        ctx.set_local("opIndex", Value::integer(op_index));
        ctx.jump("TELoop");
      }});
  spec.process(std::move(te));

  nadir::Process abstract_core("AbstractCore");
  abstract_core.step(nadir::Step{
      "CoreLoop",
      {"DAGEventQueue", "InstalledDags"},
      {"DAGEventQueue", "InstalledDags"},
      [](StepContext& ctx) {
        Value dag = ctx.fifo_get("DAGEventQueue");
        if (ctx.blocked()) return;
        ctx.set_global("InstalledDags",
                       ctx.global("InstalledDags").set_insert(dag.field("id")));
        ctx.jump("CoreLoop");
      }});
  spec.process(std::move(abstract_core));
  return spec;
}

std::string check_te_avoids_failed(const nadir::Env& env,
                                   const TeSpecScenario& scenario) {
  (void)scenario;
  const Value& down = env.globals.at("DownSwitches");
  const Value& queue = env.globals.at("DAGEventQueue");
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const Value& dag = queue.at(i);
    for (const Value& op : dag.field("v").as_set()) {
      if (down.set_contains(op.field("sw")) ||
          down.set_contains(op.field("nh"))) {
        return "TE DAG " + std::to_string(dag.field("id").as_int()) +
               " routes via a failed switch";
      }
    }
  }
  return "";
}

bool te_all_events_handled(const nadir::Env& env,
                           const TeSpecScenario& scenario) {
  return env.globals.at("InstalledDags").size() >=
         scenario.failure_events.size();
}

// ---- Failover spec ---------------------------------------------------------------

nadir::Spec build_failover_spec(const FailoverSpecScenario& scenario) {
  Spec spec("PlannedFailoverApp");

  ValueVec in_flight;
  for (int i = 0; i < scenario.in_flight_ops; ++i) {
    in_flight.push_back(Value::integer(i + 1));
  }
  ValueVec roles;
  for (int sw = 0; sw < scenario.switches; ++sw) {
    roles.push_back(Value::integer(0));  // roles[sw] = master instance
  }
  auto phase_type = Type::enumeration({"IDLE", "DRAINING", "ROLE_CHANGE"});

  spec.global("FailoverRequests", Type::seq(Type::integer()),
              Value::seq({Value::integer(1)}), true);
  spec.global("Phase", phase_type, Value::string("IDLE"), true);
  spec.global("InFlightOps", Type::set(Type::integer()),
              Value::set(std::move(in_flight)), true);
  spec.global("SwitchRoles", Type::seq(Type::integer()),
              Value::seq(std::move(roles)), true);
  spec.global("Master", Type::integer(), Value::integer(0), true);
  spec.global("Target", Type::integer(), Value::integer(0), true);

  nadir::Process manager("FailoverManager");
  manager.step(nadir::Step{
      "AwaitRequest",
      {"FailoverRequests", "Phase", "Target"},
      {"FailoverRequests", "Phase", "Target"},
      [](StepContext& ctx) {
        Value request = ctx.fifo_get("FailoverRequests");
        if (ctx.blocked()) return;
        ctx.set_global("Target", request);
        ctx.set_global("Phase", Value::string("DRAINING"));
      }});
  manager.step(nadir::Step{
      "Drain",
      {"InFlightOps", "Phase"},
      {"Phase"},
      [](StepContext& ctx) {
        // The verified behaviour: wait for every in-flight ACK before
        // moving the role (P3 processing + the Figure 15 drain).
        ctx.await(ctx.global("InFlightOps").size() == 0);
        if (ctx.blocked()) return;
        ctx.set_global("Phase", Value::string("ROLE_CHANGE"));
      }});
  manager.step(nadir::Step{
      "RoleChange",
      {"SwitchRoles", "Target", "Phase", "Master"},
      {"SwitchRoles", "Phase", "Master"},
      [](StepContext& ctx) {
        // Move one switch per step (each role change is its own message).
        const Value& roles = ctx.global("SwitchRoles");
        const Value& target = ctx.global("Target");
        for (std::size_t sw = 0; sw < roles.size(); ++sw) {
          if (roles.at(sw).as_int() != target.as_int()) {
            ValueVec updated = roles.as_seq();
            updated[sw] = target;
            ctx.set_global("SwitchRoles", Value::seq(std::move(updated)));
            ctx.jump("RoleChange");
            return;
          }
        }
        ctx.set_global("Master", target);
        ctx.set_global("Phase", Value::string("IDLE"));
        ctx.jump("AwaitRequest");
      }});
  spec.process(std::move(manager));

  // Monitoring Server stand-in: processes one in-flight ACK per step.
  nadir::Process drainer("AckDrainer");
  drainer.step(nadir::Step{
      "ProcessAck",
      {"InFlightOps"},
      {"InFlightOps"},
      [](StepContext& ctx) {
        const Value& ops = ctx.global("InFlightOps");
        ctx.await(ops.size() > 0);
        if (ctx.blocked()) return;
        ctx.set_global("InFlightOps", ops.set_erase(nadir::choose(ops)));
        ctx.jump("ProcessAck");
      }});
  spec.process(std::move(drainer));
  return spec;
}

std::string check_failover_drained(const nadir::Env& env) {
  const Value& phase = env.globals.at("Phase");
  if (phase.as_string() == "ROLE_CHANGE" &&
      env.globals.at("InFlightOps").size() > 0) {
    return "role change started with ACKs still in flight (not hitless)";
  }
  return "";
}

bool failover_completed(const nadir::Env& env,
                        const FailoverSpecScenario& scenario) {
  if (env.globals.at("Master").as_int() != 1) return false;
  const Value& roles = env.globals.at("SwitchRoles");
  for (int sw = 0; sw < scenario.switches; ++sw) {
    if (roles.at(static_cast<std::size_t>(sw)).as_int() != 1) return false;
  }
  return true;
}

// ---- Maintenance spec ------------------------------------------------------------

nadir::Spec build_maintenance_spec(const MaintenanceSpecScenario& scenario) {
  Spec spec("MaintenanceSchedulerApp");

  ValueVec requests;
  for (int w = 0; w < scenario.windows; ++w) {
    requests.push_back(Value::integer(w + 1));
  }
  auto phase_type = Type::enumeration({"IDLE", "DRAINING", "IN_SERVICE"});

  spec.global("MaintRequests", Type::seq(Type::integer()),
              Value::seq(std::move(requests)), true);
  spec.global("Phase", phase_type, Value::string("IDLE"), true);
  // The app's drain submissions toward the core (op ids, FIFO).
  spec.global("CoreQueue", Type::seq(Type::integer()), Value::seq({}), true);
  // Committed-but-unapplied eventual installs: the spec-level twin of the
  // NIB's eventual apply log.
  spec.global("PendingLog", Type::seq(Type::integer()), Value::seq({}), true);
  spec.global("Committed", Type::integer(), Value::integer(0), true);
  spec.global("Applied", Type::integer(), Value::integer(0), true);
  spec.global("WindowsDone", Type::integer(), Value::integer(0), true);
  spec.global("GateBarriers", Type::integer(), Value::integer(0), true);

  nadir::Process app("MaintenanceApp");
  app.local("nextOp", Type::integer(), Value::integer(100));
  app.step(nadir::Step{
      "AwaitRequest",
      {"MaintRequests", "Phase", "CoreQueue"},
      {"MaintRequests", "Phase", "CoreQueue"},
      [scenario](StepContext& ctx) {
        Value request = ctx.fifo_get("MaintRequests");
        if (ctx.blocked()) return;
        (void)request;
        // Submit the drain DAG's reroute installs (eventual-class).
        ValueVec queue = ctx.global("CoreQueue").as_seq();
        std::int64_t op = ctx.local("nextOp").as_int();
        for (int i = 0; i < scenario.installs_per_window; ++i) {
          queue.push_back(Value::integer(op++));
        }
        ctx.set_global("CoreQueue", Value::seq(std::move(queue)));
        ctx.set_local("nextOp", Value::integer(op));
        ctx.set_global("Phase", Value::string("DRAINING"));
        ctx.jump("Gate");
      }});
  app.step(nadir::Step{
      "Gate",
      {"CoreQueue", "PendingLog", "Applied", "GateBarriers", "Phase"},
      {"PendingLog", "Applied", "GateBarriers", "Phase"},
      [scenario](StepContext& ctx) {
        // The drain is certified once the core has consumed every submission.
        ctx.await(ctx.global("CoreQueue").size() == 0);
        if (ctx.blocked()) return;
        if (!scenario.bug_skip_barrier) {
          // The window gate's strong barrier: publish every pending
          // eventual entry before re-checking the view (E2 discipline).
          const Value& log = ctx.global("PendingLog");
          ctx.set_global("Applied",
                         Value::integer(ctx.global("Applied").as_int() +
                                        static_cast<std::int64_t>(log.size())));
          ctx.set_global("PendingLog", Value::seq({}));
        }
        ctx.set_global("GateBarriers",
                       Value::integer(ctx.global("GateBarriers").as_int() + 1));
        ctx.set_global("Phase", Value::string("IN_SERVICE"));
        ctx.jump("CloseWindow");
      }});
  app.step(nadir::Step{
      "CloseWindow",
      {"Phase", "WindowsDone"},
      {"Phase", "WindowsDone"},
      [](StepContext& ctx) {
        ctx.set_global("WindowsDone",
                       Value::integer(ctx.global("WindowsDone").as_int() + 1));
        ctx.set_global("Phase", Value::string("IDLE"));
        ctx.jump("AwaitRequest");
      }});
  spec.process(std::move(app));

  // AbstractCore: commits one submission per step into the eventual log,
  // draining the oldest entry inline when the E1 bound would be exceeded
  // (the bound holds structurally, exactly like Nib::eventual_commit_batch).
  nadir::Process core("AbstractCore");
  core.step(nadir::Step{
      "CoreCommit",
      {"CoreQueue", "PendingLog", "Committed", "Applied"},
      {"CoreQueue", "PendingLog", "Committed", "Applied"},
      [scenario](StepContext& ctx) {
        Value op = ctx.fifo_get("CoreQueue");
        if (ctx.blocked()) return;
        ValueVec log = ctx.global("PendingLog").as_seq();
        log.push_back(std::move(op));
        std::int64_t applied = ctx.global("Applied").as_int();
        while (log.size() >
               static_cast<std::size_t>(scenario.staleness_bound)) {
          log.erase(log.begin());
          ++applied;
        }
        ctx.set_global("PendingLog", Value::seq(std::move(log)));
        ctx.set_global("Applied", Value::integer(applied));
        ctx.set_global("Committed",
                       Value::integer(ctx.global("Committed").as_int() + 1));
        ctx.jump("CoreCommit");
      }});
  spec.process(std::move(core));

  // EventualApplyPump: publishes one pending entry per step.
  nadir::Process pump("EventualPump");
  pump.step(nadir::Step{
      "Apply",
      {"PendingLog", "Applied"},
      {"PendingLog", "Applied"},
      [](StepContext& ctx) {
        const Value& log = ctx.global("PendingLog");
        ctx.await(log.size() > 0);
        if (ctx.blocked()) return;
        ValueVec rest = log.as_seq();
        rest.erase(rest.begin());
        ctx.set_global("PendingLog", Value::seq(std::move(rest)));
        ctx.set_global("Applied",
                       Value::integer(ctx.global("Applied").as_int() + 1));
        ctx.jump("Apply");
      }});
  spec.process(std::move(pump));
  return spec;
}

std::string check_maintenance_gate(const nadir::Env& env,
                                   const MaintenanceSpecScenario& scenario) {
  const Value& log = env.globals.at("PendingLog");
  if (log.size() > static_cast<std::size_t>(scenario.staleness_bound)) {
    return "eventual log holds " + std::to_string(log.size()) +
           " entries, over the staleness bound (E1)";
  }
  std::int64_t committed = env.globals.at("Committed").as_int();
  std::int64_t applied = env.globals.at("Applied").as_int();
  if (applied > committed) {
    return "apply cursor ahead of the committed prefix";
  }
  if (applied + static_cast<std::int64_t>(log.size()) != committed) {
    return "eventual log out of sync with the committed/applied counters";
  }
  if (env.globals.at("Phase").as_string() == "IN_SERVICE" && log.size() > 0) {
    return "maintenance window opened with " + std::to_string(log.size()) +
           " eventual entries pending (gate barrier skipped, E2)";
  }
  return "";
}

bool maintenance_all_windows_done(const nadir::Env& env,
                                  const MaintenanceSpecScenario& scenario) {
  return env.globals.at("WindowsDone").as_int() == scenario.windows &&
         env.globals.at("PendingLog").size() == 0 &&
         env.globals.at("Applied").as_int() ==
             env.globals.at("Committed").as_int();
}

}  // namespace zenith::apps
