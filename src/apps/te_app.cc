#include "apps/te_app.h"

#include <algorithm>

#include "common/logging.h"

namespace zenith::apps {

TrafficEngineeringApp::TrafficEngineeringApp(ZenithController* controller,
                                             const Topology* topo,
                                             const TrafficModel* telemetry,
                                             std::uint32_t first_dag_id)
    : Component(controller->context().sim, "te_app", micros(200)),
      controller_(controller),
      topo_(topo),
      telemetry_(telemetry),
      next_dag_id_(first_dag_id) {
  events_.set_wake_callback([this] { kick(); });
  controller_->register_app_sink(&events_);
}

DagId TrafficEngineeringApp::install_initial_paths(
    std::vector<Demand> demands) {
  demands_ = std::move(demands);
  std::vector<Path> paths;
  std::vector<FlowId> flows;
  for (const Demand& d : demands_) {
    auto path = shortest_path(*topo_, d.src, d.dst, known_down_);
    if (!path) continue;
    paths.push_back(*path);
    flows.push_back(d.flow);
  }
  DagId id(next_dag_id_++);
  auto dag = compile_replacement_dag(id, paths, flows, {},
                                     controller_->op_ids());
  if (!dag.ok()) return DagId();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    paths_[flows[i]] = paths[i];
  }
  for (const Op* op : dag.value().all_ops()) {
    if (op->type == OpType::kInstallRule) {
      ops_[op->rule.flow].push_back(*op);
    }
  }
  controller_->submit_dag(std::move(dag).value());
  return id;
}

void TrafficEngineeringApp::note_local_recovery(FlowId flow,
                                                const Op& backup_op,
                                                Path new_path) {
  // The app now owns the backup rule's cleanup. The flow's *intended* path
  // stays the primary one: protection switching is a data-plane bandage,
  // and the app must still react to the failure with a proper reroute.
  ops_[flow].push_back(backup_op);
  (void)new_path;
}

void TrafficEngineeringApp::start_probe(SimTime period) {
  probe_period_ = period;
  if (probing_) return;
  probing_ = true;
  sim()->schedule(probe_period_, [this] { probe(); });
}

bool TrafficEngineeringApp::trigger_congestion_scan() {
  // Congested flows: allocation below demand although delivered.
  auto reports = telemetry_->evaluate(demands_);
  std::vector<FlowId> congested;
  for (const auto& r : reports) {
    if (r.resolution.outcome == DeliveryOutcome::kDelivered &&
        r.throughput_gbps < r.demand.rate_gbps * 0.9) {
      congested.push_back(r.demand.flow);
    }
  }
  if (congested.empty()) return false;
  bool moved = reroute(congested, known_down_, /*congestion=*/true);
  if (moved) {
    ZLOG_DEBUG("TE congestion reroute of %zu flows", congested.size());
  }
  return moved;
}

void TrafficEngineeringApp::probe() {
  if (!probing_ || !alive()) {
    if (probing_) sim()->schedule(probe_period_, [this] { probe(); });
    return;
  }
  (void)trigger_congestion_scan();
  sim()->schedule(probe_period_, [this] { probe(); });
}

bool TrafficEngineeringApp::reroute(
    const std::vector<FlowId>& flows,
    const std::unordered_set<SwitchId>& avoid, bool congestion) {
  // Current load per switch (coarse): how many paths traverse it. The TE
  // objective here is spreading, not optimality — enough to exercise the
  // overlapping-DAG scenario.
  std::unordered_map<SwitchId, int> load;
  for (const auto& [flow, path] : paths_) {
    for (SwitchId sw : path) ++load[sw];
  }
  std::vector<Path> new_paths;
  std::vector<FlowId> moved;
  std::vector<Op> previous_ops;
  for (FlowId flow : flows) {
    auto demand_it =
        std::find_if(demands_.begin(), demands_.end(),
                     [&](const Demand& d) { return d.flow == flow; });
    if (demand_it == demands_.end()) continue;
    if (avoid.count(demand_it->src) || avoid.count(demand_it->dst)) continue;
    auto alternatives =
        k_alternative_paths(*topo_, demand_it->src, demand_it->dst, 3);
    // Down links rule out any alternative crossing them; as a last resort
    // compute a fresh path that avoids them explicitly.
    if (auto detour = shortest_path_avoiding_links(
            *topo_, demand_it->src, demand_it->dst, avoid, down_links_)) {
      alternatives.push_back(std::move(*detour));
    }
    // Pick the least-loaded alternative that avoids dead switches/links and
    // differs from the current path.
    const Path* best = nullptr;
    int best_load = std::numeric_limits<int>::max();
    for (const Path& candidate : alternatives) {
      bool usable = std::none_of(
          candidate.begin(), candidate.end(),
          [&](SwitchId sw) { return avoid.count(sw) > 0; });
      for (std::size_t h = 0; usable && h + 1 < candidate.size(); ++h) {
        auto link = topo_->link_between(candidate[h], candidate[h + 1]);
        if (link.ok() && down_links_.count(link.value())) usable = false;
      }
      if (!usable) continue;
      if (congestion && candidate == paths_[flow]) continue;
      int path_load = 0;
      for (SwitchId sw : candidate) path_load += load[sw];
      if (path_load < best_load) {
        best_load = path_load;
        best = &candidate;
      }
    }
    if (best == nullptr || *best == paths_[flow]) continue;
    new_paths.push_back(*best);
    moved.push_back(flow);
    auto& old_ops = ops_[flow];
    for (const Op& op : old_ops) {
      if (avoid.count(op.sw)) continue;  // dead switch: nothing to delete
      previous_ops.push_back(op);
    }
  }
  if (moved.empty()) return false;

  // Priority must clear everything currently installed.
  std::vector<Op> all_ops;
  for (const auto& [_, flow_ops] : ops_) {
    all_ops.insert(all_ops.end(), flow_ops.begin(), flow_ops.end());
  }
  int priority = highest_priority(all_ops) + 1;

  DagId id(next_dag_id_++);
  Dag dag(id);
  for (std::size_t i = 0; i < moved.size(); ++i) {
    CompiledPath compiled =
        compile_single_path(new_paths[i], moved[i], priority,
                            controller_->op_ids());
    for (const Op& op : compiled.ops) (void)dag.add_op(op);
    for (auto [a, b] : compiled.edges) (void)dag.add_edge(a, b);
    paths_[moved[i]] = new_paths[i];
    ops_[moved[i]] = compiled.ops;
  }
  std::vector<Op> deletions =
      deletion_ops(previous_ops, controller_->op_ids());
  if (!deletions.empty()) (void)dag.expand_with(deletions);
  controller_->submit_dag(std::move(dag));
  if (congestion) {
    ++congestion_dags_;
  } else {
    ++repair_dags_;
  }
  return true;
}

bool TrafficEngineeringApp::try_step() {
  if (events_.empty()) return false;
  NibEvent event = events_.peek();
  if (event.type == NibEvent::Type::kTopologyChanged) {
    // Port/link transition: move every flow whose path crosses the link.
    if (event.link_up) {
      down_links_.erase(event.link);
    } else {
      down_links_.insert(event.link);
      std::vector<FlowId> impacted;
      for (const auto& [flow, path] : paths_) {
        for (std::size_t h = 0; h + 1 < path.size(); ++h) {
          auto link = topo_->link_between(path[h], path[h + 1]);
          if (link.ok() && link.value() == event.link) {
            impacted.push_back(flow);
            break;
          }
        }
      }
      std::sort(impacted.begin(), impacted.end());
      if (!impacted.empty()) {
        reroute(impacted, known_down_, /*congestion=*/false);
      }
    }
    events_.ack_pop();
    return true;
  }
  if (event.type == NibEvent::Type::kSwitchHealthChanged) {
    if (!event.sw_up) {
      known_down_.insert(event.sw);
      // Repair: move every flow whose path touches the failed switch.
      std::vector<FlowId> impacted;
      for (const auto& [flow, path] : paths_) {
        if (std::find(path.begin(), path.end(), event.sw) != path.end()) {
          impacted.push_back(flow);
        }
      }
      std::sort(impacted.begin(), impacted.end());
      if (!impacted.empty()) {
        reroute(impacted, known_down_, /*congestion=*/false);
      }
    } else {
      known_down_.erase(event.sw);
    }
  }
  events_.ack_pop();
  return true;
}

}  // namespace zenith::apps
