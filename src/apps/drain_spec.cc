#include "apps/drain_spec.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace zenith::apps {

using nadir::FieldMap;
using nadir::Spec;
using nadir::StepContext;
using nadir::Type;
using nadir::Value;
using nadir::ValueVec;

namespace {

// ---- value constructors ----------------------------------------------------

Value op_object(int op, int sw, int next_hop, int dst, int priority) {
  return Value::record(FieldMap{{"op", Value::integer(op)},
                                {"sw", Value::integer(sw)},
                                {"nh", Value::integer(next_hop)},
                                {"dst", Value::integer(dst)},
                                {"priority", Value::integer(priority)}});
}

Value int_seq(const std::vector<int>& xs) {
  ValueVec items;
  items.reserve(xs.size());
  for (int x : xs) items.push_back(Value::integer(x));
  return Value::seq(std::move(items));
}

// ---- ShortestPaths operator (recursive BFS in the paper; plain BFS here) --

std::vector<std::vector<int>> shortest_paths_int(
    const std::set<int>& nodes, const std::set<std::pair<int, int>>& edges,
    const std::vector<std::pair<int, int>>& endpoint_pairs) {
  std::map<int, std::vector<int>> adjacency;
  for (auto [a, b] : edges) {
    if (!nodes.count(a) || !nodes.count(b)) continue;
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  for (auto& [_, neighbors] : adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  std::vector<std::vector<int>> out;
  for (auto [src, dst] : endpoint_pairs) {
    std::map<int, int> parent;
    std::deque<int> frontier{src};
    parent[src] = src;
    while (!frontier.empty()) {
      int cur = frontier.front();
      frontier.pop_front();
      if (cur == dst) break;
      for (int next : adjacency[cur]) {
        if (!parent.count(next)) {
          parent[next] = cur;
          frontier.push_back(next);
        }
      }
    }
    if (!parent.count(dst)) continue;
    std::vector<int> path{dst};
    int hop = dst;
    while (hop != src) {
      hop = parent[hop];
      path.push_back(hop);
    }
    std::reverse(path.begin(), path.end());
    out.push_back(std::move(path));
  }
  return out;
}

// The HighestPriorityInOPSet operator (Listing 7).
std::int64_t highest_priority_in_op_set(const Value& op_set) {
  std::int64_t best = 0;
  for (const Value& op : op_set.as_set()) {
    best = std::max(best, op.field("priority").as_int());
  }
  return best;
}

}  // namespace

Spec build_drain_spec(const DrainSpecScenario& scenario) {
  Spec spec("HitlessDrainApp");

  // ---- NADIR struct types (Listing 8) ---------------------------------------
  auto op_type = Type::record({{"op", Type::integer()},
                               {"sw", Type::integer()},
                               {"nh", Type::integer()},
                               {"dst", Type::integer()},
                               {"priority", Type::integer()}});
  auto edge_type = Type::seq(Type::integer());  // <<before, after>>
  auto dag_type = Type::record({{"id", Type::integer()},
                                {"v", Type::set(op_type)},
                                {"e", Type::set(edge_type)}});
  auto topology_type = Type::record(
      {{"Nodes", Type::set(Type::integer())},
       {"Edges", Type::set(Type::seq(Type::integer()))}});
  auto path_type = Type::seq(Type::integer());
  auto drain_request_type = Type::record(
      {{"topology", topology_type},
       {"paths", Type::set(path_type)},
       {"node", Type::integer()},
       {"ops", Type::set(op_type)}});

  // ---- initial DrainRequestQueue content -------------------------------------
  ValueVec node_values;
  for (std::size_t i = 0; i < scenario.nodes; ++i) {
    node_values.push_back(Value::integer(static_cast<int>(i)));
  }
  ValueVec edge_values;
  for (auto [a, b] : scenario.edges) {
    edge_values.push_back(int_seq({a, b}));
  }
  Value topology = Value::record(
      FieldMap{{"Nodes", Value::set(std::move(node_values))},
               {"Edges", Value::set(std::move(edge_values))}});

  ValueVec path_values;
  ValueVec initial_ops;
  int op_counter = 1;
  for (const auto& path : scenario.paths) {
    path_values.push_back(int_seq(path));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      initial_ops.push_back(op_object(op_counter++, path[i], path[i + 1],
                                      path.back(), /*priority=*/1));
    }
  }
  Value request = Value::record(
      FieldMap{{"topology", topology},
               {"paths", Value::set(std::move(path_values))},
               {"node", Value::integer(scenario.node_to_drain)},
               {"ops", Value::set(std::move(initial_ops))}});

  // ---- globals (Listing 5) ---------------------------------------------------
  spec.global("DAGEventQueue", Type::seq(dag_type), Value::seq({}),
              /*persistent=*/true);
  spec.global("DrainRequestQueue", Type::seq(drain_request_type),
              scenario.empty_request_queue ? Value::seq({})
                                           : Value::seq({request}),
              /*persistent=*/true);
  // AbstractCore state (§4): the set of DAG ids it has installed.
  spec.global("InstalledDags", Type::set(Type::integer()), Value::set({}),
              /*persistent=*/true);

  // ---- drainer process (Listing 4) ------------------------------------------
  nadir::Process drainer("drainer");
  drainer.local("currentRequest", Type::nullable(drain_request_type),
                Value::nil());
  drainer.local("nodeToDrain", Type::nullable(Type::integer()), Value::nil());
  drainer.local("endpoints", Type::set(Type::seq(Type::integer())),
                Value::set({}));
  drainer.local("pathsAfterDrain", Type::set(path_type), Value::set({}));
  drainer.local("nextPriority", Type::nullable(Type::integer()), Value::nil());
  drainer.local("newOPSet", Type::set(op_type), Value::set({}));
  drainer.local("newDAGEdgeSet", Type::set(edge_type), Value::set({}));
  drainer.local("drainedDAG", Type::nullable(dag_type), Value::nil());
  drainer.local("nextDAGID", Type::integer(), Value::integer(1));
  drainer.local("opIndex", Type::integer(), Value::integer(100));

  bool crash_safe = scenario.crash_safe_queue;
  drainer.step(nadir::Step{
      "DrainLoop",
      {"DrainRequestQueue"},
      {"DrainRequestQueue"},
      [crash_safe](StepContext& ctx) {
        // Listing 4 line 13: FIFOGet. The crash-safe variant reads the head
        // without consuming (AckQueueRead) and pops only after SubmitDAG.
        Value request = crash_safe ? ctx.fifo_peek("DrainRequestQueue")
                                   : ctx.fifo_get("DrainRequestQueue");
        if (ctx.blocked()) return;  // AWAIT: no request pending
        ctx.set_local("currentRequest", request);
        ctx.set_local("nodeToDrain", request.field("node"));
      }});

  drainer.step(nadir::Step{
      "ComputeDrain",
      {},
      {},
      [](StepContext& ctx) {
        const Value& request = ctx.local("currentRequest");
        int drained = static_cast<int>(ctx.local("nodeToDrain").as_int());
        // getPathSetEndpoints \ {nodeToDrain} (Listing 4 line 20).
        ValueVec endpoint_pairs;
        std::vector<std::pair<int, int>> pairs;
        for (const Value& path : request.field("paths").as_set()) {
          int src = static_cast<int>(path.at(0).as_int());
          int dst = static_cast<int>(path.at(path.size() - 1).as_int());
          if (src == drained || dst == drained) continue;
          endpoint_pairs.push_back(int_seq({src, dst}));
          pairs.emplace_back(src, dst);
        }
        ctx.set_local("endpoints", Value::set(std::move(endpoint_pairs)));
        // ShortestPaths over (Nodes \ {node}, Edges without node).
        const Value& topology = request.field("topology");
        std::set<int> nodes;
        for (const Value& n : topology.field("Nodes").as_set()) {
          int node = static_cast<int>(n.as_int());
          if (node != drained) nodes.insert(node);
        }
        std::set<std::pair<int, int>> edges;
        for (const Value& e : topology.field("Edges").as_set()) {
          int a = static_cast<int>(e.at(0).as_int());
          int b = static_cast<int>(e.at(1).as_int());
          if (a == drained || b == drained) continue;
          edges.emplace(a, b);
        }
        ValueVec new_paths;
        for (const auto& path : shortest_paths_int(nodes, edges, pairs)) {
          std::vector<int> hops(path.begin(), path.end());
          new_paths.push_back(int_seq(hops));
        }
        ctx.set_local("pathsAfterDrain", Value::set(std::move(new_paths)));
      }});

  drainer.step(nadir::Step{
      "ComputePriority",
      {},
      {},
      [](StepContext& ctx) {
        // Listing 6 line 13: new OPs MUST outrank all previous ones.
        const Value& request = ctx.local("currentRequest");
        std::int64_t highest =
            highest_priority_in_op_set(request.field("ops"));
        ctx.set_local("nextPriority", Value::integer(highest + 1));
      }});

  drainer.step(nadir::Step{
      "ComputeNewPathsDAG",
      {},
      {},
      [](StepContext& ctx) {
        // The Listing 6 while-loop; one path per step (CHOOSE + remove).
        const Value& paths = ctx.local("pathsAfterDrain");
        if (paths.size() == 0) return;  // fall through to CleanupPreviousOPs
        const Value& path = nadir::choose(paths);
        std::int64_t priority = ctx.local("nextPriority").as_int();
        std::int64_t op_index = ctx.local("opIndex").as_int();
        Value op_set = ctx.local("newOPSet");
        Value edge_set = ctx.local("newDAGEdgeSet");
        int dst = static_cast<int>(path.at(path.size() - 1).as_int());
        std::vector<std::int64_t> new_ids;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          std::int64_t id = op_index++;
          new_ids.push_back(id);
          op_set = op_set.set_insert(op_object(
              static_cast<int>(id), static_cast<int>(path.at(i).as_int()),
              static_cast<int>(path.at(i + 1).as_int()), dst,
              static_cast<int>(priority)));
        }
        // Downstream before upstream: edge <<ops[i+1], ops[i]>>.
        for (std::size_t i = 0; i + 1 < new_ids.size(); ++i) {
          edge_set = edge_set.set_insert(int_seq(
              {static_cast<int>(new_ids[i + 1]), static_cast<int>(new_ids[i])}));
        }
        ctx.set_local("newOPSet", op_set);
        ctx.set_local("newDAGEdgeSet", edge_set);
        ctx.set_local("opIndex", Value::integer(op_index));
        ctx.set_local("pathsAfterDrain", paths.set_erase(path));
        ctx.jump("ComputeNewPathsDAG");  // while Cardinality(newPaths) > 0
      }});

  drainer.step(nadir::Step{
      "CleanupPreviousOPs",
      {},
      {},
      [](StepContext& ctx) {
        // ExpandDAG with GetDeletionOPs(previousOPs): deletions attach after
        // every leaf; in this record encoding they appear as OPs with
        // negative ids referencing the deleted OP, ordered after all new
        // OPs via edges from every new OP.
        const Value& request = ctx.local("currentRequest");
        Value op_set = ctx.local("newOPSet");
        Value edge_set = ctx.local("newDAGEdgeSet");
        ValueVec new_op_ids;
        for (const Value& op : op_set.as_set()) {
          new_op_ids.push_back(op.field("op"));
        }
        for (const Value& old_op : request.field("ops").as_set()) {
          std::int64_t deletion_id = -old_op.field("op").as_int();
          op_set = op_set.set_insert(op_object(
              static_cast<int>(deletion_id),
              static_cast<int>(old_op.field("sw").as_int()),
              static_cast<int>(old_op.field("nh").as_int()),
              static_cast<int>(old_op.field("dst").as_int()), 0));
          for (const Value& new_id : new_op_ids) {
            edge_set = edge_set.set_insert(
                int_seq({static_cast<int>(new_id.as_int()),
                         static_cast<int>(deletion_id)}));
          }
        }
        Value dag = Value::record(
            FieldMap{{"id", ctx.local("nextDAGID")},
                     {"v", op_set},
                     {"e", edge_set}});
        ctx.set_local("drainedDAG", dag);
      }});

  drainer.step(nadir::Step{
      "SubmitDAG",
      {"DAGEventQueue", "DrainRequestQueue"},
      {"DAGEventQueue", "DrainRequestQueue"},
      [crash_safe](StepContext& ctx) {
        // FIFOPut(DAGEventQueue, [id |-> nextDAGID, dag |-> drainedDAG]).
        ctx.fifo_put("DAGEventQueue", ctx.local("drainedDAG"));
        ctx.set_local("nextDAGID",
                      Value::integer(ctx.local("nextDAGID").as_int() + 1));
        ctx.set_local("newOPSet", Value::set({}));
        ctx.set_local("newDAGEdgeSet", Value::set({}));
        // Crash-safe variant: only now is the request's processing
        // complete, so only now is it removed (AckQueuePop).
        if (crash_safe) ctx.fifo_ack_pop("DrainRequestQueue");
        ctx.jump("DrainLoop");
      }});

  spec.process(std::move(drainer));

  // ---- AbstractCore (§4) -----------------------------------------------------
  if (!scenario.include_abstract_core) return spec;
  nadir::Process abstract_core("AbstractCore");
  abstract_core.step(nadir::Step{
      "CoreLoop",
      {"DAGEventQueue", "InstalledDags"},
      {"DAGEventQueue", "InstalledDags"},
      [](StepContext& ctx) {
        Value dag = ctx.fifo_get("DAGEventQueue");
        if (ctx.blocked()) return;
        ctx.set_global("InstalledDags",
                       ctx.global("InstalledDags").set_insert(dag.field("id")));
        ctx.jump("CoreLoop");
      }});
  spec.process(std::move(abstract_core));

  return spec;
}

std::string check_no_traffic_via_drained(const nadir::Env& env,
                                         int drained_node) {
  const Value& queue = env.globals.at("DAGEventQueue");
  auto check_dag = [&](const Value& dag) -> std::string {
    for (const Value& op : dag.field("v").as_set()) {
      if (op.field("op").as_int() < 0) continue;  // deletion op
      if (op.field("sw").as_int() == drained_node ||
          op.field("nh").as_int() == drained_node) {
        return "DAG " + std::to_string(dag.field("id").as_int()) +
               " routes via drained node through OP " +
               std::to_string(op.field("op").as_int());
      }
    }
    return "";
  };
  for (std::size_t i = 0; i < queue.size(); ++i) {
    std::string err = check_dag(queue.at(i));
    if (!err.empty()) return err;
  }
  const auto& drainer = env.procs.at("drainer");
  const Value& pending = drainer.locals.at("drainedDAG");
  if (!pending.is_nil()) {
    return check_dag(pending);
  }
  return "";
}

bool drain_submitted(const nadir::Env& env) {
  return env.globals.at("InstalledDags").size() >= 1;
}

}  // namespace zenith::apps
