// AbstractApp (§3.6): the application stand-in used to verify ZENITH-core
// without any real app.
//
// It holds a library of pre-defined DAGs, one per topology state (the set
// of healthy switches), and "does not include logic for *generating* DAGs.
// It simply reacts to data plane events by deleting the current DAG and
// installing a new one consistent with the updated topology."
#pragma once

#include <map>
#include <set>

#include "core/component.h"
#include "core/controller.h"

namespace zenith::apps {

class AbstractApp : public Component {
 public:
  explicit AbstractApp(ZenithController* controller);

  /// Registers the DAG to install when exactly `healthy` switches are up.
  /// The DAG for the full topology is installed by `bootstrap()`.
  void add_dag_for(std::set<SwitchId> healthy, Dag dag);

  /// Installs the DAG matching the currently healthy set.
  void bootstrap();

  std::size_t dags_installed() const { return dags_installed_; }
  DagId current_dag() const { return current_; }

 protected:
  bool try_step() override;

 private:
  std::set<SwitchId> healthy_set() const;
  void react();

  ZenithController* controller_;
  NadirFifo<NibEvent> events_;
  std::map<std::set<SwitchId>, Dag> library_;
  DagId current_;
  std::size_t dags_installed_ = 0;
};

}  // namespace zenith::apps
