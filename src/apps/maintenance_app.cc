#include "apps/maintenance_app.h"

#include "common/logging.h"

namespace zenith::apps {

MaintenanceApp::MaintenanceApp(ZenithController* controller,
                               const Topology* topo,
                               std::uint32_t first_dag_id)
    : Component(controller->context().sim, "maintenance_app", micros(150)),
      controller_(controller),
      topo_(topo),
      next_dag_id_(first_dag_id) {
  events_.set_wake_callback([this] { kick(); });
  controller_->register_app_sink(&events_);
}

void MaintenanceApp::set_intent(std::vector<Path> paths,
                                std::vector<FlowId> flows,
                                std::vector<Op> ops) {
  paths_ = std::move(paths);
  flows_ = std::move(flows);
  ops_ = std::move(ops);
}

void MaintenanceApp::request(MaintenanceRequest req) {
  queue_.push_back(req);
  kick();
}

bool MaintenanceApp::submit_transition(bool undrain) {
  DrainRequest req;
  req.topology = *topo_;
  req.paths = paths_;
  req.flows = flows_;
  req.ops = ops_;
  req.node_to_drain = target_;
  req.undrain = undrain;
  DagId dag_id(next_dag_id_);
  auto result = compute_drain_dag(req, dag_id, controller_->op_ids());
  if (!result.ok()) {
    ZLOG_DEBUG("maintenance %s of sw%llu rejected: %s",
               undrain ? "restore" : "drain",
               static_cast<unsigned long long>(target_.value()),
               result.error().message.c_str());
    return false;
  }
  ++next_dag_id_;
  pending_dag_ = dag_id;
  paths_ = result.value().new_paths;
  flows_ = result.value().flows;
  ops_ = result.value().new_ops;
  controller_->submit_dag(std::move(result).value().dag);
  return true;
}

bool MaintenanceApp::start_next() {
  const MaintenanceRequest req = queue_.front();
  queue_.pop_front();
  target_ = req.sw;
  window_ = req.window;
  if (!submit_transition(/*undrain=*/false)) {
    ++windows_rejected_;
    return true;  // stay idle; the next try_step picks up the next request
  }
  phase_ = Phase::kDraining;
  return true;
}

bool MaintenanceApp::try_step() {
  // Window timer fired: bring the switch back with the undrain DAG.
  if (phase_ == Phase::kInService && sim()->now() >= window_ends_) {
    if (submit_transition(/*undrain=*/true)) {
      phase_ = Phase::kRestoring;
    } else {
      // An undrain over the already-restored intent cannot disconnect
      // anything; a refusal means the intent is stale — bail out safely.
      ++windows_rejected_;
      phase_ = Phase::kIdle;
    }
    return true;
  }

  if (!events_.empty()) {
    NibEvent event = events_.peek();
    events_.ack_pop();
    const bool our_dag = event.type == NibEvent::Type::kDagDone &&
                         event.dag == pending_dag_;
    if (phase_ == Phase::kDraining && our_dag) {
      // The window gate: this is the one read that must NOT be stale. Drain
      // pending eventual commits, then re-check the fully-published view —
      // only an empty view on the target proves no traffic still transits
      // it (E2: the strong class never observes eventual state).
      Nib& nib = controller_->nib();
      ++gate_barriers_;
      nib.strong_barrier();
      if (!nib.view_installed(target_).empty()) {
        ++gate_aborts_;
        ZLOG_DEBUG("maintenance gate abort: sw%llu still carries %zu rules",
                   static_cast<unsigned long long>(target_.value()),
                   nib.view_installed(target_).size());
        if (submit_transition(/*undrain=*/true)) {
          phase_ = Phase::kRestoring;
        } else {
          ++windows_rejected_;
          phase_ = Phase::kIdle;
        }
      } else {
        phase_ = Phase::kInService;
        window_ends_ = sim()->now() + window_;
        sim()->schedule(window_, [this] { kick(); });
      }
    } else if (phase_ == Phase::kRestoring && our_dag) {
      ++windows_completed_;
      phase_ = Phase::kIdle;
    } else if (phase_ == Phase::kDraining &&
               event.type == NibEvent::Type::kOpStatusChanged) {
      // Planning progress poll while the drain installs: an eventual-class
      // read — in eventual mode this view may trail the committed prefix
      // by up to the staleness bound, which is fine for pacing.
      ++eventual_reads_;
      (void)controller_->nib().view_installed(target_).size();
    }
    return true;
  }

  if (phase_ == Phase::kIdle && !queue_.empty()) return start_next();
  return false;
}

}  // namespace zenith::apps
