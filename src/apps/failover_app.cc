#include "apps/failover_app.h"

namespace zenith::apps {

FailoverApp::FailoverApp(ZenithController* controller)
    : Component(controller->context().sim, "failover_app", micros(100)),
      controller_(controller) {
  requests_.set_wake_callback([this] { kick(); });
}

void FailoverApp::request_failover(bool drain_first) {
  requests_.push(Request{sim()->now(), drain_first});
}

bool FailoverApp::try_step() {
  if (in_flight_ || requests_.empty()) return false;
  Request request = requests_.peek();
  in_flight_ = true;
  controller_->planned_ofc_failover(
      [this, request](SimTime done_at) {
        completions_.emplace_back(request.requested_at, done_at);
        in_flight_ = false;
        kick();  // next queued request, if any
      },
      request.drain_first);
  requests_.ack_pop();
  return true;
}

}  // namespace zenith::apps
