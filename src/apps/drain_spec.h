// The drain application's NADIR specification (§E, Listings 4-8), written
// in the spec IR.
//
// Layout mirrors the paper's PlusCal exactly:
//   * globals: DAGEventQueue (to the core) and DrainRequestQueue (from
//     management software), both NIB-resident FIFOs (Listing 5);
//   * process `drainer` with labeled atomic steps DrainLoop, ComputeDrain,
//     ComputeNewPathsDAG (the ComputeDrainDAG procedure is inlined as its
//     own labels, as PlusCal procedures expand), CleanupPreviousOPs and
//     SubmitDAG (Listing 4/6);
//   * NADIR type annotations for every variable (Listing 8) — enforced by
//     the interpreter after every step (TypeOK);
//   * an AbstractCore process (§4): consumes DAGEventQueue and "installs"
//     the DAG, so the app can be verified without the full core.
//
// The same Spec object serves three consumers: the conformance tests (spec
// vs the hand-written DrainApp), the app-verification explorer (§6.3
// timing), and the NADIR metrics (Table A.1 / Figure A.3).
#pragma once

#include "nadir/spec.h"

namespace zenith::apps {

/// A drain scenario: the model-checked instance.
struct DrainSpecScenario {
  /// Topology as adjacency pairs over nodes 0..n-1.
  std::size_t nodes = 4;
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 3}, {0, 2}, {2, 3}};
  /// Active paths (flows) before the drain.
  std::vector<std::vector<int>> paths{{0, 1, 3}};
  /// Node being drained.
  int node_to_drain = 1;
  /// Listing 4 as published uses FIFOGet, which loses the in-flight request
  /// if the drainer crashes mid-computation (§3.9's "event processing"
  /// error class — crash exploration finds it). The crash-safe variant uses
  /// the AckQueueRead/AckQueuePop discipline instead.
  bool crash_safe_queue = false;
  /// Include the AbstractCore consumer process (verification needs it; the
  /// NADIR runtime omits it — the real ZENITH-core consumes the queue).
  bool include_abstract_core = true;
  /// Start with an empty DrainRequestQueue (the runtime pushes requests
  /// dynamically; verification seeds one from the scenario fields above).
  bool empty_request_queue = false;
};

/// Builds the annotated drain-app spec for a scenario.
nadir::Spec build_drain_spec(const DrainSpecScenario& scenario);

/// DAG-correctness invariant (§4): no OP in any submitted DAG routes
/// through the drained node. Returns an empty string when the invariant
/// holds, else a description of the violation.
std::string check_no_traffic_via_drained(const nadir::Env& env,
                                         int drained_node);

/// App progress property: the drainer eventually submits exactly one DAG
/// per request (checked at quiescence).
bool drain_submitted(const nadir::Env& env);

}  // namespace zenith::apps
