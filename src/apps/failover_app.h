// The OFC planned-failover application (§4, Figure 15): management software
// submits failover requests; the app drives them through ZENITH-core's
// FailoverManager and reports per-request completion times.
#pragma once

#include <vector>

#include "core/component.h"
#include "core/controller.h"

namespace zenith::apps {

class FailoverApp : public Component {
 public:
  explicit FailoverApp(ZenithController* controller);

  /// Requests one planned failover (drain-first unless overridden, which
  /// models the PR behaviour of losing in-flight ACKs).
  void request_failover(bool drain_first = true);

  std::size_t completed() const { return completions_.size(); }
  /// (request time, completion time) pairs.
  const std::vector<std::pair<SimTime, SimTime>>& completions() const {
    return completions_;
  }

 protected:
  bool try_step() override;

 private:
  struct Request {
    SimTime requested_at;
    bool drain_first;
  };

  ZenithController* controller_;
  NadirFifo<Request> requests_;
  bool in_flight_ = false;
  std::vector<std::pair<SimTime, SimTime>> completions_;
};

}  // namespace zenith::apps
