// Maintenance-scheduler application (PR 10; ROADMAP item 4).
//
// The consumer the adaptive-consistency knob was built for: a scheduler
// that takes switches out of service one maintenance window at a time.
// Its read/commit pattern splits exactly along the strong/eventual line:
//
//  * planning reads are EVENTUAL-class — while the drain DAG installs, the
//    app polls the NIB's routing view (which in eventual mode may trail the
//    committed prefix by up to the staleness bound). Bounded staleness is
//    fine here: a stale view only delays the plan a step, it cannot make
//    the window unsafe.
//  * the window gate is STRONG-class — before declaring the switch safe to
//    service, the app issues Nib::strong_barrier() so every pending
//    eventual commit publishes, then re-checks against the now-fully-
//    published view. Opening a window off a stale view is the failure mode
//    E2 exists to rule out.
//
// Each accepted request runs drain -> barrier+gate -> in-service window ->
// undrain, reusing compute_drain_dag (the §E machinery) for both DAGs, so
// every maintenance transition inherits the drain app's hitless and
// connectivity invariants. The NADIR spec (build_maintenance_spec,
// app_specs.h) verifies the same phase machine against an AbstractCore with
// an explicit eventual log; check_maintenance_gate is the spec-level E2.
#pragma once

#include <deque>
#include <optional>

#include "apps/drain_app.h"
#include "core/component.h"
#include "core/controller.h"

namespace zenith::apps {

struct MaintenanceRequest {
  SwitchId sw;
  /// How long the switch stays out of service once the gate opens.
  SimTime window = millis(50);
};

class MaintenanceApp : public Component {
 public:
  MaintenanceApp(ZenithController* controller, const Topology* topo,
                 std::uint32_t first_dag_id = 3000);

  /// Seeds the app's routing intent (the paths/flows/ops the network
  /// currently implements) — same contract as DrainRequest.
  void set_intent(std::vector<Path> paths, std::vector<FlowId> flows,
                  std::vector<Op> ops);

  /// FIFOPut on the maintenance queue; windows run strictly one at a time.
  void request(MaintenanceRequest req);

  std::size_t windows_completed() const { return windows_completed_; }
  std::size_t windows_rejected() const { return windows_rejected_; }
  /// Planning polls of the (possibly stale) routing view.
  std::size_t eventual_reads() const { return eventual_reads_; }
  /// Strong barriers issued at the window gate.
  std::size_t gate_barriers() const { return gate_barriers_; }
  /// Gate re-checks that found residual intent after the barrier (each is
  /// a window the app refused to open — the safety path).
  std::size_t gate_aborts() const { return gate_aborts_; }
  bool idle() const { return phase_ == Phase::kIdle && queue_.empty(); }
  /// The switch currently in (or entering) maintenance, if any.
  std::optional<SwitchId> in_service() const {
    return phase_ == Phase::kInService
               ? std::optional<SwitchId>(target_)
               : std::nullopt;
  }

 protected:
  bool try_step() override;

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kDraining,    // drain DAG submitted, waiting for certification
    kInService,   // gate passed; switch under maintenance until the timer
    kRestoring,   // undrain DAG submitted, waiting for certification
  };

  bool start_next();
  bool submit_transition(bool undrain);

  ZenithController* controller_;
  const Topology* topo_;
  NadirFifo<NibEvent> events_;
  std::deque<MaintenanceRequest> queue_;
  std::uint32_t next_dag_id_;

  Phase phase_ = Phase::kIdle;
  SwitchId target_;
  SimTime window_ = 0;
  SimTime window_ends_ = 0;
  DagId pending_dag_;

  std::vector<Path> paths_;
  std::vector<FlowId> flows_;
  std::vector<Op> ops_;

  std::size_t windows_completed_ = 0;
  std::size_t windows_rejected_ = 0;
  std::size_t eventual_reads_ = 0;
  std::size_t gate_barriers_ = 0;
  std::size_t gate_aborts_ = 0;
};

}  // namespace zenith::apps
