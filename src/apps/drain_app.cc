#include "apps/drain_app.h"

#include <algorithm>

#include "common/logging.h"

namespace zenith::apps {

Result<DrainResult> compute_drain_dag(const DrainRequest& request,
                                      DagId dag_id, OpIdAllocator& ids,
                                      double max_capacity_fraction,
                                      std::size_t switches_drained_so_far) {
  const Topology& topo = request.topology;
  if (!topo.has_switch(request.node_to_drain)) {
    return Error::invalid_argument("drain target does not exist");
  }
  if (request.paths.size() != request.flows.size()) {
    return Error::invalid_argument("paths/flows mismatch");
  }

  std::unordered_set<SwitchId> excluded;
  if (!request.undrain) {
    excluded.insert(request.node_to_drain);
    // App-specific invariant (§4): bounded capacity removal.
    double fraction =
        static_cast<double>(switches_drained_so_far + 1) /
        static_cast<double>(topo.switch_count());
    if (fraction > max_capacity_fraction) {
      return Error::failed_precondition(
          "drain would remove more than the allowed capacity fraction");
    }
  }

  // §E step 1: endpoints that must remain connected (the drained node
  // itself is excused).
  std::vector<std::pair<SwitchId, SwitchId>> endpoint_pairs;
  std::vector<FlowId> surviving_flows;
  for (std::size_t i = 0; i < request.paths.size(); ++i) {
    const Path& path = request.paths[i];
    if (path.size() < 2) continue;
    SwitchId src = path.front();
    SwitchId dst = path.back();
    if (!request.undrain &&
        (src == request.node_to_drain || dst == request.node_to_drain)) {
      continue;
    }
    endpoint_pairs.emplace_back(src, dst);
    surviving_flows.push_back(request.flows[i]);
  }

  // §E step 2: new paths with the drained node removed.
  DrainResult result;
  for (std::size_t i = 0; i < endpoint_pairs.size(); ++i) {
    auto path = shortest_path(topo, endpoint_pairs[i].first,
                              endpoint_pairs[i].second, excluded);
    if (!path.has_value()) {
      // DAG-correctness invariant: a hitless drain must keep every
      // surviving endpoint pair connected.
      return Error::failed_precondition(
          "drain would disconnect endpoints; refusing");
    }
    result.new_paths.push_back(std::move(*path));
    result.flows.push_back(surviving_flows[i]);
  }

  // §E steps 3-4: ComputeDrainDAG — install new paths above the previous
  // priority, then delete all previous OPs at the leaves.
  auto dag = compile_replacement_dag(dag_id, result.new_paths, result.flows,
                                     request.ops, ids);
  if (!dag.ok()) return dag.error();
  for (const Op* op : dag.value().all_ops()) {
    if (op->type != OpType::kInstallRule) continue;
    result.new_ops.push_back(*op);
    // DAG-correctness invariant (§4): no traffic over the drained switch.
    if (!request.undrain && (op->sw == request.node_to_drain ||
                             op->rule.next_hop == request.node_to_drain)) {
      return Error::internal(
          "computed drain DAG still routes via the drained switch");
    }
  }
  result.dag = std::move(dag).value();
  return result;
}

DrainApp::DrainApp(ZenithController* controller, std::uint32_t first_dag_id)
    : Component(controller->context().sim, "drain_app", micros(100)),
      controller_(controller),
      next_dag_id_(first_dag_id) {
  request_queue_.set_wake_callback([this] { kick(); });
}

void DrainApp::submit(DrainRequest request) {
  request_queue_.push(std::move(request));
}

bool DrainApp::try_step() {
  if (request_queue_.empty()) return false;
  // Read-head/ack-pop: the app follows the same crash-safe discipline as
  // the core (its spec is verified under the same rules).
  const DrainRequest& request = request_queue_.peek();

  DagId dag_id(next_dag_id_);
  auto result = compute_drain_dag(request, dag_id, controller_->op_ids(),
                                  /*max_capacity_fraction=*/0.25,
                                  drained_.size());
  if (!result.ok()) {
    ++drains_rejected_;
    ZLOG_DEBUG("drain rejected: %s", result.error().message.c_str());
    request_queue_.ack_pop();
    return true;
  }
  ++next_dag_id_;

  if (request.undrain) {
    drained_.erase(request.node_to_drain);
  } else {
    drained_.insert(request.node_to_drain);
  }
  current_ops_ = result.value().new_ops;
  current_paths_ = result.value().new_paths;
  current_flows_ = result.value().flows;
  ++drains_completed_;
  controller_->submit_dag(std::move(result).value().dag);
  request_queue_.ack_pop();
  return true;
}

}  // namespace zenith::apps
