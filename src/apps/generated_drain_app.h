// The NADIR-generated drain application (§5).
//
// The paper's NADIR emits Python whose behaviour is defined by the verified
// PlusCal. Our equivalent: the *same verified Spec object* (drain_spec)
// bound into the simulator through the NADIR runtime — the interpreter
// executes the labeled steps, the runtime library marshals between spec
// values and controller types:
//   * DrainRequest (C++) -> the STRUCT_SET_DRAIN_REQUEST record pushed onto
//     the spec's DrainRequestQueue;
//   * the spec's produced DAG record -> a real Dag of OPs, with spec-local
//     OP indices mapped to controller-allocated OpIds and deletion records
//     (negative ids) resolved back to the original OpIds;
// and submits the result to ZENITH-core. TypeOK is re-validated on every
// interpreted step, exactly the §5 "generated code preserves the
// specification's guarantees" contract.
#pragma once

#include "apps/drain_app.h"
#include "apps/drain_spec.h"
#include "core/component.h"
#include "core/controller.h"
#include "nadir/interpreter.h"

namespace zenith::apps {

class GeneratedDrainApp : public Component {
 public:
  GeneratedDrainApp(ZenithController* controller,
                    std::uint32_t first_dag_id = 3000);

  /// Marshals the request into the spec environment and wakes the
  /// interpreter loop.
  void submit(const DrainRequest& request);

  std::size_t dags_submitted() const { return dags_submitted_; }
  DagId last_dag() const { return DagId(next_dag_id_ - 1); }

 protected:
  bool try_step() override;
  void on_crash() override;
  void on_restart() override;

 private:
  /// Converts the spec's DAG record into a real Dag: fresh OpIds for
  /// installs, original OpIds for deletions, flow ids recovered from the
  /// request's dst->flow mapping.
  Dag materialize(const nadir::Value& dag_record);

  ZenithController* controller_;
  nadir::Spec spec_;
  nadir::Env env_;
  std::uint32_t next_dag_id_;
  std::size_t dags_submitted_ = 0;
  /// Marshalling state for the request being processed.
  std::unordered_map<int, FlowId> flow_by_dst_;
  std::unordered_map<int, OpId> original_op_ids_;
};

}  // namespace zenith::apps
