#include "apps/generated_drain_app.h"

#include <cassert>

#include "common/logging.h"

namespace zenith::apps {

using nadir::FieldMap;
using nadir::Value;
using nadir::ValueVec;

namespace {

nadir::Spec runtime_spec() {
  DrainSpecScenario scenario;
  scenario.include_abstract_core = false;  // the real core is the consumer
  scenario.empty_request_queue = true;     // requests arrive at runtime
  scenario.crash_safe_queue = true;        // the verified, fixed discipline
  return build_drain_spec(scenario);
}

Value int_seq_from_path(const Path& path) {
  ValueVec items;
  items.reserve(path.size());
  for (SwitchId sw : path) {
    items.push_back(Value::integer(static_cast<int>(sw.value())));
  }
  return Value::seq(std::move(items));
}

}  // namespace

GeneratedDrainApp::GeneratedDrainApp(ZenithController* controller,
                                     std::uint32_t first_dag_id)
    : Component(controller->context().sim, "generated_drain_app",
                micros(150)),
      controller_(controller),
      spec_(runtime_spec()),
      next_dag_id_(first_dag_id) {
  auto env = spec_.make_initial_env();
  assert(env.ok() && "drain spec initial env failed annotations");
  env_ = std::move(env).value();
}

void GeneratedDrainApp::submit(const DrainRequest& request) {
  // Marshal the C++ request into STRUCT_SET_DRAIN_REQUEST (Listing 8).
  ValueVec nodes;
  for (SwitchId sw : request.topology.all_switches()) {
    nodes.push_back(Value::integer(static_cast<int>(sw.value())));
  }
  ValueVec edges;
  for (const Link& link : request.topology.links()) {
    edges.push_back(Value::seq({Value::integer(static_cast<int>(link.a.value())),
                                Value::integer(static_cast<int>(link.b.value()))}));
  }
  ValueVec paths;
  flow_by_dst_.clear();
  for (std::size_t i = 0; i < request.paths.size(); ++i) {
    paths.push_back(int_seq_from_path(request.paths[i]));
    if (!request.paths[i].empty() && i < request.flows.size()) {
      flow_by_dst_[static_cast<int>(request.paths[i].back().value())] =
          request.flows[i];
    }
  }
  ValueVec ops;
  original_op_ids_.clear();
  for (const Op& op : request.ops) {
    int id = static_cast<int>(op.id.value());
    original_op_ids_[id] = op.id;
    ops.push_back(Value::record(FieldMap{
        {"op", Value::integer(id)},
        {"sw", Value::integer(static_cast<int>(op.sw.value()))},
        {"nh", Value::integer(static_cast<int>(op.rule.next_hop.value()))},
        {"dst", Value::integer(static_cast<int>(op.rule.dst.value()))},
        {"priority", Value::integer(op.rule.priority)}}));
  }
  Value record = Value::record(FieldMap{
      {"topology",
       Value::record(FieldMap{{"Nodes", Value::set(std::move(nodes))},
                              {"Edges", Value::set(std::move(edges))}})},
      {"paths", Value::set(std::move(paths))},
      {"node", Value::integer(static_cast<int>(request.node_to_drain.value()))},
      {"ops", Value::set(std::move(ops))}});
  env_.globals["DrainRequestQueue"] =
      env_.globals.at("DrainRequestQueue").append(std::move(record));
  kick();
}

Dag GeneratedDrainApp::materialize(const nadir::Value& dag_record) {
  Dag dag(DagId(next_dag_id_++));
  std::unordered_map<int, OpId> id_map;
  for (const Value& op_value : dag_record.field("v").as_set()) {
    int spec_id = static_cast<int>(op_value.field("op").as_int());
    Op op;
    op.sw = SwitchId(
        static_cast<std::uint32_t>(op_value.field("sw").as_int()));
    if (spec_id < 0) {
      // Deletion record: -spec_id names the original (real) OP id.
      auto it = original_op_ids_.find(-spec_id);
      if (it == original_op_ids_.end()) continue;  // unknown target: skip
      op.id = controller_->op_ids().next();
      op.type = OpType::kDeleteRule;
      op.delete_target = it->second;
    } else {
      op.id = controller_->op_ids().next();
      op.type = OpType::kInstallRule;
      int dst = static_cast<int>(op_value.field("dst").as_int());
      auto flow_it = flow_by_dst_.find(dst);
      FlowId flow = flow_it == flow_by_dst_.end() ? FlowId(0xfffffeu)
                                                  : flow_it->second;
      op.rule = FlowRule{
          flow, op.sw, SwitchId(static_cast<std::uint32_t>(dst)),
          SwitchId(static_cast<std::uint32_t>(op_value.field("nh").as_int())),
          static_cast<int>(op_value.field("priority").as_int())};
    }
    id_map[spec_id] = op.id;
    (void)dag.add_op(op);
  }
  for (const Value& edge : dag_record.field("e").as_set()) {
    auto before = id_map.find(static_cast<int>(edge.at(0).as_int()));
    auto after = id_map.find(static_cast<int>(edge.at(1).as_int()));
    if (before == id_map.end() || after == id_map.end()) continue;
    (void)dag.add_edge(before->second, after->second);
  }
  return dag;
}

bool GeneratedDrainApp::try_step() {
  // One interpreted labeled step per service interval — the generated
  // code's execution granularity matches the spec's atomicity.
  auto outcome = nadir::Interpreter::try_step(spec_, env_, "drainer",
                                              /*check_types=*/true);
  // Ship any DAG the spec produced.
  Value& queue = env_.globals.at("DAGEventQueue");
  while (queue.size() > 0) {
    Value dag_record = queue.head();
    queue = queue.tail();
    Dag dag = materialize(dag_record);
    if (!dag.empty()) {
      ZLOG_DEBUG("generated drain app submitting dag%u (%zu ops)",
                 dag.id().value(), dag.size());
      controller_->submit_dag(std::move(dag));
      ++dags_submitted_;
    }
  }
  return outcome == nadir::StepOutcome::kExecuted;
}

void GeneratedDrainApp::on_crash() {
  // §5 crash semantics: the process restarts from its first label with
  // fresh locals; the NIB-backed globals (queues) survive in env_.
  nadir::Interpreter::crash_process(spec_, env_, "drainer");
}

void GeneratedDrainApp::on_restart() { kick(); }

}  // namespace zenith::apps
