// The hitless drain/undrain application (§4, §E, Listing 4).
//
// A drain request carries the current topology, the active path set, the
// OPs implementing those paths, and the node to drain. The app:
//   1. computes the endpoints that must stay connected (§E step 1);
//   2. recomputes shortest paths with the drained node removed (step 2);
//   3. compiles a DAG that installs the new paths at a strictly higher
//      priority and deletes the old OPs only after all installs — making
//      the drain hitless (steps 3-4, ComputeDrainDAG);
//   4. submits the DAG to ZENITH-core.
//
// App-specific safety invariants (§4): a drain is refused when it would
// disconnect surviving endpoints or remove more than `max_capacity_fraction`
// of the network's switches at once (the paper's "never disable more than
// 25% of capacity" example).
#pragma once

#include <unordered_set>

#include "core/component.h"
#include "core/controller.h"
#include "dag/compiler.h"
#include "topo/paths.h"

namespace zenith::apps {

struct DrainRequest {
  Topology topology;                 // current topology as the app sees it
  std::vector<Path> paths;           // active paths
  std::vector<FlowId> flows;         // flows_of_path
  std::vector<Op> ops;               // OPs implementing `paths`
  SwitchId node_to_drain;
  bool undrain = false;              // undrain: re-admit the node
};

struct DrainResult {
  Dag dag;                           // the full replacement DAG
  std::vector<Path> new_paths;       // per surviving flow
  std::vector<FlowId> flows;
  std::vector<Op> new_ops;           // install OPs of `dag`
};

/// Pure DAG computation, shared by the runtime app and its NADIR spec's
/// conformance tests.
Result<DrainResult> compute_drain_dag(const DrainRequest& request,
                                      DagId dag_id, OpIdAllocator& ids,
                                      double max_capacity_fraction = 0.25,
                                      std::size_t switches_drained_so_far = 0);

class DrainApp : public Component {
 public:
  DrainApp(ZenithController* controller, std::uint32_t first_dag_id = 1000);

  /// FIFOPut on the DrainRequestQueue (Listing 5).
  void submit(DrainRequest request);

  std::size_t drains_completed() const { return drains_completed_; }
  std::size_t drains_rejected() const { return drains_rejected_; }
  const std::unordered_set<SwitchId>& drained() const { return drained_; }
  /// Intent after the latest accepted request.
  const std::vector<Op>& current_ops() const { return current_ops_; }
  const std::vector<Path>& current_paths() const { return current_paths_; }
  const std::vector<FlowId>& current_flows() const { return current_flows_; }

 protected:
  bool try_step() override;

 private:
  ZenithController* controller_;
  NadirFifo<DrainRequest> request_queue_;
  std::uint32_t next_dag_id_;
  std::unordered_set<SwitchId> drained_;
  std::size_t drains_completed_ = 0;
  std::size_t drains_rejected_ = 0;
  std::vector<Op> current_ops_;
  std::vector<Path> current_paths_;
  std::vector<FlowId> current_flows_;
};

}  // namespace zenith::apps
