// The Traffic Engineering application (§4, Figure 14).
//
// The TE app owns a set of demands and their current paths. It reacts to
// two signals:
//  * switch-health events from ZENITH-core (§3.6 guarantees delivery):
//    failed switches trigger repair DAGs that move impacted flows onto
//    surviving paths;
//  * congestion, observed through a periodic telemetry probe (the
//    simulation's TrafficModel stands in for link-utilization telemetry):
//    flows whose allocated rate falls below their demand are rerouted onto
//    the least-loaded alternative.
//
// The Figure 14 scenario exercises the overlap: a failure-triggered repair
// DAG is still installing when congestion triggers a second DAG. ZENITH's
// DAG-transition handling keeps this consistent; PR corrupts state and
// waits for reconciliation.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "core/component.h"
#include "core/controller.h"
#include "dag/compiler.h"
#include "topo/paths.h"
#include "traffic/traffic.h"

namespace zenith::apps {

class TrafficEngineeringApp : public Component {
 public:
  TrafficEngineeringApp(ZenithController* controller, const Topology* topo,
                        const TrafficModel* telemetry,
                        std::uint32_t first_dag_id = 2000);

  /// Sets the demand matrix and returns the initial DAG (submit happens
  /// inside; the returned id lets callers await convergence).
  DagId install_initial_paths(std::vector<Demand> demands);

  /// Starts the periodic congestion probe.
  void start_probe(SimTime period);

  /// One immediate congestion scan (telemetry tick): reroutes congested
  /// flows onto least-loaded alternatives. Returns true when a DAG was
  /// submitted.
  bool trigger_congestion_scan();

  /// Registers a data-plane local-recovery rule (protection switching) as
  /// part of `flow`'s current state: the app now owns its cleanup when the
  /// flow is next rerouted (Figure 14's backup-path activation at t=8).
  void note_local_recovery(FlowId flow, const Op& backup_op, Path new_path);

  const std::vector<Demand>& demands() const { return demands_; }
  std::size_t repair_dags() const { return repair_dags_; }
  std::size_t congestion_dags() const { return congestion_dags_; }
  DagId last_dag() const { return DagId(next_dag_id_ - 1); }

 protected:
  bool try_step() override;

 private:
  void probe();
  /// Recomputes paths for `flows`, avoiding `avoid`, spreading over k
  /// alternatives by current load; submits the replacement DAG.
  bool reroute(const std::vector<FlowId>& flows,
               const std::unordered_set<SwitchId>& avoid, bool congestion);

  ZenithController* controller_;
  const Topology* topo_;
  const TrafficModel* telemetry_;
  NadirFifo<NibEvent> events_;
  std::uint32_t next_dag_id_;
  std::vector<Demand> demands_;
  std::unordered_map<FlowId, Path> paths_;
  std::unordered_map<FlowId, std::vector<Op>> ops_;
  std::unordered_set<SwitchId> known_down_;
  std::unordered_set<LinkId> down_links_;
  std::size_t repair_dags_ = 0;
  std::size_t congestion_dags_ = 0;
  bool probing_ = false;
  SimTime probe_period_ = seconds(1);
};

}  // namespace zenith::apps
