#include "topo/generators.h"

#include <cassert>
#include <string>
#include <vector>

namespace zenith::gen {

Topology linear(std::size_t n) {
  Topology t;
  std::vector<SwitchId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(t.add_switch());
  for (std::size_t i = 0; i + 1 < n; ++i) {
    auto r = t.add_link(ids[i], ids[i + 1]);
    assert(r.ok());
    (void)r;
  }
  return t;
}

Topology ring(std::size_t n) {
  Topology t = linear(n);
  if (n >= 3) {
    auto r = t.add_link(SwitchId(0), SwitchId(static_cast<std::uint32_t>(n - 1)));
    assert(r.ok());
    (void)r;
  }
  return t;
}

Topology figure2_diamond() {
  Topology t;
  SwitchId a = t.add_switch("A");
  SwitchId b = t.add_switch("B");
  SwitchId c = t.add_switch("C");
  SwitchId d = t.add_switch("D");
  (void)t.add_link(a, b);
  (void)t.add_link(b, d);
  (void)t.add_link(a, c);
  (void)t.add_link(c, d);
  return t;
}

Topology b4() {
  // 12 sites; edges follow the B4 site-level connectivity diagram.
  Topology t;
  for (int i = 0; i < 12; ++i) t.add_switch("b4-" + std::to_string(i));
  const std::pair<int, int> edges[] = {
      {0, 1},  {0, 2},  {1, 2},  {1, 3},  {2, 4},  {3, 4},
      {3, 5},  {4, 6},  {5, 6},  {5, 7},  {6, 8},  {7, 8},
      {7, 9},  {8, 10}, {9, 10}, {9, 11}, {10, 11}, {2, 3},
      {6, 7},
  };
  for (auto [x, y] : edges) {
    auto r = t.add_link(SwitchId(static_cast<std::uint32_t>(x)),
                        SwitchId(static_cast<std::uint32_t>(y)));
    assert(r.ok());
    (void)r;
  }
  return t;
}

FatTreeIndex fat_tree_index(std::size_t k) {
  assert(k % 2 == 0);
  FatTreeIndex idx{};
  idx.k = k;
  std::size_t core = (k / 2) * (k / 2);
  std::size_t agg = k * k / 2;
  idx.core_begin = 0;
  idx.core_end = core;
  idx.agg_begin = core;
  idx.agg_end = core + agg;
  idx.edge_begin = core + agg;
  idx.edge_end = core + agg + agg;
  return idx;
}

Topology fat_tree(std::size_t k) {
  assert(k % 2 == 0);
  auto idx = fat_tree_index(k);
  Topology t;
  for (std::size_t i = idx.core_begin; i < idx.core_end; ++i)
    t.add_switch("core" + std::to_string(i));
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t a = 0; a < k / 2; ++a)
      t.add_switch("agg" + std::to_string(p) + "_" + std::to_string(a));
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t e = 0; e < k / 2; ++e)
      t.add_switch("edge" + std::to_string(p) + "_" + std::to_string(e));

  auto agg_id = [&](std::size_t pod, std::size_t i) {
    return SwitchId(
        static_cast<std::uint32_t>(idx.agg_begin + pod * (k / 2) + i));
  };
  auto edge_id = [&](std::size_t pod, std::size_t i) {
    return SwitchId(
        static_cast<std::uint32_t>(idx.edge_begin + pod * (k / 2) + i));
  };
  auto core_id = [&](std::size_t i) {
    return SwitchId(static_cast<std::uint32_t>(idx.core_begin + i));
  };

  for (std::size_t pod = 0; pod < k; ++pod) {
    // edge <-> agg full bipartite inside the pod
    for (std::size_t e = 0; e < k / 2; ++e) {
      for (std::size_t a = 0; a < k / 2; ++a) {
        auto r = t.add_link(edge_id(pod, e), agg_id(pod, a), 40.0);
        assert(r.ok());
        (void)r;
      }
    }
    // agg i connects to core group i
    for (std::size_t a = 0; a < k / 2; ++a) {
      for (std::size_t c = 0; c < k / 2; ++c) {
        auto r = t.add_link(agg_id(pod, a), core_id(a * (k / 2) + c), 40.0);
        assert(r.ok());
        (void)r;
      }
    }
  }
  return t;
}

Topology random_connected(std::size_t n, std::size_t extra_edges,
                          std::uint64_t seed) {
  Rng rng(seed);
  Topology t;
  std::vector<SwitchId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(t.add_switch());
  // Random spanning tree: attach node i to a uniformly random earlier node.
  for (std::size_t i = 1; i < n; ++i) {
    auto j = rng.next_below(i);
    auto r = t.add_link(ids[i], ids[j]);
    assert(r.ok());
    (void)r;
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra_edges && attempts < extra_edges * 20 + 100) {
    ++attempts;
    auto a = rng.next_below(n);
    auto b = rng.next_below(n);
    if (a == b) continue;
    if (t.add_link(ids[a], ids[b]).ok()) ++added;
  }
  return t;
}

Topology kdl_like(std::size_t n, std::uint64_t seed) {
  // KDL (Topology Zoo) is chain-heavy: long access chains hanging off a
  // sparse core. Build a preferential chain: each new node attaches to the
  // previous node with probability 0.7 (chain growth) or to a random earlier
  // node otherwise; then add ~10% shortcut edges.
  Rng rng(seed ^ 0x6b646cull /* "kdl" */);
  Topology t;
  std::vector<SwitchId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(t.add_switch());
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t parent =
        rng.bernoulli(0.7) ? i - 1 : static_cast<std::size_t>(rng.next_below(i));
    auto r = t.add_link(ids[i], ids[parent]);
    assert(r.ok());
    (void)r;
  }
  std::size_t shortcuts = n / 10;
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < shortcuts && attempts < shortcuts * 30 + 100) {
    ++attempts;
    auto a = rng.next_below(n);
    auto b = rng.next_below(n);
    if (a == b) continue;
    if (t.add_link(ids[a], ids[b]).ok()) ++added;
  }
  return t;
}

}  // namespace zenith::gen
