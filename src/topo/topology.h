// Network topology model: switches, ports and links.
//
// Evaluation topologies from the paper: KDL-like WAN graphs (Figure 11/12/13
// scaling experiments), the 12-node B4 WAN (Figure 14), fat-trees (Figure
// 16), plus the small didactic 4-switch example of Figure 2. Generators live
// in generators.h; path computations in paths.h.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace zenith {

struct Link {
  LinkId id;
  SwitchId a;
  SwitchId b;
  double capacity_gbps = 100.0;

  SwitchId other(SwitchId s) const { return s == a ? b : a; }
  bool connects(SwitchId s) const { return s == a || s == b; }
};

class Topology {
 public:
  Topology() = default;

  /// Adds a switch; ids are dense, starting at 0.
  SwitchId add_switch(std::string name = {});

  /// Adds an undirected link; rejects self-loops and duplicates.
  Result<LinkId> add_link(SwitchId a, SwitchId b,
                          double capacity_gbps = 100.0);

  std::size_t switch_count() const { return switch_names_.size(); }
  std::size_t link_count() const { return links_.size(); }

  bool has_switch(SwitchId s) const {
    return s.valid() && s.value() < switch_names_.size();
  }
  bool has_link(SwitchId a, SwitchId b) const;
  Result<LinkId> link_between(SwitchId a, SwitchId b) const;
  const Link& link(LinkId id) const { return links_.at(id.value()); }
  const std::vector<Link>& links() const { return links_; }

  const std::string& switch_name(SwitchId s) const {
    return switch_names_.at(s.value());
  }

  /// Neighbors of `s` over all links.
  const std::vector<SwitchId>& neighbors(SwitchId s) const {
    return adjacency_.at(s.value());
  }

  std::vector<SwitchId> all_switches() const;

  /// Degree distribution, used by tests to validate the KDL-like generator.
  std::vector<std::size_t> degree_histogram() const;

  /// True when the graph restricted to `alive` switches is connected over
  /// the switches in `alive` (used by drain safety checks).
  bool connected_subgraph(const std::unordered_set<SwitchId>& alive) const;

 private:
  std::vector<std::string> switch_names_;
  std::vector<Link> links_;
  std::vector<std::vector<SwitchId>> adjacency_;
  // (a << 32 | b) with a < b -> link index
  std::unordered_map<std::uint64_t, std::uint32_t> link_index_;

  static std::uint64_t key(SwitchId a, SwitchId b);
};

}  // namespace zenith
