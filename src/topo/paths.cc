#include "topo/paths.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace zenith {

std::optional<Path> shortest_path(
    const Topology& topo, SwitchId src, SwitchId dst,
    const std::unordered_set<SwitchId>& excluded) {
  if (!topo.has_switch(src) || !topo.has_switch(dst)) return std::nullopt;
  if (excluded.count(src) || excluded.count(dst)) return std::nullopt;
  if (src == dst) return Path{src};

  std::unordered_map<SwitchId, SwitchId> parent;
  std::deque<SwitchId> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    SwitchId cur = frontier.front();
    frontier.pop_front();
    for (SwitchId next : topo.neighbors(cur)) {
      if (excluded.count(next) || parent.count(next)) continue;
      parent[next] = cur;
      if (next == dst) {
        Path path{dst};
        SwitchId hop = dst;
        while (hop != src) {
          hop = parent[hop];
          path.push_back(hop);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::optional<Path> shortest_path_avoiding_links(
    const Topology& topo, SwitchId src, SwitchId dst,
    const std::unordered_set<SwitchId>& excluded_switches,
    const std::unordered_set<LinkId>& excluded_links) {
  if (!topo.has_switch(src) || !topo.has_switch(dst)) return std::nullopt;
  if (excluded_switches.count(src) || excluded_switches.count(dst)) {
    return std::nullopt;
  }
  if (src == dst) return Path{src};
  std::unordered_map<SwitchId, SwitchId> parent;
  std::deque<SwitchId> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    SwitchId cur = frontier.front();
    frontier.pop_front();
    for (SwitchId next : topo.neighbors(cur)) {
      if (excluded_switches.count(next) || parent.count(next)) continue;
      auto link = topo.link_between(cur, next);
      if (link.ok() && excluded_links.count(link.value())) continue;
      parent[next] = cur;
      if (next == dst) {
        Path path{dst};
        SwitchId hop = dst;
        while (hop != src) {
          hop = parent[hop];
          path.push_back(hop);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::vector<Path> shortest_paths(
    const Topology& topo, const std::vector<std::pair<SwitchId, SwitchId>>& pairs,
    const std::unordered_set<SwitchId>& excluded) {
  std::vector<Path> out;
  out.reserve(pairs.size());
  for (auto [src, dst] : pairs) {
    if (auto p = shortest_path(topo, src, dst, excluded)) {
      out.push_back(std::move(*p));
    }
  }
  return out;
}

std::vector<Path> k_alternative_paths(const Topology& topo, SwitchId src,
                                      SwitchId dst, std::size_t k) {
  std::vector<Path> out;
  std::unordered_set<SwitchId> excluded;
  for (std::size_t i = 0; i < k; ++i) {
    auto p = shortest_path(topo, src, dst, excluded);
    if (!p) break;
    out.push_back(*p);
    // Remove interior nodes so the next path is node-disjoint from this one.
    for (std::size_t j = 1; j + 1 < p->size(); ++j) excluded.insert((*p)[j]);
    if (p->size() <= 2) break;  // direct link: no disjoint alternative via interior removal
  }
  return out;
}

bool valid_path(const Topology& topo, const Path& path) {
  if (path.empty()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!topo.has_link(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace zenith
