// Topology generators for the paper's evaluation scenarios.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "topo/topology.h"

namespace zenith::gen {

/// A chain: sw0 - sw1 - ... - sw(n-1).
Topology linear(std::size_t n);

/// A cycle.
Topology ring(std::size_t n);

/// The 4-switch example of Figure 2: A-B, B-D, A-C, C-D (A reaches D via B
/// primarily, via C as backup).
Topology figure2_diamond();

/// The B4-like 12-node WAN (Figure 14). Connectivity follows the published
/// B4 site graph [Jain et al., SIGCOMM'13] at site granularity.
Topology b4();

/// k-ary fat-tree: (5/4)k^2 switches (k pods). k must be even.
/// Hosts are not modeled; traffic endpoints are edge switches.
Topology fat_tree(std::size_t k);

struct FatTreeIndex {
  std::size_t k;
  /// Switch-id ranges; edge/agg are ordered pod-major.
  std::size_t core_begin, core_end;   // [begin, end)
  std::size_t agg_begin, agg_end;
  std::size_t edge_begin, edge_end;
};
FatTreeIndex fat_tree_index(std::size_t k);

/// KDL-like sparse WAN graph of `n` nodes: the Topology Zoo's KDL graph is a
/// 754-node access/aggregation network dominated by degree-2/3 nodes with a
/// sparse mesh core. We synthesize the same character: a random spanning
/// tree (chain-heavy) plus ~15% extra shortcut edges. Deterministic in seed.
Topology kdl_like(std::size_t n, std::uint64_t seed);

/// Erdos-Renyi G(n, m)-style random connected graph (spanning tree + extra
/// random edges).
Topology random_connected(std::size_t n, std::size_t extra_edges,
                          std::uint64_t seed);

}  // namespace zenith::gen
