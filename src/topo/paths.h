// Path computation over topologies.
//
// Used by the apps: the drain app recomputes shortest paths with the drained
// node removed (Listing 4, §E), the TE app picks least-loaded alternatives,
// and the traffic model resolves realized paths hop by hop.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "topo/topology.h"

namespace zenith {

/// A path as an ordered switch sequence, src first, dst last.
using Path = std::vector<SwitchId>;

/// BFS shortest path from src to dst avoiding `excluded` switches.
/// Neighbor exploration order is deterministic (insertion order), so results
/// are stable. Returns nullopt when disconnected.
std::optional<Path> shortest_path(
    const Topology& topo, SwitchId src, SwitchId dst,
    const std::unordered_set<SwitchId>& excluded = {});

/// Shortest path additionally avoiding the given links (port failures).
std::optional<Path> shortest_path_avoiding_links(
    const Topology& topo, SwitchId src, SwitchId dst,
    const std::unordered_set<SwitchId>& excluded_switches,
    const std::unordered_set<LinkId>& excluded_links);

/// Shortest paths for every (src, dst) pair in `pairs`; entries that become
/// disconnected are omitted.
std::vector<Path> shortest_paths(
    const Topology& topo, const std::vector<std::pair<SwitchId, SwitchId>>& pairs,
    const std::unordered_set<SwitchId>& excluded = {});

/// Up to k edge-disjoint-ish alternatives (successive shortest paths, each
/// iteration removing the previous path's interior nodes). Used as TE
/// candidate sets and local-recovery backup paths (Figure 14).
std::vector<Path> k_alternative_paths(const Topology& topo, SwitchId src,
                                      SwitchId dst, std::size_t k);

/// True if `path` is a valid adjacent-hop path in `topo`.
bool valid_path(const Topology& topo, const Path& path);

}  // namespace zenith
