#include "topo/topology.h"

#include <algorithm>
#include <deque>

namespace zenith {

SwitchId Topology::add_switch(std::string name) {
  auto id = SwitchId(static_cast<std::uint32_t>(switch_names_.size()));
  if (name.empty()) name = "sw" + std::to_string(id.value());
  switch_names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return id;
}

std::uint64_t Topology::key(SwitchId a, SwitchId b) {
  auto lo = std::min(a.value(), b.value());
  auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

Result<LinkId> Topology::add_link(SwitchId a, SwitchId b,
                                  double capacity_gbps) {
  if (!has_switch(a) || !has_switch(b)) {
    return Error::invalid_argument("link endpoint does not exist");
  }
  if (a == b) return Error::invalid_argument("self-loop link");
  if (has_link(a, b)) return Error::already_exists("duplicate link");
  auto id = LinkId(static_cast<std::uint32_t>(links_.size()));
  links_.push_back(Link{id, a, b, capacity_gbps});
  adjacency_[a.value()].push_back(b);
  adjacency_[b.value()].push_back(a);
  link_index_[key(a, b)] = id.value();
  return id;
}

bool Topology::has_link(SwitchId a, SwitchId b) const {
  return link_index_.count(key(a, b)) > 0;
}

Result<LinkId> Topology::link_between(SwitchId a, SwitchId b) const {
  auto it = link_index_.find(key(a, b));
  if (it == link_index_.end()) return Error::not_found("no such link");
  return LinkId(it->second);
}

std::vector<SwitchId> Topology::all_switches() const {
  std::vector<SwitchId> out;
  out.reserve(switch_count());
  for (std::uint32_t i = 0; i < switch_count(); ++i) out.push_back(SwitchId(i));
  return out;
}

std::vector<std::size_t> Topology::degree_histogram() const {
  std::size_t max_degree = 0;
  for (const auto& adj : adjacency_) max_degree = std::max(max_degree, adj.size());
  std::vector<std::size_t> hist(max_degree + 1, 0);
  for (const auto& adj : adjacency_) ++hist[adj.size()];
  return hist;
}

bool Topology::connected_subgraph(
    const std::unordered_set<SwitchId>& alive) const {
  if (alive.empty()) return true;
  std::unordered_set<SwitchId> seen;
  std::deque<SwitchId> frontier{*alive.begin()};
  seen.insert(*alive.begin());
  while (!frontier.empty()) {
    SwitchId cur = frontier.front();
    frontier.pop_front();
    for (SwitchId next : neighbors(cur)) {
      if (alive.count(next) && !seen.count(next)) {
        seen.insert(next);
        frontier.push_back(next);
      }
    }
  }
  return seen.size() == alive.size();
}

}  // namespace zenith
