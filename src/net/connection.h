// One framed stream connection on the event loop.
//
// Sender side: frames append to a ByteRing; each flush writes the longest
// contiguous span and resumes from exactly where a short write stopped
// (EPOLLOUT interest is armed only while bytes are pending, so an idle
// connection costs no wakeups). Receiver side: raw reads feed a
// FrameAssembler which re-slices the stream into whole frames regardless of
// how the kernel split them.
//
// Backpressure is watermark-based, like SRT's sndbuf flow control: crossing
// `high_watermark` pending bytes latches the connection "stalled" and
// writable() goes false — the SocketTransport propagates that to the
// Sequencer/Worker pipeline, which simply stops producing (state lives in
// the NIB, so stalling is free). When a flush drains below `low_watermark`
// the drain callback fires once and the pipeline is kicked awake.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/event_loop.h"
#include "net/ring_buffer.h"

namespace zenith::net {

struct ConnectionStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t short_writes = 0;   // flushes that could not drain the ring
  std::uint64_t stall_events = 0;   // high-watermark crossings
};

class Connection {
 public:
  struct Callbacks {
    /// Complete decoded frames, in stream order.
    std::function<void(std::vector<WireMessage>&)> on_messages;
    /// Fired once per stall when pending bytes drop below the low watermark.
    std::function<void()> on_drained;
    /// Peer closed or the stream broke (decode error, I/O error).
    std::function<void(const std::string& reason)> on_closed;
  };

  /// Takes ownership of `fd` (nonblocking, already connected/accepted) and
  /// registers it on `loop`.
  Connection(EventLoop* loop, int fd, Callbacks callbacks);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Appends one already-encoded frame and opportunistically flushes.
  void send_frame(const std::vector<std::uint8_t>& frame);

  /// False while stalled above the high watermark.
  bool writable() const { return open_ && !stalled_; }
  bool open() const { return open_; }
  int fd() const { return fd_; }
  std::size_t pending_send_bytes() const { return send_ring_.size(); }
  const ConnectionStats& stats() const { return stats_; }

  /// Blocks (poll) until the send ring drains or `timeout_ms` passes — the
  /// clean-shutdown path so a final Bye frame reaches the peer. Returns
  /// true when fully drained.
  bool flush_blocking(int timeout_ms);

  void set_watermarks(std::size_t high, std::size_t low) {
    high_watermark_ = high;
    low_watermark_ = low;
  }

 private:
  void handle_events(std::uint32_t events);
  void flush();  // write as much of the ring as the socket accepts
  void read_ready();
  void update_interest();
  void close(const std::string& reason);

  EventLoop* loop_;
  int fd_;
  Callbacks callbacks_;
  ByteRing send_ring_;
  FrameAssembler assembler_;
  ConnectionStats stats_;
  std::size_t high_watermark_ = 256 * 1024;
  std::size_t low_watermark_ = 64 * 1024;
  bool stalled_ = false;
  bool want_write_ = false;  // current EPOLLOUT interest
  bool open_ = true;
  bool in_close_ = false;
};

}  // namespace zenith::net
