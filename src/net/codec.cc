#include "net/codec.h"

#include "net/wire.h"

namespace zenith::net {

namespace {

constexpr std::size_t kRuleSize = 20;
constexpr std::size_t kOpSize = 13 + kRuleSize;       // 33
constexpr std::size_t kDumpEntrySize = 4 + kRuleSize;  // 24

void encode_rule(std::vector<std::uint8_t>& out, const FlowRule& rule) {
  // The rule block is five dense 32-bit words — exactly the shape the
  // SRT-style bulk converter exists for.
  std::uint32_t words[5] = {rule.flow.value(), rule.sw.value(),
                            rule.dst.value(), rule.next_hop.value(),
                            static_cast<std::uint32_t>(rule.priority)};
  HtoNLA(words, words, 5);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(words);
  out.insert(out.end(), bytes, bytes + sizeof(words));
}

FlowRule decode_rule(Reader& r) {
  std::uint32_t words[5] = {};
  r.words(words, 5);
  FlowRule rule;
  rule.flow = FlowId(words[0]);
  rule.sw = SwitchId(words[1]);
  rule.dst = SwitchId(words[2]);
  rule.next_hop = SwitchId(words[3]);
  rule.priority = static_cast<std::int32_t>(words[4]);
  return rule;
}

void encode_op(std::vector<std::uint8_t>& out, const Op& op) {
  put_u32(out, op.id.value());
  put_u8(out, static_cast<std::uint8_t>(op.type));
  put_u32(out, op.sw.value());
  put_u32(out, op.delete_target.value());
  encode_rule(out, op.rule);
}

Result<Op> decode_op(Reader& r) {
  Op op;
  op.id = OpId(r.u32());
  std::uint8_t type = r.u8();
  op.sw = SwitchId(r.u32());
  op.delete_target = OpId(r.u32());
  op.rule = decode_rule(r);
  if (!r.ok()) return Error::invalid_argument("truncated op");
  if (type > static_cast<std::uint8_t>(OpType::kDumpTable)) {
    return Error::invalid_argument("bad op type " + std::to_string(type));
  }
  op.type = static_cast<OpType>(type);
  return op;
}

Result<std::vector<Op>> decode_op_array(Reader& r) {
  std::uint32_t count = r.u32();
  if (!r.fits(count, kOpSize)) {
    return Error::invalid_argument("op count " + std::to_string(count) +
                                   " exceeds payload");
  }
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Result<Op> op = decode_op(r);
    if (!op.ok()) return op.error();
    ops.push_back(std::move(op).value());
  }
  return ops;
}

/// Reserves header space in `out` and returns the offset where the payload
/// begins; finish_frame backpatches the length.
std::size_t begin_frame(std::vector<std::uint8_t>& out, FrameType type,
                        std::uint32_t sw) {
  put_u32(out, kWireMagic);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // flags
  put_u32(out, 0);  // length, backpatched
  put_u32(out, sw);
  return out.size();
}

void finish_frame(std::vector<std::uint8_t>& out, std::size_t payload_begin) {
  std::uint32_t length =
      static_cast<std::uint32_t>(out.size() - payload_begin);
  std::size_t at = payload_begin - 8;  // length field offset in the header
  out[at] = static_cast<std::uint8_t>(length >> 24);
  out[at + 1] = static_cast<std::uint8_t>(length >> 16);
  out[at + 2] = static_cast<std::uint8_t>(length >> 8);
  out[at + 3] = static_cast<std::uint8_t>(length);
}

}  // namespace

void encode_request_frame(std::vector<std::uint8_t>& out, SwitchId sw,
                          const SwitchRequest& request) {
  std::size_t begin = begin_frame(out, FrameType::kSwitchRequest, sw.value());
  put_u8(out, static_cast<std::uint8_t>(request.type));
  put_i32(out, request.role);
  put_u64(out, request.xid);
  encode_op(out, request.op);
  put_u32(out, static_cast<std::uint32_t>(request.batch.size()));
  for (const Op& op : request.batch) encode_op(out, op);
  finish_frame(out, begin);
}

void encode_reply_frame(std::vector<std::uint8_t>& out,
                        const SwitchReply& reply) {
  std::size_t begin = begin_frame(out, FrameType::kSwitchReply,
                                  reply.sw.value());
  put_u8(out, static_cast<std::uint8_t>(reply.type));
  put_i32(out, reply.role);
  put_u64(out, reply.xid);
  put_u32(out, reply.sw.value());
  encode_op(out, reply.op);
  put_u32(out, static_cast<std::uint32_t>(reply.batch.size()));
  for (const Op& op : reply.batch) encode_op(out, op);
  put_u32(out, static_cast<std::uint32_t>(reply.table.size()));
  for (const DumpedEntry& entry : reply.table) {
    put_u32(out, entry.installed_by.value());
    encode_rule(out, entry.rule);
  }
  finish_frame(out, begin);
}

void encode_health_frame(std::vector<std::uint8_t>& out,
                         const SwitchHealthEvent& event) {
  std::size_t begin = begin_frame(out, FrameType::kHealthEvent,
                                  event.sw.value());
  put_u8(out, static_cast<std::uint8_t>(event.type));
  put_u8(out, event.state_lost ? 1 : 0);
  finish_frame(out, begin);
}

void encode_link_frame(std::vector<std::uint8_t>& out,
                       const LinkHealthEvent& event) {
  std::size_t begin = begin_frame(out, FrameType::kLinkEvent, 0xFFFFFFFFu);
  put_u32(out, event.link.value());
  put_u8(out, event.up ? 1 : 0);
  finish_frame(out, begin);
}

void encode_hello_frame(std::vector<std::uint8_t>& out, const Hello& hello) {
  std::size_t begin = begin_frame(out, FrameType::kHello, 0xFFFFFFFFu);
  put_u8(out, static_cast<std::uint8_t>(hello.role));
  put_u16(out, hello.proto);
  put_u32(out, hello.switch_count);
  put_u64(out, hello.seed);
  finish_frame(out, begin);
}

void encode_bye_frame(std::vector<std::uint8_t>& out) {
  std::size_t begin = begin_frame(out, FrameType::kBye, 0xFFFFFFFFu);
  finish_frame(out, begin);
}

Result<FrameHeader> decode_frame_header(const std::uint8_t* data,
                                        std::size_t size) {
  if (size < kFrameHeaderSize) {
    return Error::invalid_argument("short frame header");
  }
  FrameHeader header;
  header.magic = get_u32(data);
  if (header.magic != kWireMagic) {
    return Error::invalid_argument("bad magic");
  }
  header.version = data[4];
  if (header.version != kWireVersion) {
    return Error::invalid_argument("unsupported wire version " +
                                   std::to_string(header.version));
  }
  std::uint8_t type = data[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kBye)) {
    return Error::invalid_argument("bad frame type " + std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  header.flags = get_u16(data + 6);
  header.length = get_u32(data + 8);
  if (header.length > kMaxPayload) {
    return Error::invalid_argument("oversized frame: " +
                                   std::to_string(header.length));
  }
  header.sw = get_u32(data + 12);
  return header;
}

Result<WireMessage> decode_frame(const FrameHeader& header,
                                 const std::uint8_t* payload,
                                 std::size_t size) {
  if (size != header.length) {
    return Error::invalid_argument("payload size mismatch");
  }
  WireMessage msg;
  msg.type = header.type;
  msg.sw = SwitchId(header.sw);
  Reader r(payload, size);
  switch (header.type) {
    case FrameType::kHello: {
      std::uint8_t role = r.u8();
      msg.hello.proto = r.u16();
      msg.hello.switch_count = r.u32();
      msg.hello.seed = r.u64();
      if (!r.ok() || role > 1) {
        return Error::invalid_argument("malformed hello");
      }
      msg.hello.role = static_cast<Hello::Role>(role);
      break;
    }
    case FrameType::kSwitchRequest: {
      std::uint8_t type = r.u8();
      if (type > static_cast<std::uint8_t>(SwitchRequest::Type::kBatch)) {
        return Error::invalid_argument("bad request type");
      }
      msg.request.type = static_cast<SwitchRequest::Type>(type);
      msg.request.role = r.i32();
      msg.request.xid = r.u64();
      Result<Op> op = decode_op(r);
      if (!op.ok()) return op.error();
      msg.request.op = std::move(op).value();
      Result<std::vector<Op>> batch = decode_op_array(r);
      if (!batch.ok()) return batch.error();
      msg.request.batch = std::move(batch).value();
      break;
    }
    case FrameType::kSwitchReply: {
      std::uint8_t type = r.u8();
      if (type > static_cast<std::uint8_t>(SwitchReply::Type::kBatchAck)) {
        return Error::invalid_argument("bad reply type");
      }
      msg.reply.type = static_cast<SwitchReply::Type>(type);
      msg.reply.role = r.i32();
      msg.reply.xid = r.u64();
      msg.reply.sw = SwitchId(r.u32());
      Result<Op> op = decode_op(r);
      if (!op.ok()) return op.error();
      msg.reply.op = std::move(op).value();
      Result<std::vector<Op>> batch = decode_op_array(r);
      if (!batch.ok()) return batch.error();
      msg.reply.batch = std::move(batch).value();
      std::uint32_t entries = r.u32();
      if (!r.fits(entries, kDumpEntrySize)) {
        return Error::invalid_argument("dump count exceeds payload");
      }
      msg.reply.table.reserve(entries);
      for (std::uint32_t i = 0; i < entries; ++i) {
        DumpedEntry entry;
        entry.installed_by = OpId(r.u32());
        entry.rule = decode_rule(r);
        msg.reply.table.push_back(entry);
      }
      if (!r.ok()) return Error::invalid_argument("truncated dump table");
      break;
    }
    case FrameType::kHealthEvent: {
      std::uint8_t type = r.u8();
      std::uint8_t lost = r.u8();
      if (!r.ok() || type > 1 || lost > 1) {
        return Error::invalid_argument("malformed health event");
      }
      msg.health.type = static_cast<SwitchHealthEvent::Type>(type);
      msg.health.sw = msg.sw;
      msg.health.state_lost = lost != 0;
      break;
    }
    case FrameType::kLinkEvent: {
      msg.link.link = LinkId(r.u32());
      std::uint8_t up = r.u8();
      if (!r.ok() || up > 1) {
        return Error::invalid_argument("malformed link event");
      }
      msg.link.up = up != 0;
      break;
    }
    case FrameType::kBye:
      break;
  }
  if (!r.ok()) return Error::invalid_argument("truncated payload");
  if (r.remaining() != 0) {
    return Error::invalid_argument("trailing bytes in payload");
  }
  return msg;
}

Status FrameAssembler::feed(const std::uint8_t* data, std::size_t size,
                            std::vector<WireMessage>* out) {
  if (poisoned_) {
    return Error::failed_precondition("assembler poisoned by earlier error");
  }
  buffer_.insert(buffer_.end(), data, data + size);
  while (buffer_.size() - consumed_ >= kFrameHeaderSize) {
    const std::uint8_t* at = buffer_.data() + consumed_;
    Result<FrameHeader> header =
        decode_frame_header(at, buffer_.size() - consumed_);
    if (!header.ok()) {
      poisoned_ = true;
      return header.error();
    }
    std::size_t total = kFrameHeaderSize + header.value().length;
    if (buffer_.size() - consumed_ < total) break;  // wait for the rest
    Result<WireMessage> msg = decode_frame(
        header.value(), at + kFrameHeaderSize, header.value().length);
    if (!msg.ok()) {
      poisoned_ = true;
      return msg.error();
    }
    out->push_back(std::move(msg).value());
    consumed_ += total;
  }
  // Compact once the parsed prefix dominates the buffer; amortized O(1).
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Status::success();
}

}  // namespace zenith::net
