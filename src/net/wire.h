// Endian-safe byte-level primitives for the binary wire protocol.
//
// Every multi-byte field on the wire is network (big) endian. Scalar
// accessors compose values byte-wise with shifts, which is portable on any
// host endianness without ifdefs; the SRT-style array helpers (HtoNLA /
// NtoHLA, see docs/dev/utilities.md in Haivision/srt) convert dense
// 32-bit-word regions in bulk — the codec uses them for the u32-packed
// FlowRule block, and anything batching raw word arrays (fingerprint
// exchange, future loss lists) should too.
//
// Naming follows SRT: H = hardware endian, N = network endian, L = "long"
// (32-bit), A = array; argument order follows memcpy (dst, src, n).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace zenith::net {

// ---- scalar append (network order) ------------------------------------------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

/// Signed values travel as their two's-complement bit pattern.
inline void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

// ---- scalar read (network order) --------------------------------------------

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) |
                                    std::uint16_t{p[1]});
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  return (std::uint64_t{get_u32(p)} << 32) | std::uint64_t{get_u32(p + 4)};
}

inline std::int32_t get_i32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

// ---- SRT-style 32-bit array conversion --------------------------------------

inline std::uint32_t host_to_net_u32(std::uint32_t v) {
  std::uint8_t b[4];
  b[0] = static_cast<std::uint8_t>(v >> 24);
  b[1] = static_cast<std::uint8_t>(v >> 16);
  b[2] = static_cast<std::uint8_t>(v >> 8);
  b[3] = static_cast<std::uint8_t>(v);
  std::uint32_t out;
  __builtin_memcpy(&out, b, 4);
  return out;
}

inline std::uint32_t net_to_host_u32(std::uint32_t v) {
  std::uint8_t b[4];
  __builtin_memcpy(b, &v, 4);
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

/// Hardware-endian -> network-endian, `n` 32-bit words. dst may alias src.
inline void HtoNLA(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = host_to_net_u32(src[i]);
}

/// Network-endian -> hardware-endian, `n` 32-bit words. dst may alias src.
inline void NtoHLA(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = net_to_host_u32(src[i]);
}

/// Bounded cursor over a received payload: every read checks the remaining
/// length and latches a failure flag instead of running past the end, so
/// decoders can read optimistically and check ok() once per structure. A
/// failed reader returns zeros, never touches out-of-range memory.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), remaining_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return remaining_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return *(p_ - 1);
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return get_u16(p_ - 2);
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    return get_u32(p_ - 4);
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    return get_u64(p_ - 8);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  /// Reads `n` network-order 32-bit words into dst via NtoHLA.
  bool words(std::uint32_t* dst, std::size_t n) {
    if (!take(4 * n)) return false;
    std::uint32_t tmp;
    for (std::size_t i = 0; i < n; ++i) {
      __builtin_memcpy(&tmp, p_ - 4 * n + 4 * i, 4);
      NtoHLA(&dst[i], &tmp, 1);
    }
    return true;
  }

  /// True when a length-prefixed array of `count` elements of `elem_size`
  /// bytes can still fit in the remaining payload — the oversized-count
  /// guard that keeps a corrupt frame from driving a giant allocation.
  bool fits(std::uint64_t count, std::size_t elem_size) const {
    return ok_ && count <= remaining_ / elem_size;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining_ < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    remaining_ -= n;
    return true;
  }

  const std::uint8_t* p_;
  std::size_t remaining_;
  bool ok_ = true;
};

}  // namespace zenith::net
