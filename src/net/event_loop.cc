#include "net/event_loop.h"

#include <errno.h>
#include <cstring>
#include <sys/epoll.h>
#include <unistd.h>

namespace zenith::net {

namespace {
Error sys_error(const char* what) {
  return Error::unavailable(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() { epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC); }

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::add(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  int op = entries_.count(fd) != 0 ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) < 0) {
    return sys_error("epoll_ctl(add)");
  }
  entries_[fd] = Entry{std::move(cb), false};
  return Status::success();
}

Status EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return sys_error("epoll_ctl(mod)");
  }
  return Status::success();
}

void EventLoop::remove(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (dispatching_) {
    it->second.dead = true;  // a ready-list entry may still reference it
    reap_.push_back(fd);
  } else {
    entries_.erase(it);
  }
}

Result<int> EventLoop::poll(int timeout_ms) {
  epoll_event ready[64];
  int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    return sys_error("epoll_wait");
  }
  dispatching_ = true;
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    auto it = entries_.find(ready[i].data.fd);
    if (it == entries_.end() || it->second.dead) continue;
    // Copy: the callback may remove this fd (or rehash the map via add).
    FdCallback cb = it->second.cb;
    cb(ready[i].events);
    ++dispatched;
  }
  dispatching_ = false;
  for (int fd : reap_) entries_.erase(fd);
  reap_.clear();
  return dispatched;
}

}  // namespace zenith::net
