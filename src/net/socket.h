// Thin POSIX socket helpers shared by the event loop, the transports and the
// daemons: nonblocking TCP-loopback / Unix-domain listeners and connectors.
// Everything returns Result so callers surface errno context instead of
// asserting; nothing here blocks except `connect_with_retry`, which is the
// daemon-startup rendezvous (switchd may launch before controllerd binds).
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace zenith::net {

/// Endpoint spec, parsed from the daemons' --listen/--connect flags:
///   "tcp:PORT"       loopback TCP on 127.0.0.1:PORT
///   "uds:/path.sock" Unix domain stream socket
struct Endpoint {
  enum class Kind { kTcp, kUds };
  Kind kind = Kind::kTcp;
  std::uint16_t port = 0;  // tcp
  std::string path;        // uds
};

Result<Endpoint> parse_endpoint(const std::string& spec);

/// Sets O_NONBLOCK (and FD_CLOEXEC) on an fd.
Status set_nonblocking(int fd);

/// Binds + listens, nonblocking. For TCP, port 0 picks an ephemeral port;
/// `bound_port` (if non-null) receives the actual one. For UDS, any stale
/// socket file at the path is unlinked first.
Result<int> listen_on(const Endpoint& ep, std::uint16_t* bound_port = nullptr);

/// One nonblocking connect attempt. May return an fd whose connect is still
/// in progress (EINPROGRESS); poll for writability before use.
Result<int> connect_to(const Endpoint& ep);

/// Blocking rendezvous: retries connect_to until it succeeds and the
/// connection completes, or `timeout_ms` elapses.
Result<int> connect_with_retry(const Endpoint& ep, int timeout_ms);

/// accept(2) with nonblocking + cloexec applied to the result.
/// Returns -1 (not an error) when no connection is pending.
Result<int> accept_on(int listen_fd);

void close_fd(int fd);

}  // namespace zenith::net
