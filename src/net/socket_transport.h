// The real-wire backend of the Transport seam (controller side).
//
// Requests encode through the binary codec and leave over one framed
// TCP-loopback or Unix-domain connection to zenith_switchd; inbound frames
// (replies, switch health, link health) decode into the same NadirFifos the
// Monitoring Server consumes on the sim bus, so the whole controller
// pipeline above this class is backend-oblivious. Wake callbacks attached to
// those fifos fire from the epoll dispatch, scheduling controller service
// steps in the host simulator exactly as Fabric deliveries do.
//
// Lifecycle: the daemon performs the Hello handshake (handshake()) before
// constructing the controller, because switch_count() feeds NIB
// registration. writable() reflects the connection's sender-ring watermark;
// the resume callback re-kicks the Worker Pool / Sequencer after a stall
// drains.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/connection.h"
#include "net/socket.h"
#include "net/transport.h"

namespace zenith::net {

class SocketTransport final : public Transport {
 public:
  /// Wraps an established fd (ownership transfers). `loop` must outlive
  /// this object.
  SocketTransport(EventLoop* loop, int fd);

  /// Sends our Hello and polls the loop until the peer's Hello arrives (or
  /// `timeout_ms` passes). On success switch_count()/peer_seed() are valid.
  Status handshake(std::uint64_t seed, int timeout_ms);

  // Transport interface --------------------------------------------------
  void send(SwitchId sw, SwitchRequest request) override;
  NadirFifo<SwitchReply>& replies() override { return replies_; }
  NadirFifo<SwitchHealthEvent>& health_events() override { return health_; }
  NadirFifo<LinkHealthEvent>& link_events() override { return link_; }
  std::size_t switch_count() const override { return switch_count_; }
  bool switch_alive(SwitchId sw) const override;
  void drop_all_in_flight_replies() override { replies_.clear(); }
  bool writable() const override {
    return connection_ != nullptr && connection_->writable();
  }
  void set_resume_callback(std::function<void()> resume) override {
    resume_ = std::move(resume);
  }

  // Wire-side accessors ---------------------------------------------------
  bool peer_connected() const {
    return connection_ != nullptr && connection_->open();
  }
  /// True once the peer sent Bye (its workload finished cleanly).
  bool peer_said_bye() const { return peer_bye_; }
  std::uint64_t peer_seed() const { return peer_seed_; }
  const ConnectionStats& stats() const { return connection_->stats(); }
  /// Sends Bye and drains the sender ring (clean shutdown).
  void send_bye_and_flush(int timeout_ms);
  const std::string& close_reason() const { return close_reason_; }

 private:
  void on_messages(std::vector<WireMessage>& messages);

  EventLoop* loop_;
  std::unique_ptr<Connection> connection_;
  NadirFifo<SwitchReply> replies_;
  NadirFifo<SwitchHealthEvent> health_;
  NadirFifo<LinkHealthEvent> link_;
  std::function<void()> resume_;
  std::size_t switch_count_ = 0;
  std::uint64_t peer_seed_ = 0;
  bool got_hello_ = false;
  bool peer_bye_ = false;
  std::string close_reason_;
  /// Liveness mirror, rebuilt from the health stream (index = switch id).
  std::vector<bool> alive_;
  std::vector<std::uint8_t> scratch_;  // reused frame-encode buffer
};

}  // namespace zenith::net
