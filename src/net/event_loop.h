// A minimal single-threaded epoll reactor.
//
// The daemons interleave this loop with their deterministic simulator pumps:
// poll(timeout) dispatches ready fd callbacks, then the caller advances the
// sim a slice and comes back. Edge cases the loop owns: interest-mask
// updates (connections toggle EPOLLOUT as their send rings fill/drain) and
// safe removal from inside a callback (deferred until dispatch finishes).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace zenith::net {

class EventLoop {
 public:
  /// Callback receives the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdCallback = std::function<void(std::uint32_t)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const { return epoll_fd_ >= 0; }

  /// Registers `fd` for `events` (level-triggered). Replaces any previous
  /// registration for the same fd.
  Status add(int fd, std::uint32_t events, FdCallback cb);

  /// Updates the interest mask of an already-registered fd.
  Status modify(int fd, std::uint32_t events);

  /// Deregisters `fd`. Safe from inside its own (or another fd's) callback;
  /// the slot is tombstoned and reaped after dispatch.
  void remove(int fd);

  /// Waits up to `timeout_ms` (0 = nonblocking probe) and dispatches ready
  /// callbacks. Returns the number of fds dispatched.
  Result<int> poll(int timeout_ms);

 private:
  struct Entry {
    FdCallback cb;
    bool dead = false;
  };

  int epoll_fd_ = -1;
  std::unordered_map<int, Entry> entries_;
  bool dispatching_ = false;
  std::vector<int> reap_;
};

}  // namespace zenith::net
