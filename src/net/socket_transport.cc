#include "net/socket_transport.h"

#include <chrono>

namespace zenith::net {

SocketTransport::SocketTransport(EventLoop* loop, int fd) : loop_(loop) {
  Connection::Callbacks callbacks;
  callbacks.on_messages = [this](std::vector<WireMessage>& messages) {
    on_messages(messages);
  };
  callbacks.on_drained = [this] {
    if (resume_) resume_();
  };
  callbacks.on_closed = [this](const std::string& reason) {
    close_reason_ = reason;
  };
  connection_ = std::make_unique<Connection>(loop_, fd, std::move(callbacks));
}

Status SocketTransport::handshake(std::uint64_t seed, int timeout_ms) {
  Hello hello;
  hello.role = Hello::Role::kController;
  hello.seed = seed;
  scratch_.clear();
  encode_hello_frame(scratch_, hello);
  connection_->send_frame(scratch_);

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!got_hello_) {
    if (!connection_->open()) {
      return Error::unavailable("peer closed during handshake: " +
                                close_reason_);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Error::unavailable("handshake timed out");
    }
    auto polled = loop_->poll(20);
    if (!polled.ok()) return polled.error();
  }
  if (switch_count_ == 0) {
    return Error::failed_precondition("peer reports zero switches");
  }
  alive_.assign(switch_count_, true);
  return Status::success();
}

void SocketTransport::send(SwitchId sw, SwitchRequest request) {
  scratch_.clear();
  encode_request_frame(scratch_, sw, request);
  connection_->send_frame(scratch_);
}

bool SocketTransport::switch_alive(SwitchId sw) const {
  if (sw.value() >= alive_.size()) return false;
  return alive_[sw.value()];
}

void SocketTransport::send_bye_and_flush(int timeout_ms) {
  if (connection_ == nullptr || !connection_->open()) return;
  scratch_.clear();
  encode_bye_frame(scratch_);
  connection_->send_frame(scratch_);
  connection_->flush_blocking(timeout_ms);
}

void SocketTransport::on_messages(std::vector<WireMessage>& messages) {
  for (WireMessage& m : messages) {
    switch (m.type) {
      case FrameType::kHello:
        got_hello_ = true;
        switch_count_ = m.hello.switch_count;
        peer_seed_ = m.hello.seed;
        break;
      case FrameType::kSwitchReply:
        replies_.push(std::move(m.reply));
        break;
      case FrameType::kHealthEvent: {
        if (m.health.sw.value() < alive_.size()) {
          alive_[m.health.sw.value()] =
              m.health.type == SwitchHealthEvent::Type::kRecovery;
        }
        health_.push(std::move(m.health));
        break;
      }
      case FrameType::kLinkEvent:
        link_.push(std::move(m.link));
        break;
      case FrameType::kBye:
        peer_bye_ = true;
        break;
      case FrameType::kSwitchRequest:
        // Requests flow controller->switchd only; a request arriving here
        // means the peer is confused. Ignore rather than tear down.
        break;
    }
  }
}

}  // namespace zenith::net
