// Per-connection byte ring for the socket transport's sender and receiver
// sides (the SRT sndbuf/rcvbuf shape, reduced to what a reliable stream
// needs: contiguous-span access for syscalls, O(1) head/tail movement).
//
// The ring grows (power-of-two doubling, linearizing on reallocation) rather
// than rejecting writes: frame loss is never acceptable on this channel, so
// the flow-control decision lives one level up — Connection compares size()
// against its watermarks and stalls the *producers* (Transport::writable)
// while the ring drains. Steady state is therefore bounded by the high
// watermark plus one frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace zenith::net {

class ByteRing {
 public:
  explicit ByteRing(std::size_t initial_capacity = 64 * 1024) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    storage_.resize(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return storage_.size(); }

  /// Appends `n` bytes, growing if needed.
  void push(const std::uint8_t* data, std::size_t n) {
    reserve(size_ + n);
    std::size_t tail = (head_ + size_) & mask();
    std::size_t first = std::min(n, storage_.size() - tail);
    std::memcpy(storage_.data() + tail, data, first);
    if (n > first) std::memcpy(storage_.data(), data + first, n - first);
    size_ += n;
  }

  /// Longest contiguous readable span at the head (for write(2)); a second
  /// call after pop() reaches the wrapped remainder.
  const std::uint8_t* read_ptr() const { return storage_.data() + head_; }
  std::size_t read_span() const {
    return std::min(size_, storage_.size() - head_);
  }

  /// Drops `n` bytes from the head (n <= size()).
  void pop(std::size_t n) {
    head_ = (head_ + n) & mask();
    size_ -= n;
    if (size_ == 0) head_ = 0;
  }

  /// Copies the whole content out in order (tests / drain-on-close).
  std::vector<std::uint8_t> snapshot() const {
    std::vector<std::uint8_t> out;
    out.reserve(size_);
    std::size_t first = read_span();
    out.insert(out.end(), read_ptr(), read_ptr() + first);
    out.insert(out.end(), storage_.data(), storage_.data() + (size_ - first));
    return out;
  }

 private:
  std::size_t mask() const { return storage_.size() - 1; }

  void reserve(std::size_t needed) {
    if (needed <= storage_.size()) return;
    std::size_t cap = storage_.size();
    while (cap < needed) cap <<= 1;
    std::vector<std::uint8_t> bigger(cap);
    std::vector<std::uint8_t> current = snapshot();
    if (!current.empty()) {
      std::memcpy(bigger.data(), current.data(), current.size());
    }
    storage_.swap(bigger);
    head_ = 0;
  }

  std::vector<std::uint8_t> storage_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace zenith::net
