#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>

namespace zenith::net {

namespace {

Error sys_error(const char* what) {
  return Error::unavailable(std::string(what) + ": " + std::strerror(errno));
}

Result<int> new_socket(Endpoint::Kind kind) {
  int domain = kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return sys_error("socket");
  if (auto st = set_nonblocking(fd); !st.ok()) {
    close_fd(fd);
    return st.error();
  }
  if (kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Result<sockaddr_un> uds_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Error::invalid_argument("uds path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Result<Endpoint> parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    char* end = nullptr;
    long port = std::strtol(spec.c_str() + 4, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return Error::invalid_argument("bad tcp endpoint: " + spec);
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  if (spec.rfind("uds:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUds;
    ep.path = spec.substr(4);
    if (ep.path.empty()) {
      return Error::invalid_argument("empty uds path: " + spec);
    }
    return ep;
  }
  return Error::invalid_argument("endpoint must be tcp:PORT or uds:/path: " + spec);
}

Status set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return sys_error("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return sys_error("fcntl(F_SETFL)");
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
  return Status::success();
}

Result<int> listen_on(const Endpoint& ep, std::uint16_t* bound_port) {
  auto fd_or = new_socket(ep.kind);
  if (!fd_or.ok()) return fd_or;
  int fd = fd_or.value();

  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_addr(ep.port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      Error err = sys_error("bind(tcp)");
      close_fd(fd);
      return err;
    }
    if (bound_port != nullptr) {
      sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
        *bound_port = ntohs(actual.sin_port);
      }
    }
  } else {
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    auto addr_or = uds_addr(ep.path);
    if (!addr_or.ok()) {
      close_fd(fd);
      return addr_or.error();
    }
    sockaddr_un addr = addr_or.value();
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      Error err = sys_error("bind(uds)");
      close_fd(fd);
      return err;
    }
  }

  if (::listen(fd, 16) < 0) {
    Error err = sys_error("listen");
    close_fd(fd);
    return err;
  }
  return fd;
}

Result<int> connect_to(const Endpoint& ep) {
  auto fd_or = new_socket(ep.kind);
  if (!fd_or.ok()) return fd_or;
  int fd = fd_or.value();

  int rc;
  if (ep.kind == Endpoint::Kind::kTcp) {
    sockaddr_in addr = tcp_addr(ep.port);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    auto addr_or = uds_addr(ep.path);
    if (!addr_or.ok()) {
      close_fd(fd);
      return addr_or.error();
    }
    sockaddr_un addr = addr_or.value();
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0 && errno != EINPROGRESS) {
    Error err = sys_error("connect");
    close_fd(fd);
    return err;
  }
  return fd;
}

Result<int> connect_with_retry(const Endpoint& ep, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto fd_or = connect_to(ep);
    if (fd_or.ok()) {
      int fd = fd_or.value();
      // Wait for the nonblocking connect to resolve, then check SO_ERROR.
      pollfd pfd{fd, POLLOUT, 0};
      int prc = ::poll(&pfd, 1, 50);
      if (prc > 0) {
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr == 0) return fd;
      }
      close_fd(fd);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Error::unavailable("connect timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Result<int> accept_on(int listen_fd) {
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return sys_error("accept");
  }
  if (auto st = set_nonblocking(fd); !st.ok()) {
    close_fd(fd);
    return st.error();
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace zenith::net
