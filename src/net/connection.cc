#include "net/connection.h"

#include <errno.h>
#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "net/socket.h"

namespace zenith::net {

Connection::Connection(EventLoop* loop, int fd, Callbacks callbacks)
    : loop_(loop), fd_(fd), callbacks_(std::move(callbacks)) {
  loop_->add(fd_, EPOLLIN,
             [this](std::uint32_t events) { handle_events(events); });
}

Connection::~Connection() {
  if (open_) {
    loop_->remove(fd_);
    close_fd(fd_);
    open_ = false;
  }
}

void Connection::send_frame(const std::vector<std::uint8_t>& frame) {
  if (!open_) return;
  send_ring_.push(frame.data(), frame.size());
  ++stats_.frames_sent;
  flush();
  if (!stalled_ && send_ring_.size() >= high_watermark_) {
    stalled_ = true;
    ++stats_.stall_events;
  }
}

void Connection::flush() {
  while (open_ && !send_ring_.empty()) {
    const std::uint8_t* span = send_ring_.read_ptr();
    std::size_t len = send_ring_.read_span();
    ssize_t n = ::write(fd_, span, len);
    if (n > 0) {
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
      send_ring_.pop(static_cast<std::size_t>(n));
      // A short write means the socket buffer is full: resume from the new
      // head on the next EPOLLOUT rather than spinning here.
      if (static_cast<std::size_t>(n) < len) {
        ++stats_.short_writes;
        break;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++stats_.short_writes;
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    close("write failed: " + std::string(std::strerror(errno)));
    return;
  }
  if (stalled_ && send_ring_.size() <= low_watermark_) {
    stalled_ = false;
    if (callbacks_.on_drained) callbacks_.on_drained();
  }
  update_interest();
}

void Connection::read_ready() {
  std::uint8_t buf[64 * 1024];
  std::vector<WireMessage> messages;
  for (;;) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      Status st = assembler_.feed(buf, static_cast<std::size_t>(n), &messages);
      if (!st.ok()) {
        close("protocol error: " + st.error().message);
        return;
      }
      continue;
    }
    if (n == 0) {
      // Deliver whatever decoded before EOF, then report the close.
      if (!messages.empty() && callbacks_.on_messages) {
        stats_.frames_received += messages.size();
        callbacks_.on_messages(messages);
      }
      close("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close("read failed: " + std::string(std::strerror(errno)));
    return;
  }
  if (!messages.empty() && callbacks_.on_messages) {
    stats_.frames_received += messages.size();
    callbacks_.on_messages(messages);
  }
}

void Connection::handle_events(std::uint32_t events) {
  if (events & (EPOLLERR | EPOLLHUP)) {
    // Drain any final bytes the peer managed to send before the hangup.
    if (events & EPOLLIN) read_ready();
    if (open_) close("connection reset");
    return;
  }
  if (events & EPOLLOUT) flush();
  if (open_ && (events & EPOLLIN)) read_ready();
}

void Connection::update_interest() {
  if (!open_) return;
  bool want = !send_ring_.empty();
  if (want == want_write_) return;
  want_write_ = want;
  loop_->modify(fd_, EPOLLIN | (want ? EPOLLOUT : 0u));
}

bool Connection::flush_blocking(int timeout_ms) {
  int waited = 0;
  while (open_ && !send_ring_.empty() && waited <= timeout_ms) {
    flush();
    if (send_ring_.empty()) break;
    pollfd pfd{fd_, POLLOUT, 0};
    ::poll(&pfd, 1, 10);
    waited += 10;
  }
  return open_ && send_ring_.empty();
}

void Connection::close(const std::string& reason) {
  if (!open_ || in_close_) return;
  in_close_ = true;
  open_ = false;
  loop_->remove(fd_);
  close_fd(fd_);
  fd_ = -1;
  if (callbacks_.on_closed) callbacks_.on_closed(reason);
  in_close_ = false;
}

}  // namespace zenith::net
