// The controller's southbound transport seam.
//
// Every message between ZENITH-core and the data plane crosses this
// interface: requests go out through send(), and the three inbound streams
// (ACK/reply, switch health, link health) surface as NadirFifos the
// Monitoring Server consumes. Two backends implement it:
//
//  * SimBusTransport (sim_transport.h) — the deterministic in-process
//    simulator bus. It forwards to the Fabric and exposes the Fabric's own
//    queues, so a controller on this backend is byte-identical to one wired
//    to the Fabric directly (the golden-fingerprint corpus is asserted over
//    it).
//  * SocketTransport (socket_transport.h) — the real wire: frames encoded by
//    the binary codec (codec.h) over a nonblocking TCP/UDS connection,
//    driven by an epoll event loop. This is the honest wall-clock-throughput
//    path behind zenith_controllerd.
//
// Backpressure: writable() reports whether the outbound path accepts more
// traffic. The sim bus is infinitely deep (writable() is constantly true, so
// the check compiles to a dead branch there); the socket backend flips it at
// the sender ring's high watermark, which stalls the Worker Pool and the
// Sequencer until the drain callback fires — the paper's pipeline absorbs
// the stall safely because OPQueueNIB is persistent and level-triggered.
#pragma once

#include <cstddef>
#include <functional>

#include "common/ids.h"
#include "dataplane/messages.h"
#include "sim/fifo.h"

namespace zenith::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends a request toward a switch. Ownership of the request transfers;
  /// delivery is asynchronous (simulated channel delay or socket latency).
  virtual void send(SwitchId sw, SwitchRequest request) = 0;

  /// Merged reply stream (install/delete/clear ACKs, dumps, role ACKs).
  virtual NadirFifo<SwitchReply>& replies() = 0;
  /// Switch health stream (keepalive loss/resume after detection delay).
  virtual NadirFifo<SwitchHealthEvent>& health_events() = 0;
  /// Port/link health stream.
  virtual NadirFifo<LinkHealthEvent>& link_events() = 0;

  /// Number of switches reachable through this transport (NIB registration).
  virtual std::size_t switch_count() const = 0;

  /// Best-known data-plane liveness of `sw` (the Monitoring Server's
  /// keepalive re-sync after an OFC restart). Socket backends answer from
  /// the last health event observed.
  virtual bool switch_alive(SwitchId sw) const = 0;

  /// Drops every reply queued or in flight toward the controller: an abrupt
  /// controller-instance switchover loses its sockets' receive buffers.
  virtual void drop_all_in_flight_replies() = 0;

  /// False while the outbound path is above its backpressure watermark.
  /// Senders (Worker Pool, Sequencer dispatch) must hold off and will be
  /// resumed through the callback below.
  virtual bool writable() const { return true; }

  /// Invoked (at most once per stall) when a non-writable transport drains
  /// below its low watermark. Backends that never stall ignore it.
  virtual void set_resume_callback(std::function<void()> /*resume*/) {}
};

}  // namespace zenith::net
