// Binary wire codec for the OpenFlow-like controller<->switch message set.
//
// Frame layout (all multi-byte fields network endian):
//
//     0               4       5       6               8
//     +---------------+-------+-------+---------------+
//     | magic "ZNTH"  | ver   | type  | flags (0)     |
//     +---------------+-------+-------+---------------+
//     | length (payload bytes)        | switch id     |
//     +-------------------------------+---------------+
//     16                              12
//
// 16-byte fixed header, then `length` payload bytes. `switch id` names the
// target (requests) or source (replies/health) switch; 0xFFFFFFFF when not
// applicable (hello/bye). Payload encodings are fixed-layout POD — no
// varints — with every array length-prefixed by a u32 count:
//
//   FlowRule      flow,sw,dst,next_hop,priority          5 x u32   (20 B)
//   Op            id u32 | type u8 | sw u32 | del u32 | rule       (33 B)
//   SwitchRequest type u8 | role u32 | xid u64 | op | count + ops
//   SwitchReply   type u8 | role u32 | xid u64 | sw u32 | op
//                 | count + ops | count + dump entries (24 B each)
//   HealthEvent   type u8 | state_lost u8
//   LinkEvent     link u32 | up u8
//   Hello         role u8 | proto u16 | switch_count u32 | seed u64
//   Bye           (empty)
//
// Decoding is total: truncated, oversized, corrupt-magic or bad-count input
// yields an Error, never UB, a crash, or an unbounded allocation (counts are
// validated against the remaining payload before any reserve).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataplane/messages.h"

namespace zenith::net {

inline constexpr std::uint32_t kWireMagic = 0x5A4E5448;  // "ZNTH"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Upper bound on one frame's payload. Generous: the largest legitimate
/// frame is a multi-thousand-entry table dump, far below this.
inline constexpr std::uint32_t kMaxPayload = 4u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kSwitchRequest = 2,
  kSwitchReply = 3,
  kHealthEvent = 4,
  kLinkEvent = 5,
  kBye = 6,
};

struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kHello;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;
  std::uint32_t sw = 0xFFFFFFFFu;
};

/// Connection-establishment handshake: who is speaking, the protocol
/// version it implements, how many switches sit behind it, and the RNG seed
/// of its deployment (so a controller can cross-check the scenario).
struct Hello {
  enum class Role : std::uint8_t { kController = 0, kSwitchd = 1 };
  Role role = Role::kController;
  std::uint16_t proto = kWireVersion;
  std::uint32_t switch_count = 0;
  std::uint64_t seed = 0;
};

/// One decoded frame: `type` selects which member is meaningful.
struct WireMessage {
  FrameType type = FrameType::kBye;
  SwitchId sw;  // header switch id (invalid for hello/bye)
  Hello hello;
  SwitchRequest request;
  SwitchReply reply;
  SwitchHealthEvent health;
  LinkHealthEvent link;
};

// ---- frame encoders (append one complete frame to `out`) --------------------

void encode_request_frame(std::vector<std::uint8_t>& out, SwitchId sw,
                          const SwitchRequest& request);
void encode_reply_frame(std::vector<std::uint8_t>& out,
                        const SwitchReply& reply);
void encode_health_frame(std::vector<std::uint8_t>& out,
                         const SwitchHealthEvent& event);
void encode_link_frame(std::vector<std::uint8_t>& out,
                       const LinkHealthEvent& event);
void encode_hello_frame(std::vector<std::uint8_t>& out, const Hello& hello);
void encode_bye_frame(std::vector<std::uint8_t>& out);

// ---- decoding ---------------------------------------------------------------

/// Parses and validates a frame header from exactly kFrameHeaderSize bytes.
Result<FrameHeader> decode_frame_header(const std::uint8_t* data,
                                        std::size_t size);

/// Decodes one frame's payload (header already validated).
Result<WireMessage> decode_frame(const FrameHeader& header,
                                 const std::uint8_t* payload,
                                 std::size_t size);

/// Incremental reassembly of a framed byte stream: feed() whatever the
/// socket produced — any split, down to single bytes — and complete frames
/// come out in order. A malformed header poisons the assembler (the stream
/// has lost sync; the connection must be torn down).
class FrameAssembler {
 public:
  /// Appends raw bytes and decodes every now-complete frame into `out`
  /// (appended). Returns an error on a malformed header or payload; the
  /// assembler then rejects all further input.
  Status feed(const std::uint8_t* data, std::size_t size,
              std::vector<WireMessage>* out);

  bool poisoned() const { return poisoned_; }
  /// Bytes buffered awaiting the rest of a frame.
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix already parsed (compacted lazily)
  bool poisoned_ = false;
};

}  // namespace zenith::net
