// zenith_switchd's core: the data-plane half of the wire pair.
//
// Hosts a deterministic Simulator + Fabric (the same AbstractSwitch models
// the in-process experiments use) behind one framed socket. Inbound request
// frames decode and enter the fabric's delayed channels; the local simulator
// then runs to idle — the fabric has no self-rescheduling components, so
// "idle" means every channel delay and switch service time for the injected
// work has elapsed — and whatever landed in the reply/health/link queues
// encodes back out. From the controller's viewpoint the process boundary is
// invisible: same message set, same per-switch ordering (TCP preserves what
// DelayedChannel enforces), different clock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataplane/fabric.h"
#include "net/connection.h"
#include "net/socket.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace zenith::net {

class SwitchBridge {
 public:
  SwitchBridge(Topology topo, std::uint64_t seed, FabricConfig config = {});

  /// Adopts an accepted connection fd and sends our Hello.
  void attach(EventLoop* loop, int fd);

  /// Injects decoded work into the fabric, advances the local simulator
  /// until it goes idle, and ships out everything that surfaced. Returns
  /// the number of frames sent.
  std::size_t pump();

  Fabric& fabric() { return *fabric_; }
  Simulator& sim() { return sim_; }
  bool peer_connected() const {
    return connection_ != nullptr && connection_->open();
  }
  bool peer_said_bye() const { return peer_bye_; }
  const std::string& close_reason() const { return close_reason_; }
  const ConnectionStats* stats() const {
    return connection_ != nullptr ? &connection_->stats() : nullptr;
  }
  std::uint64_t requests_received() const { return requests_received_; }

  /// Answers the controller's Bye with our own and drains the socket.
  void send_bye_and_flush(int timeout_ms);

 private:
  void on_messages(std::vector<WireMessage>& messages);
  void ship_outbound();

  std::uint64_t seed_;
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<Connection> connection_;
  bool peer_bye_ = false;
  std::string close_reason_;
  std::uint64_t requests_received_ = 0;
  std::size_t frames_out_this_pump_ = 0;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace zenith::net
