// The deterministic simulator-bus backend of the Transport seam.
//
// A pure forwarding shim over the Fabric: send() is Fabric::send and the
// inbound streams are the Fabric's own queues (not copies), so wake
// callbacks, delivery order, and RNG consumption are exactly what a
// controller wired to the Fabric directly would see. This backend must stay
// byte-identical forever — the golden-fingerprint corpus and every
// verification artifact run over it.
#pragma once

#include "dataplane/fabric.h"
#include "net/transport.h"

namespace zenith::net {

class SimBusTransport final : public Transport {
 public:
  explicit SimBusTransport(Fabric* fabric) : fabric_(fabric) {}

  void send(SwitchId sw, SwitchRequest request) override {
    fabric_->send(sw, std::move(request));
  }
  NadirFifo<SwitchReply>& replies() override { return fabric_->replies(); }
  NadirFifo<SwitchHealthEvent>& health_events() override {
    return fabric_->health_events();
  }
  NadirFifo<LinkHealthEvent>& link_events() override {
    return fabric_->link_events();
  }
  std::size_t switch_count() const override { return fabric_->switch_count(); }
  bool switch_alive(SwitchId sw) const override { return fabric_->alive(sw); }
  void drop_all_in_flight_replies() override {
    fabric_->drop_all_in_flight_replies();
  }

  Fabric* fabric() { return fabric_; }

 private:
  Fabric* fabric_;
};

}  // namespace zenith::net
