#include "net/switch_bridge.h"

#include <utility>

namespace zenith::net {

SwitchBridge::SwitchBridge(Topology topo, std::uint64_t seed,
                           FabricConfig config)
    : seed_(seed), rng_(seed) {
  fabric_ = std::make_unique<Fabric>(&sim_, topo, rng_.fork(), config);
}

void SwitchBridge::attach(EventLoop* loop, int fd) {
  Connection::Callbacks callbacks;
  callbacks.on_messages = [this](std::vector<WireMessage>& messages) {
    on_messages(messages);
  };
  callbacks.on_closed = [this](const std::string& reason) {
    close_reason_ = reason;
  };
  connection_ = std::make_unique<Connection>(loop, fd, std::move(callbacks));

  Hello hello;
  hello.role = Hello::Role::kSwitchd;
  hello.switch_count = static_cast<std::uint32_t>(fabric_->switch_count());
  hello.seed = seed_;
  scratch_.clear();
  encode_hello_frame(scratch_, hello);
  connection_->send_frame(scratch_);
}

void SwitchBridge::on_messages(std::vector<WireMessage>& messages) {
  for (WireMessage& m : messages) {
    switch (m.type) {
      case FrameType::kSwitchRequest:
        ++requests_received_;
        fabric_->send(m.sw, std::move(m.request));
        break;
      case FrameType::kBye:
        peer_bye_ = true;
        break;
      case FrameType::kHello:
        break;  // controller hello carries nothing we need yet
      default:
        break;  // replies/health never flow controller->switchd; ignore
    }
  }
}

std::size_t SwitchBridge::pump() {
  frames_out_this_pump_ = 0;
  // No watchdog lives in this simulator, so the queue genuinely drains:
  // running to idle completes every channel delay and switch service time
  // for the work injected so far.
  sim_.run();
  ship_outbound();
  return frames_out_this_pump_;
}

void SwitchBridge::ship_outbound() {
  if (connection_ == nullptr || !connection_->open()) return;
  auto& replies = fabric_->replies();
  while (!replies.empty()) {
    scratch_.clear();
    encode_reply_frame(scratch_, replies.peek());
    connection_->send_frame(scratch_);
    replies.ack_pop();
    ++frames_out_this_pump_;
  }
  auto& health = fabric_->health_events();
  while (!health.empty()) {
    scratch_.clear();
    encode_health_frame(scratch_, health.peek());
    connection_->send_frame(scratch_);
    health.ack_pop();
    ++frames_out_this_pump_;
  }
  auto& links = fabric_->link_events();
  while (!links.empty()) {
    scratch_.clear();
    encode_link_frame(scratch_, links.peek());
    connection_->send_frame(scratch_);
    links.ack_pop();
    ++frames_out_this_pump_;
  }
}

void SwitchBridge::send_bye_and_flush(int timeout_ms) {
  if (connection_ == nullptr || !connection_->open()) return;
  scratch_.clear();
  encode_bye_frame(scratch_);
  connection_->send_frame(scratch_);
  connection_->flush_blocking(timeout_ms);
}

}  // namespace zenith::net
