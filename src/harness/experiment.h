// Experiment harness: one simulated deployment — topology + fabric + one
// controller variant — plus the convergence probe used by every figure.
//
// Convergence time (§6 "Metrics"): "the time between when DAG installation
// commences and when the controller certifies in the NIB that the data
// plane has converged to the state corresponding to the DAG". The probe
// additionally requires ground truth to agree (ConsistencyChecker), so a
// controller that certifies a lie (PR during an inconsistency window) is
// only credited when reconciliation actually fixes the data plane.
#pragma once

#include <memory>
#include <optional>

#include "core/controller.h"
#include "core/properties.h"
#include "pr/pr_controller.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace zenith {

enum class ControllerKind {
  kZenithNR,     // ZENITH, no reconciliation of any kind (the default)
  kZenithDR,     // ZENITH with directed reconciliation on switch recovery
  kPr,           // periodic reconciliation baseline
  kPrUp,         // PR + reconcile-on-switch-up
  kPrNoReconcile,  // PR with reconciliation disabled (Fig. 11 ablation)
  kOdlLike,      // PR with ODL-like sluggish detection (Fig. A.2)
};

const char* to_string(ControllerKind kind);
bool is_pr_variant(ControllerKind kind);

struct ExperimentConfig {
  std::uint64_t seed = 1;
  ControllerKind kind = ControllerKind::kZenithNR;
  FabricConfig fabric;
  CoreConfig core;
  SimTime reconciliation_period = seconds(30);
  /// Convergence probe granularity.
  SimTime poll_interval = millis(1);
  /// Use the O(DAG) scoped convergence probe (large-topology benches) in
  /// install_and_wait instead of the full-network check.
  bool scoped_convergence = false;
};

class Experiment {
 public:
  Experiment(Topology topo, ExperimentConfig config);

  Simulator& sim() { return sim_; }
  Fabric& fabric() { return *fabric_; }
  const Topology& topology() const { return fabric_->topology(); }
  ExperimentConfig& config() { return config_; }
  Rng& rng() { return rng_; }

  /// The underlying core (valid for every kind; PR wraps one).
  ZenithController& controller();
  PrController* pr() { return pr_.get(); }
  Nib& nib() { return controller().nib(); }
  OpIdAllocator& op_ids() { return controller().op_ids(); }
  ConsistencyChecker& checker() { return *checker_; }
  DagOrderChecker& order_checker() { return order_checker_; }

  /// Starts the controller (and reconciler for PR variants).
  void start();

  /// Wires an observability bundle into the whole deployment: the bundle's
  /// clock becomes this experiment's simulation clock, and the controller
  /// core plus the fabric start reporting into it. Pass null to detach
  /// (the bundle must outlive the experiment while attached).
  void attach_observability(obs::Observability* o);

  /// Submits `dag` and runs the simulation until converged or `timeout`
  /// elapses. Returns the convergence latency, or nullopt on timeout (the
  /// "fails to converge" outcome of Figure 11).
  std::optional<SimTime> install_and_wait(Dag dag, SimTime timeout);

  /// Runs until `pred()` or timeout; returns elapsed time on success.
  std::optional<SimTime> run_until(const std::function<bool()>& pred,
                                   SimTime timeout);

  /// Advances the clock unconditionally.
  void run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

 private:
  ExperimentConfig config_;
  Rng rng_;
  Simulator sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<ZenithController> zenith_;  // used for Zenith kinds
  std::unique_ptr<PrController> pr_;          // used for PR kinds
  std::unique_ptr<ConsistencyChecker> checker_;
  DagOrderChecker order_checker_;
};

}  // namespace zenith
