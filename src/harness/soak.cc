#include "harness/soak.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace zenith {

namespace {

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= 1099511628211ull;
  }
}

}  // namespace

SoakWorkload::SoakWorkload(Experiment* experiment, SoakConfig config)
    : experiment_(experiment),
      config_(config),
      rng_(config.seed),
      chaos_rng_(config.seed ^ 0x5eed5eedull) {}

bool SoakWorkload::pick_groups() {
  const Topology& topo = experiment_->topology();
  std::vector<SwitchId> candidates = config_.endpoints;
  if (candidates.empty()) {
    for (std::size_t i = 0; i < topo.switch_count(); ++i) {
      candidates.push_back(SwitchId(static_cast<std::uint32_t>(i)));
    }
  }
  if (candidates.size() < 2) return false;

  std::unordered_set<SwitchId> path_switches;
  std::unordered_set<std::uint64_t> used_pairs;
  std::size_t attempts = 0;
  while (groups_.size() < config_.groups &&
         attempts < config_.groups * 50 + 100) {
    ++attempts;
    SwitchId src = rng_.pick(candidates);
    SwitchId dst = rng_.pick(candidates);
    if (src == dst) continue;
    std::uint64_t key =
        (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
    if (!used_pairs.insert(key).second) continue;
    std::optional<Path> path;
    if (config_.path_spread > 1) {
      // ECMP-style spread: pick (seeded) among the alternative paths so
      // group load fans across the equal-cost agg/core layer instead of
      // piling onto the deterministic BFS winner (see SoakConfig).
      std::vector<Path> alternatives =
          k_alternative_paths(topo, src, dst, config_.path_spread);
      std::erase_if(alternatives,
                    [](const Path& p) { return p.size() < 3; });
      if (!alternatives.empty()) path = rng_.pick(alternatives);
    } else {
      path = shortest_path(topo, src, dst);
    }
    if (!path || path->size() < 3) continue;  // want a multi-hop elephant
    Group group;
    group.path = *path;
    for (std::size_t f = 0; f < config_.flows_per_group; ++f) {
      group.flows.push_back(FlowId(next_flow_id_++));
    }
    for (SwitchId sw : *path) path_switches.insert(sw);
    groups_.push_back(std::move(group));
  }
  if (groups_.empty()) return false;

  for (std::size_t i = 0; i < topo.switch_count(); ++i) {
    auto sw = SwitchId(static_cast<std::uint32_t>(i));
    if (!path_switches.count(sw)) off_path_switches_.push_back(sw);
  }
  // Single-component crash targets (the Watchdog restarts each); whole-
  // microservice failovers are the chaos campaigns' job, not the soak's.
  const CoreConfig& core = experiment_->config().core;
  crashable_components_.push_back("dag_scheduler");
  for (std::size_t i = 0; i < core.num_sequencers; ++i) {
    crashable_components_.push_back("sequencer" + std::to_string(i));
  }
  if (core.sharded()) {
    for (std::size_t s = 0; s < core.nib_shards; ++s) {
      crashable_components_.push_back("nib_event_handler" + std::to_string(s));
    }
  } else {
    crashable_components_.push_back("nib_event_handler");
  }
  for (std::size_t i = 0; i < core.num_workers; ++i) {
    crashable_components_.push_back("worker" + std::to_string(i));
  }
  if (core.sharded()) {
    // The sharded ACK path: router, per-shard monitoring, and the pump all
    // take the same single-component crashes the classic monitoring did.
    crashable_components_.push_back("reply_router");
    for (std::size_t s = 0; s < core.nib_shards; ++s) {
      crashable_components_.push_back("monitoring" + std::to_string(s));
    }
    crashable_components_.push_back("commit_pump");
  } else {
    crashable_components_.push_back("monitoring");
  }
  crashable_components_.push_back("topo_handler");
  return true;
}

Dag SoakWorkload::build_round_dag(int priority) {
  Dag dag(DagId(next_dag_id_++));
  OpIdAllocator& ids = experiment_->op_ids();
  for (Group& group : groups_) {
    group.flow_ops.resize(group.flows.size());
    for (std::size_t f = 0; f < group.flows.size(); ++f) {
      CompiledPath compiled =
          compile_single_path(group.path, group.flows[f], priority, ids);
      for (const Op& op : compiled.ops) {
        auto st = dag.add_op(op);
        assert(st.ok());
        (void)st;
      }
      for (auto [before, after] : compiled.edges) {
        auto st = dag.add_edge(before, after);
        assert(st.ok());
        (void)st;
      }
      // Make-before-break per hop: the delete of last round's rule at
      // path[i] waits only for this flow's replacement install at path[i].
      // compile_single_path emits ops in path order every round, so the
      // previous ops zip hop-for-hop with the new ones.
      std::vector<Op>& previous = group.flow_ops[f];
      if (!previous.empty()) {
        assert(previous.size() == compiled.ops.size());
        std::vector<Op> deletions = deletion_ops(previous, ids);
        for (std::size_t i = 0; i < deletions.size(); ++i) {
          auto st = dag.add_op(deletions[i]);
          assert(st.ok());
          st = dag.add_edge(compiled.ops[i].id, deletions[i].id);
          assert(st.ok());
          (void)st;
        }
      }
      previous = std::move(compiled.ops);
    }
  }
  return dag;
}

void SoakWorkload::schedule_switch_chaos(SoakResult* result) {
  if (off_path_switches_.empty()) return;
  SimTime gap = static_cast<SimTime>(chaos_rng_.exponential(
      static_cast<double>(config_.chaos_switch_mean_gap)));
  experiment_->sim().schedule(gap, [this, result] {
    if (stop_chaos_) return;
    SwitchId sw = chaos_rng_.pick(off_path_switches_);
    // Partial blips dominate (keepalive hiccups); the occasional complete
    // one exercises the CLEAR_TCAM recovery pipeline in the background.
    FailureMode mode = chaos_rng_.bernoulli(0.25)
                           ? FailureMode::kCompleteTransient
                           : FailureMode::kPartialTransient;
    experiment_->fabric().inject_failure(sw, mode);
    ++result->switch_blips;
    experiment_->sim().schedule(config_.chaos_switch_down_time, [this, sw] {
      experiment_->fabric().inject_recovery(sw);
    });
    schedule_switch_chaos(result);
  });
}

void SoakWorkload::schedule_component_chaos(SoakResult* result) {
  if (crashable_components_.empty()) return;
  SimTime gap = static_cast<SimTime>(chaos_rng_.exponential(
      static_cast<double>(config_.chaos_component_mean_gap)));
  experiment_->sim().schedule(gap, [this, result] {
    if (stop_chaos_) return;
    const std::string& name = chaos_rng_.pick(crashable_components_);
    experiment_->controller().crash_component(name);
    ++result->component_crashes;
    schedule_component_chaos(result);
  });
}

SoakResult SoakWorkload::run() {
  SoakResult result;
  if (!pick_groups()) {
    ++result.invariant_violations;  // misconfigured: nothing to soak
    return result;
  }

  int priority = 1;
  bool chaos_started = false;
  SimTime loop_start = experiment_->sim().now();
  while (result.ops_completed < config_.target_ops) {
    Dag dag = build_round_dag(priority++);
    DagId id = dag.id();
    std::size_t dag_ops = dag.op_ids().size();
    experiment_->order_checker().register_dag(dag);
    auto latency = experiment_->install_and_wait(std::move(dag),
                                                 config_.dag_timeout);
    if (!latency.has_value()) {
      // The chaos schedule never touches path switches, so a round that
      // fails to converge is a real pipeline defect, not scheduled noise.
      ++result.timeouts;
      ++result.invariant_violations;
      ZLOG_INFO("soak round %zu (dag%u) failed to converge", result.rounds,
                id.value());
      break;
    }
    result.ops_completed += dag_ops;
    ++result.dags_completed;
    ++result.rounds;
    if (!chaos_started && config_.chaos) {
      // Chaos starts after the initial install: the steady-state rounds run
      // under fire, the setup does not.
      chaos_started = true;
      schedule_switch_chaos(&result);
      schedule_component_chaos(&result);
    }
    if (config_.deep_check_every != 0 &&
        result.rounds % config_.deep_check_every == 0 &&
        experiment_->checker().hidden_entry_signature()) {
      ++result.invariant_violations;
    }
  }
  stop_chaos_ = true;
  result.sim_elapsed = experiment_->sim().now() - loop_start;

  // Quiesce: let in-flight chaos cleanups settle, then final deep checks.
  // (Outside the throughput window — a fixed 2s tail would swamp short runs.)
  experiment_->run_for(seconds(2));
  if (experiment_->checker().hidden_entry_signature()) {
    ++result.invariant_violations;
  }
  result.order_ok = experiment_->order_checker().ok();
  if (!result.order_ok) {
    result.invariant_violations +=
        experiment_->order_checker().violations().size();
  }
  result.nib_fingerprint = experiment_->nib().state_fingerprint();
  return result;
}

void DeliveryOrderRecorder::attach(Fabric& fabric) {
  fabric.set_apply_observer([this](SwitchId sw, const Op& op) {
    auto [it, inserted] =
        per_switch_.emplace(sw.value(), 14695981039346656037ull);
    fnv_mix(it->second, op.id.value());
    fnv_mix(it->second, static_cast<std::uint64_t>(op.type));
    ++applied_;
  });
}

std::uint64_t DeliveryOrderRecorder::fingerprint() const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> chains(
      per_switch_.begin(), per_switch_.end());
  std::sort(chains.begin(), chains.end());
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& [sw, chain] : chains) {
    fnv_mix(h, sw);
    fnv_mix(h, chain);
  }
  return h;
}

}  // namespace zenith
