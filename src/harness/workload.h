// Workload generation for the evaluation scenarios:
//  * routed flows with replacement DAGs (the "repeatedly install a new DAG"
//    loop of Figure 11),
//  * repair DAGs after switch failures (Figures 12/13),
//  * background table preloading (the Figure 4 reconciliation-cost scaling
//    and Figure 11's per-switch transit state),
//  * random failure schedules.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "dag/compiler.h"
#include "harness/experiment.h"
#include "traffic/traffic.h"

namespace zenith {

class Workload {
 public:
  Workload(Experiment* experiment, std::uint64_t seed);

  /// Experiment-free form: everything the generator actually needs is the
  /// topology, an OP-id allocator and a seed. This is what the wire daemons
  /// use — there is no Experiment wrapping a socket-backed controller, but
  /// the DAG/OP sequence must match the sim-backend run bit for bit.
  /// Both `topo` and `ids` must outlive the workload.
  Workload(const Topology* topo, OpIdAllocator* ids, std::uint64_t seed);

  /// Creates `count` flows between random distinct endpoint pairs and
  /// returns the DAG installing all their shortest paths.
  Dag initial_dag(std::size_t count);

  /// Creates flows between the given pairs.
  Dag initial_dag_for_pairs(
      const std::vector<std::pair<SwitchId, SwitchId>>& pairs);

  /// Replacement DAG that reroutes one random flow around a random interior
  /// node of its current path (the paper's "each DAG only updates a portion
  /// of the topology"). Returns nullopt when no flow can be rerouted.
  std::optional<Dag> reroute_dag();

  /// The Figure 11 update stream: replace one random flow with a fresh
  /// nearby pair (path length <= max_hops, so each DAG touches only a
  /// handful of switches). Falls back to a reroute; unlike reroute_dag this
  /// practically always produces an update, even on chain-heavy WAN graphs
  /// with no alternative paths.
  std::optional<Dag> next_update_dag(std::size_t max_hops = 5);

  /// Replacement DAG that moves every flow whose path touches a switch in
  /// `avoid` onto paths avoiding those switches (the app reaction to switch
  /// failure). Returns nullopt when nothing is affected or no path exists.
  std::optional<Dag> repair_dag(const std::unordered_set<SwitchId>& avoid);

  /// Demands for the traffic model.
  std::vector<Demand> demands() const;

  /// Intent-level ops currently associated with each flow.
  std::vector<Op> all_flow_ops() const;

  /// Current paths / flow ids in ascending FlowId order (the drain app's
  /// request payload).
  std::vector<Path> paths() const;
  std::vector<FlowId> flow_ids() const;

  std::size_t flow_count() const { return flows_.size(); }

  DagId next_dag_id() { return DagId(next_dag_id_++); }

 private:
  struct FlowState {
    Demand demand;
    Path path;
    std::vector<Op> ops;
  };

  Dag build_replacement(const std::vector<FlowId>& flows,
                        const std::vector<Path>& new_paths,
                        const std::unordered_set<SwitchId>& skip_deletes_on = {});

  const Topology* topo_;
  OpIdAllocator* ids_;
  Rng rng_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::uint32_t next_flow_id_ = 1;
  std::uint32_t next_dag_id_ = 1;
};

/// Preloads `entries_per_switch` background rules on every switch, recorded
/// as DONE/in-view in the NIB: consistent long-lived state whose only effect
/// is to make reconciliation scans expensive (Figures 3, 4, 11).
void preload_background_entries(Experiment& experiment,
                                std::size_t entries_per_switch);

/// Random transient switch-failure schedule: failures occur with
/// exponential inter-arrival `mean_gap`, last `down_time`, and at most
/// `max_concurrent` switches are down at once.
struct FailurePlanConfig {
  SimTime mean_gap = seconds(5);
  SimTime down_time = seconds(1);
  std::size_t max_concurrent = 1;
  FailureMode mode = FailureMode::kCompleteTransient;
  SimTime horizon = seconds(60);
};

/// Installs the schedule on the simulator; returns the list of (time,
/// switch) failures planned (for logging / trace alignment).
std::vector<std::pair<SimTime, SwitchId>> schedule_switch_failures(
    Experiment& experiment, FailurePlanConfig config, std::uint64_t seed);

/// Random component-crash schedule over the controller's components (the
/// Watchdog restarts them).
std::vector<std::pair<SimTime, std::string>> schedule_component_failures(
    Experiment& experiment, SimTime mean_gap, SimTime horizon,
    std::uint64_t seed, std::size_t max_concurrent = 1);

}  // namespace zenith
