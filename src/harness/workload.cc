#include "harness/workload.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace zenith {

Workload::Workload(Experiment* experiment, std::uint64_t seed)
    : Workload(&experiment->topology(), &experiment->op_ids(), seed) {}

Workload::Workload(const Topology* topo, OpIdAllocator* ids,
                   std::uint64_t seed)
    : topo_(topo), ids_(ids), rng_(seed) {}

Dag Workload::initial_dag(std::size_t count) {
  const Topology& topo = *topo_;
  std::vector<std::pair<SwitchId, SwitchId>> pairs;
  std::size_t n = topo.switch_count();
  assert(n >= 2);
  std::size_t attempts = 0;
  while (pairs.size() < count && attempts < count * 50 + 100) {
    ++attempts;
    auto a = SwitchId(static_cast<std::uint32_t>(rng_.next_below(n)));
    auto b = SwitchId(static_cast<std::uint32_t>(rng_.next_below(n)));
    if (a == b) continue;
    pairs.emplace_back(a, b);
  }
  return initial_dag_for_pairs(pairs);
}

Dag Workload::initial_dag_for_pairs(
    const std::vector<std::pair<SwitchId, SwitchId>>& pairs) {
  const Topology& topo = *topo_;
  std::vector<Path> paths;
  std::vector<FlowId> flow_ids;
  for (auto [src, dst] : pairs) {
    auto path = shortest_path(topo, src, dst);
    if (!path || path->size() < 2) continue;
    FlowId flow(next_flow_id_++);
    FlowState state;
    state.demand = Demand{flow, src, dst, 1.0};
    state.path = *path;
    flows_[flow] = std::move(state);
    paths.push_back(*path);
    flow_ids.push_back(flow);
  }
  return build_replacement(flow_ids, paths);
}

Dag Workload::build_replacement(
    const std::vector<FlowId>& flow_ids, const std::vector<Path>& new_paths,
    const std::unordered_set<SwitchId>& skip_deletes_on) {
  assert(flow_ids.size() == new_paths.size());
  // Previous ops of exactly the rerouted flows get deleted by the DAG —
  // except ops on switches known dead: a deletion there can never be ACKed
  // and would wedge the DAG (the §F Remark: "the applications must change
  // the DAG" rather than wait on a dead switch).
  std::vector<Op> previous_ops;
  for (FlowId flow : flow_ids) {
    for (const Op& op : flows_.at(flow).ops) {
      if (skip_deletes_on.count(op.sw)) continue;
      previous_ops.push_back(op);
    }
  }
  // Priorities must exceed everything currently believed installed, across
  // all flows (Listing 6's HighestPriorityInOPSet over previous OPs).
  std::vector<Op> all_ops = all_flow_ops();
  int priority = highest_priority(all_ops) + 1;

  Dag dag(next_dag_id());
  OpIdAllocator& ids = *ids_;
  for (std::size_t i = 0; i < new_paths.size(); ++i) {
    CompiledPath compiled =
        compile_single_path(new_paths[i], flow_ids[i], priority, ids);
    for (const Op& op : compiled.ops) {
      auto st = dag.add_op(op);
      assert(st.ok());
      (void)st;
    }
    for (auto [before, after] : compiled.edges) {
      auto st = dag.add_edge(before, after);
      assert(st.ok());
      (void)st;
    }
    // Update intent bookkeeping.
    FlowState& state = flows_.at(flow_ids[i]);
    state.path = new_paths[i];
    state.ops = compiled.ops;
  }
  std::vector<Op> deletions = deletion_ops(previous_ops, ids);
  if (!deletions.empty()) {
    auto st = dag.expand_with(deletions);
    assert(st.ok());
    (void)st;
  }
  return dag;
}

std::optional<Dag> Workload::reroute_dag() {
  if (flows_.empty()) return std::nullopt;
  // Candidate flows with an interior node to route around.
  std::vector<FlowId> candidates;
  for (const auto& [flow, state] : flows_) {
    if (state.path.size() >= 3) candidates.push_back(flow);
  }
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end());
  FlowId flow = candidates[rng_.next_below(candidates.size())];
  const FlowState& state = flows_.at(flow);
  // Route around one random interior hop.
  SwitchId excluded =
      state.path[1 + rng_.next_below(state.path.size() - 2)];
  auto new_path = shortest_path(*topo_, state.demand.src,
                                state.demand.dst, {excluded});
  if (!new_path || *new_path == state.path) return std::nullopt;
  return build_replacement({flow}, {*new_path});
}

std::optional<Dag> Workload::next_update_dag(std::size_t max_hops) {
  if (flows_.empty()) return std::nullopt;
  const Topology& topo = *topo_;
  std::size_t n = topo.switch_count();
  // Pick the flow to replace (deterministic order for a given draw).
  std::vector<FlowId> ordered;
  for (const auto& [flow, _] : flows_) ordered.push_back(flow);
  std::sort(ordered.begin(), ordered.end());
  FlowId flow = ordered[rng_.next_below(ordered.size())];
  // Fresh nearby endpoint pair: random src, dst found by a short random
  // walk (guaranteed nearby even on sparse chain-heavy graphs).
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto src = SwitchId(static_cast<std::uint32_t>(rng_.next_below(n)));
    SwitchId cur = src;
    std::size_t steps = 2 + rng_.next_below(max_hops - 2);
    for (std::size_t i = 0; i < steps; ++i) {
      const auto& neighbors = topo.neighbors(cur);
      if (neighbors.empty()) break;
      cur = neighbors[rng_.next_below(neighbors.size())];
    }
    if (cur == src) continue;
    auto path = shortest_path(topo, src, cur);
    if (!path || path->size() < 2 || path->size() > max_hops) continue;
    FlowState& state = flows_.at(flow);
    state.demand.src = src;
    state.demand.dst = cur;
    return build_replacement({flow}, {*path});
  }
  return reroute_dag();
}

std::optional<Dag> Workload::repair_dag(
    const std::unordered_set<SwitchId>& avoid) {
  std::vector<FlowId> affected;
  std::vector<Path> new_paths;
  std::vector<FlowId> ordered;
  for (const auto& [flow, _] : flows_) ordered.push_back(flow);
  std::sort(ordered.begin(), ordered.end());
  for (FlowId flow : ordered) {
    const FlowState& state = flows_.at(flow);
    bool touched = std::any_of(
        state.path.begin(), state.path.end(),
        [&](SwitchId sw) { return avoid.count(sw) > 0; });
    if (!touched) continue;
    if (avoid.count(state.demand.src) || avoid.count(state.demand.dst)) {
      continue;  // endpoint dead: nothing an app can do
    }
    auto new_path = shortest_path(*topo_, state.demand.src,
                                  state.demand.dst, avoid);
    if (!new_path) continue;
    affected.push_back(flow);
    new_paths.push_back(*new_path);
  }
  if (affected.empty()) return std::nullopt;
  return build_replacement(affected, new_paths, avoid);
}

std::vector<Demand> Workload::demands() const {
  std::vector<Demand> out;
  out.reserve(flows_.size());
  std::vector<FlowId> ordered;
  for (const auto& [flow, _] : flows_) ordered.push_back(flow);
  std::sort(ordered.begin(), ordered.end());
  for (FlowId flow : ordered) out.push_back(flows_.at(flow).demand);
  return out;
}

std::vector<Path> Workload::paths() const {
  std::vector<FlowId> ordered = flow_ids();
  std::vector<Path> out;
  out.reserve(ordered.size());
  for (FlowId flow : ordered) out.push_back(flows_.at(flow).path);
  return out;
}

std::vector<FlowId> Workload::flow_ids() const {
  std::vector<FlowId> ordered;
  ordered.reserve(flows_.size());
  for (const auto& [flow, _] : flows_) ordered.push_back(flow);
  std::sort(ordered.begin(), ordered.end());
  return ordered;
}

std::vector<Op> Workload::all_flow_ops() const {
  std::vector<Op> out;
  for (const auto& [_, state] : flows_) {
    out.insert(out.end(), state.ops.begin(), state.ops.end());
  }
  return out;
}

void preload_background_entries(Experiment& experiment,
                                std::size_t entries_per_switch) {
  // Long-lived consistent state: installed on the switch, DONE in the NIB,
  // present in the view. Uses a reserved high OP-id range so it never
  // collides with the experiment's allocator.
  Nib& nib = experiment.nib();
  std::uint32_t next_id = 0x20000000u;
  for (SwitchId sw : nib.switches()) {
    for (std::size_t i = 0; i < entries_per_switch; ++i) {
      Op op;
      op.id = OpId(next_id++);
      op.type = OpType::kInstallRule;
      op.sw = sw;
      // Self-referential placeholder rule at priority 0: never matches
      // experiment traffic (dst == sw itself) but occupies TCAM space.
      op.rule = FlowRule{FlowId(0xffffffu), sw, sw, sw, 0};
      nib.preload_op(op, OpStatus::kDone, /*in_view=*/true);
      // Pre-existing data-plane state: placed directly, no install round
      // trip (it pre-dates the experiment).
      experiment.fabric().at(sw).preload_entry(op);
    }
  }
}

std::vector<std::pair<SimTime, SwitchId>> schedule_switch_failures(
    Experiment& experiment, FailurePlanConfig config, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<SimTime, SwitchId>> plan;
  std::size_t n = experiment.topology().switch_count();
  SimTime t = experiment.sim().now();
  while (true) {
    t += static_cast<SimTime>(rng.exponential(
        static_cast<double>(config.mean_gap)));
    if (t > experiment.sim().now() + config.horizon) break;
    auto sw = SwitchId(static_cast<std::uint32_t>(rng.next_below(n)));
    plan.emplace_back(t, sw);
  }
  // Enforce the concurrency cap at schedule time assuming nominal
  // down_time: drop events that would exceed it.
  std::vector<std::pair<SimTime, SwitchId>> admitted;
  for (auto [when, sw] : plan) {
    std::size_t overlapping = 0;
    for (auto [w2, s2] : admitted) {
      if (w2 <= when && when < w2 + config.down_time) ++overlapping;
    }
    if (overlapping < config.max_concurrent) admitted.emplace_back(when, sw);
  }
  for (auto [when, sw] : admitted) {
    Fabric* fabric = &experiment.fabric();
    FailureMode mode = config.mode;
    SimTime down = config.down_time;
    Simulator& sim = experiment.sim();
    sim.schedule_at(when, [fabric, sw = sw, mode, down, &sim] {
      if (!fabric->alive(sw)) return;
      fabric->inject_failure(sw, mode);
      if (mode != FailureMode::kCompletePermanent) {
        sim.schedule(down, [fabric, sw] { fabric->inject_recovery(sw); });
      }
    });
  }
  return admitted;
}

std::vector<std::pair<SimTime, std::string>> schedule_component_failures(
    Experiment& experiment, SimTime mean_gap, SimTime horizon,
    std::uint64_t seed, std::size_t max_concurrent) {
  Rng rng(seed);
  std::vector<Component*> components = experiment.controller().components();
  std::vector<std::pair<SimTime, std::string>> plan;
  SimTime t = experiment.sim().now();
  SimTime end = t + horizon;
  SimTime last = 0;
  (void)max_concurrent;
  while (true) {
    t += static_cast<SimTime>(rng.exponential(static_cast<double>(mean_gap)));
    if (t > end) break;
    Component* victim = components[rng.next_below(components.size())];
    plan.emplace_back(t, victim->name());
    experiment.sim().schedule_at(t, [victim] { victim->crash(); });
    last = t;
  }
  (void)last;
  return plan;
}

}  // namespace zenith
