// Million-OP soak workload (the PR-4 "stress" tier).
//
// The workload shape is chosen to exercise the batched pipeline honestly:
// G "elephant" groups of M flows each share one endpoint pair — all M flows
// of a group ride the same path, so every path switch sees M same-pass ready
// OPs that the Sequencer can coalesce into real batches. Each round replaces
// every group's flows with higher-priority installs plus deletions of the
// previous rules (the Figure 11 update loop, scaled up), driving a mixed
// install/delete stream of configurable total volume under a light chaos
// schedule that stays off the flow paths (switch blips on bystander switches
// and single-component crashes — disruptive to the controller, invisible to
// the workload's convergence).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dag/compiler.h"
#include "harness/experiment.h"
#include "topo/paths.h"

namespace zenith {

struct SoakConfig {
  std::uint64_t seed = 1;
  /// Elephant groups (distinct endpoint pairs).
  std::size_t groups = 8;
  /// Flows sharing each group's path — the per-switch batching opportunity.
  std::size_t flows_per_group = 16;
  /// Stop after at least this many OPs have converged end to end.
  std::size_t target_ops = 1'000'000;
  /// Endpoint candidates (e.g. fat-tree edge switches); empty = any switch.
  std::vector<SwitchId> endpoints;
  /// ECMP-style path diversity: each group picks its path (seeded) from up
  /// to this many alternative shortest-ish paths instead of always the
  /// deterministic BFS winner. 1 (the default) keeps the classic
  /// single-path behavior byte-identical. Fat-tree BFS concentrates every
  /// pod's traffic on stride-aligned agg/core switches, which no shard map
  /// can balance; real fabrics hash flows across the equal-cost fan, and
  /// the parallel hot-path tier measures against that spread.
  std::size_t path_spread = 1;
  SimTime dag_timeout = seconds(120);
  /// Light chaos: transient blips on non-path switches + single-component
  /// crashes. Off-path by construction, so every round still converges.
  bool chaos = true;
  SimTime chaos_switch_mean_gap = millis(400);
  SimTime chaos_switch_down_time = millis(150);
  SimTime chaos_component_mean_gap = seconds(2);
  /// Full-network hidden-entry scan cadence (in rounds); 0 = only at the end.
  std::size_t deep_check_every = 64;
};

struct SoakResult {
  std::size_t ops_completed = 0;
  std::size_t dags_completed = 0;
  std::size_t rounds = 0;
  std::size_t timeouts = 0;
  std::size_t invariant_violations = 0;
  bool order_ok = true;
  std::size_t switch_blips = 0;
  std::size_t component_crashes = 0;
  /// Simulated time spent in the round loop itself (excludes the post-loop
  /// quiesce window, so short runs do not understate throughput).
  SimTime sim_elapsed = 0;
  std::uint64_t nib_fingerprint = 0;

  /// Converged OPs per *simulated* second — the throughput bench_soak
  /// compares across batch sizes.
  double ops_per_sim_second() const {
    return sim_elapsed <= 0 ? 0.0
                            : static_cast<double>(ops_completed) /
                                  (static_cast<double>(sim_elapsed) / 1e6);
  }
};

class SoakWorkload {
 public:
  SoakWorkload(Experiment* experiment, SoakConfig config);

  /// Installs the initial flow groups, then drives replacement rounds until
  /// target_ops OPs have converged (or a round fails). Returns the tally.
  SoakResult run();

 private:
  struct Group {
    std::vector<FlowId> flows;
    Path path;
    /// Current install OPs per flow, in path-hop order (deleted next round).
    std::vector<std::vector<Op>> flow_ops;
  };

  bool pick_groups();
  /// One full-coverage DAG: fresh installs for every group's flows at
  /// `priority`, plus deletions of all previous rules (empty on round 0).
  /// Each deletion depends only on the same-switch replacement install of
  /// its own flow — a make-before-break edge per hop, NOT a DAG-wide
  /// barrier, so deletions pipeline behind their flow's install chain and
  /// the edge count stays linear in OPs (a leaves x deletions barrier would
  /// be quadratic and serialize the whole round).
  Dag build_round_dag(int priority);
  void schedule_switch_chaos(SoakResult* result);
  void schedule_component_chaos(SoakResult* result);

  Experiment* experiment_;
  SoakConfig config_;
  Rng rng_;
  Rng chaos_rng_;
  std::vector<Group> groups_;
  std::vector<SwitchId> off_path_switches_;
  std::vector<std::string> crashable_components_;
  std::uint32_t next_flow_id_ = 1;
  std::uint32_t next_dag_id_ = 1;
  bool stop_chaos_ = false;
};

/// Records the per-switch OP application order (via the fabric's apply
/// observer) and reduces it to one order-sensitive 64-bit fingerprint: the
/// artifact the batch-size determinism contract is asserted over. Batch
/// elements are observed individually, in application order, so the digest
/// is directly comparable between batched and unbatched runs.
class DeliveryOrderRecorder {
 public:
  /// Hooks the fabric. Call once, before running (replaces any previously
  /// attached apply observer).
  void attach(Fabric& fabric);

  std::size_t applied() const { return applied_; }
  /// Combined digest over all switches (switch-id-sorted), each switch
  /// contributing an FNV-1a chain over its applied (op id, op type) stream.
  std::uint64_t fingerprint() const;

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> per_switch_;
  std::size_t applied_ = 0;
};

}  // namespace zenith
