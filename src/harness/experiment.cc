#include "harness/experiment.h"

#include <cassert>

#include "obs/clock.h"
#include "obs/obs.h"

namespace zenith {

const char* to_string(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kZenithNR: return "Zenith-NR";
    case ControllerKind::kZenithDR: return "Zenith-DR";
    case ControllerKind::kPr: return "PR";
    case ControllerKind::kPrUp: return "PRUp";
    case ControllerKind::kPrNoReconcile: return "PR-NoRecon";
    case ControllerKind::kOdlLike: return "ODL-like";
  }
  return "?";
}

bool is_pr_variant(ControllerKind kind) {
  return kind == ControllerKind::kPr || kind == ControllerKind::kPrUp ||
         kind == ControllerKind::kPrNoReconcile ||
         kind == ControllerKind::kOdlLike;
}

Experiment::Experiment(Topology topo, ExperimentConfig config)
    : config_(config), rng_(config.seed) {
  FabricConfig fabric_config = config_.fabric;
  if (config_.kind == ControllerKind::kOdlLike) {
    // ODL reacts noticeably slower to data-plane health changes (§D.1:
    // "ZENITH's failure detection time is set to match that of ODL" — here
    // we model ODL's own slower default).
    fabric_config.failure_detection_delay = seconds(1);
    fabric_config.recovery_detection_delay = seconds(1);
  }
  fabric_ = std::make_unique<Fabric>(&sim_, std::move(topo), rng_.fork(),
                                     fabric_config);
  switch (config_.kind) {
    case ControllerKind::kZenithNR:
      zenith_ = std::make_unique<ZenithController>(&sim_, fabric_.get(),
                                                   config_.core);
      break;
    case ControllerKind::kZenithDR: {
      CoreConfig core = config_.core;
      core.directed_reconciliation = true;
      zenith_ = std::make_unique<ZenithController>(&sim_, fabric_.get(), core);
      break;
    }
    case ControllerKind::kPr:
    case ControllerKind::kOdlLike: {
      PrConfig pr = config_.kind == ControllerKind::kOdlLike
                        ? make_odl_like_config()
                        : make_pr_config(config_.reconciliation_period);
      pr.core = config_.core;
      pr.recon.period = config_.reconciliation_period;
      pr_ = std::make_unique<PrController>(&sim_, fabric_.get(), pr);
      break;
    }
    case ControllerKind::kPrUp: {
      PrConfig pr = make_prup_config(config_.reconciliation_period);
      pr.core = config_.core;
      pr_ = std::make_unique<PrController>(&sim_, fabric_.get(), pr);
      break;
    }
    case ControllerKind::kPrNoReconcile: {
      PrConfig pr = make_pr_noreconcile_config();
      pr.core = config_.core;
      pr_ = std::make_unique<PrController>(&sim_, fabric_.get(), pr);
      break;
    }
  }
  checker_ = std::make_unique<ConsistencyChecker>(&nib(), fabric_.get());
  order_checker_.attach(*fabric_);
}

ZenithController& Experiment::controller() {
  return pr_ ? pr_->core() : *zenith_;
}

void Experiment::start() {
  if (pr_) {
    pr_->start();
  } else {
    zenith_->start();
  }
}

void Experiment::attach_observability(obs::Observability* o) {
  if (o != nullptr) o->set_clock(obs::sim_clock(&sim_));
  controller().set_observability(o);
  fabric_->set_observability(o);
}

std::optional<SimTime> Experiment::install_and_wait(Dag dag, SimTime timeout) {
  DagId id = dag.id();
  order_checker_.register_dag(dag);
  controller().submit_dag(std::move(dag));
  if (config_.scoped_convergence) {
    return run_until([this, id] { return checker_->converged_scoped(id); },
                     timeout);
  }
  return run_until([this, id] { return checker_->converged(id); }, timeout);
}

std::optional<SimTime> Experiment::run_until(
    const std::function<bool()>& pred, SimTime timeout) {
  SimTime started = sim_.now();
  SimTime deadline = started + timeout;
  while (sim_.now() < deadline) {
    if (pred()) return sim_.now() - started;
    sim_.run_until(std::min(deadline, sim_.now() + config_.poll_interval));
  }
  return pred() ? std::optional<SimTime>(sim_.now() - started) : std::nullopt;
}

}  // namespace zenith
