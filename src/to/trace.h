// Orchestration traces (§6 "Trace Replay"): "We developed a Trace
// Orchestrator (TO) which enforces the execution of a trace by blocking
// modules from proceeding until the trace demands it. It enforces which
// blocked module should be allowed to take a step in the trace and which
// failure to be injected into which component at what step."
//
// A Trace is a sequence of steps: either a grant ("let component X take one
// effective step") or an injection (switch failure/recovery, component
// crash). Traces are produced from model-checker counterexamples
// (library.h) and replayed on the simulator (orchestrator.h).
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "dataplane/abstract_switch.h"

namespace zenith::to {

struct TraceStep {
  enum class Type : std::uint8_t {
    kAllow,            // let `component` take `count` effective steps
    kCrashComponent,   // kill `component` (Watchdog restarts it later)
    kSwitchFail,
    kSwitchRecover,
  };

  Type type = Type::kAllow;
  std::string component;  // kAllow / kCrashComponent
  int count = 1;          // kAllow
  SwitchId sw;            // switch injections
  FailureMode mode = FailureMode::kCompleteTransient;

  std::string to_string() const;
};

struct Trace {
  std::string name;
  /// Which model-checker violation this trace demonstrates.
  std::string violation;
  std::vector<TraceStep> steps;

  std::size_t length() const { return steps.size(); }
  std::string to_string() const;
};

}  // namespace zenith::to
