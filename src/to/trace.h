// Orchestration traces (§6 "Trace Replay"): "We developed a Trace
// Orchestrator (TO) which enforces the execution of a trace by blocking
// modules from proceeding until the trace demands it. It enforces which
// blocked module should be allowed to take a step in the trace and which
// failure to be injected into which component at what step."
//
// A Trace is a sequence of steps: either a grant ("let component X take one
// effective step") or an injection (switch failure/recovery, component
// crash). Traces are produced from model-checker counterexamples
// (library.h) and replayed on the simulator (orchestrator.h).
//
// Chaos-campaign reproducers (src/chaos/) extend the vocabulary with timed
// injections: each step may carry a `delay` the orchestrator lets the
// simulation run freely for before applying the step, and the injection set
// covers link flaps, complete OFC/DE microservice failures and burst reply
// loss (an abrupt controller switchover losing its sockets' buffers).
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "dataplane/abstract_switch.h"

namespace zenith::to {

struct TraceStep {
  enum class Type : std::uint8_t {
    kAllow,            // let `component` take `count` effective steps
    kCrashComponent,   // kill `component` (Watchdog restarts it later)
    kSwitchFail,
    kSwitchRecover,
    kLinkFail,         // link stops carrying traffic; endpoints stay up
    kLinkRecover,
    kCrashOfc,         // complete OFC microservice failure (standby takeover)
    kCrashDe,          // complete DE microservice failure (standby takeover)
    kDropReplies,      // abrupt OFC switchover: every in-flight reply is lost
                       // with the old instance's sockets, then the standby
                       // takes over and re-issues SENT OPs
    // Replicated-control-plane injections (no-ops when the experiment's
    // controller has replication disabled, so these traces replay anywhere).
    kReplKillLeader,   // kill `shard`'s current leader replica
    kReplRevive,       // revive every dead replica of `shard`
    kReplPartitionLeader,  // isolate `shard`'s leader from its peers
    kReplHeal,         // heal `shard`'s replica-to-replica partitions
    kReplLeaseStall,   // wedge `shard`'s leader heartbeats (lease expiry)
    kReplLeaseResume,
  };

  Type type = Type::kAllow;
  std::string component;  // kAllow / kCrashComponent
  int count = 1;          // kAllow
  SwitchId sw;            // switch injections
  FailureMode mode = FailureMode::kCompleteTransient;
  LinkId link;            // link injections
  std::size_t shard = 0;  // kRepl* injections
  /// Simulated time the orchestrator advances (components running freely)
  /// before applying this step. Zero replays back-to-back, the counterexample
  /// style; chaos reproducers preserve their schedule's gaps here.
  SimTime delay = 0;

  std::string to_string() const;
};

struct Trace {
  std::string name;
  /// Which model-checker violation this trace demonstrates.
  std::string violation;
  std::vector<TraceStep> steps;

  std::size_t length() const { return steps.size(); }
  std::string to_string() const;
};

}  // namespace zenith::to
