#include "to/orchestrator.h"

#include "common/logging.h"

namespace zenith::to {

TraceOrchestrator::TraceOrchestrator(Experiment* experiment,
                                     bool gate_components)
    : experiment_(experiment) {
  if (!gate_components) return;
  orchestrating_ = true;  // gates engage at construction
  for (Component* c : experiment_->controller().components()) {
    const std::string name = c->name();
    budget_[name] = 0;
    effective_steps_[name] = 0;
    c->set_permit([this, name] {
      return !orchestrating_ || budget_.at(name) > 0;
    });
    c->set_step_observer([this, name](bool did_work) {
      if (!orchestrating_ || !did_work) return;
      ++effective_steps_[name];
      if (budget_[name] > 0) --budget_[name];
    });
  }
}

TraceOrchestrator::~TraceOrchestrator() { release(); }

void TraceOrchestrator::replay(const Trace& trace, SimTime grant_timeout) {
  for (const TraceStep& step : trace.steps) {
    if (step.delay > 0) experiment_->run_for(step.delay);
    switch (step.type) {
      case TraceStep::Type::kAllow: {
        auto it = budget_.find(step.component);
        if (it == budget_.end()) break;  // unknown component: skip
        it->second += step.count;
        Component* c = experiment_->controller().component(step.component);
        if (c != nullptr) c->kick();
        // Wait until the grant is consumed (or lapse on timeout: the
        // component may have nothing to do at this point of the schedule).
        auto consumed = experiment_->run_until(
            [&] { return budget_.at(step.component) == 0; }, grant_timeout);
        if (!consumed.has_value()) {
          budget_[step.component] = 0;
          ++grants_lapsed_;
        }
        break;
      }
      case TraceStep::Type::kCrashComponent:
        experiment_->controller().crash_component(step.component);
        break;
      case TraceStep::Type::kSwitchFail:
        experiment_->fabric().inject_failure(step.sw, step.mode);
        break;
      case TraceStep::Type::kSwitchRecover:
        experiment_->fabric().inject_recovery(step.sw);
        break;
      case TraceStep::Type::kLinkFail:
        experiment_->fabric().inject_link_failure(step.link);
        break;
      case TraceStep::Type::kLinkRecover:
        experiment_->fabric().inject_link_recovery(step.link);
        break;
      case TraceStep::Type::kCrashOfc:
        experiment_->controller().crash_ofc();
        break;
      case TraceStep::Type::kCrashDe:
        experiment_->controller().crash_de();
        break;
      case TraceStep::Type::kDropReplies:
        // The abrupt-switchover composition: the old instance's socket
        // buffers (queued and in-flight replies) are gone for good, and the
        // standby takes over — its SENT-OP re-issue is what makes the loss
        // survivable (ZenithController::ofc_takeover).
        experiment_->fabric().drop_all_in_flight_replies();
        experiment_->controller().crash_ofc();
        break;
      // Replication injections are guarded no-ops on an unreplicated
      // controller, so shrunk reproducers replay under any config.
      case TraceStep::Type::kReplKillLeader:
        if (auto* repl = experiment_->controller().repl(); repl != nullptr) {
          repl->kill_shard_leader(step.shard);
        }
        break;
      case TraceStep::Type::kReplRevive:
        if (auto* repl = experiment_->controller().repl(); repl != nullptr) {
          repl->revive_shard(step.shard);
        }
        break;
      case TraceStep::Type::kReplPartitionLeader:
        if (auto* repl = experiment_->controller().repl(); repl != nullptr) {
          repl->partition_shard_leader(step.shard);
        }
        break;
      case TraceStep::Type::kReplHeal:
        if (auto* repl = experiment_->controller().repl(); repl != nullptr) {
          repl->heal_shard(step.shard);
        }
        break;
      case TraceStep::Type::kReplLeaseStall:
        if (auto* repl = experiment_->controller().repl(); repl != nullptr) {
          repl->stall_heartbeats(step.shard);
        }
        break;
      case TraceStep::Type::kReplLeaseResume:
        if (auto* repl = experiment_->controller().repl(); repl != nullptr) {
          repl->resume_heartbeats(step.shard);
        }
        break;
    }
  }
  release();
}

void TraceOrchestrator::release() {
  if (!orchestrating_) return;
  orchestrating_ = false;
  for (Component* c : experiment_->controller().components()) c->kick();
}

}  // namespace zenith::to
