// Trace replay on a live simulated deployment.
//
// While orchestrated, every controller component blocks before each step
// until the orchestrator grants it. The orchestrator walks the trace: a
// kAllow step grants the named component budget for `count` effective steps
// and waits (bounded) for it to consume them; injections fire immediately.
// After the trace is exhausted the orchestrator releases all components and
// the run continues freely — convergence is then measured as usual.
#pragma once

#include <unordered_map>

#include "harness/experiment.h"
#include "to/trace.h"

namespace zenith::to {

class TraceOrchestrator {
 public:
  /// With `gate_components` false, components run freely and the trace only
  /// drives timed injections (chaos-campaign reproducers); kAllow steps are
  /// then no-ops beyond their delay.
  explicit TraceOrchestrator(Experiment* experiment,
                             bool gate_components = true);
  ~TraceOrchestrator();

  /// Replays the trace. Each kAllow waits at most `grant_timeout` sim time
  /// for the component to use its budget (a component with an empty input
  /// queue may legitimately have nothing to do; the budget then lapses).
  void replay(const Trace& trace, SimTime grant_timeout = millis(50));

  /// Removes all gates; components run freely afterwards.
  void release();

  std::size_t grants_lapsed() const { return grants_lapsed_; }

 private:
  Experiment* experiment_;
  std::unordered_map<std::string, int> budget_;
  std::unordered_map<std::string, std::uint64_t> effective_steps_;
  bool orchestrating_ = false;
  std::size_t grants_lapsed_ = 0;
};

}  // namespace zenith::to
