// Trace library generation: convert model-checker counterexamples (found on
// §3.9-buggy spec variants) into orchestration traces.
//
// This mirrors the paper's workflow: "we run ZENITH and each baseline on
// the set of TLA+ traces obtained during the process of developing the
// ZENITH-core specification" (§6). Our during-development stand-ins are the
// bug knobs of SpecBugs: each (bug, instance, failure-mode) combination
// that produces a violation yields one trace.
#pragma once

#include <vector>

#include "mc/checker.h"
#include "to/trace.h"

namespace zenith::to {

/// Converts one counterexample into an orchestration schedule. Model
/// component steps become kAllow grants; model failure transitions become
/// fabric injections. `num_workers` must match the replay experiment's
/// worker count.
Trace from_counterexample(const mc::CheckResult& result,
                          const mc::ModelConfig& config, std::string name,
                          std::size_t num_workers = 2);

/// Runs the checker over the bug/instance matrix and returns up to `count`
/// violation traces (the paper's 17).
std::vector<Trace> build_trace_library(std::size_t count = 17);

/// Curated chaos reproducers: minimal fault schedules found by the chaos
/// campaign shrinker (src/chaos/shrink.h) on deliberately buggy builds and
/// checked in as regression traces. Each replays on a diamond-topology
/// campaign (initial_flows=2, update_period=30ms) with the bug knob named
/// in the trace enabled; chaos_test asserts they still trip the oracle and
/// that a clean build replays them without violation.
std::vector<Trace> chaos_regression_traces();

}  // namespace zenith::to
