#include "to/trace.h"

#include <sstream>

namespace zenith::to {

std::string TraceStep::to_string() const {
  std::ostringstream out;
  if (delay > 0) out << "+" << to_seconds(delay) << "s ";
  switch (type) {
    case Type::kAllow:
      out << "allow " << component << " x" << count;
      break;
    case Type::kCrashComponent:
      out << "crash " << component;
      break;
    case Type::kSwitchFail:
      out << "fail sw" << sw.value()
          << (mode == FailureMode::kCompletePermanent
                  ? " (permanent)"
                  : mode == FailureMode::kPartialTransient ? " (partial)"
                                                           : " (complete)");
      break;
    case Type::kSwitchRecover:
      out << "recover sw" << sw.value();
      break;
    case Type::kLinkFail:
      out << "fail link" << link.value();
      break;
    case Type::kLinkRecover:
      out << "recover link" << link.value();
      break;
    case Type::kCrashOfc:
      out << "crash OFC";
      break;
    case Type::kCrashDe:
      out << "crash DE";
      break;
    case Type::kDropReplies:
      out << "drop in-flight replies (abrupt OFC switchover)";
      break;
    case Type::kReplKillLeader:
      out << "kill repl leader shard" << shard;
      break;
    case Type::kReplRevive:
      out << "revive repl shard" << shard;
      break;
    case Type::kReplPartitionLeader:
      out << "partition repl leader shard" << shard;
      break;
    case Type::kReplHeal:
      out << "heal repl shard" << shard;
      break;
    case Type::kReplLeaseStall:
      out << "stall repl lease shard" << shard;
      break;
    case Type::kReplLeaseResume:
      out << "resume repl lease shard" << shard;
      break;
  }
  return out.str();
}

std::string Trace::to_string() const {
  std::ostringstream out;
  out << "trace '" << name << "' (" << steps.size() << " steps";
  if (!violation.empty()) out << "; demonstrates: " << violation;
  out << ")\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    out << "  " << i << ": " << steps[i].to_string() << "\n";
  }
  return out.str();
}

}  // namespace zenith::to
