#include "to/library.h"

#include <set>

#include "common/logging.h"

namespace zenith::to {

namespace {

void append_allow(Trace& trace, const std::string& component) {
  if (!trace.steps.empty() &&
      trace.steps.back().type == TraceStep::Type::kAllow &&
      trace.steps.back().component == component) {
    ++trace.steps.back().count;
    return;
  }
  TraceStep step;
  step.type = TraceStep::Type::kAllow;
  step.component = component;
  trace.steps.push_back(std::move(step));
}

}  // namespace

Trace from_counterexample(const mc::CheckResult& result,
                          const mc::ModelConfig& config, std::string name,
                          std::size_t num_workers) {
  Trace trace;
  trace.name = std::move(name);
  trace.violation = result.violation;
  using K = mc::Action::Kind;
  for (const mc::TraceEvent& event : result.trace) {
    switch (event.action.kind) {
      case K::kSeqSchedule:
      case K::kSeqBatchPass:
        append_allow(trace, "sequencer0");
        break;
      case K::kWorkerTake:
      case K::kWorkerRecord:
      case K::kWorkerAct:
        append_allow(trace,
                     "worker" + std::to_string(event.action.subject %
                                               num_workers));
        break;
      case K::kMonitoring:
        append_allow(trace, "monitoring");
        break;
      case K::kTopoEvent:
      case K::kCleanupAck:
      case K::kDeferredReset:
        append_allow(trace, "topo_handler");
        break;
      case K::kSwitchProcess:
      case K::kSwitchEmitAck:
      case K::kAppSwitchDag:
        break;  // autonomous in the simulator (switches and apps ungated)
      case K::kSwitchFail: {
        TraceStep step;
        step.type = TraceStep::Type::kSwitchFail;
        step.sw = SwitchId(event.action.subject);
        step.mode = config.complete_failure
                        ? FailureMode::kCompleteTransient
                        : FailureMode::kPartialTransient;
        trace.steps.push_back(std::move(step));
        break;
      }
      case K::kSwitchRecover: {
        TraceStep step;
        step.type = TraceStep::Type::kSwitchRecover;
        step.sw = SwitchId(event.action.subject);
        trace.steps.push_back(std::move(step));
        break;
      }
      case K::kWorkerCrash: {
        TraceStep step;
        step.type = TraceStep::Type::kCrashComponent;
        step.component =
            "worker" + std::to_string(event.action.subject % num_workers);
        trace.steps.push_back(std::move(step));
        break;
      }
    }
  }
  return trace;
}

std::vector<Trace> build_trace_library(std::size_t count) {
  std::vector<Trace> library;
  std::set<std::string> seen;

  struct BugCase {
    const char* name;
    void (*apply)(SpecBugs&);
    /// Bugs living between a component's internal steps need the
    /// fine-grained (non-POR) model to manifest.
    bool fine_grained;
  };
  const BugCase bug_cases[] = {
      {"mark-up-before-reset",
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, false},
      {"mark-up-before-reset-fine",
       [](SpecBugs& b) { b.mark_up_before_reset = true; }, true},
      {"skip-recovery-cleanup",
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, false},
      {"skip-recovery-cleanup-fine",
       [](SpecBugs& b) { b.skip_recovery_cleanup = true; }, true},
      {"direct-clear-tcam",
       [](SpecBugs& b) { b.direct_clear_tcam = true; }, true},
      {"send-before-record+skip-cleanup",
       [](SpecBugs& b) {
         b.send_before_record = true;
         b.skip_recovery_cleanup = true;
       }, true},
      {"mark-up+direct-clear",
       [](SpecBugs& b) {
         b.mark_up_before_reset = true;
         b.direct_clear_tcam = true;
       }, true},
      {"pop-before-process",
       [](SpecBugs& b) { b.pop_before_process = true; }, true},
  };

  struct InstanceCase {
    const char* name;
    mc::ModelConfig (*make)();
  };
  const InstanceCase instances[] = {
      {"table4", mc::ModelConfig::table4_instance},
      {"transient-recovery", mc::ModelConfig::transient_recovery_instance},
  };

  for (const InstanceCase& instance : instances) {
    for (const BugCase& bug : bug_cases) {
      for (bool complete : {true, false}) {
        for (int budget : {1, 2}) {
          if (library.size() >= count) return library;
          mc::ModelConfig config = instance.make();
          config.complete_failure = complete;
          config.allow_recovery = true;
          config.max_switch_failures = budget;
          config.opt_por = !bug.fine_grained;
          config.opt_symmetry = true;
          config.opt_compositional = !bug.fine_grained;
          bug.apply(config.bugs);
          if (config.bugs.pop_before_process) {
            // The lost-event bug needs a worker crash to manifest.
            config.max_worker_crashes = 1;
          }
          mc::CheckerOptions options;
          options.record_traces = true;
          options.max_states = 400000;
          options.time_limit_seconds = 30.0;
          mc::CheckResult result = mc::check(mc::PipelineModel(config),
                                             options);
          if (result.ok || result.trace.empty()) continue;
          std::string name = std::string(instance.name) + "/" + bug.name +
                             (complete ? "/complete" : "/partial") + "/f" +
                             std::to_string(budget);
          // Dedup structurally identical counterexamples.
          Trace trace = from_counterexample(result, config, name);
          std::string signature = trace.violation;
          for (const TraceStep& step : trace.steps) {
            signature += "|" + step.to_string();
          }
          if (!seen.insert(signature).second) continue;
          ZLOG_DEBUG("trace library: %s (%zu steps): %s", name.c_str(),
                     trace.steps.size(), trace.violation.c_str());
          library.push_back(std::move(trace));
        }
      }
    }
  }
  return library;
}

std::vector<Trace> chaos_regression_traces() {
  auto injection = [](TraceStep::Type type, SimTime delay, SwitchId sw,
                      FailureMode mode) {
    TraceStep step;
    step.type = type;
    step.delay = delay;
    step.sw = sw;
    step.mode = mode;
    return step;
  };

  std::vector<Trace> library;

  // §G's mark-UP-before-reset ordering bug: the switch is marked UP before
  // its stale OPs are reset, so a DAG update admitted in that window races
  // the deferred reset and leaves a hidden entry. Shrunk from a 23-event
  // randomized schedule (diamond topology, campaign seed 2) to fail+recover
  // of one switch. The delays are exact: the workload stream is derived
  // from the campaign seed (the trailing /seedN component of the name), and
  // the race only fires when the recovery lands while that stream's install
  // is in flight.
  {
    Trace trace;
    trace.name = "chaos/mark-up-before-reset/complete-transient/seed2";
    trace.violation =
        "hidden entry: OP reset to NONE while installed on a healthy switch "
        "(core.bugs.mark_up_before_reset)";
    trace.steps.push_back(injection(TraceStep::Type::kSwitchFail,
                                    micros(1327111), SwitchId(3),
                                    FailureMode::kCompleteTransient));
    trace.steps.push_back(injection(TraceStep::Type::kSwitchRecover,
                                    micros(950263), SwitchId(3),
                                    FailureMode::kCompleteTransient));
    library.push_back(std::move(trace));
  }

  // The same bug under a partial failure (control channel lost, TCAM
  // retained): recovery skips the TCAM rebuild but the premature UP mark
  // still races the reset. Shrunk from a 21-event schedule (seed 1).
  {
    Trace trace;
    trace.name = "chaos/mark-up-before-reset/partial-transient/seed1";
    trace.violation =
        "hidden entry: OP reset to NONE while installed on a healthy switch "
        "(core.bugs.mark_up_before_reset, partial failure)";
    trace.steps.push_back(injection(TraceStep::Type::kSwitchFail,
                                    micros(3496266), SwitchId(1),
                                    FailureMode::kPartialTransient));
    trace.steps.push_back(injection(TraceStep::Type::kSwitchRecover,
                                    micros(892827), SwitchId(1),
                                    FailureMode::kPartialTransient));
    library.push_back(std::move(trace));
  }

  return library;
}

}  // namespace zenith::to
