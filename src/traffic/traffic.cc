#include "traffic/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace zenith {

Resolution TrafficModel::resolve(const Demand& demand) const {
  Resolution out;
  const Topology& topo = fabric_->topology();
  SwitchId cur = demand.src;
  std::unordered_set<SwitchId> visited;
  out.path.push_back(cur);
  // Generous hop cap: any simple path fits.
  std::size_t max_hops = topo.switch_count() + 1;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    if (!fabric_->alive(cur)) {
      out.outcome = DeliveryOutcome::kDeadSwitch;
      return out;
    }
    if (cur == demand.dst) {
      out.outcome = DeliveryOutcome::kDelivered;
      return out;
    }
    if (visited.count(cur)) {
      out.outcome = DeliveryOutcome::kLoop;
      return out;
    }
    visited.insert(cur);
    auto entry = fabric_->at(cur).lookup(demand.dst);
    if (!entry) {
      out.outcome = DeliveryOutcome::kNoRule;
      return out;
    }
    SwitchId next = entry->rule.next_hop;
    auto link = topo.link_between(cur, next);
    if (!link.ok() || !fabric_->link_alive(link.value())) {
      out.outcome = DeliveryOutcome::kBrokenLink;
      return out;
    }
    out.path.push_back(next);
    cur = next;
  }
  out.outcome = DeliveryOutcome::kLoop;
  return out;
}

std::vector<TrafficModel::FlowReport> TrafficModel::evaluate(
    const std::vector<Demand>& demands) const {
  const Topology& topo = fabric_->topology();
  std::vector<FlowReport> reports;
  reports.reserve(demands.size());
  for (const Demand& d : demands) {
    FlowReport r;
    r.demand = d;
    r.resolution = resolve(d);
    reports.push_back(std::move(r));
  }

  // Progressive filling (max-min fairness). Flows are capped by their demand
  // rate; links by capacity.
  struct LinkState {
    double residual;
    std::vector<std::size_t> flows;  // indices into reports
  };
  std::unordered_map<std::uint32_t, LinkState> links;
  std::vector<double> allocation(reports.size(), 0.0);
  std::vector<bool> frozen(reports.size(), true);
  std::vector<std::vector<std::uint32_t>> flow_links(reports.size());

  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    if (r.resolution.outcome != DeliveryOutcome::kDelivered) continue;
    frozen[i] = false;
    const Path& path = r.resolution.path;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      auto link = topo.link_between(path[h], path[h + 1]);
      // resolve() already validated adjacency.
      std::uint32_t lid = link.value().value();
      auto [it, inserted] = links.emplace(lid, LinkState{});
      if (inserted) it->second.residual = topo.link(LinkId(lid)).capacity_gbps;
      it->second.flows.push_back(i);
      flow_links[i].push_back(lid);
    }
  }

  // Iterate: raise all unfrozen flows equally until a link saturates or a
  // flow reaches its demand.
  while (true) {
    std::size_t active = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (!frozen[i]) ++active;
    }
    if (active == 0) break;

    double limit = std::numeric_limits<double>::infinity();
    // Link bottleneck: residual split among its unfrozen flows.
    for (auto& [lid, state] : links) {
      std::size_t unfrozen = 0;
      for (std::size_t f : state.flows) {
        if (!frozen[f]) ++unfrozen;
      }
      if (unfrozen > 0) {
        limit = std::min(limit, state.residual / static_cast<double>(unfrozen));
      }
    }
    // Demand caps.
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (!frozen[i]) {
        limit = std::min(limit, reports[i].demand.rate_gbps - allocation[i]);
      }
    }
    if (!std::isfinite(limit) || limit <= 1e-12) limit = 0.0;

    // Apply the increment.
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (frozen[i]) continue;
      allocation[i] += limit;
      for (std::uint32_t lid : flow_links[i]) links[lid].residual -= limit;
    }
    // Freeze saturated flows.
    bool froze_any = false;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (frozen[i]) continue;
      bool at_demand = allocation[i] >= reports[i].demand.rate_gbps - 1e-9;
      bool at_link = false;
      for (std::uint32_t lid : flow_links[i]) {
        if (links[lid].residual <= 1e-9) {
          at_link = true;
          break;
        }
      }
      if (at_demand || at_link || limit == 0.0) {
        frozen[i] = true;
        froze_any = true;
      }
    }
    if (!froze_any) break;  // numerical safety
  }

  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].throughput_gbps = allocation[i];
  }
  return reports;
}

double TrafficModel::total_throughput(const std::vector<Demand>& demands) const {
  double total = 0.0;
  for (const FlowReport& r : evaluate(demands)) total += r.throughput_gbps;
  return total;
}

}  // namespace zenith
