// Flow-level traffic model.
//
// Reproduces the throughput figures (2, 14, 16, A.2): given the *actual*
// flow tables installed on switches, resolve each demand's realized path by
// walking lookup results hop by hop, detect blackholes (no matching rule, or
// a dead switch on the path — the Figure 2 hidden-entry scenario), and share
// link capacity max-min fairly among delivered flows.
#pragma once

#include <vector>

#include "common/ids.h"
#include "dataplane/fabric.h"
#include "topo/paths.h"
#include "topo/topology.h"

namespace zenith {

struct Demand {
  FlowId flow;
  SwitchId src;
  SwitchId dst;
  double rate_gbps = 1.0;
};

enum class DeliveryOutcome : std::uint8_t {
  kDelivered,
  kNoRule,        // some switch had no entry for the destination
  kDeadSwitch,    // path traverses a failed switch
  kLoop,          // forwarding loop detected
  kBrokenLink,    // rule points at a non-adjacent next hop
};

struct Resolution {
  DeliveryOutcome outcome = DeliveryOutcome::kNoRule;
  Path path;  // hops actually traversed (src..dst when delivered)
};

class TrafficModel {
 public:
  explicit TrafficModel(const Fabric* fabric) : fabric_(fabric) {}

  /// Walks flow tables from src toward dst.
  Resolution resolve(const Demand& demand) const;

  struct FlowReport {
    Demand demand;
    Resolution resolution;
    double throughput_gbps = 0.0;  // 0 for undelivered flows
  };

  /// Max-min fair allocation (progressive filling) of delivered flows over
  /// link capacities; undelivered flows get zero.
  std::vector<FlowReport> evaluate(const std::vector<Demand>& demands) const;

  /// Sum of allocated throughput across all demands.
  double total_throughput(const std::vector<Demand>& demands) const;

 private:
  const Fabric* fabric_;
};

}  // namespace zenith
