// The Network Information Base.
//
// "A logically centralized in-memory database that stores the network state,
// shares the state with different components, and is a central point for
// communication between microservices" (Table 1). Per assumption A2 the NIB
// is atomic, consistent and never fails; a production deployment would back
// it with a replicated database (the paper cites MongoDB). In the simulator
// every NIB call is a synchronous method on this object, which models
// exactly that assumption.
//
// All durable controller state lives here: OP payloads and lifecycle status,
// per-switch health, DAG bookkeeping, worker in-progress markers (the
// Listing 3 crash-recovery slots), and the controller's view of each
// switch's routing state (R_c in Table 2). Components keep *no* durable
// state of their own — that is what makes component crash + Watchdog restart
// recoverable (§3.9 "state recording and crash recovery").
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/spsc_ring.h"
#include "dag/dag.h"
#include "nib/consistency.h"
#include "nib/events.h"
#include "sim/fifo.h"

namespace zenith {

enum class SwitchHealth : std::uint8_t {
  kUp,
  kDown,
  kRecovering,  // recovery observed; cleanup (CLEAR_TCAM) still in progress
};

const char* to_string(SwitchHealth h);

class Nib {
 public:
  using EventSink = NadirFifo<NibEvent>*;

  /// Registers a subscriber queue that receives every published event.
  void subscribe(EventSink sink) { sinks_.push_back(sink); }

  // ---- sharding (PR 8) -----------------------------------------------------
  //
  // The NIB partitions its hot mutable state by switch: each shard owns the
  // secondary status indexes of its switches, a padded write counter, and a
  // lock-free SPSC event ring into that shard's NIB Event Handler. shards
  // <= 1 (the default) keeps the unsharded single-index layout and the
  // classic subscribe()-queue event path byte-identical.

  /// The canonical switch -> shard map: the same stable splitmix64 mix the
  /// worker pool uses (CoreContext::shard_of), so ownership is a pure
  /// function of (switch id, shard count) — identical across runs, sharded
  /// or not. A mixing hash, not a plain modulo: topology generators hand
  /// out ids with structured strides (fat-tree pod blocks), and the
  /// deterministic routing concentrates load on stride-aligned switches (a
  /// pod's first agg), so `id % shards` can land every hot switch on one
  /// shard. With shards <= 1 everything maps to shard 0.
  static std::size_t shard_slot(SwitchId sw, std::size_t shards) {
    if (shards <= 1) return 0;
    std::uint64_t x =
        static_cast<std::uint64_t>(sw.value()) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards);
  }

  /// Splits the indexes/counters into `shards` partitions. Must be called
  /// before any state is registered (fresh NIB only).
  void configure_sharding(std::size_t shards);
  std::size_t shard_count() const { return shards_; }
  std::size_t shard_of(SwitchId sw) const { return shard_slot(sw, shards_); }

  /// Attaches shard `shard`'s event ring and wake hook. Once any ring is
  /// attached, publish() routes switch-keyed events (kOpStatusChanged,
  /// kSwitchHealthChanged) to the owning shard's ring and everything else
  /// to shard 0's — while still fanning every event out to the classic
  /// subscribe() sinks (the chaos oracle's hidden-probe tap). `wake` fires
  /// on every empty -> non-empty ring transition, on the simulator thread.
  void set_shard_ring(std::size_t shard, SpscRing<NibEvent>* ring,
                      std::function<void()> wake);

  /// Opens a parallel commit section: until end_parallel_commits() the ONLY
  /// legal mutations are commit_ack_batch calls, one serial lane per shard
  /// (a lane may apply many batches, in order), each touching only its own
  /// shard's switches. Events produced inside the section are captured per
  /// shard and replayed — rings, sinks and wakes — in ascending shard order
  /// (FIFO within each shard) at end_parallel_commits(), so a pool-parallel
  /// section is byte-identical to applying the same commits serially in
  /// shard order. Caller: the CommitPump, inside one atomic simulator step
  /// (no other component runs concurrently).
  void begin_parallel_commits();
  void end_parallel_commits();

  // ---- OP table ------------------------------------------------------------

  /// Registers the OP payload (idempotent for identical payloads).
  void put_op(const Op& op);
  bool has_op(OpId id) const { return ops_.count(id) > 0; }
  const Op& op(OpId id) const { return ops_.at(id); }

  OpStatus op_status(OpId id) const;
  /// Writes the status and publishes kOpStatusChanged if it changed.
  void set_op_status(OpId id, OpStatus status);

  /// All OPs targeting `sw` whose status is in `filter`, sorted by id.
  /// Served from the per-switch x per-status index: O(result), not O(|ops|).
  std::vector<OpId> ops_on_switch(SwitchId sw, StatusMask filter) const;

  /// All OPs (any switch) currently in `status`, sorted by id. Served from
  /// the per-status index: O(result), not O(|ops|).
  std::vector<OpId> ops_with_status(OpStatus status) const;

  /// Bulk-load pre-existing state without publishing events (used to set up
  /// experiments with populated tables; a real deployment would inherit
  /// this state from the database, not generate events for it).
  void preload_op(const Op& op, OpStatus status, bool in_view);

  /// Commits one batch-ACK as a single NIB transaction (A2 atomicity at
  /// batch granularity): every OP in `ops` flips to DONE and the controller
  /// view of `sw` is edited per OP type. Publishes ONE coalesced
  /// kOpStatusChanged event whose `batch` lists every committed OP — the
  /// event-routing pipeline pays per batch, not per OP; consumers tracking
  /// per-OP state expand the list. OPs this NIB never registered (orphans
  /// of a previous master incarnation) are skipped; returns the number
  /// committed.
  std::size_t commit_ack_batch(SwitchId sw, const std::vector<Op>& ops);

  // ---- adaptive consistency (PR 10; see nib/consistency.h) ------------------
  //
  // With eventual_installs enabled, install-only ACK batches commit into a
  // bounded eventual apply log instead of applying synchronously: the batch
  // is durable immediately (it survives OFC instance failures, like the
  // event queue), but statuses/views/events publish only when the apply
  // cursor reaches it. All-strong (the default) never touches any of this —
  // the log stays empty and every code path below is dead.

  void configure_consistency(const ConsistencyConfig& config) {
    consistency_ = config;
  }
  const ConsistencyConfig& consistency() const { return consistency_; }

  /// Eventual-class commit: appends one install-only ACK batch to the
  /// eventual apply log. If the append would push the pending count past
  /// the staleness bound, the oldest entries are applied inline first (E1
  /// holds structurally at every instant). Returns the number of ops
  /// recorded. Simulator-thread only (never inside a parallel section).
  std::size_t eventual_commit_batch(SwitchId sw, std::vector<Op> ops);

  /// Advances the apply cursor by up to `limit` entries (0 = drain all).
  /// Each applied entry runs the normal commit_ack_batch transaction —
  /// status flips, view edits, one coalesced event — filtered to ops still
  /// SENT (a takeover or recovery reset may have re-armed them since the
  /// commit was recorded). Returns entries applied.
  std::size_t apply_eventual(std::size_t limit = 0);

  /// Strong-class barrier: drains the entire eventual log so a strong
  /// transaction observes no pending eventual state (E2). Every strong
  /// path calls this first — sequencer delete release, recovery resets,
  /// CLEAR_TCAM commits, takeover requeues. Returns entries applied.
  std::size_t strong_barrier();

  /// Hook fired on every empty -> non-empty transition of the eventual log
  /// (the EventualApplyPump's wake).
  void set_eventual_wake(std::function<void()> wake) {
    eventual_wake_ = std::move(wake);
  }

  // E1/E2 accounting, read by the campaign oracle and bench_consistency.
  std::uint64_t eventual_committed() const { return eventual_committed_; }
  std::uint64_t eventual_applied() const { return eventual_applied_; }
  std::size_t eventual_pending() const { return eventual_log_.size(); }
  /// High-water pending count over the run; E1 demands <= staleness_bound.
  std::uint64_t eventual_max_lag() const { return eventual_max_lag_; }
  std::uint64_t eventual_barrier_count() const { return eventual_barriers_; }
  /// E2 violation counter: strong-class commit transactions (delete-bearing
  /// batches) that executed while eventual entries were pending. A correct
  /// build keeps this at zero — every strong path barriers first.
  std::uint64_t strong_commits_with_pending() const {
    return strong_commits_with_pending_;
  }

  // ---- switch health -------------------------------------------------------

  void register_switch(SwitchId sw);
  SwitchHealth switch_health(SwitchId sw) const;
  bool switch_up(SwitchId sw) const {
    return switch_health(sw) == SwitchHealth::kUp;
  }
  /// Writes health and publishes kSwitchHealthChanged on transitions into or
  /// out of kUp (components care about usability, not the recovering
  /// sub-state).
  void set_switch_health(SwitchId sw, SwitchHealth health);
  /// All registered switches, sorted by id. The sorted vector is cached and
  /// only rebuilt after register_switch — convergence probes call this in
  /// loops, so re-sorting per call was a measurable hot path.
  const std::vector<SwitchId>& switches() const;

  // ---- link/port health (topology state T_c, Table 2) -----------------------

  /// Records a link transition and publishes kTopologyChanged.
  void set_link_up(LinkId link, bool up);
  bool link_up(LinkId link) const { return !down_links_.count(link); }
  const std::unordered_set<LinkId>& down_links() const { return down_links_; }

  // ---- controller's routing view (R_c) --------------------------------------

  /// Marks `op` as installed on its switch in the controller view.
  void view_add_installed(SwitchId sw, OpId op);
  void view_remove_installed(SwitchId sw, OpId op);
  void view_clear_switch(SwitchId sw);
  const std::unordered_set<OpId>& view_installed(SwitchId sw) const;

  // ---- DAG table ------------------------------------------------------------

  void put_dag(Dag dag);
  bool has_dag(DagId id) const { return dags_.count(id) > 0; }
  const Dag& dag(DagId id) const { return dags_.at(id); }
  void remove_dag(DagId id);
  /// The most recently accepted DAG (the controller's current target).
  std::optional<DagId> current_dag() const { return current_dag_; }
  void set_current_dag(std::optional<DagId> id) { current_dag_ = id; }

  /// Publishes kDagDone (used by apps and the harness's convergence probe).
  void publish_dag_done(DagId id);
  void publish_dag_accepted(DagId id);

  /// Durable "controller certified this DAG as converged" flag.
  void mark_dag_done(DagId id);
  void clear_dag_done(DagId id);
  bool dag_is_done(DagId id) const { return done_dags_.count(id) > 0; }

  // ---- worker crash-recovery slots (Listing 3) ------------------------------

  void set_worker_state(WorkerId worker, std::optional<OpId> op);
  std::optional<OpId> worker_state(WorkerId worker) const;

  // ---- write accounting ------------------------------------------------------

  /// Number of NIB writes performed; reconciliation's NIB-update bottleneck
  /// (Figure 4b) is modeled by charging simulated time per write in the PR
  /// reconciler, and tests use the counter to verify write volumes. Stored
  /// as one cache-line-padded counter per shard (parallel commit sections
  /// bump them concurrently); the total is the sum.
  std::uint64_t write_count() const;

  // ---- state fingerprint -----------------------------------------------------

  /// Canonical 64-bit digest (FNV-1a over a sorted serialization) of the
  /// durable controller state: OP statuses, the controller view R_c, switch
  /// and link health, DAG bookkeeping and the worker in-progress slots.
  /// write_count_ is deliberately excluded — it is accounting, and batching
  /// legitimately reaches the same state through a different number of
  /// writes. The batch-size determinism contract (CoreConfig::batch_size)
  /// and the golden-fingerprint corpus are asserted over this digest.
  std::uint64_t state_fingerprint() const;

  /// Digest of the slice of durable state owned by shard `shard` under a
  /// `shards`-way shard_slot partition (shard 0 additionally owns the
  /// non-switch-keyed state: links, DAG bookkeeping, worker slots). Pure
  /// read-side function of the partition parameters — computable on ANY
  /// Nib, sharded or not — so the equivalence sweep can fold the shards of
  /// a sharded run and compare against the same fold of an unsharded run.
  std::uint64_t shard_fingerprint(std::size_t shard, std::size_t shards) const;

  /// shard_fingerprint(0..shards-1, shards) folded in ascending shard
  /// order. shards == 0 means "this NIB's own shard count".
  std::uint64_t folded_shard_fingerprint(std::size_t shards = 0) const;

 private:
  /// Ordered OpId sets per status — one network-wide, one per switch. Kept
  /// incrementally consistent with op_status_ by every status write, so the
  /// hot-path queries (topo handler resets, controller audit, failover,
  /// PR deadlock scans) are O(result) lookups instead of full-table scans.
  using StatusIndex = std::array<std::set<OpId>, kNumOpStatuses>;

  /// Padded so concurrent per-shard increments in a parallel commit section
  /// don't false-share one cache line.
  struct alignas(64) PaddedCounter {
    std::uint64_t value = 0;
  };

  /// Per-shard event plumbing (empty vector until set_shard_ring is called).
  struct ShardIo {
    SpscRing<NibEvent>* ring = nullptr;
    std::function<void()> wake;
    /// Events produced inside a parallel commit section, replayed in shard
    /// order at end_parallel_commits(). Only the shard's own committing
    /// thread appends, so no locking is needed.
    std::vector<NibEvent> deferred;
  };

  void publish(const NibEvent& event);
  void publish_to_shard(std::size_t shard, const NibEvent& event);
  void index_insert(OpId id, SwitchId sw, OpStatus status);
  void index_erase(OpId id, SwitchId sw, OpStatus status);

  std::unordered_map<OpId, Op> ops_;
  std::unordered_map<OpId, OpStatus> op_status_;
  /// One network-wide status index per shard; slot = shard_of(op.sw).
  /// Unsharded this is a single element, making every lookup identical to
  /// the classic layout.
  std::vector<StatusIndex> by_status_ = std::vector<StatusIndex>(1);
  std::unordered_map<SwitchId, StatusIndex> by_switch_status_;
  std::unordered_map<SwitchId, SwitchHealth> switch_health_;
  mutable std::vector<SwitchId> switches_cache_;
  mutable bool switches_cache_stale_ = false;
  std::unordered_set<LinkId> down_links_;
  std::unordered_map<SwitchId, std::unordered_set<OpId>> view_;
  std::unordered_map<DagId, Dag> dags_;
  std::unordered_set<DagId> done_dags_;
  std::optional<DagId> current_dag_;
  std::unordered_map<WorkerId, OpId> worker_state_;
  std::vector<EventSink> sinks_;
  /// One committed-but-unapplied eventual-class ACK batch.
  struct EventualEntry {
    SwitchId sw;
    std::vector<Op> ops;
  };
  ConsistencyConfig consistency_;
  std::deque<EventualEntry> eventual_log_;
  std::function<void()> eventual_wake_;
  std::uint64_t eventual_committed_ = 0;
  std::uint64_t eventual_applied_ = 0;
  std::uint64_t eventual_max_lag_ = 0;
  std::uint64_t eventual_barriers_ = 0;
  std::uint64_t strong_commits_with_pending_ = 0;
  std::size_t shards_ = 1;
  std::vector<ShardIo> shard_io_;
  bool parallel_section_ = false;
  std::vector<PaddedCounter> write_counts_ = std::vector<PaddedCounter>(1);

  static const std::unordered_set<OpId> kEmptyView;
};

}  // namespace zenith
