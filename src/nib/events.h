// Events published by the NIB to its subscribers (§3.2: "the NIB Event
// Handler generates updates about the status of OPs for both Sequencer and
// other applications").
#pragma once

#include "common/ids.h"
#include "dag/op.h"

namespace zenith {

struct NibEvent {
  enum class Type : std::uint8_t {
    kOpStatusChanged,
    kSwitchHealthChanged,
    kDagAccepted,      // DAG scheduler admitted a DAG
    kDagDone,          // every OP of the DAG is DONE
    kTopologyChanged,  // link/port level change folded into switch health here
  };

  Type type = Type::kOpStatusChanged;
  OpId op;
  OpStatus op_status = OpStatus::kNone;
  SwitchId sw;
  bool sw_up = false;
  DagId dag;
  LinkId link;          // kTopologyChanged
  bool link_up = false; // kTopologyChanged
  /// Non-empty for a coalesced batch-ACK commit: every OP of the transaction
  /// (op/op_status describe the last one). One event per transaction keeps
  /// the event-routing cost per *batch* instead of per OP; consumers that
  /// track per-OP state must expand this list.
  std::vector<OpId> batch;
};

}  // namespace zenith
