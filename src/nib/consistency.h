// Adaptive per-OP-class consistency (ROADMAP item 4; Sakic et al.,
// "Towards adaptive state consistency in distributed SDN control plane").
//
// ZENITH's baseline semantics make every NIB commit strongly visible before
// dependent OPs release. That is the right default for the safety argument
// (§3.3), but it over-serializes read-mostly consumers: monitoring views,
// app queries and standby replicas do not need an install ACK to be visible
// at the commit barrier — they need it within a bounded window. The
// ConsistencyConfig knob classifies commits into two visibility classes:
//
//  * strong   — today's semantics: the NIB transaction applies (and its
//               events publish) synchronously at commit time. DAG-ordered
//               deletes, CLEAR_TCAM recovery, role barriers and takeover
//               requeues are ALWAYS strong — they are the paths the §3.3
//               proofs order against.
//  * eventual — the commit is durably recorded in the NIB's eventual apply
//               log immediately, but readers observe it only when the apply
//               cursor reaches it (an EventualApplyPump step, a strong
//               barrier, or the bound-enforcement drain). Only install-rule
//               ACK batches are eligible.
//
// Two invariants make the knob checkable (campaign oracle, mc models):
//  E1 — bounded staleness: the apply cursor never lags the committed
//       eventual prefix by more than `staleness_bound` entries, and the log
//       is fully drained at quiescence.
//  E2 — strong-class isolation: a strong-class NIB transaction never
//       executes while eventual state is pending (every strong path drains
//       the log first via Nib::strong_barrier; Nib counts violations).
//
// The default (all-strong) is byte-identical to the pre-knob build: no log,
// no pump, no barrier calls, every golden fingerprint unchanged.
#pragma once

#include <cstddef>

#include "dag/op.h"

namespace zenith {

/// Visibility class of one NIB commit (see file header).
enum class OpClass : std::uint8_t { kStrong, kEventual };

struct ConsistencyConfig {
  /// Route install-rule ACK commits through the eventual apply log. All
  /// other OP types (deletes, CLEAR_TCAM, dumps, role changes) stay strong
  /// regardless — they order the safety-critical transitions.
  bool eventual_installs = false;
  /// E1 bound: the maximum number of committed-but-unapplied eventual
  /// entries. A commit that would exceed it drains the oldest entries
  /// inline first, so the bound holds structurally at every instant.
  std::size_t staleness_bound = 8;
  /// Entries one EventualApplyPump service step applies (the apply cadence;
  /// the bound above caps how far the cursor can trail regardless).
  std::size_t apply_batch = 4;
  /// Deliberate defect (§3.9-style counterexample knob): strong_barrier()
  /// becomes a no-op, so strong-class commits run with eventual entries
  /// still pending. The E2 oracle (campaign, lockstep, unit tests) must
  /// flag runs with this knob on and stay silent with it off.
  bool bug_skip_barrier = false;

  bool any_eventual() const { return eventual_installs; }

  /// The per-OP classification rule. A batch is eventual-class only when
  /// EVERY op in it classifies eventual (mixed batches are strong).
  OpClass classify(OpType type) const {
    return (eventual_installs && type == OpType::kInstallRule)
               ? OpClass::kEventual
               : OpClass::kStrong;
  }
};

}  // namespace zenith
