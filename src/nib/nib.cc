#include "nib/nib.h"

#include <algorithm>
#include <cassert>

namespace zenith {

const std::unordered_set<OpId> Nib::kEmptyView;

const char* to_string(SwitchHealth h) {
  switch (h) {
    case SwitchHealth::kUp: return "UP";
    case SwitchHealth::kDown: return "DOWN";
    case SwitchHealth::kRecovering: return "RECOVERING";
  }
  return "?";
}

void Nib::publish(const NibEvent& event) {
  for (EventSink sink : sinks_) sink->push(event);
}

void Nib::index_insert(OpId id, SwitchId sw, OpStatus status) {
  auto slot = static_cast<std::size_t>(status);
  by_status_[slot].insert(id);
  by_switch_status_[sw][slot].insert(id);
}

void Nib::index_erase(OpId id, SwitchId sw, OpStatus status) {
  auto slot = static_cast<std::size_t>(status);
  by_status_[slot].erase(id);
  auto it = by_switch_status_.find(sw);
  if (it != by_switch_status_.end()) it->second[slot].erase(id);
}

void Nib::put_op(const Op& op) {
  assert(op.id.valid());
  auto [it, inserted] = ops_.emplace(op.id, op);
  if (inserted) {
    op_status_[op.id] = OpStatus::kNone;
    index_insert(op.id, op.sw, OpStatus::kNone);
    ++write_count_;
  } else {
    assert(it->second == op && "op id reused with different payload");
  }
}

OpStatus Nib::op_status(OpId id) const {
  auto it = op_status_.find(id);
  return it == op_status_.end() ? OpStatus::kNone : it->second;
}

void Nib::set_op_status(OpId id, OpStatus status) {
  assert(ops_.count(id) && "status write for unregistered op");
  ++write_count_;
  OpStatus& slot = op_status_[id];
  if (slot == status) return;
  SwitchId sw = ops_.at(id).sw;
  index_erase(id, sw, slot);
  index_insert(id, sw, status);
  slot = status;
  NibEvent event;
  event.type = NibEvent::Type::kOpStatusChanged;
  event.op = id;
  event.op_status = status;
  event.sw = sw;
  publish(event);
}

std::vector<OpId> Nib::ops_on_switch(SwitchId sw, StatusMask filter) const {
  std::vector<OpId> out;
  auto it = by_switch_status_.find(sw);
  if (it == by_switch_status_.end()) return out;
  for (std::size_t s = 0; s < kNumOpStatuses; ++s) {
    if (!filter.contains(static_cast<OpStatus>(s))) continue;
    const std::set<OpId>& ids = it->second[s];
    out.insert(out.end(), ids.begin(), ids.end());
  }
  // Each per-status run is already ordered; merge them into the id-sorted
  // order the scan-based implementation produced (ids are unique, so the
  // result is byte-identical).
  std::sort(out.begin(), out.end());
  return out;
}

void Nib::preload_op(const Op& op, OpStatus status, bool in_view) {
  auto [it, inserted] = ops_.emplace(op.id, op);
  if (!inserted) index_erase(op.id, it->second.sw, op_status_[op.id]);
  op_status_[op.id] = status;
  index_insert(op.id, it->second.sw, status);
  if (in_view) view_[op.sw].insert(op.id);
  ++write_count_;
}

std::size_t Nib::commit_ack_batch(SwitchId sw, const std::vector<Op>& ops) {
  // One transaction, one published event: the per-OP writes below go through
  // the same index/view mutations as set_op_status but defer notification,
  // so a 16-OP batch ACK costs the event-routing pipeline (NIB Event Handler
  // -> Sequencer wakeups) one service step instead of sixteen. Without this
  // the per-OP kOpStatusChanged stream re-serializes exactly the traffic
  // batching removed from the Monitoring Server.
  std::size_t committed = 0;
  NibEvent event;
  event.type = NibEvent::Type::kOpStatusChanged;
  event.op_status = OpStatus::kDone;
  event.sw = sw;
  for (const Op& op : ops) {
    if (!ops_.count(op.id)) continue;  // orphan element; the caller counts it
    ++write_count_;
    OpStatus& slot = op_status_[op.id];
    if (slot != OpStatus::kDone) {
      index_erase(op.id, sw, slot);
      index_insert(op.id, sw, OpStatus::kDone);
      slot = OpStatus::kDone;
    }
    switch (op.type) {
      case OpType::kInstallRule:
        view_add_installed(sw, op.id);
        break;
      case OpType::kDeleteRule:
        view_remove_installed(sw, op.delete_target);
        break;
      case OpType::kClearTcam:
      case OpType::kDumpTable:
        assert(false && "batches carry install/delete OPs only");
        break;
    }
    event.op = op.id;
    event.batch.push_back(op.id);
    ++committed;
  }
  if (committed > 0) publish(event);
  return committed;
}

std::vector<OpId> Nib::ops_with_status(OpStatus status) const {
  const std::set<OpId>& ids = by_status_[static_cast<std::size_t>(status)];
  return std::vector<OpId>(ids.begin(), ids.end());
}

void Nib::register_switch(SwitchId sw) {
  if (switch_health_.emplace(sw, SwitchHealth::kUp).second) {
    switches_cache_stale_ = true;
  }
  view_.emplace(sw, std::unordered_set<OpId>{});
  ++write_count_;
}

SwitchHealth Nib::switch_health(SwitchId sw) const {
  auto it = switch_health_.find(sw);
  assert(it != switch_health_.end() && "unregistered switch");
  return it->second;
}

void Nib::set_switch_health(SwitchId sw, SwitchHealth health) {
  auto it = switch_health_.find(sw);
  assert(it != switch_health_.end() && "unregistered switch");
  ++write_count_;
  if (it->second == health) return;
  bool was_up = it->second == SwitchHealth::kUp;
  it->second = health;
  bool is_up = health == SwitchHealth::kUp;
  if (was_up != is_up) {
    NibEvent event;
    event.type = NibEvent::Type::kSwitchHealthChanged;
    event.sw = sw;
    event.sw_up = is_up;
    publish(event);
  }
}

void Nib::set_link_up(LinkId link, bool up) {
  ++write_count_;
  bool was_up = !down_links_.count(link);
  if (was_up == up) return;
  if (up) {
    down_links_.erase(link);
  } else {
    down_links_.insert(link);
  }
  NibEvent event;
  event.type = NibEvent::Type::kTopologyChanged;
  event.link = link;
  event.link_up = up;
  publish(event);
}

const std::vector<SwitchId>& Nib::switches() const {
  if (switches_cache_stale_) {
    switches_cache_.clear();
    switches_cache_.reserve(switch_health_.size());
    for (const auto& [sw, _] : switch_health_) switches_cache_.push_back(sw);
    std::sort(switches_cache_.begin(), switches_cache_.end());
    switches_cache_stale_ = false;
  }
  return switches_cache_;
}

void Nib::view_add_installed(SwitchId sw, OpId op) {
  view_[sw].insert(op);
  ++write_count_;
}

void Nib::view_remove_installed(SwitchId sw, OpId op) {
  view_[sw].erase(op);
  ++write_count_;
}

void Nib::view_clear_switch(SwitchId sw) {
  view_[sw].clear();
  ++write_count_;
}

const std::unordered_set<OpId>& Nib::view_installed(SwitchId sw) const {
  auto it = view_.find(sw);
  return it == view_.end() ? kEmptyView : it->second;
}

void Nib::put_dag(Dag dag) {
  DagId id = dag.id();
  assert(id.valid());
  for (const Op* op : dag.all_ops()) put_op(*op);
  dags_[id] = std::move(dag);
  ++write_count_;
}

void Nib::remove_dag(DagId id) {
  dags_.erase(id);
  ++write_count_;
  if (current_dag_ == id) current_dag_.reset();
}

void Nib::publish_dag_done(DagId id) {
  NibEvent event;
  event.type = NibEvent::Type::kDagDone;
  event.dag = id;
  publish(event);
}

void Nib::mark_dag_done(DagId id) {
  done_dags_.insert(id);
  ++write_count_;
}

void Nib::clear_dag_done(DagId id) {
  done_dags_.erase(id);
  ++write_count_;
}

void Nib::publish_dag_accepted(DagId id) {
  NibEvent event;
  event.type = NibEvent::Type::kDagAccepted;
  event.dag = id;
  publish(event);
}

void Nib::set_worker_state(WorkerId worker, std::optional<OpId> op) {
  ++write_count_;
  if (op.has_value()) {
    // §B safety: "no two workers can work on the same task at the same
    // time". Consistent sharding makes this structural; the NIB asserts it
    // anyway so a future regression cannot slip by silently.
    for (const auto& [other, held] : worker_state_) {
      assert((other == worker || held != *op) &&
             "concurrency violation: two workers hold the same OP");
      (void)other;
      (void)held;
    }
    worker_state_[worker] = *op;
  } else {
    worker_state_.erase(worker);
  }
}

std::optional<OpId> Nib::worker_state(WorkerId worker) const {
  auto it = worker_state_.find(worker);
  if (it == worker_state_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Nib::state_fingerprint() const {
  // FNV-1a over a canonical (sorted) serialization. Every section is
  // prefixed with a distinct tag so an empty section cannot alias into its
  // neighbour's encoding.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };

  mix(0x4f505354u);  // OP statuses, sorted by id
  std::vector<OpId> op_ids;
  op_ids.reserve(ops_.size());
  for (const auto& [id, _] : ops_) op_ids.push_back(id);
  std::sort(op_ids.begin(), op_ids.end());
  for (OpId id : op_ids) {
    mix(id.value());
    mix(static_cast<std::uint64_t>(op_status_.at(id)));
  }

  mix(0x53574854u);  // switch health + view R_c, sorted by switch id
  for (SwitchId sw : switches()) {
    mix(sw.value());
    mix(static_cast<std::uint64_t>(switch_health_.at(sw)));
    std::vector<OpId> installed(view_installed(sw).begin(),
                                view_installed(sw).end());
    std::sort(installed.begin(), installed.end());
    mix(installed.size());
    for (OpId id : installed) mix(id.value());
  }

  mix(0x4c4e4b53u);  // down links, sorted
  std::vector<LinkId> links(down_links_.begin(), down_links_.end());
  std::sort(links.begin(), links.end());
  for (LinkId link : links) mix(link.value());

  mix(0x44414753u);  // DAG bookkeeping, sorted by id
  std::vector<DagId> dag_ids;
  dag_ids.reserve(dags_.size());
  for (const auto& [id, _] : dags_) dag_ids.push_back(id);
  std::sort(dag_ids.begin(), dag_ids.end());
  for (DagId id : dag_ids) mix(id.value());
  // Done certificates outlive remove_dag, so they get their own sorted list.
  std::vector<DagId> done_ids(done_dags_.begin(), done_dags_.end());
  std::sort(done_ids.begin(), done_ids.end());
  for (DagId id : done_ids) mix(id.value());
  mix(current_dag_ ? current_dag_->value() : ~0ull);

  mix(0x574b5253u);  // worker in-progress slots, sorted by worker id
  std::vector<std::pair<WorkerId, OpId>> slots(worker_state_.begin(),
                                               worker_state_.end());
  std::sort(slots.begin(), slots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [worker, op] : slots) {
    mix(worker.value());
    mix(op.value());
  }
  return h;
}

}  // namespace zenith
