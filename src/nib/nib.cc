#include "nib/nib.h"

#include <algorithm>
#include <cassert>

namespace zenith {

const std::unordered_set<OpId> Nib::kEmptyView;

const char* to_string(SwitchHealth h) {
  switch (h) {
    case SwitchHealth::kUp: return "UP";
    case SwitchHealth::kDown: return "DOWN";
    case SwitchHealth::kRecovering: return "RECOVERING";
  }
  return "?";
}

void Nib::configure_sharding(std::size_t shards) {
  assert(ops_.empty() && switch_health_.empty() &&
         "configure_sharding on a populated NIB");
  shards_ = std::max<std::size_t>(1, shards);
  by_status_.assign(shards_, StatusIndex{});
  write_counts_.assign(shards_, PaddedCounter{});
}

void Nib::set_shard_ring(std::size_t shard, SpscRing<NibEvent>* ring,
                         std::function<void()> wake) {
  assert(shard < shards_);
  if (shard_io_.size() < shards_) shard_io_.resize(shards_);
  shard_io_[shard].ring = ring;
  shard_io_[shard].wake = std::move(wake);
}

void Nib::begin_parallel_commits() {
  assert(!parallel_section_);
  parallel_section_ = true;
}

void Nib::end_parallel_commits() {
  assert(parallel_section_);
  parallel_section_ = false;
  // Replay deferred events in ascending shard order: rings, classic sinks,
  // wakes — byte-identical to a serial shard-order application.
  for (std::size_t s = 0; s < shard_io_.size(); ++s) {
    ShardIo& io = shard_io_[s];
    for (const NibEvent& event : io.deferred) publish_to_shard(s, event);
    io.deferred.clear();
  }
}

void Nib::publish_to_shard(std::size_t shard, const NibEvent& event) {
  ShardIo& io = shard_io_[shard];
  if (parallel_section_) {
    // Captured by the shard's own committing thread; replayed at
    // end_parallel_commits() on the simulator thread.
    io.deferred.push_back(event);
    return;
  }
  const bool was_empty = io.ring->empty();
  if (!io.ring->try_push(event)) {
    io.ring->grow();  // simulator thread: producer == consumer, safe
    bool pushed = io.ring->try_push(event);
    assert(pushed && "SPSC ring full right after grow()");
    (void)pushed;
  }
  for (EventSink sink : sinks_) sink->push(event);
  if (was_empty && io.wake) io.wake();
}

void Nib::publish(const NibEvent& event) {
  if (!shard_io_.empty()) {
    std::size_t shard = 0;
    switch (event.type) {
      case NibEvent::Type::kOpStatusChanged:
      case NibEvent::Type::kSwitchHealthChanged:
        shard = shard_of(event.sw);
        break;
      default:
        break;  // non-switch-keyed events route to shard 0
    }
    publish_to_shard(shard, event);
    return;
  }
  for (EventSink sink : sinks_) sink->push(event);
}

void Nib::index_insert(OpId id, SwitchId sw, OpStatus status) {
  auto slot = static_cast<std::size_t>(status);
  by_status_[shard_of(sw)][slot].insert(id);
  auto it = by_switch_status_.find(sw);
  if (it == by_switch_status_.end()) {
    // First OP for this switch. Only reachable from the simulator thread
    // (put_op / preload precede any commit), so the rehash is safe.
    assert(!parallel_section_);
    it = by_switch_status_.emplace(sw, StatusIndex{}).first;
  }
  it->second[slot].insert(id);
}

void Nib::index_erase(OpId id, SwitchId sw, OpStatus status) {
  auto slot = static_cast<std::size_t>(status);
  by_status_[shard_of(sw)][slot].erase(id);
  auto it = by_switch_status_.find(sw);
  if (it != by_switch_status_.end()) it->second[slot].erase(id);
}

void Nib::put_op(const Op& op) {
  assert(op.id.valid());
  assert(!parallel_section_);
  auto [it, inserted] = ops_.emplace(op.id, op);
  if (inserted) {
    op_status_[op.id] = OpStatus::kNone;
    index_insert(op.id, op.sw, OpStatus::kNone);
    ++write_counts_[shard_of(op.sw)].value;
  } else {
    assert(it->second == op && "op id reused with different payload");
  }
}

OpStatus Nib::op_status(OpId id) const {
  auto it = op_status_.find(id);
  return it == op_status_.end() ? OpStatus::kNone : it->second;
}

void Nib::set_op_status(OpId id, OpStatus status) {
  assert(ops_.count(id) && "status write for unregistered op");
  assert(!parallel_section_ && "per-op status writes are simulator-thread only");
  OpStatus& slot = op_status_[id];
  ++write_counts_[shard_of(ops_.at(id).sw)].value;
  if (slot == status) return;
  SwitchId sw = ops_.at(id).sw;
  index_erase(id, sw, slot);
  index_insert(id, sw, status);
  slot = status;
  NibEvent event;
  event.type = NibEvent::Type::kOpStatusChanged;
  event.op = id;
  event.op_status = status;
  event.sw = sw;
  publish(event);
}

std::vector<OpId> Nib::ops_on_switch(SwitchId sw, StatusMask filter) const {
  std::vector<OpId> out;
  auto it = by_switch_status_.find(sw);
  if (it == by_switch_status_.end()) return out;
  for (std::size_t s = 0; s < kNumOpStatuses; ++s) {
    if (!filter.contains(static_cast<OpStatus>(s))) continue;
    const std::set<OpId>& ids = it->second[s];
    out.insert(out.end(), ids.begin(), ids.end());
  }
  // Each per-status run is already ordered; merge them into the id-sorted
  // order the scan-based implementation produced (ids are unique, so the
  // result is byte-identical).
  std::sort(out.begin(), out.end());
  return out;
}

void Nib::preload_op(const Op& op, OpStatus status, bool in_view) {
  assert(!parallel_section_);
  auto [it, inserted] = ops_.emplace(op.id, op);
  if (!inserted) index_erase(op.id, it->second.sw, op_status_[op.id]);
  op_status_[op.id] = status;
  index_insert(op.id, it->second.sw, status);
  if (in_view) view_[op.sw].insert(op.id);
  ++write_counts_[shard_of(op.sw)].value;
}

std::size_t Nib::commit_ack_batch(SwitchId sw, const std::vector<Op>& ops) {
  // One transaction, one published event: the per-OP writes below go through
  // the same index/view mutations as set_op_status but defer notification,
  // so a 16-OP batch ACK costs the event-routing pipeline (NIB Event Handler
  // -> Sequencer wakeups) one service step instead of sixteen. Without this
  // the per-OP kOpStatusChanged stream re-serializes exactly the traffic
  // batching removed from the Monitoring Server.
  // Thread note: inside a parallel commit section this runs on a pool
  // thread, one call per shard, each touching only its own shard's rows.
  // Map *topology* is never mutated here — every key pre-exists (put_op /
  // register_switch happen on the simulator thread before any ACK), so the
  // find()-based lookups below are rehash-free and the per-value writes are
  // disjoint across shards.
  std::size_t committed = 0;
  NibEvent event;
  event.type = NibEvent::Type::kOpStatusChanged;
  event.op_status = OpStatus::kDone;
  event.sw = sw;
  for (const Op& op : ops) {
    if (!ops_.count(op.id)) continue;  // orphan element; the caller counts it
    ++write_counts_[shard_of(sw)].value;
    OpStatus& slot = op_status_.find(op.id)->second;
    if (slot != OpStatus::kDone) {
      index_erase(op.id, sw, slot);
      index_insert(op.id, sw, OpStatus::kDone);
      slot = OpStatus::kDone;
    }
    switch (op.type) {
      case OpType::kInstallRule:
        view_add_installed(sw, op.id);
        break;
      case OpType::kDeleteRule:
        view_remove_installed(sw, op.delete_target);
        break;
      case OpType::kClearTcam:
      case OpType::kDumpTable:
        assert(false && "batches carry install/delete OPs only");
        break;
    }
    event.op = op.id;
    event.batch.push_back(op.id);
    ++committed;
  }
  if (committed > 0) publish(event);
  return committed;
}

std::size_t Nib::eventual_commit_batch(SwitchId sw, std::vector<Op> ops) {
  assert(!parallel_section_ &&
         "eventual commits are simulator-thread only (cheap append)");
  assert(consistency_.eventual_installs &&
         "eventual commit with the knob off");
  for (const Op& op : ops) {
    assert(op.type == OpType::kInstallRule &&
           "only install-only batches are eventual-class");
    (void)op;
  }
  if (ops.empty()) return 0;
  // Bound enforcement at commit time: applying the oldest entries before
  // the append keeps pending <= staleness_bound at every instant, so E1
  // holds structurally rather than probabilistically.
  const std::size_t bound = std::max<std::size_t>(1, consistency_.staleness_bound);
  while (eventual_log_.size() >= bound) apply_eventual(1);
  const bool was_empty = eventual_log_.empty();
  const std::size_t recorded = ops.size();
  eventual_log_.push_back(EventualEntry{sw, std::move(ops)});
  ++eventual_committed_;
  eventual_max_lag_ = std::max<std::uint64_t>(eventual_max_lag_,
                                              eventual_log_.size());
  if (was_empty && eventual_wake_) eventual_wake_();
  return recorded;
}

std::size_t Nib::apply_eventual(std::size_t limit) {
  assert(!parallel_section_);
  std::size_t applied = 0;
  while (!eventual_log_.empty() && (limit == 0 || applied < limit)) {
    EventualEntry entry = std::move(eventual_log_.front());
    eventual_log_.pop_front();
    // Same freshness rule as the CommitPump and the replicated log's apply
    // path: between the eventual commit and this apply, a takeover requeue
    // (SENT -> SCHEDULED) or a recovery reset (-> NONE) may have re-armed
    // an op; only ops still SENT become visible, the level-triggered
    // pipeline re-drives the rest.
    std::vector<Op> fresh;
    fresh.reserve(entry.ops.size());
    for (const Op& op : entry.ops) {
      if (ops_.count(op.id) && op_status_.at(op.id) == OpStatus::kSent) {
        fresh.push_back(op);
      }
    }
    commit_ack_batch(entry.sw, fresh);
    ++eventual_applied_;
    ++applied;
  }
  return applied;
}

std::size_t Nib::strong_barrier() {
  if (eventual_log_.empty()) return 0;
  // Deliberate-defect knob: leave the log pending so the next strong-class
  // commit trips the E2 counter — the negative test for the oracle.
  if (consistency_.bug_skip_barrier) return 0;
  ++eventual_barriers_;
  return apply_eventual(0);
}

std::vector<OpId> Nib::ops_with_status(OpStatus status) const {
  const auto slot = static_cast<std::size_t>(status);
  if (by_status_.size() == 1) {
    const std::set<OpId>& ids = by_status_[0][slot];
    return std::vector<OpId>(ids.begin(), ids.end());
  }
  std::vector<OpId> out;
  for (const StatusIndex& index : by_status_) {
    out.insert(out.end(), index[slot].begin(), index[slot].end());
  }
  // Per-shard runs are id-sorted; merge into the global id order the
  // unsharded index produced.
  std::sort(out.begin(), out.end());
  return out;
}

void Nib::register_switch(SwitchId sw) {
  assert(!parallel_section_);
  if (switch_health_.emplace(sw, SwitchHealth::kUp).second) {
    switches_cache_stale_ = true;
  }
  view_.emplace(sw, std::unordered_set<OpId>{});
  ++write_counts_[shard_of(sw)].value;
}

SwitchHealth Nib::switch_health(SwitchId sw) const {
  auto it = switch_health_.find(sw);
  assert(it != switch_health_.end() && "unregistered switch");
  return it->second;
}

void Nib::set_switch_health(SwitchId sw, SwitchHealth health) {
  auto it = switch_health_.find(sw);
  assert(it != switch_health_.end() && "unregistered switch");
  assert(!parallel_section_);
  ++write_counts_[shard_of(sw)].value;
  if (it->second == health) return;
  bool was_up = it->second == SwitchHealth::kUp;
  it->second = health;
  bool is_up = health == SwitchHealth::kUp;
  if (was_up != is_up) {
    NibEvent event;
    event.type = NibEvent::Type::kSwitchHealthChanged;
    event.sw = sw;
    event.sw_up = is_up;
    publish(event);
  }
}

void Nib::set_link_up(LinkId link, bool up) {
  assert(!parallel_section_);
  ++write_counts_[0].value;
  bool was_up = !down_links_.count(link);
  if (was_up == up) return;
  if (up) {
    down_links_.erase(link);
  } else {
    down_links_.insert(link);
  }
  NibEvent event;
  event.type = NibEvent::Type::kTopologyChanged;
  event.link = link;
  event.link_up = up;
  publish(event);
}

const std::vector<SwitchId>& Nib::switches() const {
  if (switches_cache_stale_) {
    switches_cache_.clear();
    switches_cache_.reserve(switch_health_.size());
    for (const auto& [sw, _] : switch_health_) switches_cache_.push_back(sw);
    std::sort(switches_cache_.begin(), switches_cache_.end());
    switches_cache_stale_ = false;
  }
  return switches_cache_;
}

void Nib::view_add_installed(SwitchId sw, OpId op) {
  // find() rather than operator[]: commits mutate the view from pool
  // threads, where inserting a new key (rehash) would race. The key always
  // pre-exists by then (register_switch runs first, on the simulator
  // thread); a missing key is only legal outside parallel sections.
  auto it = view_.find(sw);
  if (it == view_.end()) {
    assert(!parallel_section_);
    it = view_.emplace(sw, std::unordered_set<OpId>{}).first;
  }
  it->second.insert(op);
  ++write_counts_[shard_of(sw)].value;
}

void Nib::view_remove_installed(SwitchId sw, OpId op) {
  // E2 accounting: removing installed state is a strong-class mutation (it
  // orders against DAG-scheduled deletes and reconciliation); executing one
  // while eventual entries are pending means the strong path forgot its
  // barrier. Counting here covers every commit route — inline single-op
  // ACKs, batched commits, the CommitPump and the replicated apply path —
  // and is only ever non-zero on a buggy build (the oracles assert zero).
  if (!eventual_log_.empty()) ++strong_commits_with_pending_;
  auto it = view_.find(sw);
  if (it != view_.end()) it->second.erase(op);
  ++write_counts_[shard_of(sw)].value;
}

void Nib::view_clear_switch(SwitchId sw) {
  assert(!parallel_section_);
  // CLEAR_TCAM recovery is strong-class too (same E2 rule as above).
  if (!eventual_log_.empty()) ++strong_commits_with_pending_;
  auto it = view_.find(sw);
  if (it != view_.end()) it->second.clear();
  ++write_counts_[shard_of(sw)].value;
}

const std::unordered_set<OpId>& Nib::view_installed(SwitchId sw) const {
  auto it = view_.find(sw);
  return it == view_.end() ? kEmptyView : it->second;
}

void Nib::put_dag(Dag dag) {
  DagId id = dag.id();
  assert(id.valid());
  for (const Op* op : dag.all_ops()) put_op(*op);
  dags_[id] = std::move(dag);
  ++write_counts_[0].value;
}

void Nib::remove_dag(DagId id) {
  dags_.erase(id);
  ++write_counts_[0].value;
  if (current_dag_ == id) current_dag_.reset();
}

void Nib::publish_dag_done(DagId id) {
  NibEvent event;
  event.type = NibEvent::Type::kDagDone;
  event.dag = id;
  publish(event);
}

void Nib::mark_dag_done(DagId id) {
  done_dags_.insert(id);
  ++write_counts_[0].value;
}

void Nib::clear_dag_done(DagId id) {
  done_dags_.erase(id);
  ++write_counts_[0].value;
}

void Nib::publish_dag_accepted(DagId id) {
  NibEvent event;
  event.type = NibEvent::Type::kDagAccepted;
  event.dag = id;
  publish(event);
}

void Nib::set_worker_state(WorkerId worker, std::optional<OpId> op) {
  assert(!parallel_section_);
  ++write_counts_[0].value;
  if (op.has_value()) {
    // §B safety: "no two workers can work on the same task at the same
    // time". Consistent sharding makes this structural; the NIB asserts it
    // anyway so a future regression cannot slip by silently.
    for (const auto& [other, held] : worker_state_) {
      assert((other == worker || held != *op) &&
             "concurrency violation: two workers hold the same OP");
      (void)other;
      (void)held;
    }
    worker_state_[worker] = *op;
  } else {
    worker_state_.erase(worker);
  }
}

std::optional<OpId> Nib::worker_state(WorkerId worker) const {
  auto it = worker_state_.find(worker);
  if (it == worker_state_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Nib::state_fingerprint() const {
  // FNV-1a over a canonical (sorted) serialization. Every section is
  // prefixed with a distinct tag so an empty section cannot alias into its
  // neighbour's encoding.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };

  mix(0x4f505354u);  // OP statuses, sorted by id
  std::vector<OpId> op_ids;
  op_ids.reserve(ops_.size());
  for (const auto& [id, _] : ops_) op_ids.push_back(id);
  std::sort(op_ids.begin(), op_ids.end());
  for (OpId id : op_ids) {
    mix(id.value());
    mix(static_cast<std::uint64_t>(op_status_.at(id)));
  }

  mix(0x53574854u);  // switch health + view R_c, sorted by switch id
  for (SwitchId sw : switches()) {
    mix(sw.value());
    mix(static_cast<std::uint64_t>(switch_health_.at(sw)));
    std::vector<OpId> installed(view_installed(sw).begin(),
                                view_installed(sw).end());
    std::sort(installed.begin(), installed.end());
    mix(installed.size());
    for (OpId id : installed) mix(id.value());
  }

  mix(0x4c4e4b53u);  // down links, sorted
  std::vector<LinkId> links(down_links_.begin(), down_links_.end());
  std::sort(links.begin(), links.end());
  for (LinkId link : links) mix(link.value());

  mix(0x44414753u);  // DAG bookkeeping, sorted by id
  std::vector<DagId> dag_ids;
  dag_ids.reserve(dags_.size());
  for (const auto& [id, _] : dags_) dag_ids.push_back(id);
  std::sort(dag_ids.begin(), dag_ids.end());
  for (DagId id : dag_ids) mix(id.value());
  // Done certificates outlive remove_dag, so they get their own sorted list.
  std::vector<DagId> done_ids(done_dags_.begin(), done_dags_.end());
  std::sort(done_ids.begin(), done_ids.end());
  for (DagId id : done_ids) mix(id.value());
  mix(current_dag_ ? current_dag_->value() : ~0ull);

  mix(0x574b5253u);  // worker in-progress slots, sorted by worker id
  std::vector<std::pair<WorkerId, OpId>> slots(worker_state_.begin(),
                                               worker_state_.end());
  std::sort(slots.begin(), slots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [worker, op] : slots) {
    mix(worker.value());
    mix(op.value());
  }

  if (!eventual_log_.empty()) {
    // Pending eventual entries are durable committed state (they survive
    // instance failures) and must distinguish two NIBs that differ only in
    // unapplied commits. Folded ONLY when non-empty so every all-strong
    // digest — including the whole pre-knob golden corpus — is unchanged.
    mix(0x45564c47u);
    for (const EventualEntry& entry : eventual_log_) {
      mix(entry.sw.value());
      mix(entry.ops.size());
      for (const Op& op : entry.ops) mix(op.id.value());
    }
  }
  return h;
}

std::uint64_t Nib::write_count() const {
  std::uint64_t total = 0;
  for (const PaddedCounter& c : write_counts_) total += c.value;
  return total;
}

std::uint64_t Nib::shard_fingerprint(std::size_t shard,
                                     std::size_t shards) const {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };

  mix(0x53484152u);  // shard slice header: (shard, shards)
  mix(shard);
  mix(shards);

  mix(0x4f505354u);  // this shard's OP statuses, sorted by id
  std::vector<OpId> op_ids;
  for (const auto& [id, op] : ops_) {
    if (shard_slot(op.sw, shards) == shard) op_ids.push_back(id);
  }
  std::sort(op_ids.begin(), op_ids.end());
  for (OpId id : op_ids) {
    mix(id.value());
    mix(static_cast<std::uint64_t>(op_status_.at(id)));
  }

  mix(0x53574854u);  // this shard's switches: health + view R_c
  for (SwitchId sw : switches()) {
    if (shard_slot(sw, shards) != shard) continue;
    mix(sw.value());
    mix(static_cast<std::uint64_t>(switch_health_.at(sw)));
    std::vector<OpId> installed(view_installed(sw).begin(),
                                view_installed(sw).end());
    std::sort(installed.begin(), installed.end());
    mix(installed.size());
    for (OpId id : installed) mix(id.value());
  }

  if (shard == 0) {
    // Shard 0 additionally owns the non-switch-keyed state, mirroring the
    // event-routing rule (non-switch events go to shard 0's ring).
    mix(0x4c4e4b53u);
    std::vector<LinkId> links(down_links_.begin(), down_links_.end());
    std::sort(links.begin(), links.end());
    for (LinkId link : links) mix(link.value());

    mix(0x44414753u);
    std::vector<DagId> dag_ids;
    dag_ids.reserve(dags_.size());
    for (const auto& [id, _] : dags_) dag_ids.push_back(id);
    std::sort(dag_ids.begin(), dag_ids.end());
    for (DagId id : dag_ids) mix(id.value());
    std::vector<DagId> done_ids(done_dags_.begin(), done_dags_.end());
    std::sort(done_ids.begin(), done_ids.end());
    for (DagId id : done_ids) mix(id.value());
    mix(current_dag_ ? current_dag_->value() : ~0ull);

    mix(0x574b5253u);
    std::vector<std::pair<WorkerId, OpId>> slots(worker_state_.begin(),
                                                 worker_state_.end());
    std::sort(slots.begin(), slots.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [worker, op] : slots) {
      mix(worker.value());
      mix(op.value());
    }
  }
  return h;
}

std::uint64_t Nib::folded_shard_fingerprint(std::size_t shards) const {
  if (shards == 0) shards = shards_;
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t s = 0; s < shards; ++s) mix(shard_fingerprint(s, shards));
  return h;
}

}  // namespace zenith
