// The explicit-state checker (TLC stand-in): breadth-first exploration of a
// PipelineModel with safety checking on every transition and
// quiescent-consistency (liveness surrogate) checking on every terminal
// state. Reports the statistics Table 4 tracks: wall time, distinct states,
// and diameter (depth of the deepest state).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mc/pipeline_model.h"

namespace zenith::mc {

struct TraceEvent {
  Action action;
  std::string label;
};

struct CheckerOptions {
  std::size_t max_states = 3'000'000;
  double time_limit_seconds = 120.0;
  /// Record parent pointers so violations yield a full counterexample
  /// trace (costs memory; keep off for the Table 4 measurement runs).
  bool record_traces = false;
  /// Check ②/③ at quiescent states.
  bool check_liveness = true;
};

struct CheckResult {
  bool ok = true;
  bool capped = false;  // hit max_states / time limit before exhausting
  std::string violation;
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  std::size_t quiescent_states = 0;
  std::size_t diameter = 0;
  double seconds = 0.0;
  /// Counterexample (record_traces only): actions from the initial state.
  std::vector<TraceEvent> trace;
};

CheckResult check(const PipelineModel& model, CheckerOptions options = {});

}  // namespace zenith::mc
