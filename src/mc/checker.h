// The explicit-state checker (TLC stand-in): breadth-first exploration of a
// PipelineModel with safety checking on every transition and
// quiescent-consistency (liveness surrogate) checking on every terminal
// state. Reports the statistics Table 4 tracks: wall time, distinct states,
// and diameter (depth of the deepest state).
//
// Since PR 9 the exploration runs on the shared work-stealing parallel BFS
// engine (parallel_bfs.h). The determinism contract:
//  * threads == 1 reproduces the serial checker byte-for-byte: identical
//    distinct_states/transitions/quiescent_states/diameter, identical
//    capped flag, identical violation and counterexample trace.
//  * threads >= 2, uncapped clean runs: distinct_states, transitions,
//    quiescent_states and diameter are still EXACT (level-synchronous BFS
//    discovers every state at its true BFS depth) — only seconds varies.
//  * capped or violating runs: the verdict (ok) and the capped flag agree
//    across thread counts; counters are only bounded (>= max_states on a
//    cap) and the specific violation/trace may differ between threads,
//    though any reported trace replays to a real violation (replay_trace).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mc/pipeline_model.h"

namespace zenith::mc {

struct TraceEvent {
  Action action;
  std::string label;
};

struct CheckerOptions {
  std::size_t max_states = 3'000'000;
  double time_limit_seconds = 120.0;
  /// Record parent pointers so violations yield a full counterexample
  /// trace (costs memory; keep off for the Table 4 measurement runs).
  bool record_traces = false;
  /// Check ②/③ at quiescent states.
  bool check_liveness = true;
  /// Exploration workers. 1 (default) = the serial BFS, byte-identical to
  /// the pre-PR-9 checker; 0 = default_bench_threads().
  std::size_t threads = 1;
  /// When non-empty: directory for the seen-set's mmap-backed spill store,
  /// letting checked instances exceed RAM (see ShardedFingerprintSet).
  std::string disk_store_path;
};

struct CheckResult {
  bool ok = true;
  bool capped = false;  // hit max_states / time limit before exhausting
  std::string violation;
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  std::size_t quiescent_states = 0;
  std::size_t diameter = 0;
  double seconds = 0.0;
  std::size_t threads_used = 1;
  /// Counterexample (record_traces only): actions from the initial state.
  std::vector<TraceEvent> trace;
};

CheckResult check(const PipelineModel& model, CheckerOptions options = {});

/// Replays `trace` from the model's initial state, validating that each
/// action is enabled where it fires. Returns the violation the replay
/// reaches: a transition-attached safety violation, or (when the final
/// state is quiescent and `check_liveness`) its quiescent-consistency
/// violation. "" = the trace does not reproduce any violation (including
/// when an action is not enabled — a malformed trace proves nothing).
std::string replay_trace(const PipelineModel& model,
                         const std::vector<TraceEvent>& trace,
                         bool check_liveness = true);

/// ddmin over a violating trace's action list against replay_trace: drops
/// event chunks while the remainder still replays to a violation, until
/// 1-minimal (or the probe budget runs out). Returns the shrunk trace;
/// the input comes back untouched when it does not reproduce.
std::vector<TraceEvent> shrink_trace(const PipelineModel& model,
                                     std::vector<TraceEvent> trace,
                                     bool check_liveness = true,
                                     std::size_t max_probes = 4096);

}  // namespace zenith::mc
