#include "mc/nadir_explorer.h"

#include <utility>

#include "common/fingerprint_set.h"
#include "mc/parallel_bfs.h"

namespace zenith::mc {

namespace {

// The crash budget is part of the state (the same env with budget left can
// reach more states), so it rides along and folds into the fingerprint —
// exactly the pre-PR-9 `env.hash() * prime + crashes` partition.
struct EnvState {
  nadir::Env env;
  std::size_t crashes_used = 0;
};

struct NadirAction {
  std::string process;
  bool crash = false;
};

struct NadirAdapter {
  using State = EnvState;
  using Action = NadirAction;

  const nadir::Spec* spec;
  const NadirCheckerOptions* options;
  nadir::Env initial_env;

  State initial() const { return EnvState{initial_env, 0}; }

  std::pair<std::uint64_t, std::uint64_t> fingerprint(const State& s) const {
    // Widened to 128 bits for the sharded set, but the dedup partition is
    // the old 64-bit one (the second word is a pure function of the
    // first): threads=1 visits exactly the serial explorer's state set.
    std::uint64_t h = s.env.hash() * 1099511628211ull + s.crashes_used;
    return {h, ShardedFingerprintSet::mix(h)};
  }

  std::string visit(const State&, bool&) const { return {}; }

  template <typename Sink>
  std::string expand(const State& s, Sink& sink) const {
    bool any_executed = false;
    for (const nadir::Process& process : spec->processes()) {
      nadir::Env next = s.env;
      auto outcome =
          nadir::Interpreter::try_step(*spec, next, process.name());
      if (outcome != nadir::StepOutcome::kExecuted) continue;
      any_executed = true;
      // TypeOK after every step — the NADIR annotation invariant.
      std::string violation;
      auto types = spec->check_types(next);
      if (!types.ok()) {
        violation = types.error().message;
      } else if (options->invariant) {
        violation = options->invariant(next);
      }
      if (!sink.transition(NadirAction{process.name(), false},
                           EnvState{std::move(next), s.crashes_used},
                           violation)) {
        return {};
      }
    }

    // Crash injection (unfair transitions).
    if (s.crashes_used < options->max_crashes) {
      for (const std::string& name : options->crashable) {
        nadir::Env next = s.env;
        nadir::Interpreter::crash_process(*spec, next, name);
        if (!sink.transition(NadirAction{name, true},
                             EnvState{std::move(next), s.crashes_used + 1})) {
          return {};
        }
      }
    }

    if (!any_executed && options->quiescence) {
      return options->quiescence(s.env);
    }
    return {};
  }
};

}  // namespace

NadirCheckResult explore(const nadir::Spec& spec,
                         NadirCheckerOptions options) {
  NadirCheckResult result;
  auto initial = spec.make_initial_env();
  if (!initial.ok()) {
    result.ok = false;
    result.violation = initial.error().message;
    return result;
  }

  ParallelBfsOptions bfs;
  bfs.max_states = options.max_states;
  bfs.time_limit_seconds = options.time_limit_seconds;
  bfs.threads = options.threads;
  bfs.disk_store_path = options.disk_store_path;

  NadirAdapter adapter{&spec, &options, std::move(initial).value()};
  ParallelBfsResult<NadirAction> bfs_result = parallel_bfs(adapter, bfs);

  result.ok = bfs_result.ok;
  result.capped = bfs_result.capped;
  result.violation = std::move(bfs_result.violation);
  result.distinct_states = bfs_result.distinct_states;
  result.transitions = bfs_result.transitions;
  result.diameter = bfs_result.diameter;
  result.seconds = bfs_result.seconds;
  result.threads_used = bfs_result.threads_used;
  return result;
}

}  // namespace zenith::mc
