#include "mc/nadir_explorer.h"

#include <chrono>
#include <deque>
#include <unordered_set>

namespace zenith::mc {

namespace {

struct EnvNode {
  nadir::Env env;
  std::size_t depth;
  std::size_t crashes_used;
};

}  // namespace

NadirCheckResult explore(const nadir::Spec& spec,
                         NadirCheckerOptions options) {
  auto started = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  NadirCheckResult result;
  auto initial = spec.make_initial_env();
  if (!initial.ok()) {
    result.ok = false;
    result.violation = initial.error().message;
    return result;
  }

  // The crash budget is part of the state (same env with budget left can
  // reach more states), so fold it into the fingerprint.
  auto fingerprint = [](const nadir::Env& env, std::size_t crashes) {
    return env.hash() * 1099511628211ull + crashes;
  };

  std::unordered_set<std::uint64_t> visited;
  std::deque<EnvNode> frontier;
  visited.insert(fingerprint(initial.value(), 0));
  frontier.push_back(EnvNode{std::move(initial).value(), 0, 0});
  result.distinct_states = 1;

  auto fail = [&](std::string violation) {
    result.ok = false;
    result.violation = std::move(violation);
    result.seconds = elapsed();
  };

  while (!frontier.empty()) {
    if (result.distinct_states >= options.max_states ||
        elapsed() > options.time_limit_seconds) {
      result.capped = true;
      break;
    }
    EnvNode node = std::move(frontier.front());
    frontier.pop_front();
    result.diameter = std::max(result.diameter, node.depth);

    bool any_executed = false;
    for (const nadir::Process& process : spec.processes()) {
      nadir::Env next = node.env;
      auto outcome = nadir::Interpreter::try_step(spec, next, process.name());
      if (outcome != nadir::StepOutcome::kExecuted) continue;
      any_executed = true;
      ++result.transitions;
      // TypeOK after every step — the NADIR annotation invariant.
      auto types = spec.check_types(next);
      if (!types.ok()) {
        fail(types.error().message);
        return result;
      }
      if (options.invariant) {
        std::string violation = options.invariant(next);
        if (!violation.empty()) {
          fail(std::move(violation));
          return result;
        }
      }
      std::uint64_t fp = fingerprint(next, node.crashes_used);
      if (visited.insert(fp).second) {
        ++result.distinct_states;
        frontier.push_back(
            EnvNode{std::move(next), node.depth + 1, node.crashes_used});
      }
    }

    // Crash injection (unfair transitions).
    if (node.crashes_used < options.max_crashes) {
      for (const std::string& name : options.crashable) {
        nadir::Env next = node.env;
        nadir::Interpreter::crash_process(spec, next, name);
        ++result.transitions;
        std::uint64_t fp = fingerprint(next, node.crashes_used + 1);
        if (visited.insert(fp).second) {
          ++result.distinct_states;
          frontier.push_back(
              EnvNode{std::move(next), node.depth + 1,
                      node.crashes_used + 1});
        }
      }
    }

    if (!any_executed && options.quiescence) {
      std::string violation = options.quiescence(node.env);
      if (!violation.empty()) {
        fail(std::move(violation));
        return result;
      }
    }
  }

  result.seconds = elapsed();
  return result;
}

}  // namespace zenith::mc
