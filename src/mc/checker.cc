#include "mc/checker.h"

#include <chrono>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace zenith::mc {

namespace {

struct FingerprintHash {
  std::size_t operator()(
      const std::pair<std::uint64_t, std::uint64_t>& fp) const noexcept {
    return fp.first ^ (fp.second * 0x9e3779b97f4a7c15ull);
  }
};

struct Node {
  State state;
  std::size_t depth;
  std::int64_t trace_parent;  // index into trace node pool, -1 for root
};

struct TraceNode {
  std::int64_t parent;
  Action action;
};

}  // namespace

CheckResult check(const PipelineModel& model, CheckerOptions options) {
  auto started = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  CheckResult result;
  bool symmetry = model.config().opt_symmetry;

  std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, FingerprintHash>
      visited;
  std::deque<Node> frontier;
  std::vector<TraceNode> trace_pool;

  State initial = model.initial_state();
  visited.insert(initial.fingerprint(symmetry));
  frontier.push_back(Node{initial, 0, -1});
  result.distinct_states = 1;

  auto build_trace = [&](std::int64_t leaf) {
    std::vector<TraceEvent> trace;
    for (std::int64_t at = leaf; at >= 0; at = trace_pool[at].parent) {
      trace.push_back(
          TraceEvent{trace_pool[at].action, trace_pool[at].action.label()});
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  while (!frontier.empty()) {
    if (result.distinct_states >= options.max_states ||
        elapsed() > options.time_limit_seconds) {
      result.capped = true;
      break;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();
    result.diameter = std::max(result.diameter, node.depth);

    std::vector<Action> actions = model.enabled_actions(node.state);

    if (model.quiescent(node.state)) {
      ++result.quiescent_states;
      if (options.check_liveness) {
        std::string violation =
            model.check_quiescent_consistency(node.state);
        if (!violation.empty()) {
          result.ok = false;
          result.violation = violation;
          if (options.record_traces) {
            result.trace = build_trace(node.trace_parent);
          }
          break;
        }
      }
    }

    for (const Action& action : actions) {
      State next = node.state;
      std::string violation = model.apply(next, action);
      ++result.transitions;
      std::int64_t trace_index = -1;
      if (options.record_traces) {
        trace_pool.push_back(TraceNode{node.trace_parent, action});
        trace_index = static_cast<std::int64_t>(trace_pool.size()) - 1;
      }
      if (!violation.empty()) {
        result.ok = false;
        result.violation = violation;
        if (options.record_traces) result.trace = build_trace(trace_index);
        result.seconds = elapsed();
        return result;
      }
      auto fp = next.fingerprint(symmetry);
      if (visited.insert(fp).second) {
        ++result.distinct_states;
        frontier.push_back(Node{std::move(next), node.depth + 1, trace_index});
      }
    }
  }

  result.seconds = elapsed();
  return result;
}

}  // namespace zenith::mc
