#include "mc/checker.h"

#include <algorithm>
#include <utility>

#include "mc/parallel_bfs.h"

namespace zenith::mc {

namespace {

// PipelineModel -> parallel_bfs adapter. `visit` mirrors the serial
// checker's pop-time block exactly: quiescence is counted unconditionally,
// the ②/③ consistency check runs only under check_liveness.
struct PipelineAdapter {
  using State = mc::State;
  using Action = mc::Action;

  const PipelineModel* model;
  bool symmetry;
  bool check_liveness;

  State initial() const { return model->initial_state(); }

  std::pair<std::uint64_t, std::uint64_t> fingerprint(const State& s) const {
    return s.fingerprint(symmetry);
  }

  std::string visit(const State& s, bool& quiescent) const {
    if (model->quiescent(s)) {
      quiescent = true;
      if (check_liveness) return model->check_quiescent_consistency(s);
    }
    return {};
  }

  template <typename Sink>
  std::string expand(const State& s, Sink& sink) const {
    for (const Action& action : model->enabled_actions(s)) {
      State next = s;
      std::string violation = model->apply(next, action);
      if (!sink.transition(action, std::move(next), violation)) break;
    }
    return {};
  }
};

}  // namespace

CheckResult check(const PipelineModel& model, CheckerOptions options) {
  ParallelBfsOptions bfs;
  bfs.max_states = options.max_states;
  bfs.time_limit_seconds = options.time_limit_seconds;
  bfs.record_traces = options.record_traces;
  bfs.threads = options.threads;
  bfs.disk_store_path = options.disk_store_path;

  PipelineAdapter adapter{&model, model.config().opt_symmetry,
                          options.check_liveness};
  ParallelBfsResult<Action> bfs_result = parallel_bfs(adapter, bfs);

  CheckResult result;
  result.ok = bfs_result.ok;
  result.capped = bfs_result.capped;
  result.violation = std::move(bfs_result.violation);
  result.distinct_states = bfs_result.distinct_states;
  result.transitions = bfs_result.transitions;
  result.quiescent_states = bfs_result.quiescent_states;
  result.diameter = bfs_result.diameter;
  result.seconds = bfs_result.seconds;
  result.threads_used = bfs_result.threads_used;
  result.trace.reserve(bfs_result.trace.size());
  for (const Action& action : bfs_result.trace) {
    result.trace.push_back(TraceEvent{action, action.label()});
  }
  return result;
}

std::string replay_trace(const PipelineModel& model,
                         const std::vector<TraceEvent>& trace,
                         bool check_liveness) {
  State state = model.initial_state();
  for (const TraceEvent& event : trace) {
    std::vector<Action> enabled = model.enabled_actions(state);
    bool found = false;
    for (const Action& candidate : enabled) {
      if (candidate.kind == event.action.kind &&
          candidate.subject == event.action.subject) {
        found = true;
        break;
      }
    }
    if (!found) return {};  // malformed trace: action not enabled here
    std::string violation = model.apply(state, event.action);
    if (!violation.empty()) return violation;
  }
  if (check_liveness && model.quiescent(state)) {
    return model.check_quiescent_consistency(state);
  }
  return {};
}

std::vector<TraceEvent> shrink_trace(const PipelineModel& model,
                                     std::vector<TraceEvent> trace,
                                     bool check_liveness,
                                     std::size_t max_probes) {
  std::size_t probes = 0;
  auto reproduces = [&](const std::vector<TraceEvent>& candidate) {
    ++probes;
    return !replay_trace(model, candidate, check_liveness).empty();
  };
  if (trace.empty() || !reproduces(trace)) return trace;

  // Classic ddmin: try removing chunks of shrinking granularity until the
  // trace is 1-minimal with respect to the replay oracle.
  std::size_t chunk = trace.size() / 2;
  while (chunk >= 1 && probes < max_probes) {
    bool removed_any = false;
    for (std::size_t at = 0; at < trace.size() && probes < max_probes;) {
      std::vector<TraceEvent> candidate;
      candidate.reserve(trace.size());
      std::size_t end = std::min(trace.size(), at + chunk);
      candidate.insert(candidate.end(), trace.begin(),
                       trace.begin() + static_cast<std::ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       trace.begin() + static_cast<std::ptrdiff_t>(end),
                       trace.end());
      if (!candidate.empty() && reproduces(candidate)) {
        trace = std::move(candidate);
        removed_any = true;
        // re-test from the same offset: the chunk there is now different
      } else {
        at += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return trace;
}

}  // namespace zenith::mc
